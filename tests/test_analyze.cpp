// Tests for the abstract-interpretation layer (src/analyze): the
// interval domain and its transfer functions, the Expr- and
// bytecode-level analyzers, analysis-guided program pruning (guard
// folding + division-check relaxation) with bit-identical engine traces
// analysis-on vs analysis-off, the model linter, and the D-Finder
// component-invariant feed.
#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/lint.hpp"
#include "core/semantics.hpp"
#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "expr/compile.hpp"
#include "models/models.hpp"
#include "shard/engine_sharded.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "verify/dfinder.hpp"

namespace cbip {
namespace {

using analyze::absAbs;
using analyze::absAdd;
using analyze::absCmp;
using analyze::absDiv;
using analyze::absMod;
using analyze::absMul;
using analyze::absNeg;
using analyze::absNot;
using analyze::absSub;
using analyze::DivFacts;
using analyze::ExprFacts;
using analyze::Interval;
using analyze::ProgramFacts;
using expr::Assign;
using expr::Expr;
using expr::ExprProgram;
using expr::VarRef;

constexpr Value kMin = std::numeric_limits<Value>::min();
constexpr Value kMax = std::numeric_limits<Value>::max();

Expr v(int i) { return Expr::local(i); }

/// Restores the global analysis switch on scope exit (the analyze twin
/// of test_expr_compile's CompileSwitch).
class AnalysisSwitch {
 public:
  explicit AnalysisSwitch(bool on) : saved_(expr::analysisEnabled()) {
    expr::setAnalysisEnabled(on);
  }
  ~AnalysisSwitch() { expr::setAnalysisEnabled(saved_); }

 private:
  bool saved_;
};

/// Local slot map (slot = index, scope 0), as in the fused tests.
int localSlot(VarRef r) {
  require(r.scope == 0, "localSlot: non-local scope");
  return r.index;
}

// ---- interval domain -----------------------------------------------------

TEST(IntervalDomain, BasicLattice) {
  EXPECT_TRUE(Interval::bottom().isBottom());
  EXPECT_TRUE(Interval::top().isTop());
  EXPECT_TRUE(Interval::singleton(3).isSingleton());
  EXPECT_TRUE(Interval::range(-2, 5).contains(0));
  EXPECT_FALSE(Interval::range(-2, 5).contains(6));
  EXPECT_EQ(join(Interval::range(0, 2), Interval::range(5, 7)), Interval::range(0, 7));
  EXPECT_EQ(join(Interval::bottom(), Interval::singleton(9)), Interval::singleton(9));
}

TEST(IntervalDomain, WrappingOpsGoToTopOutOfRange) {
  EXPECT_EQ(absAdd(Interval::range(1, 2), Interval::range(3, 4)), Interval::range(4, 6));
  EXPECT_TRUE(absAdd(Interval::singleton(kMax), Interval::singleton(1)).isTop());
  EXPECT_EQ(absSub(Interval::range(5, 6), Interval::range(1, 2)), Interval::range(3, 5));
  EXPECT_TRUE(absSub(Interval::singleton(kMin), Interval::singleton(1)).isTop());
  EXPECT_EQ(absMul(Interval::range(2, 3), Interval::range(-4, 5)), Interval::range(-12, 15));
  EXPECT_TRUE(absMul(Interval::singleton(kMax), Interval::singleton(2)).isTop());
  // Bottom propagates.
  EXPECT_TRUE(absAdd(Interval::bottom(), Interval::top()).isBottom());
}

TEST(IntervalDomain, NegAbsInt64MinEdges) {
  EXPECT_EQ(absNeg(Interval::range(-3, 5)), Interval::range(-5, 3));
  // wrapNeg(INT64_MIN) == INT64_MIN, exactly representable as a singleton.
  EXPECT_EQ(absNeg(Interval::singleton(kMin)), Interval::singleton(kMin));
  // A non-singleton interval containing INT64_MIN wraps: top.
  EXPECT_TRUE(absNeg(Interval::range(kMin, 0)).isTop());
  EXPECT_EQ(absAbs(Interval::range(-3, 5)), Interval::range(0, 5));
  EXPECT_EQ(absAbs(Interval::singleton(kMin)), Interval::singleton(kMin));
  EXPECT_TRUE(absAbs(Interval::range(kMin, -1)).isTop());
}

TEST(IntervalDomain, NotAndComparisons) {
  EXPECT_EQ(absNot(Interval::singleton(0)), Interval::singleton(1));
  EXPECT_EQ(absNot(Interval::range(1, 5)), Interval::singleton(0));
  EXPECT_EQ(absNot(Interval::range(-1, 1)), Interval::range(0, 1));
  EXPECT_EQ(absCmp(expr::Op::kLt, Interval::range(0, 2), Interval::range(3, 4)),
            Interval::singleton(1));
  EXPECT_EQ(absCmp(expr::Op::kLt, Interval::range(3, 4), Interval::range(0, 2)),
            Interval::singleton(0));
  EXPECT_EQ(absCmp(expr::Op::kLt, Interval::range(0, 4), Interval::range(2, 3)),
            Interval::range(0, 1));
  EXPECT_EQ(absCmp(expr::Op::kEq, Interval::singleton(7), Interval::singleton(7)),
            Interval::singleton(1));
  EXPECT_EQ(absCmp(expr::Op::kEq, Interval::singleton(7), Interval::singleton(8)),
            Interval::singleton(0));
}

TEST(IntervalDomain, DivisionFacts) {
  // Positive literal divisor: exact, no raise.
  const DivFacts d = absDiv(Interval::range(10, 20), Interval::range(2, 4));
  EXPECT_FALSE(d.mayRaise);
  EXPECT_FALSE(d.mustRaise);
  EXPECT_TRUE(d.result.contains(10 / 2));
  EXPECT_TRUE(d.result.contains(20 / 2));
  EXPECT_TRUE(d.result.contains(10 / 4));
  // Divisor pinned to zero: every evaluation raises.
  const DivFacts z = absDiv(Interval::singleton(1), Interval::singleton(0));
  EXPECT_TRUE(z.mayRaise);
  EXPECT_TRUE(z.mustRaise);
  EXPECT_TRUE(z.result.isBottom());
  // INT64_MIN / -1: the one overflowing pair, also a must-raise.
  const DivFacts o = absDiv(Interval::singleton(kMin), Interval::singleton(-1));
  EXPECT_TRUE(o.mayRaise);
  EXPECT_TRUE(o.mustRaise);
  // Divisor straddling zero: may raise, never must (some pairs succeed).
  const DivFacts s = absDiv(Interval::range(1, 10), Interval::range(-2, 3));
  EXPECT_TRUE(s.mayRaise);
  EXPECT_FALSE(s.mustRaise);
  EXPECT_TRUE(s.result.contains(10 / -1));
  EXPECT_TRUE(s.result.contains(10 / 1));
  // Modulo by a positive literal bounds the result below the divisor.
  const DivFacts m = absMod(Interval::top(), Interval::singleton(4));
  EXPECT_FALSE(m.mayRaise);
  EXPECT_TRUE(Interval::range(-3, 3).contains(m.result.lo));
  EXPECT_TRUE(Interval::range(-3, 3).contains(m.result.hi));
  const DivFacts mp = absMod(Interval::range(0, 100), Interval::singleton(4));
  EXPECT_FALSE(mp.result.contains(-1));
  EXPECT_TRUE(mp.result.contains(3));
}

// ---- constant-folder audit (Expr::make / applyBinary vs analyzer) --------

TEST(FolderAudit, FoldRefusalMatchesAnalyzerRaisingCases) {
  // The builder fold (Expr::make) and the compiler fold (applyBinary)
  // refuse to fold a literal division exactly when the analyzer says the
  // singleton pair may raise — and a singleton pair mayRaise iff it
  // mustRaise iff the concrete evaluation throws.
  const Value corners[] = {kMin, kMin + 1, -2, -1, 0, 1, 2, kMax - 1, kMax};
  std::vector<Value> noVars;
  for (Value a : corners) {
    for (Value b : corners) {
      const bool raises = (b == 0) || expr::divOverflows(a, b);
      for (bool isMod : {false, true}) {
        const Expr e =
            isMod ? Expr::lit(a) % Expr::lit(b) : Expr::lit(a) / Expr::lit(b);
        const DivFacts f = isMod ? absMod(Interval::singleton(a), Interval::singleton(b))
                                 : absDiv(Interval::singleton(a), Interval::singleton(b));
        EXPECT_EQ(f.mayRaise, raises) << a << (isMod ? " % " : " / ") << b;
        EXPECT_EQ(f.mustRaise, raises) << a << (isMod ? " % " : " / ") << b;
        // Folders fold iff the analyzer proves the pair safe.
        EXPECT_EQ(e.isConst(), !raises) << a << (isMod ? " % " : " / ") << b;
        if (raises) {
          EXPECT_THROW(e.eval(noVars), EvalError);
          EXPECT_THROW(expr::compileLocal(e).run(noVars), EvalError);
        } else {
          const Value expect = isMod ? a % b : a / b;
          EXPECT_EQ(e.eval(noVars), expect);
          EXPECT_EQ(expr::compileLocal(e).run(noVars), expect);
          EXPECT_EQ(f.result, Interval::singleton(expect));
        }
      }
    }
  }
}

// ---- Expr-level analysis -------------------------------------------------

analyze::IntervalEnv envOf(std::vector<Interval> slots) {
  return [slots = std::move(slots)](VarRef r) {
    if (r.scope != 0 || r.index < 0 || static_cast<std::size_t>(r.index) >= slots.size()) {
      return Interval::top();
    }
    return slots[static_cast<std::size_t>(r.index)];
  };
}

TEST(AnalyzeExpr, ShortCircuitSkipsDoomedOperand) {
  const Expr guarded = (v(0) != Expr::lit(0)) && (Expr::lit(1) / v(0) > Expr::lit(0));
  // v0 pinned to 0: the rhs never runs, so no raise and a definite false.
  const ExprFacts atZero = analyze::analyzeExpr(guarded, envOf({Interval::singleton(0)}));
  EXPECT_FALSE(atZero.mayRaise);
  EXPECT_EQ(atZero.value, Interval::singleton(0));
  // v0 in [1, 5]: the rhs runs but its divisor cannot be zero.
  const ExprFacts positive = analyze::analyzeExpr(guarded, envOf({Interval::range(1, 5)}));
  EXPECT_FALSE(positive.mayRaise);
  // v0 unknown: the rhs may run with a zero divisor.
  const ExprFacts top = analyze::analyzeExpr(guarded, envOf({Interval::top()}));
  EXPECT_TRUE(top.mayRaise);
  EXPECT_FALSE(top.mustRaise);
}

TEST(AnalyzeExpr, IteBranchFeasibility) {
  // Condition provably true: the doomed else branch contributes nothing.
  const Expr e = Expr::ite(v(0), Expr::lit(5), Expr::lit(1) / Expr::lit(0));
  const ExprFacts taken = analyze::analyzeExpr(e, envOf({Interval::singleton(1)}));
  EXPECT_FALSE(taken.mayRaise);
  EXPECT_EQ(taken.value, Interval::singleton(5));
  // Condition unknown: both branches join, the else may raise.
  const ExprFacts both = analyze::analyzeExpr(e, envOf({Interval::top()}));
  EXPECT_TRUE(both.mayRaise);
}

TEST(AnalyzeExpr, MustRaisePropagates) {
  const Expr e = v(0) / (v(1) - Expr::lit(3));
  const ExprFacts f =
      analyze::analyzeExpr(e, envOf({Interval::top(), Interval::singleton(3)}));
  EXPECT_TRUE(f.mayRaise);
  EXPECT_TRUE(f.mustRaise);
  EXPECT_TRUE(f.value.isBottom());
  // analyzeLocal convenience: same result through the span interface.
  const std::vector<Interval> slots{Interval::top(), Interval::singleton(3)};
  const ExprFacts g = analyze::analyzeLocal(e, slots);
  EXPECT_TRUE(g.mustRaise);
}

// ---- bytecode-level analysis and relaxation ------------------------------

TEST(AnalyzeProgram, LiteralDivisorSitesRelax) {
  const Expr e = v(0) / Expr::lit(7) + v(1) % Expr::lit(3);
  ExprProgram p = expr::compileLocal(e);
  const std::vector<Interval> top(2, Interval::top());
  const ProgramFacts facts = analyze::analyzeProgram(p, top);
  ASSERT_EQ(facts.divSites.size(), 2u);
  EXPECT_FALSE(facts.divSites[0].mayRaise);
  EXPECT_FALSE(facts.divSites[1].mayRaise);
  EXPECT_FALSE(facts.mayRaise);

  EXPECT_EQ(analyze::relaxSafeDivChecks(p, top), 2u);
  bool hasUncheckedDiv = false;
  bool hasUncheckedMod = false;
  bool hasChecked = false;
  for (const expr::Instr& in : p.code()) {
    hasUncheckedDiv = hasUncheckedDiv || in.op == expr::OpCode::kDivUnchecked;
    hasUncheckedMod = hasUncheckedMod || in.op == expr::OpCode::kModUnchecked;
    hasChecked = hasChecked || in.op == expr::OpCode::kDiv || in.op == expr::OpCode::kMod;
  }
  EXPECT_TRUE(hasUncheckedDiv);
  EXPECT_TRUE(hasUncheckedMod);
  EXPECT_FALSE(hasChecked);
  // Relaxation is idempotent: the unchecked sites are no longer sites.
  EXPECT_EQ(analyze::relaxSafeDivChecks(p, top), 0u);

  // The relaxed program agrees with the original value for value,
  // including the INT64_MIN edges (kMin / 7 and kMin % 3 are safe).
  const ExprProgram original = expr::compileLocal(e);
  Rng rng(99);
  for (int k = 0; k < 200; ++k) {
    std::vector<Value> frame{rng.chance(1, 8) ? kMin : rng.range(-100, 100),
                             rng.chance(1, 8) ? kMax : rng.range(-100, 100)};
    EXPECT_EQ(p.run(frame), original.run(frame));
  }
}

TEST(AnalyzeProgram, UnknownDivisorStaysChecked) {
  ExprProgram p = expr::compileLocal(v(0) / v(1));
  const std::vector<Interval> top(2, Interval::top());
  const ProgramFacts facts = analyze::analyzeProgram(p, top);
  EXPECT_TRUE(facts.mayRaise);
  ASSERT_EQ(facts.divSites.size(), 1u);
  EXPECT_TRUE(facts.divSites[0].mayRaise);
  EXPECT_EQ(analyze::relaxSafeDivChecks(p, top), 0u);
  std::vector<Value> frame{1, 0};
  EXPECT_THROW(p.run(frame), EvalError);
}

TEST(AnalyzeProgram, MustRaiseWhenDivisorPinnedToZero) {
  const ExprProgram p = expr::compileLocal(Expr::lit(1) / (v(0) - Expr::lit(3)));
  const std::vector<Interval> slots{Interval::singleton(3)};
  const ProgramFacts facts = analyze::analyzeProgram(p, slots);
  EXPECT_TRUE(facts.mayRaise);
  EXPECT_TRUE(facts.mustRaise);
  EXPECT_TRUE(facts.value.isBottom());
}

TEST(AnalyzeProgram, ConstantProgramAndSlotFlow) {
  const ExprProgram zero = ExprProgram::constant(0);
  std::vector<Value> frame{42};
  EXPECT_EQ(zero.run(frame), 0);
  const std::vector<Interval> top(1, Interval::top());
  const ProgramFacts zf = analyze::analyzeProgram(zero, top);
  EXPECT_EQ(zf.value, Interval::singleton(0));
  EXPECT_FALSE(zf.mayRaise);

  // A fused guard+action program reports its slot reads and writes.
  const std::vector<Assign> actions{Assign{VarRef{0, 1}, v(0) + Expr::lit(1)}};
  const ExprProgram fused = expr::compileFused(v(0) > Expr::lit(0), actions, localSlot);
  const std::vector<Interval> slots(2, Interval::top());
  const ProgramFacts ff = analyze::analyzeProgram(fused, slots);
  ASSERT_EQ(ff.slotsRead.size(), 2u);
  ASSERT_EQ(ff.slotsWritten.size(), 2u);
  EXPECT_TRUE(ff.slotsRead[0]);
  EXPECT_TRUE(ff.slotsWritten[1]);
  EXPECT_FALSE(ff.slotsWritten[0]);
}

TEST(AnalyzeProgram, GuardIntervalProvesDeadAndAlwaysTrue) {
  // x % 4 can never exceed 3, so these guards fold under the all-top
  // (mutation-proof) execution environment.
  const std::vector<Interval> top(1, Interval::top());
  const ProgramFacts dead =
      analyze::analyzeProgram(expr::compileLocal(v(0) % Expr::lit(4) > Expr::lit(10)), top);
  EXPECT_FALSE(dead.mayRaise);
  EXPECT_EQ(dead.value, Interval::singleton(0));
  const ProgramFacts alive =
      analyze::analyzeProgram(expr::compileLocal(v(0) % Expr::lit(4) < Expr::lit(10)), top);
  EXPECT_FALSE(alive.mayRaise);
  EXPECT_EQ(alive.value, Interval::singleton(1));
}

TEST(OptimizeTransition, FoldsGuardsAndRelaxesChecks) {
  // Dead guard: guard and fused both become the constant-0 program.
  {
    CompiledTransition ct;
    const Expr guard = v(0) % Expr::lit(4) > Expr::lit(10);
    const std::vector<Assign> actions{Assign{VarRef{0, 0}, Expr::lit(9)}};
    ct.guard = expr::compile(guard, localSlot);
    ct.actionBlock = expr::compileFused(Expr::top(), actions, localSlot);
    ct.fused = expr::compileFused(guard, actions, localSlot);
    ct.actions.push_back({0, expr::compile(Expr::lit(9), localSlot)});
    analyze::optimizeTransition(ct, 1);
    std::vector<Value> frame{5};
    EXPECT_FALSE(ct.guard.empty());
    EXPECT_EQ(ct.guard.run(frame), 0);
    EXPECT_EQ(ct.fused.run(std::span<Value>(frame), 0), 0);
    EXPECT_EQ(frame[0], 5);  // the dead action suffix is gone
  }
  // Always-true guard: guard empties (trivially-true convention), fused
  // drops the guard prefix but still runs the actions.
  {
    CompiledTransition ct;
    const Expr guard = v(0) % Expr::lit(4) < Expr::lit(10);
    const std::vector<Assign> actions{Assign{VarRef{0, 0}, v(0) + Expr::lit(1)}};
    ct.guard = expr::compile(guard, localSlot);
    ct.actionBlock = expr::compileFused(Expr::top(), actions, localSlot);
    ct.fused = expr::compileFused(guard, actions, localSlot);
    ct.actions.push_back({0, expr::compile(v(0) + Expr::lit(1), localSlot)});
    analyze::optimizeTransition(ct, 1);
    EXPECT_TRUE(ct.guard.empty());
    std::vector<Value> frame{5};
    EXPECT_NE(ct.fused.run(std::span<Value>(frame), 0), 0);
    EXPECT_EQ(frame[0], 6);
  }
  // May-raise guards are untouchable even when their value is pinned:
  // the raise must still happen at run time.
  {
    CompiledTransition ct;
    ct.guard = expr::compile((v(0) / v(1)) * Expr::lit(0), localSlot);
    ct.fused = ct.guard;
    analyze::optimizeTransition(ct, 2);
    std::vector<Value> frame{1, 0};
    EXPECT_THROW(ct.guard.run(frame), EvalError);
  }
}

// ---- engine-level identity (analysis on vs off) --------------------------

/// Division-heavy system exercising every pruning rule: a dead guard, an
/// always-true non-trivial guard, relaxable literal-divisor sites in
/// guards, actions and connector transfer programs.
System divHeavy() {
  auto t = std::make_shared<AtomicType>("D");
  const int idle = t->addLocation("idle");
  const int busy = t->addLocation("busy");
  const int x = t->addVariable("x", 1);
  const int acc = t->addVariable("acc", 0);
  const int p = t->addPort("p", {x});
  // Relaxable sites (literal divisors) in guard and actions.
  t->addTransition(idle, p, Expr::local(x) % Expr::lit(64) < Expr::lit(60),
                   {Assign{VarRef{0, acc}, (Expr::local(acc) + Expr::local(x)) % Expr::lit(257)}},
                   busy);
  // Dead guard: x % 4 > 10 never holds.
  t->addTransition(idle, kInternalPort, Expr::local(x) % Expr::lit(4) > Expr::lit(10),
                   {Assign{VarRef{0, x}, Expr::lit(0)}}, busy);
  // Always-true non-trivial guard.
  t->addTransition(busy, kInternalPort, Expr::local(x) % Expr::lit(4) < Expr::lit(10),
                   {Assign{VarRef{0, x},
                           (Expr::local(x) * Expr::lit(5) + Expr::local(acc)) % Expr::lit(101) +
                               Expr::lit(1)}},
                   idle);
  t->setInitialLocation(idle);

  System sys;
  const int a = sys.addInstance("a", t);
  const int b = sys.addInstance("b", t);
  Connector c("link");
  const int ea = c.addSynchron(PortRef{a, 0});
  const int eb = c.addSynchron(PortRef{b, 0});
  const int sum = c.addVariable("sum");
  c.setGuard((Expr::var(ea, 0) + Expr::var(eb, 0)) % Expr::lit(7) != Expr::lit(3));
  c.addUp(sum, Expr::var(ea, 0) + Expr::var(eb, 0));
  c.addDown(ea, 0, Expr::var(expr::kConnectorScope, sum) / Expr::lit(2) + Expr::lit(1));
  c.addDown(eb, 0, Expr::var(expr::kConnectorScope, sum) % Expr::lit(97) + Expr::lit(1));
  sys.addConnector(std::move(c));
  sys.validate();
  return sys;
}

void expectIdenticalRuns(const RunResult& on, const RunResult& off, const std::string& what) {
  EXPECT_EQ(on.reason, off.reason) << what;
  EXPECT_EQ(on.steps, off.steps) << what;
  EXPECT_EQ(on.finalState, off.finalState) << what;
  ASSERT_EQ(on.trace.events.size(), off.trace.events.size()) << what;
  for (std::size_t i = 0; i < on.trace.events.size(); ++i) {
    EXPECT_EQ(on.trace.events[i].step, off.trace.events[i].step) << what << " event " << i;
    EXPECT_EQ(on.trace.events[i].connector, off.trace.events[i].connector)
        << what << " event " << i;
    EXPECT_EQ(on.trace.events[i].mask, off.trace.events[i].mask) << what << " event " << i;
    EXPECT_EQ(on.trace.events[i].label, off.trace.events[i].label) << what << " event " << i;
  }
}

/// Builds the m-th cross-check model fresh (compiled programs are cached
/// per type, so each analysis setting needs freshly built types).
System crossCheckModel(std::size_t m) {
  switch (m) {
    case 0: return models::philosophersAtomic(6);
    case 1: return models::producerConsumerBounded(3, 7);
    case 2: return models::tokenRing(6);
    default: return divHeavy();
  }
}

TEST(AnalysisCrossCheck, SequentialTracesBitIdentical) {
  const char* names[] = {"phil", "prodcons", "ring", "divHeavy"};
  for (std::size_t m = 0; m < 4; ++m) {
    for (std::uint64_t seed : {3ULL, 17ULL, 99ULL}) {
      RunResult runs[2];
      for (int analysisOn = 0; analysisOn < 2; ++analysisOn) {
        AnalysisSwitch sw(analysisOn == 1);
        const System sys = crossCheckModel(m);
        RandomPolicy policy(seed);
        SequentialEngine engine(sys, policy);
        RunOptions opt;
        opt.maxSteps = 300;
        runs[analysisOn] = engine.run(opt);
      }
      expectIdenticalRuns(runs[1], runs[0],
                          std::string(names[m]) + " seed " + std::to_string(seed));
    }
  }
}

TEST(AnalysisCrossCheck, MultiThreadTracesBitIdentical) {
  const char* names[] = {"phil", "prodcons", "ring", "divHeavy"};
  for (std::size_t m = 0; m < 4; ++m) {
    RunResult runs[2];
    for (int analysisOn = 0; analysisOn < 2; ++analysisOn) {
      AnalysisSwitch sw(analysisOn == 1);
      const System sys = crossCheckModel(m);
      RandomPolicy policy(7);
      MultiThreadEngine engine(sys, policy);
      MtOptions opt;
      opt.maxSteps = 200;
      runs[analysisOn] = engine.run(opt);
    }
    expectIdenticalRuns(runs[1], runs[0], names[m]);
  }
}

TEST(AnalysisCrossCheck, ShardedTracesBitIdentical) {
  // One shard keeps the sharded engine deterministic (bit-identical to
  // SequentialEngine) while still exercising its compiled scan path.
  for (std::size_t m = 0; m < 4; ++m) {
    RunResult runs[2];
    for (int analysisOn = 0; analysisOn < 2; ++analysisOn) {
      AnalysisSwitch sw(analysisOn == 1);
      const System sys = crossCheckModel(m);
      shard::ShardedEngine engine(sys, 1);
      shard::ShardedOptions opt;
      opt.maxSteps = 200;
      opt.seed = 11;
      runs[analysisOn] = engine.run(opt);
    }
    expectIdenticalRuns(runs[1], runs[0], "model " + std::to_string(m));
  }
}

TEST(AnalysisCrossCheck, FirstEvalErrorIdentical) {
  // A guard mixing a relaxable site (x / 2) with an unprovable one
  // (7 % y): relaxation must not change which EvalError fires, or that
  // it fires at all.
  auto makeType = [] {
    auto t = std::make_shared<AtomicType>("E");
    const int l = t->addLocation("l");
    const int x = t->addVariable("x", 8);
    const int y = t->addVariable("y", 0);
    t->addTransition(l, kInternalPort,
                     Expr::local(x) / Expr::lit(2) + Expr::lit(7) % Expr::local(y) >
                         Expr::lit(0),
                     {}, l);
    (void)x;
    (void)y;
    t->setInitialLocation(l);
    t->validate();
    return t;
  };
  std::string messages[2];
  for (int analysisOn = 0; analysisOn < 2; ++analysisOn) {
    AnalysisSwitch sw(analysisOn == 1);
    auto t = makeType();
    AtomicState s = initialState(*t);
    try {
      tryFire(*t, s, 0);
      FAIL() << "expected EvalError (analysis " << analysisOn << ")";
    } catch (const EvalError& e) {
      messages[analysisOn] = e.what();
    }
  }
  EXPECT_EQ(messages[0], messages[1]);
  EXPECT_EQ(messages[0], "modulo by zero");
}

// ---- linter --------------------------------------------------------------

/// Type with one seeded defect per component-side lint kind: `limit` is
/// unexported and never written, so typeIntervals pins it to [5, 5].
AtomicTypePtr lintyType() {
  auto t = std::make_shared<AtomicType>("Linty");
  const int a = t->addLocation("a");
  const int b = t->addLocation("b");
  const int limit = t->addVariable("limit", 5);
  const int x = t->addVariable("x", 1);
  // #0: dead — limit < 0 can never hold.
  t->addTransition(a, kInternalPort, Expr::local(limit) < Expr::lit(0), {}, b);
  // #1: always-true non-trivial guard.
  t->addTransition(a, kInternalPort, Expr::local(limit) > Expr::lit(0),
                   {Assign{VarRef{0, x}, Expr::local(x) + Expr::lit(1)}}, b);
  // #2: action divides by (limit - 5) == 0 — raises on every firing.
  t->addTransition(b, kInternalPort, Expr::top(),
                   {Assign{VarRef{0, x}, Expr::local(x) / (Expr::local(limit) - Expr::lit(5))}},
                   a);
  t->setInitialLocation(a);
  t->validate();
  return t;
}

TEST(Lint, FlagsSeededComponentDefects) {
  const std::vector<analyze::Diagnostic> diags = analyze::lintType(*lintyType());
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].kind, analyze::LintKind::kDeadTransition);
  EXPECT_EQ(diags[1].kind, analyze::LintKind::kAlwaysTrueGuard);
  EXPECT_EQ(diags[2].kind, analyze::LintKind::kGuaranteedRaise);
  // Provenance names the atom and the transition shape.
  EXPECT_NE(diags[0].where.find("Linty"), std::string::npos);
  EXPECT_NE(diags[0].where.find("#0"), std::string::npos);
  EXPECT_NE(toString(diags[0]).find("dead-transition"), std::string::npos);
  EXPECT_NE(toString(diags[2]).find("guaranteed-evalerror"), std::string::npos);
}

TEST(Lint, FlagsSeededConnectorDefects) {
  auto t = std::make_shared<AtomicType>("T");
  const int l = t->addLocation("l");
  const int vv = t->addVariable("v", 0);
  t->addPort("p", {vv});
  t->addTransition(l, 0, l);
  t->setInitialLocation(l);

  System sys;
  const int a = sys.addInstance("a", t);
  const int b = sys.addInstance("b", t);

  {
    Connector c("deadc");
    const int ea = c.addSynchron(PortRef{a, 0});
    c.addSynchron(PortRef{b, 0});
    c.setGuard(Expr::var(ea, 0) % Expr::lit(4) > Expr::lit(10));
    sys.addConnector(std::move(c));
  }
  {
    Connector c("truec");
    const int ea = c.addSynchron(PortRef{a, 0});
    c.addSynchron(PortRef{b, 0});
    c.setGuard(Expr::var(ea, 0) % Expr::lit(4) < Expr::lit(10));
    sys.addConnector(std::move(c));
  }
  {
    Connector c("unread");
    const int ea = c.addSynchron(PortRef{a, 0});
    c.addSynchron(PortRef{b, 0});
    const int sum = c.addVariable("sum");
    c.addUp(sum, Expr::var(ea, 0));
    sys.addConnector(std::move(c));
  }
  {
    Connector c("rbw");
    const int ea = c.addSynchron(PortRef{a, 0});
    c.addSynchron(PortRef{b, 0});
    const int w = c.addVariable("w");
    c.addDown(ea, 0, Expr::var(expr::kConnectorScope, w));
    sys.addConnector(std::move(c));
  }
  sys.validate();

  const std::vector<analyze::Diagnostic> diags = analyze::lintSystem(sys);
  auto count = [&diags](analyze::LintKind kind) {
    std::size_t n = 0;
    for (const analyze::Diagnostic& d : diags) n += d.kind == kind ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count(analyze::LintKind::kDeadConnector), 1u);
  EXPECT_EQ(count(analyze::LintKind::kAlwaysTrueConnectorGuard), 1u);
  EXPECT_EQ(count(analyze::LintKind::kConnectorVarNeverRead), 1u);
  EXPECT_EQ(count(analyze::LintKind::kConnectorVarReadBeforeWrite), 1u);
  EXPECT_EQ(count(analyze::LintKind::kDeadTransition), 0u);
  for (const analyze::Diagnostic& d : diags) {
    EXPECT_FALSE(d.where.empty()) << toString(d);
    EXPECT_FALSE(d.message.empty()) << toString(d);
  }
}

TEST(Lint, ModelZooIsClean) {
  const System zoo[] = {models::philosophersAtomic(4), models::philosophersTwoStep(3),
                        models::gasStation(2, 3), models::producerConsumer(3),
                        models::producerConsumerBounded(3, 7), models::tokenRing(5)};
  const char* names[] = {"philosophersAtomic", "philosophersTwoStep", "gasStation",
                         "producerConsumer", "producerConsumerBounded", "tokenRing"};
  for (std::size_t m = 0; m < std::size(zoo); ++m) {
    const std::vector<analyze::Diagnostic> diags = analyze::lintSystem(zoo[m]);
    EXPECT_TRUE(diags.empty()) << names[m] << ": "
                               << (diags.empty() ? "" : toString(diags.front()));
  }
}

// ---- typeIntervals -------------------------------------------------------

TEST(TypeIntervals, SeedsAndWidens) {
  auto t = std::make_shared<AtomicType>("W");
  const int l = t->addLocation("l");
  const int constant = t->addVariable("constant", 5);  // never written
  const int counter = t->addVariable("counter", 0);    // widened by writes
  const int exported = t->addVariable("exported", 2);  // connectors may write
  t->addPort("p", {exported});
  t->addTransition(l, kInternalPort, Expr::top(),
                   {Assign{VarRef{0, counter}, Expr::local(counter) + Expr::lit(1)}}, l);
  t->setInitialLocation(l);
  t->validate();
  const std::vector<Interval> intervals = analyze::typeIntervals(*t);
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[static_cast<std::size_t>(constant)], Interval::singleton(5));
  EXPECT_TRUE(intervals[static_cast<std::size_t>(counter)].isTop());
  EXPECT_TRUE(intervals[static_cast<std::size_t>(exported)].isTop());
}

// ---- D-Finder feed -------------------------------------------------------

TEST(DFinderFeed, ClearsProvablyDeadGuards) {
  System sys;
  sys.addInstance("i", lintyType());
  sys.validate();
  // Hand-built conservative invariant: everything reachable, every guard
  // feasible — exactly what the location-only fallback produces.
  std::vector<verify::ComponentInvariant> invs(1);
  invs[0].reachableLocations.assign(2, true);
  invs[0].guardFeasible.assign(3, true);
  const std::size_t pruned = verify::strengthenWithAnalysis(sys, invs);
  EXPECT_EQ(pruned, 1u);
  EXPECT_FALSE(invs[0].guardFeasible[0]);  // the dead transition
  EXPECT_TRUE(invs[0].guardFeasible[1]);
  EXPECT_TRUE(invs[0].guardFeasible[2]);
  // Idempotent: a second pass finds nothing new.
  EXPECT_EQ(verify::strengthenWithAnalysis(sys, invs), 0u);
}

TEST(DFinderFeed, VerdictUnchangedByAnalysis) {
  verify::DFinderVerdict verdicts[2][2];
  for (int analysisOn = 0; analysisOn < 2; ++analysisOn) {
    AnalysisSwitch sw(analysisOn == 1);
    const System free = models::philosophersAtomic(4);
    const System deadlocky = models::philosophersTwoStep(3);
    verdicts[analysisOn][0] = verify::checkDeadlockFreedom(free).verdict;
    verdicts[analysisOn][1] = verify::checkDeadlockFreedom(deadlocky).verdict;
  }
  EXPECT_EQ(verdicts[0][0], verify::DFinderVerdict::kDeadlockFree);
  EXPECT_EQ(verdicts[1][0], verify::DFinderVerdict::kDeadlockFree);
  EXPECT_EQ(verdicts[0][1], verdicts[1][1]);
}

// ---- escape hatch --------------------------------------------------------

TEST(AnalysisSwitchTest, TogglesAndRestores) {
  const bool initial = expr::analysisEnabled();
  {
    AnalysisSwitch off(false);
    EXPECT_FALSE(expr::analysisEnabled());
    {
      AnalysisSwitch on(true);
      EXPECT_TRUE(expr::analysisEnabled());
    }
    EXPECT_FALSE(expr::analysisEnabled());
  }
  EXPECT_EQ(expr::analysisEnabled(), initial);
}

}  // namespace
}  // namespace cbip
