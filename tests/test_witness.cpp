// Tests for deadlock-witness confirmation (accountability: a potential
// deadlock is either confirmed with a concrete trace or shown spurious).
#include <gtest/gtest.h>

#include "core/semantics.hpp"
#include "models/models.hpp"
#include "verify/dfinder.hpp"
#include "verify/witness.hpp"

namespace cbip::verify {
namespace {

TEST(Witness, ConfirmsTheTwoStepPhilosopherDeadlock) {
  const System sys = models::philosophersTwoStep(3);
  const DFinderResult df = checkDeadlockFreedom(sys);
  ASSERT_EQ(df.verdict, DFinderVerdict::kPotentialDeadlock);
  const WitnessResult w = confirmDeadlockWitness(sys, df.witnessLocations);
  ASSERT_EQ(w.status, WitnessStatus::kConfirmed);
  ASSERT_TRUE(w.deadlock.has_value());
  // The confirmed state really is a deadlock and matches the witness.
  EXPECT_TRUE(isDeadlocked(sys, *w.deadlock));
  for (std::size_t i = 0; i < df.witnessLocations.size(); ++i) {
    if (df.witnessLocations[i] >= 0) {
      EXPECT_EQ(w.deadlock->components[i].location, df.witnessLocations[i]);
    }
  }
  // The shortest route: three takeL interactions.
  EXPECT_EQ(w.trace.size(), 3u);
  for (const std::string& label : w.trace) {
    EXPECT_EQ(label.rfind("takeL", 0), 0u) << label;
  }
}

TEST(Witness, TraceReplaysToTheDeadlock) {
  // Note: the boolean witness may be spurious even when a real deadlock
  // exists elsewhere — on a finite system the search then still returns a
  // concrete deadlock (kRealButDifferent), with its trace.
  const System sys = models::philosophersTwoStep(4, /*counters=*/false);
  const DFinderResult df = checkDeadlockFreedom(sys);
  ASSERT_EQ(df.verdict, DFinderVerdict::kPotentialDeadlock);
  const WitnessResult w = confirmDeadlockWitness(sys, df.witnessLocations);
  ASSERT_TRUE(w.status == WitnessStatus::kConfirmed ||
              w.status == WitnessStatus::kRealButDifferent);
  // Replay the returned trace step by step on the reference semantics.
  GlobalState g = initialState(sys);
  for (const std::string& label : w.trace) {
    bool fired = false;
    for (const EnabledInteraction& ei : enabledInteractions(sys, g)) {
      if (interactionLabel(sys, ei) == label) {
        executeDefault(sys, g, ei);
        fired = true;
        break;
      }
    }
    ASSERT_TRUE(fired) << "unreplayable step " << label;
  }
  EXPECT_TRUE(isDeadlocked(sys, g));
}

TEST(Witness, SpuriousWitnessOnDeadlockFreeSystem) {
  // Hand the confirmer an arbitrary (unreachable-deadlock) witness on a
  // deadlock-free system: complete search, no deadlock -> spurious.
  const System sys = models::philosophersAtomic(3, /*counters=*/false);
  std::vector<int> fakeWitness(sys.instanceCount(), 0);
  const WitnessResult w = confirmDeadlockWitness(sys, fakeWitness);
  EXPECT_EQ(w.status, WitnessStatus::kSpurious);
  EXPECT_FALSE(w.deadlock.has_value());
}

TEST(Witness, BudgetExhaustionIsInconclusive) {
  const System sys = models::philosophersTwoStep(6, /*counters=*/false);
  const DFinderResult df = checkDeadlockFreedom(sys);
  ASSERT_EQ(df.verdict, DFinderVerdict::kPotentialDeadlock);
  const WitnessResult w = confirmDeadlockWitness(sys, df.witnessLocations, /*maxStates=*/3);
  // With a 3-state budget the search cannot finish; it must not claim
  // spuriousness (it may still confirm if the witness is adjacent).
  EXPECT_NE(w.status, WitnessStatus::kSpurious);
}

TEST(Witness, DirectedSearchIsFast) {
  // The guided search should find the deadlock exploring far fewer states
  // than the full space (greedy descent on witness distance).
  const System sys = models::philosophersTwoStep(7, /*counters=*/false);
  const DFinderResult df = checkDeadlockFreedom(sys);
  ASSERT_EQ(df.verdict, DFinderVerdict::kPotentialDeadlock);
  const WitnessResult w = confirmDeadlockWitness(sys, df.witnessLocations);
  ASSERT_EQ(w.status, WitnessStatus::kConfirmed);
  EXPECT_LT(w.statesExplored, 200u);  // full space is thousands of states
}

}  // namespace
}  // namespace cbip::verify
