// Tests for the timed layer: DBM zones, the Fig 5.3 unit-delay automaton,
// zone-graph reachability, the concrete timed engine, and the periodic
// task model whose deadline misses surface as timelocks.
#include <gtest/gtest.h>

#include "timed/dbm.hpp"
#include "timed/models.hpp"
#include "timed/timed.hpp"
#include "util/rng.hpp"

namespace cbip::timed {
namespace {

TEST(Dbm, ZeroZoneAndDelay) {
  Dbm z(2);
  EXPECT_FALSE(z.empty());
  // At the zero point both clocks are exactly 0.
  EXPECT_EQ(z.at(1, 0), boundLe(0));
  EXPECT_EQ(z.at(0, 1), boundLe(0));
  z.up();
  EXPECT_EQ(z.at(1, 0), kInfinity);   // no upper bound after delay
  EXPECT_EQ(z.at(0, 1), boundLe(0));  // still x1 >= 0
  EXPECT_EQ(z.at(1, 2), boundLe(0));  // clocks advance together: x1 == x2
  EXPECT_EQ(z.at(2, 1), boundLe(0));
}

TEST(Dbm, ConstrainAndEmptiness) {
  Dbm z(1);
  z.up();
  EXPECT_TRUE(z.constrainLe(1, 5));
  EXPECT_TRUE(z.constrainGe(1, 3));
  EXPECT_FALSE(z.empty());
  EXPECT_FALSE(z.constrainLt(1, 3));  // x in [3,5] && x < 3: empty
  EXPECT_TRUE(z.empty());
}

TEST(Dbm, ResetProjects) {
  Dbm z(2);
  z.up();
  z.constrainEq(1, 4);  // x1 == 4 (so x2 == 4 too)
  z.reset(1);
  // x1 == 0 now; x2 still 4; difference pinned.
  EXPECT_TRUE(z.constrainEq(2, 4));
  EXPECT_FALSE(z.empty());
  EXPECT_EQ(z.at(1, 0), boundLe(0));
  EXPECT_EQ(z.at(2, 1), boundLe(4));
}

TEST(Dbm, InclusionAndEquality) {
  Dbm small(1), big(1);
  small.up();
  big.up();
  small.constrainLe(1, 3);
  big.constrainLe(1, 10);
  EXPECT_TRUE(small.subsetOf(big));
  EXPECT_FALSE(big.subsetOf(small));
  EXPECT_TRUE(small.subsetOf(small));
  EXPECT_FALSE(small == big);
}

TEST(Dbm, ExtrapolationMakesBoundsCoarse) {
  Dbm z(1);
  z.up();
  z.constrainGe(1, 100);
  z.extrapolate(5);
  // Lower bound above the max constant becomes "> 5".
  EXPECT_EQ(z.at(0, 1), boundLt(-5));
}

TEST(Dbm, BoundArithmetic) {
  EXPECT_EQ(boundAdd(boundLe(2), boundLe(3)), boundLe(5));
  EXPECT_EQ(boundAdd(boundLt(2), boundLe(3)), boundLt(5));
  EXPECT_EQ(boundAdd(boundLe(2), kInfinity), kInfinity);
  EXPECT_LT(boundLt(3), boundLe(3));  // < 3 is tighter than <= 3
}

// Property: DBM operations agree with concrete integer valuations.
// A valuation v is in the zone iff every pairwise bound holds; after
// up/reset/constrain, membership must match the pointwise definition.
class DbmProperty : public ::testing::TestWithParam<std::uint64_t> {};

namespace {

bool contains(const Dbm& z, const std::vector<int>& v) {
  const int n = static_cast<int>(v.size());
  auto value = [&v](int i) { return i == 0 ? 0 : v[static_cast<std::size_t>(i - 1)]; };
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j <= n; ++j) {
      const Bound b = z.at(i, j);
      if (b >= kInfinity) continue;
      const int diff = value(i) - value(j);
      if (boundStrict(b) ? !(diff < boundValue(b)) : !(diff <= boundValue(b))) return false;
    }
  }
  return true;
}

}  // namespace

TEST_P(DbmProperty, OperationsMatchConcreteSemantics) {
  cbip::Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const int clocks = 2 + static_cast<int>(rng.below(2));  // 2..3
    Dbm zone(clocks);
    zone.up();
    // Apply a few random constraints, tracking a set of sample points.
    for (int step = 0; step < 6 && !zone.empty(); ++step) {
      const int op = static_cast<int>(rng.below(4));
      if (op == 0) {
        zone.up();
      } else if (op == 1) {
        zone.reset(1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(clocks))));
      } else {
        const int x = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(clocks)));
        const int c = static_cast<int>(rng.below(8));
        if (op == 2) {
          zone.constrainLe(x, c);
        } else {
          zone.constrainGe(x, c);
        }
      }
    }
    if (zone.empty()) continue;
    // Sample integer points and cross-check: every point satisfying all
    // explicit bounds is reported inside, and canonical-form tightness
    // means at least one sampled point should be inside for non-empty
    // small zones (checked statistically over all rounds).
    for (int s = 0; s < 30; ++s) {
      std::vector<int> v;
      for (int c = 0; c < clocks; ++c) v.push_back(static_cast<int>(rng.below(10)));
      // Membership is consistent under copy (canonical form is stable).
      Dbm copy = zone;
      ASSERT_EQ(contains(zone, v), contains(copy, v));
      // Intersecting with the point (x == v) is non-empty iff the point
      // is inside the zone.
      Dbm point = zone;
      bool ok = true;
      for (int c = 0; c < clocks && ok; ++c) {
        ok = point.constrainEq(c + 1, v[static_cast<std::size_t>(c)]);
      }
      // Also pin the pairwise differences implicitly via equalities above.
      ASSERT_EQ(ok && !point.empty(), contains(zone, v))
          << "round " << round << " zone " << zone.toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbmProperty, ::testing::Values(11u, 22u, 33u));

TEST(UnitDelay, StructureMatchesFigure53) {
  const auto t = unitDelay();
  EXPECT_EQ(t->locationCount(), 4u);
  EXPECT_EQ(t->clockCount(), 1);
  EXPECT_EQ(t->portCount(), 4u);
  EXPECT_EQ(t->transitionCount(), 4u);
}

TEST(UnitDelay, OutputLagsInputByExactlyOneUnit) {
  // E3: drive x with period 3; every y edge must trail the matching x edge
  // by exactly 1 time unit.
  const TimedSystem sys = unitDelaySystem(3);
  Rng rng(7);
  const TimedRunResult r = runTimed(sys, 40, rng);
  ASSERT_FALSE(r.timelocked);
  std::int64_t lastX = -1;
  int matched = 0;
  for (const TimedStep& s : r.steps) {
    if (s.label == "xup" || s.label == "xdown") {
      lastX = s.time;
    } else {
      ASSERT_NE(lastX, -1) << "output before any input";
      EXPECT_EQ(s.time, lastX + 1) << s.label;
      ++matched;
    }
  }
  EXPECT_GT(matched, 5);
}

TEST(UnitDelay, WorksAtTheOneChangePerUnitBoundary) {
  const TimedSystem sys = unitDelaySystem(1);
  Rng rng(3);
  const TimedRunResult r = runTimed(sys, 30, rng);
  EXPECT_FALSE(r.timelocked);
  // Events alternate input/output forever: xup@1, yup@2, xdown@2, ...
  for (std::size_t i = 0; i + 1 < r.steps.size(); ++i) {
    EXPECT_LE(r.steps[i].time, r.steps[i + 1].time);
  }
}

TEST(UnitDelay, ZoneGraphIsFiniteAndTimelockFree) {
  const TimedSystem sys = unitDelaySystem(2);
  const ZoneReachResult r = zoneReachability(sys);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.timelock);
  // 4 delay locations x 2 driver locations, but only the consistent
  // (x matches driver phase) combinations are reachable: 4.
  EXPECT_EQ(r.discreteStates.size(), 4u);
}

TEST(ZoneGraph, DetectsTimelockFromUnmetUrgency) {
  // A component whose invariant forces an interaction its peer never
  // offers: time cannot pass the bound -> timelock.
  TimedSystem sys;
  auto a = std::make_shared<TimedAtomicType>("A");
  {
    const int c = a->addClock("c");
    const int l0 = a->addLocation("l0", {{c, ClockConstraint::Kind::kLe, 2}});
    const int l1 = a->addLocation("l1");
    const int p = a->addPort("p");
    a->addTransition(TimedTransition{l0, p, {{c, ClockConstraint::Kind::kEq, 2}}, {}, l1});
    a->setInitialLocation(l0);
  }
  auto b = std::make_shared<TimedAtomicType>("B");
  {
    const int c = b->addClock("c");
    const int l0 = b->addLocation("l0");
    const int l1 = b->addLocation("l1");
    const int q = b->addPort("q");
    // Only enabled strictly after the partner's urgency bound.
    b->addTransition(TimedTransition{l0, q, {{c, ClockConstraint::Kind::kGe, 5}}, {}, l1});
    b->setInitialLocation(l0);
  }
  const int ia = sys.addInstance("a", a);
  const int ib = sys.addInstance("b", b);
  sys.addConnector(TimedConnector{"sync", {{ia, 0}, {ib, 0}}});
  const ZoneReachResult r = zoneReachability(sys);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.timelock);

  Rng rng(1);
  const TimedRunResult run = runTimed(sys, 10, rng);
  EXPECT_TRUE(run.timelocked);
}

TEST(PeriodicTasks, SchedulableTaskHasNoTimelock) {
  // One task, period 10, WCET 3: even a maximally procrastinated start
  // (the ready invariant allows waiting until c == 10) still completes
  // within the next period only if started by c == 10 - ... here the
  // start is always possible when the deadline forces it, so no timelock.
  const TimedSystem sys = periodicTasks({10}, {3});
  const ZoneReachResult r = zoneReachability(sys);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.timelock);
}

TEST(PeriodicTasks, OverloadSurfacesAsTimelock) {
  // WCET 5 > period 4: the running invariant c <= 4 hits before
  // e == 5 can fire — a deadline miss, surfacing as a timelock
  // (Section 5.2.2: "deadline misses ... correspond to deadlocks or
  // time-locks in the relevant system model").
  const TimedSystem sys = periodicTasks({4}, {5});
  const ZoneReachResult r = zoneReachability(sys);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.timelock);
}

TEST(PeriodicTasks, LazyDispatchOfCompetingTasksCanMissDeadlines) {
  // Two tasks sharing the cpu, each individually trivial (3 of 10).
  // The zone semantics quantifies over ALL dispatch laziness: a start
  // procrastinated until the peer's release instant blocks the peer for a
  // full WCET with no slack — a reachable timelock. The *eager* engine
  // (as-soon-as-possible policy) never encounters it.
  const TimedSystem sys = periodicTasks({10, 10}, {3, 3});
  const ZoneReachResult r = zoneReachability(sys);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.timelock);

  Rng rng(9);
  const TimedRunResult run = runTimed(sys, 100, rng);
  EXPECT_FALSE(run.timelocked);
}

TEST(PeriodicTasks, ConcreteRunExecutesJobs) {
  const TimedSystem sys = periodicTasks({5, 7}, {1, 2});
  Rng rng(11);
  const TimedRunResult r = runTimed(sys, 60, rng);
  EXPECT_FALSE(r.timelocked);
  int finishes = 0;
  for (const TimedStep& s : r.steps) {
    if (s.label.rfind("finish", 0) == 0) ++finishes;
  }
  EXPECT_GT(finishes, 5);
}

class PeriodSweep : public ::testing::TestWithParam<int> {};

TEST_P(PeriodSweep, UnitDelayNeverTimelocks) {
  const TimedSystem sys = unitDelaySystem(GetParam());
  const ZoneReachResult r = zoneReachability(sys);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.timelock);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace cbip::timed
