// Tests for the sharded execution subsystem: partitioner quality, and the
// differential discipline of shard/engine_sharded.hpp — every sharded
// trace is a schedule SequentialEngine itself can reproduce, and a
// one-shard run is bit-identical to SequentialEngine.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "models/models.hpp"
#include "shard/engine_sharded.hpp"
#include "util/require.hpp"
#include "verify/dfinder.hpp"

namespace cbip {
namespace {

using shard::Partition;
using shard::PartitionOptions;
using shard::PartitionQuality;
using shard::ShardedEngine;
using shard::ShardedOptions;

/// Drives SequentialEngine along a recorded trace: at every step it picks
/// the enabled interaction matching the next recorded (connector, mask).
/// The models used here resolve to exactly one enabled transition per
/// participant, so the choice vector is canonical.
class ReplayPolicy final : public SchedulingPolicy {
 public:
  explicit ReplayPolicy(const Trace& trace) : trace_(&trace) {}

  std::pair<std::size_t, std::vector<int>> pick(
      const System&, const GlobalState&,
      const std::vector<EnabledInteraction>& enabled) override {
    const TraceEvent& e = trace_->events.at(next_);
    ++next_;
    for (std::size_t i = 0; i < enabled.size(); ++i) {
      if (enabled[i].connector == e.connector && enabled[i].mask == e.mask) {
        for (const std::vector<int>& options : enabled[i].choices) {
          EXPECT_EQ(options.size(), 1u)
              << "replay requires a unique transition choice per participant";
        }
        return {i, std::vector<int>(enabled[i].choices.size(), 0)};
      }
    }
    ADD_FAILURE() << "trace event #" << (next_ - 1) << " (" << e.label
                  << ") is not enabled at its replay point";
    throw std::runtime_error("trace replay failed");
  }

 private:
  const Trace* trace_;
  std::size_t next_ = 0;
};

/// Asserts that `sharded` (trace + final state) is reproducible by
/// SequentialEngine scheduling the very same interactions in order.
void expectSequentiallyReplayable(const System& sys, const RunResult& sharded) {
  ReplayPolicy replay(sharded.trace);
  SequentialEngine seq(sys, replay);
  RunOptions opt;
  opt.maxSteps = sharded.trace.events.size();
  const RunResult r = seq.run(opt);
  EXPECT_EQ(r.trace.labels(), sharded.trace.labels());
  EXPECT_EQ(r.finalState, sharded.finalState);
  EXPECT_EQ(r.steps, sharded.steps);
}

/// Replays a trace on the bare reference semantics, optionally checking
/// an invariant after every step. Returns the reached state.
GlobalState replayOnReference(const System& sys, const Trace& trace,
                              const std::function<void(const GlobalState&)>& check = {}) {
  GlobalState g = initialState(sys);
  for (const TraceEvent& e : trace.events) {
    bool found = false;
    for (const EnabledInteraction& ei : enabledInteractions(sys, g)) {
      if (ei.connector == e.connector && ei.mask == e.mask) {
        executeDefault(sys, g, ei);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "event " << e.label << " not replayable";
    if (!found) break;
    if (check) check(g);
  }
  return g;
}

/// Token ring with real connector data machinery: the token's value rides
/// an up into a connector variable (incremented), then a down into the
/// receiver, behind a non-trivial connector guard. Exactly one
/// interaction is enabled at any time, so every engine must produce the
/// identical trace and token value — a sharp differential check on the
/// cross-shard gather/transfer path.
System transferRing(int n) {
  System sys;
  auto makeCell = [](const std::string& name, bool holder) {
    auto t = std::make_shared<AtomicType>("Cell" + name);
    const int idle = t->addLocation("idle");
    const int have = t->addLocation("have");
    const int v = t->addVariable("v", holder ? 1 : 0);
    t->addPort("recv", {v});
    t->addPort("send", {v});
    t->addTransition(idle, t->portIndex("recv"), have);
    t->addTransition(have, t->portIndex("send"), idle);
    t->setInitialLocation(holder ? have : idle);
    return t;
  };
  auto holder = makeCell("H", true);
  auto cell = makeCell("N", false);
  for (int i = 0; i < n; ++i) {
    sys.addInstance("c" + std::to_string(i), i == 0 ? holder : cell);
  }
  for (int i = 0; i < n; ++i) {
    Connector c("pass" + std::to_string(i));
    const int eS = c.addSynchron(PortRef{i, holder->portIndex("send")});
    const int eR = c.addSynchron(PortRef{(i + 1) % n, holder->portIndex("recv")});
    const int t = c.addVariable("t");
    c.setGuard(Expr::var(eS, 0) > Expr::lit(0));
    c.addUp(t, Expr::var(eS, 0) + Expr::lit(1));
    c.addDown(eR, 0, Expr::var(expr::kConnectorScope, t));
    sys.addConnector(std::move(c));
  }
  sys.validate();
  return sys;
}

// ---- partitioner ----

TEST(Partition, BalancedRingWithSmallCut) {
  const System sys = models::philosophersAtomic(16);  // 32 instances in a ring
  const Partition p = shard::partitionSystem(sys, PartitionOptions{4, 1.125, {}});
  ASSERT_EQ(p.shardCount(), 4u);
  const PartitionQuality q = shard::partitionQuality(sys, p);
  EXPECT_GE(q.minLoad, 4u);
  EXPECT_LE(q.maxLoad, 12u);
  EXPECT_GT(q.edgeCut, 0u);  // a ring always cuts somewhere
  // A contiguous 4-way split of the ring coordinates far fewer than half
  // of the connectors.
  EXPECT_LE(q.crossConnectors, sys.connectorCount() / 2);
  // Deterministic.
  const Partition p2 = shard::partitionSystem(sys, PartitionOptions{4, 1.125, {}});
  EXPECT_EQ(p.assignment(), p2.assignment());
}

TEST(Partition, PinningWins) {
  const System sys = models::tokenRing(8);
  PartitionOptions opt;
  opt.shards = 4;
  opt.pins = {{0, 3}, {1, 3}};
  const Partition p = shard::partitionSystem(sys, opt);
  EXPECT_EQ(p.shardOf(0), 3);
  EXPECT_EQ(p.shardOf(1), 3);
}

TEST(Partition, ShardCountClampedToInstances) {
  const System sys = models::producerConsumer(2);  // 3 instances
  const Partition p = shard::partitionSystem(sys, PartitionOptions{16, 1.125, {}});
  EXPECT_EQ(p.shardCount(), 3u);
  const PartitionQuality q = shard::partitionQuality(sys, p);
  EXPECT_EQ(q.minLoad, 1u);
  EXPECT_EQ(q.maxLoad, 1u);
}

TEST(Partition, SingleShardHasNoCut) {
  const System sys = models::philosophersAtomic(4);
  const Partition p = shard::partitionSystem(sys, PartitionOptions{1, 1.125, {}});
  const PartitionQuality q = shard::partitionQuality(sys, p);
  EXPECT_EQ(q.edgeCut, 0u);
  EXPECT_EQ(q.crossConnectors, 0u);
}

// ---- sharded engine: differential suite ----

TEST(ShardedEngine, OneShardBitIdenticalToSequential) {
  const System systems[] = {models::philosophersAtomic(6), models::tokenRing(6),
                            models::producerConsumer(3)};
  for (const System& sys : systems) {
    for (const std::uint64_t seed : {7ULL, 99ULL}) {
      RandomPolicy policy(seed);
      SequentialEngine seq(sys, policy);
      RunOptions so;
      so.maxSteps = 300;
      const RunResult rs = seq.run(so);

      ShardedEngine engine(sys, 1);
      ShardedOptions opt;
      opt.maxSteps = 300;
      opt.seed = seed;
      const RunResult rh = engine.run(opt);

      EXPECT_EQ(rh.trace.labels(), rs.trace.labels());
      EXPECT_EQ(rh.finalState, rs.finalState);
      EXPECT_EQ(rh.steps, rs.steps);
      EXPECT_EQ(rh.reason, rs.reason);
    }
  }
}

TEST(ShardedEngine, TracesAreSequentialSchedules) {
  const System systems[] = {models::philosophersAtomic(8), models::tokenRing(8),
                            models::producerConsumer(3)};
  for (const System& sys : systems) {
    for (const std::size_t k : {1u, 2u, 4u}) {
      ShardedEngine engine(sys, k);
      ShardedOptions opt;
      opt.maxSteps = 250;
      opt.seed = 42;
      const RunResult r = engine.run(opt);
      EXPECT_EQ(r.trace.events.size(), r.steps);
      expectSequentiallyReplayable(sys, r);
    }
  }
}

TEST(ShardedEngine, CrossShardDataTransfer) {
  // One token, so every engine is forced onto the same trace; the token's
  // value counts the hops through connector up/down transfers — any slip
  // in the foreign-frame slot maps shows up as a wrong value.
  const System sys = transferRing(8);
  for (const std::size_t k : {1u, 2u, 4u}) {
    ShardedEngine engine(sys, k);
    ShardedOptions opt;
    opt.maxSteps = 40;
    opt.seed = 5;
    const RunResult r = engine.run(opt);
    EXPECT_EQ(r.steps, 40u);
    expectSequentiallyReplayable(sys, r);
    // Token made 40 hops: value 1 + 40, sitting at instance 40 % 8 = 0.
    EXPECT_EQ(r.finalState.components[0].vars[0], 41);
  }
}

TEST(ShardedEngine, SeededRunsReproduce) {
  const System sys = models::philosophersAtomic(12);
  const auto runOnce = [&](std::uint64_t seed) {
    ShardedEngine engine(sys, 4);
    ShardedOptions opt;
    opt.maxSteps = 300;
    opt.seed = seed;
    return engine.run(opt);
  };
  const RunResult a = runOnce(11);
  const RunResult b = runOnce(11);
  const RunResult c = runOnce(12);
  EXPECT_EQ(a.trace.labels(), b.trace.labels());
  EXPECT_EQ(a.finalState, b.finalState);
  EXPECT_NE(a.trace.labels(), c.trace.labels());  // overwhelmingly
}

TEST(ShardedEngine, CompiledAndInterpretedTracesIdentical) {
  const System sys = models::producerConsumer(3);
  const auto runWith = [&](bool compiled) {
    const bool saved = expr::compilationEnabled();
    expr::setCompilationEnabled(compiled);
    ShardedEngine engine(sys, 2);
    ShardedOptions opt;
    opt.maxSteps = 200;
    opt.seed = 3;
    const RunResult r = engine.run(opt);
    expr::setCompilationEnabled(saved);
    return r;
  };
  const RunResult on = runWith(true);
  const RunResult off = runWith(false);
  EXPECT_EQ(on.trace.labels(), off.trace.labels());
  EXPECT_EQ(on.finalState, off.finalState);
}

TEST(ShardedEngine, FusedAndUnfusedTracesIdentical) {
  // The fused guard+action dispatch (tryFireAt / fireAt action blocks /
  // fused local up blocks) must leave every schedule bit-identical to the
  // unfused per-program dispatch, and each trace must stay replayable
  // through the reference engine. transferRing exercises the fused up
  // block; producerConsumer the transition action blocks.
  const System models[] = {transferRing(9), models::producerConsumer(3)};
  for (const System& sys : models) {
    const auto runWith = [&](bool fused) {
      const bool saved = expr::fusionEnabled();
      expr::setFusionEnabled(fused);
      ShardedEngine engine(sys, 3);
      ShardedOptions opt;
      opt.maxSteps = 200;
      opt.seed = 5;
      const RunResult r = engine.run(opt);
      expr::setFusionEnabled(saved);
      return r;
    };
    const RunResult on = runWith(true);
    const RunResult off = runWith(false);
    EXPECT_EQ(on.trace.labels(), off.trace.labels());
    EXPECT_EQ(on.finalState, off.finalState);
    EXPECT_EQ(on.steps, off.steps);
    expectSequentiallyReplayable(sys, on);
  }
}

TEST(ShardedEngine, BatchedAndScalarScanTracesIdentical) {
  // The batched enabled-set scan (zero-gather over shard-local frames,
  // classic gather for cross-shard guards) must leave every schedule
  // bit-identical to the scalar scan, and each trace must stay replayable
  // through the reference engine.
  const System models[] = {models::philosophersAtomic(12), models::producerConsumer(3)};
  for (const System& sys : models) {
    const auto runWith = [&](bool batch) {
      const bool saved = batchScanEnabled();
      setBatchScanEnabled(batch);
      ShardedEngine engine(sys, 3);
      ShardedOptions opt;
      opt.maxSteps = 200;
      opt.seed = 7;
      const RunResult r = engine.run(opt);
      setBatchScanEnabled(saved);
      return r;
    };
    const RunResult batched = runWith(true);
    const RunResult scalar = runWith(false);
    EXPECT_EQ(batched.trace.labels(), scalar.trace.labels());
    EXPECT_EQ(batched.finalState, scalar.finalState);
    EXPECT_EQ(batched.steps, scalar.steps);
    expectSequentiallyReplayable(sys, batched);
  }
}

TEST(ShardedEngine, ThreadedAndSwitchVmCoresTracesIdentical) {
  // The computed-goto VM core (plus the block-parallel batch executor it
  // gates) is an execution-core change only: every schedule must stay
  // bit-identical under CBIP_NO_THREADED's switch-dispatch fallback, and
  // each trace must stay replayable through the reference engine.
  const System models[] = {models::philosophersAtomic(12), models::producerConsumer(3)};
  for (const System& sys : models) {
    const auto runWith = [&](bool threaded) {
      const bool saved = expr::threadedDispatchEnabled();
      expr::setThreadedDispatchEnabled(threaded);
      ShardedEngine engine(sys, 3);
      ShardedOptions opt;
      opt.maxSteps = 200;
      opt.seed = 11;
      const RunResult r = engine.run(opt);
      expr::setThreadedDispatchEnabled(saved);
      return r;
    };
    const RunResult on = runWith(true);
    const RunResult off = runWith(false);
    EXPECT_EQ(on.trace.labels(), off.trace.labels());
    EXPECT_EQ(on.finalState, off.finalState);
    EXPECT_EQ(on.steps, off.steps);
    expectSequentiallyReplayable(sys, on);
  }
}

TEST(ShardedEngine, DetectsDeadlock) {
  // Two one-shot components on separate shards: two steps, then nothing.
  System sys;
  auto once = std::make_shared<AtomicType>("Once");
  {
    const int s0 = once->addLocation("s0");
    const int s1 = once->addLocation("s1");
    const int go = once->addPort("go");
    once->addTransition(s0, go, s1);
    once->setInitialLocation(s0);
  }
  sys.addInstance("x", once);
  sys.addInstance("y", once);
  sys.addConnector(rendezvous("goX", {PortRef{0, 0}}));
  sys.addConnector(rendezvous("goY", {PortRef{1, 0}}));
  ShardedEngine engine(sys, 2);
  ShardedOptions opt;
  opt.maxSteps = 10;
  opt.seed = 1;
  const RunResult r = engine.run(opt);
  EXPECT_EQ(r.reason, StopReason::kDeadlock);
  EXPECT_EQ(r.steps, 2u);
}

// Satellite: same seeded RandomPolicy on the three engines over the
// dining-philosophers and mutual-exclusion models. Each engine schedules
// differently, but every trace must be a valid behaviour of the reference
// semantics, and the mutual-exclusion invariant must hold throughout.
TEST(ShardedEngine, SeededCrossEngineEquivalence) {
  const std::uint64_t seed = 42;
  {
    const System sys = models::philosophersAtomic(6);
    RandomPolicy pSeq(seed);
    SequentialEngine seq(sys, pSeq);
    RunOptions so;
    so.maxSteps = 150;
    const RunResult rs = seq.run(so);

    RandomPolicy pMt(seed);
    MultiThreadEngine mt(sys, pMt);
    MtOptions mo;
    mo.maxSteps = 150;
    const RunResult rm = mt.run(mo);

    ShardedEngine sh(sys, 3);
    ShardedOptions ho;
    ho.maxSteps = 150;
    ho.seed = seed;
    const RunResult rh = sh.run(ho);

    for (const RunResult* r : {&rs, &rm, &rh}) {
      EXPECT_EQ(r->steps, 150u);
      replayOnReference(sys, r->trace);
    }
  }
  {
    const System sys = models::tokenRing(6);
    RandomPolicy pSeq(seed);
    SequentialEngine seq(sys, pSeq);
    RunOptions so;
    so.maxSteps = 150;
    const RunResult rs = seq.run(so);

    RandomPolicy pMt(seed);
    MultiThreadEngine mt(sys, pMt);
    MtOptions mo;
    mo.maxSteps = 150;
    const RunResult rm = mt.run(mo);

    ShardedEngine sh(sys, 3);
    ShardedOptions ho;
    ho.maxSteps = 150;
    ho.seed = seed;
    const RunResult rh = sh.run(ho);

    const auto mutexHolds = [&](const GlobalState& g) {
      EXPECT_TRUE(models::tokenRingMutex(sys, g));
    };
    for (const RunResult* r : {&rs, &rm, &rh}) {
      EXPECT_EQ(r->steps, 150u);
      replayOnReference(sys, r->trace, mutexHolds);
    }
  }
}

TEST(ShardedEngine, RejectsPriorities) {
  System sys = models::philosophersAtomic(4);
  sys.addPriority(PriorityRule{"eat0", "eat1", std::nullopt});
  EXPECT_THROW(ShardedEngine(sys, 2), ModelError);
}

TEST(ShardedEngine, RejectsMalformedPartition) {
  const System sys = models::producerConsumer(2);  // 3 instances
  EXPECT_THROW(ShardedEngine(sys, Partition({0, 7, 0}, 2)), ModelError);
  EXPECT_THROW(ShardedEngine(sys, Partition({0, -1, 0}, 2)), ModelError);
}

TEST(ShardedSystem, GlobalStateRoundTrips) {
  const System sys = models::producerConsumer(3);
  ShardedEngine engine(sys, 2);
  ShardedOptions opt;
  opt.maxSteps = 50;
  opt.seed = 9;
  const RunResult r = engine.run(opt);
  // An evolved mid-run state survives the frame layout and back.
  const shard::ShardedState sharded = engine.sharded().fromGlobal(r.finalState);
  EXPECT_EQ(engine.sharded().toGlobal(sharded), r.finalState);
  // Mismatched shapes are EvalErrors, not silent frame corruption.
  GlobalState bad = r.finalState;
  bad.components[0].vars.push_back(0);
  EXPECT_THROW(engine.sharded().fromGlobal(bad), EvalError);
}

// ---- online rebalancing + work stealing ----

/// Forces the adaptive layer on for one test's scope: the tests below
/// assert that migrations / steals actually happen, which the
/// CBIP_NO_REBALANCE ctest leg would otherwise veto globally.
struct ForceRebalancingOn {
  bool saved = shard::rebalancingEnabled();
  ForceRebalancingOn() { shard::setRebalancingEnabled(true); }
  ~ForceRebalancingOn() { shard::setRebalancingEnabled(saved); }
};

TEST(Rebalancing, MigratePreservesStateAndEnabledSets) {
  const System sys = models::philosophersAtomic(8);
  shard::ShardedSystem ss(sys,
                          shard::partitionSystem(sys, PartitionOptions{2, 1.125, {}}));
  ss.ensureCompiled();
  shard::ShardedState st = ss.initialState();
  // Evolve a few steps first so the frames hold mid-run values.
  const auto allEnabled = [&]() {
    std::vector<EnabledInteraction> en;
    for (std::size_t ci = 0; ci < sys.connectorCount(); ++ci) {
      ss.appendConnectorInteractions(st, static_cast<int>(ci), en);
    }
    return en;
  };
  for (int i = 0; i < 5; ++i) {
    const std::vector<EnabledInteraction> en = allEnabled();
    ASSERT_FALSE(en.empty());
    ss.executeInteraction(st, en.front(),
                          std::vector<int>(en.front().choices.size(), 0));
  }
  const GlobalState before = ss.toGlobal(st);
  const auto snapshot = [&]() {
    std::vector<std::pair<int, InteractionMask>> snap;
    for (const EnabledInteraction& ei : allEnabled()) snap.push_back({ei.connector, ei.mask});
    return snap;
  };
  const auto beforeEnabled = snapshot();

  // Moves chosen to force both reclassifications: the first cross
  // connector becomes fully local to shard 1, and one untouched shard-0
  // local connector gets an end moved away, becoming cross.
  ASSERT_FALSE(ss.crossConnectors().empty());
  const int xc = ss.crossConnectors().front().connector;
  std::vector<shard::ShardedSystem::Move> moves;
  for (int inst : ss.connectorInstances(xc)) {
    if (ss.shardOf(inst) != 1) moves.push_back({inst, 1});
  }
  ASSERT_FALSE(moves.empty());
  int splitCi = -1;
  for (int ci : ss.shard(0).localConnectors) {
    bool touched = false;
    for (int inst : ss.connectorInstances(ci)) {
      for (const auto& m : moves) touched = touched || m.instance == inst;
    }
    if (!touched) {
      splitCi = ci;
      break;
    }
  }
  ASSERT_GE(splitCi, 0);
  moves.push_back({ss.connectorInstances(splitCi).front(), 1});

  ss.migrate(st, moves);
  EXPECT_EQ(ss.crossIndexOf(xc), -1);      // cross -> local
  EXPECT_GE(ss.crossIndexOf(splitCi), 0);  // local -> cross
  for (const auto& m : moves) EXPECT_EQ(ss.shardOf(m.instance), 1);
  // Migration is unobservable: same global state, same enabled sets, and
  // the new layout still round-trips through GlobalState.
  EXPECT_EQ(ss.toGlobal(st), before);
  EXPECT_EQ(snapshot(), beforeEnabled);
  EXPECT_EQ(ss.toGlobal(ss.fromGlobal(before)), before);
}

TEST(Rebalancing, RebalancedTracesSequentiallyReplayable) {
  // Skewed pairs: the cold pairs die after 4 steps each, the hot pairs
  // (clustered in shard 0 by the greedy partitioner) run forever — the
  // load window must notice and migrate them apart.
  const ForceRebalancingOn forceOn;
  const System sys = models::skewedPairs(32, 4, 4);
  ShardedEngine engine(sys, 4);
  ShardedOptions opt;
  opt.maxSteps = 600;
  opt.seed = 7;
  opt.rebalanceInterval = 2;
  const RunResult r = engine.run(opt);
  const shard::ShardedStats st = engine.lastRunStats();
  EXPECT_GT(st.rebalanceDecisions, 0u);
  EXPECT_GT(st.componentsMoved, 0u);
  EXPECT_EQ(r.trace.events.size(), r.steps);
  expectSequentiallyReplayable(sys, r);
}

TEST(Rebalancing, WorkStealingAloneIsExactAndReplayable) {
  // Rebalancing off isolates the steal path (this is also the TSan
  // coverage for thief-side execution): the skew persists, so idle shards
  // must keep stealing shard 0's surplus.
  const ForceRebalancingOn forceOn;
  const System sys = models::skewedPairs(24, 6, 2);
  ShardedEngine engine(sys, 3);
  ShardedOptions opt;
  opt.maxSteps = 400;
  opt.seed = 5;
  opt.rebalance = false;
  opt.epochBatch = 4;  // 6 hot pairs enabled > 4 => surplus gets published
  const RunResult r = engine.run(opt);
  const shard::ShardedStats st = engine.lastRunStats();
  EXPECT_EQ(st.rebalanceDecisions, 0u);
  EXPECT_GT(st.stealEvents, 0u);
  std::uint64_t stepSum = 0;
  std::uint64_t stolenSum = 0;
  for (const auto& sh : st.shards) {
    stepSum += sh.steps;
    stolenSum += sh.stolenSteps;
  }
  EXPECT_EQ(stepSum, r.steps);
  EXPECT_EQ(stolenSum, st.stealEvents);
  expectSequentiallyReplayable(sys, r);
}

TEST(Rebalancing, CountersAreExact) {
  const ForceRebalancingOn forceOn;
  const System sys = models::skewedPairs(48, 6, 4);
  ShardedEngine engine(sys, 4);
  ShardedOptions opt;
  opt.maxSteps = 800;
  opt.seed = 3;
  opt.rebalanceInterval = 2;
  const RunResult r = engine.run(opt);
  const shard::ShardedStats st = engine.lastRunStats();
  EXPECT_GT(st.componentsMoved, 0u);
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  std::uint64_t stolen = 0;
  std::uint64_t stepSum = 0;
  for (const auto& sh : st.shards) {
    in += sh.migratedIn;
    out += sh.migratedOut;
    stolen += sh.stolenSteps;
    stepSum += sh.steps;
    EXPECT_EQ(sh.steps, sh.localSteps + sh.crossSteps + sh.stolenSteps);
  }
  EXPECT_EQ(st.componentsMoved, in);
  EXPECT_EQ(st.componentsMoved, out);
  EXPECT_EQ(st.stealEvents, stolen);
  EXPECT_EQ(stepSum, r.steps);
  EXPECT_EQ(st.steps, r.steps);
  EXPECT_EQ(st.scanRounds, st.epochs);
  EXPECT_GT(st.wallNs, 0u);
}

TEST(Rebalancing, EscapeHatchBitIdenticalToStaticScheduler) {
  const System sys = models::skewedPairs(32, 4, 4);
  struct Outcome {
    RunResult result;
    shard::ShardedStats stats;
  };
  const auto runWith = [&](bool hatch, bool optionsOn) {
    const bool saved = shard::rebalancingEnabled();
    shard::setRebalancingEnabled(hatch);
    ShardedEngine engine(sys, 4);
    ShardedOptions opt;
    opt.maxSteps = 500;
    opt.seed = 7;
    opt.rebalanceInterval = 2;
    opt.rebalance = optionsOn;
    opt.workStealing = optionsOn;
    Outcome o{engine.run(opt), {}};
    o.stats = engine.lastRunStats();
    shard::setRebalancingEnabled(saved);
    return o;
  };
  const Outcome hatchOff = runWith(false, true);  // hatch beats the options
  const Outcome optionsOff = runWith(true, false);
  const Outcome adaptive = runWith(true, true);
  EXPECT_EQ(hatchOff.result.trace.labels(), optionsOff.result.trace.labels());
  EXPECT_EQ(hatchOff.result.finalState, optionsOff.result.finalState);
  for (const Outcome* o : {&hatchOff, &optionsOff}) {
    EXPECT_EQ(o->stats.rebalanceDecisions, 0u);
    EXPECT_EQ(o->stats.componentsMoved, 0u);
    EXPECT_EQ(o->stats.stealEvents, 0u);
  }
  EXPECT_GT(adaptive.stats.rebalanceDecisions + adaptive.stats.stealEvents, 0u);
}

// ---- satellite: the unified Engine interface ----

TEST(EngineInterface, DrivesAllThreeEnginesUniformly) {
  const System sys = models::philosophersAtomic(8);
  RandomPolicy pSeq(9);
  RandomPolicy pMt(9);
  SequentialEngine seq(sys, pSeq);
  MultiThreadEngine mt(sys, pMt);
  ShardedEngine sh(sys, 2);
  sh.defaultOptions().seed = 9;
  const std::vector<std::pair<Engine*, const char*>> engines = {
      {&seq, "seq"}, {&mt, "mt"}, {&sh, "sharded"}};
  EngineOptions opt;
  opt.maxSteps = 120;
  for (const auto& [engine, name] : engines) {
    EXPECT_STREQ(engine->name(), name);
    const RunResult r = engine->run(opt);
    EXPECT_EQ(r.steps, 120u) << name;
    const RunStats& st = engine->lastRunStats();
    EXPECT_EQ(st.steps, 120u) << name;
    EXPECT_GT(st.scanRounds, 0u) << name;
    // Every trace is a valid behaviour of the reference semantics.
    replayOnReference(sys, r.trace);
  }
}

// ---- satellite: enum printing ----

TEST(EnumPrinting, StopReasonNames) {
  EXPECT_STREQ(to_string(StopReason::kStepLimit), "kStepLimit");
  EXPECT_STREQ(to_string(StopReason::kDeadlock), "kDeadlock");
  EXPECT_STREQ(to_string(StopReason::kPredicate), "kPredicate");
  std::ostringstream os;
  os << StopReason::kDeadlock;
  EXPECT_EQ(os.str(), "kDeadlock");
}

TEST(EnumPrinting, DFinderVerdictNames) {
  EXPECT_STREQ(verify::to_string(verify::DFinderVerdict::kDeadlockFree), "kDeadlockFree");
  std::ostringstream os;
  os << verify::DFinderVerdict::kPotentialDeadlock;
  EXPECT_EQ(os.str(), "kPotentialDeadlock");
}

}  // namespace
}  // namespace cbip
