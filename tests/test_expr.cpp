// Tests for the expression AST, evaluator and parser.
#include <gtest/gtest.h>

#include <functional>

#include "expr/expr.hpp"
#include "expr/parser.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cbip::expr {
namespace {

Expr v(int i) { return Expr::local(i); }

TEST(Expr, LiteralAndVariableEvaluation) {
  std::vector<Value> vars{10, -3};
  EXPECT_EQ(Expr::lit(42).eval(vars), 42);
  EXPECT_EQ(v(0).eval(vars), 10);
  EXPECT_EQ(v(1).eval(vars), -3);
}

TEST(Expr, Arithmetic) {
  std::vector<Value> vars{7, 3};
  EXPECT_EQ((v(0) + v(1)).eval(vars), 10);
  EXPECT_EQ((v(0) - v(1)).eval(vars), 4);
  EXPECT_EQ((v(0) * v(1)).eval(vars), 21);
  EXPECT_EQ((v(0) / v(1)).eval(vars), 2);
  EXPECT_EQ((v(0) % v(1)).eval(vars), 1);
  EXPECT_EQ((-v(0)).eval(vars), -7);
  EXPECT_EQ(Expr::min(v(0), v(1)).eval(vars), 3);
  EXPECT_EQ(Expr::max(v(0), v(1)).eval(vars), 7);
  EXPECT_EQ(Expr::abs(Expr::lit(-5)).eval(vars), 5);
}

TEST(Expr, DivisionByZeroThrows) {
  std::vector<Value> vars{1, 0};
  EXPECT_THROW((v(0) / v(1)).eval(vars), EvalError);
  EXPECT_THROW((v(0) % v(1)).eval(vars), EvalError);
}

TEST(Expr, ComparisonsYieldBooleans) {
  std::vector<Value> vars{2, 5};
  EXPECT_EQ((v(0) < v(1)).eval(vars), 1);
  EXPECT_EQ((v(0) > v(1)).eval(vars), 0);
  EXPECT_EQ((v(0) <= Expr::lit(2)).eval(vars), 1);
  EXPECT_EQ((v(0) >= Expr::lit(3)).eval(vars), 0);
  EXPECT_EQ((v(0) == Expr::lit(2)).eval(vars), 1);
  EXPECT_EQ((v(0) != Expr::lit(2)).eval(vars), 0);
}

TEST(Expr, BooleanConnectivesAndIte) {
  std::vector<Value> vars{1, 0};
  EXPECT_EQ((v(0) && v(1)).eval(vars), 0);
  EXPECT_EQ((v(0) || v(1)).eval(vars), 1);
  EXPECT_EQ((!v(1)).eval(vars), 1);
  EXPECT_EQ(Expr::ite(v(0), Expr::lit(10), Expr::lit(20)).eval(vars), 10);
  EXPECT_EQ(Expr::ite(v(1), Expr::lit(10), Expr::lit(20)).eval(vars), 20);
}

TEST(Expr, ShortCircuitSkipsDivisionByZero) {
  std::vector<Value> vars{0, 0};
  // (v0 != 0) && (1/v0 > 0): must not evaluate the division.
  const Expr guarded = (v(0) != Expr::lit(0)) && (Expr::lit(1) / v(0) > Expr::lit(0));
  EXPECT_EQ(guarded.eval(vars), 0);
}

TEST(Expr, MapVarsRewritesReferences) {
  const Expr e = v(0) + v(1) * Expr::lit(2);
  const Expr shifted = e.mapVars([](VarRef r) { return VarRef{r.scope, r.index + 10}; });
  std::vector<VarRef> refs;
  shifted.collectVars(refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].index, 10);
  EXPECT_EQ(refs[1].index, 11);
}

TEST(Expr, StructuralEquality) {
  EXPECT_TRUE((v(0) + Expr::lit(1)).equals(v(0) + Expr::lit(1)));
  EXPECT_FALSE((v(0) + Expr::lit(1)).equals(v(0) + Expr::lit(2)));
  EXPECT_FALSE((v(0) + Expr::lit(1)).equals(v(0) - Expr::lit(1)));
}

TEST(Expr, SequentialAssignmentSemantics) {
  std::vector<Value> vars{1, 2};
  VecContext ctx(vars);
  // x := y; y := x  -- sequential: both end up 2.
  applyAssignments({Assign{VarRef{0, 0}, v(1)}, Assign{VarRef{0, 1}, v(0)}}, ctx);
  EXPECT_EQ(vars[0], 2);
  EXPECT_EQ(vars[1], 2);
}

TEST(Expr, DefaultConstructedIsZero) {
  std::vector<Value> vars;
  EXPECT_EQ(Expr().eval(vars), 0);
  EXPECT_TRUE(Expr::top().isTrue());
}

TEST(Simplify, ConstantFolding) {
  std::vector<Value> vars;
  EXPECT_EQ((Expr::lit(2) + Expr::lit(3)).simplified().literal(), 5);
  EXPECT_EQ((Expr::lit(2) < Expr::lit(3)).simplified().literal(), 1);
  EXPECT_EQ(Expr::ite(Expr::lit(1), Expr::lit(7), Expr::lit(9)).simplified().literal(), 7);
  EXPECT_EQ(Expr::min(Expr::lit(4), Expr::lit(2)).simplified().literal(), 2);
}

TEST(Simplify, AlgebraicIdentities) {
  const Expr x = v(0);
  EXPECT_TRUE((x + Expr::lit(0)).simplified().equals(x));
  EXPECT_TRUE((Expr::lit(0) + x).simplified().equals(x));
  EXPECT_TRUE((x - Expr::lit(0)).simplified().equals(x));
  EXPECT_TRUE((x * Expr::lit(1)).simplified().equals(x));
  EXPECT_EQ((x * Expr::lit(0)).simplified().literal(), 0);
  EXPECT_EQ((Expr::lit(0) && x).simplified().literal(), 0);
  EXPECT_EQ((Expr::lit(3) || x).simplified().literal(), 1);
}

TEST(Simplify, PreservesDivisionByZeroErrors) {
  // 1/0 must NOT fold into a value.
  const Expr bad = Expr::lit(1) / Expr::lit(0);
  std::vector<Value> vars;
  EXPECT_THROW(bad.simplified().eval(vars), EvalError);
}

TEST(Simplify, BooleanNormalizationKeepsSemantics) {
  // a && true normalizes to (a != 0): 0/1-valued, same truthiness.
  std::vector<Value> vars{5};
  const Expr e = (v(0) && Expr::lit(1)).simplified();
  EXPECT_EQ(e.eval(vars), 1);
  vars[0] = 0;
  EXPECT_EQ(e.eval(vars), 0);
}

// Property: simplified expressions evaluate identically on random
// environments (for division-safe expressions).
class SimplifyProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyProperty, SemanticsPreserved) {
  cbip::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  // Random expression generator over v0, v1 (division avoided).
  std::function<Expr(int)> gen = [&](int depth) -> Expr {
    if (depth == 0 || rng.chance(1, 3)) {
      return rng.chance(1, 2) ? Expr::lit(rng.range(-3, 3)) : v(static_cast<int>(rng.below(2)));
    }
    switch (rng.below(8)) {
      case 0: return gen(depth - 1) + gen(depth - 1);
      case 1: return gen(depth - 1) - gen(depth - 1);
      case 2: return gen(depth - 1) * gen(depth - 1);
      case 3: return gen(depth - 1) < gen(depth - 1);
      case 4: return gen(depth - 1) && gen(depth - 1);
      case 5: return gen(depth - 1) || gen(depth - 1);
      case 6: return !gen(depth - 1);
      default: return Expr::ite(gen(depth - 1), gen(depth - 1), gen(depth - 1));
    }
  };
  for (int round = 0; round < 200; ++round) {
    const Expr e = gen(4);
    const Expr s = e.simplified();
    for (int k = 0; k < 10; ++k) {
      std::vector<Value> vars{rng.range(-5, 5), rng.range(-5, 5)};
      ASSERT_EQ(e.eval(vars), s.eval(vars)) << e.toString() << "  vs  " << s.toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty, ::testing::Values(1, 2, 3, 4));

// ---- parser ----

NameResolver simpleResolver() {
  return [](const std::string& name) {
    if (name == "x") return VarRef{0, 0};
    if (name == "y") return VarRef{0, 1};
    if (name == "p.v") return VarRef{2, 0};
    throw cbip::ModelError("unknown name " + name);
  };
}

TEST(Parser, Precedence) {
  std::vector<Value> vars{2, 3};
  EXPECT_EQ(parseExpr("x + y * 2", simpleResolver()).eval(vars), 8);
  EXPECT_EQ(parseExpr("(x + y) * 2", simpleResolver()).eval(vars), 10);
  EXPECT_EQ(parseExpr("x - y - 1", simpleResolver()).eval(vars), -2);  // left assoc
  EXPECT_EQ(parseExpr("10 % 4 + 1", simpleResolver()).eval(vars), 3);
}

TEST(Parser, ComparisonAndLogic) {
  std::vector<Value> vars{2, 3};
  EXPECT_EQ(parseExpr("x < y && y <= 3", simpleResolver()).eval(vars), 1);
  EXPECT_EQ(parseExpr("x >= y || x == 2", simpleResolver()).eval(vars), 1);
  EXPECT_EQ(parseExpr("!(x != 2)", simpleResolver()).eval(vars), 1);
}

TEST(Parser, TernaryAndFunctions) {
  std::vector<Value> vars{2, 3};
  EXPECT_EQ(parseExpr("x < y ? 100 : 200", simpleResolver()).eval(vars), 100);
  EXPECT_EQ(parseExpr("min(x, y) + max(x, y)", simpleResolver()).eval(vars), 5);
  EXPECT_EQ(parseExpr("abs(x - y)", simpleResolver()).eval(vars), 1);
}

TEST(Parser, DottedIdentifiersAndKeywords) {
  std::vector<Value> vars{0};
  const Expr e = parseExpr("true && !false", simpleResolver());
  EXPECT_EQ(e.eval(vars), 1);
  const Expr dotted = parseExpr("p.v", simpleResolver());
  EXPECT_EQ(dotted.ref().scope, 2);
}

TEST(Parser, UnaryMinusAndNested) {
  std::vector<Value> vars{2, 3};
  EXPECT_EQ(parseExpr("-x + y", simpleResolver()).eval(vars), 1);
  EXPECT_EQ(parseExpr("-(x + y)", simpleResolver()).eval(vars), -5);
  EXPECT_EQ(parseExpr("2 * -x", simpleResolver()).eval(vars), -4);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parseExpr("x +", simpleResolver()), ParseError);
  EXPECT_THROW(parseExpr("(x", simpleResolver()), ParseError);
  EXPECT_THROW(parseExpr("x ? 1", simpleResolver()), ParseError);
  EXPECT_THROW(parseExpr("x y", simpleResolver()), ParseError);
  EXPECT_THROW(parseExpr("unknown", simpleResolver()), cbip::ModelError);
  EXPECT_THROW(parseExpr("min(x)", simpleResolver()), ParseError);
}

TEST(Parser, RoundTripAgainstDirectConstruction) {
  std::vector<Value> vars{5, 7};
  const Expr direct = Expr::ite(v(0) < v(1), v(0) * Expr::lit(3), v(1) - v(0));
  const Expr parsed = parseExpr("x < y ? x * 3 : y - x", simpleResolver());
  EXPECT_EQ(direct.eval(vars), parsed.eval(vars));
}

// Property: parser output agrees with a reference evaluation on random
// inputs for a fixed set of expressions.
class ParserPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserPropertyTest, EvaluatesWithoutCrash) {
  cbip::Rng rng(12345);
  const Expr e = parseExpr(GetParam(), simpleResolver());
  for (int i = 0; i < 100; ++i) {
    std::vector<Value> vars{rng.range(-50, 50), rng.range(1, 50)};
    (void)e.eval(vars);  // must not throw: y is never 0
  }
}

INSTANTIATE_TEST_SUITE_P(Expressions, ParserPropertyTest,
                         ::testing::Values("x + y", "x % y", "x / y", "min(x, y) * max(x, y)",
                                           "x < y ? x : y", "abs(x) + abs(y)",
                                           "(x < 0 || y > 10) && x != y"));

}  // namespace
}  // namespace cbip::expr
