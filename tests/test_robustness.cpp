// Tests for time robustness / timing anomalies (E10, monograph §5.2.2).
#include <gtest/gtest.h>

#include "timed/robustness.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cbip::timed {
namespace {

TaskGraph chainGraph() {
  // T0 -> T1 -> T2 plus an independent T3.
  TaskGraph g;
  g.tasks = {{"T0", 2, {}}, {"T1", 3, {0}}, {"T2", 4, {1}}, {"T3", 5, {}}};
  return g;
}

std::vector<std::int64_t> durationsOf(const TaskGraph& g) {
  std::vector<std::int64_t> d;
  for (const Task& t : g.tasks) d.push_back(t.duration);
  return d;
}

TEST(ListSchedule, RespectsDependenciesAndMachines) {
  const TaskGraph g = chainGraph();
  const Schedule s = listSchedule(g, 2, {0, 1, 2, 3}, durationsOf(g));
  ASSERT_EQ(s.entries.size(), 4u);
  std::vector<std::int64_t> start(4), finish(4);
  std::vector<int> machine(4);
  for (const ScheduledTask& e : s.entries) {
    start[static_cast<std::size_t>(e.task)] = e.start;
    finish[static_cast<std::size_t>(e.task)] = e.finish;
    machine[static_cast<std::size_t>(e.task)] = e.machine;
  }
  EXPECT_GE(start[1], finish[0]);
  EXPECT_GE(start[2], finish[1]);
  // Chain is critical: 2+3+4 = 9; T3 runs in parallel.
  EXPECT_EQ(s.makespan, 9);
  // No machine overlap.
  for (const ScheduledTask& a : s.entries) {
    for (const ScheduledTask& b : s.entries) {
      if (a.task == b.task || a.machine != b.machine) continue;
      EXPECT_TRUE(a.finish <= b.start || b.finish <= a.start);
    }
  }
  (void)machine;
}

TEST(ListSchedule, SingleMachineSerializes) {
  const TaskGraph g = chainGraph();
  const Schedule s = listSchedule(g, 1, {3, 0, 1, 2}, durationsOf(g));
  EXPECT_EQ(s.makespan, 2 + 3 + 4 + 5);
}

TEST(ListSchedule, DetectsCyclicDependencies) {
  TaskGraph g;
  g.tasks = {{"A", 1, {1}}, {"B", 1, {0}}};
  EXPECT_THROW(listSchedule(g, 1, {0, 1}, {1, 1}), ModelError);
}

TEST(StaticSchedule, MatchesListScheduleAtWcet) {
  const TaskGraph g = chainGraph();
  const auto wcet = durationsOf(g);
  const Schedule list = listSchedule(g, 2, {0, 1, 2, 3}, wcet);
  std::vector<int> assignment, order;
  staticFromList(list, assignment, order);
  const Schedule fixed = staticSchedule(g, 2, assignment, order, wcet);
  EXPECT_EQ(fixed.makespan, list.makespan);
}

TEST(Anomaly, SearchFindsASpeedupAnomaly) {
  const auto a = findAnomaly(/*machines=*/2, /*taskCount=*/8, /*attempts=*/50'000,
                             /*seed=*/0xC0FFEE);
  ASSERT_TRUE(a.has_value());
  // Reduced durations are pointwise <= WCET yet the makespan grew.
  for (std::size_t t = 0; t < a->wcetDurations.size(); ++t) {
    EXPECT_LE(a->reducedDurations[t], a->wcetDurations[t]);
  }
  EXPECT_GT(a->reducedMakespan, a->wcetMakespan);
}

TEST(Anomaly, FrozenInstanceReproduces) {
  const Anomaly a = anomalyInstance();
  const Schedule base = listSchedule(a.graph, a.machines, a.priorityList, a.wcetDurations);
  const Schedule fast = listSchedule(a.graph, a.machines, a.priorityList, a.reducedDurations);
  EXPECT_EQ(base.makespan, a.wcetMakespan);
  EXPECT_EQ(fast.makespan, a.reducedMakespan);
  EXPECT_GT(fast.makespan, base.makespan)
      << "safety at WCET must NOT imply safety at smaller execution times";
}

TEST(Anomaly, StaticScheduleIsRobustOnTheAnomalyInstance) {
  // Determinize the anomalous system: the static schedule derived from the
  // WCET run is monotone — the speed-up now *helps*.
  const Anomaly a = anomalyInstance();
  const Schedule wcetList = listSchedule(a.graph, a.machines, a.priorityList, a.wcetDurations);
  std::vector<int> assignment, order;
  staticFromList(wcetList, assignment, order);
  const Schedule atWcet = staticSchedule(a.graph, a.machines, assignment, order,
                                         a.wcetDurations);
  const Schedule atReduced = staticSchedule(a.graph, a.machines, assignment, order,
                                            a.reducedDurations);
  EXPECT_LE(atReduced.makespan, atWcet.makespan);
}

// Property: static schedules are monotone in durations — the time
// robustness of deterministic models ([1], Section 5.2.2) — across random
// graphs and random duration reductions.
class StaticRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaticRobustness, MonotoneUnderDurationReduction) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const int n = 4 + static_cast<int>(rng.below(6));
    TaskGraph g;
    for (int t = 0; t < n; ++t) {
      Task task;
      task.name = "T" + std::to_string(t);
      task.duration = rng.range(1, 9);
      for (int d = 0; d < t; ++d) {
        if (rng.chance(1, 4)) task.dependencies.push_back(d);
      }
      g.tasks.push_back(std::move(task));
    }
    const int machines = 2 + static_cast<int>(rng.below(2));
    std::vector<int> priority(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) priority[static_cast<std::size_t>(t)] = t;
    auto wcet = durationsOf(g);
    const Schedule list = listSchedule(g, machines, priority, wcet);
    std::vector<int> assignment, order;
    staticFromList(list, assignment, order);
    auto reduced = wcet;
    for (auto& d : reduced) {
      if (d > 1 && rng.chance(1, 2)) d -= rng.range(1, d - 1);
    }
    const Schedule slow = staticSchedule(g, machines, assignment, order, wcet);
    const Schedule fast = staticSchedule(g, machines, assignment, order, reduced);
    ASSERT_LE(fast.makespan, slow.makespan)
        << "static schedule must be time-robust (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticRobustness,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace cbip::timed
