// Tests for the glue-expressiveness constructions (E8): broadcast with
// priorities vs the rendezvous-only emulation that needs extra behaviour.
#include <gtest/gtest.h>

#include "core/expressiveness.hpp"
#include "engine/engine.hpp"
#include "verify/dfinder.hpp"
#include "verify/reachability.hpp"

namespace cbip {
namespace {

TEST(Expressiveness, PriorityVersionHasNoAuxiliaryComponents) {
  const BroadcastModel m = broadcastWithPriorities(3);
  EXPECT_EQ(m.auxiliaryComponents, 0);
  EXPECT_EQ(m.stepsPerRound, 1);
  EXPECT_EQ(m.system.instanceCount(), 4u);   // sender + 3 receivers
  EXPECT_EQ(m.system.connectorCount(), 4u);  // bcast + 3 work
}

TEST(Expressiveness, RendezvousVersionNeedsArbiter) {
  const BroadcastModel m = broadcastRendezvousOnly(3);
  EXPECT_EQ(m.auxiliaryComponents, 1);
  EXPECT_EQ(m.stepsPerRound, 4);              // 3 polls + done
  EXPECT_EQ(m.system.instanceCount(), 5u);    // sender + 3 receivers + arbiter
  EXPECT_EQ(m.system.connectorCount(), 10u);  // 2n yes/no + n work + done
}

TEST(Expressiveness, BroadcastDeliversToExactlyReadyReceivers) {
  const BroadcastModel m = broadcastWithPriorities(3);
  GlobalState g = initialState(m.system);
  // Initially all ready: the maximal interaction includes all receivers.
  auto enabled = applyPriorities(m.system, g, enabledInteractions(m.system, g));
  const EnabledInteraction* bcast = nullptr;
  for (const EnabledInteraction& ei : enabled) {
    if (m.system.connector(static_cast<std::size_t>(ei.connector)).name() == "bcast") {
      bcast = &ei;
    }
  }
  ASSERT_NE(bcast, nullptr);
  EXPECT_EQ(bcast->ends.size(), 4u);  // sender + 3 receivers
  executeDefault(m.system, g, *bcast);
  for (int r = 1; r <= 3; ++r) {
    EXPECT_EQ(g.components[static_cast<std::size_t>(r)].vars[0], 1);  // got
  }
  // All receivers now busy: the maximal broadcast is the lone sender.
  enabled = applyPriorities(m.system, g, enabledInteractions(m.system, g));
  for (const EnabledInteraction& ei : enabled) {
    if (m.system.connector(static_cast<std::size_t>(ei.connector)).name() == "bcast") {
      EXPECT_EQ(ei.ends.size(), 1u);
    }
  }
}

TEST(Expressiveness, PollingProtocolDeliversToReadyReceivers) {
  const BroadcastModel m = broadcastRendezvousOnly(2);
  GlobalState g = initialState(m.system);
  // Run one full round deterministically (no work interleavings): both
  // receivers ready -> both must be delivered, sender counts one round.
  auto fire = [&](const std::string& name) {
    for (const EnabledInteraction& ei : enabledInteractions(m.system, g)) {
      if (m.system.connector(static_cast<std::size_t>(ei.connector)).name() == name) {
        executeDefault(m.system, g, ei);
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(fire("yes0"));
  EXPECT_FALSE(fire("yes0"));  // arbiter moved on
  EXPECT_TRUE(fire("yes1"));
  EXPECT_TRUE(fire("done"));
  const int sender = m.system.instanceIndex("sender");
  EXPECT_EQ(g.components[static_cast<std::size_t>(sender)].vars[0], 1);  // sent
  for (const std::string r : {"r0", "r1"}) {
    const int i = m.system.instanceIndex(r);
    EXPECT_EQ(g.components[static_cast<std::size_t>(i)].vars[0], 1);  // got
  }
  // Round two with r0 busy: r0 answers no, r1 (still busy) answers no.
  EXPECT_TRUE(fire("no0"));
  EXPECT_TRUE(fire("no1"));
  EXPECT_TRUE(fire("done"));
  EXPECT_EQ(g.components[static_cast<std::size_t>(sender)].vars[0], 2);
}

TEST(Expressiveness, BothModelsAreDeadlockFree) {
  for (int n : {2, 3}) {
    const auto mp = broadcastWithPriorities(n, /*counters=*/false);
    const auto mr = broadcastRendezvousOnly(n, /*counters=*/false);
    EXPECT_TRUE(verify::explore(mp.system).deadlocks.empty());
    EXPECT_TRUE(verify::explore(mr.system).deadlocks.empty());
  }
}

TEST(Expressiveness, RendezvousEmulationHasLargerStateSpace) {
  // The measurable price of interactions-only glue: more components, more
  // connectors and a strictly larger reachable state space.
  for (int n : {2, 3, 4}) {
    const auto mp = broadcastWithPriorities(n, /*counters=*/false);
    const auto mr = broadcastRendezvousOnly(n, /*counters=*/false);
    const auto rp = verify::explore(mp.system);
    const auto rr = verify::explore(mr.system);
    ASSERT_TRUE(rp.complete);
    ASSERT_TRUE(rr.complete);
    EXPECT_GT(rr.states, rp.states) << "n=" << n;
    EXPECT_GT(mr.system.connectorCount(), mp.system.connectorCount());
    EXPECT_GT(mr.system.instanceCount(), mp.system.instanceCount());
  }
}

TEST(Expressiveness, ReceiversNeverDeliveredWhileBusy) {
  // Property sweep on random runs: `got` only increments via a delivery
  // that happened while the receiver was ready.
  const BroadcastModel m = broadcastRendezvousOnly(3);
  RandomPolicy policy(2024);
  SequentialEngine engine(m.system, policy);
  RunOptions opt;
  opt.maxSteps = 2000;
  const RunResult r = engine.run(opt);
  EXPECT_EQ(r.reason, StopReason::kStepLimit);
  // Final sanity: every receiver's got <= sender rounds + 1 (a receiver can
  // be delivered at most once per round; +1 for the in-flight round).
  const int sender = m.system.instanceIndex("sender");
  const Value sent = r.finalState.components[static_cast<std::size_t>(sender)].vars[0];
  for (int i = 0; i < 3; ++i) {
    const int ri = m.system.instanceIndex("r" + std::to_string(i));
    EXPECT_LE(r.finalState.components[static_cast<std::size_t>(ri)].vars[0], sent + 1);
  }
}

}  // namespace
}  // namespace cbip
