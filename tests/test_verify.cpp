// Tests for the verification layer: monolithic reachability, component
// invariants, traps / interaction invariants, the D-Finder deadlock check
// and incremental verification.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/engine.hpp"
#include "expr/compile.hpp"
#include "models/models.hpp"
#include "util/rng.hpp"
#include "verify/dfinder.hpp"
#include "verify/incremental.hpp"
#include "verify/invariants.hpp"
#include "verify/lint.hpp"
#include "verify/parallel.hpp"
#include "verify/reachability.hpp"

namespace cbip::verify {
namespace {

TEST(Reachability, CountsPhilosopherStates) {
  const System sys = models::philosophersAtomic(2, /*counters=*/false);
  const ReachResult r = explore(sys);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.deadlocks.empty());
  // 2 philosophers: interleavings of (eat_i, rel_i); states: both thinking,
  // p0 eating, p1 eating (forks shared, so never both): 3 control states.
  EXPECT_EQ(r.states, 3u);
}

TEST(Reachability, FindsTwoStepDeadlock) {
  const System sys = models::philosophersTwoStep(3, /*counters=*/false);
  const ReachResult r = explore(sys);
  EXPECT_TRUE(r.complete);
  ASSERT_FALSE(r.deadlocks.empty());
  // In the deadlock state every philosopher holds its left fork.
  const GlobalState& d = r.deadlocks.front();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sys.instance(static_cast<std::size_t>(i)).type->locationName(
                  d.components[static_cast<std::size_t>(i)].location),
              "hasLeft");
  }
}

TEST(Reachability, InvariantViolationDetected) {
  const System sys = models::tokenRing(3, /*counters=*/false);
  ReachOptions opt;
  opt.invariant = [&sys](const GlobalState& g) { return models::tokenRingMutex(sys, g); };
  const ReachResult r = explore(sys, opt);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.invariantViolation.has_value());
  EXPECT_TRUE(r.deadlocks.empty());
}

TEST(Reachability, StateBudgetRespected) {
  const System sys = models::philosophersAtomic(8, /*counters=*/false);
  ReachOptions opt;
  opt.maxStates = 20;  // well below the 47 reachable control states
  const ReachResult r = explore(sys, opt);
  EXPECT_FALSE(r.complete);
}

TEST(Reachability, GraphBisimulationReflexive) {
  const System sys = models::philosophersAtomic(3, /*counters=*/false);
  const LabeledGraph g = buildGraph(sys);
  EXPECT_TRUE(bisimilar(g, g));
}

TEST(Reachability, BisimulationDistinguishesModels) {
  const LabeledGraph a = buildGraph(models::philosophersAtomic(2, /*counters=*/false));
  const LabeledGraph b = buildGraph(models::philosophersAtomic(3, /*counters=*/false));
  EXPECT_FALSE(bisimilar(a, b));
}

TEST(ComponentInvariant, TracksGuardRelevantData) {
  // Counter bounded by guard: data exploration should be exact.
  auto t = std::make_shared<AtomicType>("C");
  const int run = t->addLocation("run");
  const int n = t->addVariable("n", 0);
  const int meals = t->addVariable("meals", 0);  // not in any guard
  const int tick = t->addPort("tick");
  t->addTransition(run, tick, Expr::local(n) < Expr::lit(3),
                   {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)},
                    expr::Assign{expr::VarRef{0, meals}, Expr::local(meals) + Expr::lit(1)}},
                   run);
  t->setInitialLocation(run);
  const ComponentInvariant inv = componentInvariant(*t);
  EXPECT_TRUE(inv.dataExact);
  // Abstract states: n in {0..3} -> 4 states (meals abstracted away).
  EXPECT_EQ(inv.statesExplored, 4u);
  EXPECT_TRUE(inv.guardFeasible[0]);
}

TEST(ComponentInvariant, UnboundedCounterFallsBack) {
  // Guard references an unbounded counter: exploration exceeds budget and
  // falls back to the (sound) location-only invariant.
  auto t = std::make_shared<AtomicType>("U");
  const int run = t->addLocation("run");
  const int n = t->addVariable("n", 0);
  const int tick = t->addPort("tick");
  t->addTransition(run, tick, Expr::local(n) >= Expr::lit(0),
                   {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}}, run);
  t->setInitialLocation(run);
  ComponentInvariantOptions opt;
  opt.maxStates = 100;
  const ComponentInvariant inv = componentInvariant(*t, opt);
  EXPECT_FALSE(inv.dataExact);
  EXPECT_TRUE(inv.guardFeasible[0]);
  EXPECT_TRUE(inv.reachableLocations[0]);
}

TEST(ComponentInvariant, UnreachableLocationExcluded) {
  auto t = std::make_shared<AtomicType>("L");
  t->addLocation("a");
  t->addLocation("island");  // no incoming transition
  const int p = t->addPort("p");
  t->addTransition(0, p, 0);
  t->setInitialLocation(0);
  const ComponentInvariant inv = componentInvariant(*t);
  EXPECT_TRUE(inv.reachableLocations[0]);
  EXPECT_FALSE(inv.reachableLocations[1]);
}

TEST(Traps, PhilosopherForkTrap) {
  const System sys = models::philosophersAtomic(2);
  std::vector<ComponentInvariant> invs;
  for (std::size_t i = 0; i < sys.instanceCount(); ++i) {
    invs.push_back(componentInvariant(*sys.instance(i).type));
  }
  const InteractionNet net = buildInteractionNet(sys, invs);
  const auto traps = enumerateTraps(sys, net);
  ASSERT_FALSE(traps.empty());
  for (const auto& trap : traps) {
    EXPECT_TRUE(isTrap(net, trap));
    EXPECT_TRUE(initiallyMarked(net, trap));
  }
}

TEST(Traps, TrapInvariantHoldsOnReachableStates) {
  // Every enumerated trap must hold on every reachable global state —
  // the soundness property of interaction invariants.
  const System sys = models::philosophersAtomic(3, /*counters=*/false);
  std::vector<ComponentInvariant> invs;
  for (std::size_t i = 0; i < sys.instanceCount(); ++i) {
    invs.push_back(componentInvariant(*sys.instance(i).type));
  }
  const InteractionNet net = buildInteractionNet(sys, invs);
  const auto traps = enumerateTraps(sys, net);
  ASSERT_FALSE(traps.empty());
  const LabeledGraph g = buildGraph(sys);
  for (const GlobalState& state : g.states) {
    for (const auto& trap : traps) {
      bool occupied = false;
      for (const Place& p : trap) {
        if (state.components[static_cast<std::size_t>(p.instance)].location == p.location) {
          occupied = true;
          break;
        }
      }
      EXPECT_TRUE(occupied) << "trap violated in state";
    }
  }
}

TEST(DFinder, CertifiesAtomicPhilosophersDeadlockFree) {
  for (int n : {2, 3, 4, 5}) {
    const System sys = models::philosophersAtomic(n);
    const DFinderResult r = checkDeadlockFreedom(sys);
    EXPECT_EQ(r.verdict, DFinderVerdict::kDeadlockFree) << "n=" << n;
  }
}

TEST(DFinder, FlagsTwoStepPhilosophers) {
  const System sys = models::philosophersTwoStep(3);
  const DFinderResult r = checkDeadlockFreedom(sys);
  ASSERT_EQ(r.verdict, DFinderVerdict::kPotentialDeadlock);
  // The witness is the real deadlock: all philosophers at hasLeft.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sys.instance(static_cast<std::size_t>(i)).type->locationName(
                  r.witnessLocations[static_cast<std::size_t>(i)]),
              "hasLeft");
  }
}

TEST(DFinder, CertifiesTokenRing) {
  const System sys = models::tokenRing(5);
  const DFinderResult r = checkDeadlockFreedom(sys);
  EXPECT_EQ(r.verdict, DFinderVerdict::kDeadlockFree);
}

TEST(DFinder, CertifiesGasStation) {
  const System sys = models::gasStation(2, 2);
  const DFinderResult r = checkDeadlockFreedom(sys);
  EXPECT_EQ(r.verdict, DFinderVerdict::kDeadlockFree);
}

TEST(DFinder, AgreesWithMonolithicOnDeadlockFreedom) {
  // Soundness cross-check: whenever D-Finder certifies deadlock-freedom,
  // exhaustive search must find no deadlock.
  const System cases[] = {models::philosophersAtomic(3, false), models::tokenRing(4, false),
                          models::producerConsumerBounded(2, 3),
                          models::gasStation(2, 2, false)};
  for (const System& sys : cases) {
    const DFinderResult df = checkDeadlockFreedom(sys);
    const ReachResult mono = explore(sys);
    ASSERT_TRUE(mono.complete);
    if (df.verdict == DFinderVerdict::kDeadlockFree) {
      EXPECT_TRUE(mono.deadlocks.empty());
    }
  }
}

TEST(DFinder, GcdInvariantProperty) {
  // E13 (Fig 6.1): GCD(x, y) is preserved along every reachable state.
  auto gcd = [](Value a, Value b) {
    while (b != 0) {
      const Value t = a % b;
      a = b;
      b = t;
    }
    return a;
  };
  const Value x0 = 36, y0 = 60;
  const System sys = models::gcdSystem(x0, y0);
  const LabeledGraph g = buildGraph(sys);
  for (const GlobalState& s : g.states) {
    EXPECT_EQ(gcd(s.components[0].vars[0], s.components[0].vars[1]), gcd(x0, y0));
  }
}

TEST(Incremental, PhilosophersBuiltConnectorByConnector) {
  const System full = models::philosophersAtomic(3);
  System base;
  for (const System::Instance& inst : full.instances()) {
    base.addInstance(inst.name, inst.type);
  }
  IncrementalVerifier verifier(std::move(base));
  IncrementalVerifier::StepResult last;
  for (const Connector& c : full.connectors()) last = verifier.addConnector(c);
  EXPECT_EQ(last.verdict, DFinderVerdict::kDeadlockFree);
}

TEST(Incremental, ReusesTrapsAcrossAdditions) {
  const System full = models::philosophersAtomic(4);
  System base;
  for (const System::Instance& inst : full.instances()) {
    base.addInstance(inst.name, inst.type);
  }
  IncrementalVerifier verifier(std::move(base));
  std::size_t reuses = 0;
  for (const Connector& c : full.connectors()) {
    const auto step = verifier.addConnector(c);
    reuses += step.trapsKept;
  }
  EXPECT_GT(reuses, 0u);
}

// ---- PR 10: pipeline equivalence ----------------------------------------

/// RAII toggles for the expression-compilation and parallel-verify
/// hatches, restoring the previous values on scope exit.
class CompileSwitch {
 public:
  explicit CompileSwitch(bool on) : prev_(expr::compilationEnabled()) {
    expr::setCompilationEnabled(on);
  }
  ~CompileSwitch() { expr::setCompilationEnabled(prev_); }
  CompileSwitch(const CompileSwitch&) = delete;
  CompileSwitch& operator=(const CompileSwitch&) = delete;

 private:
  bool prev_;
};

class ParallelSwitch {
 public:
  explicit ParallelSwitch(bool on) : prev_(parallelVerifyEnabled()) {
    setParallelVerifyEnabled(on);
  }
  ~ParallelSwitch() { setParallelVerifyEnabled(prev_); }
  ParallelSwitch(const ParallelSwitch&) = delete;
  ParallelSwitch& operator=(const ParallelSwitch&) = delete;

 private:
  bool prev_;
};

std::vector<System> equivalenceZoo() {
  std::vector<System> zoo;
  zoo.push_back(models::philosophersAtomic(6));
  zoo.push_back(models::philosophersTwoStep(4));
  zoo.push_back(models::tokenRing(8));
  zoo.push_back(models::gasStation(2, 3));
  return zoo;
}

TEST(PipelineEquivalence, CompiledAndTreeInvariantsAgree) {
  // The compiled fused-guard BFS and the symbolic tree walk must explore
  // the exact same abstract state space: all four invariant fields equal,
  // including the budget-fallback flag.
  for (const System& sys : equivalenceZoo()) {
    for (std::size_t i = 0; i < sys.instanceCount(); ++i) {
      const AtomicType& type = *sys.instance(i).type;
      ComponentInvariant compiled, tree;
      {
        CompileSwitch on(true);
        compiled = componentInvariant(type);
      }
      {
        CompileSwitch off(false);
        tree = componentInvariant(type);
      }
      EXPECT_EQ(compiled.reachableLocations, tree.reachableLocations) << type.name();
      EXPECT_EQ(compiled.guardFeasible, tree.guardFeasible) << type.name();
      EXPECT_EQ(compiled.dataExact, tree.dataExact) << type.name();
      EXPECT_EQ(compiled.statesExplored, tree.statesExplored) << type.name();
    }
  }
}

TEST(PipelineEquivalence, CompiledInvariantFallbackMatchesTree) {
  // Over-budget exploration must fall back identically under both modes.
  auto t = std::make_shared<AtomicType>("U");
  const int run = t->addLocation("run");
  const int n = t->addVariable("n", 0);
  const int tick = t->addPort("tick");
  t->addTransition(run, tick, Expr::local(n) >= Expr::lit(0),
                   {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}}, run);
  t->setInitialLocation(run);
  t->validate();
  ComponentInvariantOptions opt;
  opt.maxStates = 50;
  ComponentInvariant compiled, tree;
  {
    CompileSwitch on(true);
    compiled = componentInvariant(*t, opt);
  }
  {
    CompileSwitch off(false);
    tree = componentInvariant(*t, opt);
  }
  EXPECT_FALSE(compiled.dataExact);
  EXPECT_EQ(compiled.dataExact, tree.dataExact);
  EXPECT_EQ(compiled.guardFeasible, tree.guardFeasible);
  EXPECT_EQ(compiled.statesExplored, tree.statesExplored);
}

TEST(PipelineEquivalence, ParallelAndSerialBitIdentical) {
  // The acceptance bar: verdict, witness AND full trap sequence must be
  // byte-identical with the parallel portfolio on and off.
  for (const System& sys : equivalenceZoo()) {
    DFinderResult par, ser;
    {
      ParallelSwitch on(true);
      par = checkDeadlockFreedom(sys);
    }
    {
      ParallelSwitch off(false);
      ser = checkDeadlockFreedom(sys);
    }
    EXPECT_EQ(par.verdict, ser.verdict);
    EXPECT_EQ(par.witnessLocations, ser.witnessLocations);
    EXPECT_EQ(par.traps, ser.traps);
    EXPECT_EQ(par.booleanVariables, ser.booleanVariables);
    EXPECT_EQ(par.satConflicts, ser.satConflicts);
    EXPECT_EQ(par.satDecisions, ser.satDecisions);
  }
}

TEST(PipelineEquivalence, FastAndLegacyVerdictsAgree) {
  for (const System& sys : equivalenceZoo()) {
    DFinderOptions fast;
    DFinderOptions legacy;
    legacy.legacyPipeline = true;
    EXPECT_EQ(checkDeadlockFreedom(sys, fast).verdict,
              checkDeadlockFreedom(sys, legacy).verdict);
  }
}

TEST(PipelineEquivalence, WitnessBatchWidthDoesNotChangeTheVerdict) {
  // The batch width changes which witnesses are sampled per round (so the
  // reported witness may differ) but never the verdict.
  for (int batch : {1, 2, 8, 64}) {
    DFinderOptions opt;
    opt.witnessBatch = batch;
    const DFinderResult flagged =
        checkDeadlockFreedom(models::philosophersTwoStep(4), opt);
    EXPECT_EQ(flagged.verdict, DFinderVerdict::kPotentialDeadlock) << "batch=" << batch;
    EXPECT_FALSE(flagged.witnessLocations.empty());
    const DFinderResult certified =
        checkDeadlockFreedom(models::philosophersAtomic(6), opt);
    EXPECT_EQ(certified.verdict, DFinderVerdict::kDeadlockFree) << "batch=" << batch;
  }
}

// ---- PR 10: randomized incremental-vs-full -------------------------------

TEST(IncrementalRandomized, AddRemoveAgreesWithFullRecomputation) {
  // Random edit scripts over seeded systems: every incremental verdict
  // must match a from-scratch checkDeadlockFreedom of the edited system,
  // and every retained trap must still be a genuine initially-marked trap.
  const System sources[] = {models::philosophersAtomic(4), models::tokenRing(6)};
  for (const System& full : sources) {
    Rng rng(0xd1f1ce + full.connectorCount());
    System base;
    for (const System::Instance& inst : full.instances()) {
      base.addInstance(inst.name, inst.type);
    }
    IncrementalVerifier verifier(std::move(base));
    std::vector<Connector> pool(full.connectors().begin(), full.connectors().end());
    std::vector<Connector> absent = pool;  // not yet in the system
    std::vector<Connector> present;
    for (int step = 0; step < 12; ++step) {
      IncrementalVerifier::StepResult res;
      const bool doAdd = present.empty() || (!absent.empty() && rng.chance(2, 3));
      if (doAdd) {
        const std::size_t k = rng.index(absent.size());
        res = verifier.addConnector(absent[k]);
        present.push_back(absent[k]);
        absent.erase(absent.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        const std::size_t k = rng.index(present.size());
        res = verifier.removeConnector(k);
        absent.push_back(present[k]);
        present.erase(present.begin() + static_cast<std::ptrdiff_t>(k));
      }
      const DFinderResult fullCheck = checkDeadlockFreedom(verifier.system());
      EXPECT_EQ(res.verdict, fullCheck.verdict) << "step " << step;
      // Retained + rediscovered traps are invariants of the edited net.
      const InteractionNet net =
          buildInteractionNet(verifier.system(), verifier.invariants());
      for (const std::vector<Place>& trap : verifier.traps()) {
        EXPECT_TRUE(isTrap(net, trap)) << "step " << step;
        EXPECT_TRUE(initiallyMarked(net, trap)) << "step " << step;
      }
    }
  }
}

TEST(IncrementalRandomized, RemovalPreservesEveryTrap) {
  const System full = models::philosophersAtomic(5);
  System base;
  for (const System::Instance& inst : full.instances()) {
    base.addInstance(inst.name, inst.type);
  }
  IncrementalVerifier verifier(std::move(base));
  for (const Connector& c : full.connectors()) verifier.addConnector(c);
  const std::size_t before = verifier.traps().size();
  const IncrementalVerifier::StepResult res = verifier.removeConnector(0);
  EXPECT_EQ(res.trapsDropped, 0u);
  EXPECT_EQ(res.trapsKept, before);
}

// ---- PR 10: analysis-strengthening corner cases --------------------------

/// A type whose variable x has the exact interval [0, 3]: x starts at 0
/// and one transition assigns the constant 3 (the join stabilizes without
/// widening to top). Guards passed in are attached to a second transition
/// on a separate port so each case probes one guard.
std::shared_ptr<AtomicType> intervalEndpointType(const Expr& guard) {
  auto t = std::make_shared<AtomicType>("E");
  const int run = t->addLocation("run");
  const int x = t->addVariable("x", 0);
  const int set = t->addPort("set");
  const int probe = t->addPort("probe");
  t->addTransition(run, set, Expr::top(),
                   {expr::Assign{expr::VarRef{0, x}, Expr::lit(3)}}, run);
  t->addTransition(run, probe, guard, {}, run);
  t->setInitialLocation(run);
  t->validate();
  return t;
}

/// Runs strengthenWithAnalysis over a one-instance system of
/// `intervalEndpointType(guard)` with conservative (location-only style)
/// invariants; returns whether the probe guard survived.
bool probeGuardSurvives(const Expr& guard) {
  System sys;
  sys.addInstance("e", intervalEndpointType(guard));
  sys.validate();
  std::vector<ComponentInvariant> invs(1);
  invs[0].reachableLocations.assign(1, true);
  invs[0].guardFeasible.assign(2, true);
  strengthenWithAnalysis(sys, invs);
  EXPECT_TRUE(invs[0].guardFeasible[0]);  // the setter is never prunable
  return invs[0].guardFeasible[1];
}

TEST(StrengthenCorners, GuardsFeasibleOnlyAtIntervalEndpointsSurvive) {
  const int x = 0;
  // Feasible exactly at the upper endpoint x == 3: must NOT be pruned.
  EXPECT_TRUE(probeGuardSurvives(Expr::local(x) == Expr::lit(3)));
  EXPECT_TRUE(probeGuardSurvives(Expr::local(x) >= Expr::lit(3)));
  // Feasible exactly at the lower endpoint x == 0: must NOT be pruned.
  EXPECT_TRUE(probeGuardSurvives(Expr::local(x) == Expr::lit(0)));
  EXPECT_TRUE(probeGuardSurvives(Expr::local(x) <= Expr::lit(0)));
  // One past each endpoint: provably false, must be pruned.
  EXPECT_FALSE(probeGuardSurvives(Expr::local(x) == Expr::lit(4)));
  EXPECT_FALSE(probeGuardSurvives(Expr::local(x) > Expr::lit(3)));
  EXPECT_FALSE(probeGuardSurvives(Expr::local(x) < Expr::lit(0)));
  EXPECT_FALSE(probeGuardSurvives(Expr::local(x) == Expr::lit(-1)));
}

TEST(StrengthenCorners, MayRaiseGuardIsNeverPruned) {
  // 1 / x raises at x == 0, so even though `1 / x < 0` is false on every
  // non-raising path, pruning would hide the EvalError: keep the guard.
  const int x = 0;
  EXPECT_TRUE(probeGuardSurvives(Expr::lit(1) / Expr::local(x) < Expr::lit(0)));
}

TEST(StrengthenCorners, PruningIdenticalCompiledAndTree) {
  const int x = 0;
  const Expr guards[] = {Expr::local(x) == Expr::lit(3), Expr::local(x) == Expr::lit(4),
                         Expr::local(x) > Expr::lit(3),  Expr::local(x) >= Expr::lit(3),
                         Expr::local(x) <= Expr::lit(0), Expr::local(x) < Expr::lit(0),
                         Expr::lit(1) / Expr::local(x) < Expr::lit(0)};
  for (const Expr& g : guards) {
    bool compiled, tree;
    {
      CompileSwitch on(true);
      compiled = probeGuardSurvives(g);
    }
    {
      CompileSwitch off(false);
      tree = probeGuardSurvives(g);
    }
    EXPECT_EQ(compiled, tree) << g.toString();
  }
}

// ---- PR 10: verification-fed lints ---------------------------------------

TEST(VerifyLint, FlagsUnreachableLocation) {
  auto t = std::make_shared<AtomicType>("L");
  t->addLocation("a");
  t->addLocation("island");  // no incoming transition
  const int p = t->addPort("p");
  t->addTransition(0, p, Expr::top(), {}, 0);
  t->setInitialLocation(0);
  System sys;
  sys.addInstance("i", t);
  sys.validate();
  const std::vector<analyze::Diagnostic> diags = lintVerify(sys);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, analyze::LintKind::kUnreachableLocation);
  EXPECT_NE(diags[0].message.find("island"), std::string::npos);
  EXPECT_NE(diags[0].where.find("i"), std::string::npos);
}

TEST(VerifyLint, FlagsNeverEnabledInteraction) {
  // The connector's only interaction needs port `never`, whose single
  // transition is guarded provably false: the interaction can never fire.
  auto t = std::make_shared<AtomicType>("N");
  const int run = t->addLocation("run");
  const int never = t->addPort("never");
  const int go = t->addPort("go");
  t->addTransition(run, never, Expr::lit(0), {}, run);
  t->addTransition(run, go, Expr::top(), {}, run);
  t->setInitialLocation(run);
  System sys;
  const int a = sys.addInstance("a", t);
  const int b = sys.addInstance("b", t);
  Connector dead("dead");
  dead.addEnd(PortRef{a, never});
  dead.addEnd(PortRef{b, go});
  sys.addConnector(std::move(dead));
  Connector live("live");
  live.addEnd(PortRef{a, go});
  live.addEnd(PortRef{b, go});
  sys.addConnector(std::move(live));
  sys.validate();
  const std::vector<analyze::Diagnostic> diags = lintVerify(sys);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, analyze::LintKind::kInteractionNeverEnabled);
  EXPECT_NE(diags[0].where.find("dead"), std::string::npos);
}

TEST(VerifyLint, CleanModelsProduceNoDiagnostics) {
  for (const System& sys : equivalenceZoo()) {
    const std::vector<analyze::Diagnostic> diags = lintVerify(sys);
    EXPECT_TRUE(diags.empty()) << (diags.empty() ? "" : toString(diags.front()));
  }
}

// Parameterized consistency sweep: D-Finder never returns kDeadlockFree
// on a system whose exhaustive exploration has a deadlock.
class DFinderSoundness : public ::testing::TestWithParam<int> {};

TEST_P(DFinderSoundness, NeverCertifiesADeadlockedSystem) {
  const int n = GetParam();
  const System sys = models::philosophersTwoStep(n, /*counters=*/false);
  const DFinderResult df = checkDeadlockFreedom(sys);
  const ReachResult mono = explore(sys);
  ASSERT_TRUE(mono.complete);
  ASSERT_FALSE(mono.deadlocks.empty());
  EXPECT_EQ(df.verdict, DFinderVerdict::kPotentialDeadlock);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DFinderSoundness, ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace cbip::verify
