// Tests for the verification layer: monolithic reachability, component
// invariants, traps / interaction invariants, the D-Finder deadlock check
// and incremental verification.
#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "models/models.hpp"
#include "verify/dfinder.hpp"
#include "verify/incremental.hpp"
#include "verify/invariants.hpp"
#include "verify/reachability.hpp"

namespace cbip::verify {
namespace {

TEST(Reachability, CountsPhilosopherStates) {
  const System sys = models::philosophersAtomic(2, /*counters=*/false);
  const ReachResult r = explore(sys);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.deadlocks.empty());
  // 2 philosophers: interleavings of (eat_i, rel_i); states: both thinking,
  // p0 eating, p1 eating (forks shared, so never both): 3 control states.
  EXPECT_EQ(r.states, 3u);
}

TEST(Reachability, FindsTwoStepDeadlock) {
  const System sys = models::philosophersTwoStep(3, /*counters=*/false);
  const ReachResult r = explore(sys);
  EXPECT_TRUE(r.complete);
  ASSERT_FALSE(r.deadlocks.empty());
  // In the deadlock state every philosopher holds its left fork.
  const GlobalState& d = r.deadlocks.front();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sys.instance(static_cast<std::size_t>(i)).type->locationName(
                  d.components[static_cast<std::size_t>(i)].location),
              "hasLeft");
  }
}

TEST(Reachability, InvariantViolationDetected) {
  const System sys = models::tokenRing(3, /*counters=*/false);
  ReachOptions opt;
  opt.invariant = [&sys](const GlobalState& g) { return models::tokenRingMutex(sys, g); };
  const ReachResult r = explore(sys, opt);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.invariantViolation.has_value());
  EXPECT_TRUE(r.deadlocks.empty());
}

TEST(Reachability, StateBudgetRespected) {
  const System sys = models::philosophersAtomic(8, /*counters=*/false);
  ReachOptions opt;
  opt.maxStates = 20;  // well below the 47 reachable control states
  const ReachResult r = explore(sys, opt);
  EXPECT_FALSE(r.complete);
}

TEST(Reachability, GraphBisimulationReflexive) {
  const System sys = models::philosophersAtomic(3, /*counters=*/false);
  const LabeledGraph g = buildGraph(sys);
  EXPECT_TRUE(bisimilar(g, g));
}

TEST(Reachability, BisimulationDistinguishesModels) {
  const LabeledGraph a = buildGraph(models::philosophersAtomic(2, /*counters=*/false));
  const LabeledGraph b = buildGraph(models::philosophersAtomic(3, /*counters=*/false));
  EXPECT_FALSE(bisimilar(a, b));
}

TEST(ComponentInvariant, TracksGuardRelevantData) {
  // Counter bounded by guard: data exploration should be exact.
  auto t = std::make_shared<AtomicType>("C");
  const int run = t->addLocation("run");
  const int n = t->addVariable("n", 0);
  const int meals = t->addVariable("meals", 0);  // not in any guard
  const int tick = t->addPort("tick");
  t->addTransition(run, tick, Expr::local(n) < Expr::lit(3),
                   {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)},
                    expr::Assign{expr::VarRef{0, meals}, Expr::local(meals) + Expr::lit(1)}},
                   run);
  t->setInitialLocation(run);
  const ComponentInvariant inv = componentInvariant(*t);
  EXPECT_TRUE(inv.dataExact);
  // Abstract states: n in {0..3} -> 4 states (meals abstracted away).
  EXPECT_EQ(inv.statesExplored, 4u);
  EXPECT_TRUE(inv.guardFeasible[0]);
}

TEST(ComponentInvariant, UnboundedCounterFallsBack) {
  // Guard references an unbounded counter: exploration exceeds budget and
  // falls back to the (sound) location-only invariant.
  auto t = std::make_shared<AtomicType>("U");
  const int run = t->addLocation("run");
  const int n = t->addVariable("n", 0);
  const int tick = t->addPort("tick");
  t->addTransition(run, tick, Expr::local(n) >= Expr::lit(0),
                   {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}}, run);
  t->setInitialLocation(run);
  ComponentInvariantOptions opt;
  opt.maxStates = 100;
  const ComponentInvariant inv = componentInvariant(*t, opt);
  EXPECT_FALSE(inv.dataExact);
  EXPECT_TRUE(inv.guardFeasible[0]);
  EXPECT_TRUE(inv.reachableLocations[0]);
}

TEST(ComponentInvariant, UnreachableLocationExcluded) {
  auto t = std::make_shared<AtomicType>("L");
  t->addLocation("a");
  t->addLocation("island");  // no incoming transition
  const int p = t->addPort("p");
  t->addTransition(0, p, 0);
  t->setInitialLocation(0);
  const ComponentInvariant inv = componentInvariant(*t);
  EXPECT_TRUE(inv.reachableLocations[0]);
  EXPECT_FALSE(inv.reachableLocations[1]);
}

TEST(Traps, PhilosopherForkTrap) {
  const System sys = models::philosophersAtomic(2);
  std::vector<ComponentInvariant> invs;
  for (std::size_t i = 0; i < sys.instanceCount(); ++i) {
    invs.push_back(componentInvariant(*sys.instance(i).type));
  }
  const InteractionNet net = buildInteractionNet(sys, invs);
  const auto traps = enumerateTraps(sys, net);
  ASSERT_FALSE(traps.empty());
  for (const auto& trap : traps) {
    EXPECT_TRUE(isTrap(net, trap));
    EXPECT_TRUE(initiallyMarked(net, trap));
  }
}

TEST(Traps, TrapInvariantHoldsOnReachableStates) {
  // Every enumerated trap must hold on every reachable global state —
  // the soundness property of interaction invariants.
  const System sys = models::philosophersAtomic(3, /*counters=*/false);
  std::vector<ComponentInvariant> invs;
  for (std::size_t i = 0; i < sys.instanceCount(); ++i) {
    invs.push_back(componentInvariant(*sys.instance(i).type));
  }
  const InteractionNet net = buildInteractionNet(sys, invs);
  const auto traps = enumerateTraps(sys, net);
  ASSERT_FALSE(traps.empty());
  const LabeledGraph g = buildGraph(sys);
  for (const GlobalState& state : g.states) {
    for (const auto& trap : traps) {
      bool occupied = false;
      for (const Place& p : trap) {
        if (state.components[static_cast<std::size_t>(p.instance)].location == p.location) {
          occupied = true;
          break;
        }
      }
      EXPECT_TRUE(occupied) << "trap violated in state";
    }
  }
}

TEST(DFinder, CertifiesAtomicPhilosophersDeadlockFree) {
  for (int n : {2, 3, 4, 5}) {
    const System sys = models::philosophersAtomic(n);
    const DFinderResult r = checkDeadlockFreedom(sys);
    EXPECT_EQ(r.verdict, DFinderVerdict::kDeadlockFree) << "n=" << n;
  }
}

TEST(DFinder, FlagsTwoStepPhilosophers) {
  const System sys = models::philosophersTwoStep(3);
  const DFinderResult r = checkDeadlockFreedom(sys);
  ASSERT_EQ(r.verdict, DFinderVerdict::kPotentialDeadlock);
  // The witness is the real deadlock: all philosophers at hasLeft.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sys.instance(static_cast<std::size_t>(i)).type->locationName(
                  r.witnessLocations[static_cast<std::size_t>(i)]),
              "hasLeft");
  }
}

TEST(DFinder, CertifiesTokenRing) {
  const System sys = models::tokenRing(5);
  const DFinderResult r = checkDeadlockFreedom(sys);
  EXPECT_EQ(r.verdict, DFinderVerdict::kDeadlockFree);
}

TEST(DFinder, CertifiesGasStation) {
  const System sys = models::gasStation(2, 2);
  const DFinderResult r = checkDeadlockFreedom(sys);
  EXPECT_EQ(r.verdict, DFinderVerdict::kDeadlockFree);
}

TEST(DFinder, AgreesWithMonolithicOnDeadlockFreedom) {
  // Soundness cross-check: whenever D-Finder certifies deadlock-freedom,
  // exhaustive search must find no deadlock.
  const System cases[] = {models::philosophersAtomic(3, false), models::tokenRing(4, false),
                          models::producerConsumerBounded(2, 3),
                          models::gasStation(2, 2, false)};
  for (const System& sys : cases) {
    const DFinderResult df = checkDeadlockFreedom(sys);
    const ReachResult mono = explore(sys);
    ASSERT_TRUE(mono.complete);
    if (df.verdict == DFinderVerdict::kDeadlockFree) {
      EXPECT_TRUE(mono.deadlocks.empty());
    }
  }
}

TEST(DFinder, GcdInvariantProperty) {
  // E13 (Fig 6.1): GCD(x, y) is preserved along every reachable state.
  auto gcd = [](Value a, Value b) {
    while (b != 0) {
      const Value t = a % b;
      a = b;
      b = t;
    }
    return a;
  };
  const Value x0 = 36, y0 = 60;
  const System sys = models::gcdSystem(x0, y0);
  const LabeledGraph g = buildGraph(sys);
  for (const GlobalState& s : g.states) {
    EXPECT_EQ(gcd(s.components[0].vars[0], s.components[0].vars[1]), gcd(x0, y0));
  }
}

TEST(Incremental, PhilosophersBuiltConnectorByConnector) {
  const System full = models::philosophersAtomic(3);
  System base;
  for (const System::Instance& inst : full.instances()) {
    base.addInstance(inst.name, inst.type);
  }
  IncrementalVerifier verifier(std::move(base));
  IncrementalVerifier::StepResult last;
  for (const Connector& c : full.connectors()) last = verifier.addConnector(c);
  EXPECT_EQ(last.verdict, DFinderVerdict::kDeadlockFree);
}

TEST(Incremental, ReusesTrapsAcrossAdditions) {
  const System full = models::philosophersAtomic(4);
  System base;
  for (const System::Instance& inst : full.instances()) {
    base.addInstance(inst.name, inst.type);
  }
  IncrementalVerifier verifier(std::move(base));
  std::size_t reuses = 0;
  for (const Connector& c : full.connectors()) {
    const auto step = verifier.addConnector(c);
    reuses += step.trapsKept;
  }
  EXPECT_GT(reuses, 0u);
}

// Parameterized consistency sweep: D-Finder never returns kDeadlockFree
// on a system whose exhaustive exploration has a deadlock.
class DFinderSoundness : public ::testing::TestWithParam<int> {};

TEST_P(DFinderSoundness, NeverCertifiesADeadlockedSystem) {
  const int n = GetParam();
  const System sys = models::philosophersTwoStep(n, /*counters=*/false);
  const DFinderResult df = checkDeadlockFreedom(sys);
  const ReachResult mono = explore(sys);
  ASSERT_TRUE(mono.complete);
  ASSERT_FALSE(mono.deadlocks.empty());
  EXPECT_EQ(df.verdict, DFinderVerdict::kPotentialDeadlock);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DFinderSoundness, ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace cbip::verify
