// Tests for the incremental enabled-interaction cache: the dirty-set
// maintenance must agree exactly with a from-scratch rescan at every step
// of randomized runs, and the engines must produce identical traces with
// the cache on or off.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/semantics.hpp"
#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "models/models.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cbip {
namespace {

/// Settles initial tau steps the way the engines do before offering.
void settle(const System& sys, GlobalState& g) {
  for (std::size_t i = 0; i < sys.instanceCount(); ++i) {
    runInternal(*sys.instance(i).type, g.components[i]);
  }
}

/// Drives `steps` random interactions, cross-checking the cache against a
/// from-scratch `enabledInteractions()` scan after every execution.
void crossCheck(const System& sys, std::uint64_t seed, int steps) {
  GlobalState g = initialState(sys);
  settle(sys, g);
  EnabledInteractionCache cache(sys);
  cache.reset(g);
  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    const std::vector<EnabledInteraction> fresh = enabledInteractions(sys, g);
    ASSERT_EQ(cache.enabled(), fresh) << "divergence at step " << step;
    ASSERT_EQ(cache.empty(), fresh.empty());
    if (fresh.empty()) return;  // deadlock: nothing more to drive
    const EnabledInteraction& ei = fresh[rng.index(fresh.size())];
    std::vector<int> choice;
    choice.reserve(ei.choices.size());
    for (const std::vector<int>& options : ei.choices) {
      choice.push_back(static_cast<int>(rng.index(options.size())));
    }
    execute(sys, g, ei, choice);
    cache.updateAfterExecute(g, ei);
  }
}

TEST(EnabledInteractionCache, AgreesOnPhilosophersAtomic) {
  crossCheck(models::philosophersAtomic(5), 11, 300);
}

TEST(EnabledInteractionCache, AgreesOnEveryScanPath) {
  // The incremental maintenance must stay exact on all three evaluation
  // paths: batched scan (default), compiled scalar (CBIP_NO_BATCH_SCAN)
  // and the tree-walking interpreter (CBIP_NO_COMPILE).
  struct Path {
    bool compiled;
    bool batch;
    const char* name;
  };
  for (const Path& path : {Path{true, true, "batched"}, Path{true, false, "scalar"},
                           Path{false, false, "interpreted"}}) {
    SCOPED_TRACE(path.name);
    const bool savedCompile = expr::compilationEnabled();
    const bool savedBatch = batchScanEnabled();
    expr::setCompilationEnabled(path.compiled);
    setBatchScanEnabled(path.batch);
    crossCheck(models::philosophersAtomic(5), 11, 200);
    crossCheck(models::gasStation(2, 3), 5, 200);
    expr::setCompilationEnabled(savedCompile);
    setBatchScanEnabled(savedBatch);
  }
}

TEST(SequentialEngine, BatchScanOnAndOffProduceIdenticalRuns) {
  for (const char* model : {"phil", "ring", "gas"}) {
    const System sys = std::string(model) == "phil"   ? models::philosophersAtomic(6)
                       : std::string(model) == "ring" ? models::tokenRing(8)
                                                      : models::gasStation(2, 4);
    RunResult runs[2];
    for (int batch = 0; batch < 2; ++batch) {
      const bool saved = batchScanEnabled();
      setBatchScanEnabled(batch == 1);
      RandomPolicy policy(99);
      SequentialEngine engine(sys, policy);
      RunOptions opt;
      opt.maxSteps = 400;
      runs[batch] = engine.run(opt);
      setBatchScanEnabled(saved);
    }
    EXPECT_EQ(runs[0].reason, runs[1].reason) << model;
    EXPECT_EQ(runs[0].steps, runs[1].steps) << model;
    EXPECT_EQ(runs[0].finalState, runs[1].finalState) << model;
    ASSERT_EQ(runs[0].trace.events.size(), runs[1].trace.events.size()) << model;
    for (std::size_t i = 0; i < runs[0].trace.events.size(); ++i) {
      EXPECT_EQ(runs[0].trace.events[i].label, runs[1].trace.events[i].label) << model;
    }
  }
}

TEST(EnabledInteractionCache, AgreesOnPhilosophersTwoStep) {
  // Runs into the circular-wait deadlock on some seeds; the cache must
  // agree on the empty set there too.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    crossCheck(models::philosophersTwoStep(4), seed, 200);
  }
}

TEST(EnabledInteractionCache, AgreesOnGasStation) {
  crossCheck(models::gasStation(2, 3), 5, 300);
}

TEST(EnabledInteractionCache, AgreesOnProducerConsumer) {
  crossCheck(models::producerConsumer(3), 17, 300);
}

TEST(EnabledInteractionCache, AgreesOnTokenRing) {
  crossCheck(models::tokenRing(6), 23, 300);
}

TEST(EnabledInteractionCache, AgreesUnderDirtySupersets) {
  // update() with more instances dirty than necessary must stay exact.
  const System sys = models::philosophersAtomic(4);
  GlobalState g = initialState(sys);
  settle(sys, g);
  EnabledInteractionCache cache(sys);
  cache.reset(g);
  std::vector<int> all;
  for (std::size_t i = 0; i < sys.instanceCount(); ++i) all.push_back(static_cast<int>(i));
  Rng rng(29);
  for (int step = 0; step < 100; ++step) {
    const std::vector<EnabledInteraction> fresh = enabledInteractions(sys, g);
    ASSERT_EQ(cache.enabled(), fresh);
    ASSERT_FALSE(fresh.empty());
    executeDefault(sys, g, fresh[rng.index(fresh.size())]);
    cache.update(g, all);
  }
}

TEST(SequentialEngine, CacheOnAndOffProduceIdenticalRuns) {
  for (const char* model : {"phil", "ring", "gas"}) {
    const System sys = std::string(model) == "phil"   ? models::philosophersAtomic(6)
                       : std::string(model) == "ring" ? models::tokenRing(8)
                                                      : models::gasStation(2, 4);
    RunResult runs[2];
    for (int cached = 0; cached < 2; ++cached) {
      RandomPolicy policy(99);
      SequentialEngine engine(sys, policy);
      RunOptions opt;
      opt.maxSteps = 400;
      opt.incrementalCache = (cached == 1);
      runs[cached] = engine.run(opt);
    }
    EXPECT_EQ(runs[0].reason, runs[1].reason) << model;
    EXPECT_EQ(runs[0].steps, runs[1].steps) << model;
    EXPECT_EQ(runs[0].finalState, runs[1].finalState) << model;
    ASSERT_EQ(runs[0].trace.events.size(), runs[1].trace.events.size()) << model;
    for (std::size_t i = 0; i < runs[0].trace.events.size(); ++i) {
      EXPECT_EQ(runs[0].trace.events[i].label, runs[1].trace.events[i].label) << model;
    }
  }
}

TEST(MultiThreadEngine, CacheOnAndOffProduceIdenticalRuns) {
  const System sys = models::philosophersAtomic(5);
  RunResult runs[2];
  for (int cached = 0; cached < 2; ++cached) {
    RandomPolicy policy(7);
    MultiThreadEngine engine(sys, policy);
    MtOptions opt;
    opt.maxSteps = 200;
    opt.incrementalCache = (cached == 1);
    runs[cached] = engine.run(opt);
  }
  EXPECT_EQ(runs[0].steps, runs[1].steps);
  EXPECT_EQ(runs[0].finalState, runs[1].finalState);
  ASSERT_EQ(runs[0].trace.events.size(), runs[1].trace.events.size());
  for (std::size_t i = 0; i < runs[0].trace.events.size(); ++i) {
    EXPECT_EQ(runs[0].trace.events[i].label, runs[1].trace.events[i].label);
  }
}

TEST(System, ConnectorsOfReverseIndex) {
  const System sys = models::philosophersAtomic(3);
  std::vector<std::vector<int>> expected(sys.instanceCount());
  for (std::size_t ci = 0; ci < sys.connectorCount(); ++ci) {
    for (const ConnectorEnd& e : sys.connector(ci).ends()) {
      std::vector<int>& list = expected[static_cast<std::size_t>(e.port.instance)];
      if (list.empty() || list.back() != static_cast<int>(ci)) {
        list.push_back(static_cast<int>(ci));
      }
    }
  }
  for (std::size_t i = 0; i < sys.instanceCount(); ++i) {
    EXPECT_EQ(sys.connectorsOf(i), expected[i]) << "instance " << i;
  }
}

TEST(System, ConnectorsOfInvalidatedByMutation) {
  System sys = models::philosophersAtomic(2);
  const std::size_t before = sys.connectorsOf(0).size();
  // Adding a connector on instance 0 must show up in the reverse index.
  Connector extra("extra");
  extra.addSynchron(PortRef{0, 0});
  sys.addConnector(std::move(extra));
  EXPECT_EQ(sys.connectorsOf(0).size(), before + 1);
  EXPECT_THROW(static_cast<void>(sys.connectorsOf(sys.instanceCount())), ModelError);
}

}  // namespace
}  // namespace cbip
