// Tests for the Lustre frontend: parser, reference interpreter, and the
// structure-preserving BIP embedding of Fig 5.2 (E1/E2).
#include <gtest/gtest.h>

#include "frontends/lustre/lustre.hpp"
#include "util/require.hpp"

namespace cbip::lustre {
namespace {

constexpr const char* kIntegrator = R"(
-- Fig 5.2: Y = X + pre(Y)
node integrator(x: int) returns (y: int);
let
  y = x + pre(y);
tel
)";

TEST(LustreParser, ParsesIntegrator) {
  const Program p = parse(kIntegrator);
  ASSERT_EQ(p.nodes.size(), 1u);
  const NodeDecl& n = p.node("integrator");
  EXPECT_EQ(n.inputs, std::vector<std::string>{"x"});
  EXPECT_EQ(n.outputs, std::vector<std::string>{"y"});
  ASSERT_EQ(n.equations.size(), 1u);
  EXPECT_EQ(n.equations[0].first, "y");
}

TEST(LustreParser, SyntaxErrors) {
  EXPECT_THROW(parse("node f(x: int) returns (y: int); let y = ; tel"), ModelError);
  EXPECT_THROW(parse("node f(x: int) (y: int); let y = x; tel"), ModelError);
  EXPECT_THROW(parse(""), ModelError);
  EXPECT_THROW(parse("node f(x: float) returns (y: int); let y = x; tel"), ModelError);
}

TEST(LustreInterpreter, IntegratorSumsItsInput) {
  const Program p = parse(kIntegrator);
  Interpreter interp(p.node("integrator"));
  // X = 0,1,2,3,... => Y = 0,1,3,6,... (prefix sums)
  std::int64_t expected = 0;
  for (int t = 0; t < 10; ++t) {
    expected += t;
    const auto out = interp.step({{"x", t}});
    EXPECT_EQ(out.at("y"), expected) << "cycle " << t;
  }
}

TEST(LustreInterpreter, ArrowInitializes) {
  const Program p = parse(R"(
node counter(tick: int) returns (n: int);
let
  n = 0 -> pre(n) + tick;
tel
)");
  Interpreter interp(p.node("counter"));
  EXPECT_EQ(interp.step({{"tick", 5}}).at("n"), 0);   // first cycle: arrow left
  EXPECT_EQ(interp.step({{"tick", 5}}).at("n"), 5);   // 0 + 5
  EXPECT_EQ(interp.step({{"tick", 2}}).at("n"), 7);
}

TEST(LustreInterpreter, IfThenElseAndLocals) {
  const Program p = parse(R"(
node clamp(x: int) returns (y: int);
var big: bool;
let
  big = x > 10;
  y = if big then 10 else x;
tel
)");
  Interpreter interp(p.node("clamp"));
  EXPECT_EQ(interp.step({{"x", 3}}).at("y"), 3);
  EXPECT_EQ(interp.step({{"x", 42}}).at("y"), 10);
}

TEST(LustreInterpreter, EquationOrderDoesNotMatter) {
  const Program p = parse(R"(
node f(x: int) returns (y: int);
var a: int;
let
  y = a * 2;
  a = x + 1;
tel
)");
  Interpreter interp(p.node("f"));
  EXPECT_EQ(interp.step({{"x", 4}}).at("y"), 10);
}

TEST(LustreInterpreter, InstantaneousCycleRejected) {
  const Program p = parse("node f(x: int) returns (y: int); let y = y + 1; tel");
  Interpreter interp(p.node("f"));
  EXPECT_THROW(interp.step({{"x", 0}}), ModelError);
}

TEST(LustreEmbedding, StructurePreservation) {
  // Fig 5.2: one component per operator (B+ and Bpre), wires for the
  // dataflow connections, global str/cmp.
  const Program p = parse(kIntegrator);
  const Embedding e = embed(p.node("integrator"), {{"x", InputStream{0, 1, 0}}});
  EXPECT_EQ(e.operatorComponents, 2);  // + and pre
  // components: source, +, pre, sink
  EXPECT_EQ(e.system.instanceCount(), 4u);
  // connectors: str, cmp, wires: src->+, +->pre, pre->+, +->sink
  EXPECT_EQ(e.wires, 4);
  EXPECT_EQ(e.system.connectorCount(), 6u);
}

TEST(LustreEmbedding, IntegratorStreamsMatchInterpreter) {
  // E1: the embedded BIP system computes exactly the reference semantics.
  const Program p = parse(kIntegrator);
  const NodeDecl& node = p.node("integrator");
  const Embedding e = embed(node, {{"x", InputStream{0, 1, 0}}});  // x = t
  const auto streams = runEmbedded(e, 12);
  Interpreter interp(node);
  for (int t = 0; t < 12; ++t) {
    const auto ref = interp.step({{"x", t}});
    EXPECT_EQ(streams.at("y")[static_cast<std::size_t>(t)], ref.at("y")) << "cycle " << t;
  }
}

TEST(LustreEmbedding, ArrowAndIteMatchInterpreter) {
  const char* src = R"(
node speedo(x: int) returns (fast: int; speed: int);
let
  speed = x - (0 -> pre(x));
  fast = if speed > 3 then 1 else 0;
tel
)";
  const Program p = parse(src);
  const NodeDecl& node = p.node("speedo");
  const Embedding e = embed(node, {{"x", InputStream{0, 2, 0}}});  // x = 2t
  const auto streams = runEmbedded(e, 10);
  Interpreter interp(node);
  for (int t = 0; t < 10; ++t) {
    const auto ref = interp.step({{"x", 2 * t}});
    EXPECT_EQ(streams.at("speed")[static_cast<std::size_t>(t)], ref.at("speed")) << t;
    EXPECT_EQ(streams.at("fast")[static_cast<std::size_t>(t)], ref.at("fast")) << t;
  }
}

TEST(LustreEmbedding, RejectsInstantaneousCycle) {
  const Program p = parse("node f(x: int) returns (y: int); let y = y + x; tel");
  EXPECT_THROW(embed(p.node("f"), {{"x", InputStream{}}}), ModelError);
}

/// Chain of n integrators: y1 = x + pre(y1); y_i = y_{i-1} + pre(y_i).
std::string chainProgram(int n) {
  std::string src = "node chain(x: int) returns (y" + std::to_string(n) + ": int);\n";
  if (n > 1) {
    src += "var ";
    for (int i = 1; i < n; ++i) {
      src += "y" + std::to_string(i) + (i + 1 < n ? ", " : ": int;\n");
    }
  }
  src += "let\n";
  for (int i = 1; i <= n; ++i) {
    const std::string prev = i == 1 ? "x" : "y" + std::to_string(i - 1);
    src += "  y" + std::to_string(i) + " = " + prev + " + pre(y" + std::to_string(i) + ");\n";
  }
  src += "tel\n";
  return src;
}

class ChainSize : public ::testing::TestWithParam<int> {};

TEST_P(ChainSize, GeneratedModelSizeIsLinear) {
  // E2: "the generated BIP models ... size is linear with respect to the
  // initial program size" — 2 operator components and 3-4 wires per stage.
  const int n = GetParam();
  const Program p = parse(chainProgram(n));
  const Embedding e = embed(p.node("chain"), {{"x", InputStream{1, 0, 0}}});
  EXPECT_EQ(e.operatorComponents, 2 * n);
  EXPECT_EQ(e.system.instanceCount(), static_cast<std::size_t>(2 * n + 2));
  EXPECT_EQ(e.wires, 3 * n + 1);  // stage input, pre in, pre out; + sink
}

TEST_P(ChainSize, ChainMatchesInterpreter) {
  const int n = GetParam();
  const Program p = parse(chainProgram(n));
  const NodeDecl& node = p.node("chain");
  const Embedding e = embed(node, {{"x", InputStream{1, 0, 0}}});  // x = 1
  const auto streams = runEmbedded(e, 8);
  Interpreter interp(node);
  const std::string out = "y" + std::to_string(n);
  for (int t = 0; t < 8; ++t) {
    const auto ref = interp.step({{"x", 1}});
    EXPECT_EQ(streams.at(out)[static_cast<std::size_t>(t)], ref.at(out)) << "cycle " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainSize, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace cbip::lustre
