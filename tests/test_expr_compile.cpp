// Tests for the bytecode expression compiler and the compiled execution
// path: randomized differential checks (compiled evaluation == tree
// walking, including division-by-zero error behaviour) and engine-level
// cross-checks (bit-identical traces with compilation on vs the
// interpreter escape hatch, for both engines).
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/semantics.hpp"
#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "expr/compile.hpp"
#include "models/models.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cbip {
namespace {

using expr::Expr;
using expr::ExprProgram;
using expr::VarRef;

/// Restores the global compilation switch on scope exit.
class CompileSwitch {
 public:
  explicit CompileSwitch(bool on) : saved_(expr::compilationEnabled()) {
    expr::setCompilationEnabled(on);
  }
  ~CompileSwitch() { expr::setCompilationEnabled(saved_); }

 private:
  bool saved_;
};

Expr v(int i) { return Expr::local(i); }

// ---- program-level behaviour --------------------------------------------

TEST(ExprCompile, LiteralsAndVariables) {
  std::vector<Value> frame{10, -3};
  EXPECT_EQ(expr::compileLocal(Expr::lit(42)).run(frame), 42);
  EXPECT_EQ(expr::compileLocal(v(0)).run(frame), 10);
  EXPECT_EQ(expr::compileLocal(v(1)).run(frame), -3);
}

TEST(ExprCompile, ArithmeticAndComparisons) {
  std::vector<Value> frame{7, 3};
  EXPECT_EQ(expr::compileLocal(v(0) + v(1)).run(frame), 10);
  EXPECT_EQ(expr::compileLocal(v(0) - v(1)).run(frame), 4);
  EXPECT_EQ(expr::compileLocal(v(0) * v(1)).run(frame), 21);
  EXPECT_EQ(expr::compileLocal(v(0) / v(1)).run(frame), 2);
  EXPECT_EQ(expr::compileLocal(v(0) % v(1)).run(frame), 1);
  EXPECT_EQ(expr::compileLocal(-v(0)).run(frame), -7);
  EXPECT_EQ(expr::compileLocal(Expr::min(v(0), v(1))).run(frame), 3);
  EXPECT_EQ(expr::compileLocal(Expr::max(v(0), v(1))).run(frame), 7);
  EXPECT_EQ(expr::compileLocal(Expr::abs(v(1) - v(0))).run(frame), 4);
  EXPECT_EQ(expr::compileLocal(v(0) > v(1)).run(frame), 1);
  EXPECT_EQ(expr::compileLocal(v(0) <= v(1)).run(frame), 0);
}

TEST(ExprCompile, DivisionByZeroThrows) {
  std::vector<Value> frame{1, 0};
  EXPECT_THROW(expr::compileLocal(v(0) / v(1)).run(frame), EvalError);
  EXPECT_THROW(expr::compileLocal(v(0) % v(1)).run(frame), EvalError);
}

TEST(ExprCompile, ShortCircuitSkipsDivisionByZero) {
  // (v0 != 0) && (1/v0 > 0): the division must not execute when v0 == 0.
  const Expr guarded = (v(0) != Expr::lit(0)) && (Expr::lit(1) / v(0) > Expr::lit(0));
  const ExprProgram p = expr::compileLocal(guarded);
  std::vector<Value> frame{0};
  EXPECT_EQ(p.run(frame), 0);
  frame[0] = 1;  // 1/1 > 0
  EXPECT_EQ(p.run(frame), 1);
  // Same for || short-circuiting past a doomed right operand.
  const Expr orGuard = (v(0) == Expr::lit(0)) || (Expr::lit(1) / v(0) > Expr::lit(0));
  frame[0] = 0;
  EXPECT_EQ(expr::compileLocal(orGuard).run(frame), 1);
}

TEST(ExprCompile, IteEvaluatesOnlyTakenBranch) {
  const Expr e = Expr::ite(v(0), Expr::lit(10) / v(0), Expr::lit(-1));
  const ExprProgram p = expr::compileLocal(e);
  std::vector<Value> frame{5};
  EXPECT_EQ(p.run(frame), 2);
  frame[0] = 0;  // the division (by zero) sits in the untaken branch
  EXPECT_EQ(p.run(frame), -1);
}

TEST(ExprCompile, BuilderFoldingShrinksPrograms) {
  // The combinators fold constants at construction, so these compile to a
  // single push / tiny programs.
  EXPECT_EQ(expr::compileLocal(Expr::lit(2) + Expr::lit(3)).size(), 1u);
  EXPECT_EQ(expr::compileLocal(Expr::ite(Expr::lit(1), v(0), v(1) / Expr::lit(0))).size(), 1u);
  EXPECT_EQ(expr::compileLocal(Expr::top() && (v(0) < v(1))).size(), 3u);
  // Division by a zero literal must survive folding as a runtime error.
  std::vector<Value> frame{1, 2};
  EXPECT_THROW(expr::compileLocal(Expr::lit(1) / Expr::lit(0)).run(frame), EvalError);
}

TEST(ExprCompile, CustomSlotMapAndUnmappableReferences) {
  // Scope 3 maps to slots 10+index; anything else must fail at compile
  // time, not at run time.
  const expr::SlotMap slots = [](VarRef r) {
    require(r.scope == 3, "unmappable scope");
    return 10 + r.index;
  };
  std::vector<Value> frame(12, 0);
  frame[10] = 6;
  frame[11] = 7;
  const Expr e = Expr::var(3, 0) * Expr::var(3, 1);
  EXPECT_EQ(expr::compile(e, slots).run(frame), 42);
  EXPECT_THROW(expr::compile(v(0), slots), ModelError);
}

// ---- randomized differential test ---------------------------------------

/// Generates a random expression over v0..v3 covering every operator,
/// including division and modulo (which may fail at run time).
Expr randomExpr(Rng& rng, int depth) {
  if (depth == 0 || rng.chance(1, 4)) {
    return rng.chance(1, 2) ? Expr::lit(rng.range(-3, 3))
                            : v(static_cast<int>(rng.below(4)));
  }
  switch (rng.below(16)) {
    case 0: return randomExpr(rng, depth - 1) + randomExpr(rng, depth - 1);
    case 1: return randomExpr(rng, depth - 1) - randomExpr(rng, depth - 1);
    case 2: return randomExpr(rng, depth - 1) * randomExpr(rng, depth - 1);
    case 3: return randomExpr(rng, depth - 1) / randomExpr(rng, depth - 1);
    case 4: return randomExpr(rng, depth - 1) % randomExpr(rng, depth - 1);
    case 5: return -randomExpr(rng, depth - 1);
    case 6: return Expr::min(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
    case 7: return Expr::max(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
    case 8: return Expr::abs(randomExpr(rng, depth - 1));
    case 9: return randomExpr(rng, depth - 1) == randomExpr(rng, depth - 1);
    case 10: return randomExpr(rng, depth - 1) < randomExpr(rng, depth - 1);
    case 11: return randomExpr(rng, depth - 1) >= randomExpr(rng, depth - 1);
    case 12: return randomExpr(rng, depth - 1) && randomExpr(rng, depth - 1);
    case 13: return randomExpr(rng, depth - 1) || randomExpr(rng, depth - 1);
    case 14: return !randomExpr(rng, depth - 1);
    default:
      return Expr::ite(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1),
                       randomExpr(rng, depth - 1));
  }
}

/// Evaluates to a value or "threw EvalError".
std::optional<Value> tryEval(const std::function<Value()>& f) {
  try {
    return f();
  } catch (const EvalError&) {
    return std::nullopt;
  }
}

class CompileDifferential : public ::testing::TestWithParam<int> {};

TEST_P(CompileDifferential, CompiledAgreesWithInterpreter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 300; ++round) {
    const Expr e = randomExpr(rng, 4);
    const ExprProgram p = expr::compileLocal(e);
    for (int k = 0; k < 10; ++k) {
      std::vector<Value> vars{rng.range(-3, 3), rng.range(-3, 3), rng.range(-3, 3),
                              rng.range(-3, 3)};
      const auto interpreted = tryEval([&] { return e.eval(vars); });
      const auto compiled = tryEval([&] { return p.run(vars); });
      // Either both throw EvalError or both produce the same value. (Which
      // of several doomed subexpressions raises first may differ: the
      // interpreter evaluates divisors before dividends.)
      ASSERT_EQ(interpreted.has_value(), compiled.has_value())
          << e.toString() << " with vars " << vars[0] << "," << vars[1] << "," << vars[2]
          << "," << vars[3];
      if (interpreted.has_value()) {
        ASSERT_EQ(*interpreted, *compiled) << e.toString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompileDifferential, ::testing::Values(1, 2, 3, 4, 5));

// ---- builder constant folding -------------------------------------------

TEST(BuilderFolding, FoldsConstantOperands) {
  EXPECT_EQ((Expr::lit(2) + Expr::lit(3)).literal(), 5);
  EXPECT_EQ((Expr::lit(7) * Expr::lit(-2)).literal(), -14);
  EXPECT_EQ((Expr::lit(7) < Expr::lit(9)).literal(), 1);
  EXPECT_EQ(Expr::min(Expr::lit(4), Expr::lit(2)).literal(), 2);
  EXPECT_EQ((!Expr::lit(5)).literal(), 0);
  EXPECT_TRUE((Expr::lit(1) && Expr::lit(1)).isTrue());
}

TEST(BuilderFolding, IdentitiesReturnTheOperand) {
  const Expr x = v(0);
  EXPECT_TRUE((x + Expr::lit(0)).equals(x));
  EXPECT_TRUE((Expr::lit(0) + x).equals(x));
  EXPECT_TRUE((x - Expr::lit(0)).equals(x));
  EXPECT_TRUE((x * Expr::lit(1)).equals(x));
  EXPECT_TRUE((Expr::lit(1) * x).equals(x));
  EXPECT_TRUE((x / Expr::lit(1)).equals(x));
  EXPECT_TRUE(Expr::ite(Expr::lit(1), x, v(1)).equals(x));
  EXPECT_TRUE(Expr::ite(Expr::lit(0), v(1), x).equals(x));
}

TEST(BuilderFolding, TrueGuardConjunctionKeepsBooleanOperand) {
  // top() && e folds to e when e is boolean-valued — the common guard
  // shape — so trivial-guard checks (isTrue) see through composition.
  const Expr cmp = v(0) < v(1);
  EXPECT_TRUE((Expr::top() && cmp).equals(cmp));
  EXPECT_TRUE((cmp && Expr::top()).equals(cmp));
  EXPECT_TRUE((Expr::top() && Expr::top()).isTrue());
  // Non-boolean operands are normalized to their truthiness instead.
  std::vector<Value> vars{5, 0};
  EXPECT_EQ((Expr::top() && v(0)).eval(vars), 1);
  EXPECT_EQ((Expr::top() && v(1)).eval(vars), 0);
}

TEST(BuilderFolding, NeverDropsPossibleErrors) {
  std::vector<Value> vars{0};
  // x * 0 and x && false keep x: it may raise at run time.
  EXPECT_THROW(((Expr::lit(1) / v(0)) * Expr::lit(0)).eval(vars), EvalError);
  EXPECT_THROW(((Expr::lit(1) / v(0) > Expr::lit(0)) && Expr::lit(0)).eval(vars), EvalError);
  // Constant division by zero stays a runtime error.
  EXPECT_THROW((Expr::lit(1) / Expr::lit(0)).eval(vars), EvalError);
  EXPECT_THROW((Expr::lit(1) % Expr::lit(0)).eval(vars), EvalError);
  // But a short-circuited right operand still folds away.
  EXPECT_EQ((Expr::lit(0) && (Expr::lit(1) / v(0))).literal(), 0);
}

TEST(ExprCompile, DuplicatePortExportsRejected) {
  // A variable exported twice through one port would alias two connector
  // frame slots (a down write through one slot would not be observable
  // through the other), so validation forbids it.
  AtomicType t("T");
  const int l = t.addLocation("l");
  const int x = t.addVariable("x", 0);
  t.addPort("p", {x, x});
  t.setInitialLocation(l);
  EXPECT_THROW(t.validate(), ModelError);
}

// ---- engine-level cross-checks ------------------------------------------

/// A small data-heavy system: two counters exchanging values through a
/// connector with a guard, an up transfer, two down transfers and internal
/// (tau) steps — every compiled code path in one model.
System dataExchange() {
  auto t = std::make_shared<AtomicType>("C");
  const int idle = t->addLocation("idle");
  const int busy = t->addLocation("busy");
  const int x = t->addVariable("x", 1);
  const int acc = t->addVariable("acc", 0);
  const int p = t->addPort("p", {x});
  t->addTransition(idle, p, Expr::local(x) < Expr::lit(1000),
                   {expr::Assign{VarRef{0, acc}, Expr::local(acc) + Expr::local(x)}}, busy);
  // Tau step back to idle, mixing the accumulator into x.
  t->addTransition(busy, kInternalPort, Expr::top(),
                   {expr::Assign{VarRef{0, x},
                                 (Expr::local(x) * Expr::lit(3) + Expr::local(acc)) %
                                         Expr::lit(257) +
                                     Expr::lit(1)}},
                   idle);
  t->setInitialLocation(idle);

  System sys;
  const int a = sys.addInstance("a", t);
  const int b = sys.addInstance("b", t);
  Connector c("swap");
  const int ea = c.addSynchron(PortRef{a, 0});
  const int eb = c.addSynchron(PortRef{b, 0});
  const int sum = c.addVariable("sum");
  c.setGuard(Expr::var(ea, 0) + Expr::var(eb, 0) > Expr::lit(1));
  c.addUp(sum, Expr::var(ea, 0) + Expr::var(eb, 0));
  c.addDown(ea, 0, Expr::var(expr::kConnectorScope, sum) / Expr::lit(2));
  c.addDown(eb, 0, Expr::var(expr::kConnectorScope, sum) % Expr::lit(97) + Expr::lit(1));
  sys.addConnector(std::move(c));
  sys.validate();
  return sys;
}

void expectIdenticalRuns(const RunResult& on, const RunResult& off, const std::string& what) {
  EXPECT_EQ(on.reason, off.reason) << what;
  EXPECT_EQ(on.steps, off.steps) << what;
  EXPECT_EQ(on.finalState, off.finalState) << what;
  ASSERT_EQ(on.trace.events.size(), off.trace.events.size()) << what;
  for (std::size_t i = 0; i < on.trace.events.size(); ++i) {
    EXPECT_EQ(on.trace.events[i].step, off.trace.events[i].step) << what << " event " << i;
    EXPECT_EQ(on.trace.events[i].connector, off.trace.events[i].connector)
        << what << " event " << i;
    EXPECT_EQ(on.trace.events[i].mask, off.trace.events[i].mask) << what << " event " << i;
    EXPECT_EQ(on.trace.events[i].label, off.trace.events[i].label) << what << " event " << i;
  }
}

TEST(EngineCompileCrossCheck, SequentialTracesBitIdentical) {
  const System models[] = {models::philosophersAtomic(6), models::gasStation(2, 4),
                           models::producerConsumerBounded(3, 7), models::tokenRing(8),
                           dataExchange()};
  const char* names[] = {"phil", "gas", "prodcons", "ring", "dataExchange"};
  for (std::size_t m = 0; m < std::size(models); ++m) {
    for (std::uint64_t seed : {3ULL, 17ULL, 99ULL}) {
      RunResult runs[2];
      for (int compiledOn = 0; compiledOn < 2; ++compiledOn) {
        CompileSwitch sw(compiledOn == 1);
        RandomPolicy policy(seed);
        SequentialEngine engine(models[m], policy);
        RunOptions opt;
        opt.maxSteps = 300;
        runs[compiledOn] = engine.run(opt);
      }
      expectIdenticalRuns(runs[1], runs[0],
                          std::string(names[m]) + " seed " + std::to_string(seed));
    }
  }
}

TEST(EngineCompileCrossCheck, SequentialAgreesWithAndWithoutIncrementalCache) {
  // Compilation and the enabled-set cache compose: all four on/off
  // combinations must produce the same run.
  const System sys = dataExchange();
  std::vector<RunResult> runs;
  for (int compiledOn = 0; compiledOn < 2; ++compiledOn) {
    for (int cacheOn = 0; cacheOn < 2; ++cacheOn) {
      CompileSwitch sw(compiledOn == 1);
      RandomPolicy policy(42);
      SequentialEngine engine(sys, policy);
      RunOptions opt;
      opt.maxSteps = 200;
      opt.incrementalCache = (cacheOn == 1);
      runs.push_back(engine.run(opt));
    }
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    expectIdenticalRuns(runs[0], runs[i], "combination " + std::to_string(i));
  }
}

TEST(EngineCompileCrossCheck, MultiThreadTracesBitIdentical) {
  const System models[] = {models::philosophersAtomic(5), models::producerConsumerBounded(2, 5),
                           dataExchange()};
  const char* names[] = {"phil", "prodcons", "dataExchange"};
  for (std::size_t m = 0; m < std::size(models); ++m) {
    RunResult runs[2];
    for (int compiledOn = 0; compiledOn < 2; ++compiledOn) {
      CompileSwitch sw(compiledOn == 1);
      RandomPolicy policy(7);
      MultiThreadEngine engine(models[m], policy);
      MtOptions opt;
      opt.maxSteps = 200;
      runs[compiledOn] = engine.run(opt);
    }
    expectIdenticalRuns(runs[1], runs[0], names[m]);
  }
}

TEST(EngineCompileCrossCheck, SuccessorsAndDeadlocksAgree)  {
  // The shared semantic kernel (enabledInteractions/successors) must give
  // the verifier the same view either way.
  const System sys = dataExchange();
  GlobalState g = initialState(sys);
  for (int step = 0; step < 30; ++step) {
    std::vector<GlobalState> succOn, succOff;
    {
      CompileSwitch sw(true);
      succOn = successors(sys, g);
    }
    {
      CompileSwitch sw(false);
      succOff = successors(sys, g);
    }
    ASSERT_EQ(succOn.size(), succOff.size()) << "step " << step;
    for (std::size_t i = 0; i < succOn.size(); ++i) {
      ASSERT_EQ(succOn[i], succOff[i]) << "step " << step << " successor " << i;
    }
    if (succOn.empty()) break;
    g = succOn.front();
  }
}

}  // namespace
}  // namespace cbip
