// Tests for the bytecode expression compiler and the compiled execution
// path: randomized differential checks (compiled evaluation == tree
// walking, including division-by-zero error behaviour), the fused
// guard+action programs (fused == unfused == interpreter, value for value
// and error for error, including the INT64_MIN / -1 and wrap-on-overflow
// edge vectors), the VM dispatch cores (computed-goto threaded vs the
// portable switch loop: bit-identical values, first-EvalError and partial
// stores, full opcode coverage, the block-parallel batch executor and its
// scalar replay), and engine-level cross-checks (bit-identical traces with
// compilation on vs the interpreter escape hatch, with fusion on vs off,
// and with the threaded VM core on vs off, for both engines).
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "core/semantics.hpp"
#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "expr/compile.hpp"
#include "models/models.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cbip {
namespace {

using expr::Expr;
using expr::ExprProgram;
using expr::VarRef;

/// Restores the global compilation switch on scope exit.
class CompileSwitch {
 public:
  explicit CompileSwitch(bool on) : saved_(expr::compilationEnabled()) {
    expr::setCompilationEnabled(on);
  }
  ~CompileSwitch() { expr::setCompilationEnabled(saved_); }

 private:
  bool saved_;
};

/// Restores the global fusion switch on scope exit.
class FusionSwitch {
 public:
  explicit FusionSwitch(bool on) : saved_(expr::fusionEnabled()) { expr::setFusionEnabled(on); }
  ~FusionSwitch() { expr::setFusionEnabled(saved_); }

 private:
  bool saved_;
};

/// Restores the threaded-dispatch (VM core) switch on scope exit.
class ThreadedSwitch {
 public:
  explicit ThreadedSwitch(bool on) : saved_(expr::threadedDispatchEnabled()) {
    expr::setThreadedDispatchEnabled(on);
  }
  ~ThreadedSwitch() { expr::setThreadedDispatchEnabled(saved_); }

 private:
  bool saved_;
};

Expr v(int i) { return Expr::local(i); }

constexpr Value kMin = std::numeric_limits<Value>::min();
constexpr Value kMax = std::numeric_limits<Value>::max();

// ---- program-level behaviour --------------------------------------------

TEST(ExprCompile, LiteralsAndVariables) {
  std::vector<Value> frame{10, -3};
  EXPECT_EQ(expr::compileLocal(Expr::lit(42)).run(frame), 42);
  EXPECT_EQ(expr::compileLocal(v(0)).run(frame), 10);
  EXPECT_EQ(expr::compileLocal(v(1)).run(frame), -3);
}

TEST(ExprCompile, ArithmeticAndComparisons) {
  std::vector<Value> frame{7, 3};
  EXPECT_EQ(expr::compileLocal(v(0) + v(1)).run(frame), 10);
  EXPECT_EQ(expr::compileLocal(v(0) - v(1)).run(frame), 4);
  EXPECT_EQ(expr::compileLocal(v(0) * v(1)).run(frame), 21);
  EXPECT_EQ(expr::compileLocal(v(0) / v(1)).run(frame), 2);
  EXPECT_EQ(expr::compileLocal(v(0) % v(1)).run(frame), 1);
  EXPECT_EQ(expr::compileLocal(-v(0)).run(frame), -7);
  EXPECT_EQ(expr::compileLocal(Expr::min(v(0), v(1))).run(frame), 3);
  EXPECT_EQ(expr::compileLocal(Expr::max(v(0), v(1))).run(frame), 7);
  EXPECT_EQ(expr::compileLocal(Expr::abs(v(1) - v(0))).run(frame), 4);
  EXPECT_EQ(expr::compileLocal(v(0) > v(1)).run(frame), 1);
  EXPECT_EQ(expr::compileLocal(v(0) <= v(1)).run(frame), 0);
}

TEST(ExprCompile, DivisionByZeroThrows) {
  std::vector<Value> frame{1, 0};
  EXPECT_THROW(expr::compileLocal(v(0) / v(1)).run(frame), EvalError);
  EXPECT_THROW(expr::compileLocal(v(0) % v(1)).run(frame), EvalError);
}

TEST(ExprCompile, ShortCircuitSkipsDivisionByZero) {
  // (v0 != 0) && (1/v0 > 0): the division must not execute when v0 == 0.
  const Expr guarded = (v(0) != Expr::lit(0)) && (Expr::lit(1) / v(0) > Expr::lit(0));
  const ExprProgram p = expr::compileLocal(guarded);
  std::vector<Value> frame{0};
  EXPECT_EQ(p.run(frame), 0);
  frame[0] = 1;  // 1/1 > 0
  EXPECT_EQ(p.run(frame), 1);
  // Same for || short-circuiting past a doomed right operand.
  const Expr orGuard = (v(0) == Expr::lit(0)) || (Expr::lit(1) / v(0) > Expr::lit(0));
  frame[0] = 0;
  EXPECT_EQ(expr::compileLocal(orGuard).run(frame), 1);
}

TEST(ExprCompile, IteEvaluatesOnlyTakenBranch) {
  const Expr e = Expr::ite(v(0), Expr::lit(10) / v(0), Expr::lit(-1));
  const ExprProgram p = expr::compileLocal(e);
  std::vector<Value> frame{5};
  EXPECT_EQ(p.run(frame), 2);
  frame[0] = 0;  // the division (by zero) sits in the untaken branch
  EXPECT_EQ(p.run(frame), -1);
}

TEST(ExprCompile, BuilderFoldingShrinksPrograms) {
  // The combinators fold constants at construction, so these compile to a
  // single push / tiny programs.
  EXPECT_EQ(expr::compileLocal(Expr::lit(2) + Expr::lit(3)).size(), 1u);
  EXPECT_EQ(expr::compileLocal(Expr::ite(Expr::lit(1), v(0), v(1) / Expr::lit(0))).size(), 1u);
  EXPECT_EQ(expr::compileLocal(Expr::top() && (v(0) < v(1))).size(), 3u);
  // Division by a zero literal must survive folding as a runtime error.
  std::vector<Value> frame{1, 2};
  EXPECT_THROW(expr::compileLocal(Expr::lit(1) / Expr::lit(0)).run(frame), EvalError);
}

TEST(ExprCompile, CustomSlotMapAndUnmappableReferences) {
  // Scope 3 maps to slots 10+index; anything else must fail at compile
  // time, not at run time.
  const expr::SlotMap slots = [](VarRef r) {
    require(r.scope == 3, "unmappable scope");
    return 10 + r.index;
  };
  std::vector<Value> frame(12, 0);
  frame[10] = 6;
  frame[11] = 7;
  const Expr e = Expr::var(3, 0) * Expr::var(3, 1);
  EXPECT_EQ(expr::compile(e, slots).run(frame), 42);
  EXPECT_THROW(expr::compile(v(0), slots), ModelError);
}

// ---- randomized differential test ---------------------------------------

/// Generates a random expression over v0..v3 covering every operator,
/// including division and modulo (which may fail at run time).
Expr randomExpr(Rng& rng, int depth) {
  if (depth == 0 || rng.chance(1, 4)) {
    return rng.chance(1, 2) ? Expr::lit(rng.range(-3, 3))
                            : v(static_cast<int>(rng.below(4)));
  }
  switch (rng.below(16)) {
    case 0: return randomExpr(rng, depth - 1) + randomExpr(rng, depth - 1);
    case 1: return randomExpr(rng, depth - 1) - randomExpr(rng, depth - 1);
    case 2: return randomExpr(rng, depth - 1) * randomExpr(rng, depth - 1);
    case 3: return randomExpr(rng, depth - 1) / randomExpr(rng, depth - 1);
    case 4: return randomExpr(rng, depth - 1) % randomExpr(rng, depth - 1);
    case 5: return -randomExpr(rng, depth - 1);
    case 6: return Expr::min(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
    case 7: return Expr::max(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
    case 8: return Expr::abs(randomExpr(rng, depth - 1));
    case 9: return randomExpr(rng, depth - 1) == randomExpr(rng, depth - 1);
    case 10: return randomExpr(rng, depth - 1) < randomExpr(rng, depth - 1);
    case 11: return randomExpr(rng, depth - 1) >= randomExpr(rng, depth - 1);
    case 12: return randomExpr(rng, depth - 1) && randomExpr(rng, depth - 1);
    case 13: return randomExpr(rng, depth - 1) || randomExpr(rng, depth - 1);
    case 14: return !randomExpr(rng, depth - 1);
    default:
      return Expr::ite(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1),
                       randomExpr(rng, depth - 1));
  }
}

/// Evaluates to a value or "threw EvalError".
std::optional<Value> tryEval(const std::function<Value()>& f) {
  try {
    return f();
  } catch (const EvalError&) {
    return std::nullopt;
  }
}

class CompileDifferential : public ::testing::TestWithParam<int> {};

TEST_P(CompileDifferential, CompiledAgreesWithInterpreter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 300; ++round) {
    const Expr e = randomExpr(rng, 4);
    const ExprProgram p = expr::compileLocal(e);
    for (int k = 0; k < 10; ++k) {
      std::vector<Value> vars{rng.range(-3, 3), rng.range(-3, 3), rng.range(-3, 3),
                              rng.range(-3, 3)};
      const auto interpreted = tryEval([&] { return e.eval(vars); });
      const auto compiled = tryEval([&] { return p.run(vars); });
      // Either both throw EvalError or both produce the same value. (Which
      // of several doomed subexpressions raises first may differ: the
      // interpreter evaluates divisors before dividends.)
      ASSERT_EQ(interpreted.has_value(), compiled.has_value())
          << e.toString() << " with vars " << vars[0] << "," << vars[1] << "," << vars[2]
          << "," << vars[3];
      if (interpreted.has_value()) {
        ASSERT_EQ(*interpreted, *compiled) << e.toString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompileDifferential, ::testing::Values(1, 2, 3, 4, 5));

// ---- arithmetic semantics (wrapping + INT64_MIN / -1) --------------------

TEST(ArithmeticSemantics, Int64MinDividedByMinusOneRaisesOnEveryPath) {
  // The one unrepresentable quotient raises EvalError instead of trapping,
  // identically on the interpreter, the bytecode VM, and through the
  // constant folders (which must keep it as a runtime error).
  std::vector<Value> frame{kMin, -1};
  const Expr div = v(0) / v(1);
  const Expr mod = v(0) % v(1);
  EXPECT_THROW(div.eval(frame), EvalError);
  EXPECT_THROW(mod.eval(frame), EvalError);
  EXPECT_THROW(expr::compileLocal(div).run(frame), EvalError);
  EXPECT_THROW(expr::compileLocal(mod).run(frame), EvalError);
  // Literal operands: the builder fold and the compiler fold both refuse
  // to evaluate it, leaving the EvalError to run time.
  const Expr litDiv = Expr::lit(kMin) / Expr::lit(-1);
  const Expr litMod = Expr::lit(kMin) % Expr::lit(-1);
  EXPECT_FALSE(litDiv.isConst());
  EXPECT_THROW(litDiv.eval(frame), EvalError);
  EXPECT_THROW(expr::compileLocal(litDiv).run(frame), EvalError);
  EXPECT_THROW(litMod.eval(frame), EvalError);
  EXPECT_THROW(expr::compileLocal(litMod).run(frame), EvalError);
  // The zero check wins over the overflow check, on both paths.
  std::vector<Value> zeroFrame{kMin, 0};
  try {
    (v(0) / v(1)).eval(zeroFrame);
    FAIL() << "expected EvalError";
  } catch (const EvalError& e) {
    EXPECT_STREQ(e.what(), "division by zero");
  }
  try {
    expr::compileLocal(v(0) / v(1)).run(zeroFrame);
    FAIL() << "expected EvalError";
  } catch (const EvalError& e) {
    EXPECT_STREQ(e.what(), "division by zero");
  }
}

TEST(ArithmeticSemantics, SignedOverflowWrapsIdenticallyOnEveryPath) {
  // +, -, *, unary - and abs wrap in two's complement; interpreter,
  // bytecode and the constant folders must agree bit for bit.
  struct Case {
    Expr e;
    std::vector<Value> frame;
    Value expect;
  };
  const Case cases[] = {
      {v(0) + v(1), {kMax, 1}, kMin},
      {v(0) - v(1), {kMin, 1}, kMax},
      {v(0) * v(1), {kMin, -1}, kMin},
      {v(0) * v(1), {kMax, 2}, -2},
      {-v(0), {kMin}, kMin},
      {Expr::abs(v(0)), {kMin}, kMin},
  };
  for (const Case& c : cases) {
    std::vector<Value> frame = c.frame;
    EXPECT_EQ(c.e.eval(frame), c.expect) << c.e.toString();
    EXPECT_EQ(expr::compileLocal(c.e).run(frame), c.expect) << c.e.toString();
  }
  // Folded-constant twins go through Expr::make's interpreter fold and the
  // compiler's applyBinary fold respectively; both must wrap the same way.
  EXPECT_EQ((Expr::lit(kMax) + Expr::lit(1)).literal(), kMin);
  EXPECT_EQ((Expr::lit(kMin) - Expr::lit(1)).literal(), kMax);
  EXPECT_EQ((Expr::lit(kMin) * Expr::lit(-1)).literal(), kMin);
  std::vector<Value> noVars;
  EXPECT_EQ(expr::compileLocal(Expr::lit(kMax) + Expr::lit(1)).run(noVars), kMin);
  EXPECT_EQ((-Expr::lit(kMin)).literal(), kMin);
  EXPECT_EQ(Expr::abs(Expr::lit(kMin)).literal(), kMin);
}

// ---- fused guard+action programs -----------------------------------------

using expr::Assign;

/// Local slot map shared by the fused tests (slot = index, scope 0).
int localSlot(VarRef r) {
  require(r.scope == 0, "localSlot: non-local scope");
  return r.index;
}

/// Reference semantics of a guarded command: run the guard program, and
/// when it holds the per-action programs, sequentially over `vars` —
/// exactly what the unfused compiled dispatch does.
std::optional<bool> runUnfused(const Expr& guard, const std::vector<Assign>& actions,
                               std::vector<Value>& vars) {
  try {
    if (!guard.isTrue()) {
      const ExprProgram g = expr::compile(guard, localSlot);
      if (g.run(std::span<const Value>(vars), 0) == 0) return false;
    }
    for (const Assign& a : actions) {
      const ExprProgram p = expr::compile(a.value, localSlot);
      vars[static_cast<std::size_t>(a.target.index)] = p.run(std::span<const Value>(vars), 0);
    }
    return true;
  } catch (const EvalError&) {
    return std::nullopt;
  }
}

/// Interpreter twin of runUnfused.
std::optional<bool> runInterpreted(const Expr& guard, const std::vector<Assign>& actions,
                                   std::vector<Value>& vars) {
  try {
    expr::VecContext ctx(vars);
    if (!guard.isTrue() && guard.eval(ctx) == 0) return false;
    expr::applyAssignments(actions, ctx);
    return true;
  } catch (const EvalError&) {
    return std::nullopt;
  }
}

/// Fused dispatch: one program, one run.
std::optional<bool> runFused(const ExprProgram& fused, std::vector<Value>& vars) {
  try {
    return fused.run(std::span<Value>(vars), 0) != 0;
  } catch (const EvalError&) {
    return std::nullopt;
  }
}

TEST(FusedProgram, GuardGatesTheActionSuffix) {
  const std::vector<Assign> actions{Assign{VarRef{0, 1}, v(0) + Expr::lit(10)},
                                    Assign{VarRef{0, 2}, v(1) * Expr::lit(2)}};
  const ExprProgram fused = expr::compileFused(v(0) > Expr::lit(0), actions, localSlot);
  EXPECT_TRUE(fused.storesFrame());
  std::vector<Value> vars{5, 0, 0};
  EXPECT_EQ(fused.run(std::span<Value>(vars), 0), 1);
  EXPECT_EQ(vars, (std::vector<Value>{5, 15, 30}));  // second action sees the first's write
  std::vector<Value> blocked{-1, 7, 7};
  EXPECT_EQ(fused.run(std::span<Value>(blocked), 0), 0);
  EXPECT_EQ(blocked, (std::vector<Value>{-1, 7, 7}));  // guard false: untouched
}

TEST(FusedProgram, TrivialFormsCollapse) {
  // Trivial guard + no actions never builds a program at the call sites;
  // compileFused itself degenerates to "Push 1".
  const ExprProgram empty = expr::compileFused(Expr::top(), {}, localSlot);
  EXPECT_EQ(empty.size(), 1u);
  std::vector<Value> vars{1};
  EXPECT_EQ(empty.run(std::span<Value>(vars), 0), 1);
  // A guard folded to constant false compiles to "Push 0" and drops the
  // (never-executed) action suffix.
  const ExprProgram dead = expr::compileFused(
      Expr::lit(0), std::vector<Assign>{Assign{VarRef{0, 0}, Expr::lit(9)}}, localSlot);
  EXPECT_EQ(dead.size(), 1u);
  EXPECT_FALSE(dead.storesFrame());
  EXPECT_EQ(dead.run(std::span<Value>(vars), 0), 0);
  EXPECT_EQ(vars[0], 1);
}

TEST(FusedProgram, CommonSubexpressionsCrossTheGuardActionBoundary) {
  // The guard computes (v0 * v1 + v2); both actions reuse it. The fused
  // program must park it in a temp (kTee / kLoadTmp) and still match the
  // unfused result exactly.
  const Expr shared = v(0) * v(1) + v(2);
  const Expr guard = shared > Expr::lit(0);
  const std::vector<Assign> actions{Assign{VarRef{0, 3}, shared % Expr::lit(97)},
                                    Assign{VarRef{0, 2}, shared + v(3)}};
  const ExprProgram fused = expr::compileFused(guard, actions, localSlot);
  bool hasTee = false;
  bool hasLoadTmp = false;
  for (const expr::Instr& in : fused.code()) {
    hasTee = hasTee || in.op == expr::OpCode::kTee;
    hasLoadTmp = hasLoadTmp || in.op == expr::OpCode::kLoadTmp;
  }
  EXPECT_TRUE(hasTee);
  EXPECT_TRUE(hasLoadTmp);
  std::vector<Value> fusedVars{3, 4, 5, 6};
  std::vector<Value> unfusedVars = fusedVars;
  const auto fusedOk = runFused(fused, fusedVars);
  const auto unfusedOk = runUnfused(guard, actions, unfusedVars);
  ASSERT_EQ(fusedOk, unfusedOk);
  EXPECT_EQ(fusedVars, unfusedVars);
}

TEST(FusedProgram, ClobberedSubexpressionsAreRecomputed) {
  // Action 0 overwrites v0, which the shared subexpression (v0 + v1)
  // reads; action 1 must recompute it instead of reusing the stale temp.
  const Expr shared = v(0) + v(1);
  const Expr guard = shared != Expr::lit(0);
  const std::vector<Assign> actions{Assign{VarRef{0, 0}, Expr::lit(100)},
                                    Assign{VarRef{0, 2}, shared}};
  const ExprProgram fused = expr::compileFused(guard, actions, localSlot);
  std::vector<Value> vars{1, 2, 0};
  EXPECT_EQ(fused.run(std::span<Value>(vars), 0), 1);
  EXPECT_EQ(vars, (std::vector<Value>{100, 2, 102}));  // 100 + 2, not the stale 3
}

/// Random action block over v0..v3 (values from randomExpr, so division,
/// modulo and every operator appear).
std::vector<Assign> randomActions(Rng& rng) {
  std::vector<Assign> actions;
  const int n = static_cast<int>(rng.below(4));
  for (int i = 0; i < n; ++i) {
    actions.push_back(Assign{VarRef{0, static_cast<int>(rng.below(4))}, randomExpr(rng, 3)});
  }
  return actions;
}

/// Random store over v0..v3, seasoned with the overflow edge values so the
/// wrap/raise semantics are exercised, not just small integers.
std::vector<Value> randomVars(Rng& rng) {
  std::vector<Value> vars(4);
  for (Value& x : vars) {
    switch (rng.below(8)) {
      case 0: x = kMin; break;
      case 1: x = kMax; break;
      case 2: x = -1; break;
      default: x = rng.range(-3, 3); break;
    }
  }
  return vars;
}

class FusedDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FusedDifferential, FusedUnfusedAndInterpreterAgree) {
  // One random guarded command, four dispatch strategies: the fused
  // program, the analyzed fused program (provably-safe division checks
  // relaxed under the all-top environment, as build-time pruning does),
  // the unfused guard + per-action programs, and the tree-walking
  // interpreter. All must agree on (a) whether evaluation raised,
  // (b) whether the guard held, and (c) the final variable store — which
  // includes the partial writes of an action block whose later action
  // raised. randomVars seasons the stores with kMin/kMax/-1, so the
  // guaranteed-raise vectors (zero divisors, INT64_MIN / -1) are hit.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::vector<analyze::Interval> topEnv(4, analyze::Interval::top());
  for (int round = 0; round < 200; ++round) {
    const Expr guard = randomExpr(rng, 3);
    const std::vector<Assign> actions = randomActions(rng);
    const ExprProgram fused = expr::compileFused(guard, actions, localSlot);
    ExprProgram relaxed = fused;
    analyze::relaxSafeDivChecks(relaxed, topEnv);
    for (int k = 0; k < 10; ++k) {
      std::vector<Value> fusedVars = randomVars(rng);
      std::vector<Value> relaxedVars = fusedVars;
      std::vector<Value> unfusedVars = fusedVars;
      std::vector<Value> interpVars = fusedVars;
      const auto viaFused = runFused(fused, fusedVars);
      const auto viaRelaxed = runFused(relaxed, relaxedVars);
      const auto viaUnfused = runUnfused(guard, actions, unfusedVars);
      const auto viaInterp = runInterpreted(guard, actions, interpVars);
      // Fused vs unfused: identical, error for error.
      ASSERT_EQ(viaFused, viaUnfused) << guard.toString() << " round " << round;
      ASSERT_EQ(fusedVars, unfusedVars) << guard.toString() << " round " << round;
      // Analyzed (relaxed) fused program: bit-identical behaviour — the
      // relaxation only rewrites sites proven unable to raise.
      ASSERT_EQ(viaFused, viaRelaxed) << guard.toString() << " round " << round;
      ASSERT_EQ(fusedVars, relaxedVars) << guard.toString() << " round " << round;
      // Interpreter: same outcome; which doomed subexpression raises
      // first may differ (divisor-before-dividend order), so compare the
      // store only on non-raising rounds.
      ASSERT_EQ(viaFused.has_value(), viaInterp.has_value())
          << guard.toString() << " round " << round;
      if (viaFused.has_value()) {
        ASSERT_EQ(*viaFused, *viaInterp) << guard.toString() << " round " << round;
        ASSERT_EQ(fusedVars, interpVars) << guard.toString() << " round " << round;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedDifferential, ::testing::Values(1, 2, 3, 4, 5));

TEST(FusedTryFire, SingleDispatchMatchesGuardThenFireOnAllPaths) {
  // tryFire = guardHolds + fire as one dispatch. The same component,
  // stepped with tryFire under fused / unfused / interpreted dispatch,
  // must visit identical states.
  auto t = std::make_shared<AtomicType>("T");
  const int l0 = t->addLocation("l0");
  const int l1 = t->addLocation("l1");
  const int x = t->addVariable("x", 1);
  const int acc = t->addVariable("acc", 0);
  t->addTransition(l0, kInternalPort,
                   (Expr::local(x) * Expr::lit(3) + Expr::local(acc)) % Expr::lit(7) !=
                       Expr::lit(0),
                   {Assign{VarRef{0, acc},
                           (Expr::local(x) * Expr::lit(3) + Expr::local(acc)) % Expr::lit(7) +
                               Expr::local(acc)},
                    Assign{VarRef{0, x}, Expr::local(x) + Expr::lit(1)}},
                   l1);
  t->addTransition(l0, kInternalPort, Expr::top(), {Assign{VarRef{0, x}, Expr::lit(1)}}, l1);
  t->addTransition(l1, kInternalPort, Expr::local(x) < Expr::lit(40), {}, l0);
  t->setInitialLocation(l0);
  t->validate();

  AtomicState states[3];
  for (int mode = 0; mode < 3; ++mode) {
    const CompileSwitch compiled(mode != 2);
    const FusionSwitch fusion(mode == 0);
    AtomicState s = initialState(*t);
    // Drive tau-to-quiescence explicitly through tryFire.
    runInternal(*t, s, 1000);
    states[mode] = s;
  }
  EXPECT_EQ(states[0], states[1]);
  EXPECT_EQ(states[0], states[2]);
  // And a false guard leaves the state untouched on the fused path.
  AtomicState s = initialState(*t);
  s.vars[static_cast<std::size_t>(x)] = 7;
  s.vars[static_cast<std::size_t>(acc)] = 0;  // (7*3 + 0) % 7 == 0: guard false
  ASSERT_FALSE(tryFire(*t, s, 0));
  EXPECT_EQ(s.location, l0);
  EXPECT_EQ(s.vars[static_cast<std::size_t>(acc)], 0);
  ASSERT_TRUE(tryFire(*t, s, 1));  // fallback transition fires
  EXPECT_EQ(s.location, l1);
  EXPECT_EQ(s.vars[static_cast<std::size_t>(x)], 1);
}

// ---- batch evaluation ----------------------------------------------------

/// Restores the batch-scan switch on scope exit.
class BatchScanSwitch {
 public:
  explicit BatchScanSwitch(bool on) : saved_(batchScanEnabled()) { setBatchScanEnabled(on); }
  ~BatchScanSwitch() { setBatchScanEnabled(saved_); }

 private:
  bool saved_;
};

TEST(RunBatch, MatchesIndividualRuns) {
  // Random programs evaluated at several frame bases in one batch must
  // agree with one run() per (program, base) — including which batches
  // raise EvalError.
  Rng rng(4242);
  for (int round = 0; round < 200; ++round) {
    std::vector<ExprProgram> programs;
    for (int p = 0; p < 4; ++p) programs.push_back(expr::compileLocal(randomExpr(rng, 3)));
    std::vector<Value> frame(16);
    for (Value& v : frame) v = rng.range(-3, 3);
    std::vector<expr::BatchOp> ops;
    for (const ExprProgram& p : programs) {
      if (p.empty()) continue;  // trivial programs are never batched
      for (std::int32_t base : {0, 4, 8, 12}) ops.push_back(expr::BatchOp{&p, base});
    }
    std::vector<Value> batched(ops.size());
    const auto viaBatch = tryEval([&] {
      ExprProgram::runBatch(ops, frame, batched);
      return Value{0};
    });
    std::vector<Value> scalar(ops.size());
    const auto viaRuns = tryEval([&] {
      for (std::size_t i = 0; i < ops.size(); ++i) {
        scalar[i] = ops[i].program->run(std::span<const Value>(frame), ops[i].base);
      }
      return Value{0};
    });
    ASSERT_EQ(viaBatch.has_value(), viaRuns.has_value()) << "round " << round;
    if (viaBatch.has_value()) {
      ASSERT_EQ(batched, scalar) << "round " << round;
    }
  }
}

TEST(RunBatch, RejectsEmptyProgramsAndSizeMismatch) {
  const ExprProgram p = expr::compileLocal(v(0) + Expr::lit(1));
  const ExprProgram empty;
  std::vector<Value> frame{1, 2};
  std::vector<Value> out(1);
  const std::vector<expr::BatchOp> bad{expr::BatchOp{&empty, 0}};
  EXPECT_THROW(ExprProgram::runBatch(bad, frame, out), EvalError);
  const std::vector<expr::BatchOp> two{expr::BatchOp{&p, 0}, expr::BatchOp{&p, 0}};
  EXPECT_THROW(ExprProgram::runBatch(two, frame, out), EvalError);
}

/// Random system for the batched-scan differential: types with random
/// transition guards over their local variables, connectors with random
/// trigger/synchron ends and random guards over the end exports.
System randomScanSystem(Rng& rng) {
  System sys;
  std::vector<AtomicTypePtr> types;
  const int typeCount = 1 + static_cast<int>(rng.below(2));
  for (int t = 0; t < typeCount; ++t) {
    auto type = std::make_shared<AtomicType>("T" + std::to_string(t));
    const int locs = 1 + static_cast<int>(rng.below(2));
    for (int l = 0; l < locs; ++l) type->addLocation("l" + std::to_string(l));
    // Four variables so transition guards may use randomExpr's full
    // v0..v3 range; ports export the first two.
    for (const char* name : {"x", "y", "z", "w"}) type->addVariable(name, rng.range(-3, 3));
    const int ports = 1 + static_cast<int>(rng.below(2));
    for (int p = 0; p < ports; ++p) type->addPort("p" + std::to_string(p), {0, 1});
    const int transitions = 1 + static_cast<int>(rng.below(4));
    for (int k = 0; k < transitions; ++k) {
      // Depth 2 keeps divisions frequent enough to exercise EvalError
      // parity between the scan paths.
      Expr guard = randomExpr(rng, 2);
      type->addTransition(static_cast<int>(rng.below(static_cast<std::size_t>(locs))),
                          static_cast<int>(rng.below(static_cast<std::size_t>(ports))),
                          std::move(guard), {},
                          static_cast<int>(rng.below(static_cast<std::size_t>(locs))));
    }
    type->setInitialLocation(0);
    types.push_back(std::move(type));
  }
  const int instances = 4 + static_cast<int>(rng.below(4));
  for (int i = 0; i < instances; ++i) {
    sys.addInstance("i" + std::to_string(i), types[rng.below(types.size())]);
  }
  const int connectors = 3 + static_cast<int>(rng.below(3));
  for (int c = 0; c < connectors; ++c) {
    Connector conn("c" + std::to_string(c));
    // 2-3 ends on distinct instances.
    const int endCount = 2 + static_cast<int>(rng.below(2));
    std::vector<int> chosen;
    while (static_cast<int>(chosen.size()) < endCount) {
      const int inst = static_cast<int>(rng.below(static_cast<std::size_t>(instances)));
      bool dup = false;
      for (int seen : chosen) dup = dup || seen == inst;
      if (dup) continue;
      chosen.push_back(inst);
      const AtomicType& type = *sys.instance(static_cast<std::size_t>(inst)).type;
      conn.addEnd(PortRef{inst, static_cast<int>(rng.below(type.portCount()))},
                  rng.chance(1, 3));
    }
    if (rng.chance(2, 3)) {
      // Guard over random end exports, occasionally doomed (div/mod).
      Expr g = Expr::var(0, static_cast<int>(rng.below(2))) +
               Expr::var(1, static_cast<int>(rng.below(2)));
      switch (rng.below(3)) {
        case 0: g = g > Expr::lit(rng.range(-2, 2)); break;
        case 1: g = g % Expr::var(endCount - 1, 0) == Expr::lit(0); break;
        default: g = !(g == Expr::lit(0)); break;
      }
      conn.setGuard(std::move(g));
    }
    sys.addConnector(std::move(conn));
  }
  sys.validate();
  return sys;
}

/// Enabled set or "threw EvalError".
std::optional<std::vector<EnabledInteraction>> tryScan(const System& sys,
                                                       const GlobalState& g) {
  try {
    return enabledInteractions(sys, g);
  } catch (const EvalError&) {
    return std::nullopt;
  }
}

TEST(BatchScanDifferential, MaskSetMatchesScalarAndInterpreter) {
  // Random connectors x random stores: the batched scan's enabled mask
  // set (and per-end transition choices) must equal the scalar compiled
  // path's and the interpreter's, element for element — including which
  // stores make the scan raise EvalError.
  Rng rng(20260726);
  for (int round = 0; round < 60; ++round) {
    const System sys = randomScanSystem(rng);
    GlobalState g = initialState(sys);
    for (int store = 0; store < 20; ++store) {
      // Random store: random (valid) location and variable values per
      // instance.
      for (std::size_t i = 0; i < sys.instanceCount(); ++i) {
        g.components[i].location =
            static_cast<int>(rng.below(sys.instance(i).type->locationCount()));
        for (Value& var : g.components[i].vars) var = rng.range(-3, 3);
      }
      std::optional<std::vector<EnabledInteraction>> batched, scalar, interpreted;
      {
        CompileSwitch compiledOn(true);
        {
          BatchScanSwitch batchOn(true);
          batched = tryScan(sys, g);
        }
        {
          BatchScanSwitch batchOff(false);
          scalar = tryScan(sys, g);
        }
      }
      {
        CompileSwitch compiledOff(false);
        interpreted = tryScan(sys, g);
      }
      ASSERT_EQ(batched.has_value(), scalar.has_value()) << "round " << round;
      ASSERT_EQ(batched.has_value(), interpreted.has_value()) << "round " << round;
      if (!batched.has_value()) continue;
      ASSERT_EQ(*batched, *scalar) << "round " << round << " store " << store;
      ASSERT_EQ(*batched, *interpreted) << "round " << round << " store " << store;
    }
  }
}

// ---- VM dispatch cores (computed-goto threaded vs portable switch) -------

/// Value-or-error outcome of one evaluation. The two VM cores run the
/// same instruction sequence, so they promise bit-identical behaviour
/// including *which* EvalError raises first — the error message
/// participates in equality (unlike tryEval, which the interpreter
/// comparisons use precisely because the raise order may differ there).
struct VmOutcome {
  std::optional<Value> value;
  std::string error;
  friend bool operator==(const VmOutcome&, const VmOutcome&) = default;
};

std::ostream& operator<<(std::ostream& os, const VmOutcome& o) {
  if (o.value.has_value()) return os << "value " << *o.value;
  return os << "EvalError(" << o.error << ")";
}

VmOutcome vmEval(const std::function<Value()>& f) {
  try {
    return VmOutcome{f(), {}};
  } catch (const EvalError& e) {
    return VmOutcome{std::nullopt, e.what()};
  }
}

class DispatchDifferential : public ::testing::TestWithParam<int> {};

TEST_P(DispatchDifferential, ThreadedAndSwitchCoresAgreeBitForBit) {
  // Random plain and fused programs under both dispatch cores: same
  // value, same first EvalError (message equality), and the same partial
  // stores when a fused action block raises midway. On builds without
  // computed goto both runs take the switch core and the test degenerates
  // to a determinism check, which is exactly the intent of the
  // CBIP_FORCE_SWITCH_DISPATCH CI leg.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6007);
  for (int round = 0; round < 200; ++round) {
    const ExprProgram plain = expr::compileLocal(randomExpr(rng, 4));
    const Expr guard = randomExpr(rng, 3);
    const std::vector<Assign> actions = randomActions(rng);
    const ExprProgram fused = expr::compileFused(guard, actions, localSlot);
    EXPECT_TRUE(plain.threadedInSync());
    EXPECT_TRUE(fused.threadedInSync());
    for (int k = 0; k < 10; ++k) {
      const std::vector<Value> vars = randomVars(rng);
      VmOutcome plainOut[2];
      VmOutcome fusedOut[2];
      std::vector<Value> stores[2];
      for (int on = 0; on < 2; ++on) {
        const ThreadedSwitch sw(on == 1);
        plainOut[on] = vmEval([&] { return plain.run(std::span<const Value>(vars), 0); });
        stores[on] = vars;
        fusedOut[on] = vmEval([&] { return fused.run(std::span<Value>(stores[on]), 0); });
      }
      ASSERT_EQ(plainOut[1], plainOut[0]) << guard.toString() << " round " << round;
      ASSERT_EQ(fusedOut[1], fusedOut[0]) << guard.toString() << " round " << round;
      // Store equality holds even when the block raised: both cores must
      // have applied exactly the same prefix of the action block.
      ASSERT_EQ(stores[1], stores[0]) << guard.toString() << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchDifferential, ::testing::Values(1, 2, 3, 4, 5));

TEST(DispatchCoverage, EveryOpcodeExecutesIdenticallyOnBothCores) {
  // A corpus that compiles to every scalar opcode, executed on both
  // dispatch cores over frames hitting the value, raise, and overflow
  // path of each. The three eager connectives (kAndB/kOrB/kSelect) never
  // appear in code() — they live in batch forms only and are exercised
  // through the block executor at the end.
  std::vector<ExprProgram> corpus;
  corpus.push_back(expr::compileLocal(v(0) + Expr::lit(2) - v(1) * v(2)));
  corpus.push_back(expr::compileLocal(v(0) / v(1) + v(2) % v(3)));
  corpus.push_back(expr::compileLocal(Expr::min(v(0), v(1)) + Expr::max(v(2), v(3))));
  corpus.push_back(expr::compileLocal((v(0) == v(1)) + (v(0) != v(1)) + (v(0) < v(1)) +
                                      (v(0) <= v(1)) + (v(0) > v(1)) + (v(0) >= v(1))));
  corpus.push_back(expr::compileLocal(-v(0) + Expr::abs(v(1)) + !v(2)));
  // Short-circuit jumps and the 0/1 materialization (kJump and both
  // conditional jumps); the divisions keep the jumps load-bearing.
  corpus.push_back(
      expr::compileLocal((v(0) != Expr::lit(0)) && (Expr::lit(1) / v(0) > Expr::lit(0))));
  corpus.push_back(
      expr::compileLocal((v(0) == Expr::lit(0)) || (Expr::lit(1) / v(0) > Expr::lit(0))));
  corpus.push_back(expr::compileLocal(Expr::ite(v(0), v(1) / v(0), Expr::lit(-1))));
  // kJumpIfNonZero comes from the inverted test the jumping-code scheme
  // emits for ! over a value operand in condition position.
  corpus.push_back(expr::compileLocal(Expr::ite(!v(0), Expr::lit(7), v(1) / v(0))));
  // kDivUnchecked / kModUnchecked, produced the way
  // analyze::relaxSafeDivChecks does after a raise-freedom proof (literal
  // divisors outside {0, -1} here, so the relaxation is sound).
  {
    ExprProgram relaxed = expr::compileLocal(v(0) / Expr::lit(3) + v(1) % Expr::lit(5));
    for (std::size_t pc = 0; pc < relaxed.code().size(); ++pc) {
      const expr::OpCode op = relaxed.code()[pc].op;
      if (op == expr::OpCode::kDiv || op == expr::OpCode::kMod) relaxed.relaxDivCheck(pc);
    }
    corpus.push_back(std::move(relaxed));
  }
  // kStore / kTee / kLoadTmp: a fused guarded command with a shared
  // subexpression crossing the guard/action boundary.
  const Expr shared = v(0) * v(1) + v(2);
  const std::vector<Assign> actions{Assign{VarRef{0, 3}, shared % Expr::lit(97)},
                                    Assign{VarRef{0, 2}, shared + v(3)}};
  const ExprProgram fused = expr::compileFused(shared > Expr::lit(0), actions, localSlot);

  std::set<expr::OpCode> seen;
  for (const ExprProgram& p : corpus) {
    for (const expr::Instr& in : p.code()) seen.insert(in.op);
  }
  for (const expr::Instr& in : fused.code()) seen.insert(in.op);
  for (int op = 0; op < expr::kOpCodeCount; ++op) {
    const auto code = static_cast<expr::OpCode>(op);
    if (code == expr::OpCode::kAndB || code == expr::OpCode::kOrB ||
        code == expr::OpCode::kSelect) {
      continue;  // batch-form only, covered below
    }
    EXPECT_TRUE(seen.count(code)) << "opcode " << op << " missing from the coverage corpus";
  }

  const std::vector<std::vector<Value>> frames = {
      {3, 2, 5, -7}, {0, 0, 0, 0}, {kMin, -1, 1, 2}, {kMax, 2, -3, 4}};
  for (const ExprProgram& p : corpus) {
    for (const std::vector<Value>& frame : frames) {
      VmOutcome out[2];
      for (int on = 0; on < 2; ++on) {
        const ThreadedSwitch sw(on == 1);
        out[on] = vmEval([&] { return p.run(std::span<const Value>(frame), 0); });
      }
      ASSERT_EQ(out[1], out[0]);
    }
  }
  for (const std::vector<Value>& frame : frames) {
    VmOutcome out[2];
    std::vector<Value> stores[2];
    for (int on = 0; on < 2; ++on) {
      const ThreadedSwitch sw(on == 1);
      stores[on] = frame;
      out[on] = vmEval([&] { return fused.run(std::span<Value>(stores[on]), 0); });
    }
    ASSERT_EQ(out[1], out[0]);
    ASSERT_EQ(stores[1], stores[0]);
  }

  // The eager connectives: batch forms exist exactly when every
  // conditionally-evaluated operand is raise-free, and the block executor
  // must match the scalar core lane for lane.
  const Expr z = Expr::lit(0);
  const ExprProgram eager[] = {
      expr::compileLocal((v(0) > z) && (v(1) > z)),
      expr::compileLocal((v(0) > z) || (v(1) > z)),
      expr::compileLocal(Expr::ite(v(0) > z, v(1), v(2) - v(3))),
  };
  std::vector<Value> frame(4 * 2 * ExprProgram::kBatchLanes);
  Rng rng(97);
  for (Value& x : frame) x = rng.range(-2, 2);
  for (const ExprProgram& p : eager) {
    ASSERT_TRUE(p.hasBatchForm());
    std::vector<expr::BatchOp> ops;
    for (std::size_t b = 0; b + 4 <= frame.size(); b += 4) {
      ops.push_back(expr::BatchOp{&p, static_cast<std::int32_t>(b)});
    }
    ASSERT_GE(ops.size(), ExprProgram::kMinBlockRun);
    std::vector<Value> blocked(ops.size());
    std::vector<Value> scalar(ops.size());
    {
      const ThreadedSwitch sw(true);
      ExprProgram::runBatch(ops, frame, blocked);
    }
    {
      const ThreadedSwitch sw(false);
      ExprProgram::runBatch(ops, frame, scalar);
    }
    EXPECT_EQ(blocked, scalar);
  }
  // A conditionally-raising operand disqualifies the eager form.
  EXPECT_FALSE(
      expr::compileLocal((v(0) != z) && (Expr::lit(1) / v(0) > z)).hasBatchForm());
}

TEST(RelaxDivCheck, RebuildsThreadedFormAfterFirstExecution) {
  // relaxDivCheck mutates code_ *after* finalization — here after the
  // program already executed once — so the cached threaded form must be
  // rebuilt, or its stale labels would keep dispatching the checked
  // handler. threadedInSync() is the structural check; the reruns on both
  // cores are the behavioural one.
  ExprProgram p = expr::compileLocal(v(0) / v(1) + v(2));
  const std::vector<Value> frame{9, 2, 1};
  EXPECT_EQ(p.run(std::span<const Value>(frame), 0), 5);
  EXPECT_TRUE(p.threadedInSync());
  std::size_t divPc = p.code().size();
  for (std::size_t pc = 0; pc < p.code().size(); ++pc) {
    if (p.code()[pc].op == expr::OpCode::kDiv) divPc = pc;
  }
  ASSERT_LT(divPc, p.code().size());
  p.relaxDivCheck(divPc);
  EXPECT_EQ(p.code()[divPc].op, expr::OpCode::kDivUnchecked);
  EXPECT_TRUE(p.threadedInSync());
  for (int on = 0; on < 2; ++on) {
    const ThreadedSwitch sw(on == 1);
    EXPECT_EQ(p.run(std::span<const Value>(frame), 0), 5);
  }
  // Copies keep a usable threaded form (jump args are instruction
  // indices, rebased at run time, so the form is relocatable).
  const ExprProgram q = p;
  EXPECT_TRUE(q.threadedInSync());
  EXPECT_EQ(q.run(std::span<const Value>(frame), 0), 5);
  // Only checked div/mod sites may be relaxed: not a load, and not a
  // site that was already relaxed.
  EXPECT_THROW(p.relaxDivCheck(0), ModelError);
  EXPECT_THROW(p.relaxDivCheck(divPc), ModelError);
}

TEST(RunBatch, BlockParallelReplayReproducesScalarErrorPoint) {
  // A raise-capable (variable-divisor) but unconditionally-executed
  // division keeps its eager batch form; a zero divisor in one lane makes
  // the whole block raise, and the scalar replay must reproduce the
  // switch core bit for bit: same EvalError, same written out[] prefix,
  // untouched suffix.
  const ExprProgram p = expr::compileLocal((v(0) + v(1)) / v(2) + v(3));
  ASSERT_TRUE(p.hasBatchForm());
  constexpr std::size_t kOps = 3 * ExprProgram::kBatchLanes;
  std::vector<Value> frame(4 * kOps);
  Rng rng(31);
  for (std::size_t i = 0; i < kOps; ++i) {
    frame[4 * i] = rng.range(-5, 5);
    frame[4 * i + 1] = rng.range(-5, 5);
    frame[4 * i + 2] = static_cast<Value>(1 + rng.below(4));
    frame[4 * i + 3] = rng.range(-5, 5);
  }
  std::vector<expr::BatchOp> ops;
  for (std::size_t i = 0; i < kOps; ++i) {
    ops.push_back(expr::BatchOp{&p, static_cast<std::int32_t>(4 * i)});
  }
  // Clean pass: block-executed and scalar results identical.
  {
    std::vector<Value> blocked(kOps);
    std::vector<Value> scalar(kOps);
    {
      const ThreadedSwitch sw(true);
      ExprProgram::runBatch(ops, frame, blocked);
    }
    {
      const ThreadedSwitch sw(false);
      ExprProgram::runBatch(ops, frame, scalar);
    }
    EXPECT_EQ(blocked, scalar);
  }
  // Poison a divisor inside the second block. The first block completes,
  // the second replays scalar and re-raises at the same op.
  frame[4 * (ExprProgram::kBatchLanes + 5) + 2] = 0;
  constexpr Value kSentinel = 424242;
  std::vector<Value> blocked(kOps, kSentinel);
  std::vector<Value> scalar(kOps, kSentinel);
  VmOutcome out[2];
  {
    const ThreadedSwitch sw(true);
    out[1] = vmEval([&] {
      ExprProgram::runBatch(ops, frame, blocked);
      return Value{0};
    });
  }
  {
    const ThreadedSwitch sw(false);
    out[0] = vmEval([&] {
      ExprProgram::runBatch(ops, frame, scalar);
      return Value{0};
    });
  }
  ASSERT_FALSE(out[1].value.has_value());
  ASSERT_EQ(out[1], out[0]);
  EXPECT_EQ(blocked, scalar);
}

TEST(RunBatch, BlockParallelMatchesScalarOnRandomPrograms) {
  // Random programs over random frame bases, block-capable or not: the
  // accelerated runBatch (threaded dispatch + block executor) must agree
  // with the switch-core runBatch element for element, error for error.
  Rng rng(20260809);
  int blockRounds = 0;
  for (int round = 0; round < 150; ++round) {
    const ExprProgram p = expr::compileLocal(randomExpr(rng, 3));
    std::vector<Value> frame(64);
    for (Value& x : frame) x = rng.range(-3, 3);
    const std::size_t count =
        ExprProgram::kMinBlockRun + rng.below(2 * ExprProgram::kBatchLanes);
    std::vector<expr::BatchOp> ops;
    for (std::size_t i = 0; i < count; ++i) {
      ops.push_back(expr::BatchOp{&p, static_cast<std::int32_t>(rng.below(61))});
    }
    if (p.hasBatchForm()) ++blockRounds;
    std::vector<Value> blocked(count, -1);
    std::vector<Value> scalar(count, -1);
    VmOutcome out[2];
    {
      const ThreadedSwitch sw(true);
      out[1] = vmEval([&] {
        ExprProgram::runBatch(ops, frame, blocked);
        return Value{0};
      });
    }
    {
      const ThreadedSwitch sw(false);
      out[0] = vmEval([&] {
        ExprProgram::runBatch(ops, frame, scalar);
        return Value{0};
      });
    }
    ASSERT_EQ(out[1], out[0]) << "round " << round;
    ASSERT_EQ(blocked, scalar) << "round " << round;
  }
  // The block path must actually have been exercised, not vacuously
  // skipped: jump-free trees (no && / || / ite) always qualify.
  EXPECT_GT(blockRounds, 20);
}

// ---- builder constant folding -------------------------------------------

TEST(BuilderFolding, FoldsConstantOperands) {
  EXPECT_EQ((Expr::lit(2) + Expr::lit(3)).literal(), 5);
  EXPECT_EQ((Expr::lit(7) * Expr::lit(-2)).literal(), -14);
  EXPECT_EQ((Expr::lit(7) < Expr::lit(9)).literal(), 1);
  EXPECT_EQ(Expr::min(Expr::lit(4), Expr::lit(2)).literal(), 2);
  EXPECT_EQ((!Expr::lit(5)).literal(), 0);
  EXPECT_TRUE((Expr::lit(1) && Expr::lit(1)).isTrue());
}

TEST(BuilderFolding, IdentitiesReturnTheOperand) {
  const Expr x = v(0);
  EXPECT_TRUE((x + Expr::lit(0)).equals(x));
  EXPECT_TRUE((Expr::lit(0) + x).equals(x));
  EXPECT_TRUE((x - Expr::lit(0)).equals(x));
  EXPECT_TRUE((x * Expr::lit(1)).equals(x));
  EXPECT_TRUE((Expr::lit(1) * x).equals(x));
  EXPECT_TRUE((x / Expr::lit(1)).equals(x));
  EXPECT_TRUE(Expr::ite(Expr::lit(1), x, v(1)).equals(x));
  EXPECT_TRUE(Expr::ite(Expr::lit(0), v(1), x).equals(x));
}

TEST(BuilderFolding, TrueGuardConjunctionKeepsBooleanOperand) {
  // top() && e folds to e when e is boolean-valued — the common guard
  // shape — so trivial-guard checks (isTrue) see through composition.
  const Expr cmp = v(0) < v(1);
  EXPECT_TRUE((Expr::top() && cmp).equals(cmp));
  EXPECT_TRUE((cmp && Expr::top()).equals(cmp));
  EXPECT_TRUE((Expr::top() && Expr::top()).isTrue());
  // Non-boolean operands are normalized to their truthiness instead.
  std::vector<Value> vars{5, 0};
  EXPECT_EQ((Expr::top() && v(0)).eval(vars), 1);
  EXPECT_EQ((Expr::top() && v(1)).eval(vars), 0);
}

TEST(BuilderFolding, NeverDropsPossibleErrors) {
  std::vector<Value> vars{0};
  // x * 0 and x && false keep x: it may raise at run time.
  EXPECT_THROW(((Expr::lit(1) / v(0)) * Expr::lit(0)).eval(vars), EvalError);
  EXPECT_THROW(((Expr::lit(1) / v(0) > Expr::lit(0)) && Expr::lit(0)).eval(vars), EvalError);
  // Constant division by zero stays a runtime error.
  EXPECT_THROW((Expr::lit(1) / Expr::lit(0)).eval(vars), EvalError);
  EXPECT_THROW((Expr::lit(1) % Expr::lit(0)).eval(vars), EvalError);
  // But a short-circuited right operand still folds away.
  EXPECT_EQ((Expr::lit(0) && (Expr::lit(1) / v(0))).literal(), 0);
}

TEST(ExprCompile, DuplicatePortExportsRejected) {
  // A variable exported twice through one port would alias two connector
  // frame slots (a down write through one slot would not be observable
  // through the other), so validation forbids it.
  AtomicType t("T");
  const int l = t.addLocation("l");
  const int x = t.addVariable("x", 0);
  t.addPort("p", {x, x});
  t.setInitialLocation(l);
  EXPECT_THROW(t.validate(), ModelError);
}

// ---- engine-level cross-checks ------------------------------------------

/// A small data-heavy system: two counters exchanging values through a
/// connector with a guard, an up transfer, two down transfers and internal
/// (tau) steps — every compiled code path in one model.
System dataExchange() {
  auto t = std::make_shared<AtomicType>("C");
  const int idle = t->addLocation("idle");
  const int busy = t->addLocation("busy");
  const int x = t->addVariable("x", 1);
  const int acc = t->addVariable("acc", 0);
  const int p = t->addPort("p", {x});
  t->addTransition(idle, p, Expr::local(x) < Expr::lit(1000),
                   {expr::Assign{VarRef{0, acc}, Expr::local(acc) + Expr::local(x)}}, busy);
  // Tau step back to idle, mixing the accumulator into x.
  t->addTransition(busy, kInternalPort, Expr::top(),
                   {expr::Assign{VarRef{0, x},
                                 (Expr::local(x) * Expr::lit(3) + Expr::local(acc)) %
                                         Expr::lit(257) +
                                     Expr::lit(1)}},
                   idle);
  t->setInitialLocation(idle);

  System sys;
  const int a = sys.addInstance("a", t);
  const int b = sys.addInstance("b", t);
  Connector c("swap");
  const int ea = c.addSynchron(PortRef{a, 0});
  const int eb = c.addSynchron(PortRef{b, 0});
  const int sum = c.addVariable("sum");
  c.setGuard(Expr::var(ea, 0) + Expr::var(eb, 0) > Expr::lit(1));
  c.addUp(sum, Expr::var(ea, 0) + Expr::var(eb, 0));
  c.addDown(ea, 0, Expr::var(expr::kConnectorScope, sum) / Expr::lit(2));
  c.addDown(eb, 0, Expr::var(expr::kConnectorScope, sum) % Expr::lit(97) + Expr::lit(1));
  sys.addConnector(std::move(c));
  sys.validate();
  return sys;
}

void expectIdenticalRuns(const RunResult& on, const RunResult& off, const std::string& what) {
  EXPECT_EQ(on.reason, off.reason) << what;
  EXPECT_EQ(on.steps, off.steps) << what;
  EXPECT_EQ(on.finalState, off.finalState) << what;
  ASSERT_EQ(on.trace.events.size(), off.trace.events.size()) << what;
  for (std::size_t i = 0; i < on.trace.events.size(); ++i) {
    EXPECT_EQ(on.trace.events[i].step, off.trace.events[i].step) << what << " event " << i;
    EXPECT_EQ(on.trace.events[i].connector, off.trace.events[i].connector)
        << what << " event " << i;
    EXPECT_EQ(on.trace.events[i].mask, off.trace.events[i].mask) << what << " event " << i;
    EXPECT_EQ(on.trace.events[i].label, off.trace.events[i].label) << what << " event " << i;
  }
}

TEST(EngineCompileCrossCheck, SequentialTracesBitIdentical) {
  const System models[] = {models::philosophersAtomic(6), models::gasStation(2, 4),
                           models::producerConsumerBounded(3, 7), models::tokenRing(8),
                           dataExchange()};
  const char* names[] = {"phil", "gas", "prodcons", "ring", "dataExchange"};
  for (std::size_t m = 0; m < std::size(models); ++m) {
    for (std::uint64_t seed : {3ULL, 17ULL, 99ULL}) {
      RunResult runs[2];
      for (int compiledOn = 0; compiledOn < 2; ++compiledOn) {
        CompileSwitch sw(compiledOn == 1);
        RandomPolicy policy(seed);
        SequentialEngine engine(models[m], policy);
        RunOptions opt;
        opt.maxSteps = 300;
        runs[compiledOn] = engine.run(opt);
      }
      expectIdenticalRuns(runs[1], runs[0],
                          std::string(names[m]) + " seed " + std::to_string(seed));
    }
  }
}

TEST(EngineCompileCrossCheck, SequentialAgreesWithAndWithoutIncrementalCache) {
  // Compilation and the enabled-set cache compose: all four on/off
  // combinations must produce the same run.
  const System sys = dataExchange();
  std::vector<RunResult> runs;
  for (int compiledOn = 0; compiledOn < 2; ++compiledOn) {
    for (int cacheOn = 0; cacheOn < 2; ++cacheOn) {
      CompileSwitch sw(compiledOn == 1);
      RandomPolicy policy(42);
      SequentialEngine engine(sys, policy);
      RunOptions opt;
      opt.maxSteps = 200;
      opt.incrementalCache = (cacheOn == 1);
      runs.push_back(engine.run(opt));
    }
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    expectIdenticalRuns(runs[0], runs[i], "combination " + std::to_string(i));
  }
}

TEST(EngineCompileCrossCheck, MultiThreadTracesBitIdentical) {
  const System models[] = {models::philosophersAtomic(5), models::producerConsumerBounded(2, 5),
                           dataExchange()};
  const char* names[] = {"phil", "prodcons", "dataExchange"};
  for (std::size_t m = 0; m < std::size(models); ++m) {
    RunResult runs[2];
    for (int compiledOn = 0; compiledOn < 2; ++compiledOn) {
      CompileSwitch sw(compiledOn == 1);
      RandomPolicy policy(7);
      MultiThreadEngine engine(models[m], policy);
      MtOptions opt;
      opt.maxSteps = 200;
      runs[compiledOn] = engine.run(opt);
    }
    expectIdenticalRuns(runs[1], runs[0], names[m]);
  }
}

TEST(EngineFusionCrossCheck, SequentialTracesBitIdenticalFusedVsUnfused) {
  // Fusion is a dispatch-strategy change only: traces, final states and
  // step counts must be bit-identical with the fused programs on and off.
  const System models[] = {models::philosophersAtomic(6), models::gasStation(2, 4),
                           models::producerConsumerBounded(3, 7), models::tokenRing(8),
                           dataExchange()};
  const char* names[] = {"phil", "gas", "prodcons", "ring", "dataExchange"};
  for (std::size_t m = 0; m < std::size(models); ++m) {
    for (std::uint64_t seed : {3ULL, 17ULL, 99ULL}) {
      RunResult runs[2];
      for (int fusedOn = 0; fusedOn < 2; ++fusedOn) {
        FusionSwitch sw(fusedOn == 1);
        RandomPolicy policy(seed);
        SequentialEngine engine(models[m], policy);
        RunOptions opt;
        opt.maxSteps = 300;
        runs[fusedOn] = engine.run(opt);
      }
      expectIdenticalRuns(runs[1], runs[0],
                          std::string(names[m]) + " seed " + std::to_string(seed));
    }
  }
}

TEST(EngineFusionCrossCheck, MultiThreadTracesBitIdenticalFusedVsUnfused) {
  const System models[] = {models::philosophersAtomic(5), models::producerConsumerBounded(2, 5),
                           dataExchange()};
  const char* names[] = {"phil", "prodcons", "dataExchange"};
  for (std::size_t m = 0; m < std::size(models); ++m) {
    RunResult runs[2];
    for (int fusedOn = 0; fusedOn < 2; ++fusedOn) {
      FusionSwitch sw(fusedOn == 1);
      RandomPolicy policy(7);
      MultiThreadEngine engine(models[m], policy);
      MtOptions opt;
      opt.maxSteps = 200;
      runs[fusedOn] = engine.run(opt);
    }
    expectIdenticalRuns(runs[1], runs[0], names[m]);
  }
}

TEST(EngineDispatchCrossCheck, SequentialTracesBitIdenticalThreadedVsSwitch) {
  // The computed-goto VM core (and the block-parallel batch executor it
  // gates) is an execution-core change only: traces, final states and
  // step counts must be bit-identical with the core on and with the
  // CBIP_NO_THREADED switch-dispatch fallback.
  const System models[] = {models::philosophersAtomic(6), models::gasStation(2, 4),
                           models::producerConsumerBounded(3, 7), models::tokenRing(8),
                           dataExchange()};
  const char* names[] = {"phil", "gas", "prodcons", "ring", "dataExchange"};
  for (std::size_t m = 0; m < std::size(models); ++m) {
    for (std::uint64_t seed : {3ULL, 17ULL, 99ULL}) {
      RunResult runs[2];
      for (int threadedOn = 0; threadedOn < 2; ++threadedOn) {
        ThreadedSwitch sw(threadedOn == 1);
        RandomPolicy policy(seed);
        SequentialEngine engine(models[m], policy);
        RunOptions opt;
        opt.maxSteps = 300;
        runs[threadedOn] = engine.run(opt);
      }
      expectIdenticalRuns(runs[1], runs[0],
                          std::string(names[m]) + " seed " + std::to_string(seed));
    }
  }
}

TEST(EngineDispatchCrossCheck, MultiThreadTracesBitIdenticalThreadedVsSwitch) {
  const System models[] = {models::philosophersAtomic(5), models::producerConsumerBounded(2, 5),
                           dataExchange()};
  const char* names[] = {"phil", "prodcons", "dataExchange"};
  for (std::size_t m = 0; m < std::size(models); ++m) {
    RunResult runs[2];
    for (int threadedOn = 0; threadedOn < 2; ++threadedOn) {
      ThreadedSwitch sw(threadedOn == 1);
      RandomPolicy policy(7);
      MultiThreadEngine engine(models[m], policy);
      MtOptions opt;
      opt.maxSteps = 200;
      runs[threadedOn] = engine.run(opt);
    }
    expectIdenticalRuns(runs[1], runs[0], names[m]);
  }
}

TEST(EngineCompileCrossCheck, SuccessorsAndDeadlocksAgree)  {
  // The shared semantic kernel (enabledInteractions/successors) must give
  // the verifier the same view either way.
  const System sys = dataExchange();
  GlobalState g = initialState(sys);
  for (int step = 0; step < 30; ++step) {
    std::vector<GlobalState> succOn, succOff;
    {
      CompileSwitch sw(true);
      succOn = successors(sys, g);
    }
    {
      CompileSwitch sw(false);
      succOff = successors(sys, g);
    }
    ASSERT_EQ(succOn.size(), succOff.size()) << "step " << step;
    for (std::size_t i = 0; i < succOn.size(); ++i) {
      ASSERT_EQ(succOn[i], succOff[i]) << "step " << step << " successor " << i;
    }
    if (succOn.empty()) break;
    g = succOn.front();
  }
}

}  // namespace
}  // namespace cbip
