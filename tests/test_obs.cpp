// Tests for the observability layer (src/obs): registry exactness under
// concurrency, snapshot consistency, the runtime/buildtime escape
// hatches, the Chrome trace-event log, and the differential discipline —
// engine traces must be bit-identical with telemetry on, off, or
// compiled out, because telemetry only counts, it never steers.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "expr/compile.hpp"
#include "core/compiled.hpp"
#include "models/models.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "shard/engine_sharded.hpp"

namespace cbip {
namespace {

using shard::ShardedEngine;
using shard::ShardedOptions;
using shard::ShardedStats;

#if !defined(CBIP_NO_OBS)

// The registry unit tests assert exact counts, so they pin recording on
// regardless of the ambient CBIP_NO_OBS environment (the compiled-out
// build exercises its own no-op test below instead).
void resetRecordingOn() {
  obs::setEnabled(true);
  obs::resetAll();
}

TEST(ObsRegistry, CounterExactAcrossThreads) {
  resetRecordingOn();
  const obs::Counter counter("test.obs.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 20000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (std::uint64_t i = 0; i < kAdds; ++i) counter.add();
      });
    }
  }
  // All recording threads joined (and their cells folded into the retired
  // totals): the snapshot is exact.
  EXPECT_EQ(obs::snapshot().counter("test.obs.concurrent"), kThreads * kAdds);
}

TEST(ObsRegistry, SnapshotWhileRecordingIsMonotone) {
  resetRecordingOn();
  const obs::Counter counter("test.obs.racing");
  std::uint64_t last = 0;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 50000; ++i) counter.add();
      });
    }
    // Concurrent snapshots: writers never block; successive reads of a
    // monotone counter must be monotone (TSan validates the lock-free
    // cell protocol here).
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t now = obs::snapshot().counter("test.obs.racing");
      EXPECT_GE(now, last);
      last = now;
    }
  }
  EXPECT_EQ(obs::snapshot().counter("test.obs.racing"), 4u * 50000u);
}

TEST(ObsRegistry, RuntimeToggleStopsRecording) {
  resetRecordingOn();
  const obs::Counter counter("test.obs.toggle");
  counter.add(3);
  obs::setEnabled(false);
  counter.add(1000);
  obs::setEnabled(true);
  counter.add(2);
  EXPECT_EQ(obs::snapshot().counter("test.obs.toggle"), 5u);
}

TEST(ObsRegistry, ResetAllZeroes) {
  obs::setEnabled(true);
  const obs::Counter counter("test.obs.reset");
  counter.add(7);
  obs::resetAll();
  EXPECT_EQ(obs::snapshot().counter("test.obs.reset"), 0u);
}

TEST(ObsRegistry, ReregisteringANameSharesTheCell) {
  resetRecordingOn();
  const obs::Counter a("test.obs.shared");
  const obs::Counter b("test.obs.shared");
  a.add(2);
  b.add(3);
  EXPECT_EQ(obs::snapshot().counter("test.obs.shared"), 5u);
}

TEST(ObsHistogram, PowerOfTwoBuckets) {
  resetRecordingOn();
  const obs::Histogram h("test.obs.hist");
  h.observe(0);    // bucket 0 (<= 0)
  h.observe(-5);   // bucket 0, clamped out of the sum
  h.observe(1);    // bit_width 1
  h.observe(5);    // bit_width 3
  h.observe(7);    // bit_width 3
  const obs::Snapshot snap = obs::snapshot();
  const obs::Snapshot::Histogram* hist = snap.histogram("test.obs.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 5u);
  EXPECT_EQ(hist->sum, 13u);
  EXPECT_EQ(hist->buckets.at(0), 2u);
  EXPECT_EQ(hist->buckets.at(1), 1u);
  EXPECT_EQ(hist->buckets.at(3), 2u);
}

TEST(ObsTimer, RecordsNanosAndCalls) {
  resetRecordingOn();
  const obs::Timer timer("test.obs.timer");
  timer.record(100);
  timer.record(50);
  { const obs::Timer::Scope scope(timer); }
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_GE(snap.counter("test.obs.timer.ns"), 150u);
  EXPECT_EQ(snap.counter("test.obs.timer.calls"), 3u);
}

TEST(ObsJson, DeterministicAndWellFormed) {
  resetRecordingOn();
  obs::Counter("test.obs.json.b").add(2);
  obs::Counter("test.obs.json.a").add(1);
  obs::Histogram("test.obs.json.h").observe(4);
  const std::string json = obs::toJson(obs::snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.a\":1"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json.b\":2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Sorted keys: "a" before "b".
  EXPECT_LT(json.find("test.obs.json.a"), json.find("test.obs.json.b"));
  EXPECT_EQ(json, obs::toJson(obs::snapshot()));
}

TEST(ObsTraceLog, ChromeTraceStructure) {
  obs::TraceLog log;
  log.setThreadName(0, "shard 0");
  log.complete("plan", "epoch", 0, 1000, 2500);
  log.instant("mark", "epoch", 0, 3000);
  EXPECT_EQ(log.eventCount(), 2u);
  std::ostringstream os;
  log.write(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"plan\""), std::string::npos);
  // 1500 ns span = 1.500 us.
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
}

TEST(ObsTraceLog, ShardedEngineEmitsEpochSpans) {
  obs::TraceLog log;
  obs::setTraceSink(&log);
  const System sys = models::philosophersAtomic(8);
  ShardedEngine engine(sys, 2);
  ShardedOptions opt;
  opt.maxSteps = 100;
  opt.recordTrace = false;
  engine.run(opt);
  obs::setTraceSink(nullptr);
  EXPECT_GT(log.eventCount(), 0u);
  std::ostringstream os;
  log.write(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cross\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"local\""), std::string::npos);
  EXPECT_NE(json.find("\"shard 1\""), std::string::npos);
}

#else  // CBIP_NO_OBS

TEST(ObsNoOpBuild, RecordingVanishes) {
  const obs::Counter counter("test.obs.noop");
  counter.add(100);
  obs::Histogram("test.obs.noop.h").observe(5);
  obs::Timer("test.obs.noop.t").record(7);
  EXPECT_FALSE(obs::enabled());
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_EQ(snap.counter("test.obs.noop"), 0u);
  // The export API stays callable and deterministic.
  EXPECT_EQ(obs::toJson(snap), obs::toJson(obs::snapshot()));
}

#endif  // CBIP_NO_OBS

// ---- differential discipline -------------------------------------------

/// Runs one engine on `sys` and returns (labels, final state, steps).
struct Outcome {
  std::vector<std::string> labels;
  GlobalState finalState;
  std::uint64_t steps = 0;
};

Outcome runSeq(const System& sys, std::uint64_t seed) {
  RandomPolicy policy(seed);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 200;
  const RunResult r = engine.run(opt);
  return {r.trace.labels(), r.finalState, r.steps};
}

Outcome runMt(const System& sys, std::uint64_t seed) {
  RandomPolicy policy(seed);
  MultiThreadEngine engine(sys, policy);
  MtOptions opt;
  opt.maxSteps = 200;
  const RunResult r = engine.run(opt);
  return {r.trace.labels(), r.finalState, r.steps};
}

Outcome runSharded(const System& sys, std::uint64_t seed) {
  ShardedEngine engine(sys, 2);
  ShardedOptions opt;
  opt.maxSteps = 200;
  opt.seed = seed;
  const RunResult r = engine.run(opt);
  return {r.trace.labels(), r.finalState, r.steps};
}

void expectSameOutcome(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.finalState, b.finalState);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(ObsDifferential, TracesBitIdenticalWithObsOnAndOff) {
  // Every engine, crossed with the execution-layer escape hatches:
  // toggling telemetry must never change a single scheduling decision.
  const System systems[] = {models::philosophersAtomic(6), models::tokenRing(6)};
  struct Hatch {
    const char* name;
    void (*set)(bool);
    bool (*get)();
  };
  const Hatch hatches[] = {
      {"compile", expr::setCompilationEnabled, expr::compilationEnabled},
      {"fuse", expr::setFusionEnabled, expr::fusionEnabled},
      {"threaded", expr::setThreadedDispatchEnabled, expr::threadedDispatchEnabled},
      {"batch-scan", setBatchScanEnabled, batchScanEnabled},
  };
  Outcome (*const engines[])(const System&, std::uint64_t) = {runSeq, runMt, runSharded};
  for (const System& sys : systems) {
    for (const auto& runEngine : engines) {
      // Baseline hatch config plus each hatch individually disabled.
      for (int disable = -1; disable < static_cast<int>(std::size(hatches)); ++disable) {
        const bool saved = disable >= 0 ? hatches[disable].get() : false;
        if (disable >= 0) hatches[disable].set(false);
        obs::setEnabled(true);
        const Outcome on = runEngine(sys, 42);
        obs::setEnabled(false);
        const Outcome off = runEngine(sys, 42);
        obs::setEnabled(true);
        if (disable >= 0) hatches[disable].set(saved);
        SCOPED_TRACE(disable >= 0 ? hatches[disable].name : "all-on");
        expectSameOutcome(on, off);
      }
    }
  }
}

// ---- sharded scheduler statistics --------------------------------------

TEST(ShardedStatsTest, StepAccountingIsExact) {
  const System sys = models::philosophersAtomic(8);
  ShardedEngine engine(sys, 2);
  ShardedOptions opt;
  opt.maxSteps = 300;
  const RunResult r = engine.run(opt);
  const ShardedStats& st = engine.lastRunStats();
  ASSERT_EQ(st.shards.size(), 2u);
  std::uint64_t total = 0;
  for (const ShardedStats::Shard& sh : st.shards) {
    EXPECT_EQ(sh.steps, sh.localSteps + sh.crossSteps);
    EXPECT_LE(sh.localSteps, sh.quotaGranted);
    EXPECT_EQ(sh.quotaUnused, sh.quotaGranted - sh.localSteps);
    total += sh.steps;
  }
  EXPECT_EQ(total, r.steps);
  EXPECT_GT(st.epochs, 0u);
  EXPECT_EQ(st.crossAccepted + st.crossConflicts, st.crossCandidates);
}

TEST(ShardedStatsTest, TokenRingShowsIdleShardsAndStalledEpochs) {
  // A token ring serializes: whichever shard does not hold the token has
  // nothing to do that epoch, so the load metrics must expose the
  // imbalance — idle epochs on both shards, stalled epochs globally.
  const System sys = models::tokenRing(8);
  ShardedEngine engine(sys, 2);
  ShardedOptions opt;
  opt.maxSteps = 400;
  const RunResult r = engine.run(opt);
  EXPECT_GT(r.steps, 0u);
  const ShardedStats& st = engine.lastRunStats();
  ASSERT_EQ(st.shards.size(), 2u);
  EXPECT_GT(st.epochs, 1u);
  EXPECT_GT(st.stalledEpochs, 0u);
  std::uint64_t idleEpochs = 0;
  for (const ShardedStats::Shard& sh : st.shards) idleEpochs += sh.idleEpochs;
  EXPECT_GT(idleEpochs, 0u);
  // Stalls are epochs where at least one shard idled; the per-shard idle
  // count can exceed the stall count only if both idle at once, which
  // progress forbids with two shards.
  EXPECT_LE(idleEpochs, st.stalledEpochs * (st.shards.size() - 1));
}

TEST(ShardedStatsTest, StatsResetBetweenRuns) {
  const System sys = models::philosophersAtomic(6);
  ShardedEngine engine(sys, 2);
  ShardedOptions opt;
  opt.maxSteps = 50;
  engine.run(opt);
  const std::uint64_t firstEpochs = engine.lastRunStats().epochs;
  EXPECT_GT(firstEpochs, 0u);
  opt.maxSteps = 0;
  engine.run(opt);
  EXPECT_EQ(engine.lastRunStats().epochs, 0u);
}

}  // namespace
}  // namespace cbip
