// Tests for the BIP textual DSL: parsing into core objects, semantic
// equivalence with programmatically built models, error reporting.
#include <gtest/gtest.h>

#include "core/semantics.hpp"
#include "engine/engine.hpp"
#include "frontends/bipdsl/bipdsl.hpp"
#include "models/models.hpp"
#include "util/require.hpp"
#include "verify/dfinder.hpp"
#include "verify/reachability.hpp"

namespace cbip::dsl {
namespace {

constexpr const char* kPhilosophers = R"(
# Dining philosophers, atomic grab (deadlock-free).
atom Philosopher
  var meals = 0
  port eat
  port done
  location thinking init
  location eating
  from thinking on eat do meals := meals + 1 goto eating
  from eating on done goto thinking
end

atom Fork
  port use
  port release
  location free init
  location taken
  from free on use goto taken
  from taken on release goto free
end

system
  instance p0 : Philosopher
  instance p1 : Philosopher
  instance f0 : Fork
  instance f1 : Fork
  connector eat0 = sync(p0.eat, f0.use, f1.use)
  connector rel0 = sync(p0.done, f0.release, f1.release)
  connector eat1 = sync(p1.eat, f1.use, f0.use)
  connector rel1 = sync(p1.done, f1.release, f0.release)
end
)";

TEST(BipDsl, ParsesAtomsAndSystem) {
  const ParseResult r = parseModel(kPhilosophers);
  EXPECT_EQ(r.atoms.size(), 2u);
  EXPECT_EQ(r.system.instanceCount(), 4u);
  EXPECT_EQ(r.system.connectorCount(), 4u);
  const AtomicTypePtr& phil = r.atoms.at("Philosopher");
  EXPECT_EQ(phil->locationCount(), 2u);
  EXPECT_EQ(phil->portCount(), 2u);
  EXPECT_EQ(phil->variableCount(), 1u);
}

constexpr const char* kPhilosophersNoCounters = R"(
atom Philosopher
  port eat
  port done
  location thinking init
  location eating
  from thinking on eat goto eating
  from eating on done goto thinking
end
atom Fork
  port use
  port release
  location free init
  location taken
  from free on use goto taken
  from taken on release goto free
end
system
  instance p0 : Philosopher
  instance p1 : Philosopher
  instance f0 : Fork
  instance f1 : Fork
  connector eat0 = sync(p0.eat, f0.use, f1.use)
  connector rel0 = sync(p0.done, f0.release, f1.release)
  connector eat1 = sync(p1.eat, f1.use, f0.use)
  connector rel1 = sync(p1.done, f1.release, f0.release)
end
)";

TEST(BipDsl, ParsedSystemBisimilarToBuiltOne) {
  const System parsed = parseSystem(kPhilosophersNoCounters);
  const System built = models::philosophersAtomic(2, /*counters=*/false);
  // Labels differ (connector naming matches), graphs must be bisimilar.
  const verify::LabeledGraph a = verify::buildGraph(parsed);
  const verify::LabeledGraph b = verify::buildGraph(built);
  EXPECT_EQ(a.states.size(), b.states.size());
  // And D-Finder certifies the parsed model directly.
  EXPECT_EQ(verify::checkDeadlockFreedom(parsed).verdict,
            verify::DFinderVerdict::kDeadlockFree);
}

TEST(BipDsl, GuardsActionsAndTau) {
  const System sys = parseSystem(R"(
atom Counter
  var n = 0
  port tick
  location run init
  from run on tick when n < 3 do n := n + 1 goto run
  from run on tau when n >= 3 do n := 0 goto run
end
system
  instance c : Counter
  connector t = sync(c.tick)
end
)");
  RandomPolicy policy(3);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 10;
  const RunResult r = engine.run(opt);
  // The tau resets n to 0 whenever it reaches 3, so the system never
  // deadlocks and n stays in [0, 3].
  EXPECT_EQ(r.reason, StopReason::kStepLimit);
  EXPECT_LT(r.finalState.components[0].vars[0], 4);
}

TEST(BipDsl, ConnectorGuardAndDataTransfer) {
  const System sys = parseSystem(R"(
atom Producer
  var next = 0
  port put exports next
  location run init
  from run on put do next := next + 1 goto run
end
atom Consumer
  var got = 0
  var sum = 0
  port take exports got
  location run init
  from run on take do sum := sum + got goto run
end
system
  instance p : Producer
  instance c : Consumer
  connector move = sync(p.put, c.take) when p.next < 5 down c.got := p.next
end
)");
  GlobalState g = initialState(sys);
  int fired = 0;
  while (true) {
    const auto enabled = enabledInteractions(sys, g);
    if (enabled.empty()) break;
    executeDefault(sys, g, enabled[0]);
    ++fired;
    ASSERT_LT(fired, 100);
  }
  // Guard p.next < 5 stops after 5 transfers; sum = 0+1+2+3+4 = 10.
  EXPECT_EQ(fired, 5);
  const int c = sys.instanceIndex("c");
  EXPECT_EQ(g.components[static_cast<std::size_t>(c)].vars[1], 10);
}

TEST(BipDsl, BroadcastAndPriorities) {
  const System sys = parseSystem(R"(
atom Sender
  port snd
  location l init
  from l on snd goto l
end
atom Receiver
  var on = 1
  port rcv
  location l init
  from l on rcv when on == 1 goto l
end
system
  instance s : Sender
  instance r0 : Receiver
  instance r1 : Receiver
  connector bc = broadcast(s.snd, r0.rcv, r1.rcv)
  maximal progress
end
)");
  GlobalState g = initialState(sys);
  auto enabled = applyPriorities(sys, g, enabledInteractions(sys, g));
  ASSERT_EQ(enabled.size(), 1u);
  EXPECT_EQ(enabled[0].ends.size(), 3u);  // full broadcast wins
}

TEST(BipDsl, ConditionalPriorityParses) {
  const System sys = parseSystem(R"(
atom A
  var n = 0
  port p
  location l init
  from l on p do n := n + 1 goto l
end
system
  instance a : A
  instance b : A
  connector low = sync(a.p)
  connector high = sync(b.p)
  priority low < high when b.n < 2
end
)");
  GlobalState g = initialState(sys);
  auto filtered = applyPriorities(sys, g, enabledInteractions(sys, g));
  EXPECT_EQ(filtered.size(), 1u);
  g.components[1].vars[0] = 2;
  filtered = applyPriorities(sys, g, enabledInteractions(sys, g));
  EXPECT_EQ(filtered.size(), 2u);
}

TEST(BipDsl, ErrorsAreReported) {
  // Unknown atom.
  EXPECT_THROW(parseSystem("system\n instance a : Ghost\nend"), ModelError);
  // Unknown port in connector.
  EXPECT_THROW(parseSystem(R"(
atom A
  port p
  location l init
  from l on p goto l
end
system
  instance a : A
  connector c = sync(a.q)
end
)"),
               ModelError);
  // Non-exported variable in connector expression.
  EXPECT_THROW(parseSystem(R"(
atom A
  var n = 0
  port p
  location l init
  from l on p goto l
end
system
  instance a : A
  instance b : A
  connector c = sync(a.p, b.p) when a.n > 0
end
)"),
               ModelError);
  // Duplicate atom name.
  EXPECT_THROW(parseModel("atom A\n location l init\nend\natom A\n location l init\nend"),
               ModelError);
  // Garbage toplevel.
  EXPECT_THROW(parseModel("banana"), ModelError);
}

TEST(BipDsl, ParsedModelWorksAcrossTheWholeFlow) {
  // End-to-end semantic coherency: text -> model -> engine + D-Finder.
  const System sys = parseSystem(kPhilosophers);
  RandomPolicy policy(11);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 200;
  const RunResult r = engine.run(opt);
  EXPECT_EQ(r.reason, StopReason::kStepLimit);
  Value meals = 0;
  for (int i = 0; i < 2; ++i) {
    meals += r.finalState.components[static_cast<std::size_t>(i)].vars[0];
  }
  EXPECT_EQ(meals, 100);  // every second interaction is an eat
}

}  // namespace
}  // namespace cbip::dsl
