// Tests for static fusion (source-to-source flattening, E12): the fused
// atomic component must be label-bisimilar to the engine-coordinated
// composite.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/flatten.hpp"
#include "models/models.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "verify/reachability.hpp"

namespace cbip {
namespace {

/// Explores the fused component's labelled state graph.
verify::LabeledGraph fusedGraph(const FusedComponent& fused, std::uint64_t maxStates) {
  verify::LabeledGraph g;
  std::map<std::pair<int, std::vector<Value>>, std::size_t> ids;
  std::vector<AtomicState> states;
  AtomicState init = initialState(*fused.type);
  runInternal(*fused.type, init);
  ids[{init.location, init.vars}] = 0;
  states.push_back(init);
  g.states.emplace_back();  // placeholder: fused graph states unused
  g.edges.emplace_back();
  for (std::size_t id = 0; id < states.size(); ++id) {
    const AtomicState s = states[id];
    for (std::size_t p = 0; p < fused.type->portCount(); ++p) {
      for (const int ti : enabledTransitions(*fused.type, s, static_cast<int>(p))) {
        AtomicState next = s;
        fire(*fused.type, next, fused.type->transition(ti));
        runInternal(*fused.type, next);
        const auto key = std::make_pair(next.location, next.vars);
        auto it = ids.find(key);
        std::size_t nid = 0;
        if (it == ids.end()) {
          nid = states.size();
          if (nid >= maxStates) throw ModelError("fusedGraph: budget exhausted");
          ids.emplace(key, nid);
          states.push_back(next);
          g.states.emplace_back();
          g.edges.emplace_back();
        } else {
          nid = it->second;
        }
        g.edges[id].emplace_back(fused.portLabels[p], nid);
      }
    }
    std::sort(g.edges[id].begin(), g.edges[id].end());
    g.edges[id].erase(std::unique(g.edges[id].begin(), g.edges[id].end()),
                      g.edges[id].end());
  }
  return g;
}

class FusionBisimTest : public ::testing::TestWithParam<int> {};

TEST_P(FusionBisimTest, PhilosophersFusedBisimilar) {
  const System sys = models::philosophersAtomic(GetParam(), /*counters=*/false);
  const FusedComponent fused = fuse(sys);
  const verify::LabeledGraph a = verify::buildGraph(sys);
  const verify::LabeledGraph b = fusedGraph(fused, 100'000);
  EXPECT_TRUE(verify::bisimilar(a, b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FusionBisimTest, ::testing::Values(2, 3, 4));

TEST(Fusion, TwoStepPhilosophersPreserveDeadlock) {
  const System sys = models::philosophersTwoStep(3, /*counters=*/false);
  const FusedComponent fused = fuse(sys);
  const verify::LabeledGraph a = verify::buildGraph(sys);
  const verify::LabeledGraph b = fusedGraph(fused, 100'000);
  EXPECT_TRUE(verify::bisimilar(a, b));
}

TEST(Fusion, ProducerConsumerDataTransferPreserved) {
  const System sys = models::producerConsumer(2);
  const FusedComponent fused = fuse(sys);
  AtomicState s = initialState(*fused.type);
  Rng rng(42);
  Value produced = 0, consumed = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string label = step(fused, s, rng);
    ASSERT_FALSE(label.empty());
    if (label.rfind("put", 0) == 0) ++produced;
    if (label.rfind("get", 0) == 0) ++consumed;
  }
  EXPECT_EQ(produced - consumed,
            s.vars[static_cast<std::size_t>(fused.type->variableIndex("buffer.count"))]);
  // The consumer's sum must equal the sum of the first `consumed` naturals.
  const Value sum = s.vars[static_cast<std::size_t>(fused.type->variableIndex("consumer.sum"))];
  EXPECT_EQ(sum, consumed * (consumed - 1) / 2);
}

TEST(Fusion, PriorityEncodedStatically) {
  // low ≺ high: the fused component must never offer `low` while `high`
  // is enabled.
  System sys;
  auto counter = std::make_shared<AtomicType>("C");
  {
    const int run = counter->addLocation("run");
    const int n = counter->addVariable("n", 0);
    const int tick = counter->addPort("tick");
    counter->addTransition(run, tick, Expr::local(n) < Expr::lit(3),
                           {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}},
                           run);
    counter->setInitialLocation(run);
  }
  const int a = sys.addInstance("a", counter);
  const int b = sys.addInstance("b", counter);
  sys.addConnector(rendezvous("low", {PortRef{a, 0}}));
  sys.addConnector(rendezvous("high", {PortRef{b, 0}}));
  sys.addPriority(PriorityRule{"low", "high", std::nullopt});
  sys.validate();

  const FusedComponent fused = fuse(sys);
  AtomicState s = initialState(*fused.type);
  // While b can still tick (n < 3), only "high" may be offered.
  auto labels = enabledLabels(fused, s);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].rfind("high", 0), 0u);
  // Exhaust b.
  Rng rng(1);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(step(fused, s, rng).rfind("high", 0), 0u);
  labels = enabledLabels(fused, s);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].rfind("low", 0), 0u);
}

TEST(Fusion, MaximalProgressEncodedStatically) {
  System sys;
  auto sender = std::make_shared<AtomicType>("S");
  {
    const int l = sender->addLocation("l");
    const int p = sender->addPort("p");
    sender->addTransition(l, p, l);
    sender->setInitialLocation(l);
  }
  auto receiver = std::make_shared<AtomicType>("R");
  {
    const int l = receiver->addLocation("l");
    const int en = receiver->addVariable("en", 1);
    const int p = receiver->addPort("p");
    receiver->addTransition(l, p, Expr::local(en) == Expr::lit(1), {}, l);
    receiver->setInitialLocation(l);
  }
  const int s = sys.addInstance("s", sender);
  const int r = sys.addInstance("r", receiver);
  sys.addConnector(broadcast("b", PortRef{s, 0}, {PortRef{r, 0}}));
  sys.setMaximalProgress(true);
  sys.validate();

  const FusedComponent fused = fuse(sys);
  AtomicState st = initialState(*fused.type);
  // Receiver enabled: only the full broadcast must be offered.
  auto labels = enabledLabels(fused, st);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_NE(labels[0].find("r.p"), std::string::npos);
  // Disable the receiver: the singleton broadcast becomes the offer.
  st.vars[static_cast<std::size_t>(fused.type->variableIndex("r.en"))] = 0;
  labels = enabledLabels(fused, st);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].find("r.p"), std::string::npos);
}

TEST(Fusion, StepReportsDeadlock) {
  System sys;
  auto once = std::make_shared<AtomicType>("Once");
  const int s0 = once->addLocation("s0");
  const int s1 = once->addLocation("s1");
  const int go = once->addPort("go");
  once->addTransition(s0, go, s1);
  once->setInitialLocation(s0);
  sys.addInstance("x", once);
  sys.addConnector(rendezvous("go", {PortRef{0, 0}}));
  const FusedComponent fused = fuse(sys);
  AtomicState st = initialState(*fused.type);
  Rng rng(5);
  EXPECT_EQ(step(fused, st, rng), "go{x.go}");
  EXPECT_TRUE(step(fused, st, rng).empty());
}

}  // namespace
}  // namespace cbip
