// Tests for hierarchical composition: the incrementality and flattening
// laws of §5.3.2, checked operationally (bisimilarity of nested and flat
// constructions).
#include <gtest/gtest.h>

#include "core/composite.hpp"
#include "core/semantics.hpp"
#include "models/models.hpp"
#include "util/require.hpp"
#include "verify/reachability.hpp"

namespace cbip {
namespace {

/// Nesting prefixes instance names, which appear inside interaction
/// labels ("eat0{A.p0.eat, ...}"); for behavioural comparison only the
/// connector identity matters, so truncate labels at '{'.
verify::LabeledGraph connectorLabelled(verify::LabeledGraph g) {
  for (auto& edges : g.edges) {
    for (auto& [label, to] : edges) label = label.substr(0, label.find('{'));
  }
  return g;
}

AtomicTypePtr pingType() {
  auto t = std::make_shared<AtomicType>("Ping");
  const int l = t->addLocation("l");
  const int p = t->addPort("p");
  t->addTransition(l, p, l);
  t->setInitialLocation(l);
  return t;
}

TEST(Composite, FlatteningLawForPhilosophers) {
  // gl1(C1, gl2(C2 .. Cn)) ≈ gl(C1 .. Cn): build philosophers(2) as two
  // nested subsystems plus cross connectors; must be bisimilar to the
  // directly composed system.
  const System flat = models::philosophersAtomic(2, /*counters=*/false);

  // Subsystem A: philosopher p0 + fork f0 (no internal connectors).
  System subA;
  subA.addInstance("p0", flat.instance(0).type);
  subA.addInstance("f0", flat.instance(2).type);
  // Subsystem B: philosopher p1 + fork f1.
  System subB;
  subB.addInstance("p1", flat.instance(1).type);
  subB.addInstance("f1", flat.instance(3).type);

  CompositeBuilder builder;
  const std::vector<int> a = builder.addSubsystem("A", subA);
  const std::vector<int> b = builder.addSubsystem("B", subB);
  const auto& phil = flat.instance(0).type;
  const auto& fork = flat.instance(2).type;
  const int eat = phil->portIndex("eat");
  const int done = phil->portIndex("done");
  const int use = fork->portIndex("use");
  const int release = fork->portIndex("release");
  builder.addConnector(rendezvous(
      "eat0", {PortRef{a[0], eat}, PortRef{a[1], use}, PortRef{b[1], use}}));
  builder.addConnector(rendezvous(
      "rel0", {PortRef{a[0], done}, PortRef{a[1], release}, PortRef{b[1], release}}));
  builder.addConnector(rendezvous(
      "eat1", {PortRef{b[0], eat}, PortRef{b[1], use}, PortRef{a[1], use}}));
  builder.addConnector(rendezvous(
      "rel1", {PortRef{b[0], done}, PortRef{b[1], release}, PortRef{a[1], release}}));
  const System nested = builder.build();

  EXPECT_EQ(nested.instanceCount(), flat.instanceCount());
  EXPECT_EQ(nested.instance(0).name, "A.p0");
  const verify::LabeledGraph ga = connectorLabelled(verify::buildGraph(flat));
  const verify::LabeledGraph gb = connectorLabelled(verify::buildGraph(nested));
  EXPECT_TRUE(verify::bisimilar(ga, gb));
}

TEST(Composite, IncrementalityLawForRendezvous) {
  // Coordinating three components at once vs coordinating two first and
  // then adding the third: identical flat semantics.
  auto t = pingType();
  // Direct: gl(C1, C2, C3).
  System direct;
  for (int i = 0; i < 3; ++i) direct.addInstance("c" + std::to_string(i), t);
  direct.addConnector(rendezvous("sync", {PortRef{0, 0}, PortRef{1, 0}, PortRef{2, 0}}));
  direct.validate();

  // Incremental: inner = {C2, C3} (no connectors yet), then the outer
  // level adds the three-party synchronization.
  System inner;
  inner.addInstance("c1", t);
  inner.addInstance("c2", t);
  CompositeBuilder builder;
  const int c0 = builder.addInstance("c0", t);
  const std::vector<int> rest = builder.addSubsystem("inner", inner);
  Connector sync("sync");
  sync.addSynchron(PortRef{c0, 0});
  sync.addSynchron(PortRef{rest[0], 0});
  sync.addSynchron(PortRef{rest[1], 0});
  builder.addConnector(std::move(sync));
  const System nested = builder.build();

  EXPECT_TRUE(verify::bisimilar(connectorLabelled(verify::buildGraph(direct)),
                                connectorLabelled(verify::buildGraph(nested))));
}

TEST(Composite, NestedConnectorsAndDataSurvive) {
  // A producer-consumer subsystem keeps its data-transfer connector when
  // nested; an outer observer taps the consumer.
  const System pc = models::producerConsumerBounded(2, 3);
  CompositeBuilder builder;
  const std::vector<int> inner = builder.addSubsystem("pc", pc);
  const System nested = builder.build();
  ASSERT_EQ(nested.connectorCount(), pc.connectorCount());
  EXPECT_EQ(nested.connector(0).name(), "pc.put");
  // Behaviour unchanged (labels differ by prefix, state graphs isomorphic).
  EXPECT_EQ(verify::buildGraph(nested).states.size(),
            verify::buildGraph(pc).states.size());
}

TEST(Composite, NestedPrioritiesAreRemapped) {
  // A subsystem with a conditional priority keeps working after nesting
  // under fresh instance indices (scope remap).
  auto counter = std::make_shared<AtomicType>("C");
  const int run = counter->addLocation("run");
  const int n = counter->addVariable("n", 0);
  const int tick = counter->addPort("tick");
  counter->addTransition(run, tick, Expr::top(),
                         {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}},
                         run);
  counter->setInitialLocation(run);
  System sub;
  const int a = sub.addInstance("a", counter);
  const int b = sub.addInstance("b", counter);
  sub.addConnector(rendezvous("low", {PortRef{a, 0}}));
  sub.addConnector(rendezvous("high", {PortRef{b, 0}}));
  sub.addPriority(PriorityRule{"low", "high", Expr::var(b, 0) < Expr::lit(2)});

  CompositeBuilder builder;
  // Padding instance shifts all indices, exercising the remap.
  builder.addInstance("pad", counter);
  builder.addConnector(rendezvous("padTick", {PortRef{0, 0}}));
  builder.addSubsystem("sub", sub);
  const System nested = builder.build();

  GlobalState g = initialState(nested);
  auto filtered = applyPriorities(nested, g, enabledInteractions(nested, g));
  // padTick + sub.high remain; sub.low is dominated while sub.b.n < 2.
  for (const EnabledInteraction& ei : filtered) {
    EXPECT_NE(nested.connector(static_cast<std::size_t>(ei.connector)).name(), "sub.low");
  }
  g.components[static_cast<std::size_t>(nested.instanceIndex("sub.b"))].vars[0] = 2;
  filtered = applyPriorities(nested, g, enabledInteractions(nested, g));
  bool lowSeen = false;
  for (const EnabledInteraction& ei : filtered) {
    lowSeen = lowSeen ||
              nested.connector(static_cast<std::size_t>(ei.connector)).name() == "sub.low";
  }
  EXPECT_TRUE(lowSeen);
}

TEST(Composite, DuplicatePrefixesRejected) {
  auto t = pingType();
  System sub;
  sub.addInstance("x", t);
  CompositeBuilder builder;
  builder.addSubsystem("s", sub);
  builder.addSubsystem("s", sub);  // same prefix -> duplicate "s.x"
  EXPECT_THROW(builder.build(), ModelError);
}

}  // namespace
}  // namespace cbip
