// Tests for the sequential and multi-threaded engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "models/models.hpp"

namespace cbip {
namespace {

TEST(SequentialEngine, PhilosophersRunWithoutDeadlock) {
  System sys = models::philosophersAtomic(4);
  RandomPolicy policy(42);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 500;
  const RunResult r = engine.run(opt);
  EXPECT_EQ(r.reason, StopReason::kStepLimit);
  EXPECT_EQ(r.steps, 500u);
  EXPECT_EQ(r.trace.events.size(), 500u);
}

TEST(SequentialEngine, TwoStepPhilosophersCanDeadlock) {
  System sys = models::philosophersTwoStep(3);
  // Drive into the classic deadlock deterministically: everyone takes
  // their left fork.
  GlobalState g = initialState(sys);
  for (int i = 0; i < 3; ++i) {
    bool fired = false;
    for (const EnabledInteraction& ei : enabledInteractions(sys, g)) {
      const std::string name =
          sys.connector(static_cast<std::size_t>(ei.connector)).name();
      if (name == "takeL" + std::to_string(i)) {
        executeDefault(sys, g, ei);
        fired = true;
        break;
      }
    }
    ASSERT_TRUE(fired);
  }
  EXPECT_TRUE(isDeadlocked(sys, g));
}

TEST(SequentialEngine, StopPredicate) {
  System sys = models::philosophersAtomic(2);
  RandomPolicy policy(7);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 10'000;
  const int p0 = sys.instanceIndex("p0");
  opt.stopWhen = [p0](const GlobalState& g) {
    return g.components[static_cast<std::size_t>(p0)].vars[0] >= 5;  // p0 ate 5 times
  };
  const RunResult r = engine.run(opt);
  EXPECT_EQ(r.reason, StopReason::kPredicate);
  EXPECT_GE(r.finalState.components[static_cast<std::size_t>(p0)].vars[0], 5);
}

TEST(SequentialEngine, DeterministicWithFirstPolicy) {
  System sys = models::producerConsumer(3);
  FirstPolicy policy;
  SequentialEngine e1(sys, policy), e2(sys, policy);
  RunOptions opt;
  opt.maxSteps = 100;
  const auto t1 = e1.run(opt).trace.labels();
  const auto t2 = e2.run(opt).trace.labels();
  EXPECT_EQ(t1, t2);
}

TEST(SequentialEngine, SeededRunsReproduce) {
  System sys = models::philosophersAtomic(5);
  RunOptions opt;
  opt.maxSteps = 300;
  RandomPolicy p1(99), p2(99), p3(100);
  SequentialEngine e1(sys, p1), e2(sys, p2), e3(sys, p3);
  const auto t1 = e1.run(opt).trace.labels();
  const auto t2 = e2.run(opt).trace.labels();
  const auto t3 = e3.run(opt).trace.labels();
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1, t3);  // different seed, different schedule (overwhelmingly)
}

TEST(SequentialEngine, GcdComputesThroughTauSteps) {
  System sys = models::gcdSystem(36, 24);
  RandomPolicy policy(1);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 1;
  const RunResult r = engine.run(opt);
  // After settling, x == y == gcd(36, 24) == 12 and `done` fired once.
  EXPECT_EQ(r.finalState.components[0].vars[0], 12);
  EXPECT_EQ(r.finalState.components[0].vars[1], 12);
  EXPECT_EQ(r.trace.events.at(0).label, "done{gcd.done}");
}

TEST(SequentialEngine, MealsBalanceForkUsage) {
  // Safety: total meals == total eat interactions; forks always return.
  System sys = models::philosophersAtomic(3);
  RandomPolicy policy(5);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 400;
  const RunResult r = engine.run(opt);
  Value meals = 0;
  for (int i = 0; i < 3; ++i) {
    meals += r.finalState.components[static_cast<std::size_t>(i)].vars[0];
  }
  std::uint64_t eats = 0;
  for (const TraceEvent& e : r.trace.events) {
    if (e.label.rfind("eat", 0) == 0) ++eats;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(meals), eats);
}

// ---- multithreaded engine ----

TEST(MultiThreadEngine, ProducesOnlyValidInteractions) {
  System sys = models::philosophersAtomic(4);
  RandomPolicy policy(11);
  MultiThreadEngine engine(sys, policy);
  MtOptions opt;
  opt.maxSteps = 200;
  const RunResult r = engine.run(opt);
  EXPECT_EQ(r.steps, 200u);
  // Validate the trace by replaying it on the reference semantics.
  GlobalState g = initialState(sys);
  for (const TraceEvent& e : r.trace.events) {
    bool found = false;
    for (const EnabledInteraction& ei : enabledInteractions(sys, g)) {
      if (interactionLabel(sys, ei) == e.label) {
        executeDefault(sys, g, ei);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "multithread trace not replayable at " << e.label;
  }
}

TEST(MultiThreadEngine, RespectsPrioritiesWithBatchCap) {
  System sys;
  auto counter = std::make_shared<AtomicType>("C");
  {
    const int run = counter->addLocation("run");
    const int n = counter->addVariable("n", 0);
    const int tick = counter->addPort("tick");
    counter->addTransition(run, tick, Expr::top(),
                           {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}},
                           run);
    counter->setInitialLocation(run);
  }
  const int a = sys.addInstance("a", counter);
  const int b = sys.addInstance("b", counter);
  sys.addConnector(rendezvous("low", {PortRef{a, 0}}));
  sys.addConnector(rendezvous("high", {PortRef{b, 0}}));
  sys.addPriority(PriorityRule{"low", "high", std::nullopt});
  RandomPolicy policy(3);
  MultiThreadEngine engine(sys, policy);
  MtOptions opt;
  opt.maxSteps = 50;
  const RunResult r = engine.run(opt);
  // `high` is always enabled, so `low` must never fire.
  for (const TraceEvent& e : r.trace.events) {
    EXPECT_EQ(e.label.rfind("high", 0), 0u) << e.label;
  }
}

TEST(MultiThreadEngine, DetectsDeadlock) {
  System sys;
  auto once = std::make_shared<AtomicType>("Once");
  {
    const int s0 = once->addLocation("s0");
    const int s1 = once->addLocation("s1");
    const int go = once->addPort("go");
    once->addTransition(s0, go, s1);
    once->setInitialLocation(s0);
  }
  sys.addInstance("x", once);
  sys.addConnector(rendezvous("go", {PortRef{0, 0}}));
  RandomPolicy policy(1);
  MultiThreadEngine engine(sys, policy);
  MtOptions opt;
  opt.maxSteps = 10;
  const RunResult r = engine.run(opt);
  EXPECT_EQ(r.reason, StopReason::kDeadlock);
  EXPECT_EQ(r.steps, 1u);
}

TEST(MultiThreadEngine, BatchesIndependentInteractions) {
  // n independent self-loop counters: every cycle can fire all of them.
  System sys;
  auto counter = std::make_shared<AtomicType>("C");
  {
    const int run = counter->addLocation("run");
    const int n = counter->addVariable("n", 0);
    const int tick = counter->addPort("tick");
    counter->addTransition(run, tick, Expr::top(),
                           {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}},
                           run);
    counter->setInitialLocation(run);
  }
  for (int i = 0; i < 4; ++i) {
    sys.addInstance("c" + std::to_string(i), counter);
    sys.addConnector(rendezvous("tick" + std::to_string(i), {PortRef{i, 0}}));
  }
  RandomPolicy policy(17);
  MultiThreadEngine engine(sys, policy);
  MtOptions opt;
  opt.maxSteps = 400;
  const RunResult r = engine.run(opt);
  EXPECT_EQ(r.steps, 400u);
  Value total = 0;
  for (const AtomicState& c : r.finalState.components) total += c.vars[0];
  EXPECT_EQ(total, 400);
}

TEST(MultiThreadEngine, DataTransferMatchesSequential) {
  System sys = models::producerConsumer(2);
  FirstPolicy policy;
  MultiThreadEngine mt(sys, policy);
  MtOptions mo;
  mo.maxSteps = 60;
  mo.maxBatch = 1;  // fully serialized: must equal the sequential run
  const RunResult rm = mt.run(mo);

  FirstPolicy policy2;
  SequentialEngine seq(sys, policy2);
  RunOptions so;
  so.maxSteps = 60;
  const RunResult rs = seq.run(so);
  EXPECT_EQ(rm.trace.labels(), rs.trace.labels());
  EXPECT_EQ(rm.finalState, rs.finalState);
}

}  // namespace
}  // namespace cbip
