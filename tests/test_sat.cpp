// Tests for the CDCL SAT solver, including a brute-force cross-check on
// random instances.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace cbip::sat {
namespace {

TEST(Sat, TrivialSat) {
  Solver s;
  const int a = s.newVar();
  s.addClause({a});
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(a));
}

TEST(Sat, TrivialUnsat) {
  Solver s;
  const int a = s.newVar();
  s.addClause({a});
  s.addClause({-a});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Sat, EmptyClauseIsUnsat) {
  Solver s;
  s.newVar();
  EXPECT_FALSE(s.addClause({}));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Sat, UnitPropagationChains) {
  Solver s;
  const int a = s.newVar(), b = s.newVar(), c = s.newVar(), d = s.newVar();
  s.addClause({a});
  s.addClause({-a, b});
  s.addClause({-b, c});
  s.addClause({-c, d});
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(b));
  EXPECT_TRUE(s.modelValue(c));
  EXPECT_TRUE(s.modelValue(d));
}

TEST(Sat, TautologyAndDuplicatesHandled) {
  Solver s;
  const int a = s.newVar(), b = s.newVar();
  s.addClause({a, -a});        // tautology: ignored
  s.addClause({b, b, b});      // collapses to unit
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(b));
}

TEST(Sat, ExactlyOneEncoding) {
  Solver s;
  std::vector<int> vars;
  for (int i = 0; i < 5; ++i) vars.push_back(s.newVar());
  std::vector<Lit> atLeast(vars.begin(), vars.end());
  s.addClause(atLeast);
  for (std::size_t i = 0; i < vars.size(); ++i) {
    for (std::size_t j = i + 1; j < vars.size(); ++j) s.addClause({-vars[i], -vars[j]});
  }
  ASSERT_EQ(s.solve(), Result::kSat);
  int trueCount = 0;
  for (int v : vars) trueCount += s.modelValue(v) ? 1 : 0;
  EXPECT_EQ(trueCount, 1);
}

TEST(Sat, PigeonholeUnsat) {
  // 4 pigeons into 3 holes: classic UNSAT requiring real conflict analysis.
  constexpr int kPigeons = 4, kHoles = 3;
  Solver s;
  int var[kPigeons][kHoles];
  for (auto& row : var) {
    for (int& v : row) v = s.newVar();
  }
  for (const auto& row : var) {
    std::vector<Lit> some(row, row + kHoles);
    s.addClause(some);
  }
  for (int h = 0; h < kHoles; ++h) {
    for (int p1 = 0; p1 < kPigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < kPigeons; ++p2) s.addClause({-var[p1][h], -var[p2][h]});
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Sat, AssumptionsDoNotPersist) {
  Solver s;
  const int a = s.newVar(), b = s.newVar();
  s.addClause({a, b});
  EXPECT_EQ(s.solve({-a, -b}), Result::kUnsat);
  EXPECT_EQ(s.solve({-a}), Result::kSat);
  EXPECT_TRUE(s.modelValue(b));
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Sat, IncrementalAddAfterSolve) {
  Solver s;
  const int a = s.newVar(), b = s.newVar();
  s.addClause({a, b});
  EXPECT_EQ(s.solve(), Result::kSat);
  s.addClause({-a});
  s.addClause({-b});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Sat, SizeAccessorsTrackTheInstance) {
  Solver s;
  EXPECT_EQ(s.numVars(), 0);
  EXPECT_EQ(s.numClauses(), 0u);
  const int a = s.newVar(), b = s.newVar(), c = s.newVar();
  EXPECT_EQ(s.numVars(), 3);
  s.addClause({a, b});
  s.addClause({-a, c});
  EXPECT_EQ(s.numClauses(), 2u);
  s.addClause({a, -a});  // tautology: dropped, not stored
  EXPECT_EQ(s.numClauses(), 2u);
  s.addClause({b});  // unit: enqueued at root, not stored as a clause
  EXPECT_EQ(s.numClauses(), 2u);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.numVars(), 3);
}

/// Reads one counter from a snapshot (0 when absent, e.g. CBIP_NO_OBS).
std::uint64_t counterValue(const char* name) {
  for (const auto& [n, v] : obs::snapshot().counters) {
    if (n == name) return v;
  }
  return 0;
}

TEST(Sat, RootLevelPropagationIsCounted) {
  // addClause() of a unit propagates immediately (outside any solve), and
  // that work must land in sat.propagations — including when the
  // propagation exposes root-level UNSAT and addClause returns early.
  const std::uint64_t before = counterValue("sat.propagations");
  Solver s;
  const int a = s.newVar(), b = s.newVar();
  s.addClause({-a, b});
  s.addClause({a});  // propagates a, then b
  const std::uint64_t mid = counterValue("sat.propagations");
  if (obs::enabled()) {
    EXPECT_GE(mid - before, 2u);
  }

  Solver u;
  const int x = u.newVar(), y = u.newVar();
  u.addClause({-x, y});
  u.addClause({-x, -y});
  // Propagating x derives y and ¬y: root-level UNSAT found *inside*
  // addClause — the early return must still have flushed the counter.
  EXPECT_FALSE(u.addClause({x}));
  EXPECT_EQ(u.solve(), Result::kUnsat);
  if (obs::enabled()) {
    EXPECT_GT(counterValue("sat.propagations"), mid);
  }
}

// Brute-force reference check.
bool bruteForceSat(int nVars, const std::vector<std::vector<Lit>>& clauses) {
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << nVars); ++m) {
    bool ok = true;
    for (const auto& cl : clauses) {
      bool sat = false;
      for (const Lit l : cl) {
        const int v = l > 0 ? l : -l;
        const bool val = (m >> (v - 1)) & 1;
        if ((l > 0) == val) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

class RandomSatTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSatTest, AgreesWithBruteForce) {
  cbip::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 40; ++round) {
    const int nVars = 4 + static_cast<int>(rng.below(8));   // 4..11
    const int nClauses = 5 + static_cast<int>(rng.below(40));
    std::vector<std::vector<Lit>> clauses;
    Solver s;
    for (int v = 0; v < nVars; ++v) s.newVar();
    bool addedOk = true;
    for (int c = 0; c < nClauses; ++c) {
      const int len = 1 + static_cast<int>(rng.below(3));
      std::vector<Lit> cl;
      for (int k = 0; k < len; ++k) {
        const int v = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(nVars)));
        cl.push_back(rng.chance(1, 2) ? v : -v);
      }
      clauses.push_back(cl);
      if (!s.addClause(cl)) addedOk = false;
    }
    const bool expected = bruteForceSat(nVars, clauses);
    if (!addedOk) {
      EXPECT_FALSE(expected);
      continue;
    }
    const bool actual = s.solve() == Result::kSat;
    ASSERT_EQ(actual, expected) << "seed " << GetParam() << " round " << round;
    if (actual) {
      // The model must actually satisfy every clause.
      for (const auto& cl : clauses) {
        bool sat = false;
        for (const Lit l : cl) {
          if (s.modelValue(l > 0 ? l : -l) == (l > 0)) {
            sat = true;
            break;
          }
        }
        EXPECT_TRUE(sat);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSatTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cbip::sat
