// Tests for the DSL pretty-printer: parse(print(system)) round-trips.
#include <gtest/gtest.h>

#include "frontends/bipdsl/bipdsl.hpp"
#include "frontends/bipdsl/printer.hpp"
#include "models/models.hpp"
#include "util/require.hpp"
#include "verify/reachability.hpp"

namespace cbip::dsl {
namespace {

void expectRoundTrip(const System& sys, std::uint64_t maxStates = 100'000) {
  const std::string text = printModel(sys);
  const System reparsed = parseSystem(text);
  ASSERT_EQ(reparsed.instanceCount(), sys.instanceCount()) << text;
  ASSERT_EQ(reparsed.connectorCount(), sys.connectorCount()) << text;
  const verify::LabeledGraph a = verify::buildGraph(sys, maxStates);
  const verify::LabeledGraph b = verify::buildGraph(reparsed, maxStates);
  EXPECT_TRUE(verify::bisimilar(a, b)) << text;
}

TEST(Printer, PhilosophersRoundTrip) {
  expectRoundTrip(models::philosophersAtomic(3, /*counters=*/false));
}

TEST(Printer, TwoStepPhilosophersRoundTrip) {
  expectRoundTrip(models::philosophersTwoStep(3, /*counters=*/false));
}

TEST(Printer, TokenRingRoundTrip) {
  expectRoundTrip(models::tokenRing(3, /*counters=*/false));
}

TEST(Printer, DataTransferRoundTrip) {
  expectRoundTrip(models::producerConsumerBounded(2, 3));
}

TEST(Printer, GasStationWithGuardsRoundTrip) {
  expectRoundTrip(models::gasStation(2, 2, /*counters=*/false));
}

TEST(Printer, PrioritiesAndMaximalProgressSurvive) {
  System sys = parseSystem(R"(
atom A
  var n = 0
  port p
  location l init
  from l on p when n < 4 do n := n + 1 goto l
end
system
  instance a : A
  instance b : A
  connector low = sync(a.p)
  connector high = sync(b.p)
  priority low < high when b.n < 2
  maximal progress
end
)");
  const std::string text = printModel(sys);
  EXPECT_NE(text.find("priority low < high when"), std::string::npos);
  EXPECT_NE(text.find("maximal progress"), std::string::npos);
  const System reparsed = parseSystem(text);
  EXPECT_EQ(reparsed.priorities().size(), 1u);
  EXPECT_TRUE(reparsed.maximalProgress());
  EXPECT_TRUE(verify::bisimilar(verify::buildGraph(sys), verify::buildGraph(reparsed)));
}

TEST(Printer, BroadcastRoundTrip) {
  System sys = parseSystem(R"(
atom S
  port snd
  location l init
  from l on snd goto l
end
atom R
  port rcv
  location a init
  location b
  from a on rcv goto b
  from b on rcv goto a
end
system
  instance s : S
  instance r0 : R
  instance r1 : R
  connector bc = broadcast(s.snd, r0.rcv, r1.rcv)
  maximal progress
end
)");
  expectRoundTrip(sys);
}

TEST(Printer, TauTransitionsPrintAsTau) {
  System sys = parseSystem(R"(
atom C
  var n = 0
  port tick
  location run init
  from run on tick when n < 2 do n := n + 1 goto run
  from run on tau when n >= 2 do n := 0 goto run
end
system
  instance c : C
  connector t = sync(c.tick)
end
)");
  const std::string text = printModel(sys);
  EXPECT_NE(text.find("on tau"), std::string::npos);
  expectRoundTrip(sys);
}

TEST(Printer, SharedTypeNamesDisambiguated) {
  // gasStation creates Pump0/Pump1 as distinct types; also exercise two
  // distinct type objects with the SAME name.
  System sys;
  auto t1 = std::make_shared<AtomicType>("Same");
  t1->addLocation("l");
  const int p1 = t1->addPort("p");
  t1->addTransition(0, p1, 0);
  t1->setInitialLocation(0);
  auto t2 = std::make_shared<AtomicType>("Same");
  t2->addLocation("l");
  t2->addLocation("m");
  const int p2 = t2->addPort("p");
  t2->addTransition(0, p2, 1);
  t2->addTransition(1, p2, 0);
  t2->setInitialLocation(0);
  sys.addInstance("x", t1);
  sys.addInstance("y", t2);
  sys.addConnector(rendezvous("go", {PortRef{0, 0}, PortRef{1, 0}}));
  expectRoundTrip(sys);
}

TEST(Printer, RejectsInexpressibleConnectors) {
  System sys;
  auto t = std::make_shared<AtomicType>("T");
  t->addLocation("l");
  const int p = t->addPort("p");
  t->addTransition(0, p, 0);
  t->setInitialLocation(0);
  sys.addInstance("a", t);
  sys.addInstance("b", t);
  Connector c("weird");
  c.addSynchron(PortRef{0, 0});
  c.addTrigger(PortRef{1, 0});  // trigger not first: not expressible
  sys.addConnector(std::move(c));
  EXPECT_THROW(printModel(sys), ModelError);
}

}  // namespace
}  // namespace cbip::dsl
