// Tests for the core component model: atomic components, connectors,
// priorities, system validation and operational semantics.
#include <gtest/gtest.h>

#include "core/semantics.hpp"
#include "core/system.hpp"
#include "models/models.hpp"
#include "util/require.hpp"

namespace cbip {
namespace {

using expr::Assign;
using expr::VarRef;

AtomicTypePtr counterType(Value limit) {
  auto t = std::make_shared<AtomicType>("Counter");
  const int run = t->addLocation("run");
  const int n = t->addVariable("n", 0);
  const int tick = t->addPort("tick", {n});
  t->addTransition(run, tick, Expr::local(n) < Expr::lit(limit),
                   {Assign{VarRef{0, n}, Expr::local(n) + Expr::lit(1)}}, run);
  t->setInitialLocation(run);
  return t;
}

TEST(AtomicType, BuilderAndLookups) {
  auto t = counterType(3);
  EXPECT_EQ(t->name(), "Counter");
  EXPECT_EQ(t->locationCount(), 1u);
  EXPECT_EQ(t->variableCount(), 1u);
  EXPECT_EQ(t->portCount(), 1u);
  EXPECT_EQ(t->portIndex("tick"), 0);
  EXPECT_EQ(t->variableIndex("n"), 0);
  EXPECT_EQ(t->locationIndex("run"), 0);
  EXPECT_THROW(t->portIndex("nope"), ModelError);
  EXPECT_FALSE(t->findPort("nope").has_value());
}

TEST(AtomicType, ValidationCatchesBadIndices) {
  AtomicType t("Bad");
  const int l = t.addLocation("l");
  t.addTransition(l, 5, l);  // port 5 does not exist
  EXPECT_THROW(t.validate(), ModelError);
}

TEST(AtomicType, ValidationCatchesDuplicateNames) {
  AtomicType t("Dup");
  t.addLocation("l");
  t.addLocation("l");
  EXPECT_THROW(t.validate(), ModelError);
}

TEST(AtomicState, GuardsControlEnabledness) {
  auto t = counterType(2);
  AtomicState s = initialState(*t);
  EXPECT_TRUE(portEnabled(*t, s, 0));
  fire(*t, s, t->transition(0));
  EXPECT_EQ(s.vars[0], 1);
  fire(*t, s, t->transition(0));
  EXPECT_EQ(s.vars[0], 2);
  EXPECT_FALSE(portEnabled(*t, s, 0));  // n < 2 now false
}

TEST(AtomicState, InternalTransitionsRunToQuiescence) {
  auto t = std::make_shared<AtomicType>("Tau");
  const int a = t->addLocation("a");
  const int x = t->addVariable("x", 5);
  t->addTransition(a, kInternalPort, Expr::local(x) > Expr::lit(0),
                   {Assign{VarRef{0, x}, Expr::local(x) - Expr::lit(1)}}, a);
  t->setInitialLocation(a);
  t->validate();
  AtomicState s = initialState(*t);
  runInternal(*t, s);
  EXPECT_EQ(s.vars[0], 0);
}

TEST(AtomicState, DivergentTauThrows) {
  auto t = std::make_shared<AtomicType>("Diverge");
  const int a = t->addLocation("a");
  t->addTransition(a, kInternalPort, a);
  t->setInitialLocation(a);
  AtomicState s = initialState(*t);
  EXPECT_THROW(runInternal(*t, s, 100), EvalError);
}

TEST(Connector, RendezvousHasOnlyFullInteraction) {
  const Connector c = rendezvous("r", {PortRef{0, 0}, PortRef{1, 0}, PortRef{2, 0}});
  const auto masks = c.feasibleMasks();
  ASSERT_EQ(masks.size(), 1u);
  EXPECT_EQ(masks[0], 0b111u);
}

TEST(Connector, BroadcastHasAllTriggerContainingSubsets) {
  const Connector c = broadcast("b", PortRef{0, 0}, {PortRef{1, 0}, PortRef{2, 0}});
  const auto masks = c.feasibleMasks();
  // subsets containing end 0 (the trigger): {0}, {0,1}, {0,2}, {0,1,2}
  ASSERT_EQ(masks.size(), 4u);
  for (const InteractionMask m : masks) EXPECT_TRUE(m & 1u);
}

TEST(Connector, TooManyEndsRejected) {
  Connector c("big");
  for (int i = 0; i < 62; ++i) c.addSynchron(PortRef{i, 0});
  EXPECT_THROW(c.addSynchron(PortRef{62, 0}), ModelError);
  // Wide rendezvous is fine; wide trigger connectors are rejected at
  // interaction enumeration (the mask sweep would explode).
  Connector wide("wideTrigger");
  for (int i = 0; i < 25; ++i) wide.addEnd(PortRef{i, 0}, /*trigger=*/true);
  EXPECT_THROW(wide.feasibleMasks(), ModelError);
}

TEST(System, ValidateRejectsSameInstanceTwiceInConnector) {
  System sys;
  auto t = counterType(5);
  const int a = sys.addInstance("a", t);
  sys.addConnector(rendezvous("bad", {PortRef{a, 0}, PortRef{a, 0}}));
  EXPECT_THROW(sys.validate(), ModelError);
}

TEST(System, ValidateRejectsUnknownPriorityConnector) {
  System sys;
  auto t = counterType(5);
  sys.addInstance("a", t);
  sys.addConnector(rendezvous("c", {PortRef{0, 0}}));
  sys.addPriority(PriorityRule{"c", "ghost", std::nullopt});
  EXPECT_THROW(sys.validate(), ModelError);
}

TEST(Semantics, SingletonConnectorStepsComponent) {
  System sys;
  const int a = sys.addInstance("a", counterType(2));
  sys.addConnector(rendezvous("tick", {PortRef{a, 0}}));
  sys.validate();
  GlobalState g = initialState(sys);
  auto enabled = enabledInteractions(sys, g);
  ASSERT_EQ(enabled.size(), 1u);
  executeDefault(sys, g, enabled[0]);
  EXPECT_EQ(g.components[0].vars[0], 1);
  executeDefault(sys, g, enabledInteractions(sys, g)[0]);
  EXPECT_TRUE(isDeadlocked(sys, g));  // counter exhausted
}

TEST(Semantics, RendezvousRequiresBothSides) {
  System sys;
  const int a = sys.addInstance("a", counterType(1));
  const int b = sys.addInstance("b", counterType(2));
  sys.addConnector(rendezvous("sync", {PortRef{a, 0}, PortRef{b, 0}}));
  sys.validate();
  GlobalState g = initialState(sys);
  executeDefault(sys, g, enabledInteractions(sys, g).at(0));
  // a reached its limit; even though b could still tick, the rendezvous
  // is disabled.
  EXPECT_TRUE(isDeadlocked(sys, g));
  EXPECT_EQ(g.components[0].vars[0], 1);
  EXPECT_EQ(g.components[1].vars[0], 1);
}

TEST(Semantics, BroadcastDeliversToEnabledSubset) {
  // Sender + 2 receivers, receiver 1 disabled by its guard.
  System sys;
  auto sender = std::make_shared<AtomicType>("S");
  {
    const int l = sender->addLocation("l");
    const int p = sender->addPort("p");
    sender->addTransition(l, p, l);
    sender->setInitialLocation(l);
  }
  auto receiver = std::make_shared<AtomicType>("R");
  {
    const int l = receiver->addLocation("l");
    const int en = receiver->addVariable("en", 0);
    const int p = receiver->addPort("p");
    receiver->addTransition(l, p, Expr::local(en) == Expr::lit(1), {}, l);
    receiver->setInitialLocation(l);
  }
  const int s = sys.addInstance("s", sender);
  const int r0 = sys.addInstance("r0", receiver);
  const int r1 = sys.addInstance("r1", receiver);
  sys.addConnector(broadcast("b", PortRef{s, 0}, {PortRef{r0, 0}, PortRef{r1, 0}}));
  sys.setMaximalProgress(true);
  sys.validate();

  GlobalState g = initialState(sys);
  g.components[static_cast<std::size_t>(r0)].vars[0] = 1;  // enable r0 only
  auto enabled = enabledInteractions(sys, g);
  // Masks {s} and {s, r0} are enabled; r1's guard blocks the others.
  ASSERT_EQ(enabled.size(), 2u);
  enabled = applyPriorities(sys, g, std::move(enabled));
  ASSERT_EQ(enabled.size(), 1u);  // maximal progress keeps {s, r0}
  EXPECT_EQ(enabled[0].mask, 0b011u);
}

TEST(Semantics, PriorityRuleFiltersLowConnector) {
  System sys;
  const int a = sys.addInstance("a", counterType(10));
  const int b = sys.addInstance("b", counterType(10));
  sys.addConnector(rendezvous("low", {PortRef{a, 0}}));
  sys.addConnector(rendezvous("high", {PortRef{b, 0}}));
  sys.addPriority(PriorityRule{"low", "high", std::nullopt});
  sys.validate();
  GlobalState g = initialState(sys);
  auto enabled = applyPriorities(sys, g, enabledInteractions(sys, g));
  ASSERT_EQ(enabled.size(), 1u);
  EXPECT_EQ(sys.connector(static_cast<std::size_t>(enabled[0].connector)).name(), "high");
}

TEST(Semantics, ConditionalPriorityOnlyWhenGuardHolds) {
  System sys;
  const int a = sys.addInstance("a", counterType(10));
  const int b = sys.addInstance("b", counterType(10));
  sys.addConnector(rendezvous("low", {PortRef{a, 0}}));
  sys.addConnector(rendezvous("high", {PortRef{b, 0}}));
  // low < high only while b.n < 2.
  sys.addPriority(PriorityRule{"low", "high", Expr::var(b, 0) < Expr::lit(2)});
  sys.validate();
  GlobalState g = initialState(sys);
  auto filtered = applyPriorities(sys, g, enabledInteractions(sys, g));
  EXPECT_EQ(filtered.size(), 1u);
  g.components[static_cast<std::size_t>(b)].vars[0] = 2;  // guard now false
  filtered = applyPriorities(sys, g, enabledInteractions(sys, g));
  EXPECT_EQ(filtered.size(), 2u);
}

TEST(Semantics, DataTransferThroughConnector) {
  System sys = models::producerConsumer(2);
  GlobalState g = initialState(sys);
  // put, put, get, get: consumer must see items 0 then 1.
  auto fire = [&sys, &g](const std::string& name) {
    for (const EnabledInteraction& ei : enabledInteractions(sys, g)) {
      if (sys.connector(static_cast<std::size_t>(ei.connector)).name() == name) {
        executeDefault(sys, g, ei);
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(fire("put"));
  ASSERT_TRUE(fire("put"));
  ASSERT_FALSE(fire("put"));  // buffer full at capacity 2
  ASSERT_TRUE(fire("get"));
  ASSERT_TRUE(fire("get"));
  const int cons = sys.instanceIndex("consumer");
  EXPECT_EQ(g.components[static_cast<std::size_t>(cons)].vars[1], 0 + 1);  // sum
  EXPECT_EQ(g.components[static_cast<std::size_t>(cons)].vars[2], 2);      // items
}

TEST(Semantics, SuccessorsEnumerateTransitionNondeterminism) {
  // One component with two enabled transitions on the same port.
  auto t = std::make_shared<AtomicType>("Choice");
  const int l = t->addLocation("l");
  const int m = t->addLocation("m");
  const int n = t->addLocation("n");
  const int p = t->addPort("p");
  t->addTransition(l, p, m);
  t->addTransition(l, p, n);
  t->setInitialLocation(l);
  System sys;
  sys.addInstance("c", t);
  sys.addConnector(rendezvous("go", {PortRef{0, 0}}));
  sys.validate();
  const auto succ = successors(sys, initialState(sys));
  ASSERT_EQ(succ.size(), 2u);
  EXPECT_NE(succ[0].components[0].location, succ[1].components[0].location);
}

TEST(Semantics, InteractionLabelIsReadable) {
  System sys = models::philosophersAtomic(2);
  const auto enabled = enabledInteractions(sys, initialState(sys));
  ASSERT_FALSE(enabled.empty());
  const std::string label = interactionLabel(sys, enabled[0]);
  EXPECT_NE(label.find("eat0"), std::string::npos);
  EXPECT_NE(label.find("p0.eat"), std::string::npos);
}

TEST(GlobalState, HashAndFormat) {
  System sys = models::philosophersAtomic(2);
  GlobalState a = initialState(sys);
  GlobalState b = initialState(sys);
  EXPECT_EQ(hashState(a), hashState(b));
  executeDefault(sys, b, enabledInteractions(sys, b)[0]);
  EXPECT_NE(hashState(a), hashState(b));
  EXPECT_NE(formatState(sys, a).find("p0@thinking"), std::string::npos);
}

TEST(Models, GasStationRuns) {
  System sys = models::gasStation(2, 3);
  GlobalState g = initialState(sys);
  for (int i = 0; i < 50; ++i) {
    auto enabled = enabledInteractions(sys, g);
    ASSERT_FALSE(enabled.empty()) << "gas station deadlocked at step " << i;
    executeDefault(sys, g, enabled[0]);
  }
}

TEST(Models, TokenRingMaintainsMutex) {
  System sys = models::tokenRing(4);
  GlobalState g = initialState(sys);
  for (int i = 0; i < 100; ++i) {
    auto enabled = enabledInteractions(sys, g);
    ASSERT_FALSE(enabled.empty());
    executeDefault(sys, g, enabled[i % enabled.size()]);
    EXPECT_TRUE(models::tokenRingMutex(sys, g));
  }
}

}  // namespace
}  // namespace cbip
