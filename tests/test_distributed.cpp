// Tests for the three-layer S/R-BIP distributed runtime (E4/E5/E9) and
// the discrete-event network substrate.
#include <gtest/gtest.h>

#include "distributed/srbip.hpp"
#include "models/models.hpp"
#include "net/network.hpp"
#include "util/require.hpp"
#include "verify/reachability.hpp"

namespace cbip::dist {
namespace {

// ---- network substrate ----

namespace testnodes {

class Echo final : public net::Node {
 public:
  explicit Echo(net::NodeId peer) : peer_(peer) {}
  void onStart(net::Context& ctx) override {
    if (peer_ >= 0) ctx.send(peer_, 1, {0});
  }
  void onMessage(const net::Message& m, net::Context& ctx) override {
    received.push_back(m.payload[0]);
    if (m.payload[0] < 5) ctx.send(m.from, 1, {m.payload[0] + 1});
  }
  std::vector<std::int64_t> received;

 private:
  net::NodeId peer_;
};

}  // namespace testnodes

TEST(Network, PingPongTerminatesAndCounts) {
  net::Network net(1);
  auto a = std::make_unique<testnodes::Echo>(1);
  auto b = std::make_unique<testnodes::Echo>(-1);
  auto* bPtr = b.get();
  net.addNode(std::move(a));
  net.addNode(std::move(b));
  const net::RunStats stats = net.run(net::RunLimits{});
  EXPECT_TRUE(stats.quiescent);
  EXPECT_EQ(stats.deliveredMessages, 6u);  // 0..5
  EXPECT_EQ(bPtr->received, (std::vector<std::int64_t>{0, 2, 4}));
}

TEST(Network, FifoPerChannelWithRandomLatency) {
  // A node that sends a burst of sequenced messages; the receiver must
  // see them in order despite randomized per-hop latency.
  class Burst final : public net::Node {
   public:
    void onStart(net::Context& ctx) override {
      for (int i = 0; i < 20; ++i) ctx.send(1, 1, {i});
    }
    void onMessage(const net::Message&, net::Context&) override {}
  };
  class Sink final : public net::Node {
   public:
    void onMessage(const net::Message& m, net::Context&) override {
      seen.push_back(m.payload[0]);
    }
    std::vector<std::int64_t> seen;
  };
  net::Network net(99, net::Latency{1, 10});
  net.addNode(std::make_unique<Burst>());
  auto sink = std::make_unique<Sink>();
  auto* sinkPtr = sink.get();
  net.addNode(std::move(sink));
  net.run(net::RunLimits{});
  ASSERT_EQ(sinkPtr->seen.size(), 20u);
  for (std::size_t i = 0; i < sinkPtr->seen.size(); ++i) {
    EXPECT_EQ(sinkPtr->seen[i], static_cast<std::int64_t>(i));
  }
}

TEST(Network, SeededRunsReproduce) {
  auto run = [](std::uint64_t seed) {
    System sys = models::philosophersAtomic(3, false);
    DistributedOptions opt;
    opt.seed = seed;
    opt.latency = net::Latency{1, 6};  // randomized latency: seeds matter
    opt.commitTarget = 30;
    const DistributedResult r = runDistributed(sys, blockPerConnector(sys), opt);
    std::vector<int> connectors;
    for (const Commit& c : r.commits) connectors.push_back(c.connector);
    return connectors;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// ---- S/R-BIP runtime ----

struct Case {
  const char* name;
  CrpKind crp;
};

class CrpSweep : public ::testing::TestWithParam<Case> {};

TEST_P(CrpSweep, PhilosophersReachTargetAndReplay) {
  const System sys = models::philosophersAtomic(4);
  DistributedOptions opt;
  opt.crp = GetParam().crp;
  opt.commitTarget = 60;
  opt.seed = 13;
  const DistributedResult r = runDistributed(sys, blockPerConnector(sys), opt);
  EXPECT_TRUE(r.reachedTarget) << GetParam().name;
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GE(r.commits.size(), 60u);
  // E4: the distributed trace is a run of the centralized semantics.
  EXPECT_TRUE(replayAgainstReference(sys, r.commits)) << GetParam().name;
}

TEST_P(CrpSweep, DataTransferSurvivesDistribution) {
  const System sys = models::producerConsumer(3);
  DistributedOptions opt;
  opt.crp = GetParam().crp;
  opt.commitTarget = 40;
  opt.seed = 5;
  const DistributedResult r = runDistributed(sys, blockPerConnector(sys), opt);
  EXPECT_TRUE(r.reachedTarget) << GetParam().name;
  EXPECT_TRUE(replayAgainstReference(sys, r.commits)) << GetParam().name;
}

TEST_P(CrpSweep, TriangleIsLiveUnderRealConflicts) {
  // All three interactions conflict pairwise on shared components: the
  // CRP is exercised on every commit.
  const System sys = conflictTriangle();
  DistributedOptions opt;
  opt.crp = GetParam().crp;
  opt.commitTarget = 50;
  opt.seed = 23;
  const DistributedResult r = runDistributed(sys, blockPerConnector(sys), opt);
  EXPECT_TRUE(r.reachedTarget) << GetParam().name;
  EXPECT_TRUE(replayAgainstReference(sys, r.commits)) << GetParam().name;
}

TEST_P(CrpSweep, GasStationWithGuardsAndData) {
  const System sys = models::gasStation(2, 3);
  DistributedOptions opt;
  opt.crp = GetParam().crp;
  opt.commitTarget = 50;
  opt.seed = 31;
  const DistributedResult r = runDistributed(sys, roundRobinBlocks(sys, 3), opt);
  EXPECT_TRUE(r.reachedTarget) << GetParam().name;
  EXPECT_TRUE(replayAgainstReference(sys, r.commits)) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Crps, CrpSweep,
    ::testing::Values(Case{"centralized", CrpKind::kCentralized},
                      Case{"tokenring", CrpKind::kTokenRing},
                      Case{"philosophers", CrpKind::kPhilosophers}),
    [](const ::testing::TestParamInfo<Case>& info) { return info.param.name; });

TEST(Distributed, SingleBlockNeedsNoCrpTraffic) {
  const System sys = models::philosophersAtomic(3);
  DistributedOptions opt;
  opt.commitTarget = 40;
  const DistributedResult r = runDistributed(sys, singleBlock(sys), opt);
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_TRUE(replayAgainstReference(sys, r.commits));
}

TEST(Distributed, PartitionValidationRejectsDuplicates) {
  const System sys = models::philosophersAtomic(2);
  Partition bad = {{0, 1}, {1, 2, 3}};
  EXPECT_THROW(runDistributed(sys, bad, DistributedOptions{}), ModelError);
}

TEST(Distributed, RejectsTriggerConnectors) {
  System sys;
  auto t = std::make_shared<AtomicType>("T");
  const int l = t->addLocation("l");
  const int p = t->addPort("p");
  t->addTransition(l, p, l);
  t->setInitialLocation(l);
  sys.addInstance("a", t);
  sys.addInstance("b", t);
  sys.addConnector(broadcast("b", PortRef{0, 0}, {PortRef{1, 0}}));
  EXPECT_THROW(runDistributed(sys, singleBlock(sys), DistributedOptions{}), ModelError);
}

TEST(Distributed, RejectsPriorities) {
  System sys = models::philosophersAtomic(2);
  sys.addPriority(PriorityRule{"eat0", "eat1", std::nullopt});
  EXPECT_THROW(runDistributed(sys, singleBlock(sys), DistributedOptions{}), ModelError);
}

TEST(Distributed, MoreBlocksMoreParallelismOnDisjointWork) {
  // n independent pairs: with one block everything serializes through a
  // single IP node; with one block per connector the virtual makespan
  // drops (E9's parallelism-vs-partition trade-off).
  System sys;
  auto t = std::make_shared<AtomicType>("P");
  const int l = t->addLocation("l");
  const int p = t->addPort("p");
  t->addTransition(l, p, l);
  t->setInitialLocation(l);
  const int pairs = 4;
  for (int i = 0; i < pairs; ++i) {
    const int a = sys.addInstance("a" + std::to_string(i), t);
    const int b = sys.addInstance("b" + std::to_string(i), t);
    sys.addConnector(rendezvous("sync" + std::to_string(i), {PortRef{a, 0}, PortRef{b, 0}}));
  }
  sys.validate();
  DistributedOptions opt;
  opt.commitTarget = 200;
  const DistributedResult serial = runDistributed(sys, singleBlock(sys), opt);
  const DistributedResult parallel = runDistributed(sys, blockPerConnector(sys), opt);
  ASSERT_TRUE(serial.reachedTarget);
  ASSERT_TRUE(parallel.reachedTarget);
  EXPECT_LT(parallel.virtualTime, serial.virtualTime);
}

TEST(Distributed, CommitCountsPerComponentAreContiguous) {
  // Safety invariant of the offer-count protocol: for every component the
  // committed counts form 0,1,2,... with no gap or duplicate. We recover
  // each component's count sequence by replaying.
  const System sys = conflictTriangle();
  for (const CrpKind crp :
       {CrpKind::kCentralized, CrpKind::kTokenRing, CrpKind::kPhilosophers}) {
    DistributedOptions opt;
    opt.crp = crp;
    opt.commitTarget = 40;
    opt.seed = 77;
    const DistributedResult r = runDistributed(sys, blockPerConnector(sys), opt);
    ASSERT_TRUE(r.reachedTarget);
    std::vector<int> perComponent(sys.instanceCount(), 0);
    for (const Commit& c : r.commits) {
      for (const ConnectorEnd& e :
           sys.connector(static_cast<std::size_t>(c.connector)).ends()) {
        ++perComponent[static_cast<std::size_t>(e.port.instance)];
      }
    }
    int total = 0;
    for (const int n : perComponent) total += n;
    EXPECT_EQ(total, static_cast<int>(r.commits.size()) * 2);  // binary connectors
  }
}

// ---- naive refinement (Fig 5.4 bottom, E5) ----

TEST(NaiveRefinement, TriangleDeadlocks) {
  // Centrally the triangle is deadlock-free...
  const System sys = conflictTriangle();
  EXPECT_TRUE(verify::explore(sys).deadlocks.empty());
  // ...but the per-interaction refinement without conflict resolution
  // commits each component to its own interaction and blocks forever.
  DistributedOptions opt;
  opt.commitTarget = 10;
  const DistributedResult r = runNaiveRefinement(sys, opt);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_TRUE(r.commits.empty());
}

TEST(NaiveRefinement, ChainMakesProgress) {
  // Without a conflict cycle the naive protocol can run: a = {c0,c1},
  // b = {c1,c2} with c0/c1 initiating.
  System sys;
  auto t = std::make_shared<AtomicType>("Peer");
  const int l = t->addLocation("l");
  const int left = t->addPort("left");
  const int right = t->addPort("right");
  t->addTransition(l, left, l);
  t->addTransition(l, right, l);
  t->setInitialLocation(l);
  for (int i = 0; i < 3; ++i) sys.addInstance("c" + std::to_string(i), t);
  sys.addConnector(rendezvous("a", {PortRef{0, right}, PortRef{1, left}}));
  sys.addConnector(rendezvous("b", {PortRef{1, right}, PortRef{2, left}}));
  sys.validate();
  DistributedOptions opt;
  opt.commitTarget = 20;
  const DistributedResult r = runNaiveRefinement(sys, opt);
  EXPECT_TRUE(r.reachedTarget);
}

TEST(NaiveRefinement, ThreeLayerRuntimeFixesTheTriangle) {
  // The same system, same conflicts — with the interaction-protocol +
  // CRP layers there is no deadlock (the point of Fig 5.4 / [7]).
  const System sys = conflictTriangle();
  DistributedOptions opt;
  opt.commitTarget = 10;
  opt.crp = CrpKind::kCentralized;
  const DistributedResult r = runDistributed(sys, blockPerConnector(sys), opt);
  EXPECT_TRUE(r.reachedTarget);
  EXPECT_FALSE(r.deadlocked);
}

}  // namespace
}  // namespace cbip::dist
