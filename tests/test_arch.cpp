// Tests for the architecture framework (E14): property enforcement,
// composition ⊕, preservation of component invariants and
// deadlock-freedom, and the architecture lattice order.
#include <gtest/gtest.h>

#include "arch/architecture.hpp"
#include "core/semantics.hpp"
#include "engine/engine.hpp"
#include "util/require.hpp"
#include "verify/dfinder.hpp"
#include "verify/reachability.hpp"

namespace cbip::arch {
namespace {

/// A worker that wants to enter/leave a critical section forever.
AtomicTypePtr makeWorker() {
  auto t = std::make_shared<AtomicType>("Worker");
  const int out = t->addLocation("outside");
  const int in = t->addLocation("inside");
  const int enter = t->addPort("enter");
  const int leave = t->addPort("leave");
  t->addTransition(out, enter, in);
  t->addTransition(in, leave, out);
  t->setInitialLocation(out);
  return t;
}

System workersSystem(int n, std::vector<MutexClient>& clients) {
  System sys;
  auto worker = makeWorker();
  for (int i = 0; i < n; ++i) {
    const int w = sys.addInstance("w" + std::to_string(i), worker);
    clients.push_back(MutexClient{w, worker->portIndex("enter"), worker->portIndex("leave"),
                                  {worker->locationIndex("inside")}});
  }
  return sys;
}

TEST(Mutex, EnforcesItsCharacteristicProperty) {
  std::vector<MutexClient> clients;
  System sys = workersSystem(3, clients);
  const AppliedArchitecture mutex = applyMutex(sys, clients);
  const CompositionResult r = verifyComposition(sys, {mutex});
  EXPECT_TRUE(r.propertiesHold);
  EXPECT_TRUE(r.deadlockFree);
  // With 3 workers: states = lock free + everyone out, or one of 3 inside.
  EXPECT_EQ(r.statesChecked, 4u);
}

TEST(Mutex, WithoutTheArchitectureThePropertyFails) {
  // Control experiment: wire enter/leave as free singleton connectors.
  std::vector<MutexClient> clients;
  System sys = workersSystem(2, clients);
  auto worker = sys.instance(0).type;
  for (int i = 0; i < 2; ++i) {
    sys.addConnector(rendezvous("enter" + std::to_string(i),
                                {PortRef{i, worker->portIndex("enter")}}));
    sys.addConnector(rendezvous("leave" + std::to_string(i),
                                {PortRef{i, worker->portIndex("leave")}}));
  }
  verify::ReachOptions opt;
  opt.invariant = [&clients](const GlobalState& g) {
    int inside = 0;
    for (const MutexClient& c : clients) {
      if (g.components[static_cast<std::size_t>(c.instance)].location ==
          c.criticalLocations[0]) {
        ++inside;
      }
    }
    return inside <= 1;
  };
  const verify::ReachResult r = verify::explore(sys, opt);
  EXPECT_TRUE(r.invariantViolation.has_value());
}

TEST(Mutex, PreservesDeadlockFreedomCompositionally) {
  // D-Finder certifies the architecture-composed system (horizontal
  // correctness: the coordinator cannot introduce a deadlock).
  std::vector<MutexClient> clients;
  System sys = workersSystem(4, clients);
  applyMutex(sys, clients);
  EXPECT_EQ(verify::checkDeadlockFreedom(sys).verdict, verify::DFinderVerdict::kDeadlockFree);
}

TEST(Tmr, VoterComputesMajority) {
  System sys;
  // Replicas produce a value; replica 2 is faulty (always 9).
  auto makeReplica = [&sys](const std::string& name, Value value) {
    auto t = std::make_shared<AtomicType>("Rep" + name);
    const int l = t->addLocation("l");
    const int out = t->addVariable("val", value);
    const int port = t->addPort("result", {out});
    t->addTransition(l, port, l);
    t->setInitialLocation(l);
    return sys.addInstance("rep" + name, t);
  };
  const int r0 = makeReplica("0", 7);
  const int r1 = makeReplica("1", 7);
  const int r2 = makeReplica("2", 9);
  const AppliedArchitecture tmr =
      applyTmr(sys, {TmrReplica{r0, 0}, TmrReplica{r1, 0}, TmrReplica{r2, 0}});
  GlobalState g = initialState(sys);
  const auto enabled = enabledInteractions(sys, g);
  ASSERT_EQ(enabled.size(), 1u);
  executeDefault(sys, g, enabled[0]);
  const int voter = tmr.coordinators.at(0);
  EXPECT_EQ(g.components[static_cast<std::size_t>(voter)].vars[tmrVoterOutputVar()], 7);
}

TEST(Tmr, MajorityIsRobustToAnySingleFault) {
  // Property sweep: whichever single replica is faulty, the vote is the
  // correct value.
  for (int faulty = 0; faulty < 3; ++faulty) {
    System sys;
    std::array<TmrReplica, 3> reps{};
    for (int i = 0; i < 3; ++i) {
      auto t = std::make_shared<AtomicType>("Rep" + std::to_string(i));
      const int l = t->addLocation("l");
      const int out = t->addVariable("val", i == faulty ? 99 : 5);
      const int port = t->addPort("result", {out});
      t->addTransition(l, port, l);
      t->setInitialLocation(l);
      reps[static_cast<std::size_t>(i)] =
          TmrReplica{sys.addInstance("rep" + std::to_string(i), t), 0};
    }
    const AppliedArchitecture tmr = applyTmr(sys, reps);
    GlobalState g = initialState(sys);
    executeDefault(sys, g, enabledInteractions(sys, g).at(0));
    const int voter = tmr.coordinators.at(0);
    EXPECT_EQ(g.components[static_cast<std::size_t>(voter)].vars[tmrVoterOutputVar()], 5)
        << "faulty replica " << faulty;
  }
}

TEST(FixedPriority, HigherPriorityConnectorWinsUnderTheEngine) {
  System sys;
  auto counter = std::make_shared<AtomicType>("C");
  const int run = counter->addLocation("run");
  const int n = counter->addVariable("n", 0);
  const int tick = counter->addPort("tick");
  counter->addTransition(run, tick, Expr::local(n) < Expr::lit(5),
                         {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}},
                         run);
  counter->setInitialLocation(run);
  const int a = sys.addInstance("a", counter);
  const int b = sys.addInstance("b", counter);
  const int c = sys.addInstance("c", counter);
  sys.addConnector(rendezvous("lowest", {PortRef{a, 0}}));
  sys.addConnector(rendezvous("middle", {PortRef{b, 0}}));
  sys.addConnector(rendezvous("highest", {PortRef{c, 0}}));
  applyFixedPriority(sys, {"lowest", "middle", "highest"});

  RandomPolicy policy(4);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 15;
  const RunResult r = engine.run(opt);
  // Strict priority order: highest drains fully, then middle, then lowest.
  std::vector<std::string> expected;
  for (int i = 0; i < 5; ++i) expected.push_back("highest{c.tick}");
  for (int i = 0; i < 5; ++i) expected.push_back("middle{b.tick}");
  for (int i = 0; i < 5; ++i) expected.push_back("lowest{a.tick}");
  EXPECT_EQ(r.trace.labels(), expected);
}

TEST(Composition, MutexPlusPriorityKeepsBothProperties) {
  // E14: ⊕ of the mutex architecture and a scheduling-policy architecture
  // on the same components — both characteristic properties hold and the
  // composition is not bottom (deadlock-free).
  std::vector<MutexClient> clients;
  System sys = workersSystem(3, clients);
  const AppliedArchitecture mutex = applyMutex(sys, clients);
  // Scheduling policy: worker 2's entry beats 1's, 1's beats 0's.
  const AppliedArchitecture fps =
      applyFixedPriority(sys, {"mutexBegin0", "mutexBegin1", "mutexBegin2"});
  const CompositionResult r = verifyComposition(sys, {mutex, fps});
  EXPECT_TRUE(r.propertiesHold) << r.firstViolation;
  EXPECT_TRUE(r.deadlockFree);

  // The scheduling side, on traces: whenever all three compete from the
  // initial state, worker 2 enters first.
  RandomPolicy policy(8);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 1;
  const RunResult run = engine.run(opt);
  ASSERT_EQ(run.trace.events.size(), 1u);
  EXPECT_EQ(run.trace.events[0].label.rfind("mutexBegin2", 0), 0u);
}

TEST(Composition, LatticeOrderViaSimulation) {
  // Adding a second architecture only restricts behaviour: the composed
  // system is simulated by the mutex-only system (A1 ⊕ A2 <= A1).
  std::vector<MutexClient> clientsA;
  System mutexOnly = workersSystem(2, clientsA);
  applyMutex(mutexOnly, clientsA);

  std::vector<MutexClient> clientsB;
  System composed = workersSystem(2, clientsB);
  applyMutex(composed, clientsB);
  applyFixedPriority(composed, {"mutexBegin0", "mutexBegin1"});

  const verify::LabeledGraph a = verify::buildGraph(composed);
  const verify::LabeledGraph b = verify::buildGraph(mutexOnly);
  EXPECT_TRUE(verify::simulates(a, b));   // composed refines mutex-only
  EXPECT_FALSE(verify::simulates(b, a));  // and strictly so
}

TEST(Composition, ViolationIsAttributed) {
  // A deliberately broken setup: mutex applied to only one of two workers
  // that share the section -> property violated, violation names Mutex.
  std::vector<MutexClient> clients;
  System sys = workersSystem(2, clients);
  const AppliedArchitecture mutex = applyMutex(sys, {clients[0]});
  auto worker = sys.instance(1).type;
  sys.addConnector(rendezvous("freeEnter", {PortRef{1, worker->portIndex("enter")}}));
  sys.addConnector(rendezvous("freeLeave", {PortRef{1, worker->portIndex("leave")}}));
  // Check against BOTH workers' critical sections.
  AppliedArchitecture full = mutex;
  full.holds = [clients](const GlobalState& g) {
    int inside = 0;
    for (const MutexClient& c : clients) {
      if (g.components[static_cast<std::size_t>(c.instance)].location ==
          c.criticalLocations[0]) {
        ++inside;
      }
    }
    return inside <= 1;
  };
  const CompositionResult r = verifyComposition(sys, {full});
  EXPECT_FALSE(r.propertiesHold);
  EXPECT_EQ(r.firstViolation, "Mutex");
}

}  // namespace
}  // namespace cbip::arch
