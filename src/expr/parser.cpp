#include "expr/parser.hpp"

#include <cctype>

namespace cbip::expr {

namespace {

class Parser {
 public:
  Parser(std::string_view text, const NameResolver& resolve)
      : text_(text), resolve_(resolve) {}

  Expr parse() {
    Expr e = ternary();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters after expression");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message + " at offset " + std::to_string(pos_), pos_);
  }

  void skipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool eat(std::string_view token) {
    skipSpace();
    if (text_.substr(pos_, token.size()) != token) return false;
    // Avoid matching a prefix of a longer operator (e.g. '<' of '<=')
    // or of an identifier keyword.
    if (!token.empty() && (std::isalpha(static_cast<unsigned char>(token.back())))) {
      const std::size_t after = pos_ + token.size();
      if (after < text_.size() &&
          (std::isalnum(static_cast<unsigned char>(text_[after])) || text_[after] == '_')) {
        return false;
      }
    }
    pos_ += token.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Expr ternary() {
    Expr cond = orExpr();
    skipSpace();
    if (eat("?")) {
      Expr t = ternary();
      skipSpace();
      if (!eat(":")) fail("expected ':' in conditional");
      Expr e = ternary();
      return Expr::ite(std::move(cond), std::move(t), std::move(e));
    }
    return cond;
  }

  Expr orExpr() {
    Expr e = andExpr();
    while (true) {
      skipSpace();
      if (eat("||")) {
        e = std::move(e) || andExpr();
      } else {
        return e;
      }
    }
  }

  Expr andExpr() {
    Expr e = cmp();
    while (true) {
      skipSpace();
      if (eat("&&")) {
        e = std::move(e) && cmp();
      } else {
        return e;
      }
    }
  }

  Expr cmp() {
    Expr e = sum();
    skipSpace();
    if (eat("==")) return std::move(e) == sum();
    if (eat("!=")) return std::move(e) != sum();
    if (eat("<=")) return std::move(e) <= sum();
    if (eat(">=")) return std::move(e) >= sum();
    if (eat("<")) return std::move(e) < sum();
    if (eat(">")) return std::move(e) > sum();
    return e;
  }

  Expr sum() {
    Expr e = term();
    while (true) {
      skipSpace();
      if (eat("+")) {
        e = std::move(e) + term();
      } else if (peekMinus()) {
        eat("-");
        e = std::move(e) - term();
      } else {
        return e;
      }
    }
  }

  // '-' is a binary minus here; never part of '->' (not in this grammar).
  bool peekMinus() {
    skipSpace();
    return peek() == '-';
  }

  Expr term() {
    Expr e = unary();
    while (true) {
      skipSpace();
      if (eat("*")) {
        e = std::move(e) * unary();
      } else if (eat("/")) {
        e = std::move(e) / unary();
      } else if (eat("%")) {
        e = std::move(e) % unary();
      } else {
        return e;
      }
    }
  }

  Expr unary() {
    skipSpace();
    if (eat("!")) return !unary();
    if (eat("-")) return -unary();
    return primary();
  }

  Expr primary() {
    skipSpace();
    if (eat("(")) {
      Expr e = ternary();
      skipSpace();
      if (!eat(")")) fail("expected ')'");
      return e;
    }
    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c))) return number();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return identifier();
    fail("expected literal, identifier or '('");
  }

  Expr number() {
    std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    return Expr::lit(std::stoll(std::string(text_.substr(start, pos_ - start))));
  }

  Expr identifier() {
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    std::string name(text_.substr(start, pos_ - start));
    if (name == "true") return Expr::lit(1);
    if (name == "false") return Expr::lit(0);
    skipSpace();
    if (peek() == '(') {
      // Builtin function call.
      ++pos_;
      std::vector<Expr> args;
      skipSpace();
      if (peek() != ')') {
        args.push_back(ternary());
        skipSpace();
        while (eat(",")) {
          args.push_back(ternary());
          skipSpace();
        }
      }
      if (!eat(")")) fail("expected ')' after arguments");
      if (name == "min" && args.size() == 2) return Expr::min(args[0], args[1]);
      if (name == "max" && args.size() == 2) return Expr::max(args[0], args[1]);
      if (name == "abs" && args.size() == 1) return Expr::abs(args[0]);
      fail("unknown function '" + name + "' (arity " + std::to_string(args.size()) + ")");
    }
    return Expr::var(resolve_(name));
  }

  std::string_view text_;
  const NameResolver& resolve_;
  std::size_t pos_ = 0;
};

}  // namespace

Expr parseExpr(std::string_view text, const NameResolver& resolve) {
  return Parser(text, resolve).parse();
}

}  // namespace cbip::expr
