// Bytecode compiler for the data sub-language.
//
// The symbolic Expr trees stay the single semantic reference — the
// verifier inspects and abstracts them directly ("semantic coherency",
// monograph Section 5.4). Execution, however, pays dearly for walking
// shared_ptr subtrees through a virtual EvalContext on every engine step,
// so this module lowers an Expr once into a flat postfix ExprProgram: a
// dense instruction array evaluated iteratively on a small value stack
// against a contiguous frame of variable slots. No recursion, no pointer
// chasing, no virtual dispatch.
//
// Semantics are bit-identical to Expr::eval on the same tree:
//   * && and || short-circuit (compiled to conditional jumps), so a
//     division by zero in an unreached right operand never raises;
//   * ite evaluates only the taken branch;
//   * kDiv/kMod raise EvalError on zero divisors exactly like the
//     interpreter.
// The only permitted divergence is *which* EvalError a doomed expression
// raises first, because the interpreter evaluates divisors before
// dividends while postfix order is left-to-right.
//
// Variable references are resolved at compile time through a SlotMap from
// (scope, index) VarRefs to flat frame offsets; an unmappable reference is
// a compile-time ModelError instead of a per-evaluation check.
//
// The escape hatch: setting the CBIP_NO_COMPILE environment variable (or
// calling setCompilationEnabled(false)) routes every execution-layer
// evaluation back through the tree-walking interpreter. Traces must be
// bit-identical either way; the differential tests rely on this switch.
//
// Fused guarded commands: a transition's guard and its action block are
// one semantic unit, so compileFused() lowers them into a *single*
// program — guard prefix, a conditional jump that skips the action suffix
// when the guard is false, then the assignments as kStore instructions —
// and runs a common-subexpression pass across the guard/action boundary:
// a non-leaf subexpression evaluated unconditionally once is parked in a
// temp register (kTee) and later occurrences reload it (kLoadTmp) instead
// of recomputing, as long as no intervening assignment clobbered a slot
// it reads. Caching is sound for errors too: every operator's outcome
// (value or EvalError) is a deterministic function of its operand values,
// so a reuse whose defining occurrence succeeded cannot have raised.
// Guard-then-fire call sites collapse to one dispatch of the fused
// program; CBIP_NO_FUSE (or setFusionEnabled(false)) restores the
// separate guard-program + per-action-program dispatches, bit-identically.
//
// Execution cores: every program carries two interchangeable evaluation
// cores — the portable switch interpreter (exec) and, on GCC/Clang, a
// computed-goto direct-threaded core (execThreaded) built at finalization
// by translating each opcode into the address of its handler label, so
// per-instruction dispatch is one indirect goto instead of a bounds-checked
// switch. Guards compile with truelist/falselist backpatching: a
// short-circuit && / || chain emits conditional jumps wired directly to
// their ultimate targets (the action suffix, the FAIL label, the 0/1
// materialization) instead of materializing and re-testing a boolean at
// every nesting level. runBatch additionally strip-mines runs of the same
// guard program over many frame bases through a jump-free eager "batch
// form" (see runBatch). CBIP_NO_THREADED (or
// setThreadedDispatchEnabled(false)) routes everything back through the
// switch core, op by op — traces, results and first-EvalError order are
// bit-identical on every combination of cores.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "expr/expr.hpp"

// Direct-threaded dispatch needs the GNU address-of-label extension
// (&&label / goto *p), available on GCC and Clang. Elsewhere — or when a
// build forces it off with -DCBIP_NO_COMPUTED_GOTO (the
// CBIP_FORCE_SWITCH_DISPATCH CMake option) — the portable switch
// interpreter is the only execution core and the threaded form is never
// built. The two cores are bit-identical, including which EvalError a
// doomed program raises first; CI compiles and tests both.
#if !defined(CBIP_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define CBIP_HAS_COMPUTED_GOTO 1
#else
#define CBIP_HAS_COMPUTED_GOTO 0
#endif

namespace cbip::expr {

/// Maps a VarRef to a frame slot (>= 0). Throws ModelError for references
/// the frame does not cover.
using SlotMap = std::function<int(VarRef)>;

enum class OpCode : std::uint8_t {
  kPush,  // push immediate
  kLoad,  // push frame[arg]
  // Binary ops: pop b, pop a, push (a op b).
  kAdd, kSub, kMul, kDiv, kMod,
  kMin, kMax,
  kEq, kNe, kLt, kLe, kGt, kGe,
  // Unary ops on the stack top.
  kNeg, kAbs, kNot,
  // Control flow (short-circuit && / || and ite).
  kJump,           // pc := arg
  kJumpIfZero,     // pop v; if v == 0 then pc := arg
  kJumpIfNonZero,  // pop v; if v != 0 then pc := arg
  // Fused guarded commands (compileFused) only.
  kStore,    // pop v; frame[base + arg] := v (requires the mutable-frame run)
  kTee,      // temp[arg] := stack top (no pop) — parks a CSE value
  kLoadTmp,  // push temp[arg]
  // Analysis-relaxed division (src/analyze): kDiv/kMod with the
  // zero-divisor and INT64_MIN / -1 checks elided. Only ever produced by
  // ExprProgram::relaxDivCheck after the abstract interpreter proved the
  // site can never raise; executing one with a zero divisor is UB (which
  // is exactly what the sanitizer CI legs would catch on an analyzer bug).
  kDivUnchecked,
  kModUnchecked,
  // Batch-form only (never in code_): eager boolean connectives and
  // select, the if-converted twins of the short-circuit jumps. They are
  // only emitted for operands the compiler proved side-effect- and
  // raise-free, so eager evaluation is indistinguishable from the
  // short-circuit original — which is what makes the strip-mined
  // block executor (one jump-free instruction stream over many frame
  // bases at once) exact.
  kAndB,    // pop b, a; push (a != 0) && (b != 0)
  kOrB,     // pop b, a; push (a != 0) || (b != 0)
  kSelect,  // pop f, t, c; push c != 0 ? t : f
};

/// One past the last OpCode value (sizes the threaded label table).
inline constexpr int kOpCodeCount = static_cast<int>(OpCode::kSelect) + 1;

struct Instr {
  OpCode op = OpCode::kPush;
  std::int32_t arg = 0;  // kLoad: frame slot; jumps: target pc
  Value imm = 0;         // kPush: the literal
};

/// One instruction of the direct-threaded form: the opcode is replaced by
/// the address of its handler label inside the threaded execution core,
/// so dispatch is a single indirect `goto` instead of a bounds-checked
/// switch. Jump args stay instruction *indices* (resolved against the
/// threaded array base at run time), which keeps the form relocatable
/// under copies and moves. On toolchains without computed goto the
/// threaded vector simply stays empty.
struct ThreadedInstr {
  const void* label = nullptr;
  std::int32_t arg = 0;
  Value imm = 0;
};

class ExprProgram;

/// One element of a batch evaluation: a program plus the frame base offset
/// it runs at (see ExprProgram::runBatch). The program must be non-empty
/// and outlive the batch call.
struct BatchOp {
  const ExprProgram* program = nullptr;
  std::int32_t base = 0;
};

/// A compiled expression. Default-constructed programs are empty (used for
/// trivially-true guards that are never run).
class ExprProgram {
 public:
  bool empty() const { return code_.empty(); }
  std::size_t size() const { return code_.size(); }
  const std::vector<Instr>& code() const { return code_; }

  /// Evaluates against `frame`; every slot referenced by the program must
  /// be within the span. Throws EvalError on division/modulo by zero.
  Value run(std::span<const Value> frame) const { return run(frame, 0); }

  /// Frame-base-relative evaluation: every kLoad reads
  /// `frame[base + slot]`. Lets one program compiled against a local
  /// layout (slot = variable index, see compileLocal) execute against any
  /// region of a larger shared frame — the sharded engine runs a
  /// component type's transition programs against the owning shard's
  /// contiguous variable frame this way, with `base` the instance's
  /// offset in that frame. Read-only programs only: a program holding
  /// kStore instructions (compileFused) must use the mutable overload.
  Value run(std::span<const Value> frame, std::int32_t base) const;

  /// Mutable-frame evaluation for fused guarded commands: kStore writes
  /// `frame[base + slot]` in place (the frame *is* the live variable
  /// block, so each assignment is visible to every later load — the
  /// sequential action-block semantics). Returns the program result: 1
  /// when the guard held and the action suffix executed, 0 when the
  /// conditional skip fired.
  Value run(std::span<Value> frame, std::int32_t base) const;

  /// True when the program writes the frame (holds kStore instructions).
  bool storesFrame() const { return hasStores_; }

  /// Evaluation-stack slots the program needs (analysis sizes its abstract
  /// stack from this) and CSE temp registers it uses.
  int maxStack() const { return maxStack_; }
  int tempCount() const { return tempCount_; }

  /// The single-instruction program `Push v`. The analysis layer stamps a
  /// guard proven constant out with one of these (never an *empty*
  /// program: empty means trivially true to every dispatch site).
  static ExprProgram constant(Value v);

  /// Replaces the kDiv/kMod at `pc` with its unchecked twin (see the
  /// OpCode comment). Caller contract: the abstract interpreter proved
  /// the site can never raise — this is the only sanctioned mutation of a
  /// built program, used by analyze::relaxSafeDivChecks. Rebuilds the
  /// cached threaded form (the mutation would otherwise leave a stale
  /// label dispatching the checked handler). Throws ModelError when `pc`
  /// does not hold a checked division.
  void relaxDivCheck(std::size_t pc);

  /// True when the cached direct-threaded form mirrors code_ — same
  /// length plus the halt sentinel, each instruction carrying the handler
  /// label of its opcode. Trivially true on builds without computed goto.
  /// Exists for the post-finalization-mutator regression tests; execution
  /// never consults it (finalization keeps the form in sync by
  /// construction).
  bool threadedInSync() const;

  /// True when the program has a jump-free eager batch form that the
  /// strip-mined block executor can run over many frame bases at once
  /// (built by compile() when every conditionally-evaluated operand is
  /// provably raise-free; fused and analysis-stamped programs never have
  /// one).
  bool hasBatchForm() const { return !batch_.empty(); }

  /// Batch evaluation over one shared frame: `out[i] =
  /// ops[i].program->run(frame, ops[i].base)` for every i, in order, with
  /// the evaluation stack set up once for the whole batch instead of once
  /// per program. This is the enabled-set scan primitive: a connector scan
  /// gathers its participants' variables once and then evaluates every
  /// transition guard (frame-base-relative, one base per participant) in a
  /// single pass. Short-circuit jumps behave per program exactly as in
  /// run(); an EvalError raised by ops[i] propagates immediately with
  /// out[0..i-1] already written. `ops.size()` must equal `out.size()` and
  /// every op's program must be non-empty (trivially-true guards are
  /// skipped by callers, never batched).
  ///
  /// Block-parallel fast path: a run of >= kMinBlockRun consecutive ops
  /// sharing one program that hasBatchForm() executes strip-mined — the
  /// jump-free eager form runs instruction-by-instruction over up to
  /// kBatchLanes frame bases at once (lane-contiguous stacks, so the
  /// per-opcode inner loops vectorize). The first-EvalError contract
  /// survives exactly: a raise anywhere in a block discards the block's
  /// scratch and replays it scalar, lane by lane in op order, reproducing
  /// the scalar error point bit-identically (batch forms only exist for
  /// pure read-only programs, so a discarded block has no side effects).
  static void runBatch(std::span<const BatchOp> ops, std::span<const Value> frame,
                       std::span<Value> out);

  /// Block-executor geometry, exposed for tests and benches: minimum
  /// same-program run length worth strip-mining, and lanes per block.
  static constexpr std::size_t kMinBlockRun = 4;
  static constexpr std::size_t kBatchLanes = 16;

 private:
  friend ExprProgram compile(const Expr&, const SlotMap&);
  friend ExprProgram compileFused(const Expr&, std::span<const Assign>, const SlotMap&);

  /// Interpreter core shared by run and runBatch; `stack` must hold at
  /// least maxStack_ + tempCount_ slots (the CSE temp registers live
  /// above the evaluation stack). `frame` is only written through kStore,
  /// which compileFused emits and compile never does — the read-only run
  /// overloads pass a const frame through here unchanged.
  Value exec(std::span<const Value> frame, std::int32_t base, Value* stack) const;

#if CBIP_HAS_COMPUTED_GOTO
  /// Direct-threaded twin of exec(): same contract, dispatches by
  /// indirect goto through the labels cached in threaded_. When
  /// `labelsOut` is non-null the call only publishes the handler label
  /// table (the addresses are function-local) and executes nothing —
  /// finalize() uses that mode to translate code_.
  Value execThreaded(std::span<const Value> frame, std::int32_t base, Value* stack,
                     const void* const** labelsOut = nullptr) const;
#endif

  /// Strip-mined executor for the eager batch form: evaluates batch_ over
  /// ops.size() (<= kBatchLanes) frame bases in lockstep. `lanes` must
  /// hold batchMaxStack_ * ops.size() values, laid out lane-contiguous
  /// per stack depth.
  void execBlock(std::span<const BatchOp> ops, std::span<const Value> frame, Value* lanes,
                 std::span<Value> out) const;

  /// Builds the execution-ready forms from code_ (threaded translation;
  /// called at the end of compilation and after every sanctioned
  /// post-finalization mutation). Single-threaded like all program
  /// construction — engines only run finalized programs.
  void finalize();

  std::vector<Instr> code_;
  std::vector<ThreadedInstr> threaded_;  // code_ + halt sentinel; empty without computed goto
  std::vector<Instr> batch_;             // jump-free eager form (compile() only), often empty
  int maxStack_ = 0;
  int batchMaxStack_ = 0;  // stack depth of batch_ (eager evaluation needs its own bound)
  int tempCount_ = 0;      // CSE temp registers (fused programs only)
  bool hasStores_ = false;
};

/// Lowers `e` to bytecode, folding constant subprograms (a fold never
/// removes a possible division by zero or a variable read).
ExprProgram compile(const Expr& e, const SlotMap& slots);

/// Lowering for component-local expressions: scope 0, slot = index (the
/// frame is the component's variable vector).
ExprProgram compileLocal(const Expr& e);

/// Fuses one guarded command — `guard` plus the sequential assignment
/// block `actions` — into a single program (see the file comment):
///
///   [guard]  JumpIfZero FAIL  [value_0] Store t_0 ... [value_k] Store t_k
///   Push 1  Jump END  FAIL: Push 0  END:
///
/// with the guard prefix (and its jump) omitted for a trivially-true
/// guard, and a common-subexpression pass spanning the whole sequence.
/// Both assignment targets and variable reads resolve through `slots`.
/// Run it with the mutable-frame overload; the result is 1 iff the guard
/// held (and the assignments were applied). A trivially-true guard with
/// no actions compiles to the single instruction `Push 1`.
///
/// Semantics are bit-identical to running the guard program and then each
/// action program separately over the same live frame, including which
/// EvalError a doomed evaluation raises first.
ExprProgram compileFused(const Expr& guard, std::span<const Assign> actions,
                         const SlotMap& slots);

/// True when run()/runBatch() may use the accelerated VM cores — the
/// direct-threaded dispatch loop and the block-parallel batch executor;
/// defaults to true unless the CBIP_NO_THREADED environment variable is
/// set to a non-empty value other than "0". When false (or on toolchains
/// without computed goto, for the threaded half) every evaluation routes
/// through the portable switch interpreter, op by op, bit-identically:
/// this is the VM-dispatch escape hatch the differential tests toggle.
bool threadedDispatchEnabled();

/// Overrides the threaded-dispatch switch (differential tests and
/// benchmarks toggle this to compare the threaded and switch cores in
/// one process).
void setThreadedDispatchEnabled(bool on);

/// True when the execution layer should dispatch fused guard+action
/// programs; defaults to true unless the CBIP_NO_FUSE environment
/// variable is set to a non-empty value other than "0". Only consulted
/// when compilation itself is enabled — the interpreter escape hatch has
/// no fused form.
bool fusionEnabled();

/// Overrides the fusion switch (differential tests and benchmarks toggle
/// this to compare the fused and unfused dispatch paths in one process).
void setFusionEnabled(bool on);

/// True when the execution layer should evaluate compiled programs;
/// defaults to true unless the CBIP_NO_COMPILE environment variable is set
/// to a non-empty value other than "0".
bool compilationEnabled();

/// Overrides the compilation switch (differential tests and benchmarks
/// toggle this to compare the two evaluation paths in one process).
void setCompilationEnabled(bool on);

/// True when the build layer should run the abstract interpreter over
/// freshly compiled programs and apply analysis-guided pruning (guard
/// constant-folding, division-check relaxation — see src/analyze);
/// defaults to true unless the CBIP_NO_ANALYZE environment variable is
/// set to a non-empty value other than "0". Consulted at *build* time
/// (AtomicType::compileIfNeeded, CompiledConnector::build, the D-Finder
/// guard-feasibility feed), not per dispatch: toggling it affects
/// programs compiled afterwards.
bool analysisEnabled();

/// Overrides the analysis switch (differential tests and benchmarks
/// toggle this to compare analyzed and unanalyzed builds in one process).
void setAnalysisEnabled(bool on);

}  // namespace cbip::expr
