#include "expr/expr.hpp"

#include <sstream>

#include "util/require.hpp"

namespace cbip::expr {

struct Expr::Node {
  Op op = Op::kLit;
  Value lit = 0;
  VarRef ref;
  std::vector<Expr> kids;
};

namespace {
Value toBool(Value v) { return v != 0 ? 1 : 0; }
}  // namespace

Value VecContext::read(VarRef ref) const {
  requireEval(ref.scope == 0, "VecContext: only scope 0 is bound");
  requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < vars_->size(),
              "VecContext: variable index out of range");
  return (*vars_)[static_cast<std::size_t>(ref.index)];
}

void VecContext::write(VarRef ref, Value value) {
  requireEval(ref.scope == 0, "VecContext: only scope 0 is bound");
  requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < vars_->size(),
              "VecContext: variable index out of range");
  (*vars_)[static_cast<std::size_t>(ref.index)] = value;
}

Expr::Expr() {
  static const std::shared_ptr<const Node> zero = [] {
    auto n = std::make_shared<Node>();
    n->op = Op::kLit;
    n->lit = 0;
    return n;
  }();
  node_ = zero;
}

Expr Expr::makeRaw(Op op, std::vector<Expr> kids) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->kids = std::move(kids);
  return Expr(std::move(n));
}

namespace {

/// True iff `e` is guaranteed to evaluate to 0 or 1.
bool isBoolValued(const Expr& e) {
  switch (e.op()) {
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
    case Op::kAnd:
    case Op::kOr:
    case Op::kNot:
      return true;
    case Op::kLit:
      return e.literal() == 0 || e.literal() == 1;
    default:
      return false;
  }
}

/// Truthiness of `e` as a 0/1 value (the result type of && and ||).
Expr boolify(Expr e) {
  if (isBoolValued(e)) return e;
  return std::move(e) != Expr::lit(0);
}

}  // namespace

Expr Expr::make(Op op, std::vector<Expr> kids) {
  const auto isLit = [](const Expr& e, Value v) { return e.isConst() && e.literal() == v; };
  bool allConst = !kids.empty();
  for (const Expr& k : kids) allConst = allConst && k.isConst();
  if (allConst) {
    // Division/modulo by a zero literal — and the unrepresentable
    // INT64_MIN / -1 — must stay: they are runtime errors, not values.
    const bool divRaises = (op == Op::kDiv || op == Op::kMod) &&
                           (kids[1].literal() == 0 ||
                            divOverflows(kids[0].literal(), kids[1].literal()));
    if (!divRaises) {
      std::vector<Value> noVars;
      VecContext ctx(noVars);
      return lit(makeRaw(op, std::move(kids)).eval(ctx));
    }
  }
  switch (op) {
    case Op::kAdd:
      if (isLit(kids[0], 0)) return kids[1];
      if (isLit(kids[1], 0)) return kids[0];
      break;
    case Op::kSub:
      if (isLit(kids[1], 0)) return kids[0];
      break;
    case Op::kMul:
      // x*0 does NOT fold: x may raise.
      if (isLit(kids[0], 1)) return kids[1];
      if (isLit(kids[1], 1)) return kids[0];
      break;
    case Op::kDiv:
      if (isLit(kids[1], 1)) return kids[0];
      break;
    case Op::kAnd:
      // A constant left operand resolves the short-circuit at build time;
      // a constant truthy right operand reduces to the left's truthiness.
      if (kids[0].isConst()) return kids[0].literal() == 0 ? lit(0) : boolify(kids[1]);
      if (kids[1].isConst() && kids[1].literal() != 0) return boolify(kids[0]);
      break;
    case Op::kOr:
      if (kids[0].isConst()) return kids[0].literal() != 0 ? lit(1) : boolify(kids[1]);
      if (isLit(kids[1], 0)) return boolify(kids[0]);
      break;
    case Op::kIte:
      // The untaken branch of a constant condition would never evaluate.
      if (kids[0].isConst()) return kids[0].literal() != 0 ? kids[1] : kids[2];
      break;
    default:
      break;
  }
  return makeRaw(op, std::move(kids));
}

Expr Expr::lit(Value v) {
  auto n = std::make_shared<Node>();
  n->op = Op::kLit;
  n->lit = v;
  return Expr(std::move(n));
}

Expr Expr::var(VarRef ref) {
  auto n = std::make_shared<Node>();
  n->op = Op::kVar;
  n->ref = ref;
  return Expr(std::move(n));
}

Expr Expr::ite(Expr cond, Expr thenE, Expr elseE) {
  return make(Op::kIte, {std::move(cond), std::move(thenE), std::move(elseE)});
}
Expr Expr::min(Expr a, Expr b) { return make(Op::kMin, {std::move(a), std::move(b)}); }
Expr Expr::max(Expr a, Expr b) { return make(Op::kMax, {std::move(a), std::move(b)}); }
Expr Expr::abs(Expr a) { return make(Op::kAbs, {std::move(a)}); }

Op Expr::op() const { return node_->op; }

Value Expr::literal() const {
  require(node_->op == Op::kLit, "Expr::literal on non-literal");
  return node_->lit;
}

VarRef Expr::ref() const {
  require(node_->op == Op::kVar, "Expr::ref on non-variable");
  return node_->ref;
}

std::size_t Expr::arity() const { return node_->kids.size(); }

const Expr& Expr::child(std::size_t i) const {
  require(i < node_->kids.size(), "Expr::child index out of range");
  return node_->kids[i];
}

bool Expr::isTrue() const { return node_->op == Op::kLit && node_->lit == 1; }

Value Expr::eval(const EvalContext& ctx) const {
  const Node& n = *node_;
  switch (n.op) {
    case Op::kLit: return n.lit;
    case Op::kVar: return ctx.read(n.ref);
    case Op::kAdd: return wrapAdd(n.kids[0].eval(ctx), n.kids[1].eval(ctx));
    case Op::kSub: return wrapSub(n.kids[0].eval(ctx), n.kids[1].eval(ctx));
    case Op::kMul: return wrapMul(n.kids[0].eval(ctx), n.kids[1].eval(ctx));
    case Op::kDiv: {
      // Divisor before dividend (documented interpreter order); the zero
      // check fires before the dividend is even evaluated, the overflow
      // check once both operands are known.
      const Value d = n.kids[1].eval(ctx);
      requireEval(d != 0, "division by zero");
      const Value a = n.kids[0].eval(ctx);
      requireEval(!divOverflows(a, d), "integer overflow in division");
      return a / d;
    }
    case Op::kMod: {
      const Value d = n.kids[1].eval(ctx);
      requireEval(d != 0, "modulo by zero");
      const Value a = n.kids[0].eval(ctx);
      requireEval(!divOverflows(a, d), "integer overflow in modulo");
      return a % d;
    }
    case Op::kNeg: return wrapNeg(n.kids[0].eval(ctx));
    case Op::kMin: {
      const Value a = n.kids[0].eval(ctx), b = n.kids[1].eval(ctx);
      return a < b ? a : b;
    }
    case Op::kMax: {
      const Value a = n.kids[0].eval(ctx), b = n.kids[1].eval(ctx);
      return a > b ? a : b;
    }
    case Op::kAbs: return wrapAbs(n.kids[0].eval(ctx));
    case Op::kEq: return toBool(n.kids[0].eval(ctx) == n.kids[1].eval(ctx));
    case Op::kNe: return toBool(n.kids[0].eval(ctx) != n.kids[1].eval(ctx));
    case Op::kLt: return toBool(n.kids[0].eval(ctx) < n.kids[1].eval(ctx));
    case Op::kLe: return toBool(n.kids[0].eval(ctx) <= n.kids[1].eval(ctx));
    case Op::kGt: return toBool(n.kids[0].eval(ctx) > n.kids[1].eval(ctx));
    case Op::kGe: return toBool(n.kids[0].eval(ctx) >= n.kids[1].eval(ctx));
    case Op::kAnd: return n.kids[0].eval(ctx) != 0 && n.kids[1].eval(ctx) != 0 ? 1 : 0;
    case Op::kOr: return n.kids[0].eval(ctx) != 0 || n.kids[1].eval(ctx) != 0 ? 1 : 0;
    case Op::kNot: return toBool(n.kids[0].eval(ctx) == 0);
    case Op::kIte:
      return n.kids[0].eval(ctx) != 0 ? n.kids[1].eval(ctx) : n.kids[2].eval(ctx);
  }
  throw EvalError("Expr::eval: unknown operator");
}

Value Expr::eval(std::vector<Value>& vars) const {
  VecContext ctx(vars);
  return eval(ctx);
}

Expr Expr::mapVars(const std::function<VarRef(VarRef)>& f) const {
  const Node& n = *node_;
  if (n.op == Op::kLit) return *this;
  if (n.op == Op::kVar) return var(f(n.ref));
  std::vector<Expr> kids;
  kids.reserve(n.kids.size());
  for (const Expr& k : n.kids) kids.push_back(k.mapVars(f));
  return make(n.op, std::move(kids));
}

Expr Expr::simplified() const {
  const Node& n = *node_;
  if (n.op == Op::kLit || n.op == Op::kVar) return *this;
  std::vector<Expr> kids;
  kids.reserve(n.kids.size());
  for (const Expr& k : n.kids) kids.push_back(k.simplified());
  // Rebuilding through make() applies every error-preserving fold and
  // identity (constants, x+0, short-circuit-safe &&/||, constant ite).
  // Only the folds make() deliberately refuses are layered on here, with
  // the documented caveat that they may *remove* a division by zero the
  // original would have raised inside a dead operand.
  auto isLit = [](const Expr& e, Value v) { return e.isConst() && e.literal() == v; };
  switch (n.op) {
    case Op::kMul:
      if (isLit(kids[0], 0) || isLit(kids[1], 0)) return lit(0);
      break;
    case Op::kNot:
      if (kids[0].op() == Op::kNot) {
        return make(Op::kNe, {kids[0].child(0), lit(0)});
      }
      break;
    default:
      break;
  }
  return make(n.op, std::move(kids));
}

void Expr::collectVars(std::vector<VarRef>& out) const {
  const Node& n = *node_;
  if (n.op == Op::kVar) {
    out.push_back(n.ref);
    return;
  }
  for (const Expr& k : n.kids) k.collectVars(out);
}

bool Expr::equals(const Expr& other) const {
  const Node& a = *node_;
  const Node& b = *other.node_;
  if (a.op != b.op) return false;
  switch (a.op) {
    case Op::kLit: return a.lit == b.lit;
    case Op::kVar: return a.ref == b.ref;
    default: break;
  }
  if (a.kids.size() != b.kids.size()) return false;
  for (std::size_t i = 0; i < a.kids.size(); ++i) {
    if (!a.kids[i].equals(b.kids[i])) return false;
  }
  return true;
}

namespace {

const char* opSymbol(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMod: return "%";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kAnd: return "&&";
    case Op::kOr: return "||";
    default: return "?";
  }
}

}  // namespace

std::string Expr::toString(const std::function<std::string(VarRef)>& name) const {
  std::ostringstream os;
  const Node& n = *node_;
  switch (n.op) {
    case Op::kLit: os << n.lit; break;
    case Op::kVar: os << name(n.ref); break;
    case Op::kNeg: os << "(-" << n.kids[0].toString(name) << ")"; break;
    case Op::kNot: os << "(!" << n.kids[0].toString(name) << ")"; break;
    case Op::kAbs: os << "abs(" << n.kids[0].toString(name) << ")"; break;
    case Op::kMin:
      os << "min(" << n.kids[0].toString(name) << ", " << n.kids[1].toString(name) << ")";
      break;
    case Op::kMax:
      os << "max(" << n.kids[0].toString(name) << ", " << n.kids[1].toString(name) << ")";
      break;
    case Op::kIte:
      os << "(" << n.kids[0].toString(name) << " ? " << n.kids[1].toString(name) << " : "
         << n.kids[2].toString(name) << ")";
      break;
    default:
      os << "(" << n.kids[0].toString(name) << " " << opSymbol(n.op) << " "
         << n.kids[1].toString(name) << ")";
      break;
  }
  return os.str();
}

std::string Expr::toString() const {
  return toString([](VarRef r) {
    std::ostringstream os;
    os << "v" << r.scope << "_" << r.index;
    return os.str();
  });
}

Expr operator+(Expr a, Expr b) { return Expr::make(Op::kAdd, {std::move(a), std::move(b)}); }
Expr operator-(Expr a, Expr b) { return Expr::make(Op::kSub, {std::move(a), std::move(b)}); }
Expr operator*(Expr a, Expr b) { return Expr::make(Op::kMul, {std::move(a), std::move(b)}); }
Expr operator/(Expr a, Expr b) { return Expr::make(Op::kDiv, {std::move(a), std::move(b)}); }
Expr operator%(Expr a, Expr b) { return Expr::make(Op::kMod, {std::move(a), std::move(b)}); }
Expr operator-(Expr a) { return Expr::make(Op::kNeg, {std::move(a)}); }
Expr operator==(Expr a, Expr b) { return Expr::make(Op::kEq, {std::move(a), std::move(b)}); }
Expr operator!=(Expr a, Expr b) { return Expr::make(Op::kNe, {std::move(a), std::move(b)}); }
Expr operator<(Expr a, Expr b) { return Expr::make(Op::kLt, {std::move(a), std::move(b)}); }
Expr operator<=(Expr a, Expr b) { return Expr::make(Op::kLe, {std::move(a), std::move(b)}); }
Expr operator>(Expr a, Expr b) { return Expr::make(Op::kGt, {std::move(a), std::move(b)}); }
Expr operator>=(Expr a, Expr b) { return Expr::make(Op::kGe, {std::move(a), std::move(b)}); }
Expr operator&&(Expr a, Expr b) { return Expr::make(Op::kAnd, {std::move(a), std::move(b)}); }
Expr operator||(Expr a, Expr b) { return Expr::make(Op::kOr, {std::move(a), std::move(b)}); }
Expr operator!(Expr a) { return Expr::make(Op::kNot, {std::move(a)}); }

void applyAssignments(const std::vector<Assign>& assigns, EvalContext& ctx) {
  for (const Assign& a : assigns) ctx.write(a.target, a.value.eval(ctx));
}

}  // namespace cbip::expr
