// Integer expression / predicate AST.
//
// This is the data sub-language of the component framework: transition
// guards, update actions, connector guards and data-transfer functions are
// all Expr trees over 64-bit integer variables (booleans are 0/1).
// Keeping data symbolic — rather than opaque C++ callbacks, as in the
// original BIP engine — is what lets the verification layer inspect and
// abstract the very same objects the engines execute ("semantic
// coherency", monograph Section 5.4).
//
// Variables are referred to by (scope, index) pairs whose meaning is
// supplied by the evaluation context:
//   * inside an atomic component, scope 0 = the component's variable table;
//   * inside a connector, scope i >= 0 = the i-th attached port's exported
//     variables, and scope kConnectorScope = the connector's own variables;
//   * in global (system-level) predicates, scope i = instance i.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace cbip::expr {

using Value = std::int64_t;

// ---- arithmetic semantics of the data sub-language ----------------------
//
// Every evaluation path (the tree-walking interpreter, the bytecode VM and
// both constant folders) shares these helpers, so the sub-language has one
// arithmetic definition instead of whatever the host compiler makes of
// signed overflow:
//   * `+`, `-`, `*`, unary `-` and `abs` wrap in two's complement (the
//     unsigned-cast dance below is well-defined C++ and UBSan-clean);
//   * `/` and `%` raise EvalError on a zero divisor, and on the one
//     unrepresentable quotient INT64_MIN / -1 (which traps in hardware) —
//     the zero check always comes first, on every path.

/// Wrapping two's-complement addition.
inline Value wrapAdd(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
}

/// Wrapping two's-complement subtraction.
inline Value wrapSub(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
}

/// Wrapping two's-complement multiplication.
inline Value wrapMul(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
}

/// Wrapping two's-complement negation (wrapNeg(INT64_MIN) == INT64_MIN).
inline Value wrapNeg(Value a) { return static_cast<Value>(-static_cast<std::uint64_t>(a)); }

/// Wrapping absolute value (wrapAbs(INT64_MIN) == INT64_MIN).
inline Value wrapAbs(Value a) { return a < 0 ? wrapNeg(a) : a; }

/// True iff `a / b` (or `a % b`) is the unrepresentable INT64_MIN / -1
/// (which traps in hardware — for `%` too, even though the mathematical
/// remainder is 0). Each evaluation site raises EvalError on it *after*
/// its zero-divisor check; a single combined check helper is impossible
/// because the interpreter checks the divisor before the dividend has
/// even been evaluated.
inline bool divOverflows(Value a, Value b) {
  return b == -1 && a == std::numeric_limits<Value>::min();
}

/// Scope of connector-local variables in connector expressions.
inline constexpr int kConnectorScope = -1;

/// A (scope, index) reference to a variable; resolution is
/// context-dependent (see file comment).
struct VarRef {
  int scope = 0;
  int index = 0;
  friend bool operator==(const VarRef&, const VarRef&) = default;
};

/// Resolves variable reads/writes during evaluation.
class EvalContext {
 public:
  virtual ~EvalContext() = default;
  virtual Value read(VarRef ref) const = 0;
  virtual void write(VarRef ref, Value value) = 0;
};

/// Evaluation context over a single flat variable vector (scope must be 0).
class VecContext final : public EvalContext {
 public:
  explicit VecContext(std::vector<Value>& vars) : vars_(&vars) {}
  Value read(VarRef ref) const override;
  void write(VarRef ref, Value value) override;

 private:
  std::vector<Value>* vars_;
};

enum class Op {
  kLit,   // literal constant
  kVar,   // variable reference
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  kMin, kMax, kAbs,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot,
  kIte,   // if-then-else
};

/// Immutable expression; cheap to copy (shared subtrees).
class Expr {
 public:
  /// Default-constructed expression is the literal 0; the "absent guard"
  /// convention uses Expr::top() (literal 1 = true).
  Expr();

  static Expr lit(Value v);
  static Expr var(VarRef ref);
  static Expr var(int scope, int index) { return var(VarRef{scope, index}); }
  static Expr local(int index) { return var(VarRef{0, index}); }
  /// The always-true guard.
  static Expr top() { return lit(1); }

  static Expr ite(Expr cond, Expr thenE, Expr elseE);
  static Expr min(Expr a, Expr b);
  static Expr max(Expr a, Expr b);
  static Expr abs(Expr a);

  Op op() const;
  Value literal() const;       // requires op() == kLit
  VarRef ref() const;          // requires op() == kVar
  std::size_t arity() const;
  const Expr& child(std::size_t i) const;

  /// Evaluates the expression in `ctx`. Throws EvalError on division by
  /// zero / modulo by zero.
  Value eval(const EvalContext& ctx) const;

  /// Evaluates a closed expression over a flat local variable vector.
  Value eval(std::vector<Value>& vars) const;

  /// True iff the expression is the literal 1 (used to skip trivial guards).
  bool isTrue() const;
  /// True iff the expression is a literal constant.
  bool isConst() const { return op() == Op::kLit; }

  /// Returns a copy with every variable reference rewritten by `f`.
  Expr mapVars(const std::function<VarRef(VarRef)>& f) const;

  /// Constant folding and algebraic identities (x+0, x*1, x&&true,
  /// ite(const, a, b), ...). Semantics-preserving: for every context the
  /// simplified expression evaluates to the same value, with the single
  /// exception that folding may *remove* a division by zero that the
  /// original would have raised inside a dead branch.
  Expr simplified() const;

  /// Appends all variable references (with repetition) to `out`.
  void collectVars(std::vector<VarRef>& out) const;

  /// Renders the expression; `name` maps references to display names.
  std::string toString(const std::function<std::string(VarRef)>& name) const;
  std::string toString() const;

  /// Structural equality.
  bool equals(const Expr& other) const;

  // Operator sugar (arithmetic / comparison / boolean).
  friend Expr operator+(Expr a, Expr b);
  friend Expr operator-(Expr a, Expr b);
  friend Expr operator*(Expr a, Expr b);
  friend Expr operator/(Expr a, Expr b);
  friend Expr operator%(Expr a, Expr b);
  friend Expr operator-(Expr a);
  friend Expr operator==(Expr a, Expr b);
  friend Expr operator!=(Expr a, Expr b);
  friend Expr operator<(Expr a, Expr b);
  friend Expr operator<=(Expr a, Expr b);
  friend Expr operator>(Expr a, Expr b);
  friend Expr operator>=(Expr a, Expr b);
  friend Expr operator&&(Expr a, Expr b);
  friend Expr operator||(Expr a, Expr b);
  friend Expr operator!(Expr a);

 private:
  struct Node;
  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  /// Folding constructor used by every combinator: constant operands fold
  /// at build time (lit(2) + lit(3) => lit(5), top() && e => e boolified)
  /// so the interpreter, the verifier and the bytecode compiler all see
  /// the smaller tree. Folds are semantics-preserving: a subexpression
  /// whose evaluation could raise (division by zero) is never dropped.
  static Expr make(Op op, std::vector<Expr> kids);
  /// Node construction without folding.
  static Expr makeRaw(Op op, std::vector<Expr> kids);

  std::shared_ptr<const Node> node_;
};

/// An assignment `target := value`.
struct Assign {
  VarRef target;
  Expr value;
};

/// Applies a block of assignments *sequentially* (each assignment sees the
/// writes of earlier ones) — the semantics of action blocks in BIP, which
/// is preserved by source-to-source fusion of components.
void applyAssignments(const std::vector<Assign>& assigns, EvalContext& ctx);

}  // namespace cbip::expr
