// Recursive-descent parser for the expression sub-language.
//
// Grammar (C-like precedence, lowest first):
//   expr     := ternary
//   ternary  := or ('?' expr ':' expr)?
//   or       := and ('||' and)*
//   and      := cmp ('&&' cmp)*
//   cmp      := sum (('=='|'!='|'<'|'<='|'>'|'>=') sum)?
//   sum      := term (('+'|'-') term)*
//   term     := unary (('*'|'/'|'%') unary)*
//   unary    := ('-'|'!') unary | primary
//   primary  := INT | IDENT | IDENT '(' expr (',' expr)* ')'   -- min/max/abs
//             | '(' expr ')' | 'true' | 'false'
//
// Identifiers (including dotted forms like `port.x`) are resolved to
// VarRefs by a caller-supplied resolver, so the same parser serves
// component guards, connector expressions and global predicates.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "expr/expr.hpp"

namespace cbip::expr {

/// Maps an identifier (e.g. "x" or "left.count") to a variable reference.
/// Should throw cbip::ModelError for unknown names.
using NameResolver = std::function<VarRef(const std::string&)>;

/// Error thrown on malformed expression text; carries the offset.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what), offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_ = 0;
};

/// Parses `text` completely into an expression. Throws ParseError on
/// syntax errors and propagates resolver exceptions for unknown names.
Expr parseExpr(std::string_view text, const NameResolver& resolve);

}  // namespace cbip::expr
