#include "expr/compile.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cbip::expr {

namespace {

// Telemetry (src/obs): counts only, never steers evaluation.
const obs::Counter g_batchBlocks("vm.batch.blocks");
const obs::Counter g_batchLanes("vm.batch.block_lanes");
const obs::Counter g_batchScalarOps("vm.batch.scalar_ops");
const obs::Counter g_batchReplays("vm.batch.replays");

std::atomic<bool>& compileFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CBIP_NO_COMPILE");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

std::atomic<bool>& fuseFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CBIP_NO_FUSE");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

std::atomic<bool>& analyzeFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CBIP_NO_ANALYZE");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

std::atomic<bool>& threadedFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CBIP_NO_THREADED");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

/// Stack slots evaluation needs for `e` (an upper bound once folding
/// shrinks the program; postfix needs max(lhs, 1 + rhs) for binaries).
int stackNeed(const Expr& e) {
  switch (e.op()) {
    case Op::kLit:
    case Op::kVar:
      return 1;
    case Op::kNeg:
    case Op::kAbs:
    case Op::kNot:
      return stackNeed(e.child(0));
    case Op::kAnd:
    case Op::kOr: {
      // Branches run at the same depth as the left operand (the jumps pop
      // it); the constant-left fold may append "Push 0; kNe" one slot
      // above the right operand, hence the floor of 2.
      int need = 2;
      for (std::size_t i = 0; i < e.arity(); ++i) {
        const int k = stackNeed(e.child(i));
        if (k > need) need = k;
      }
      return need;
    }
    case Op::kIte: {
      // Branches run at the same depth as the condition (jumps pop it).
      int need = 1;
      for (std::size_t i = 0; i < e.arity(); ++i) {
        const int k = stackNeed(e.child(i));
        if (k > need) need = k;
      }
      return need;
    }
    default: {
      const int a = stackNeed(e.child(0));
      const int b = 1 + stackNeed(e.child(1));
      return a > b ? a : b;
    }
  }
}

// Lowering folds constant subprograms even though the Expr builders
// already fold at construction (Expr::make): the compiler must stay
// correct for any tree handed to it, independent of which builder
// invariants happen to hold upstream.
//
// In CSE mode (compileFused) the compiler additionally value-numbers
// non-leaf subexpressions across the guard/action sequence: a subtree
// occurring more than once is parked in a temp register (kTee) at its
// first *unconditionally evaluated* occurrence and reloaded (kLoadTmp)
// at later ones. Three rules keep this exact:
//   * definitions only outside short-circuit right operands and ite
//     branches (condDepth_ == 0), so a recorded temp was always actually
//     computed — a conditional occurrence may reuse but never define;
//   * an assignment to slot s invalidates every recorded temp whose
//     subtree reads s (the next occurrence recomputes and re-parks);
//   * reuse never changes error behaviour: operator outcomes (value or
//     EvalError) are deterministic functions of the operand values, so a
//     reused result's recomputation could neither differ nor raise.
class Compiler {
 public:
  explicit Compiler(const SlotMap& slots, bool cse = false) : slots_(&slots), cse_(cse) {}

  std::vector<Instr> lower(const Expr& e) {
    emit(e);
    return std::move(code_);
  }

  /// Lowers the fused guarded command (see compileFused). Out-params
  /// report the temp-register count and whether any kStore was emitted.
  std::vector<Instr> lowerFused(const Expr& guard, std::span<const Assign> actions,
                                int& tempCount, bool& hasStores) {
    for (const Assign& a : actions) countCandidates(a.value);
    const bool hasGuard = !guard.isTrue();
    std::vector<std::size_t> failJumps;  // jumps to patch to the FAIL label
    bool dead = false;                   // guard folded to constant false
    if (hasGuard) {
      countCandidates(guard);
      // Jumping-code lowering: the guard's short-circuit branches target
      // the action suffix (true) and the FAIL label (false) directly —
      // no boolean is materialized and re-tested at the boundary.
      std::vector<std::size_t> trueJumps;
      const Cond r = emitCond(guard, trueJumps, failJumps);
      // A guard folded to a literal resolves the conditional skip at
      // compile time (a discarded action suffix removes no error or
      // variable read — it would never have executed).
      dead = r == Cond::kFalse;
      for (std::size_t j : trueJumps) patch(j);  // true exits fall into the suffix
    }
    if (!dead) {
      for (const Assign& a : actions) {
        emit(a.value);
        const int slot = (*slots_)(a.target);
        require(slot >= 0, "compileFused: SlotMap returned a negative slot");
        code_.push_back(Instr{OpCode::kStore, slot, 0});
        hasStores = true;
        invalidateReaders(slot);
      }
    }
    pushLit(dead ? 0 : 1);
    if (!failJumps.empty()) {
      const std::size_t endJump = emitJump(OpCode::kJump);
      for (std::size_t j : failJumps) patch(j);
      pushLit(0);
      patch(endJump);
    }
    tempCount = tempCount_;
    return std::move(code_);
  }

 private:
  /// One parked common subexpression: its structural key, the temp
  /// register holding its value, and the frame slots it reads (for
  /// clobber invalidation). Linear scans are fine at guard/action sizes.
  struct AvailEntry {
    std::string key;
    int temp = 0;
    std::vector<int> reads;
  };

  /// Structural identity key of a subtree (same key <=> same value in the
  /// same frame, since all units share one SlotMap).
  static void appendKey(const Expr& e, std::string& out) {
    switch (e.op()) {
      case Op::kLit:
        out += 'L';
        out += std::to_string(e.literal());
        return;
      case Op::kVar:
        out += 'V';
        out += std::to_string(e.ref().scope);
        out += ',';
        out += std::to_string(e.ref().index);
        return;
      default:
        out += '(';
        out += std::to_string(static_cast<int>(e.op()));
        for (std::size_t i = 0; i < e.arity(); ++i) {
          out += ' ';
          appendKey(e.child(i), out);
        }
        out += ')';
        return;
    }
  }

  static std::string keyOf(const Expr& e) {
    std::string out;
    appendKey(e, out);
    return out;
  }

  /// Counts every non-leaf subtree occurrence; keys seen >= 2 times are
  /// CSE candidates. Occurrences inside branches that later fold away are
  /// over-counted, which costs at most one unused kTee.
  void countCandidates(const Expr& e) {
    if (e.op() == Op::kLit || e.op() == Op::kVar) return;
    ++occurrences_[keyOf(e)];
    for (std::size_t i = 0; i < e.arity(); ++i) countCandidates(e.child(i));
  }

  void invalidateReaders(int slot) {
    for (std::size_t i = avail_.size(); i-- > 0;) {
      bool reads = false;
      for (int r : avail_[i].reads) reads = reads || r == slot;
      if (reads) avail_.erase(avail_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  const AvailEntry* findAvail(const std::string& key) const {
    for (const AvailEntry& a : avail_) {
      if (a.key == key) return &a;
    }
    return nullptr;
  }

  /// Outcome of a jumping-code lowering: kNormal emitted code whose
  /// fall-through means TRUE (with registered true/false jump sites);
  /// kTrue/kFalse mean the condition folded to a compile-time constant
  /// and NOTHING was emitted or registered.
  enum class Cond { kNormal, kTrue, kFalse };

  /// Truelist/falselist backpatching (the classic jumping-code scheme):
  /// lowers `e` in *condition* position. Control falls through the
  /// emitted code iff `e` is true; jumps appended to `tj` mean true and
  /// jumps appended to `fj` mean false — both carry placeholder targets
  /// the caller patches to the ultimate destinations (action suffix,
  /// FAIL label, materialization sites). Nested && / || therefore jump
  /// straight to where the value is consumed, with no intermediate 0/1
  /// materialization and re-test per nesting level.
  ///
  /// Constant folding matches the value path exactly: only a left
  /// operand folded to a literal may discard its right operand (the
  /// discard removes no error or variable read — the operand would never
  /// have executed).
  Cond emitCond(const Expr& e, std::vector<std::size_t>& tj, std::vector<std::size_t>& fj) {
    switch (e.op()) {
      case Op::kAnd: {
        std::vector<std::size_t> aTrue;
        const Cond ra = emitCond(e.child(0), aTrue, fj);
        if (ra == Cond::kFalse) return Cond::kFalse;  // rhs discarded: lhs is a literal
        if (ra == Cond::kTrue) return emitCond(e.child(1), tj, fj);
        for (std::size_t j : aTrue) patch(j);  // lhs-true continues at the rhs
        ++condDepth_;  // the rhs may be skipped at run time
        const Cond rb = emitCond(e.child(1), tj, fj);
        --condDepth_;
        // A literal rhs folds into the control flow: true falls through,
        // false turns the lhs-true path into an unconditional fail.
        if (rb == Cond::kFalse) fj.push_back(emitJump(OpCode::kJump));
        return Cond::kNormal;
      }
      case Op::kOr: {
        std::vector<std::size_t> aFalse;
        const Cond ra = emitCond(e.child(0), tj, aFalse);
        if (ra == Cond::kTrue) return Cond::kTrue;  // rhs discarded: lhs is a literal
        if (ra == Cond::kFalse) return emitCond(e.child(1), tj, fj);
        tj.push_back(emitJump(OpCode::kJump));  // lhs fall-through means true
        for (std::size_t j : aFalse) patch(j);  // lhs-false continues at the rhs
        ++condDepth_;
        const Cond rb = emitCond(e.child(1), tj, fj);
        --condDepth_;
        if (rb == Cond::kFalse) fj.push_back(emitJump(OpCode::kJump));
        return Cond::kNormal;
      }
      case Op::kNot: {
        const Expr& c = e.child(0);
        if (c.op() == Op::kAnd || c.op() == Op::kOr || c.op() == Op::kNot) {
          // Recursive flip: the child's true exits route to our false
          // list and vice versa; the child's fall-through (child true =
          // we false) needs one unconditional jump to FAIL.
          std::vector<std::size_t> childTrue;
          const Cond r = emitCond(c, childTrue, tj);
          if (r == Cond::kTrue) return Cond::kFalse;
          if (r == Cond::kFalse) return Cond::kTrue;
          fj.push_back(emitJump(OpCode::kJump));
          for (std::size_t j : childTrue) fj.push_back(j);
          return Cond::kNormal;
        }
        // Value child: one inverted test replaces kNot + kJumpIfZero.
        const std::size_t from = code_.size();
        emit(c);
        if (constSince(from)) {
          const Value v = code_.back().imm;
          code_.pop_back();
          return v != 0 ? Cond::kFalse : Cond::kTrue;
        }
        fj.push_back(emitJump(OpCode::kJumpIfNonZero));
        return Cond::kNormal;
      }
      default: {
        // Value position (comparisons, arithmetic, ite, leaves): evaluate
        // and test once. emit() keeps folding and CSE reuse intact.
        const std::size_t from = code_.size();
        emit(e);
        if (constSince(from)) {
          const Value v = code_.back().imm;
          code_.pop_back();
          return v != 0 ? Cond::kTrue : Cond::kFalse;
        }
        fj.push_back(emitJump(OpCode::kJumpIfZero));
        return Cond::kNormal;
      }
    }
  }

  /// Materializes a condition as a 0/1 value (the && / || value path):
  /// one truelist/falselist lowering with a single Push 1 / Push 0 pair
  /// at the end, however deep the chain.
  void emitBoolValue(const Expr& e) {
    std::vector<std::size_t> tj;
    std::vector<std::size_t> fj;
    const Cond r = emitCond(e, tj, fj);
    if (r != Cond::kNormal) {
      pushLit(r == Cond::kTrue ? 1 : 0);
      return;
    }
    for (std::size_t j : tj) patch(j);
    pushLit(1);
    if (fj.empty()) return;  // no false exits registered
    const std::size_t endJ = emitJump(OpCode::kJump);
    for (std::size_t j : fj) patch(j);
    pushLit(0);
    patch(endJ);
  }

  /// True iff the instructions emitted since `from` are one literal push.
  bool constSince(std::size_t from) const {
    return code_.size() == from + 1 && code_.back().op == OpCode::kPush;
  }

  void pushLit(Value v) { code_.push_back(Instr{OpCode::kPush, 0, v}); }

  std::int32_t here() const { return static_cast<std::int32_t>(code_.size()); }

  /// Emits a jump with a placeholder target; patch later.
  std::size_t emitJump(OpCode op) {
    code_.push_back(Instr{op, -1, 0});
    return code_.size() - 1;
  }

  void patch(std::size_t at) { code_[at].arg = here(); }

  static bool applyBinary(Op op, Value a, Value b, Value& out) {
    const auto toBool = [](bool c) { return c ? Value{1} : Value{0}; };
    switch (op) {
      case Op::kAdd: out = wrapAdd(a, b); return true;
      case Op::kSub: out = wrapSub(a, b); return true;
      case Op::kMul: out = wrapMul(a, b); return true;
      case Op::kDiv:
        if (b == 0 || divOverflows(a, b)) return false;  // keep the runtime error
        out = a / b;
        return true;
      case Op::kMod:
        if (b == 0 || divOverflows(a, b)) return false;
        out = a % b;
        return true;
      case Op::kMin: out = a < b ? a : b; return true;
      case Op::kMax: out = a > b ? a : b; return true;
      case Op::kEq: out = toBool(a == b); return true;
      case Op::kNe: out = toBool(a != b); return true;
      case Op::kLt: out = toBool(a < b); return true;
      case Op::kLe: out = toBool(a <= b); return true;
      case Op::kGt: out = toBool(a > b); return true;
      case Op::kGe: out = toBool(a >= b); return true;
      default: return false;
    }
  }

  static OpCode binaryOpcode(Op op) {
    switch (op) {
      case Op::kAdd: return OpCode::kAdd;
      case Op::kSub: return OpCode::kSub;
      case Op::kMul: return OpCode::kMul;
      case Op::kDiv: return OpCode::kDiv;
      case Op::kMod: return OpCode::kMod;
      case Op::kMin: return OpCode::kMin;
      case Op::kMax: return OpCode::kMax;
      case Op::kEq: return OpCode::kEq;
      case Op::kNe: return OpCode::kNe;
      case Op::kLt: return OpCode::kLt;
      case Op::kLe: return OpCode::kLe;
      case Op::kGt: return OpCode::kGt;
      case Op::kGe: return OpCode::kGe;
      default: throw ModelError("compile: not a binary operator");
    }
  }

  /// Emission entry point: in CSE mode, candidate subtrees reuse a parked
  /// temp when one is available and park their value when evaluated
  /// unconditionally; everything else lowers structurally via emitNode.
  void emit(const Expr& e) {
    if (!cse_ || e.op() == Op::kLit || e.op() == Op::kVar) {
      emitNode(e);
      return;
    }
    std::string key = keyOf(e);
    const auto it = occurrences_.find(key);
    if (it == occurrences_.end() || it->second < 2) {
      emitNode(e);
      return;
    }
    if (const AvailEntry* a = findAvail(key)) {
      code_.push_back(Instr{OpCode::kLoadTmp, a->temp, 0});
      return;
    }
    // Park the value only when this occurrence always executes (reuse
    // from a skipped branch would read garbage) and some occurrence lies
    // *outside* the candidate currently being defined: a subtree whose
    // count equals its defining ancestor's occurs only inside it, and all
    // its later occurrences vanish into that ancestor's kLoadTmp — a tee
    // would never be read.
    const bool mayDefine = condDepth_ == 0 && it->second > definingCount_;
    const int savedCount = definingCount_;
    if (mayDefine) definingCount_ = it->second;
    const std::size_t from = code_.size();
    emitNode(e);
    definingCount_ = savedCount;
    // A fold to a literal also skips the tee: caching a constant saves
    // nothing.
    if (mayDefine && !constSince(from)) {
      AvailEntry entry;
      entry.key = std::move(key);
      entry.temp = tempCount_++;
      std::vector<VarRef> refs;
      e.collectVars(refs);
      entry.reads.reserve(refs.size());
      for (const VarRef& r : refs) entry.reads.push_back((*slots_)(r));
      code_.push_back(Instr{OpCode::kTee, entry.temp, 0});
      avail_.push_back(std::move(entry));
    }
  }

  void emitNode(const Expr& e) {
    switch (e.op()) {
      case Op::kLit:
        pushLit(e.literal());
        return;
      case Op::kVar: {
        const int slot = (*slots_)(e.ref());
        require(slot >= 0, "compile: SlotMap returned a negative slot");
        code_.push_back(Instr{OpCode::kLoad, slot, 0});
        return;
      }
      case Op::kNeg:
      case Op::kAbs:
      case Op::kNot: {
        const std::size_t from = code_.size();
        emit(e.child(0));
        if (constSince(from)) {
          Value& v = code_.back().imm;
          v = e.op() == Op::kNeg ? wrapNeg(v) : e.op() == Op::kAbs ? wrapAbs(v) : (v == 0 ? 1 : 0);
          return;
        }
        code_.push_back(Instr{e.op() == Op::kNeg   ? OpCode::kNeg
                              : e.op() == Op::kAbs ? OpCode::kAbs
                                                   : OpCode::kNot,
                              0, 0});
        return;
      }
      case Op::kAnd:
      case Op::kOr:
        // Value position: one jumping-code lowering with a single
        // materialization at the top, however deep the chain.
        emitBoolValue(e);
        return;
      case Op::kIte: {
        // The condition lowers as jumping code too (an && / || condition
        // branches straight to then/else with no materialization).
        std::vector<std::size_t> tj;
        std::vector<std::size_t> fj;
        const Cond r = emitCond(e.child(0), tj, fj);
        if (r != Cond::kNormal) {
          emit(e.child(r == Cond::kTrue ? 1 : 2));  // the other branch would never run
          return;
        }
        for (std::size_t j : tj) patch(j);
        ++condDepth_;  // only one branch executes
        emit(e.child(1));
        const std::size_t endJ = emitJump(OpCode::kJump);
        for (std::size_t j : fj) patch(j);
        emit(e.child(2));
        --condDepth_;
        patch(endJ);
        return;
      }
      default: {  // binary arithmetic / comparison
        const std::size_t a0 = code_.size();
        emit(e.child(0));
        const bool aConst = constSince(a0);
        const std::size_t b0 = code_.size();
        emit(e.child(1));
        Value folded = 0;
        if (aConst && constSince(b0) &&
            applyBinary(e.op(), code_[a0].imm, code_[b0].imm, folded)) {
          code_.resize(a0);
          pushLit(folded);
          return;
        }
        code_.push_back(Instr{binaryOpcode(e.op()), 0, 0});
        return;
      }
    }
  }

  const SlotMap* slots_;
  std::vector<Instr> code_;
  bool cse_ = false;
  int condDepth_ = 0;      // > 0 inside short-circuit rhs / ite branches
  int definingCount_ = 0;  // occurrence count of the candidate being defined
  int tempCount_ = 0;
  std::unordered_map<std::string, int> occurrences_;
  std::vector<AvailEntry> avail_;
};

/// Lowers an expression into the jump-free eager batch form (see
/// runBatch): short-circuit && / || become kAndB / kOrB and ite becomes
/// kSelect, which is exact only when every conditionally-evaluated
/// operand is provably raise-free (guards are pure, so eagerness has no
/// other observable effect). `ok()` reports whether the whole tree
/// qualified; an unqualified tree gets no batch form and runs scalar.
class BatchLowerer {
 public:
  explicit BatchLowerer(const SlotMap& slots) : slots_(&slots) {}

  std::vector<Instr> lower(const Expr& e, int& maxStack) {
    emit(e);
    maxStack = maxDepth_;
    if (!ok_) return {};
    return std::move(code_);
  }

 private:
  /// Conservative raise-freedom: division and modulo may raise unless
  /// the divisor is a literal outside {0, -1} (a literal -1 admits the
  /// INT64_MIN / -1 overflow raise). Everything else is total.
  static bool mayRaise(const Expr& e) {
    if (e.op() == Op::kDiv || e.op() == Op::kMod) {
      const Expr& d = e.child(1);
      if (!(d.op() == Op::kLit && d.literal() != 0 && d.literal() != -1)) return true;
    }
    for (std::size_t i = 0; i < e.arity(); ++i) {
      if (mayRaise(e.child(i))) return true;
    }
    return false;
  }

  void push(Instr in, int delta) {
    code_.push_back(in);
    depth_ += delta;
    if (depth_ > maxDepth_) maxDepth_ = depth_;
  }

  void emit(const Expr& e) {
    if (!ok_) return;
    switch (e.op()) {
      case Op::kLit:
        push(Instr{OpCode::kPush, 0, e.literal()}, 1);
        return;
      case Op::kVar: {
        const int slot = (*slots_)(e.ref());
        require(slot >= 0, "batch lowering: SlotMap returned a negative slot");
        push(Instr{OpCode::kLoad, slot, 0}, 1);
        return;
      }
      case Op::kNeg:
      case Op::kAbs:
      case Op::kNot:
        emit(e.child(0));
        push(Instr{e.op() == Op::kNeg   ? OpCode::kNeg
                   : e.op() == Op::kAbs ? OpCode::kAbs
                                        : OpCode::kNot,
                   0, 0},
             0);
        return;
      case Op::kAnd:
      case Op::kOr:
        if (mayRaise(e.child(1))) {
          ok_ = false;
          return;
        }
        emit(e.child(0));
        emit(e.child(1));
        push(Instr{e.op() == Op::kAnd ? OpCode::kAndB : OpCode::kOrB, 0, 0}, -1);
        return;
      case Op::kIte:
        if (mayRaise(e.child(1)) || mayRaise(e.child(2))) {
          ok_ = false;
          return;
        }
        emit(e.child(0));
        emit(e.child(1));
        emit(e.child(2));
        push(Instr{OpCode::kSelect, 0, 0}, -2);
        return;
      default: {  // binary arithmetic / comparison
        emit(e.child(0));
        emit(e.child(1));
        OpCode op;
        switch (e.op()) {
          case Op::kAdd: op = OpCode::kAdd; break;
          case Op::kSub: op = OpCode::kSub; break;
          case Op::kMul: op = OpCode::kMul; break;
          case Op::kDiv: op = OpCode::kDiv; break;
          case Op::kMod: op = OpCode::kMod; break;
          case Op::kMin: op = OpCode::kMin; break;
          case Op::kMax: op = OpCode::kMax; break;
          case Op::kEq: op = OpCode::kEq; break;
          case Op::kNe: op = OpCode::kNe; break;
          case Op::kLt: op = OpCode::kLt; break;
          case Op::kLe: op = OpCode::kLe; break;
          case Op::kGt: op = OpCode::kGt; break;
          case Op::kGe: op = OpCode::kGe; break;
          default: throw ModelError("batch lowering: not a binary operator");
        }
        push(Instr{op, 0, 0}, -1);
        return;
      }
    }
  }

  const SlotMap* slots_;
  std::vector<Instr> code_;
  bool ok_ = true;
  int depth_ = 0;
  int maxDepth_ = 0;
};

}  // namespace

Value ExprProgram::run(std::span<const Value> frame, std::int32_t base) const {
  // A read-only frame must never meet a kStore (exec would write through
  // it); fused programs go through the mutable overload below.
  requireEval(!hasStores_, "ExprProgram::run: fused program requires a mutable frame");
  // Guards and actions are small; spill to the heap only for pathological
  // nesting so the common case stays allocation-free. CSE temp registers
  // live above the evaluation stack in the same buffer.
  constexpr int kInlineStack = 32;
  Value inlineBuf[kInlineStack];
  std::vector<Value> heapBuf;
  Value* stack = inlineBuf;
  if (maxStack_ + tempCount_ > kInlineStack) {
    heapBuf.resize(static_cast<std::size_t>(maxStack_ + tempCount_));
    stack = heapBuf.data();
  }
#if CBIP_HAS_COMPUTED_GOTO
  if (!threaded_.empty() && threadedDispatchEnabled()) return execThreaded(frame, base, stack);
#endif
  return exec(frame, base, stack);
}

Value ExprProgram::run(std::span<Value> frame, std::int32_t base) const {
  constexpr int kInlineStack = 32;
  Value inlineBuf[kInlineStack];
  std::vector<Value> heapBuf;
  Value* stack = inlineBuf;
  if (maxStack_ + tempCount_ > kInlineStack) {
    heapBuf.resize(static_cast<std::size_t>(maxStack_ + tempCount_));
    stack = heapBuf.data();
  }
#if CBIP_HAS_COMPUTED_GOTO
  if (!threaded_.empty() && threadedDispatchEnabled()) return execThreaded(frame, base, stack);
#endif
  return exec(frame, base, stack);
}

void ExprProgram::runBatch(std::span<const BatchOp> ops, std::span<const Value> frame,
                           std::span<Value> out) {
  requireEval(ops.size() == out.size(), "ExprProgram::runBatch: ops/out size mismatch");
  constexpr int kInlineStack = 32;
  Value inlineBuf[kInlineStack];
  std::vector<Value> heapBuf;
  Value* stack = inlineBuf;
  int need = 0;
  for (const BatchOp& op : ops) {
    requireEval(op.program != nullptr && !op.program->empty() && !op.program->hasStores_,
                "ExprProgram::runBatch: empty or frame-writing program in batch");
    const int n = op.program->maxStack_ + op.program->tempCount_;
    if (n > need) need = n;
  }
  if (need > kInlineStack) {
    heapBuf.resize(static_cast<std::size_t>(need));
    stack = heapBuf.data();
  }
  const bool accelerated = threadedDispatchEnabled();
  // Lane-contiguous stacks for the block executor, sized for the widest
  // batch form in the batch (lazily, most batches never need it).
  std::vector<Value> laneBuf;
  const std::size_t n = ops.size();
  std::size_t i = 0;
  while (i < n) {
    const ExprProgram& p = *ops[i].program;
    std::size_t j = i + 1;
    if (accelerated && p.hasBatchForm()) {
      while (j < n && ops[j].program == &p) ++j;
      if (j - i >= kMinBlockRun) {
        // Strip-mine the run in blocks of up to kBatchLanes bases. An
        // EvalError anywhere in a block falls back to scalar replay of
        // that block from its first op, reproducing the scalar error
        // point and partial-out contract exactly (the batch form is pure,
        // so the abandoned block left no trace).
        for (std::size_t b = i; b < j; b += kBatchLanes) {
          const std::size_t lanes = std::min(kBatchLanes, j - b);
          const std::size_t needLanes = static_cast<std::size_t>(p.batchMaxStack_) * lanes;
          if (laneBuf.size() < needLanes) laneBuf.resize(needLanes);
          g_batchBlocks.add();
          g_batchLanes.add(lanes);
          try {
            p.execBlock(ops.subspan(b, lanes), frame, laneBuf.data(), out.subspan(b, lanes));
          } catch (const EvalError&) {
            g_batchReplays.add();
            for (std::size_t k = b; k < b + lanes; ++k) {
              out[k] = p.exec(frame, ops[k].base, stack);
            }
            requireEval(false, "runBatch: block raised but scalar replay did not");
          }
        }
        i = j;
        continue;
      }
    }
    g_batchScalarOps.add(j - i);
    for (; i < j; ++i) {
#if CBIP_HAS_COMPUTED_GOTO
      if (accelerated && !ops[i].program->threaded_.empty()) {
        out[i] = ops[i].program->execThreaded(frame, ops[i].base, stack);
        continue;
      }
#endif
      out[i] = ops[i].program->exec(frame, ops[i].base, stack);
    }
  }
}

void ExprProgram::execBlock(std::span<const BatchOp> ops, std::span<const Value> frame,
                            Value* lanes, std::span<Value> out) const {
  // One jump-free instruction stream over `ops.size()` frame bases in
  // lockstep. The stack is an array of lane rows: depth d lives at
  // lanes[d * nLanes .. d * nLanes + nLanes), so every per-opcode inner
  // loop walks contiguous memory (the strip-mined loops below are the
  // vectorization surface).
  const std::size_t nLanes = ops.size();
  const Instr* code = batch_.data();
  const std::size_t n = batch_.size();
  const Value* f = frame.data();
  std::size_t sp = 0;  // stack depth in rows
  for (std::size_t pc = 0; pc < n; ++pc) {
    const Instr& in = code[pc];
    switch (in.op) {
      case OpCode::kPush: {
        Value* row = lanes + sp * nLanes;
        for (std::size_t l = 0; l < nLanes; ++l) row[l] = in.imm;
        ++sp;
        break;
      }
      case OpCode::kLoad: {
        Value* row = lanes + sp * nLanes;
        for (std::size_t l = 0; l < nLanes; ++l) {
          row[l] = f[static_cast<std::size_t>(ops[l].base + in.arg)];
        }
        ++sp;
        break;
      }
#define CBIP_BLOCK_BINOP(opcode, expr_)                               \
  case OpCode::opcode: {                                              \
    --sp;                                                             \
    Value* a = lanes + (sp - 1) * nLanes;                             \
    const Value* b = lanes + sp * nLanes;                             \
    for (std::size_t l = 0; l < nLanes; ++l) a[l] = (expr_);          \
    break;                                                            \
  }
      CBIP_BLOCK_BINOP(kAdd, wrapAdd(a[l], b[l]))
      CBIP_BLOCK_BINOP(kSub, wrapSub(a[l], b[l]))
      CBIP_BLOCK_BINOP(kMul, wrapMul(a[l], b[l]))
      CBIP_BLOCK_BINOP(kMin, a[l] < b[l] ? a[l] : b[l])
      CBIP_BLOCK_BINOP(kMax, a[l] > b[l] ? a[l] : b[l])
      CBIP_BLOCK_BINOP(kEq, a[l] == b[l] ? 1 : 0)
      CBIP_BLOCK_BINOP(kNe, a[l] != b[l] ? 1 : 0)
      CBIP_BLOCK_BINOP(kLt, a[l] < b[l] ? 1 : 0)
      CBIP_BLOCK_BINOP(kLe, a[l] <= b[l] ? 1 : 0)
      CBIP_BLOCK_BINOP(kGt, a[l] > b[l] ? 1 : 0)
      CBIP_BLOCK_BINOP(kGe, a[l] >= b[l] ? 1 : 0)
      CBIP_BLOCK_BINOP(kAndB, (a[l] != 0 && b[l] != 0) ? 1 : 0)
      CBIP_BLOCK_BINOP(kOrB, (a[l] != 0 || b[l] != 0) ? 1 : 0)
#undef CBIP_BLOCK_BINOP
      case OpCode::kDiv:
      case OpCode::kMod: {
        // The checks stay per lane; a raise aborts the whole block and
        // the caller replays it scalar (which re-raises at the scalar
        // error point).
        --sp;
        Value* a = lanes + (sp - 1) * nLanes;
        const Value* b = lanes + sp * nLanes;
        const bool isDiv = in.op == OpCode::kDiv;
        for (std::size_t l = 0; l < nLanes; ++l) {
          requireEval(b[l] != 0, isDiv ? "division by zero" : "modulo by zero");
          requireEval(!divOverflows(a[l], b[l]), isDiv ? "integer overflow in division"
                                                       : "integer overflow in modulo");
          a[l] = isDiv ? a[l] / b[l] : a[l] % b[l];
        }
        break;
      }
      case OpCode::kNeg:
      case OpCode::kAbs:
      case OpCode::kNot: {
        Value* a = lanes + (sp - 1) * nLanes;
        if (in.op == OpCode::kNeg) {
          for (std::size_t l = 0; l < nLanes; ++l) a[l] = wrapNeg(a[l]);
        } else if (in.op == OpCode::kAbs) {
          for (std::size_t l = 0; l < nLanes; ++l) a[l] = wrapAbs(a[l]);
        } else {
          for (std::size_t l = 0; l < nLanes; ++l) a[l] = a[l] == 0 ? 1 : 0;
        }
        break;
      }
      case OpCode::kSelect: {
        sp -= 2;
        Value* c = lanes + (sp - 1) * nLanes;
        const Value* t = lanes + sp * nLanes;
        const Value* e = lanes + (sp + 1) * nLanes;
        for (std::size_t l = 0; l < nLanes; ++l) c[l] = c[l] != 0 ? t[l] : e[l];
        break;
      }
      default:
        // Jumps, stores and CSE temps never reach a batch form.
        requireEval(false, "execBlock: foreign opcode in batch form");
    }
  }
  requireEval(sp == 1, "execBlock: corrupt batch form (stack imbalance)");
  for (std::size_t l = 0; l < nLanes; ++l) out[l] = lanes[l];
}

Value ExprProgram::exec(std::span<const Value> frame, std::int32_t base, Value* stack) const {
  const Instr* code = code_.data();
  const std::size_t n = code_.size();
  // Temp registers sit above the evaluation stack in the caller's buffer.
  // The const_cast below is only reached through kStore, which only fused
  // programs hold, and those are gated onto the mutable run() overload —
  // a frame that arrives here const is never written.
  Value* temps = stack + maxStack_;
  Value* frameMut = const_cast<Value*>(frame.data());
  std::size_t pc = 0;
  int sp = 0;
  while (pc < n) {
    const Instr& in = code[pc++];
    switch (in.op) {
      case OpCode::kPush: stack[sp++] = in.imm; break;
      case OpCode::kLoad: stack[sp++] = frame[static_cast<std::size_t>(base + in.arg)]; break;
      case OpCode::kAdd: --sp; stack[sp - 1] = wrapAdd(stack[sp - 1], stack[sp]); break;
      case OpCode::kSub: --sp; stack[sp - 1] = wrapSub(stack[sp - 1], stack[sp]); break;
      case OpCode::kMul: --sp; stack[sp - 1] = wrapMul(stack[sp - 1], stack[sp]); break;
      case OpCode::kDiv:
        --sp;
        requireEval(stack[sp] != 0, "division by zero");
        requireEval(!divOverflows(stack[sp - 1], stack[sp]), "integer overflow in division");
        stack[sp - 1] /= stack[sp];
        break;
      case OpCode::kMod:
        --sp;
        requireEval(stack[sp] != 0, "modulo by zero");
        requireEval(!divOverflows(stack[sp - 1], stack[sp]), "integer overflow in modulo");
        stack[sp - 1] %= stack[sp];
        break;
      // The unchecked twins exist only downstream of an analysis proof
      // that the divisor excludes 0 and the INT64_MIN / -1 corner cannot
      // occur (relaxDivCheck); the elided requireEval calls are the whole
      // point of the relaxation.
      case OpCode::kDivUnchecked: --sp; stack[sp - 1] /= stack[sp]; break;
      case OpCode::kModUnchecked: --sp; stack[sp - 1] %= stack[sp]; break;
      case OpCode::kMin:
        --sp;
        if (stack[sp] < stack[sp - 1]) stack[sp - 1] = stack[sp];
        break;
      case OpCode::kMax:
        --sp;
        if (stack[sp] > stack[sp - 1]) stack[sp - 1] = stack[sp];
        break;
      case OpCode::kEq: --sp; stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1 : 0; break;
      case OpCode::kNe: --sp; stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1 : 0; break;
      case OpCode::kLt: --sp; stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1 : 0; break;
      case OpCode::kLe: --sp; stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1 : 0; break;
      case OpCode::kGt: --sp; stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1 : 0; break;
      case OpCode::kGe: --sp; stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1 : 0; break;
      case OpCode::kNeg: stack[sp - 1] = wrapNeg(stack[sp - 1]); break;
      case OpCode::kAbs: stack[sp - 1] = wrapAbs(stack[sp - 1]); break;
      case OpCode::kNot: stack[sp - 1] = stack[sp - 1] == 0 ? 1 : 0; break;
      case OpCode::kJump: pc = static_cast<std::size_t>(in.arg); break;
      case OpCode::kJumpIfZero:
        --sp;
        if (stack[sp] == 0) pc = static_cast<std::size_t>(in.arg);
        break;
      case OpCode::kJumpIfNonZero:
        --sp;
        if (stack[sp] != 0) pc = static_cast<std::size_t>(in.arg);
        break;
      case OpCode::kStore:
        --sp;
        frameMut[static_cast<std::size_t>(base + in.arg)] = stack[sp];
        break;
      case OpCode::kTee: temps[in.arg] = stack[sp - 1]; break;
      case OpCode::kLoadTmp: stack[sp++] = temps[in.arg]; break;
      // The eager connectives live in batch forms (execBlock); handled
      // here too so every opcode has a scalar semantics on both cores.
      case OpCode::kAndB:
        --sp;
        stack[sp - 1] = (stack[sp - 1] != 0 && stack[sp] != 0) ? 1 : 0;
        break;
      case OpCode::kOrB:
        --sp;
        stack[sp - 1] = (stack[sp - 1] != 0 || stack[sp] != 0) ? 1 : 0;
        break;
      case OpCode::kSelect:
        sp -= 2;
        stack[sp - 1] = stack[sp - 1] != 0 ? stack[sp] : stack[sp + 1];
        break;
    }
  }
  requireEval(sp == 1, "ExprProgram::run: corrupt program (stack imbalance)");
  return stack[0];
}

#if CBIP_HAS_COMPUTED_GOTO
Value ExprProgram::execThreaded(std::span<const Value> frame, std::int32_t base, Value* stack,
                                const void* const** labelsOut) const {
  // Handler label table, indexed by OpCode value, halt sentinel last.
  // The addresses are function-local, so finalize() fetches the table
  // through the labelsOut mode instead of duplicating it elsewhere.
  static const void* const kLabels[kOpCodeCount + 1] = {
      &&L_Push, &&L_Load,
      &&L_Add, &&L_Sub, &&L_Mul, &&L_Div, &&L_Mod,
      &&L_Min, &&L_Max,
      &&L_Eq, &&L_Ne, &&L_Lt, &&L_Le, &&L_Gt, &&L_Ge,
      &&L_Neg, &&L_Abs, &&L_Not,
      &&L_Jump, &&L_JumpIfZero, &&L_JumpIfNonZero,
      &&L_Store, &&L_Tee, &&L_LoadTmp,
      &&L_DivUnchecked, &&L_ModUnchecked,
      &&L_AndB, &&L_OrB, &&L_Select,
      &&L_Halt};
  if (labelsOut != nullptr) {
    *labelsOut = kLabels;
    return 0;
  }
  // Same state as exec(), but dispatch is one indirect goto per
  // instruction: `ip` walks the threaded form, each handler advances it
  // (jumps rebase it against `t`) and jumps straight to the next
  // handler. The halt sentinel appended by finalize() ends the walk — no
  // per-instruction bounds check anywhere. Every opcode body is the
  // switch core's, verbatim: the two cores are bit-identical, including
  // EvalError messages and order.
  const ThreadedInstr* const t = threaded_.data();
  const ThreadedInstr* ip = t;
  Value* temps = stack + maxStack_;
  Value* frameMut = const_cast<Value*>(frame.data());
  int sp = 0;
#define CBIP_NEXT() goto* (ip->label)
  CBIP_NEXT();
L_Push:
  stack[sp++] = ip->imm;
  ++ip;
  CBIP_NEXT();
L_Load:
  stack[sp++] = frame[static_cast<std::size_t>(base + ip->arg)];
  ++ip;
  CBIP_NEXT();
L_Add:
  --sp;
  stack[sp - 1] = wrapAdd(stack[sp - 1], stack[sp]);
  ++ip;
  CBIP_NEXT();
L_Sub:
  --sp;
  stack[sp - 1] = wrapSub(stack[sp - 1], stack[sp]);
  ++ip;
  CBIP_NEXT();
L_Mul:
  --sp;
  stack[sp - 1] = wrapMul(stack[sp - 1], stack[sp]);
  ++ip;
  CBIP_NEXT();
L_Div:
  --sp;
  requireEval(stack[sp] != 0, "division by zero");
  requireEval(!divOverflows(stack[sp - 1], stack[sp]), "integer overflow in division");
  stack[sp - 1] /= stack[sp];
  ++ip;
  CBIP_NEXT();
L_Mod:
  --sp;
  requireEval(stack[sp] != 0, "modulo by zero");
  requireEval(!divOverflows(stack[sp - 1], stack[sp]), "integer overflow in modulo");
  stack[sp - 1] %= stack[sp];
  ++ip;
  CBIP_NEXT();
L_Min:
  --sp;
  if (stack[sp] < stack[sp - 1]) stack[sp - 1] = stack[sp];
  ++ip;
  CBIP_NEXT();
L_Max:
  --sp;
  if (stack[sp] > stack[sp - 1]) stack[sp - 1] = stack[sp];
  ++ip;
  CBIP_NEXT();
L_Eq:
  --sp;
  stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1 : 0;
  ++ip;
  CBIP_NEXT();
L_Ne:
  --sp;
  stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1 : 0;
  ++ip;
  CBIP_NEXT();
L_Lt:
  --sp;
  stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1 : 0;
  ++ip;
  CBIP_NEXT();
L_Le:
  --sp;
  stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1 : 0;
  ++ip;
  CBIP_NEXT();
L_Gt:
  --sp;
  stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1 : 0;
  ++ip;
  CBIP_NEXT();
L_Ge:
  --sp;
  stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1 : 0;
  ++ip;
  CBIP_NEXT();
L_Neg:
  stack[sp - 1] = wrapNeg(stack[sp - 1]);
  ++ip;
  CBIP_NEXT();
L_Abs:
  stack[sp - 1] = wrapAbs(stack[sp - 1]);
  ++ip;
  CBIP_NEXT();
L_Not:
  stack[sp - 1] = stack[sp - 1] == 0 ? 1 : 0;
  ++ip;
  CBIP_NEXT();
L_Jump:
  ip = t + ip->arg;
  CBIP_NEXT();
L_JumpIfZero: {
  const ThreadedInstr* tgt = t + ip->arg;
  ++ip;
  --sp;
  if (stack[sp] == 0) ip = tgt;
  CBIP_NEXT();
}
L_JumpIfNonZero: {
  const ThreadedInstr* tgt = t + ip->arg;
  ++ip;
  --sp;
  if (stack[sp] != 0) ip = tgt;
  CBIP_NEXT();
}
L_Store:
  --sp;
  frameMut[static_cast<std::size_t>(base + ip->arg)] = stack[sp];
  ++ip;
  CBIP_NEXT();
L_Tee:
  temps[ip->arg] = stack[sp - 1];
  ++ip;
  CBIP_NEXT();
L_LoadTmp:
  stack[sp++] = temps[ip->arg];
  ++ip;
  CBIP_NEXT();
L_DivUnchecked:
  --sp;
  stack[sp - 1] /= stack[sp];
  ++ip;
  CBIP_NEXT();
L_ModUnchecked:
  --sp;
  stack[sp - 1] %= stack[sp];
  ++ip;
  CBIP_NEXT();
L_AndB:
  --sp;
  stack[sp - 1] = (stack[sp - 1] != 0 && stack[sp] != 0) ? 1 : 0;
  ++ip;
  CBIP_NEXT();
L_OrB:
  --sp;
  stack[sp - 1] = (stack[sp - 1] != 0 || stack[sp] != 0) ? 1 : 0;
  ++ip;
  CBIP_NEXT();
L_Select:
  sp -= 2;
  stack[sp - 1] = stack[sp - 1] != 0 ? stack[sp] : stack[sp + 1];
  ++ip;
  CBIP_NEXT();
L_Halt:
  requireEval(sp == 1, "ExprProgram::run: corrupt program (stack imbalance)");
  return stack[0];
#undef CBIP_NEXT
}
#endif  // CBIP_HAS_COMPUTED_GOTO

void ExprProgram::finalize() {
#if CBIP_HAS_COMPUTED_GOTO
  const void* const* labels = nullptr;
  execThreaded({}, 0, nullptr, &labels);
  threaded_.clear();
  threaded_.reserve(code_.size() + 1);
  for (const Instr& in : code_) {
    threaded_.push_back(ThreadedInstr{labels[static_cast<int>(in.op)], in.arg, in.imm});
  }
  // Halt sentinel: jump targets may legally equal code_.size() (patched
  // to the program end), and sequential fall-off lands here too.
  threaded_.push_back(ThreadedInstr{labels[kOpCodeCount], 0, 0});
#endif
}

bool ExprProgram::threadedInSync() const {
#if CBIP_HAS_COMPUTED_GOTO
  const void* const* labels = nullptr;
  execThreaded({}, 0, nullptr, &labels);
  if (threaded_.size() != code_.size() + 1) return false;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    if (threaded_[i].label != labels[static_cast<int>(code_[i].op)] ||
        threaded_[i].arg != code_[i].arg || threaded_[i].imm != code_[i].imm) {
      return false;
    }
  }
  return threaded_.back().label == labels[kOpCodeCount];
#else
  return true;
#endif
}

ExprProgram ExprProgram::constant(Value v) {
  ExprProgram p;
  p.code_.push_back(Instr{OpCode::kPush, 0, v});
  p.maxStack_ = 1;
  p.finalize();
  return p;
}

void ExprProgram::relaxDivCheck(std::size_t pc) {
  require(pc < code_.size(), "relaxDivCheck: pc out of range");
  Instr& in = code_[pc];
  if (in.op == OpCode::kDiv) {
    in.op = OpCode::kDivUnchecked;
  } else if (in.op == OpCode::kMod) {
    in.op = OpCode::kModUnchecked;
  } else {
    require(false, "relaxDivCheck: pc does not hold a checked division");
  }
  // Post-finalization mutation: the cached threaded form would otherwise
  // keep dispatching to the checked handler. The batch form keeps its
  // checked division on purpose — the relaxation proof says those checks
  // never fire, so the block path stays bit-identical without a rebuild.
  finalize();
}

ExprProgram compile(const Expr& e, const SlotMap& slots) {
  Compiler c(slots);
  ExprProgram p;
  p.code_ = c.lower(e);
  p.maxStack_ = stackNeed(e);
  // Guard programs are pure, so they may also get the jump-free eager
  // batch form runBatch block-executes (empty when the tree has a
  // conditionally-evaluated operand that may raise).
  p.batch_ = BatchLowerer(slots).lower(e, p.batchMaxStack_);
  p.finalize();
  return p;
}

ExprProgram compileLocal(const Expr& e) {
  return compile(e, [](VarRef r) {
    require(r.scope == 0, "compileLocal: non-local variable scope");
    return r.index;
  });
}

ExprProgram compileFused(const Expr& guard, std::span<const Assign> actions,
                         const SlotMap& slots) {
  Compiler c(slots, /*cse=*/true);
  ExprProgram p;
  p.code_ = c.lowerFused(guard, actions, p.tempCount_, p.hasStores_);
  // Stack need: the guard runs at depth 0 and each action value starts
  // again at depth 0 (kStore pops it); the result literal needs one slot.
  int need = 1;
  if (!guard.isTrue()) need = stackNeed(guard);
  for (const Assign& a : actions) {
    const int k = stackNeed(a.value);
    if (k > need) need = k;
  }
  p.maxStack_ = need;
  p.finalize();
  return p;
}

bool compilationEnabled() { return compileFlag().load(std::memory_order_relaxed); }

void setCompilationEnabled(bool on) { compileFlag().store(on, std::memory_order_relaxed); }

bool fusionEnabled() { return fuseFlag().load(std::memory_order_relaxed); }

void setFusionEnabled(bool on) { fuseFlag().store(on, std::memory_order_relaxed); }

bool analysisEnabled() { return analyzeFlag().load(std::memory_order_relaxed); }

void setAnalysisEnabled(bool on) { analyzeFlag().store(on, std::memory_order_relaxed); }

bool threadedDispatchEnabled() { return threadedFlag().load(std::memory_order_relaxed); }

void setThreadedDispatchEnabled(bool on) { threadedFlag().store(on, std::memory_order_relaxed); }

}  // namespace cbip::expr
