#include "expr/compile.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "util/require.hpp"

namespace cbip::expr {

namespace {

std::atomic<bool>& compileFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CBIP_NO_COMPILE");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

std::atomic<bool>& fuseFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CBIP_NO_FUSE");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

std::atomic<bool>& analyzeFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CBIP_NO_ANALYZE");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

/// Stack slots evaluation needs for `e` (an upper bound once folding
/// shrinks the program; postfix needs max(lhs, 1 + rhs) for binaries).
int stackNeed(const Expr& e) {
  switch (e.op()) {
    case Op::kLit:
    case Op::kVar:
      return 1;
    case Op::kNeg:
    case Op::kAbs:
    case Op::kNot:
      return stackNeed(e.child(0));
    case Op::kAnd:
    case Op::kOr: {
      // Branches run at the same depth as the left operand (the jumps pop
      // it); the constant-left fold may append "Push 0; kNe" one slot
      // above the right operand, hence the floor of 2.
      int need = 2;
      for (std::size_t i = 0; i < e.arity(); ++i) {
        const int k = stackNeed(e.child(i));
        if (k > need) need = k;
      }
      return need;
    }
    case Op::kIte: {
      // Branches run at the same depth as the condition (jumps pop it).
      int need = 1;
      for (std::size_t i = 0; i < e.arity(); ++i) {
        const int k = stackNeed(e.child(i));
        if (k > need) need = k;
      }
      return need;
    }
    default: {
      const int a = stackNeed(e.child(0));
      const int b = 1 + stackNeed(e.child(1));
      return a > b ? a : b;
    }
  }
}

// Lowering folds constant subprograms even though the Expr builders
// already fold at construction (Expr::make): the compiler must stay
// correct for any tree handed to it, independent of which builder
// invariants happen to hold upstream.
//
// In CSE mode (compileFused) the compiler additionally value-numbers
// non-leaf subexpressions across the guard/action sequence: a subtree
// occurring more than once is parked in a temp register (kTee) at its
// first *unconditionally evaluated* occurrence and reloaded (kLoadTmp)
// at later ones. Three rules keep this exact:
//   * definitions only outside short-circuit right operands and ite
//     branches (condDepth_ == 0), so a recorded temp was always actually
//     computed — a conditional occurrence may reuse but never define;
//   * an assignment to slot s invalidates every recorded temp whose
//     subtree reads s (the next occurrence recomputes and re-parks);
//   * reuse never changes error behaviour: operator outcomes (value or
//     EvalError) are deterministic functions of the operand values, so a
//     reused result's recomputation could neither differ nor raise.
class Compiler {
 public:
  explicit Compiler(const SlotMap& slots, bool cse = false) : slots_(&slots), cse_(cse) {}

  std::vector<Instr> lower(const Expr& e) {
    emit(e);
    return std::move(code_);
  }

  /// Lowers the fused guarded command (see compileFused). Out-params
  /// report the temp-register count and whether any kStore was emitted.
  std::vector<Instr> lowerFused(const Expr& guard, std::span<const Assign> actions,
                                int& tempCount, bool& hasStores) {
    for (const Assign& a : actions) countCandidates(a.value);
    const bool hasGuard = !guard.isTrue();
    std::vector<std::size_t> failJumps;  // jumps to patch to the FAIL label
    bool dead = false;                   // guard folded to constant false
    if (hasGuard) {
      countCandidates(guard);
      const std::size_t from = code_.size();
      emit(guard);
      if (constSince(from)) {
        // Guard folded to a literal: the conditional skip resolves at
        // compile time (a discarded action suffix removes no error or
        // variable read — it would never have executed).
        const Value g = code_.back().imm;
        code_.pop_back();
        dead = g == 0;
      } else if (!threadGuardJumps(from, failJumps)) {
        failJumps.push_back(emitJump(OpCode::kJumpIfZero));
      }
    }
    if (!dead) {
      for (const Assign& a : actions) {
        emit(a.value);
        const int slot = (*slots_)(a.target);
        require(slot >= 0, "compileFused: SlotMap returned a negative slot");
        code_.push_back(Instr{OpCode::kStore, slot, 0});
        hasStores = true;
        invalidateReaders(slot);
      }
    }
    pushLit(dead ? 0 : 1);
    if (!failJumps.empty()) {
      const std::size_t endJump = emitJump(OpCode::kJump);
      for (std::size_t j : failJumps) patch(j);
      pushLit(0);
      patch(endJump);
    }
    tempCount = tempCount_;
    return std::move(code_);
  }

 private:
  /// One parked common subexpression: its structural key, the temp
  /// register holding its value, and the frame slots it reads (for
  /// clobber invalidation). Linear scans are fine at guard/action sizes.
  struct AvailEntry {
    std::string key;
    int temp = 0;
    std::vector<int> reads;
  };

  /// Structural identity key of a subtree (same key <=> same value in the
  /// same frame, since all units share one SlotMap).
  static void appendKey(const Expr& e, std::string& out) {
    switch (e.op()) {
      case Op::kLit:
        out += 'L';
        out += std::to_string(e.literal());
        return;
      case Op::kVar:
        out += 'V';
        out += std::to_string(e.ref().scope);
        out += ',';
        out += std::to_string(e.ref().index);
        return;
      default:
        out += '(';
        out += std::to_string(static_cast<int>(e.op()));
        for (std::size_t i = 0; i < e.arity(); ++i) {
          out += ' ';
          appendKey(e.child(i), out);
        }
        out += ')';
        return;
    }
  }

  static std::string keyOf(const Expr& e) {
    std::string out;
    appendKey(e, out);
    return out;
  }

  /// Counts every non-leaf subtree occurrence; keys seen >= 2 times are
  /// CSE candidates. Occurrences inside branches that later fold away are
  /// over-counted, which costs at most one unused kTee.
  void countCandidates(const Expr& e) {
    if (e.op() == Op::kLit || e.op() == Op::kVar) return;
    ++occurrences_[keyOf(e)];
    for (std::size_t i = 0; i < e.arity(); ++i) countCandidates(e.child(i));
  }

  void invalidateReaders(int slot) {
    for (std::size_t i = avail_.size(); i-- > 0;) {
      bool reads = false;
      for (int r : avail_[i].reads) reads = reads || r == slot;
      if (reads) avail_.erase(avail_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  const AvailEntry* findAvail(const std::string& key) const {
    for (const AvailEntry& a : avail_) {
      if (a.key == key) return &a;
    }
    return nullptr;
  }

  /// Peephole for the guard -> suffix boundary: a short-circuit guard
  /// ends with its boolean materialization [Push a; Jump end; Push b]
  /// (a = 1, b = 0 for &&; a = 0, b = 1 for ||) whose value the fused
  /// program would immediately pop and re-test. Retarget the jumps at the
  /// materialization sites instead — false paths jump straight to FAIL
  /// (recorded in `failJumps`), true paths fall through into the action
  /// suffix — and drop the three tail instructions. Returns false (code
  /// untouched) when the guard does not end in the pattern; the caller
  /// then emits a plain conditional skip.
  bool threadGuardJumps(std::size_t from, std::vector<std::size_t>& failJumps) {
    const std::size_t n = code_.size();
    if (n < from + 3) return false;
    const auto isBoolPush = [](const Instr& in) {
      return in.op == OpCode::kPush && (in.imm == 0 || in.imm == 1);
    };
    const auto isJump = [](const Instr& in) {
      return in.op == OpCode::kJump || in.op == OpCode::kJumpIfZero ||
             in.op == OpCode::kJumpIfNonZero;
    };
    if (!isBoolPush(code_[n - 3]) || !isBoolPush(code_[n - 1]) ||
        code_[n - 3].imm == code_[n - 1].imm || code_[n - 2].op != OpCode::kJump ||
        code_[n - 2].arg != static_cast<std::int32_t>(n)) {
      return false;
    }
    // Safety: only the materialization sites themselves may be jump
    // targets in the tail region; any other shape bails out conservatively.
    for (std::size_t i = from; i < n - 3; ++i) {
      if (!isJump(code_[i])) continue;
      if (code_[i].arg >= static_cast<std::int32_t>(n - 3) &&
          code_[i].arg != static_cast<std::int32_t>(n - 1)) {
        return false;
      }
    }
    const bool fallThroughTrue = code_[n - 3].imm == 1;  // && shape
    const bool jumpedTrue = code_[n - 1].imm == 1;       // || shape
    code_.resize(n - 3);
    std::vector<std::size_t> toSuffix;
    for (std::size_t i = from; i < code_.size(); ++i) {
      Instr& in = code_[i];
      if (!isJump(in) || in.arg != static_cast<std::int32_t>(n - 1)) continue;
      if (jumpedTrue) {
        toSuffix.push_back(i);
      } else {
        failJumps.push_back(i);
      }
    }
    // A fall-through that materialized false routes to FAIL instead.
    if (!fallThroughTrue) failJumps.push_back(emitJump(OpCode::kJump));
    for (std::size_t i : toSuffix) code_[i].arg = here();
    return true;
  }
  /// True iff the instructions emitted since `from` are one literal push.
  bool constSince(std::size_t from) const {
    return code_.size() == from + 1 && code_.back().op == OpCode::kPush;
  }

  void pushLit(Value v) { code_.push_back(Instr{OpCode::kPush, 0, v}); }

  std::int32_t here() const { return static_cast<std::int32_t>(code_.size()); }

  /// Emits a jump with a placeholder target; patch later.
  std::size_t emitJump(OpCode op) {
    code_.push_back(Instr{op, -1, 0});
    return code_.size() - 1;
  }

  void patch(std::size_t at) { code_[at].arg = here(); }

  static bool applyBinary(Op op, Value a, Value b, Value& out) {
    const auto toBool = [](bool c) { return c ? Value{1} : Value{0}; };
    switch (op) {
      case Op::kAdd: out = wrapAdd(a, b); return true;
      case Op::kSub: out = wrapSub(a, b); return true;
      case Op::kMul: out = wrapMul(a, b); return true;
      case Op::kDiv:
        if (b == 0 || divOverflows(a, b)) return false;  // keep the runtime error
        out = a / b;
        return true;
      case Op::kMod:
        if (b == 0 || divOverflows(a, b)) return false;
        out = a % b;
        return true;
      case Op::kMin: out = a < b ? a : b; return true;
      case Op::kMax: out = a > b ? a : b; return true;
      case Op::kEq: out = toBool(a == b); return true;
      case Op::kNe: out = toBool(a != b); return true;
      case Op::kLt: out = toBool(a < b); return true;
      case Op::kLe: out = toBool(a <= b); return true;
      case Op::kGt: out = toBool(a > b); return true;
      case Op::kGe: out = toBool(a >= b); return true;
      default: return false;
    }
  }

  static OpCode binaryOpcode(Op op) {
    switch (op) {
      case Op::kAdd: return OpCode::kAdd;
      case Op::kSub: return OpCode::kSub;
      case Op::kMul: return OpCode::kMul;
      case Op::kDiv: return OpCode::kDiv;
      case Op::kMod: return OpCode::kMod;
      case Op::kMin: return OpCode::kMin;
      case Op::kMax: return OpCode::kMax;
      case Op::kEq: return OpCode::kEq;
      case Op::kNe: return OpCode::kNe;
      case Op::kLt: return OpCode::kLt;
      case Op::kLe: return OpCode::kLe;
      case Op::kGt: return OpCode::kGt;
      case Op::kGe: return OpCode::kGe;
      default: throw ModelError("compile: not a binary operator");
    }
  }

  /// Emission entry point: in CSE mode, candidate subtrees reuse a parked
  /// temp when one is available and park their value when evaluated
  /// unconditionally; everything else lowers structurally via emitNode.
  void emit(const Expr& e) {
    if (!cse_ || e.op() == Op::kLit || e.op() == Op::kVar) {
      emitNode(e);
      return;
    }
    std::string key = keyOf(e);
    const auto it = occurrences_.find(key);
    if (it == occurrences_.end() || it->second < 2) {
      emitNode(e);
      return;
    }
    if (const AvailEntry* a = findAvail(key)) {
      code_.push_back(Instr{OpCode::kLoadTmp, a->temp, 0});
      return;
    }
    // Park the value only when this occurrence always executes (reuse
    // from a skipped branch would read garbage) and some occurrence lies
    // *outside* the candidate currently being defined: a subtree whose
    // count equals its defining ancestor's occurs only inside it, and all
    // its later occurrences vanish into that ancestor's kLoadTmp — a tee
    // would never be read.
    const bool mayDefine = condDepth_ == 0 && it->second > definingCount_;
    const int savedCount = definingCount_;
    if (mayDefine) definingCount_ = it->second;
    const std::size_t from = code_.size();
    emitNode(e);
    definingCount_ = savedCount;
    // A fold to a literal also skips the tee: caching a constant saves
    // nothing.
    if (mayDefine && !constSince(from)) {
      AvailEntry entry;
      entry.key = std::move(key);
      entry.temp = tempCount_++;
      std::vector<VarRef> refs;
      e.collectVars(refs);
      entry.reads.reserve(refs.size());
      for (const VarRef& r : refs) entry.reads.push_back((*slots_)(r));
      code_.push_back(Instr{OpCode::kTee, entry.temp, 0});
      avail_.push_back(std::move(entry));
    }
  }

  void emitNode(const Expr& e) {
    switch (e.op()) {
      case Op::kLit:
        pushLit(e.literal());
        return;
      case Op::kVar: {
        const int slot = (*slots_)(e.ref());
        require(slot >= 0, "compile: SlotMap returned a negative slot");
        code_.push_back(Instr{OpCode::kLoad, slot, 0});
        return;
      }
      case Op::kNeg:
      case Op::kAbs:
      case Op::kNot: {
        const std::size_t from = code_.size();
        emit(e.child(0));
        if (constSince(from)) {
          Value& v = code_.back().imm;
          v = e.op() == Op::kNeg ? wrapNeg(v) : e.op() == Op::kAbs ? wrapAbs(v) : (v == 0 ? 1 : 0);
          return;
        }
        code_.push_back(Instr{e.op() == Op::kNeg   ? OpCode::kNeg
                              : e.op() == Op::kAbs ? OpCode::kAbs
                                                   : OpCode::kNot,
                              0, 0});
        return;
      }
      case Op::kAnd:
      case Op::kOr: {
        const bool isAnd = e.op() == Op::kAnd;
        const std::size_t from = code_.size();
        emit(e.child(0));
        if (constSince(from)) {
          // Short-circuit decided at compile time. The left operand is a
          // literal, so discarding it removes no error or variable read.
          const Value a = code_.back().imm;
          code_.pop_back();
          if (isAnd ? a == 0 : a != 0) {
            pushLit(isAnd ? 0 : 1);
            return;
          }
          // Result is the right operand, normalized to 0/1.
          const std::size_t rhs = code_.size();
          emit(e.child(1));
          if (constSince(rhs)) {
            Value& v = code_.back().imm;
            v = v != 0 ? 1 : 0;
            return;
          }
          pushLit(0);
          code_.push_back(Instr{OpCode::kNe, 0, 0});
          return;
        }
        const std::size_t shortJ = emitJump(isAnd ? OpCode::kJumpIfZero : OpCode::kJumpIfNonZero);
        ++condDepth_;  // the right operand may be skipped at run time
        emit(e.child(1));
        --condDepth_;
        const std::size_t shortJ2 = emitJump(isAnd ? OpCode::kJumpIfZero : OpCode::kJumpIfNonZero);
        pushLit(isAnd ? 1 : 0);
        const std::size_t endJ = emitJump(OpCode::kJump);
        patch(shortJ);
        patch(shortJ2);
        pushLit(isAnd ? 0 : 1);
        patch(endJ);
        return;
      }
      case Op::kIte: {
        const std::size_t from = code_.size();
        emit(e.child(0));
        if (constSince(from)) {
          const Value c = code_.back().imm;
          code_.pop_back();
          emit(e.child(c != 0 ? 1 : 2));  // the other branch would never run
          return;
        }
        const std::size_t elseJ = emitJump(OpCode::kJumpIfZero);
        ++condDepth_;  // only one branch executes
        emit(e.child(1));
        const std::size_t endJ = emitJump(OpCode::kJump);
        patch(elseJ);
        emit(e.child(2));
        --condDepth_;
        patch(endJ);
        return;
      }
      default: {  // binary arithmetic / comparison
        const std::size_t a0 = code_.size();
        emit(e.child(0));
        const bool aConst = constSince(a0);
        const std::size_t b0 = code_.size();
        emit(e.child(1));
        Value folded = 0;
        if (aConst && constSince(b0) &&
            applyBinary(e.op(), code_[a0].imm, code_[b0].imm, folded)) {
          code_.resize(a0);
          pushLit(folded);
          return;
        }
        code_.push_back(Instr{binaryOpcode(e.op()), 0, 0});
        return;
      }
    }
  }

  const SlotMap* slots_;
  std::vector<Instr> code_;
  bool cse_ = false;
  int condDepth_ = 0;      // > 0 inside short-circuit rhs / ite branches
  int definingCount_ = 0;  // occurrence count of the candidate being defined
  int tempCount_ = 0;
  std::unordered_map<std::string, int> occurrences_;
  std::vector<AvailEntry> avail_;
};

}  // namespace

Value ExprProgram::run(std::span<const Value> frame, std::int32_t base) const {
  // A read-only frame must never meet a kStore (exec would write through
  // it); fused programs go through the mutable overload below.
  requireEval(!hasStores_, "ExprProgram::run: fused program requires a mutable frame");
  // Guards and actions are small; spill to the heap only for pathological
  // nesting so the common case stays allocation-free. CSE temp registers
  // live above the evaluation stack in the same buffer.
  constexpr int kInlineStack = 32;
  Value inlineBuf[kInlineStack];
  std::vector<Value> heapBuf;
  Value* stack = inlineBuf;
  if (maxStack_ + tempCount_ > kInlineStack) {
    heapBuf.resize(static_cast<std::size_t>(maxStack_ + tempCount_));
    stack = heapBuf.data();
  }
  return exec(frame, base, stack);
}

Value ExprProgram::run(std::span<Value> frame, std::int32_t base) const {
  constexpr int kInlineStack = 32;
  Value inlineBuf[kInlineStack];
  std::vector<Value> heapBuf;
  Value* stack = inlineBuf;
  if (maxStack_ + tempCount_ > kInlineStack) {
    heapBuf.resize(static_cast<std::size_t>(maxStack_ + tempCount_));
    stack = heapBuf.data();
  }
  return exec(frame, base, stack);
}

void ExprProgram::runBatch(std::span<const BatchOp> ops, std::span<const Value> frame,
                           std::span<Value> out) {
  requireEval(ops.size() == out.size(), "ExprProgram::runBatch: ops/out size mismatch");
  constexpr int kInlineStack = 32;
  Value inlineBuf[kInlineStack];
  std::vector<Value> heapBuf;
  Value* stack = inlineBuf;
  int need = 0;
  for (const BatchOp& op : ops) {
    requireEval(op.program != nullptr && !op.program->empty() && !op.program->hasStores_,
                "ExprProgram::runBatch: empty or frame-writing program in batch");
    const int n = op.program->maxStack_ + op.program->tempCount_;
    if (n > need) need = n;
  }
  if (need > kInlineStack) {
    heapBuf.resize(static_cast<std::size_t>(need));
    stack = heapBuf.data();
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    out[i] = ops[i].program->exec(frame, ops[i].base, stack);
  }
}

Value ExprProgram::exec(std::span<const Value> frame, std::int32_t base, Value* stack) const {
  const Instr* code = code_.data();
  const std::size_t n = code_.size();
  // Temp registers sit above the evaluation stack in the caller's buffer.
  // The const_cast below is only reached through kStore, which only fused
  // programs hold, and those are gated onto the mutable run() overload —
  // a frame that arrives here const is never written.
  Value* temps = stack + maxStack_;
  Value* frameMut = const_cast<Value*>(frame.data());
  std::size_t pc = 0;
  int sp = 0;
  while (pc < n) {
    const Instr& in = code[pc++];
    switch (in.op) {
      case OpCode::kPush: stack[sp++] = in.imm; break;
      case OpCode::kLoad: stack[sp++] = frame[static_cast<std::size_t>(base + in.arg)]; break;
      case OpCode::kAdd: --sp; stack[sp - 1] = wrapAdd(stack[sp - 1], stack[sp]); break;
      case OpCode::kSub: --sp; stack[sp - 1] = wrapSub(stack[sp - 1], stack[sp]); break;
      case OpCode::kMul: --sp; stack[sp - 1] = wrapMul(stack[sp - 1], stack[sp]); break;
      case OpCode::kDiv:
        --sp;
        requireEval(stack[sp] != 0, "division by zero");
        requireEval(!divOverflows(stack[sp - 1], stack[sp]), "integer overflow in division");
        stack[sp - 1] /= stack[sp];
        break;
      case OpCode::kMod:
        --sp;
        requireEval(stack[sp] != 0, "modulo by zero");
        requireEval(!divOverflows(stack[sp - 1], stack[sp]), "integer overflow in modulo");
        stack[sp - 1] %= stack[sp];
        break;
      // The unchecked twins exist only downstream of an analysis proof
      // that the divisor excludes 0 and the INT64_MIN / -1 corner cannot
      // occur (relaxDivCheck); the elided requireEval calls are the whole
      // point of the relaxation.
      case OpCode::kDivUnchecked: --sp; stack[sp - 1] /= stack[sp]; break;
      case OpCode::kModUnchecked: --sp; stack[sp - 1] %= stack[sp]; break;
      case OpCode::kMin:
        --sp;
        if (stack[sp] < stack[sp - 1]) stack[sp - 1] = stack[sp];
        break;
      case OpCode::kMax:
        --sp;
        if (stack[sp] > stack[sp - 1]) stack[sp - 1] = stack[sp];
        break;
      case OpCode::kEq: --sp; stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1 : 0; break;
      case OpCode::kNe: --sp; stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1 : 0; break;
      case OpCode::kLt: --sp; stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1 : 0; break;
      case OpCode::kLe: --sp; stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1 : 0; break;
      case OpCode::kGt: --sp; stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1 : 0; break;
      case OpCode::kGe: --sp; stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1 : 0; break;
      case OpCode::kNeg: stack[sp - 1] = wrapNeg(stack[sp - 1]); break;
      case OpCode::kAbs: stack[sp - 1] = wrapAbs(stack[sp - 1]); break;
      case OpCode::kNot: stack[sp - 1] = stack[sp - 1] == 0 ? 1 : 0; break;
      case OpCode::kJump: pc = static_cast<std::size_t>(in.arg); break;
      case OpCode::kJumpIfZero:
        --sp;
        if (stack[sp] == 0) pc = static_cast<std::size_t>(in.arg);
        break;
      case OpCode::kJumpIfNonZero:
        --sp;
        if (stack[sp] != 0) pc = static_cast<std::size_t>(in.arg);
        break;
      case OpCode::kStore:
        --sp;
        frameMut[static_cast<std::size_t>(base + in.arg)] = stack[sp];
        break;
      case OpCode::kTee: temps[in.arg] = stack[sp - 1]; break;
      case OpCode::kLoadTmp: stack[sp++] = temps[in.arg]; break;
    }
  }
  requireEval(sp == 1, "ExprProgram::run: corrupt program (stack imbalance)");
  return stack[0];
}

ExprProgram ExprProgram::constant(Value v) {
  ExprProgram p;
  p.code_.push_back(Instr{OpCode::kPush, 0, v});
  p.maxStack_ = 1;
  return p;
}

void ExprProgram::relaxDivCheck(std::size_t pc) {
  require(pc < code_.size(), "relaxDivCheck: pc out of range");
  Instr& in = code_[pc];
  if (in.op == OpCode::kDiv) {
    in.op = OpCode::kDivUnchecked;
  } else if (in.op == OpCode::kMod) {
    in.op = OpCode::kModUnchecked;
  } else {
    require(false, "relaxDivCheck: pc does not hold a checked division");
  }
}

ExprProgram compile(const Expr& e, const SlotMap& slots) {
  Compiler c(slots);
  ExprProgram p;
  p.code_ = c.lower(e);
  p.maxStack_ = stackNeed(e);
  return p;
}

ExprProgram compileLocal(const Expr& e) {
  return compile(e, [](VarRef r) {
    require(r.scope == 0, "compileLocal: non-local variable scope");
    return r.index;
  });
}

ExprProgram compileFused(const Expr& guard, std::span<const Assign> actions,
                         const SlotMap& slots) {
  Compiler c(slots, /*cse=*/true);
  ExprProgram p;
  p.code_ = c.lowerFused(guard, actions, p.tempCount_, p.hasStores_);
  // Stack need: the guard runs at depth 0 and each action value starts
  // again at depth 0 (kStore pops it); the result literal needs one slot.
  int need = 1;
  if (!guard.isTrue()) need = stackNeed(guard);
  for (const Assign& a : actions) {
    const int k = stackNeed(a.value);
    if (k > need) need = k;
  }
  p.maxStack_ = need;
  return p;
}

bool compilationEnabled() { return compileFlag().load(std::memory_order_relaxed); }

void setCompilationEnabled(bool on) { compileFlag().store(on, std::memory_order_relaxed); }

bool fusionEnabled() { return fuseFlag().load(std::memory_order_relaxed); }

void setFusionEnabled(bool on) { fuseFlag().store(on, std::memory_order_relaxed); }

bool analysisEnabled() { return analyzeFlag().load(std::memory_order_relaxed); }

void setAnalysisEnabled(bool on) { analyzeFlag().store(on, std::memory_order_relaxed); }

}  // namespace cbip::expr
