#include "expr/compile.hpp"

#include <atomic>
#include <cstdlib>

#include "util/require.hpp"

namespace cbip::expr {

namespace {

std::atomic<bool>& compileFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CBIP_NO_COMPILE");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

/// Stack slots evaluation needs for `e` (an upper bound once folding
/// shrinks the program; postfix needs max(lhs, 1 + rhs) for binaries).
int stackNeed(const Expr& e) {
  switch (e.op()) {
    case Op::kLit:
    case Op::kVar:
      return 1;
    case Op::kNeg:
    case Op::kAbs:
    case Op::kNot:
      return stackNeed(e.child(0));
    case Op::kAnd:
    case Op::kOr: {
      // Branches run at the same depth as the left operand (the jumps pop
      // it); the constant-left fold may append "Push 0; kNe" one slot
      // above the right operand, hence the floor of 2.
      int need = 2;
      for (std::size_t i = 0; i < e.arity(); ++i) {
        const int k = stackNeed(e.child(i));
        if (k > need) need = k;
      }
      return need;
    }
    case Op::kIte: {
      // Branches run at the same depth as the condition (jumps pop it).
      int need = 1;
      for (std::size_t i = 0; i < e.arity(); ++i) {
        const int k = stackNeed(e.child(i));
        if (k > need) need = k;
      }
      return need;
    }
    default: {
      const int a = stackNeed(e.child(0));
      const int b = 1 + stackNeed(e.child(1));
      return a > b ? a : b;
    }
  }
}

// Lowering folds constant subprograms even though the Expr builders
// already fold at construction (Expr::make): the compiler must stay
// correct for any tree handed to it, independent of which builder
// invariants happen to hold upstream.
class Compiler {
 public:
  explicit Compiler(const SlotMap& slots) : slots_(&slots) {}

  std::vector<Instr> lower(const Expr& e) {
    emit(e);
    return std::move(code_);
  }

 private:
  /// True iff the instructions emitted since `from` are one literal push.
  bool constSince(std::size_t from) const {
    return code_.size() == from + 1 && code_.back().op == OpCode::kPush;
  }

  void pushLit(Value v) { code_.push_back(Instr{OpCode::kPush, 0, v}); }

  std::int32_t here() const { return static_cast<std::int32_t>(code_.size()); }

  /// Emits a jump with a placeholder target; patch later.
  std::size_t emitJump(OpCode op) {
    code_.push_back(Instr{op, -1, 0});
    return code_.size() - 1;
  }

  void patch(std::size_t at) { code_[at].arg = here(); }

  static bool applyBinary(Op op, Value a, Value b, Value& out) {
    const auto toBool = [](bool c) { return c ? Value{1} : Value{0}; };
    switch (op) {
      case Op::kAdd: out = a + b; return true;
      case Op::kSub: out = a - b; return true;
      case Op::kMul: out = a * b; return true;
      case Op::kDiv:
        if (b == 0) return false;  // keep the runtime error
        out = a / b;
        return true;
      case Op::kMod:
        if (b == 0) return false;
        out = a % b;
        return true;
      case Op::kMin: out = a < b ? a : b; return true;
      case Op::kMax: out = a > b ? a : b; return true;
      case Op::kEq: out = toBool(a == b); return true;
      case Op::kNe: out = toBool(a != b); return true;
      case Op::kLt: out = toBool(a < b); return true;
      case Op::kLe: out = toBool(a <= b); return true;
      case Op::kGt: out = toBool(a > b); return true;
      case Op::kGe: out = toBool(a >= b); return true;
      default: return false;
    }
  }

  static OpCode binaryOpcode(Op op) {
    switch (op) {
      case Op::kAdd: return OpCode::kAdd;
      case Op::kSub: return OpCode::kSub;
      case Op::kMul: return OpCode::kMul;
      case Op::kDiv: return OpCode::kDiv;
      case Op::kMod: return OpCode::kMod;
      case Op::kMin: return OpCode::kMin;
      case Op::kMax: return OpCode::kMax;
      case Op::kEq: return OpCode::kEq;
      case Op::kNe: return OpCode::kNe;
      case Op::kLt: return OpCode::kLt;
      case Op::kLe: return OpCode::kLe;
      case Op::kGt: return OpCode::kGt;
      case Op::kGe: return OpCode::kGe;
      default: throw ModelError("compile: not a binary operator");
    }
  }

  void emit(const Expr& e) {
    switch (e.op()) {
      case Op::kLit:
        pushLit(e.literal());
        return;
      case Op::kVar: {
        const int slot = (*slots_)(e.ref());
        require(slot >= 0, "compile: SlotMap returned a negative slot");
        code_.push_back(Instr{OpCode::kLoad, slot, 0});
        return;
      }
      case Op::kNeg:
      case Op::kAbs:
      case Op::kNot: {
        const std::size_t from = code_.size();
        emit(e.child(0));
        if (constSince(from)) {
          Value& v = code_.back().imm;
          v = e.op() == Op::kNeg ? -v : e.op() == Op::kAbs ? (v < 0 ? -v : v) : (v == 0 ? 1 : 0);
          return;
        }
        code_.push_back(Instr{e.op() == Op::kNeg   ? OpCode::kNeg
                              : e.op() == Op::kAbs ? OpCode::kAbs
                                                   : OpCode::kNot,
                              0, 0});
        return;
      }
      case Op::kAnd:
      case Op::kOr: {
        const bool isAnd = e.op() == Op::kAnd;
        const std::size_t from = code_.size();
        emit(e.child(0));
        if (constSince(from)) {
          // Short-circuit decided at compile time. The left operand is a
          // literal, so discarding it removes no error or variable read.
          const Value a = code_.back().imm;
          code_.pop_back();
          if (isAnd ? a == 0 : a != 0) {
            pushLit(isAnd ? 0 : 1);
            return;
          }
          // Result is the right operand, normalized to 0/1.
          const std::size_t rhs = code_.size();
          emit(e.child(1));
          if (constSince(rhs)) {
            Value& v = code_.back().imm;
            v = v != 0 ? 1 : 0;
            return;
          }
          pushLit(0);
          code_.push_back(Instr{OpCode::kNe, 0, 0});
          return;
        }
        const std::size_t shortJ = emitJump(isAnd ? OpCode::kJumpIfZero : OpCode::kJumpIfNonZero);
        emit(e.child(1));
        const std::size_t shortJ2 = emitJump(isAnd ? OpCode::kJumpIfZero : OpCode::kJumpIfNonZero);
        pushLit(isAnd ? 1 : 0);
        const std::size_t endJ = emitJump(OpCode::kJump);
        patch(shortJ);
        patch(shortJ2);
        pushLit(isAnd ? 0 : 1);
        patch(endJ);
        return;
      }
      case Op::kIte: {
        const std::size_t from = code_.size();
        emit(e.child(0));
        if (constSince(from)) {
          const Value c = code_.back().imm;
          code_.pop_back();
          emit(e.child(c != 0 ? 1 : 2));  // the other branch would never run
          return;
        }
        const std::size_t elseJ = emitJump(OpCode::kJumpIfZero);
        emit(e.child(1));
        const std::size_t endJ = emitJump(OpCode::kJump);
        patch(elseJ);
        emit(e.child(2));
        patch(endJ);
        return;
      }
      default: {  // binary arithmetic / comparison
        const std::size_t a0 = code_.size();
        emit(e.child(0));
        const bool aConst = constSince(a0);
        const std::size_t b0 = code_.size();
        emit(e.child(1));
        Value folded = 0;
        if (aConst && constSince(b0) &&
            applyBinary(e.op(), code_[a0].imm, code_[b0].imm, folded)) {
          code_.resize(a0);
          pushLit(folded);
          return;
        }
        code_.push_back(Instr{binaryOpcode(e.op()), 0, 0});
        return;
      }
    }
  }

  const SlotMap* slots_;
  std::vector<Instr> code_;
};

}  // namespace

Value ExprProgram::run(std::span<const Value> frame, std::int32_t base) const {
  // Guards and actions are small; spill to the heap only for pathological
  // nesting so the common case stays allocation-free.
  constexpr int kInlineStack = 32;
  Value inlineBuf[kInlineStack];
  std::vector<Value> heapBuf;
  Value* stack = inlineBuf;
  if (maxStack_ > kInlineStack) {
    heapBuf.resize(static_cast<std::size_t>(maxStack_));
    stack = heapBuf.data();
  }
  return exec(frame, base, stack);
}

void ExprProgram::runBatch(std::span<const BatchOp> ops, std::span<const Value> frame,
                           std::span<Value> out) {
  requireEval(ops.size() == out.size(), "ExprProgram::runBatch: ops/out size mismatch");
  constexpr int kInlineStack = 32;
  Value inlineBuf[kInlineStack];
  std::vector<Value> heapBuf;
  Value* stack = inlineBuf;
  int need = 0;
  for (const BatchOp& op : ops) {
    requireEval(op.program != nullptr && !op.program->empty(),
                "ExprProgram::runBatch: empty program in batch");
    if (op.program->maxStack_ > need) need = op.program->maxStack_;
  }
  if (need > kInlineStack) {
    heapBuf.resize(static_cast<std::size_t>(need));
    stack = heapBuf.data();
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    out[i] = ops[i].program->exec(frame, ops[i].base, stack);
  }
}

Value ExprProgram::exec(std::span<const Value> frame, std::int32_t base, Value* stack) const {
  const Instr* code = code_.data();
  const std::size_t n = code_.size();
  std::size_t pc = 0;
  int sp = 0;
  while (pc < n) {
    const Instr& in = code[pc++];
    switch (in.op) {
      case OpCode::kPush: stack[sp++] = in.imm; break;
      case OpCode::kLoad: stack[sp++] = frame[static_cast<std::size_t>(base + in.arg)]; break;
      case OpCode::kAdd: --sp; stack[sp - 1] += stack[sp]; break;
      case OpCode::kSub: --sp; stack[sp - 1] -= stack[sp]; break;
      case OpCode::kMul: --sp; stack[sp - 1] *= stack[sp]; break;
      case OpCode::kDiv:
        --sp;
        requireEval(stack[sp] != 0, "division by zero");
        stack[sp - 1] /= stack[sp];
        break;
      case OpCode::kMod:
        --sp;
        requireEval(stack[sp] != 0, "modulo by zero");
        stack[sp - 1] %= stack[sp];
        break;
      case OpCode::kMin:
        --sp;
        if (stack[sp] < stack[sp - 1]) stack[sp - 1] = stack[sp];
        break;
      case OpCode::kMax:
        --sp;
        if (stack[sp] > stack[sp - 1]) stack[sp - 1] = stack[sp];
        break;
      case OpCode::kEq: --sp; stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1 : 0; break;
      case OpCode::kNe: --sp; stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1 : 0; break;
      case OpCode::kLt: --sp; stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1 : 0; break;
      case OpCode::kLe: --sp; stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1 : 0; break;
      case OpCode::kGt: --sp; stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1 : 0; break;
      case OpCode::kGe: --sp; stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1 : 0; break;
      case OpCode::kNeg: stack[sp - 1] = -stack[sp - 1]; break;
      case OpCode::kAbs:
        if (stack[sp - 1] < 0) stack[sp - 1] = -stack[sp - 1];
        break;
      case OpCode::kNot: stack[sp - 1] = stack[sp - 1] == 0 ? 1 : 0; break;
      case OpCode::kJump: pc = static_cast<std::size_t>(in.arg); break;
      case OpCode::kJumpIfZero:
        --sp;
        if (stack[sp] == 0) pc = static_cast<std::size_t>(in.arg);
        break;
      case OpCode::kJumpIfNonZero:
        --sp;
        if (stack[sp] != 0) pc = static_cast<std::size_t>(in.arg);
        break;
    }
  }
  requireEval(sp == 1, "ExprProgram::run: corrupt program (stack imbalance)");
  return stack[0];
}

ExprProgram compile(const Expr& e, const SlotMap& slots) {
  Compiler c(slots);
  ExprProgram p;
  p.code_ = c.lower(e);
  p.maxStack_ = stackNeed(e);
  return p;
}

ExprProgram compileLocal(const Expr& e) {
  return compile(e, [](VarRef r) {
    require(r.scope == 0, "compileLocal: non-local variable scope");
    return r.index;
  });
}

bool compilationEnabled() { return compileFlag().load(std::memory_order_relaxed); }

void setCompilationEnabled(bool on) { compileFlag().store(on, std::memory_order_relaxed); }

}  // namespace cbip::expr
