#include "distributed/srbip.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "core/semantics.hpp"
#include "util/require.hpp"

namespace cbip::dist {

namespace {

enum MsgType : int {
  kOffer = 1,
  kExecute,
  kReserve,
  kReserveOk,
  kReserveFail,
  kToken,
  kForkReq,
  kFork,
  kForkReturn,
  // naive refinement
  kStart,
  kAgree,
  kCommitDone,
};

// ---------- payload encoding helpers ----------

struct OfferPayload {
  std::int64_t count = 0;
  std::vector<Value> vars;
  /// port -> enabled transition indices (global, in the type)
  std::vector<std::pair<int, std::vector<int>>> enabled;

  std::vector<std::int64_t> encode() const {
    std::vector<std::int64_t> p;
    p.push_back(count);
    p.push_back(static_cast<std::int64_t>(vars.size()));
    for (const Value v : vars) p.push_back(v);
    p.push_back(static_cast<std::int64_t>(enabled.size()));
    for (const auto& [port, ts] : enabled) {
      p.push_back(port);
      p.push_back(static_cast<std::int64_t>(ts.size()));
      for (const int t : ts) p.push_back(t);
    }
    return p;
  }

  static OfferPayload decode(const std::vector<std::int64_t>& p) {
    OfferPayload o;
    std::size_t k = 0;
    o.count = p[k++];
    const auto nVars = static_cast<std::size_t>(p[k++]);
    for (std::size_t i = 0; i < nVars; ++i) o.vars.push_back(p[k++]);
    const auto nPorts = static_cast<std::size_t>(p[k++]);
    for (std::size_t i = 0; i < nPorts; ++i) {
      const int port = static_cast<int>(p[k++]);
      const auto nTs = static_cast<std::size_t>(p[k++]);
      std::vector<int> ts;
      for (std::size_t j = 0; j < nTs; ++j) ts.push_back(static_cast<int>(p[k++]));
      o.enabled.emplace_back(port, std::move(ts));
    }
    return o;
  }
};

struct ExecutePayload {
  std::int64_t count = 0;
  int transition = 0;
  std::vector<std::pair<int, Value>> writes;  // (variable index, value)

  std::vector<std::int64_t> encode() const {
    std::vector<std::int64_t> p{count, transition,
                                static_cast<std::int64_t>(writes.size())};
    for (const auto& [var, value] : writes) {
      p.push_back(var);
      p.push_back(value);
    }
    return p;
  }
  static ExecutePayload decode(const std::vector<std::int64_t>& p) {
    ExecutePayload e;
    e.count = p[0];
    e.transition = static_cast<int>(p[1]);
    const auto n = static_cast<std::size_t>(p[2]);
    for (std::size_t i = 0; i < n; ++i) {
      e.writes.emplace_back(static_cast<int>(p[3 + 2 * i]), p[4 + 2 * i]);
    }
    return e;
  }
};

// ---------- component layer ----------

class ComponentNode final : public net::Node {
 public:
  ComponentNode(const System& system, int instance, std::vector<net::NodeId> ipTargets)
      : system_(&system),
        instance_(instance),
        ipTargets_(std::move(ipTargets)),
        state_(initialState(*system.instance(static_cast<std::size_t>(instance)).type)) {}

  void onStart(net::Context& ctx) override {
    runInternal(type(), state_);
    sendOffer(ctx);
  }

  void onMessage(const net::Message& m, net::Context& ctx) override {
    require(m.type == kExecute, "ComponentNode: unexpected message");
    const ExecutePayload e = ExecutePayload::decode(m.payload);
    require(e.count == count_, "ComponentNode: EXECUTE for a stale offer count");
    for (const auto& [var, value] : e.writes) {
      state_.vars[static_cast<std::size_t>(var)] = value;
    }
    fire(type(), state_, e.transition);
    runInternal(type(), state_);
    ++count_;
    sendOffer(ctx);
  }

 private:
  const AtomicType& type() const {
    return *system_->instance(static_cast<std::size_t>(instance_)).type;
  }

  void sendOffer(net::Context& ctx) {
    OfferPayload o;
    o.count = count_;
    o.vars = state_.vars;
    for (std::size_t p = 0; p < type().portCount(); ++p) {
      std::vector<int> ts = enabledTransitions(type(), state_, static_cast<int>(p));
      if (!ts.empty()) o.enabled.emplace_back(static_cast<int>(p), std::move(ts));
    }
    const auto payload = o.encode();
    for (const net::NodeId ip : ipTargets_) ctx.send(ip, kOffer, payload);
  }

  const System* system_;
  int instance_;
  std::vector<net::NodeId> ipTargets_;
  AtomicState state_;
  std::int64_t count_ = 0;
};

// ---------- interaction protocol layer ----------

struct IpConfig {
  std::vector<int> connectors;           // block
  int blockIndex = 0;
  CrpKind crp = CrpKind::kCentralized;
  net::NodeId arbiter = -1;              // centralized
  net::NodeId nextInRing = -1;           // token ring
  bool startsWithToken = false;
  std::set<int> sharedInstances;         // instances shared across blocks
  std::map<int, net::NodeId> forkHome;   // shared instance -> home IP node
  std::map<int, net::NodeId> componentNode;  // instance -> node id
  std::uint64_t seed = 1;
};

class IpNode final : public net::Node {
 public:
  IpNode(const System& system, IpConfig config, std::vector<Commit>* commits)
      : system_(&system), cfg_(std::move(config)), commits_(commits), rng_(cfg_.seed) {}

  void setSelf(net::NodeId self) { self_ = self; }

  void onStart(net::Context& ctx) override {
    if (cfg_.crp == CrpKind::kTokenRing && cfg_.startsWithToken) {
      sendToken(ctx);
    }
    for (const auto& [inst, home] : cfg_.forkHome) {
      if (home == self_) forkHomes_[inst] = ForkHome{};
    }
  }

  void onMessage(const net::Message& m, net::Context& ctx) override {
    switch (m.type) {
      case kOffer: {
        const OfferPayload o = OfferPayload::decode(m.payload);
        Offer& slot = offers_[m.from];
        slot.valid = true;
        slot.count = o.count;
        slot.vars = o.vars;
        slot.enabled.clear();
        for (const auto& [port, ts] : o.enabled) slot.enabled[port] = ts;
        tryCommit(ctx);
        break;
      }
      case kReserveOk: {
        require(inFlight_.has_value(), "IpNode: OK without reservation");
        Candidate cand = std::move(*inFlight_);
        inFlight_.reset();
        // The grant is authoritative for shared parts; exclusive parts
        // were validated at send time and cannot have moved (only this
        // block executes them).
        commitNow(cand, ctx);
        tryCommit(ctx);
        break;
      }
      case kReserveFail: {
        require(inFlight_.has_value(), "IpNode: FAIL without reservation");
        inFlight_.reset();
        tryCommit(ctx);
        break;
      }
      case kToken: {
        // Install the table, serve pending reservations, pass it on.
        tokenTable_.clear();
        const auto& p = m.payload;
        const auto n = static_cast<std::size_t>(p[0]);
        for (std::size_t i = 0; i < n; ++i) {
          tokenTable_[static_cast<int>(p[1 + 2 * i])] = p[2 + 2 * i];
        }
        for (Candidate& cand : tokenPending_) {
          if (!stillFresh(cand)) continue;
          bool ok = true;
          for (const auto& [inst, count] : cand.parts) {
            if (cfg_.sharedInstances.count(inst) == 0) continue;
            const auto it = tokenTable_.find(inst);
            const std::int64_t last = it == tokenTable_.end() ? -1 : it->second;
            if (last >= count) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          for (const auto& [inst, count] : cand.parts) {
            if (cfg_.sharedInstances.count(inst) > 0) tokenTable_[inst] = count;
          }
          commitNow(cand, ctx);
        }
        tokenPending_.clear();
        pendingInstances_.clear();
        sendToken(ctx);
        tryCommit(ctx);
        break;
      }
      case kForkReq: {
        auto it = forkHomes_.find(static_cast<int>(m.payload[0]));
        require(it != forkHomes_.end(), "IpNode: fork request for foreign fork");
        ForkHome& home = it->second;
        if (home.atHome) {
          home.atHome = false;
          ctx.send(m.from, kFork, {m.payload[0], home.entry});
        } else {
          home.queue.push_back(m.from);
        }
        break;
      }
      case kFork: {
        require(acquiring_.has_value(), "IpNode: fork without acquisition");
        const int inst = static_cast<int>(m.payload[0]);
        heldForks_[inst] = m.payload[1];
        advanceAcquisition(ctx);
        break;
      }
      case kForkReturn: {
        auto it = forkHomes_.find(static_cast<int>(m.payload[0]));
        require(it != forkHomes_.end(), "IpNode: fork return to foreign home");
        ForkHome& home = it->second;
        home.entry = m.payload[1];
        if (!home.queue.empty()) {
          const net::NodeId next = home.queue.front();
          home.queue.pop_front();
          ctx.send(next, kFork, {m.payload[0], home.entry});
        } else {
          home.atHome = true;
        }
        break;
      }
      default:
        throw ModelError("IpNode: unexpected message type");
    }
  }

 private:
  struct Offer {
    bool valid = false;
    std::int64_t count = 0;
    std::vector<Value> vars;
    std::map<int, std::vector<int>> enabled;  // port -> transitions
  };

  struct Candidate {
    int connector = 0;
    InteractionMask mask = 0;
    std::vector<int> ends;                           // participating end positions
    std::vector<int> transitions;                    // chosen per end (global idx)
    std::vector<std::pair<int, std::int64_t>> parts;  // (instance, offer count)
  };

  struct ForkHome {
    bool atHome = true;
    std::int64_t entry = -1;  // last committed count
    std::deque<net::NodeId> queue;
  };

  const Offer* offerOf(int instance) const {
    const auto nodeIt = cfg_.componentNode.find(instance);
    if (nodeIt == cfg_.componentNode.end()) return nullptr;
    const auto it = offers_.find(nodeIt->second);
    return it == offers_.end() ? nullptr : &it->second;
  }

  bool stillFresh(const Candidate& cand) const {
    for (const auto& [inst, count] : cand.parts) {
      const Offer* o = offerOf(inst);
      if (o == nullptr || !o->valid || o->count != count) return false;
    }
    return true;
  }

  /// Evaluation context over offered snapshots for connector expressions.
  class OfferContext final : public expr::EvalContext {
   public:
    OfferContext(const System& system, const Connector& connector,
                 std::map<int, std::vector<Value>>& snapshot, std::vector<Value>& connVars)
        : system_(&system), connector_(&connector), snapshot_(&snapshot), conn_(&connVars) {}
    Value read(expr::VarRef r) const override {
      if (r.scope == expr::kConnectorScope) return (*conn_)[static_cast<std::size_t>(r.index)];
      return slot(r);
    }
    void write(expr::VarRef r, Value v) override {
      if (r.scope == expr::kConnectorScope) {
        (*conn_)[static_cast<std::size_t>(r.index)] = v;
        return;
      }
      slot(r) = v;
    }

   private:
    Value& slot(expr::VarRef r) const {
      const ConnectorEnd& end = connector_->end(static_cast<std::size_t>(r.scope));
      const AtomicType& type =
          *system_->instance(static_cast<std::size_t>(end.port.instance)).type;
      const int var = type.port(end.port.port).exports[static_cast<std::size_t>(r.index)];
      return (*snapshot_)[end.port.instance][static_cast<std::size_t>(var)];
    }
    const System* system_;
    const Connector* connector_;
    std::map<int, std::vector<Value>>* snapshot_;
    std::vector<Value>* conn_;
  };

  /// Finds the next committable candidate not touching busy instances.
  std::optional<Candidate> findCandidate() {
    std::set<int> busy = pendingInstances_;
    if (inFlight_.has_value()) {
      for (const auto& [inst, c] : inFlight_->parts) busy.insert(inst);
    }
    if (acquiring_.has_value()) {
      for (const auto& [inst, c] : acquiring_->parts) busy.insert(inst);
    }
    for (const int ci : cfg_.connectors) {
      const Connector& c = system_->connector(static_cast<std::size_t>(ci));
      Candidate cand;
      cand.connector = ci;
      cand.mask = c.fullMask();
      bool feasible = true;
      std::map<int, std::vector<Value>> snapshot;
      for (std::size_t e = 0; e < c.endCount(); ++e) {
        const PortRef& p = c.end(e).port;
        if (busy.count(p.instance) > 0) {
          feasible = false;
          break;
        }
        const Offer* o = offerOf(p.instance);
        if (o == nullptr || !o->valid) {
          feasible = false;
          break;
        }
        const auto en = o->enabled.find(p.port);
        if (en == o->enabled.end()) {
          feasible = false;
          break;
        }
        cand.ends.push_back(static_cast<int>(e));
        cand.transitions.push_back(
            en->second[rng_.index(en->second.size())]);
        cand.parts.emplace_back(p.instance, o->count);
        snapshot[p.instance] = o->vars;
      }
      if (!feasible) continue;
      if (!c.guard().isTrue()) {
        std::vector<Value> connVars(c.variableCount(), 0);
        OfferContext gctx(*system_, c, snapshot, connVars);
        if (c.guard().eval(gctx) == 0) continue;
      }
      return cand;
    }
    return std::nullopt;
  }

  void tryCommit(net::Context& ctx) {
    while (true) {
      std::optional<Candidate> cand = findCandidate();
      if (!cand.has_value()) return;
      const bool needsCrp = std::any_of(
          cand->parts.begin(), cand->parts.end(), [this](const auto& part) {
            return cfg_.sharedInstances.count(part.first) > 0;
          });
      if (!needsCrp) {
        commitNow(*cand, ctx);
        continue;  // further candidates may be enabled
      }
      switch (cfg_.crp) {
        case CrpKind::kCentralized: {
          if (inFlight_.has_value()) return;
          std::vector<std::int64_t> payload{0 /* reqId unused */};
          std::int64_t nShared = 0;
          std::vector<std::int64_t> parts;
          for (const auto& [inst, count] : cand->parts) {
            if (cfg_.sharedInstances.count(inst) > 0) {
              parts.push_back(inst);
              parts.push_back(count);
              ++nShared;
            }
          }
          payload.push_back(nShared);
          payload.insert(payload.end(), parts.begin(), parts.end());
          inFlight_ = std::move(*cand);
          ctx.send(cfg_.arbiter, kReserve, std::move(payload));
          return;
        }
        case CrpKind::kTokenRing: {
          for (const auto& [inst, count] : cand->parts) pendingInstances_.insert(inst);
          tokenPending_.push_back(std::move(*cand));
          // Processed when the token arrives.
          break;
        }
        case CrpKind::kPhilosophers: {
          if (acquiring_.has_value()) return;
          acquiring_ = std::move(*cand);
          forksNeeded_.clear();
          for (const auto& [inst, count] : acquiring_->parts) {
            if (cfg_.sharedInstances.count(inst) > 0) forksNeeded_.push_back(inst);
          }
          std::sort(forksNeeded_.begin(), forksNeeded_.end());
          heldForks_.clear();
          advanceAcquisition(ctx);
          return;
        }
      }
    }
  }

  void advanceAcquisition(net::Context& ctx) {
    require(acquiring_.has_value(), "advanceAcquisition without candidate");
    if (heldForks_.size() < forksNeeded_.size()) {
      const int next = forksNeeded_[heldForks_.size()];
      ctx.send(cfg_.forkHome.at(next), kForkReq, {next});
      return;
    }
    // All forks held: validate and commit or abort.
    Candidate cand = std::move(*acquiring_);
    acquiring_.reset();
    bool ok = stillFresh(cand);
    if (ok) {
      for (const auto& [inst, count] : cand.parts) {
        const auto fork = heldForks_.find(inst);
        if (fork != heldForks_.end() && fork->second >= count) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      for (auto& [inst, entry] : heldForks_) {
        for (const auto& [pInst, pCount] : cand.parts) {
          if (pInst == inst) entry = pCount;
        }
      }
      commitNow(cand, ctx);
    }
    // Return every fork to its home (updated entries on commit).
    for (const auto& [inst, entry] : heldForks_) {
      ctx.send(cfg_.forkHome.at(inst), kForkReturn, {inst, entry});
    }
    heldForks_.clear();
    tryCommit(ctx);
  }

  void commitNow(const Candidate& cand, net::Context& ctx) {
    const Connector& c = system_->connector(static_cast<std::size_t>(cand.connector));
    // Data transfer on the offered snapshots.
    std::map<int, std::vector<Value>> snapshot;
    for (const auto& [inst, count] : cand.parts) snapshot[inst] = offerOf(inst)->vars;
    std::vector<Value> connVars(c.variableCount(), 0);
    OfferContext tctx(*system_, c, snapshot, connVars);
    expr::applyAssignments(c.ups(), tctx);
    for (const DownAssign& d : c.downs()) {
      tctx.write(expr::VarRef{d.end, d.exportIndex}, d.value.eval(tctx));
    }
    // Dispatch EXECUTE to every participant with its writes.
    for (std::size_t k = 0; k < cand.ends.size(); ++k) {
      const ConnectorEnd& end = c.end(static_cast<std::size_t>(cand.ends[k]));
      const int inst = end.port.instance;
      ExecutePayload e;
      e.count = cand.parts[k].second;
      e.transition = cand.transitions[k];
      const Offer* o = offerOf(inst);
      const std::vector<Value>& after = snapshot[inst];
      for (std::size_t v = 0; v < after.size(); ++v) {
        if (after[v] != o->vars[v]) e.writes.emplace_back(static_cast<int>(v), after[v]);
      }
      ctx.send(cfg_.componentNode.at(inst), kExecute, e.encode());
    }
    // Mark offers consumed.
    for (const auto& [inst, count] : cand.parts) {
      offers_[cfg_.componentNode.at(inst)].valid = false;
    }
    commits_->push_back(Commit{ctx.now(), cand.connector, cand.mask, cand.transitions});
    ctx.commit();
  }

  void sendToken(net::Context& ctx) {
    std::vector<std::int64_t> payload;
    payload.push_back(static_cast<std::int64_t>(tokenTable_.size()));
    for (const auto& [inst, count] : tokenTable_) {
      payload.push_back(inst);
      payload.push_back(count);
    }
    ctx.send(cfg_.nextInRing, kToken, std::move(payload));
  }

  const System* system_;
  IpConfig cfg_;
  std::vector<Commit>* commits_;
  Rng rng_;
  net::NodeId self_ = -1;

  std::map<net::NodeId, Offer> offers_;
  std::optional<Candidate> inFlight_;       // centralized
  std::deque<Candidate> tokenPending_;      // token ring
  std::set<int> pendingInstances_;
  std::map<int, std::int64_t> tokenTable_;  // while holding the token
  std::optional<Candidate> acquiring_;      // philosophers
  std::vector<int> forksNeeded_;
  std::map<int, std::int64_t> heldForks_;
  std::map<int, ForkHome> forkHomes_;
};

/// Centralized conflict-resolution arbiter.
class ArbiterNode final : public net::Node {
 public:
  void onMessage(const net::Message& m, net::Context& ctx) override {
    require(m.type == kReserve, "ArbiterNode: unexpected message");
    const auto n = static_cast<std::size_t>(m.payload[1]);
    bool ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      const int inst = static_cast<int>(m.payload[2 + 2 * i]);
      const std::int64_t count = m.payload[3 + 2 * i];
      auto it = lastCommitted_.find(inst);
      if (it != lastCommitted_.end() && it->second >= count) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (std::size_t i = 0; i < n; ++i) {
        lastCommitted_[static_cast<int>(m.payload[2 + 2 * i])] = m.payload[3 + 2 * i];
      }
    }
    ctx.send(m.from, ok ? kReserveOk : kReserveFail, {m.payload[0]});
  }

 private:
  std::map<int, std::int64_t> lastCommitted_;
};

void checkDistributable(const System& system) {
  system.validate();
  require(system.priorities().empty() && !system.maximalProgress(),
          "runDistributed: priorities are not supported by the S/R transformation");
  for (const Connector& c : system.connectors()) {
    require(!c.hasTrigger(),
            "runDistributed: trigger connectors are not supported (rendezvous only)");
  }
}

}  // namespace

Partition singleBlock(const System& system) {
  Partition p(1);
  for (std::size_t i = 0; i < system.connectorCount(); ++i) p[0].push_back(static_cast<int>(i));
  return p;
}

Partition blockPerConnector(const System& system) {
  Partition p;
  for (std::size_t i = 0; i < system.connectorCount(); ++i) {
    p.push_back({static_cast<int>(i)});
  }
  return p;
}

Partition roundRobinBlocks(const System& system, int k) {
  require(k >= 1, "roundRobinBlocks: need k >= 1");
  Partition p(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < system.connectorCount(); ++i) {
    p[i % static_cast<std::size_t>(k)].push_back(static_cast<int>(i));
  }
  while (!p.empty() && p.back().empty()) p.pop_back();
  return p;
}

DistributedResult runDistributed(const System& system, const Partition& partition,
                                 const DistributedOptions& options) {
  checkDistributable(system);
  // Partition sanity: each connector in exactly one block.
  {
    std::vector<int> seen(system.connectorCount(), 0);
    for (const auto& block : partition) {
      for (const int ci : block) {
        require(ci >= 0 && static_cast<std::size_t>(ci) < system.connectorCount(),
                "runDistributed: connector index out of range");
        ++seen[static_cast<std::size_t>(ci)];
      }
    }
    for (const int s : seen) require(s == 1, "runDistributed: partition must cover each connector once");
  }

  const std::size_t nComp = system.instanceCount();
  const std::size_t nBlocks = partition.size();

  // Which blocks touch each instance?
  std::vector<std::set<int>> blocksOfInstance(nComp);
  for (std::size_t b = 0; b < nBlocks; ++b) {
    for (const int ci : partition[b]) {
      for (const ConnectorEnd& e : system.connector(static_cast<std::size_t>(ci)).ends()) {
        blocksOfInstance[static_cast<std::size_t>(e.port.instance)].insert(static_cast<int>(b));
      }
    }
  }
  std::set<int> shared;
  for (std::size_t i = 0; i < nComp; ++i) {
    if (blocksOfInstance[i].size() > 1) shared.insert(static_cast<int>(i));
  }

  // Node ids: components first, then blocks, then (optional) arbiter.
  std::vector<Commit> commits;
  net::Network network(options.seed, options.latency, options.processing);
  std::map<int, net::NodeId> componentNode;
  for (std::size_t i = 0; i < nComp; ++i) componentNode[static_cast<int>(i)] = static_cast<int>(i);
  const net::NodeId firstBlock = static_cast<net::NodeId>(nComp);
  const net::NodeId arbiter = static_cast<net::NodeId>(nComp + nBlocks);

  // Fork homes: lowest block sharing the instance.
  std::map<int, net::NodeId> forkHome;
  for (const int inst : shared) {
    forkHome[inst] =
        firstBlock + *blocksOfInstance[static_cast<std::size_t>(inst)].begin();
  }

  // Component nodes.
  for (std::size_t i = 0; i < nComp; ++i) {
    std::vector<net::NodeId> targets;
    for (const int b : blocksOfInstance[i]) targets.push_back(firstBlock + b);
    network.addNode(std::make_unique<ComponentNode>(system, static_cast<int>(i),
                                                    std::move(targets)));
  }
  // Block (IP) nodes.
  std::vector<IpNode*> ipNodes;
  for (std::size_t b = 0; b < nBlocks; ++b) {
    IpConfig cfg;
    cfg.connectors = partition[b];
    cfg.blockIndex = static_cast<int>(b);
    cfg.crp = options.crp;
    cfg.arbiter = arbiter;
    cfg.nextInRing = firstBlock + static_cast<int>((b + 1) % nBlocks);
    cfg.startsWithToken = (b == 0);
    cfg.sharedInstances = shared;
    cfg.forkHome = forkHome;
    cfg.componentNode = componentNode;
    cfg.seed = options.seed * 7919 + b;
    auto node = std::make_unique<IpNode>(system, std::move(cfg), &commits);
    IpNode* raw = node.get();
    const net::NodeId id = network.addNode(std::move(node));
    raw->setSelf(id);
    ipNodes.push_back(raw);
  }
  if (options.crp == CrpKind::kCentralized) {
    network.addNode(std::make_unique<ArbiterNode>());
  }

  net::RunLimits limits;
  limits.commitTarget = options.commitTarget;
  limits.maxEvents = options.maxEvents;
  const net::RunStats stats = network.run(limits);

  DistributedResult result;
  result.commits = std::move(commits);
  result.messages = stats.deliveredMessages;
  result.virtualTime = stats.finalTime;
  result.reachedTarget = stats.commits >= options.commitTarget;
  result.deadlocked = stats.quiescent && !result.reachedTarget;
  for (std::size_t node = nComp; node < network.nodeCount(); ++node) {
    result.coordinationMessages += network.deliveredPerNode()[node];
  }
  return result;
}

bool replayAgainstReference(const System& system, const std::vector<Commit>& commits) {
  GlobalState state = initialState(system);
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    runInternal(*system.instance(i).type, state.components[i]);
  }
  for (const Commit& commit : commits) {
    const std::vector<EnabledInteraction> enabled = enabledInteractions(system, state);
    bool fired = false;
    for (const EnabledInteraction& ei : enabled) {
      if (ei.connector != commit.connector || ei.mask != commit.mask) continue;
      if (ei.choices.size() != commit.transitions.size()) continue;
      // Map the recorded global transition indices to choice positions.
      std::vector<int> choice(ei.choices.size());
      bool valid = true;
      for (std::size_t k = 0; k < ei.choices.size() && valid; ++k) {
        const auto& options = ei.choices[k];
        const auto it = std::find(options.begin(), options.end(), commit.transitions[k]);
        if (it == options.end()) {
          valid = false;
        } else {
          choice[k] = static_cast<int>(it - options.begin());
        }
      }
      if (!valid) continue;
      execute(system, state, ei, choice);
      fired = true;
      break;
    }
    if (!fired) return false;
  }
  return true;
}

// ---------- naive refinement (Fig 5.4 bottom) ----------

namespace {

/// Component that unilaterally initiates the connectors where it is the
/// first end; peers acknowledge only while idle.
class NaiveNode final : public net::Node {
 public:
  NaiveNode(const System& system, int instance, std::vector<Commit>* commits,
            std::uint64_t seed)
      : system_(&system),
        instance_(instance),
        commits_(commits),
        rng_(seed),
        state_(initialState(*system.instance(static_cast<std::size_t>(instance)).type)) {}

  void onStart(net::Context& ctx) override {
    runInternal(type(), state_);
    tryInitiate(ctx);
  }

  void onMessage(const net::Message& m, net::Context& ctx) override {
    switch (m.type) {
      case kStart: {
        if (phase_ != Phase::kIdle) {
          deferred_.push_back(m);  // answered after returning to idle
          return;
        }
        const int connector = static_cast<int>(m.payload[0]);
        engagedConnector_ = connector;
        phase_ = Phase::kEngaged;
        ctx.send(m.from, kAgree, {m.payload[0]});
        break;
      }
      case kAgree: {
        require(phase_ == Phase::kInitiating, "NaiveNode: stray agree");
        ++agrees_;
        if (agrees_ == peersNeeded_) {
          // Commit: everyone (including us) fires its transition.
          const Connector& c =
              system_->connector(static_cast<std::size_t>(initiatedConnector_));
          std::vector<int> transitions;
          for (std::size_t e = 0; e < c.endCount(); ++e) {
            const PortRef& p = c.end(e).port;
            if (p.instance == instance_) {
              transitions.push_back(firstEnabled(p.port));
            } else {
              transitions.push_back(-1);  // filled in by the peer
            }
          }
          for (std::size_t e = 0; e < c.endCount(); ++e) {
            const PortRef& p = c.end(e).port;
            if (p.instance != instance_) {
              ctx.send(p.instance, kCommitDone,
                       {static_cast<std::int64_t>(initiatedConnector_)});
            }
          }
          fireOn(initiatedConnector_);
          commits_->push_back(
              Commit{ctx.now(), initiatedConnector_,
                     system_->connector(static_cast<std::size_t>(initiatedConnector_))
                         .fullMask(),
                     {}});
          ctx.commit();
          backToIdle(ctx);
        }
        break;
      }
      case kCommitDone: {
        require(phase_ == Phase::kEngaged, "NaiveNode: stray commit");
        fireOn(engagedConnector_);
        backToIdle(ctx);
        break;
      }
      default:
        throw ModelError("NaiveNode: unexpected message");
    }
  }

 private:
  enum class Phase { kIdle, kInitiating, kEngaged };

  const AtomicType& type() const {
    return *system_->instance(static_cast<std::size_t>(instance_)).type;
  }

  int firstEnabled(int port) const {
    const auto ts = enabledTransitions(type(), state_, port);
    require(!ts.empty(), "NaiveNode: commit on a disabled port");
    return ts.front();
  }

  void fireOn(int connector) {
    const Connector& c = system_->connector(static_cast<std::size_t>(connector));
    for (const ConnectorEnd& e : c.ends()) {
      if (e.port.instance != instance_) continue;
      fire(type(), state_, firstEnabled(e.port.port));
      runInternal(type(), state_);
    }
  }

  void backToIdle(net::Context& ctx) {
    phase_ = Phase::kIdle;
    agrees_ = 0;
    // Serve one deferred request, if any is still relevant.
    while (!deferred_.empty()) {
      const net::Message m = deferred_.front();
      deferred_.pop_front();
      const int connector = static_cast<int>(m.payload[0]);
      const Connector& c = system_->connector(static_cast<std::size_t>(connector));
      bool enabled = true;
      for (const ConnectorEnd& e : c.ends()) {
        if (e.port.instance == instance_ &&
            enabledTransitions(type(), state_, e.port.port).empty()) {
          enabled = false;
        }
      }
      if (enabled) {
        engagedConnector_ = connector;
        phase_ = Phase::kEngaged;
        ctx.send(m.from, kAgree, {m.payload[0]});
        return;
      }
    }
    tryInitiate(ctx);
  }

  void tryInitiate(net::Context& ctx) {
    std::vector<int> candidates;
    for (std::size_t ci = 0; ci < system_->connectorCount(); ++ci) {
      const Connector& c = system_->connector(ci);
      if (c.end(0).port.instance != instance_) continue;  // not the initiator
      bool enabled = true;
      for (const ConnectorEnd& e : c.ends()) {
        if (e.port.instance == instance_ &&
            enabledTransitions(type(), state_, e.port.port).empty()) {
          enabled = false;
        }
      }
      if (enabled) candidates.push_back(static_cast<int>(ci));
    }
    if (candidates.empty()) return;  // passive: only answers requests
    initiatedConnector_ = candidates[rng_.index(candidates.size())];
    const Connector& c = system_->connector(static_cast<std::size_t>(initiatedConnector_));
    phase_ = Phase::kInitiating;
    peersNeeded_ = 0;
    for (const ConnectorEnd& e : c.ends()) {
      if (e.port.instance != instance_) {
        ctx.send(e.port.instance, kStart,
                 {static_cast<std::int64_t>(initiatedConnector_)});
        ++peersNeeded_;
      }
    }
  }

  const System* system_;
  int instance_;
  std::vector<Commit>* commits_;
  Rng rng_;
  AtomicState state_;
  Phase phase_ = Phase::kIdle;
  int initiatedConnector_ = -1;
  int engagedConnector_ = -1;
  int peersNeeded_ = 0;
  int agrees_ = 0;
  std::deque<net::Message> deferred_;
};

}  // namespace

DistributedResult runNaiveRefinement(const System& system, const DistributedOptions& options) {
  checkDistributable(system);
  std::vector<Commit> commits;
  net::Network network(options.seed, options.latency, options.processing);
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    network.addNode(std::make_unique<NaiveNode>(system, static_cast<int>(i), &commits,
                                                options.seed * 31 + i));
  }
  net::RunLimits limits;
  limits.commitTarget = options.commitTarget;
  limits.maxEvents = options.maxEvents;
  const net::RunStats stats = network.run(limits);

  DistributedResult result;
  result.commits = std::move(commits);
  result.messages = stats.deliveredMessages;
  result.virtualTime = stats.finalTime;
  result.reachedTarget = stats.commits >= options.commitTarget;
  result.deadlocked = stats.quiescent && !result.reachedTarget;
  return result;
}

System conflictTriangle() {
  System sys;
  auto node = std::make_shared<AtomicType>("Peer");
  const int l0 = node->addLocation("l");
  const int left = node->addPort("left");
  const int right = node->addPort("right");
  node->addTransition(l0, left, l0);
  node->addTransition(l0, right, l0);
  node->setInitialLocation(l0);
  for (int i = 0; i < 3; ++i) sys.addInstance("c" + std::to_string(i), node);
  sys.addConnector(rendezvous("a", {PortRef{0, right}, PortRef{1, left}}));
  sys.addConnector(rendezvous("b", {PortRef{1, right}, PortRef{2, left}}));
  sys.addConnector(rendezvous("c", {PortRef{2, right}, PortRef{0, left}}));
  sys.validate();
  return sys;
}

}  // namespace cbip::dist
