// Three-layer distributed implementation of BIP systems (S/R-BIP),
// following the transformation of monograph Section 5.6 / Fig 5.4 and [7]
// ("From high-level component-based models to distributed
// implementations").
//
// The multiparty-rendezvous composite is refined into Send/Receive
// protocol layers running on the simulated network (src/net):
//
//   1. Component layer — one node per atomic component. After every
//      transition the component broadcasts an OFFER (its variable
//      snapshot, its offer *count*, and the enabled port/transition sets)
//      to every interaction-protocol node that manages an interaction it
//      participates in, then waits for an EXECUTE.
//
//   2. Interaction protocol layer — one node per *block* of the
//      user-chosen interaction partition. A block node detects enabled
//      interactions from fresh offers, evaluates connector guards on the
//      offered snapshots, resolves conflicts *locally* when all
//      participants are exclusive to the block, and otherwise reserves
//      the shared participants through the conflict-resolution layer.
//      Commits perform the connector data transfer centrally and send
//      each participant an EXECUTE with its transition and down-values.
//
//   3. Conflict resolution layer — Bagrodia-style offer-count
//      reservations with three interchangeable protocols:
//        * kCentralized — a single arbiter node holds the last-committed
//          count of every shared component; RESERVE/OK/FAIL round trips.
//        * kTokenRing — the count table circulates in a token around the
//          block nodes; a block commits its pending reservations when it
//          holds the token.
//        * kPhilosophers — one "fork" per shared component (the dining
//          philosophers resource scheme): forks carry the count entries,
//          are acquired in ascending component order (deadlock-free), are
//          routed through the component's home block, and are returned
//          immediately after the commit or abort.
//
// Correctness argument (tested in test_distributed.cpp): a component
// executes exactly one transition per offer count, a reservation is
// granted at most once per (component, count), and committed interactions
// replay as a valid run of the centralized semantics (observational
// equivalence in the sense of Fig 5.4).
//
// Restrictions, as in [7]: no triggers (rendezvous connectors only) and
// no priorities — the transformation rejects such systems.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "net/network.hpp"

namespace cbip::dist {

enum class CrpKind { kCentralized, kTokenRing, kPhilosophers };

/// Partition of connector indices into blocks; every connector index of
/// the system must appear in exactly one block.
using Partition = std::vector<std::vector<int>>;

/// Everything in one block (fully centralized interaction layer).
Partition singleBlock(const System& system);
/// One block per connector (maximal distribution).
Partition blockPerConnector(const System& system);
/// `k` round-robin blocks.
Partition roundRobinBlocks(const System& system, int k);

/// One committed interaction, with enough detail to replay it on the
/// centralized semantics.
struct Commit {
  net::Time time = 0;
  int connector = 0;
  InteractionMask mask = 0;
  /// Global transition index per participating end (mask order).
  std::vector<int> transitions;
};

struct DistributedOptions {
  CrpKind crp = CrpKind::kCentralized;
  std::uint64_t seed = 1;
  net::Latency latency{1, 1};
  /// Per-message processing time at every node (finite node capacity).
  net::Time processing = 1;
  /// Stop after this many committed interactions.
  std::uint64_t commitTarget = 100;
  std::uint64_t maxEvents = 2'000'000;
};

struct DistributedResult {
  std::vector<Commit> commits;
  std::uint64_t messages = 0;
  net::Time virtualTime = 0;
  bool reachedTarget = false;
  /// Network went quiescent before the target: distributed deadlock
  /// (never happens for the 3-layer runtime on deadlock-free systems).
  bool deadlocked = false;
  /// Messages delivered to interaction-protocol + CRP nodes only
  /// (coordination overhead, excluding component traffic).
  std::uint64_t coordinationMessages = 0;
};

/// Runs `system` distributed with the given partition and CRP.
/// Throws ModelError if the system uses triggers or priorities.
DistributedResult runDistributed(const System& system, const Partition& partition,
                                 const DistributedOptions& options);

/// Replays `commits` against the centralized operational semantics;
/// returns true iff the sequence is a valid centralized run (the
/// observational-equivalence check of experiment E4).
bool replayAgainstReference(const System& system, const std::vector<Commit>& commits);

// ---- the naive refinement of Fig 5.4 (bottom) ----

/// Per-interaction refinement WITHOUT a conflict-resolution layer: the
/// first end of every connector unilaterally commits (sends `start` to
/// its peers and waits for all acknowledgements; peers defer answering
/// while waiting on their own initiation). On systems with a conflict
/// cycle this deadlocks — the instability of unmediated interaction
/// refinement shown at the bottom of Fig 5.4.
DistributedResult runNaiveRefinement(const System& system, const DistributedOptions& options);

/// Three pairwise rendezvous in a cycle (a = {c0,c1}, b = {c1,c2},
/// c = {c2,c0}), each component always willing: deadlock-free centrally,
/// deadlocks under the naive refinement.
System conflictTriangle();

}  // namespace cbip::dist
