#include "shard/sharded.hpp"

#include <algorithm>
#include <bit>
#include <optional>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cbip::shard {

namespace {

// Telemetry (src/obs): counts only, never steers — traces stay
// bit-identical with observability on, off, or compiled out.
const obs::Counter g_tryFireCalls("shard.tryfire.calls");
const obs::Counter g_tryFireHits("shard.tryfire.hits");
const obs::Counter g_scanBatch("shard.scan.batch.calls");
const obs::Counter g_scanScalar("shard.scan.scalar.calls");

/// Evaluation context for a component's local expressions against its
/// variable block inside a shard frame (interpreted escape-hatch twin of
/// ExprProgram::run(frame, base); mirrors expr::VecContext).
class FrameContext final : public expr::EvalContext {
 public:
  FrameContext(std::span<Value> frame, int base, std::size_t varCount)
      : frame_(frame), base_(base), varCount_(varCount) {}

  Value read(expr::VarRef ref) const override {
    check(ref);
    return frame_[static_cast<std::size_t>(base_ + ref.index)];
  }

  void write(expr::VarRef ref, Value value) override {
    check(ref);
    frame_[static_cast<std::size_t>(base_ + ref.index)] = value;
  }

 private:
  void check(expr::VarRef ref) const {
    requireEval(ref.scope == 0, "FrameContext: only scope 0 is bound");
    requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < varCount_,
                "FrameContext: variable index out of range");
  }

  std::span<Value> frame_;
  int base_;
  std::size_t varCount_;
};

/// Resolves connector expressions against a sharded state: scope >= 0 is
/// the scope-th end's exported variable (found in the owning shard's
/// frame), kConnectorScope the transfer-local variable vector. The
/// interpreted twin of the compiled local/cross connector programs,
/// mirroring the sequential InteractionContext in core/semantics.cpp.
class ShardInteractionContext final : public expr::EvalContext {
 public:
  ShardInteractionContext(const ShardedSystem& sharded, const Connector& connector,
                          ShardedState& state, std::vector<Value>& connectorVars)
      : sharded_(&sharded), connector_(&connector), state_(&state), vars_(&connectorVars) {}

  Value read(expr::VarRef ref) const override {
    if (ref.scope == expr::kConnectorScope) {
      requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < vars_->size(),
                  "connector variable out of range");
      return (*vars_)[static_cast<std::size_t>(ref.index)];
    }
    return componentVar(ref);
  }

  void write(expr::VarRef ref, Value value) override {
    if (ref.scope == expr::kConnectorScope) {
      requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < vars_->size(),
                  "connector variable out of range");
      (*vars_)[static_cast<std::size_t>(ref.index)] = value;
      return;
    }
    componentVar(ref) = value;
  }

 private:
  Value& componentVar(expr::VarRef ref) const {
    requireEval(ref.scope >= 0 && static_cast<std::size_t>(ref.scope) < connector_->endCount(),
                "connector expression: end scope out of range");
    const ConnectorEnd& end = connector_->end(static_cast<std::size_t>(ref.scope));
    const AtomicType& type =
        *sharded_->system().instance(static_cast<std::size_t>(end.port.instance)).type;
    const PortDecl& port = type.port(end.port.port);
    requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < port.exports.size(),
                "connector expression: export index out of range");
    std::vector<Value>& frame =
        state_->frames[static_cast<std::size_t>(sharded_->shardOf(end.port.instance))];
    return frame[static_cast<std::size_t>(
        sharded_->frameBase(end.port.instance) +
        port.exports[static_cast<std::size_t>(ref.index)])];
  }

  const ShardedSystem* sharded_;
  const Connector* connector_;
  ShardedState* state_;
  std::vector<Value>* vars_;
};

/// Shared tail of the batched scan: derives the enabled mask set from the
/// per-end lists in `s` with bit operations over the cached feasible
/// masks and materializes one EnabledInteraction per enabled mask. The
/// connector guard is pure over the current state (its value is shared by
/// every mask), so `guardHolds` is invoked lazily — at the first
/// port-feasible mask, where the scalar path evaluates it — and at most
/// once; a false guard rejects every mask.
template <typename GuardHolds>
void appendScannedMasks(const Connector& c, int ci, const std::vector<InteractionMask>& masks,
                        const CompiledConnector::ScanScratch& s,
                        std::vector<EnabledInteraction>& out, GuardHolds&& guardHolds) {
  const std::size_t nEnds = c.endCount();
  InteractionMask enabledEnds = 0;
  for (std::size_t e = 0; e < nEnds; ++e) {
    if (!s.endEnabled[e].empty()) enabledEnds |= InteractionMask{1} << e;
  }
  std::optional<bool> guardOk;
  for (InteractionMask mask : masks) {
    if ((mask & ~enabledEnds) != 0) continue;
    if (!c.guard().isTrue()) {
      if (!guardOk.has_value()) guardOk = guardHolds();
      if (!*guardOk) return;
    }
    EnabledInteraction ei;
    ei.connector = ci;
    ei.mask = mask;
    const int participants = std::popcount(mask);
    ei.ends.reserve(static_cast<std::size_t>(participants));
    ei.choices.reserve(static_cast<std::size_t>(participants));
    for (std::size_t e = 0; e < nEnds; ++e) {
      if ((mask & (InteractionMask{1} << e)) == 0) continue;
      ei.ends.push_back(static_cast<int>(e));
      ei.choices.push_back(s.endEnabled[e]);
    }
    out.push_back(std::move(ei));
  }
}

}  // namespace

ShardedSystem::ShardedSystem(const System& system, Partition partition)
    : system_(&system), partition_(std::move(partition)) {
  system.validate();
  const std::size_t n = system.instanceCount();
  require(partition_.instanceCount() == n,
          "ShardedSystem: partition does not match the system");
  require(system.priorities().empty() && !system.maximalProgress(),
          "ShardedSystem: priority rules / maximal progress are global filters; "
          "sharded execution does not support them");
  require(partition_.shardCount() >= 1, "ShardedSystem: partition has no shards");
  for (std::size_t i = 0; i < n; ++i) {
    require(partition_.shardOf(i) >= 0 &&
                static_cast<std::size_t>(partition_.shardOf(i)) < partition_.shardCount(),
            "ShardedSystem: partition assigns an instance to an out-of-range shard");
  }
  shards_.resize(partition_.shardCount());
  frameBase_.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    Shard& s = shards_[static_cast<std::size_t>(partition_.shardOf(i))];
    s.members.push_back(static_cast<int>(i));
    frameBase_[i] = static_cast<int>(s.frameSize);
    s.frameSize += system.instance(i).type->variableCount();
  }
  const std::size_t cc = system.connectorCount();
  crossIndex_.assign(cc, -1);
  footprint_.resize(cc);
  localPrograms_.resize(cc);
  for (std::size_t ci = 0; ci < cc; ++ci) {
    const Connector& c = system.connector(ci);
    std::vector<int>& insts = footprint_[ci];
    insts.reserve(c.endCount());
    for (const ConnectorEnd& e : c.ends()) insts.push_back(e.port.instance);
    std::sort(insts.begin(), insts.end());
    insts.erase(std::unique(insts.begin(), insts.end()), insts.end());
    std::vector<int> touched;
    for (int inst : insts) touched.push_back(shardOf(inst));
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    if (touched.size() <= 1) {
      const std::size_t s =
          touched.empty() ? 0 : static_cast<std::size_t>(touched.front());
      Shard& home = shards_[s];
      home.localConnectors.push_back(static_cast<int>(ci));
      // Connector-local variables live at the tail of the home frame.
      LocalProgram& lp = localPrograms_[ci];
      lp.connector = static_cast<int>(ci);
      lp.homeShard = static_cast<int>(s);
      lp.varBase = static_cast<int>(home.frameSize);
      lp.varCount = static_cast<int>(c.variableCount());
      home.frameSize += c.variableCount();
    } else {
      CrossConnector x;
      x.connector = static_cast<int>(ci);
      x.shards = std::move(touched);
      x.owner = x.shards.front();
      crossIndex_[ci] = static_cast<int>(cross_.size());
      shards_[static_cast<std::size_t>(x.owner)].ownedCross.push_back(
          static_cast<int>(cross_.size()));
      cross_.push_back(std::move(x));
    }
  }
  // Cached feasible masks per connector (the batched scan derives the
  // enabled mask set from these with bit operations instead of rebuilding
  // the list every scan).
  masks_.resize(cc);
  for (std::size_t ci = 0; ci < cc; ++ci) masks_[ci] = system.connector(ci).feasibleMasks();
  // Force the lazily-built structures the workers will read while still
  // single-threaded (reverse index, transition indexes, compiled
  // programs; the lazy builds have no internal synchronization).
  system.warmIndices();
  if (expr::compilationEnabled()) ensureCompiled();
}

void ShardedSystem::compileLocal(int ci) {
  const Connector& c = system_->connector(static_cast<std::size_t>(ci));
  LocalProgram& lp = localPrograms_[static_cast<std::size_t>(ci)];
  const expr::SlotMap slots = [&](expr::VarRef r) {
    if (r.scope == expr::kConnectorScope) {
      require(r.index >= 0 && static_cast<std::size_t>(r.index) < c.variableCount(),
              "connector '" + c.name() + "': connector variable out of range");
      return lp.varBase + r.index;
    }
    require(r.scope >= 0 && static_cast<std::size_t>(r.scope) < c.endCount(),
            "connector '" + c.name() + "': end scope out of range");
    const ConnectorEnd& end = c.end(static_cast<std::size_t>(r.scope));
    const AtomicType& type =
        *system_->instance(static_cast<std::size_t>(end.port.instance)).type;
    const PortDecl& port = type.port(end.port.port);
    require(r.index >= 0 && static_cast<std::size_t>(r.index) < port.exports.size(),
            "connector '" + c.name() + "': export index out of range");
    return frameBase_[static_cast<std::size_t>(end.port.instance)] +
           port.exports[static_cast<std::size_t>(r.index)];
  };
  lp.guard = expr::ExprProgram();
  if (!c.guard().isTrue()) lp.guard = expr::compile(c.guard(), slots);
  lp.ups.clear();
  for (const expr::Assign& up : c.ups()) {
    require(up.target.scope == expr::kConnectorScope,
            "connector '" + c.name() + "': up target is not a connector variable");
    lp.ups.push_back(LocalProgram::UpOp{slots(up.target), expr::compile(up.value, slots)});
  }
  lp.upBlock = expr::ExprProgram();
  if (!c.ups().empty()) lp.upBlock = expr::compileFused(Expr::top(), c.ups(), slots);
  lp.downs.clear();
  for (const DownAssign& d : c.downs()) {
    lp.downs.push_back(LocalProgram::DownOp{
        d.end, slots(expr::VarRef{d.end, d.exportIndex}), expr::compile(d.value, slots)});
  }
}

void ShardedSystem::compileCross(CrossConnector& x) {
  const auto place = [this, &x](int instance) {
    const auto it = std::lower_bound(x.shards.begin(), x.shards.end(), shardOf(instance));
    return CompiledConnector::FramePlacement{
        static_cast<int>(it - x.shards.begin()), frameBase(instance)};
  };
  x.compiled.emplace(*system_, system_->connector(static_cast<std::size_t>(x.connector)),
                     place);
}

void ShardedSystem::ensureCompiled() {
  if (compiledBuilt_ || !expr::compilationEnabled()) return;
  // Programs may not have been lowered if compilation was toggled on
  // after validate(); warmIndices re-forces them (single-threaded).
  system_->warmIndices();
  for (const Shard& shard : shards_) {
    for (int ci : shard.localConnectors) compileLocal(ci);
  }
  for (CrossConnector& x : cross_) compileCross(x);
  compiledBuilt_ = true;
}

void ShardedSystem::migrate(ShardedState& state, std::span<const Move> moves) {
  const std::size_t n = system_->instanceCount();
  const std::size_t cc = system_->connectorCount();
  // Drop no-op moves up front so "nothing moved" costs nothing.
  std::vector<Move> effective;
  for (const Move& m : moves) {
    require(m.instance >= 0 && static_cast<std::size_t>(m.instance) < n,
            "migrate: instance out of range");
    require(m.toShard >= 0 && static_cast<std::size_t>(m.toShard) < shards_.size(),
            "migrate: destination shard out of range");
    if (shardOf(m.instance) != m.toShard) effective.push_back(m);
  }
  if (effective.empty()) return;

  // Connectors touching a moved instance are the only ones whose layout
  // or classification can change.
  std::vector<char> touched(cc, 0);
  for (const Move& m : effective) {
    for (int ci : system_->connectorsOf(static_cast<std::size_t>(m.instance))) {
      touched[static_cast<std::size_t>(ci)] = 1;
    }
  }

  // Move each instance's variable block to the tail of the destination
  // frame. The source slice becomes a hole: no frameBase points at it any
  // more, and non-moved instances' bases never change.
  for (const Move& m : effective) {
    const std::size_t inst = static_cast<std::size_t>(m.instance);
    const std::size_t from = static_cast<std::size_t>(shardOf(m.instance));
    const std::size_t to = static_cast<std::size_t>(m.toShard);
    const AtomicType& type = *system_->instance(inst).type;
    const std::size_t vc = type.variableCount();
    std::vector<Value>& sf = state.frames[from];
    std::vector<Value>& df = state.frames[to];
    const std::size_t oldBase = static_cast<std::size_t>(frameBase_[inst]);
    const int newBase = static_cast<int>(df.size());
    df.insert(df.end(), sf.begin() + static_cast<std::ptrdiff_t>(oldBase),
              sf.begin() + static_cast<std::ptrdiff_t>(oldBase + vc));
    frameBase_[inst] = newBase;
    partition_.assign(inst, m.toShard);
    shards_[to].frameSize = df.size();
    auto& src = shards_[from].members;
    src.erase(std::lower_bound(src.begin(), src.end(), m.instance));
    auto& dst = shards_[to].members;
    dst.insert(std::lower_bound(dst.begin(), dst.end(), m.instance), m.instance);
  }

  // Reclassify the touched connectors against the new instance->shard
  // mapping. Newly-local connectors get fresh connector-variable tail
  // slots in their home frame (the old slots, wherever they were, leak as
  // holes — fresh-zero semantics re-zeroes the new ones per transfer).
  std::vector<int> shardsOf;  // scratch: involved shards of one connector
  for (std::size_t ci = 0; ci < cc; ++ci) {
    if (touched[ci] == 0) continue;
    const Connector& c = system_->connector(ci);
    shardsOf.clear();
    for (int inst : footprint_[ci]) shardsOf.push_back(shardOf(inst));
    std::sort(shardsOf.begin(), shardsOf.end());
    shardsOf.erase(std::unique(shardsOf.begin(), shardsOf.end()), shardsOf.end());
    if (shardsOf.size() <= 1) {
      const std::size_t home = static_cast<std::size_t>(shardsOf.front());
      LocalProgram& lp = localPrograms_[ci];
      lp.connector = static_cast<int>(ci);
      lp.homeShard = static_cast<int>(home);
      lp.varBase = static_cast<int>(shards_[home].frameSize);
      lp.varCount = static_cast<int>(c.variableCount());
      shards_[home].frameSize += c.variableCount();
      state.frames[home].resize(shards_[home].frameSize, 0);
      if (compiledBuilt_) compileLocal(static_cast<int>(ci));
      crossIndex_[ci] = -1;
    } else {
      localPrograms_[ci] = LocalProgram{};
      crossIndex_[ci] = -2;  // cross; rebuilt below
    }
  }

  // Rebuild the cross-connector table in connector order (preserving the
  // compiled placements of untouched entries) and re-derive every shard's
  // connector lists — O(connectors), all index patching, no compilation.
  std::vector<CrossConnector> newCross;
  newCross.reserve(cross_.size());
  for (std::size_t ci = 0; ci < cc; ++ci) {
    const int xi = crossIndex_[ci];
    if (xi == -1) continue;
    CrossConnector x;
    if (touched[ci] == 0) {
      x = std::move(cross_[static_cast<std::size_t>(xi)]);
    } else {
      x.connector = static_cast<int>(ci);
      for (int inst : footprint_[ci]) x.shards.push_back(shardOf(inst));
      std::sort(x.shards.begin(), x.shards.end());
      x.shards.erase(std::unique(x.shards.begin(), x.shards.end()), x.shards.end());
      x.owner = x.shards.front();
      if (compiledBuilt_) compileCross(x);
    }
    crossIndex_[ci] = static_cast<int>(newCross.size());
    newCross.push_back(std::move(x));
  }
  cross_ = std::move(newCross);
  for (Shard& s : shards_) {
    s.localConnectors.clear();
    s.ownedCross.clear();
  }
  for (std::size_t ci = 0; ci < cc; ++ci) {
    const int xi = crossIndex_[ci];
    if (xi < 0) {
      shards_[static_cast<std::size_t>(localPrograms_[ci].homeShard)].localConnectors.push_back(
          static_cast<int>(ci));
    } else {
      shards_[static_cast<std::size_t>(cross_[static_cast<std::size_t>(xi)].owner)]
          .ownedCross.push_back(xi);
    }
  }
}

ShardedState ShardedSystem::initialState() const {
  ShardedState state;
  state.locations.resize(system_->instanceCount());
  for (std::size_t i = 0; i < system_->instanceCount(); ++i) {
    state.locations[i] = system_->instance(i).type->initialLocation();
  }
  state.frames.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    // Connector-variable tail slots start zero; every transfer re-zeroes
    // them before running its ups (fresh-zero semantics).
    state.frames[s].assign(shards_[s].frameSize, 0);
    for (int inst : shards_[s].members) {
      const AtomicType& type = *system_->instance(static_cast<std::size_t>(inst)).type;
      for (std::size_t v = 0; v < type.variableCount(); ++v) {
        state.frames[s][static_cast<std::size_t>(frameBase_[static_cast<std::size_t>(inst)]) +
                        v] = type.variable(static_cast<int>(v)).init;
      }
    }
  }
  return state;
}

GlobalState ShardedSystem::toGlobal(const ShardedState& state) const {
  GlobalState g;
  g.components.resize(system_->instanceCount());
  for (std::size_t i = 0; i < system_->instanceCount(); ++i) {
    const AtomicType& type = *system_->instance(i).type;
    AtomicState& comp = g.components[i];
    comp.location = state.locations[i];
    const std::vector<Value>& frame =
        state.frames[static_cast<std::size_t>(partition_.shardOf(i))];
    const std::size_t base = static_cast<std::size_t>(frameBase_[i]);
    comp.vars.assign(frame.begin() + static_cast<std::ptrdiff_t>(base),
                     frame.begin() + static_cast<std::ptrdiff_t>(base + type.variableCount()));
  }
  return g;
}

ShardedState ShardedSystem::fromGlobal(const GlobalState& state) const {
  requireEval(state.components.size() == system_->instanceCount(),
              "ShardedSystem::fromGlobal: state does not match the system");
  ShardedState out = initialState();
  for (std::size_t i = 0; i < system_->instanceCount(); ++i) {
    requireEval(state.components[i].vars.size() ==
                    system_->instance(i).type->variableCount(),
                "ShardedSystem::fromGlobal: component variable count mismatch");
    out.locations[i] = state.components[i].location;
    std::vector<Value>& frame = out.frames[static_cast<std::size_t>(partition_.shardOf(i))];
    const std::size_t base = static_cast<std::size_t>(frameBase_[i]);
    for (std::size_t v = 0; v < state.components[i].vars.size(); ++v) {
      frame[base + v] = state.components[i].vars[v];
    }
  }
  return out;
}

bool ShardedSystem::guardHoldsAt(const ShardedState& state, int instance, int ti) const {
  const AtomicType& type = *system_->instance(static_cast<std::size_t>(instance)).type;
  const std::vector<Value>& frame =
      state.frames[static_cast<std::size_t>(shardOf(instance))];
  const int base = frameBase_[static_cast<std::size_t>(instance)];
  if (expr::compilationEnabled()) {
    // All dispatch data lives on the compiled form (trivially true <=>
    // empty program); the symbolic table stays untouched on the hot path.
    const CompiledTransition& ct = type.compiledTransition(ti);
    if (ct.guard.empty()) return true;
    return ct.guard.run(std::span<const Value>(frame), base) != 0;
  }
  const Transition& t = type.transition(ti);
  if (t.guard.isTrue()) return true;
  auto& mutableFrame = const_cast<std::vector<Value>&>(frame);
  FrameContext ctx(mutableFrame, base, type.variableCount());
  return t.guard.eval(ctx) != 0;
}

void ShardedSystem::enabledTransitionsAt(const ShardedState& state, int instance, int port,
                                         std::vector<int>& out) const {
  out.clear();
  const AtomicType& type = *system_->instance(static_cast<std::size_t>(instance)).type;
  for (int ti :
       type.transitionsFrom(state.locations[static_cast<std::size_t>(instance)], port)) {
    if (guardHoldsAt(state, instance, ti)) out.push_back(ti);
  }
}

void ShardedSystem::fireAt(ShardedState& state, int instance, int ti) const {
  const AtomicType& type = *system_->instance(static_cast<std::size_t>(instance)).type;
  int& location = state.locations[static_cast<std::size_t>(instance)];
  std::vector<Value>& frame = state.frames[static_cast<std::size_t>(shardOf(instance))];
  const int base = frameBase_[static_cast<std::size_t>(instance)];
  if (expr::compilationEnabled()) {
    const CompiledTransition& ct = type.compiledTransition(ti);
    if (ct.from != location) {
      throw ModelError(type.name() + ": firing transition from wrong location");
    }
    if (expr::fusionEnabled()) {
      // One dispatch for the whole action block, frame-base-relative on
      // the live shard frame (stores land in place: sequential semantics).
      if (!ct.actionBlock.empty()) ct.actionBlock.run(std::span<Value>(frame), base);
    } else {
      // Unfused escape hatch: each action sees earlier writes because the
      // frame region *is* the live variable block.
      for (const CompiledTransition::Action& a : ct.actions) {
        frame[static_cast<std::size_t>(base + a.target)] =
            a.value.run(std::span<const Value>(frame), base);
      }
    }
    location = ct.to;
    return;
  }
  const Transition& t = type.transition(ti);
  require(t.from == location, type.name() + ": firing transition from wrong location");
  FrameContext ctx(frame, base, type.variableCount());
  expr::applyAssignments(t.actions, ctx);
  location = t.to;
}

bool ShardedSystem::tryFireAt(ShardedState& state, int instance, int ti) const {
  g_tryFireCalls.add();
  const AtomicType& type = *system_->instance(static_cast<std::size_t>(instance)).type;
  int& location = state.locations[static_cast<std::size_t>(instance)];
  std::vector<Value>& frame = state.frames[static_cast<std::size_t>(shardOf(instance))];
  const int base = frameBase_[static_cast<std::size_t>(instance)];
  if (expr::compilationEnabled() && expr::fusionEnabled()) {
    const CompiledTransition& ct = type.compiledTransition(ti);
    if (ct.from != location) {
      throw ModelError(type.name() + ": firing transition from wrong location");
    }
    if (!ct.fused.empty() && ct.fused.run(std::span<Value>(frame), base) == 0) return false;
    location = ct.to;
    g_tryFireHits.add();
    return true;
  }
  // Unfused / interpreted twins: separate guard check, then fireAt, with
  // the same location-check-first order as the fused dispatch.
  const Transition& t = type.transition(ti);
  if (t.from != location) {
    throw ModelError(type.name() + ": firing transition from wrong location");
  }
  if (!guardHoldsAt(state, instance, ti)) return false;
  fireAt(state, instance, ti);
  g_tryFireHits.add();
  return true;
}

void ShardedSystem::runInternalAt(ShardedState& state, int instance, int maxSteps) const {
  const AtomicType& type = *system_->instance(static_cast<std::size_t>(instance)).type;
  for (int step = 0; step < maxSteps; ++step) {
    // One tryFireAt dispatch per candidate in transition order (mirrors
    // runInternal in core/atomic.cpp): the first enabled one fires.
    bool fired = false;
    for (int ti : type.transitionsFrom(state.locations[static_cast<std::size_t>(instance)],
                                       kInternalPort)) {
      if (tryFireAt(state, instance, ti)) {
        fired = true;
        break;
      }
    }
    if (!fired) return;
  }
  throw EvalError(type.name() + ": internal transitions diverge (> " +
                  std::to_string(maxSteps) + " tau steps)");
}

void ShardedSystem::appendConnectorInteractions(const ShardedState& state, int ci,
                                                std::vector<EnabledInteraction>& out) const {
  const Connector& c = system_->connector(static_cast<std::size_t>(ci));
  if (expr::compilationEnabled() && batchScanEnabled()) {
    g_scanBatch.add();
    // Batched scan twin of the compiled scalar path below: per-end enabled
    // transitions into reusable scratch, then the mask set by bit
    // operations over the masks cached at construction. Shard-local
    // connectors take the zero-gather form — their transition guards and
    // connector guard run frame-base-relative against the home shard's
    // live frame in one ExprProgram::runBatch pass (the frame *is* the
    // gathered frame); cross-shard connectors keep the classic gather for
    // the connector guard only. Evaluation order (end-ascending, then
    // transition order, then the lazily-evaluated shared guard) matches
    // the scalar path, so the first EvalError of a doomed scan agrees.
    // Inside runBatch the ops dispatch through the threaded VM core, and
    // a run of >= kMinBlockRun consecutive ops sharing one guard program
    // (same type, same end order) additionally takes the block-parallel
    // executor — both transparent here, because the batch keeps the
    // scalar op order and first-EvalError contract bit for bit.
    const std::size_t nEnds = c.endCount();
    static thread_local CompiledConnector::ScanScratch s;
    if (s.endEnabled.size() < nEnds) s.endEnabled.resize(nEnds);
    const int xi = crossIndex_[static_cast<std::size_t>(ci)];
    if (xi < 0) {
      const LocalProgram& lp = localPrograms_[static_cast<std::size_t>(ci)];
      const std::vector<Value>& frame = state.frames[static_cast<std::size_t>(lp.homeShard)];
      if (s.endTis.size() < nEnds) s.endTis.resize(nEnds);
      s.ops.clear();
      s.trivial.clear();
      for (std::size_t e = 0; e < nEnds; ++e) {
        const PortRef& p = c.end(e).port;
        const AtomicType& type = *system_->instance(static_cast<std::size_t>(p.instance)).type;
        const std::vector<int>& tis = type.transitionsFrom(
            state.locations[static_cast<std::size_t>(p.instance)], p.port);
        s.endTis[e] = &tis;
        for (int ti : tis) {
          const expr::ExprProgram& g = type.compiledTransition(ti).guard;
          s.trivial.push_back(g.empty() ? 1 : 0);
          if (!g.empty()) {
            s.ops.push_back(expr::BatchOp{&g, frameBase_[static_cast<std::size_t>(p.instance)]});
          }
        }
      }
      if (!s.ops.empty()) {
        s.results.resize(s.ops.size());
        expr::ExprProgram::runBatch(s.ops, frame, s.results);
      }
      std::size_t k = 0;
      std::size_t r = 0;
      for (std::size_t e = 0; e < nEnds; ++e) {
        std::vector<int>& list = s.endEnabled[e];
        list.clear();
        for (int ti : *s.endTis[e]) {
          if (s.trivial[k++] != 0 || s.results[r++] != 0) list.push_back(ti);
        }
      }
      appendScannedMasks(c, ci, masks_[static_cast<std::size_t>(ci)], s, out, [&] {
        requireEval(compiledBuilt_, "ShardedSystem: ensureCompiled() has not run");
        return lp.guard.run(frame) != 0;
      });
    } else {
      for (std::size_t e = 0; e < nEnds; ++e) {
        const PortRef& p = c.end(e).port;
        enabledTransitionsAt(state, p.instance, p.port, s.endEnabled[e]);
      }
      appendScannedMasks(c, ci, masks_[static_cast<std::size_t>(ci)], s, out, [&] {
        requireEval(compiledBuilt_, "ShardedSystem: ensureCompiled() has not run");
        const CrossConnector& x = cross_[static_cast<std::size_t>(xi)];
        static thread_local std::vector<Value> scratch;
        static thread_local std::vector<std::span<const Value>> frames;
        scratch.resize(x.compiled->frameSize());
        frames.clear();
        for (int sh : x.shards) frames.push_back(state.frames[static_cast<std::size_t>(sh)]);
        x.compiled->gather(frames, scratch);
        return x.compiled->evalGuard(scratch) != 0;
      });
    }
    return;
  }
  g_scanScalar.add();
  std::vector<std::vector<int>> endEnabled(c.endCount());
  for (std::size_t e = 0; e < c.endCount(); ++e) {
    enabledTransitionsAt(state, c.end(e).port.instance, c.end(e).port.port, endEnabled[e]);
  }
  // Lazy single guard evaluation per scan, like the reference
  // appendConnectorInteractions.
  std::optional<bool> guardOk;
  const auto guardHolds = [&]() {
    if (!guardOk.has_value()) {
      if (expr::compilationEnabled()) {
        requireEval(compiledBuilt_, "ShardedSystem: ensureCompiled() has not run");
        const int xi = crossIndex_[static_cast<std::size_t>(ci)];
        if (xi < 0) {
          // Shard-local: the guard program addresses the shard frame
          // directly — no gather at all.
          const LocalProgram& lp = localPrograms_[static_cast<std::size_t>(ci)];
          guardOk =
              lp.guard.run(state.frames[static_cast<std::size_t>(lp.homeShard)]) != 0;
        } else {
          const CrossConnector& x = cross_[static_cast<std::size_t>(xi)];
          static thread_local std::vector<Value> scratch;
          static thread_local std::vector<std::span<const Value>> frames;
          scratch.resize(x.compiled->frameSize());
          frames.clear();
          for (int s : x.shards) frames.push_back(state.frames[static_cast<std::size_t>(s)]);
          x.compiled->gather(frames, scratch);
          guardOk = x.compiled->evalGuard(scratch) != 0;
        }
      } else {
        // Mirror the interpreter exactly, including its empty
        // connector-variable vector during guard evaluation.
        auto& mutableState = const_cast<ShardedState&>(state);
        std::vector<Value> noVars;
        ShardInteractionContext ctx(*this, c, mutableState, noVars);
        guardOk = c.guard().eval(ctx) != 0;
      }
    }
    return *guardOk;
  };
  for (InteractionMask mask : c.feasibleMasks()) {
    bool allEnabled = true;
    for (std::size_t e = 0; e < c.endCount(); ++e) {
      if ((mask & (InteractionMask{1} << e)) != 0 && endEnabled[e].empty()) {
        allEnabled = false;
        break;
      }
    }
    if (!allEnabled) continue;
    if (!c.guard().isTrue() && !guardHolds()) continue;
    EnabledInteraction ei;
    ei.connector = ci;
    ei.mask = mask;
    for (std::size_t e = 0; e < c.endCount(); ++e) {
      if ((mask & (InteractionMask{1} << e)) == 0) continue;
      ei.ends.push_back(static_cast<int>(e));
      ei.choices.push_back(endEnabled[e]);
    }
    out.push_back(std::move(ei));
  }
}

void ShardedSystem::connectorTransfer(ShardedState& state,
                                      const EnabledInteraction& interaction) const {
  const int ci = interaction.connector;
  const Connector& c = system_->connector(static_cast<std::size_t>(ci));
  if (expr::compilationEnabled()) {
    requireEval(compiledBuilt_, "ShardedSystem: ensureCompiled() has not run");
    const int xi = crossIndex_[static_cast<std::size_t>(ci)];
    if (xi < 0) {
      const LocalProgram& lp = localPrograms_[static_cast<std::size_t>(ci)];
      if (lp.ups.empty() && lp.downs.empty()) return;
      std::vector<Value>& frame = state.frames[static_cast<std::size_t>(lp.homeShard)];
      // Fresh-zero connector variables (interpreter semantics), then run
      // ups and participating downs in place on the live frame. With
      // fusion enabled the whole up block is one program dispatch.
      std::fill(frame.begin() + lp.varBase, frame.begin() + lp.varBase + lp.varCount, 0);
      if (expr::fusionEnabled()) {
        if (!lp.upBlock.empty()) lp.upBlock.run(std::span<Value>(frame), 0);
      } else {
        for (const LocalProgram::UpOp& u : lp.ups) {
          frame[static_cast<std::size_t>(u.slot)] = u.value.run(frame);
        }
      }
      for (const LocalProgram::DownOp& d : lp.downs) {
        if ((interaction.mask & (InteractionMask{1} << static_cast<unsigned>(d.end))) == 0) {
          continue;
        }
        frame[static_cast<std::size_t>(d.slot)] = d.value.run(frame);
      }
      return;
    }
    const CrossConnector& x = cross_[static_cast<std::size_t>(xi)];
    if (!x.compiled->hasTransfer()) return;
    static thread_local std::vector<Value> scratch;
    static thread_local std::vector<std::span<const Value>> constFrames;
    static thread_local std::vector<std::span<Value>> mutFrames;
    scratch.resize(x.compiled->frameSize());
    constFrames.clear();
    mutFrames.clear();
    for (int s : x.shards) {
      constFrames.push_back(state.frames[static_cast<std::size_t>(s)]);
      mutFrames.push_back(state.frames[static_cast<std::size_t>(s)]);
    }
    x.compiled->gather(constFrames, scratch);
    x.compiled->transfer(mutFrames, scratch, interaction.mask);
    return;
  }
  // Interpreted fallback: up then down (down only to participating ends),
  // mirroring connectorTransfer in core/semantics.cpp.
  std::vector<Value> connectorVars(c.variableCount(), 0);
  ShardInteractionContext ctx(*this, c, state, connectorVars);
  expr::applyAssignments(c.ups(), ctx);
  for (const DownAssign& d : c.downs()) {
    const bool participates =
        (interaction.mask & (InteractionMask{1} << static_cast<unsigned>(d.end))) != 0;
    if (!participates) continue;
    const Value v = d.value.eval(ctx);
    ctx.write(expr::VarRef{d.end, d.exportIndex}, v);
  }
}

void ShardedSystem::executeInteraction(ShardedState& state,
                                       const EnabledInteraction& interaction,
                                       std::span<const int> transitionChoice) const {
  const Connector& c = system_->connector(static_cast<std::size_t>(interaction.connector));
  require(transitionChoice.size() == interaction.ends.size(),
          "executeInteraction: transition choice arity mismatch");
  connectorTransfer(state, interaction);
  for (std::size_t k = 0; k < interaction.ends.size(); ++k) {
    const ConnectorEnd& end = c.end(static_cast<std::size_t>(interaction.ends[k]));
    const std::vector<int>& options = interaction.choices[k];
    const int pick = transitionChoice[k];
    require(pick >= 0 && static_cast<std::size_t>(pick) < options.size(),
            "executeInteraction: transition choice out of range");
    fireAt(state, end.port.instance, options[static_cast<std::size_t>(pick)]);
  }
  for (std::size_t k = 0; k < interaction.ends.size(); ++k) {
    runInternalAt(state, c.end(static_cast<std::size_t>(interaction.ends[k])).port.instance);
  }
}

}  // namespace cbip::shard
