#include "shard/engine_sharded.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"

namespace cbip::shard {

namespace {

// Telemetry (src/obs): counts only, never steers — traces stay
// bit-identical with observability on, off, or compiled out. Per-shard
// metrics ("shard.<s>.*") are registered lazily at run end because the
// shard count is per-engine; everything below is flushed at barrier
// completions or after the join, never on the per-interaction hot path.
const obs::Counter g_runs("engine.sharded.runs");
const obs::Counter g_steps("engine.sharded.steps");
const obs::Counter g_epochs("engine.sharded.epochs");
const obs::Counter g_stalled("engine.sharded.epochs.stalled");
const obs::Counter g_crossCandidates("engine.sharded.cross.candidates");
const obs::Counter g_crossAccepted("engine.sharded.cross.accepted");
const obs::Counter g_crossConflicts("engine.sharded.cross.conflicts");

/// Independent deterministic policy seed per shard; shard 0 keeps the
/// user seed so a K=1 run consumes the identical RandomPolicy stream as
/// SequentialEngine with RandomPolicy(seed).
std::uint64_t shardSeed(std::uint64_t seed, std::size_t shard) {
  return seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(shard);
}

/// One interaction executed during the run, with enough ordering
/// structure to rebuild the canonical serialization afterwards: epochs
/// ascending; within an epoch the cross phase (accepted order) precedes
/// the local phase (shard-ascending, then execution order).
struct Event {
  std::uint64_t epoch = 0;
  int phase = 0;  // 0 = cross, 1 = local
  int shard = 0;  // 0 for cross events (ordered by seq alone)
  std::uint64_t seq = 0;
  int connector = 0;
  InteractionMask mask = 0;
  std::string label;
};

bool eventBefore(const Event& a, const Event& b) {
  return std::tie(a.epoch, a.phase, a.shard, a.seq) <
         std::tie(b.epoch, b.phase, b.shard, b.seq);
}

/// Per-shard worker bookkeeping. Enabled sets are cached per owned
/// connector (local connectors of the shard + cross connectors the shard
/// owns), maintained incrementally like EnabledInteractionCache.
struct Worker {
  std::vector<std::vector<EnabledInteraction>> perLocal;  // by position in localConnectors
  std::vector<std::vector<EnabledInteraction>> perCross;  // by position in ownedCross
  std::unique_ptr<SchedulingPolicy> policy;

  // Instances this shard dirtied during the epoch (cross + local
  // executions). Written only by the owning worker; read by every worker
  // during the next plan phase to refresh cross-connector caches.
  std::vector<int> dirtyLog;

  // Instances of this shard dirtied by cross-shard executions (possibly
  // performed by another shard's worker). Guarded by `mutex`, which
  // doubles as the shard's frame lock during the cross phase.
  std::mutex mutex;
  std::vector<int> crossDirty;

  // Published at plan time, consumed by the barrier completion.
  std::vector<EnabledInteraction> crossCandidates;
  std::size_t localEnabledCount = 0;

  std::uint64_t localExecuted = 0;  // this epoch
  std::uint64_t crossExecuted = 0;  // this epoch (owned crosses only)
  std::vector<Event> events;

  // Owner-only wall-clock accumulators (nanoseconds), read after the
  // join; populated only while timing is active (see `timed` below).
  std::uint64_t planNs = 0;
  std::uint64_t crossNs = 0;
  std::uint64_t localNs = 0;
  std::uint64_t idleNs = 0;
  std::uint64_t lockWaitNs = 0;

  // Scratch.
  std::vector<char> connectorQueued;  // dedup marks, sized connectorCount
  std::vector<EnabledInteraction> flat;
  std::vector<int> drained;
};

struct AcceptedCross {
  EnabledInteraction interaction;
  int crossIndex = 0;  // into ShardedSystem::crossConnectors()
};

}  // namespace

ShardedEngine::ShardedEngine(const System& system, Partition partition)
    : sharded_(system, std::move(partition)) {}

ShardedEngine::ShardedEngine(const System& system, std::size_t shards)
    : sharded_(system, partitionSystem(system, PartitionOptions{shards, 1.125, {}})) {}

RunResult ShardedEngine::run(const ShardedOptions& options) {
  require(options.epochBatch >= 1, "ShardedEngine: epochBatch must be >= 1");
  ShardedSystem& ss = sharded_;
  const System& system = ss.system();
  const std::size_t K = ss.shardCount();
  const std::size_t connectorCount = system.connectorCount();
  // Compilation may have been toggled on after construction; re-warm every
  // lazy index and program now, while still single-threaded (mirrors the
  // other engines), and assert the warm-up actually happened — under TSan
  // a missed build would otherwise surface only as a data race between
  // workers.
  system.warmIndices();
  ss.ensureCompiled();
  require(system.indicesWarm(), "ShardedEngine: indices must be warm before workers start");

  ShardedState state = ss.initialState();

  stats_ = ShardedStats{};
  stats_.shards.resize(K);
  g_runs.add();
  // Wall-clock timing (phase spans, barrier-wait, lock-wait) is read only
  // when someone can observe it: the obs runtime toggle is on or a trace
  // sink is installed. Sampled once per run; epoch-grained, so the cost
  // when active is a handful of clock reads per barrier crossing.
#if defined(CBIP_NO_OBS)
  obs::TraceLog* const sink = nullptr;
  const bool timed = false;
#else
  obs::TraceLog* const sink = obs::traceSink();
  const bool timed = obs::enabled() || sink != nullptr;
#endif

  // Position of each local connector within its home shard's list, and of
  // each cross connector within its owner's list.
  std::vector<int> localPos(connectorCount, -1);
  std::vector<int> ownedPos(ss.crossConnectors().size(), -1);
  for (std::size_t s = 0; s < K; ++s) {
    const ShardedSystem::Shard& shard = ss.shard(s);
    for (std::size_t i = 0; i < shard.localConnectors.size(); ++i) {
      localPos[static_cast<std::size_t>(shard.localConnectors[i])] = static_cast<int>(i);
    }
    for (std::size_t i = 0; i < shard.ownedCross.size(); ++i) {
      ownedPos[static_cast<std::size_t>(shard.ownedCross[i])] = static_cast<int>(i);
    }
  }

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(K);
  for (std::size_t s = 0; s < K; ++s) {
    auto w = std::make_unique<Worker>();
    w->perLocal.resize(ss.shard(s).localConnectors.size());
    w->perCross.resize(ss.shard(s).ownedCross.size());
    w->policy = options.policyFactory ? options.policyFactory(s)
                                      : std::make_unique<RandomPolicy>(
                                            shardSeed(options.seed, s));
    w->connectorQueued.assign(connectorCount, 0);
    workers.push_back(std::move(w));
  }

  // ---- shared epoch state (all transitions ride the barriers) ----
  const GlobalState placeholder;  // handed to policies; see ShardedOptions
  std::uint64_t epoch = 0;
  std::uint64_t executedTotal = 0;
  bool bootstrap = true;
  bool stop = false;
  StopReason reason = StopReason::kStepLimit;
  std::vector<AcceptedCross> accepted;
  std::vector<std::uint64_t> localQuota(K, 0);
  std::vector<char> instanceUsed(system.instanceCount(), 0);
  std::atomic<bool> abort{false};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  const auto capture = [&]() {
    const std::scoped_lock lock(errorMutex);
    if (!firstError) firstError = std::current_exception();
    abort.store(true, std::memory_order_relaxed);
  };

  // Plan resolution: runs on one thread at the plan barrier.
  const auto resolvePlan = [&]() noexcept {
    accepted.clear();
    std::fill(localQuota.begin(), localQuota.end(), 0);
    if (abort.load(std::memory_order_relaxed)) return;
    const std::uint64_t remaining = options.maxSteps - executedTotal;
    // Deterministic conflict resolution over all published cross-shard
    // candidates: (connector, mask) order, greedy instance-disjoint.
    std::vector<std::pair<const EnabledInteraction*, int>> candidates;
    for (std::size_t s = 0; s < K; ++s) {
      for (const EnabledInteraction& ei : workers[s]->crossCandidates) {
        candidates.push_back({&ei, ss.crossIndexOf(ei.connector)});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                return std::tie(a.first->connector, a.first->mask) <
                       std::tie(b.first->connector, b.first->mask);
              });
    std::fill(instanceUsed.begin(), instanceUsed.end(), 0);
    stats_.crossCandidates += candidates.size();
    for (const auto& [ei, xi] : candidates) {
      if (accepted.size() >= remaining) break;
      const std::vector<int>& footprint = ss.connectorInstances(ei->connector);
      bool clash = false;
      for (int inst : footprint) {
        if (instanceUsed[static_cast<std::size_t>(inst)] != 0) {
          clash = true;
          break;
        }
      }
      if (clash) {
        ++stats_.crossConflicts;
        continue;
      }
      for (int inst : footprint) instanceUsed[static_cast<std::size_t>(inst)] = 1;
      accepted.push_back(AcceptedCross{*ei, xi});
    }
    stats_.crossAccepted += accepted.size();
    // Local step quotas: rotate the deal across shards that reported
    // enabled local work so no shard starves under a tight budget.
    std::uint64_t budget = remaining - accepted.size();
    bool progress = true;
    while (budget > 0 && progress) {
      progress = false;
      for (std::size_t i = 0; i < K && budget > 0; ++i) {
        const std::size_t s = (epoch + i) % K;
        if (workers[s]->localEnabledCount == 0) continue;
        if (localQuota[s] >= options.epochBatch) continue;
        ++localQuota[s];
        --budget;
        progress = true;
      }
    }
  };

  // Epoch bookkeeping: runs on one thread at the end-of-epoch barrier.
  const auto closeEpoch = [&]() noexcept {
    if (bootstrap) {
      bootstrap = false;
      return;
    }
    std::uint64_t epochExec = accepted.size();
    for (const auto& w : workers) epochExec += w->localExecuted;
    executedTotal += epochExec;
    // Per-shard load accounting (single-threaded here: the barrier
    // completion runs on exactly one thread while the others wait).
    ++stats_.epochs;
    bool anyIdle = false;
    for (std::size_t s = 0; s < K; ++s) {
      const Worker& w = *workers[s];
      ShardedStats::Shard& sh = stats_.shards[s];
      sh.localSteps += w.localExecuted;
      sh.crossSteps += w.crossExecuted;
      sh.steps += w.localExecuted + w.crossExecuted;
      sh.quotaGranted += localQuota[s];
      sh.quotaUnused += localQuota[s] - w.localExecuted;
      if (epochExec > 0 && w.localExecuted + w.crossExecuted == 0) {
        ++sh.idleEpochs;
        anyIdle = true;
      }
    }
    if (anyIdle) ++stats_.stalledEpochs;
    if (abort.load(std::memory_order_relaxed)) {
      stop = true;
    } else if (executedTotal >= options.maxSteps) {
      reason = StopReason::kStepLimit;
      stop = true;
    } else if (epochExec == 0) {
      reason = StopReason::kDeadlock;
      stop = true;
    }
    ++epoch;
  };

  std::barrier planBarrier(static_cast<std::ptrdiff_t>(K), resolvePlan);
  std::barrier crossBarrier(static_cast<std::ptrdiff_t>(K), []() noexcept {});
  std::barrier epochBarrier(static_cast<std::ptrdiff_t>(K), closeEpoch);

  // Re-derives this shard's local connectors touching `inst`. Never
  // touches cross connectors: their recompute reads foreign frames, which
  // is only safe in the plan phase (all frames quiescent) — intra-epoch
  // changes reach them through the dirty log instead. A local connector
  // with an end on one of this shard's instances is necessarily homed
  // here, so `localPos` membership is the whole ownership check.
  const auto refreshLocalsOf = [&](Worker& w, int inst) {
    for (int ci : system.connectorsOf(static_cast<std::size_t>(inst))) {
      auto& queued = w.connectorQueued[static_cast<std::size_t>(ci)];
      if (queued) continue;
      queued = 1;
      const int li = localPos[static_cast<std::size_t>(ci)];
      if (li < 0) continue;
      auto& list = w.perLocal[static_cast<std::size_t>(li)];
      list.clear();
      ss.appendConnectorInteractions(state, ci, list);
    }
  };
  const auto clearQueuedOf = [&](Worker& w, int inst) {
    for (int ci : system.connectorsOf(static_cast<std::size_t>(inst))) {
      w.connectorQueued[static_cast<std::size_t>(ci)] = 0;
    }
  };

  const auto planPhase = [&](std::size_t s) {
    Worker& w = *workers[s];
    const ShardedSystem::Shard& shard = ss.shard(s);
    if (epoch == 0) {
      // First epoch: full recompute of everything this shard owns.
      for (std::size_t i = 0; i < shard.localConnectors.size(); ++i) {
        w.perLocal[i].clear();
        ss.appendConnectorInteractions(state, shard.localConnectors[i], w.perLocal[i]);
      }
      for (std::size_t i = 0; i < shard.ownedCross.size(); ++i) {
        const int ci =
            ss.crossConnectors()[static_cast<std::size_t>(shard.ownedCross[i])].connector;
        w.perCross[i].clear();
        ss.appendConnectorInteractions(state, ci, w.perCross[i]);
      }
    } else {
      // Refresh owned cross connectors touched by any shard's executions
      // last epoch. (Local connectors never need this pass: only cross
      // executions and this shard's own local executions can dirty them,
      // and both update them within the epoch.)
      for (std::size_t t = 0; t < K; ++t) {
        for (int inst : workers[t]->dirtyLog) {
          for (int ci : system.connectorsOf(static_cast<std::size_t>(inst))) {
            const int xi = ss.crossIndexOf(ci);
            if (xi < 0 ||
                ss.crossConnectors()[static_cast<std::size_t>(xi)].owner !=
                    static_cast<int>(s)) {
              continue;
            }
            auto& queued = w.connectorQueued[static_cast<std::size_t>(ci)];
            if (queued) continue;
            queued = 1;
            auto& list =
                w.perCross[static_cast<std::size_t>(ownedPos[static_cast<std::size_t>(xi)])];
            list.clear();
            ss.appendConnectorInteractions(state, ci, list);
          }
        }
      }
      for (std::size_t t = 0; t < K; ++t) {
        for (int inst : workers[t]->dirtyLog) {
          for (int ci : system.connectorsOf(static_cast<std::size_t>(inst))) {
            w.connectorQueued[static_cast<std::size_t>(ci)] = 0;
          }
        }
      }
    }
    w.crossCandidates.clear();
    for (const auto& list : w.perCross) {
      w.crossCandidates.insert(w.crossCandidates.end(), list.begin(), list.end());
    }
    w.localEnabledCount = 0;
    for (const auto& list : w.perLocal) w.localEnabledCount += list.size();
  };

  const auto crossPhase = [&](std::size_t s) {
    Worker& w = *workers[s];
    w.dirtyLog.clear();  // every shard finished reading it during plan
    w.localExecuted = 0;
    w.crossExecuted = 0;
    for (std::size_t idx = 0; idx < accepted.size(); ++idx) {
      const AcceptedCross& entry = accepted[idx];
      const ShardedSystem::CrossConnector& x =
          ss.crossConnectors()[static_cast<std::size_t>(entry.crossIndex)];
      if (x.owner != static_cast<int>(s)) continue;
      // Transition choices come from the owner's policy, consumed in
      // deterministic accepted order.
      std::vector<EnabledInteraction> one{entry.interaction};
      const auto [pick, choice] = w.policy->pick(system, placeholder, one);
      require(pick == 0, "SchedulingPolicy returned out-of-range interaction");
      // Ordered locking of every involved shard (ascending shard id,
      // deadlock-free): serializes frame access and dirty-queue pushes
      // against the other accepted crosses sharing a shard. RAII locks so
      // an EvalError out of executeInteraction (rethrown after the run)
      // cannot leave a mutex held and wedge the other owners.
      {
        std::vector<std::unique_lock<std::mutex>> locks;
        locks.reserve(x.shards.size());
        const std::uint64_t lockT0 = timed ? obs::nowNanos() : 0;
        for (int t : x.shards) {
          locks.emplace_back(workers[static_cast<std::size_t>(t)]->mutex);
        }
        if (timed) w.lockWaitNs += obs::nowNanos() - lockT0;
        ss.executeInteraction(state, entry.interaction, choice);
        for (int inst : ss.connectorInstances(entry.interaction.connector)) {
          w.dirtyLog.push_back(inst);
          workers[static_cast<std::size_t>(ss.shardOf(inst))]->crossDirty.push_back(inst);
        }
      }
      ++w.crossExecuted;
      if (options.recordTrace) {
        w.events.push_back(Event{epoch, 0, 0, idx, entry.interaction.connector,
                                 entry.interaction.mask,
                                 interactionLabel(system, entry.interaction)});
      }
    }
  };

  const auto localPhase = [&](std::size_t s) {
    Worker& w = *workers[s];
    // Refresh local connectors dirtied by this epoch's cross executions.
    {
      const std::scoped_lock lock(w.mutex);
      w.drained.assign(w.crossDirty.begin(), w.crossDirty.end());
      w.crossDirty.clear();
    }
    for (int inst : w.drained) refreshLocalsOf(w, inst);
    for (int inst : w.drained) clearQueuedOf(w, inst);
    // Shard-local run loop: the sequential engine's step loop confined to
    // this shard's frame.
    const std::uint64_t quota = localQuota[s];
    while (w.localExecuted < quota) {
      w.flat.clear();
      for (const auto& list : w.perLocal) {
        w.flat.insert(w.flat.end(), list.begin(), list.end());
      }
      if (w.flat.empty()) break;
      const auto [idx, choice] = w.policy->pick(system, placeholder, w.flat);
      require(idx < w.flat.size(), "SchedulingPolicy returned out-of-range interaction");
      const EnabledInteraction ei = w.flat[idx];
      ss.executeInteraction(state, ei, choice);
      if (options.recordTrace) {
        w.events.push_back(Event{epoch, 1, static_cast<int>(s), w.localExecuted, ei.connector,
                                 ei.mask, interactionLabel(system, ei)});
      }
      ++w.localExecuted;
      // Incremental cache maintenance: re-derive the local connectors
      // touching the dirtied instances now; cross connectors are deferred
      // to the next plan phase through the dirty log.
      const std::vector<int>& dirty = ss.connectorInstances(ei.connector);
      for (int inst : dirty) {
        w.dirtyLog.push_back(inst);
        refreshLocalsOf(w, inst);
      }
      for (int inst : dirty) clearQueuedOf(w, inst);
    }
  };

  const auto guarded = [&](auto&& phase) {
    if (abort.load(std::memory_order_relaxed)) return;
    try {
      phase();
    } catch (...) {
      capture();
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(K);
    for (std::size_t s = 0; s < K; ++s) {
      threads.emplace_back([&, s] {
        Worker& w = *workers[s];
        if (sink != nullptr) {
          sink->setThreadName(static_cast<int>(s), "shard " + std::to_string(s));
        }
        // Phase bracket: accumulates the phase's wall time into `acc` and,
        // with a sink installed, emits one complete-span on this shard's
        // track — the epoch timeline chrome://tracing renders.
        const auto bracket = [&](const char* name, std::uint64_t Worker::* acc,
                                 auto&& body) {
          if (!timed) {
            body();
            return;
          }
          const std::uint64_t t0 = obs::nowNanos();
          body();
          const std::uint64_t t1 = obs::nowNanos();
          w.*acc += t1 - t0;
          if (sink != nullptr && name != nullptr) {
            sink->complete(name, "epoch", static_cast<int>(s), t0, t1);
          }
        };
        // Bootstrap: settle initial tau steps of this shard's members so
        // offers reflect stable states (mirrors SequentialEngine).
        guarded([&] {
          for (int inst : ss.shard(s).members) ss.runInternalAt(state, inst);
        });
        epochBarrier.arrive_and_wait();  // completion: bootstrap no-op
        if (options.maxSteps == 0) return;
        while (true) {
          bracket("plan", &Worker::planNs, [&] { guarded([&] { planPhase(s); }); });
          bracket(nullptr, &Worker::idleNs,
                  [&] { planBarrier.arrive_and_wait(); });  // completion: resolvePlan
          bracket("cross", &Worker::crossNs, [&] { guarded([&] { crossPhase(s); }); });
          bracket(nullptr, &Worker::idleNs, [&] { crossBarrier.arrive_and_wait(); });
          bracket("local", &Worker::localNs, [&] { guarded([&] { localPhase(s); }); });
          bracket(nullptr, &Worker::idleNs,
                  [&] { epochBarrier.arrive_and_wait(); });  // completion: closeEpoch
          if (stop) break;
        }
      });
    }
  }  // join

  if (firstError) std::rethrow_exception(firstError);

  // Fold the owner-only timing accumulators into the run stats, then
  // flush everything to the telemetry registry (no-op when disabled).
  for (std::size_t s = 0; s < K; ++s) {
    ShardedStats::Shard& sh = stats_.shards[s];
    sh.planNs = workers[s]->planNs;
    sh.crossNs = workers[s]->crossNs;
    sh.localNs = workers[s]->localNs;
    sh.idleNs = workers[s]->idleNs;
    sh.lockWaitNs = workers[s]->lockWaitNs;
  }
  g_steps.add(executedTotal);
  g_epochs.add(stats_.epochs);
  g_stalled.add(stats_.stalledEpochs);
  g_crossCandidates.add(stats_.crossCandidates);
  g_crossAccepted.add(stats_.crossAccepted);
  g_crossConflicts.add(stats_.crossConflicts);
  if (obs::enabled()) {
    for (std::size_t s = 0; s < K; ++s) {
      const ShardedStats::Shard& sh = stats_.shards[s];
      const std::string p = "shard." + std::to_string(s) + ".";
      obs::Counter(p + "steps").add(sh.steps);
      obs::Counter(p + "local_steps").add(sh.localSteps);
      obs::Counter(p + "cross_steps").add(sh.crossSteps);
      obs::Counter(p + "idle_epochs").add(sh.idleEpochs);
      obs::Counter(p + "quota_unused").add(sh.quotaUnused);
      obs::Counter(p + "plan_ns").add(sh.planNs);
      obs::Counter(p + "cross_ns").add(sh.crossNs);
      obs::Counter(p + "local_ns").add(sh.localNs);
      obs::Counter(p + "idle_ns").add(sh.idleNs);
      obs::Counter(p + "lock_wait_ns").add(sh.lockWaitNs);
    }
  }

  RunResult result;
  result.reason = options.maxSteps == 0 ? StopReason::kStepLimit : reason;
  result.steps = executedTotal;
  result.finalState = ss.toGlobal(state);
  if (options.recordTrace) {
    std::vector<Event> all;
    for (const auto& w : workers) {
      all.insert(all.end(), w->events.begin(), w->events.end());
    }
    std::sort(all.begin(), all.end(), eventBefore);
    result.trace.events.reserve(all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      result.trace.events.push_back(TraceEvent{i, all[i].connector, all[i].mask,
                                               std::move(all[i].label)});
    }
  }
  return result;
}

}  // namespace cbip::shard
