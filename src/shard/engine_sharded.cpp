#include "shard/engine_sharded.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"

namespace cbip::shard {

namespace {

// Telemetry (src/obs): counts only, never steers — traces stay
// bit-identical with observability on, off, or compiled out. Per-shard
// metrics ("shard.<s>.*") are registered lazily at run end because the
// shard count is per-engine; everything below is flushed at barrier
// completions or after the join, never on the per-interaction hot path.
const obs::Counter g_runs("engine.sharded.runs");
const obs::Counter g_steps("engine.sharded.steps");
const obs::Counter g_epochs("engine.sharded.epochs");
const obs::Counter g_stalled("engine.sharded.epochs.stalled");
const obs::Counter g_crossCandidates("engine.sharded.cross.candidates");
const obs::Counter g_crossAccepted("engine.sharded.cross.accepted");
const obs::Counter g_crossConflicts("engine.sharded.cross.conflicts");
const obs::Counter g_rebalanceDecisions("engine.sharded.rebalance.decisions");
const obs::Counter g_rebalanceMoved("engine.sharded.rebalance.moved");
const obs::Counter g_stealEvents("engine.sharded.steal.events");

/// CBIP_NO_REBALANCE escape hatch (same pattern as the expr/compile
/// flags): adaptive scheduling defaults to on; the env var (any value but
/// "0") or setRebalancingEnabled(false) restores the static-partition
/// scheduler bit for bit.
std::atomic<bool>& rebalanceFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CBIP_NO_REBALANCE");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

/// Independent deterministic policy seed per shard; shard 0 keeps the
/// user seed so a K=1 run consumes the identical RandomPolicy stream as
/// SequentialEngine with RandomPolicy(seed).
std::uint64_t shardSeed(std::uint64_t seed, std::size_t shard) {
  return seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(shard);
}

/// One interaction executed during the run, with enough ordering
/// structure to rebuild the canonical serialization afterwards: epochs
/// ascending; within an epoch the cross phase (accepted order) precedes
/// the local phase (shard-ascending, then execution order).
struct Event {
  std::uint64_t epoch = 0;
  int phase = 0;  // 0 = cross, 1 = local
  int shard = 0;  // 0 for cross events (ordered by seq alone)
  std::uint64_t seq = 0;
  int connector = 0;
  InteractionMask mask = 0;
  std::string label;
};

bool eventBefore(const Event& a, const Event& b) {
  return std::tie(a.epoch, a.phase, a.shard, a.seq) <
         std::tie(b.epoch, b.phase, b.shard, b.seq);
}

/// Per-shard worker bookkeeping. Enabled sets are cached per owned
/// connector (local connectors of the shard + cross connectors the shard
/// owns), maintained incrementally like EnabledInteractionCache.
struct Worker {
  std::vector<std::vector<EnabledInteraction>> perLocal;  // by position in localConnectors
  std::vector<std::vector<EnabledInteraction>> perCross;  // by position in ownedCross
  std::unique_ptr<SchedulingPolicy> policy;

  // Instances this shard dirtied during the epoch (cross + local
  // executions). Written only by the owning worker; read by every worker
  // during the next plan phase to refresh cross-connector caches.
  std::vector<int> dirtyLog;

  // Instances of this shard dirtied by cross-shard executions (possibly
  // performed by another shard's worker). Guarded by `mutex`, which
  // doubles as the shard's frame lock during the cross phase.
  std::mutex mutex;
  std::vector<int> crossDirty;

  // Published at plan time, consumed by the barrier completion.
  std::vector<EnabledInteraction> crossCandidates;
  std::size_t localEnabledCount = 0;

  // Published at plan time alongside the candidates when this shard has
  // more enabled local work than its quota can cover: a bounded prefix of
  // its enabled local interactions that idle shards may steal.
  std::vector<EnabledInteraction> stealable;

  std::uint64_t localExecuted = 0;   // this epoch
  std::uint64_t crossExecuted = 0;   // this epoch (owned crosses only)
  std::uint64_t stolenExecuted = 0;  // this epoch (as thief, on victims' frames)
  std::vector<Event> events;

  // Instances whose shared activity cell this worker raised from zero in
  // the current load window (sparse reset: the rebalancer zeroes exactly
  // these at window close instead of sweeping all n counters).
  std::vector<int> activityTouched;

  // Owner-only wall-clock accumulators (nanoseconds), read after the
  // join; populated only while timing is active (see `timed` below).
  std::uint64_t planNs = 0;
  std::uint64_t crossNs = 0;
  std::uint64_t localNs = 0;
  std::uint64_t idleNs = 0;
  std::uint64_t lockWaitNs = 0;

  // Scratch.
  std::vector<char> connectorQueued;  // dedup marks, sized connectorCount
  std::vector<EnabledInteraction> flat;
  std::vector<int> drained;
};

struct AcceptedCross {
  EnabledInteraction interaction;
  int crossIndex = 0;  // into ShardedSystem::crossConnectors()
};

/// A work-stealing assignment resolved at the plan barrier: `thief`
/// executes one of `victim`'s enabled local interactions during the cross
/// phase, under the victim's frame lock.
struct StolenLocal {
  EnabledInteraction interaction;
  int victim = 0;
  int thief = 0;
};

}  // namespace

bool rebalancingEnabled() { return rebalanceFlag().load(std::memory_order_relaxed); }

void setRebalancingEnabled(bool enabled) {
  rebalanceFlag().store(enabled, std::memory_order_relaxed);
}

ShardedEngine::ShardedEngine(const System& system, Partition partition)
    : sharded_(system, std::move(partition)) {}

ShardedEngine::ShardedEngine(const System& system, std::size_t shards)
    : sharded_(system, partitionSystem(system, PartitionOptions{shards, 1.125, {}})) {}

RunResult ShardedEngine::run(const EngineOptions& options) {
  ShardedOptions full = defaults_;
  static_cast<EngineOptions&>(full) = options;
  return run(full);
}

RunResult ShardedEngine::run(const ShardedOptions& options) {
  require(options.epochBatch >= 1, "ShardedEngine: epochBatch must be >= 1");
  require(options.rebalanceInterval >= 1, "ShardedEngine: rebalanceInterval must be >= 1");
  const auto wall0 = std::chrono::steady_clock::now();
  ShardedSystem& ss = sharded_;
  const System& system = ss.system();
  const std::size_t K = ss.shardCount();
  const std::size_t connectorCount = system.connectorCount();
  // Compilation may have been toggled on after construction; re-warm every
  // lazy index and program now, while still single-threaded (mirrors the
  // other engines), and assert the warm-up actually happened — under TSan
  // a missed build would otherwise surface only as a data race between
  // workers.
  system.warmIndices();
  ss.ensureCompiled();
  require(system.indicesWarm(), "ShardedEngine: indices must be warm before workers start");

  ShardedState state = ss.initialState();

  // Adaptive-scheduling switches: per-run options gated by the global
  // escape hatch. K=1 degenerates to the sequential loop either way, and
  // the bit-identity guarantee of that configuration must survive, so the
  // adaptive layer disarms itself entirely.
  const bool adaptive = rebalancingEnabled() && K > 1;
  const bool rebalanceOn = adaptive && options.rebalance;
  const bool stealOn = adaptive && options.workStealing;

  stats_ = ShardedStats{};
  stats_.shards.resize(K);
  g_runs.add();
  // Wall-clock timing (phase spans, barrier-wait, lock-wait) is read only
  // when someone can observe it: the obs runtime toggle is on or a trace
  // sink is installed. Sampled once per run; epoch-grained, so the cost
  // when active is a handful of clock reads per barrier crossing.
#if defined(CBIP_NO_OBS)
  obs::TraceLog* const sink = nullptr;
  const bool timed = false;
#else
  obs::TraceLog* const sink = obs::traceSink();
  const bool timed = obs::enabled() || sink != nullptr;
#endif

  // Position of each local connector within its home shard's list, and of
  // each cross connector within its owner's list.
  std::vector<int> localPos(connectorCount, -1);
  std::vector<int> ownedPos(ss.crossConnectors().size(), -1);
  for (std::size_t s = 0; s < K; ++s) {
    const ShardedSystem::Shard& shard = ss.shard(s);
    for (std::size_t i = 0; i < shard.localConnectors.size(); ++i) {
      localPos[static_cast<std::size_t>(shard.localConnectors[i])] = static_cast<int>(i);
    }
    for (std::size_t i = 0; i < shard.ownedCross.size(); ++i) {
      ownedPos[static_cast<std::size_t>(shard.ownedCross[i])] = static_cast<int>(i);
    }
  }

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(K);
  for (std::size_t s = 0; s < K; ++s) {
    auto w = std::make_unique<Worker>();
    w->perLocal.resize(ss.shard(s).localConnectors.size());
    w->perCross.resize(ss.shard(s).ownedCross.size());
    w->policy = options.policyFactory ? options.policyFactory(s)
                                      : std::make_unique<RandomPolicy>(
                                            shardSeed(options.seed, s));
    w->connectorQueued.assign(connectorCount, 0);
    workers.push_back(std::move(w));
  }

  // ---- shared epoch state (all transitions ride the barriers) ----
  const GlobalState placeholder;  // handed to policies; see ShardedOptions
  std::uint64_t epoch = 0;
  std::uint64_t executedTotal = 0;
  bool bootstrap = true;
  bool stop = false;
  StopReason reason = StopReason::kStepLimit;
  std::vector<AcceptedCross> accepted;
  std::vector<StolenLocal> stolen;
  std::vector<std::uint64_t> localQuota(K, 0);
  std::vector<char> instanceUsed(system.instanceCount(), 0);
  // Rebalancer load window (epoch-grained, maintained at barrier
  // completions): per-shard executed steps and per-instance activity.
  // The activity vector is shared, but within an epoch every cell is
  // written by at most one thread (local phase: the owner; cross phase:
  // under the instance's shard mutex, on footprint-disjoint interactions),
  // and the barriers order epochs — no data race.
  std::vector<std::uint64_t> windowLoad(K, 0);
  std::vector<std::uint32_t> activity(rebalanceOn ? system.instanceCount() : 0, 0);
  std::uint64_t windowEpochs = 0;
  bool fullRescan = false;  // set after a migration; next plan recomputes all
  std::atomic<bool> abort{false};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  const auto capture = [&]() {
    const std::scoped_lock lock(errorMutex);
    if (!firstError) firstError = std::current_exception();
    abort.store(true, std::memory_order_relaxed);
  };

  // Load-window activity bump for one executed instance (rebalanceOn
  // only). The zero-crossing goes to the executing worker's sparse reset
  // list; see the race note at `activity`.
  const auto bumpActivity = [&](Worker& w, int inst) {
    std::uint32_t& cell = activity[static_cast<std::size_t>(inst)];
    if (cell == 0) w.activityTouched.push_back(inst);
    ++cell;
  };

  // Plan resolution: runs on one thread at the plan barrier.
  const auto resolvePlan = [&]() noexcept {
    accepted.clear();
    stolen.clear();
    std::fill(localQuota.begin(), localQuota.end(), 0);
    if (abort.load(std::memory_order_relaxed)) return;
    const std::uint64_t remaining = options.maxSteps - executedTotal;
    // Deterministic conflict resolution over all published cross-shard
    // candidates: (connector, mask) order, greedy instance-disjoint.
    std::vector<std::pair<const EnabledInteraction*, int>> candidates;
    for (std::size_t s = 0; s < K; ++s) {
      for (const EnabledInteraction& ei : workers[s]->crossCandidates) {
        candidates.push_back({&ei, ss.crossIndexOf(ei.connector)});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                return std::tie(a.first->connector, a.first->mask) <
                       std::tie(b.first->connector, b.first->mask);
              });
    std::fill(instanceUsed.begin(), instanceUsed.end(), 0);
    stats_.crossCandidates += candidates.size();
    for (const auto& [ei, xi] : candidates) {
      if (accepted.size() >= remaining) break;
      const std::vector<int>& footprint = ss.connectorInstances(ei->connector);
      bool clash = false;
      for (int inst : footprint) {
        if (instanceUsed[static_cast<std::size_t>(inst)] != 0) {
          clash = true;
          break;
        }
      }
      if (clash) {
        ++stats_.crossConflicts;
        continue;
      }
      for (int inst : footprint) instanceUsed[static_cast<std::size_t>(inst)] = 1;
      accepted.push_back(AcceptedCross{*ei, xi});
    }
    stats_.crossAccepted += accepted.size();
    // Local step quotas: rotate the deal across shards that reported
    // enabled local work so no shard starves under a tight budget.
    std::uint64_t budget = remaining - accepted.size();
    bool progress = true;
    while (budget > 0 && progress) {
      progress = false;
      for (std::size_t i = 0; i < K && budget > 0; ++i) {
        const std::size_t s = (epoch + i) % K;
        if (workers[s]->localEnabledCount == 0) continue;
        if (localQuota[s] >= options.epochBatch) continue;
        ++localQuota[s];
        --budget;
        progress = true;
      }
    }
    // Work stealing: hand shards with no enabled local work a segment of
    // an overloaded shard's published surplus, footprint-disjoint against
    // the accepted crosses and each other (instanceUsed covers both), to
    // execute during the cross phase under the victim's frame lock. Pure
    // function of the published plan data — deterministic, and every
    // stolen interaction commutes with the rest of the epoch, so the
    // serialized trace stays a valid sequential schedule.
    if (stealOn && budget > 0) {
      std::vector<std::size_t> cursor(K, 0);
      for (std::size_t thief = 0; thief < K && budget > 0; ++thief) {
        if (workers[thief]->localEnabledCount != 0) continue;
        // Victim: the shard with the most enabled local work whose
        // published segment is not exhausted (lowest id on ties).
        std::size_t victim = K;
        for (std::size_t v = 0; v < K; ++v) {
          if (v == thief || cursor[v] >= workers[v]->stealable.size()) continue;
          if (victim == K ||
              workers[v]->localEnabledCount > workers[victim]->localEnabledCount) {
            victim = v;
          }
        }
        if (victim == K) continue;
        std::uint64_t grabbed = 0;
        while (grabbed < options.epochBatch && budget > 0 &&
               cursor[victim] < workers[victim]->stealable.size()) {
          const EnabledInteraction& ei = workers[victim]->stealable[cursor[victim]++];
          const std::vector<int>& footprint = ss.connectorInstances(ei.connector);
          bool clash = false;
          for (int inst : footprint) {
            if (instanceUsed[static_cast<std::size_t>(inst)] != 0) {
              clash = true;
              break;
            }
          }
          if (clash) continue;
          for (int inst : footprint) instanceUsed[static_cast<std::size_t>(inst)] = 1;
          stolen.push_back(
              StolenLocal{ei, static_cast<int>(victim), static_cast<int>(thief)});
          ++grabbed;
          --budget;
        }
      }
    }
  };

  // Epoch bookkeeping: runs on one thread at the end-of-epoch barrier.
  const auto closeEpoch = [&]() noexcept {
    if (bootstrap) {
      bootstrap = false;
      return;
    }
    fullRescan = false;  // consumed by the plan phase that just ran
    std::uint64_t epochExec = accepted.size();
    for (const auto& w : workers) epochExec += w->localExecuted + w->stolenExecuted;
    executedTotal += epochExec;
    // Per-shard load accounting (single-threaded here: the barrier
    // completion runs on exactly one thread while the others wait).
    ++stats_.epochs;
    bool anyIdle = false;
    for (std::size_t s = 0; s < K; ++s) {
      const Worker& w = *workers[s];
      ShardedStats::Shard& sh = stats_.shards[s];
      sh.localSteps += w.localExecuted;
      sh.crossSteps += w.crossExecuted;
      sh.stolenSteps += w.stolenExecuted;
      sh.steps += w.localExecuted + w.crossExecuted + w.stolenExecuted;
      sh.quotaGranted += localQuota[s];
      sh.quotaUnused += localQuota[s] - w.localExecuted;
      stats_.stealEvents += w.stolenExecuted;
      if (epochExec > 0 && w.localExecuted + w.crossExecuted + w.stolenExecuted == 0) {
        ++sh.idleEpochs;
        anyIdle = true;
      }
    }
    if (anyIdle) ++stats_.stalledEpochs;
    if (abort.load(std::memory_order_relaxed)) {
      stop = true;
    } else if (executedTotal >= options.maxSteps) {
      reason = StopReason::kStepLimit;
      stop = true;
    } else if (epochExec == 0) {
      reason = StopReason::kDeadlock;
      stop = true;
    }
    ++epoch;
    if (!rebalanceOn || stop) return;
    // ---- online rebalancer ----
    // Window load: what each shard executed, with stolen work credited to
    // the *victim* — stealing moves the computation, migration should
    // still see where the demand lives.
    for (std::size_t s = 0; s < K; ++s) {
      windowLoad[s] += workers[s]->localExecuted + workers[s]->crossExecuted;
    }
    for (const StolenLocal& st : stolen) ++windowLoad[static_cast<std::size_t>(st.victim)];
    if (++windowEpochs < options.rebalanceInterval) return;
    windowEpochs = 0;
    std::uint64_t total = 0;
    std::size_t maxShard = 0;
    for (std::size_t s = 0; s < K; ++s) {
      total += windowLoad[s];
      if (windowLoad[s] > windowLoad[maxShard]) maxShard = s;
    }
    const double avg = static_cast<double>(total) / static_cast<double>(K);
    // Persistent-skew trigger. Inputs are executed-step counts only —
    // never wall clocks — so the decision (and hence the whole run) is
    // deterministic for a fixed seed.
    if (total > 0 && ss.shard(maxShard).members.size() > 1 &&
        static_cast<double>(windowLoad[maxShard]) > options.rebalanceTolerance * avg) {
      // Active connected groups within the overloaded shard (flood fill
      // over connector footprints restricted to its members). Whole
      // groups migrate together: splitting one would turn its connectors
      // cross-shard and serialize them on the epoch scheduler — worse
      // than the skew being fixed.
      struct Group {
        std::uint64_t activity = 0;
        std::vector<int> members;
      };
      std::vector<char> seen(system.instanceCount(), 0);
      std::vector<Group> groups;
      std::vector<int> frontier;
      for (int start : ss.shard(maxShard).members) {
        if (seen[static_cast<std::size_t>(start)] != 0 ||
            activity[static_cast<std::size_t>(start)] == 0) {
          continue;
        }
        Group g;
        frontier.assign(1, start);
        seen[static_cast<std::size_t>(start)] = 1;
        while (!frontier.empty()) {
          const int cur = frontier.back();
          frontier.pop_back();
          g.activity += activity[static_cast<std::size_t>(cur)];
          g.members.push_back(cur);
          for (int ci : system.connectorsOf(static_cast<std::size_t>(cur))) {
            for (int nb : ss.connectorInstances(ci)) {
              if (ss.shardOf(nb) != static_cast<int>(maxShard) ||
                  seen[static_cast<std::size_t>(nb)] != 0) {
                continue;
              }
              seen[static_cast<std::size_t>(nb)] = 1;
              frontier.push_back(nb);
            }
          }
        }
        std::sort(g.members.begin(), g.members.end());
        groups.push_back(std::move(g));
      }
      std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
        return std::tie(b.activity, a.members.front()) <
               std::tie(a.activity, b.members.front());
      });
      // Shed whole groups to the predicted-least-loaded shards until the
      // source drops to the average, capped so a single window cannot
      // evacuate the shard.
      std::vector<double> predicted(windowLoad.begin(), windowLoad.end());
      const std::size_t maxMoves =
          std::max<std::size_t>(1, ss.shard(maxShard).members.size() / 4);
      std::vector<ShardedSystem::Move> moves;
      for (const Group& g : groups) {
        if (predicted[maxShard] <= avg) break;
        if (!moves.empty() && moves.size() + g.members.size() > maxMoves) break;
        // A group spanning most of the shard cannot be rebalanced by
        // moving (relabeling the hotspot helps nobody).
        if (g.members.size() * 2 > ss.shard(maxShard).members.size()) continue;
        std::size_t dest = maxShard;
        for (std::size_t s = 0; s < K; ++s) {
          if (s != maxShard && (dest == maxShard || predicted[s] < predicted[dest])) dest = s;
        }
        if (dest == maxShard ||
            predicted[dest] + static_cast<double>(g.activity) >= predicted[maxShard]) {
          break;
        }
        for (int inst : g.members) {
          moves.push_back(ShardedSystem::Move{inst, static_cast<int>(dest)});
        }
        predicted[dest] += static_cast<double>(g.activity);
        predicted[maxShard] -= static_cast<double>(g.activity);
      }
      if (!moves.empty()) {
        try {
          ss.migrate(state, moves);
        } catch (...) {
          capture();
          return;
        }
        ++stats_.rebalanceDecisions;
        stats_.componentsMoved += moves.size();
        stats_.shards[maxShard].migratedOut += moves.size();
        for (const ShardedSystem::Move& mv : moves) {
          ++stats_.shards[static_cast<std::size_t>(mv.toShard)].migratedIn;
        }
        // The shard -> connector mapping changed: re-derive the position
        // indexes, resize the workers' per-connector caches, and have the
        // next plan phase recompute everything from scratch.
        std::fill(localPos.begin(), localPos.end(), -1);
        ownedPos.assign(ss.crossConnectors().size(), -1);
        for (std::size_t s = 0; s < K; ++s) {
          const ShardedSystem::Shard& shard = ss.shard(s);
          for (std::size_t i = 0; i < shard.localConnectors.size(); ++i) {
            localPos[static_cast<std::size_t>(shard.localConnectors[i])] =
                static_cast<int>(i);
          }
          for (std::size_t i = 0; i < shard.ownedCross.size(); ++i) {
            ownedPos[static_cast<std::size_t>(shard.ownedCross[i])] = static_cast<int>(i);
          }
          workers[s]->perLocal.assign(shard.localConnectors.size(), {});
          workers[s]->perCross.assign(shard.ownedCross.size(), {});
        }
        fullRescan = true;
      }
    }
    // Close the window (sparse activity reset; see activityTouched).
    std::fill(windowLoad.begin(), windowLoad.end(), 0);
    for (const auto& w : workers) {
      for (int inst : w->activityTouched) activity[static_cast<std::size_t>(inst)] = 0;
      w->activityTouched.clear();
    }
  };

  std::barrier planBarrier(static_cast<std::ptrdiff_t>(K), resolvePlan);
  std::barrier crossBarrier(static_cast<std::ptrdiff_t>(K), []() noexcept {});
  std::barrier epochBarrier(static_cast<std::ptrdiff_t>(K), closeEpoch);

  // Re-derives this shard's local connectors touching `inst`. Never
  // touches cross connectors: their recompute reads foreign frames, which
  // is only safe in the plan phase (all frames quiescent) — intra-epoch
  // changes reach them through the dirty log instead. A local connector
  // with an end on one of this shard's instances is necessarily homed
  // here, so `localPos` membership is the whole ownership check.
  const auto refreshLocalsOf = [&](Worker& w, int inst) {
    for (int ci : system.connectorsOf(static_cast<std::size_t>(inst))) {
      auto& queued = w.connectorQueued[static_cast<std::size_t>(ci)];
      if (queued) continue;
      queued = 1;
      const int li = localPos[static_cast<std::size_t>(ci)];
      if (li < 0) continue;
      auto& list = w.perLocal[static_cast<std::size_t>(li)];
      list.clear();
      ss.appendConnectorInteractions(state, ci, list);
    }
  };
  const auto clearQueuedOf = [&](Worker& w, int inst) {
    for (int ci : system.connectorsOf(static_cast<std::size_t>(inst))) {
      w.connectorQueued[static_cast<std::size_t>(ci)] = 0;
    }
  };

  const auto planPhase = [&](std::size_t s) {
    Worker& w = *workers[s];
    const ShardedSystem::Shard& shard = ss.shard(s);
    if (epoch == 0 || fullRescan) {
      // First epoch, or the epoch right after a migration (the member /
      // connector layout changed): full recompute of everything this
      // shard owns.
      for (std::size_t i = 0; i < shard.localConnectors.size(); ++i) {
        w.perLocal[i].clear();
        ss.appendConnectorInteractions(state, shard.localConnectors[i], w.perLocal[i]);
      }
      for (std::size_t i = 0; i < shard.ownedCross.size(); ++i) {
        const int ci =
            ss.crossConnectors()[static_cast<std::size_t>(shard.ownedCross[i])].connector;
        w.perCross[i].clear();
        ss.appendConnectorInteractions(state, ci, w.perCross[i]);
      }
    } else {
      // Refresh owned cross connectors touched by any shard's executions
      // last epoch. (Local connectors never need this pass: only cross
      // executions and this shard's own local executions can dirty them,
      // and both update them within the epoch.)
      for (std::size_t t = 0; t < K; ++t) {
        for (int inst : workers[t]->dirtyLog) {
          for (int ci : system.connectorsOf(static_cast<std::size_t>(inst))) {
            const int xi = ss.crossIndexOf(ci);
            if (xi < 0 ||
                ss.crossConnectors()[static_cast<std::size_t>(xi)].owner !=
                    static_cast<int>(s)) {
              continue;
            }
            auto& queued = w.connectorQueued[static_cast<std::size_t>(ci)];
            if (queued) continue;
            queued = 1;
            auto& list =
                w.perCross[static_cast<std::size_t>(ownedPos[static_cast<std::size_t>(xi)])];
            list.clear();
            ss.appendConnectorInteractions(state, ci, list);
          }
        }
      }
      for (std::size_t t = 0; t < K; ++t) {
        for (int inst : workers[t]->dirtyLog) {
          for (int ci : system.connectorsOf(static_cast<std::size_t>(inst))) {
            w.connectorQueued[static_cast<std::size_t>(ci)] = 0;
          }
        }
      }
    }
    w.crossCandidates.clear();
    for (const auto& list : w.perCross) {
      w.crossCandidates.insert(w.crossCandidates.end(), list.begin(), list.end());
    }
    w.localEnabledCount = 0;
    for (const auto& list : w.perLocal) w.localEnabledCount += list.size();
    // Publish a bounded surplus segment for work stealing when this shard
    // has more enabled local work than one epoch's quota can drain. The
    // segment is a deterministic prefix (connector-list order) of the
    // enabled set; the plan barrier hands footprint-disjoint entries to
    // idle shards.
    w.stealable.clear();
    if (stealOn && w.localEnabledCount > options.epochBatch) {
      const std::size_t cap = 2 * options.epochBatch;
      for (const auto& list : w.perLocal) {
        for (const EnabledInteraction& ei : list) {
          if (w.stealable.size() >= cap) break;
          w.stealable.push_back(ei);
        }
        if (w.stealable.size() >= cap) break;
      }
    }
  };

  const auto crossPhase = [&](std::size_t s) {
    Worker& w = *workers[s];
    w.dirtyLog.clear();  // every shard finished reading it during plan
    w.localExecuted = 0;
    w.crossExecuted = 0;
    w.stolenExecuted = 0;
    for (std::size_t idx = 0; idx < accepted.size(); ++idx) {
      const AcceptedCross& entry = accepted[idx];
      const ShardedSystem::CrossConnector& x =
          ss.crossConnectors()[static_cast<std::size_t>(entry.crossIndex)];
      if (x.owner != static_cast<int>(s)) continue;
      // Transition choices come from the owner's policy, consumed in
      // deterministic accepted order.
      std::vector<EnabledInteraction> one{entry.interaction};
      const auto [pick, choice] = w.policy->pick(system, placeholder, one);
      require(pick == 0, "SchedulingPolicy returned out-of-range interaction");
      // Ordered locking of every involved shard (ascending shard id,
      // deadlock-free): serializes frame access and dirty-queue pushes
      // against the other accepted crosses sharing a shard. RAII locks so
      // an EvalError out of executeInteraction (rethrown after the run)
      // cannot leave a mutex held and wedge the other owners.
      {
        std::vector<std::unique_lock<std::mutex>> locks;
        locks.reserve(x.shards.size());
        const std::uint64_t lockT0 = timed ? obs::nowNanos() : 0;
        for (int t : x.shards) {
          locks.emplace_back(workers[static_cast<std::size_t>(t)]->mutex);
        }
        if (timed) w.lockWaitNs += obs::nowNanos() - lockT0;
        ss.executeInteraction(state, entry.interaction, choice);
        for (int inst : ss.connectorInstances(entry.interaction.connector)) {
          w.dirtyLog.push_back(inst);
          workers[static_cast<std::size_t>(ss.shardOf(inst))]->crossDirty.push_back(inst);
          if (rebalanceOn) bumpActivity(w, inst);
        }
      }
      ++w.crossExecuted;
      if (options.recordTrace) {
        w.events.push_back(Event{epoch, 0, 0, idx, entry.interaction.connector,
                                 entry.interaction.mask,
                                 interactionLabel(system, entry.interaction)});
      }
    }
    // Stolen work: execute the victims' surplus local interactions this
    // shard was assigned at the plan barrier, under the victim's frame
    // lock. Footprint-disjoint against everything else in the epoch, so
    // the victim's own local phase (after the cross barrier) sees a
    // consistent frame and refreshes its caches through crossDirty just
    // like for a cross execution. Events serialize after the accepted
    // crosses (seq offset), in assignment order.
    for (std::size_t j = 0; j < stolen.size(); ++j) {
      const StolenLocal& st = stolen[j];
      if (st.thief != static_cast<int>(s)) continue;
      Worker& victim = *workers[static_cast<std::size_t>(st.victim)];
      std::vector<EnabledInteraction> one{st.interaction};
      const auto [pick, choice] = w.policy->pick(system, placeholder, one);
      require(pick == 0, "SchedulingPolicy returned out-of-range interaction");
      {
        const std::uint64_t lockT0 = timed ? obs::nowNanos() : 0;
        const std::scoped_lock lock(victim.mutex);
        if (timed) w.lockWaitNs += obs::nowNanos() - lockT0;
        ss.executeInteraction(state, st.interaction, choice);
        for (int inst : ss.connectorInstances(st.interaction.connector)) {
          w.dirtyLog.push_back(inst);
          victim.crossDirty.push_back(inst);
          if (rebalanceOn) bumpActivity(w, inst);
        }
      }
      ++w.stolenExecuted;
      if (options.recordTrace) {
        w.events.push_back(Event{epoch, 0, 0, accepted.size() + j, st.interaction.connector,
                                 st.interaction.mask,
                                 interactionLabel(system, st.interaction)});
      }
    }
  };

  const auto localPhase = [&](std::size_t s) {
    Worker& w = *workers[s];
    // Refresh local connectors dirtied by this epoch's cross executions.
    {
      const std::scoped_lock lock(w.mutex);
      w.drained.assign(w.crossDirty.begin(), w.crossDirty.end());
      w.crossDirty.clear();
    }
    for (int inst : w.drained) refreshLocalsOf(w, inst);
    for (int inst : w.drained) clearQueuedOf(w, inst);
    // Shard-local run loop: the sequential engine's step loop confined to
    // this shard's frame.
    const std::uint64_t quota = localQuota[s];
    while (w.localExecuted < quota) {
      w.flat.clear();
      for (const auto& list : w.perLocal) {
        w.flat.insert(w.flat.end(), list.begin(), list.end());
      }
      if (w.flat.empty()) break;
      const auto [idx, choice] = w.policy->pick(system, placeholder, w.flat);
      require(idx < w.flat.size(), "SchedulingPolicy returned out-of-range interaction");
      const EnabledInteraction ei = w.flat[idx];
      ss.executeInteraction(state, ei, choice);
      if (options.recordTrace) {
        w.events.push_back(Event{epoch, 1, static_cast<int>(s), w.localExecuted, ei.connector,
                                 ei.mask, interactionLabel(system, ei)});
      }
      ++w.localExecuted;
      // Incremental cache maintenance: re-derive the local connectors
      // touching the dirtied instances now; cross connectors are deferred
      // to the next plan phase through the dirty log.
      const std::vector<int>& dirty = ss.connectorInstances(ei.connector);
      for (int inst : dirty) {
        w.dirtyLog.push_back(inst);
        refreshLocalsOf(w, inst);
        if (rebalanceOn) bumpActivity(w, inst);
      }
      for (int inst : dirty) clearQueuedOf(w, inst);
    }
  };

  const auto guarded = [&](auto&& phase) {
    if (abort.load(std::memory_order_relaxed)) return;
    try {
      phase();
    } catch (...) {
      capture();
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(K);
    for (std::size_t s = 0; s < K; ++s) {
      threads.emplace_back([&, s] {
        Worker& w = *workers[s];
        if (sink != nullptr) {
          sink->setThreadName(static_cast<int>(s), "shard " + std::to_string(s));
        }
        // Phase bracket: accumulates the phase's wall time into `acc` and,
        // with a sink installed, emits one complete-span on this shard's
        // track — the epoch timeline chrome://tracing renders.
        const auto bracket = [&](const char* name, std::uint64_t Worker::* acc,
                                 auto&& body) {
          if (!timed) {
            body();
            return;
          }
          const std::uint64_t t0 = obs::nowNanos();
          body();
          const std::uint64_t t1 = obs::nowNanos();
          w.*acc += t1 - t0;
          if (sink != nullptr && name != nullptr) {
            sink->complete(name, "epoch", static_cast<int>(s), t0, t1);
          }
        };
        // Bootstrap: settle initial tau steps of this shard's members so
        // offers reflect stable states (mirrors SequentialEngine).
        guarded([&] {
          for (int inst : ss.shard(s).members) ss.runInternalAt(state, inst);
        });
        epochBarrier.arrive_and_wait();  // completion: bootstrap no-op
        if (options.maxSteps == 0) return;
        while (true) {
          bracket("plan", &Worker::planNs, [&] { guarded([&] { planPhase(s); }); });
          bracket(nullptr, &Worker::idleNs,
                  [&] { planBarrier.arrive_and_wait(); });  // completion: resolvePlan
          bracket("cross", &Worker::crossNs, [&] { guarded([&] { crossPhase(s); }); });
          bracket(nullptr, &Worker::idleNs, [&] { crossBarrier.arrive_and_wait(); });
          bracket("local", &Worker::localNs, [&] { guarded([&] { localPhase(s); }); });
          bracket(nullptr, &Worker::idleNs,
                  [&] { epochBarrier.arrive_and_wait(); });  // completion: closeEpoch
          if (stop) break;
        }
      });
    }
  }  // join

  if (firstError) std::rethrow_exception(firstError);

  // Fold the owner-only timing accumulators into the run stats, then
  // flush everything to the telemetry registry (no-op when disabled).
  for (std::size_t s = 0; s < K; ++s) {
    ShardedStats::Shard& sh = stats_.shards[s];
    sh.planNs = workers[s]->planNs;
    sh.crossNs = workers[s]->crossNs;
    sh.localNs = workers[s]->localNs;
    sh.idleNs = workers[s]->idleNs;
    sh.lockWaitNs = workers[s]->lockWaitNs;
  }
  stats_.steps = executedTotal;
  stats_.scanRounds = stats_.epochs;
  stats_.wallNs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           wall0)
          .count());
  g_steps.add(executedTotal);
  g_epochs.add(stats_.epochs);
  g_stalled.add(stats_.stalledEpochs);
  g_crossCandidates.add(stats_.crossCandidates);
  g_crossAccepted.add(stats_.crossAccepted);
  g_crossConflicts.add(stats_.crossConflicts);
  g_rebalanceDecisions.add(stats_.rebalanceDecisions);
  g_rebalanceMoved.add(stats_.componentsMoved);
  g_stealEvents.add(stats_.stealEvents);
  if (obs::enabled()) {
    for (std::size_t s = 0; s < K; ++s) {
      const ShardedStats::Shard& sh = stats_.shards[s];
      const std::string p = "shard." + std::to_string(s) + ".";
      obs::Counter(p + "steps").add(sh.steps);
      obs::Counter(p + "local_steps").add(sh.localSteps);
      obs::Counter(p + "cross_steps").add(sh.crossSteps);
      obs::Counter(p + "stolen_steps").add(sh.stolenSteps);
      obs::Counter(p + "migrated_in").add(sh.migratedIn);
      obs::Counter(p + "migrated_out").add(sh.migratedOut);
      obs::Counter(p + "idle_epochs").add(sh.idleEpochs);
      obs::Counter(p + "quota_unused").add(sh.quotaUnused);
      obs::Counter(p + "plan_ns").add(sh.planNs);
      obs::Counter(p + "cross_ns").add(sh.crossNs);
      obs::Counter(p + "local_ns").add(sh.localNs);
      obs::Counter(p + "idle_ns").add(sh.idleNs);
      obs::Counter(p + "lock_wait_ns").add(sh.lockWaitNs);
    }
  }

  RunResult result;
  result.reason = options.maxSteps == 0 ? StopReason::kStepLimit : reason;
  result.steps = executedTotal;
  result.finalState = ss.toGlobal(state);
  if (options.recordTrace) {
    std::vector<Event> all;
    for (const auto& w : workers) {
      all.insert(all.end(), w->events.begin(), w->events.end());
    }
    std::sort(all.begin(), all.end(), eventBefore);
    result.trace.events.reserve(all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      result.trace.events.push_back(TraceEvent{i, all[i].connector, all[i].mask,
                                               std::move(all[i].label)});
    }
  }
  return result;
}

}  // namespace cbip::shard
