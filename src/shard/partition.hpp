// Component-graph partitioning for the sharded execution subsystem.
//
// The affinity graph of a flattened System has one node per component
// instance and one weighted edge per pair of instances joined by at least
// one connector (weight = number of joining connectors). Sharding quality
// is the edge-cut of a K-way partition of this graph: every cut edge is a
// connector that will need cross-shard coordination at run time, while
// every internal edge stays a shard-local interaction executed with no
// synchronization at all (shard/engine_sharded.hpp).
//
// The partitioner is a deterministic greedy graph-growing heuristic
// (Kernighan/Lin-family seeds are overkill at the model sizes the engine
// targets): shards are grown one at a time from a high-degree seed,
// repeatedly absorbing the unassigned instance with the strongest
// affinity to the growing shard, until the shard reaches its balanced
// share of the instances. Pinned instances are honoured first.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/system.hpp"

namespace cbip::shard {

struct PartitionOptions {
  /// Number of shards K (>= 1). Values larger than the instance count are
  /// clamped down so no shard starts empty.
  std::size_t shards = 2;
  /// Balance slack: a shard may keep absorbing positive-affinity
  /// neighbours past its even share, up to `ceil(tolerance * n / K)`
  /// instances. 1.0 forces exact balance (up to rounding).
  double tolerance = 1.125;
  /// (instance, shard) pairs fixed before growth starts; pins win over
  /// balance. Out-of-range entries are a ModelError.
  std::vector<std::pair<int, int>> pins;
};

/// Reported partition quality (see file comment).
struct PartitionQuality {
  /// Sum of affinity-edge weights crossing shards.
  std::size_t edgeCut = 0;
  /// Number of connectors whose ends span more than one shard — exactly
  /// the interactions the sharded engine must coordinate.
  std::size_t crossConnectors = 0;
  /// Largest / smallest shard population (instances).
  std::size_t maxLoad = 0;
  std::size_t minLoad = 0;
};

class Partition {
 public:
  /// Builds the identity single-shard partition (used by K=1 runs and as
  /// the differential baseline).
  explicit Partition(std::size_t instanceCount)
      : shardOf_(instanceCount, 0), shardCount_(1) {}
  Partition(std::vector<int> shardOf, std::size_t shardCount)
      : shardOf_(std::move(shardOf)), shardCount_(shardCount) {}

  std::size_t shardCount() const { return shardCount_; }
  std::size_t instanceCount() const { return shardOf_.size(); }
  int shardOf(std::size_t instance) const { return shardOf_[instance]; }
  const std::vector<int>& assignment() const { return shardOf_; }

  /// Reassigns one instance (online rebalancing: the shard count is
  /// fixed, only the mapping moves). The caller keeps every derived
  /// structure — frames, member lists, connector classes — in sync; see
  /// ShardedSystem::migrate.
  void assign(std::size_t instance, int shard) { shardOf_[instance] = shard; }

 private:
  std::vector<int> shardOf_;
  std::size_t shardCount_ = 1;
};

/// Partitions `system`'s component graph into `options.shards` balanced
/// shards, greedily minimizing the connector edge-cut. Deterministic for a
/// given (system, options).
Partition partitionSystem(const System& system, const PartitionOptions& options = {});

/// Quality metrics of an existing partition of `system`.
PartitionQuality partitionQuality(const System& system, const Partition& partition);

}  // namespace cbip::shard
