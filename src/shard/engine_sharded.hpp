// Sharded BIP engine: one worker thread per shard of a partitioned
// component graph.
//
// Where the multithreaded engine (engine/engine_mt.hpp) pays a
// message-round handshake per *interaction*, the sharded engine pays
// three synchronization barriers per *epoch* of up to
// shardCount * epochBatch interactions: shard-local interactions (the overwhelming majority under
// a good partition, see shard/partition.hpp) execute entirely inside
// their shard — enabled-set maintenance, policy choice, data transfer and
// transition firing all touch one worker's own frame, with no locks.
//
// Cross-shard interactions are coordinated by an epoch-based conflict
// scheduler with no global lock:
//
//   plan    All frames are quiescent. Every shard refreshes the enabled
//           sets of the connectors it owns (cross-shard connectors are
//           owned by their lowest involved shard) from the dirty-instance
//           logs of the previous epoch, and publishes its cross-shard
//           candidates. [barrier: one thread deterministically resolves
//           conflicts — candidates sorted by (connector, mask), greedily
//           accepted while their instance footprints stay disjoint — and
//           deals out per-shard step quotas for the local phase.]
//
//   cross   Owners execute the accepted cross-shard interactions. Each
//           acquires the involved shards' mutexes in ascending shard
//           order (ordered two-shard locking in the common case; ordered
//           k-shard locking for wider connectors, deadlock-free by the
//           total order), executes against the two frames through the
//           foreign-frame slot maps, and queues the dirtied instances to
//           the affected shards. [barrier]
//
//   local   Every shard drains its dirty queue, then runs up to its quota
//           of shard-local interactions: pick via its own seeded policy,
//           execute in place on the shard frame, update its local enabled
//           caches incrementally. [barrier: count the epoch's executed
//           interactions; 0 executed means global deadlock.]
//
// Because every interaction executed within one epoch has a pairwise
// disjoint instance footprint against the concurrent ones (accepted
// crosses by construction; locals by shard-locality), the epoch's
// interactions serialize: cross interactions in accepted order followed
// by each shard's local sequence is a valid sequential schedule with an
// identical final state. The differential suite (tests/test_sharded.cpp)
// replays exactly that schedule through SequentialEngine. With a single
// shard the engine degenerates to the sequential loop and its traces are
// bit-identical to SequentialEngine under the same seeded policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/common.hpp"
#include "shard/sharded.hpp"

namespace cbip::shard {

/// Scheduler-behaviour statistics for the last run(). Epoch-grained (all
/// writes happen at barrier completions or after the join, never on the
/// per-interaction hot path) and always collected — unlike the src/obs
/// counters these are part of the engine's functional result, so tests can
/// assert scheduler behaviour (idle shards, stalled epochs, quota waste)
/// without going through the telemetry registry.
struct ShardedStats {
  std::uint64_t epochs = 0;           ///< epochs closed (bootstrap excluded)
  std::uint64_t stalledEpochs = 0;    ///< epochs where >=1 shard sat idle
                                      ///< while the epoch still made progress
  std::uint64_t crossCandidates = 0;  ///< cross-shard candidates published
  std::uint64_t crossAccepted = 0;    ///< accepted by the conflict resolver
  std::uint64_t crossConflicts = 0;   ///< rejected: instance-footprint clash

  struct Shard {
    std::uint64_t steps = 0;        ///< localSteps + crossSteps
    std::uint64_t localSteps = 0;   ///< shard-local interactions executed
    std::uint64_t crossSteps = 0;   ///< owned cross interactions executed
    std::uint64_t idleEpochs = 0;   ///< epochs this shard executed nothing
                                    ///< while the epoch overall progressed
    std::uint64_t quotaGranted = 0; ///< local-step quota dealt across epochs
    std::uint64_t quotaUnused = 0;  ///< granted quota left on the table
    // Wall-clock phase breakdown in nanoseconds; zero unless timing was
    // active during the run (observability enabled or a trace sink
    // installed; always zero in CBIP_NO_OBS builds).
    std::uint64_t planNs = 0;
    std::uint64_t crossNs = 0;
    std::uint64_t localNs = 0;
    std::uint64_t idleNs = 0;      ///< barrier-wait time between phases
    std::uint64_t lockWaitNs = 0;  ///< cross-phase shard-mutex acquisition
  };
  std::vector<Shard> shards;  ///< indexed by shard id
};

struct ShardedOptions {
  std::uint64_t maxSteps = 1000;  // counts interactions, like MtOptions
  bool recordTrace = true;
  /// Seed for the default per-shard scheduling policies.
  std::uint64_t seed = 0;
  /// Upper bound on shard-local interactions one shard executes per
  /// epoch. Larger values amortize the per-epoch barriers; 1 globally
  /// synchronizes every step.
  std::uint64_t epochBatch = 8;
  /// Scheduling policy per shard. Default: RandomPolicy(seed) for shard 0
  /// — making a one-shard run bit-identical to SequentialEngine with
  /// RandomPolicy(seed) — and an independently seeded RandomPolicy per
  /// further shard. Policies are handed an empty placeholder GlobalState;
  /// state-inspecting policies are not supported here.
  std::function<std::unique_ptr<SchedulingPolicy>(std::size_t shard)> policyFactory;
};

class ShardedEngine {
 public:
  /// The system must outlive the engine.
  ShardedEngine(const System& system, Partition partition);
  /// Convenience: greedy-partitions the system into `shards` shards.
  ShardedEngine(const System& system, std::size_t shards);

  /// Runs from the system's initial state.
  RunResult run(const ShardedOptions& options);

  const ShardedSystem& sharded() const { return sharded_; }

  /// Statistics of the most recent run(); empty before the first run.
  const ShardedStats& lastRunStats() const { return stats_; }

 private:
  ShardedSystem sharded_;
  ShardedStats stats_;
};

}  // namespace cbip::shard
