// Sharded BIP engine: one worker thread per shard of a partitioned
// component graph.
//
// Where the multithreaded engine (engine/engine_mt.hpp) pays a
// message-round handshake per *interaction*, the sharded engine pays
// three synchronization barriers per *epoch* of up to
// shardCount * epochBatch interactions: shard-local interactions (the overwhelming majority under
// a good partition, see shard/partition.hpp) execute entirely inside
// their shard — enabled-set maintenance, policy choice, data transfer and
// transition firing all touch one worker's own frame, with no locks.
//
// Cross-shard interactions are coordinated by an epoch-based conflict
// scheduler with no global lock:
//
//   plan    All frames are quiescent. Every shard refreshes the enabled
//           sets of the connectors it owns (cross-shard connectors are
//           owned by their lowest involved shard) from the dirty-instance
//           logs of the previous epoch, and publishes its cross-shard
//           candidates. [barrier: one thread deterministically resolves
//           conflicts — candidates sorted by (connector, mask), greedily
//           accepted while their instance footprints stay disjoint — and
//           deals out per-shard step quotas for the local phase.]
//
//   cross   Owners execute the accepted cross-shard interactions. Each
//           acquires the involved shards' mutexes in ascending shard
//           order (ordered two-shard locking in the common case; ordered
//           k-shard locking for wider connectors, deadlock-free by the
//           total order), executes against the two frames through the
//           foreign-frame slot maps, and queues the dirtied instances to
//           the affected shards. [barrier]
//
//   local   Every shard drains its dirty queue, then runs up to its quota
//           of shard-local interactions: pick via its own seeded policy,
//           execute in place on the shard frame, update its local enabled
//           caches incrementally. [barrier: count the epoch's executed
//           interactions; 0 executed means global deadlock.]
//
// Because every interaction executed within one epoch has a pairwise
// disjoint instance footprint against the concurrent ones (accepted
// crosses by construction; locals by shard-locality), the epoch's
// interactions serialize: cross interactions in accepted order followed
// by each shard's local sequence is a valid sequential schedule with an
// identical final state. The differential suite (tests/test_sharded.cpp)
// replays exactly that schedule through SequentialEngine. With a single
// shard the engine degenerates to the sequential loop and its traces are
// bit-identical to SequentialEngine under the same seeded policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "engine/common.hpp"
#include "shard/sharded.hpp"

namespace cbip::shard {

struct ShardedOptions {
  std::uint64_t maxSteps = 1000;  // counts interactions, like MtOptions
  bool recordTrace = true;
  /// Seed for the default per-shard scheduling policies.
  std::uint64_t seed = 0;
  /// Upper bound on shard-local interactions one shard executes per
  /// epoch. Larger values amortize the per-epoch barriers; 1 globally
  /// synchronizes every step.
  std::uint64_t epochBatch = 8;
  /// Scheduling policy per shard. Default: RandomPolicy(seed) for shard 0
  /// — making a one-shard run bit-identical to SequentialEngine with
  /// RandomPolicy(seed) — and an independently seeded RandomPolicy per
  /// further shard. Policies are handed an empty placeholder GlobalState;
  /// state-inspecting policies are not supported here.
  std::function<std::unique_ptr<SchedulingPolicy>(std::size_t shard)> policyFactory;
};

class ShardedEngine {
 public:
  /// The system must outlive the engine.
  ShardedEngine(const System& system, Partition partition);
  /// Convenience: greedy-partitions the system into `shards` shards.
  ShardedEngine(const System& system, std::size_t shards);

  /// Runs from the system's initial state.
  RunResult run(const ShardedOptions& options);

  const ShardedSystem& sharded() const { return sharded_; }

 private:
  ShardedSystem sharded_;
};

}  // namespace cbip::shard
