// Sharded BIP engine: one worker thread per shard of a partitioned
// component graph.
//
// Where the multithreaded engine (engine/engine_mt.hpp) pays a
// message-round handshake per *interaction*, the sharded engine pays
// three synchronization barriers per *epoch* of up to
// shardCount * epochBatch interactions: shard-local interactions (the overwhelming majority under
// a good partition, see shard/partition.hpp) execute entirely inside
// their shard — enabled-set maintenance, policy choice, data transfer and
// transition firing all touch one worker's own frame, with no locks.
//
// Cross-shard interactions are coordinated by an epoch-based conflict
// scheduler with no global lock:
//
//   plan    All frames are quiescent. Every shard refreshes the enabled
//           sets of the connectors it owns (cross-shard connectors are
//           owned by their lowest involved shard) from the dirty-instance
//           logs of the previous epoch, and publishes its cross-shard
//           candidates. [barrier: one thread deterministically resolves
//           conflicts — candidates sorted by (connector, mask), greedily
//           accepted while their instance footprints stay disjoint — and
//           deals out per-shard step quotas for the local phase.]
//
//   cross   Owners execute the accepted cross-shard interactions. Each
//           acquires the involved shards' mutexes in ascending shard
//           order (ordered two-shard locking in the common case; ordered
//           k-shard locking for wider connectors, deadlock-free by the
//           total order), executes against the two frames through the
//           foreign-frame slot maps, and queues the dirtied instances to
//           the affected shards. [barrier]
//
//   local   Every shard drains its dirty queue, then runs up to its quota
//           of shard-local interactions: pick via its own seeded policy,
//           execute in place on the shard frame, update its local enabled
//           caches incrementally. [barrier: count the epoch's executed
//           interactions; 0 executed means global deadlock.]
//
// Because every interaction executed within one epoch has a pairwise
// disjoint instance footprint against the concurrent ones (accepted
// crosses by construction; locals by shard-locality), the epoch's
// interactions serialize: cross interactions in accepted order followed
// by each shard's local sequence is a valid sequential schedule with an
// identical final state. The differential suite (tests/test_sharded.cpp)
// replays exactly that schedule through SequentialEngine. With a single
// shard the engine degenerates to the sequential loop and its traces are
// bit-identical to SequentialEngine under the same seeded policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/common.hpp"
#include "shard/sharded.hpp"

namespace cbip::shard {

/// Scheduler-behaviour statistics for the last run(). Extends the common
/// RunStats core (steps, scanRounds = epochs, wallNs) with epoch-grained
/// scheduler and migration detail (all writes happen at barrier
/// completions or after the join, never on the per-interaction hot path)
/// and is always collected — unlike the src/obs counters these are part of
/// the engine's functional result, so tests can assert scheduler behaviour
/// (idle shards, stalled epochs, quota waste, migration counts) without
/// going through the telemetry registry.
struct ShardedStats : RunStats {
  std::uint64_t epochs = 0;           ///< epochs closed (bootstrap excluded)
  std::uint64_t stalledEpochs = 0;    ///< epochs where >=1 shard sat idle
                                      ///< while the epoch still made progress
  std::uint64_t crossCandidates = 0;  ///< cross-shard candidates published
  std::uint64_t crossAccepted = 0;    ///< accepted by the conflict resolver
  std::uint64_t crossConflicts = 0;   ///< rejected: instance-footprint clash

  // Online-rebalancing outcome (zero when rebalancing is disabled).
  std::uint64_t rebalanceDecisions = 0;  ///< load-window checks that migrated
  std::uint64_t componentsMoved = 0;     ///< instances migrated across shards
  std::uint64_t stealEvents = 0;         ///< local interactions executed by a
                                         ///< thief shard during a cross phase

  struct Shard {
    std::uint64_t steps = 0;        ///< localSteps + crossSteps + stolenSteps
    std::uint64_t localSteps = 0;   ///< shard-local interactions executed
    std::uint64_t crossSteps = 0;   ///< owned cross interactions executed
    std::uint64_t stolenSteps = 0;  ///< interactions this shard executed as
                                    ///< a thief (on some victim's frame)
    std::uint64_t idleEpochs = 0;   ///< epochs this shard executed nothing
                                    ///< while the epoch overall progressed
    std::uint64_t quotaGranted = 0; ///< local-step quota dealt across epochs
    std::uint64_t quotaUnused = 0;  ///< granted quota left on the table
    std::uint64_t migratedIn = 0;   ///< instances migrated into this shard
    std::uint64_t migratedOut = 0;  ///< instances migrated out of this shard
    // Wall-clock phase breakdown in nanoseconds; zero unless timing was
    // active during the run (observability enabled or a trace sink
    // installed; always zero in CBIP_NO_OBS builds).
    std::uint64_t planNs = 0;
    std::uint64_t crossNs = 0;
    std::uint64_t localNs = 0;
    std::uint64_t idleNs = 0;      ///< barrier-wait time between phases
    std::uint64_t lockWaitNs = 0;  ///< cross-phase shard-mutex acquisition
  };
  std::vector<Shard> shards;  ///< indexed by shard id
};

/// ShardedEngine options: the portable EngineOptions core (maxSteps counts
/// interactions, like MtOptions) plus the engine-specific knobs below.
struct ShardedOptions : EngineOptions {
  /// Seed for the default per-shard scheduling policies.
  std::uint64_t seed = 0;
  /// Upper bound on shard-local interactions one shard executes per
  /// epoch. Larger values amortize the per-epoch barriers; 1 globally
  /// synchronizes every step.
  std::uint64_t epochBatch = 8;
  /// Online rebalancing: every rebalanceInterval epochs, migrate members
  /// of a persistently overloaded shard (load > rebalanceTolerance x the
  /// average over the window) to the least-loaded shards. Decisions read
  /// only executed-step counts — never wall clocks — so runs stay
  /// deterministic for a fixed seed. Also gated by the global
  /// CBIP_NO_REBALANCE / setRebalancingEnabled() escape hatch; with either
  /// switch off, traces are bit-identical to the static-partition engine.
  bool rebalance = true;
  std::uint64_t rebalanceInterval = 8;  ///< epochs per load window
  double rebalanceTolerance = 1.5;      ///< trigger: maxLoad > tol * avgLoad
  /// Work stealing for load bursts: shards with no enabled local work
  /// execute surplus local interactions of overloaded shards during the
  /// cross phase, under the victim's frame lock (the existing ordered
  /// locking discipline). Plan-time assignment, footprint-disjoint against
  /// everything else in the epoch — deterministic and replay-safe. Gated
  /// by the same escape hatch as `rebalance`.
  bool workStealing = true;
  /// Scheduling policy per shard. Default: RandomPolicy(seed) for shard 0
  /// — making a one-shard run bit-identical to SequentialEngine with
  /// RandomPolicy(seed) — and an independently seeded RandomPolicy per
  /// further shard. Policies are handed an empty placeholder GlobalState;
  /// state-inspecting policies are not supported here.
  std::function<std::unique_ptr<SchedulingPolicy>(std::size_t shard)> policyFactory;
};

/// Global escape hatch for the adaptive layer (rebalancing + stealing),
/// same discipline as CBIP_NO_FUSE et al.: defaults to on unless the
/// CBIP_NO_REBALANCE environment variable is set (any value but "0");
/// setRebalancingEnabled() overrides at runtime. With the hatch off the
/// engine is bit-identical to the static-partition scheduler regardless
/// of ShardedOptions::rebalance / workStealing.
bool rebalancingEnabled();
void setRebalancingEnabled(bool enabled);

class ShardedEngine final : public Engine {
 public:
  /// The system must outlive the engine.
  ShardedEngine(const System& system, Partition partition);
  /// Convenience: greedy-partitions the system into `shards` shards.
  ShardedEngine(const System& system, std::size_t shards);

  /// Runs from the system's initial state.
  RunResult run(const ShardedOptions& options);

  /// Engine interface: merges the portable core into defaultOptions().
  RunResult run(const EngineOptions& options) override;
  const char* name() const override { return "sharded"; }

  const ShardedSystem& sharded() const { return sharded_; }

  /// Statistics of the most recent run(); empty before the first run.
  const ShardedStats& lastRunStats() const override { return stats_; }

  /// Template for type-erased runs: preset engine-specific knobs (seed,
  /// epochBatch, rebalance, ...) here before driving the engine through
  /// the Engine interface.
  ShardedOptions& defaultOptions() { return defaults_; }

 private:
  ShardedSystem sharded_;
  ShardedOptions defaults_;
  ShardedStats stats_;
};

}  // namespace cbip::shard
