// Sharded execution form of a System: per-shard contiguous variable
// frames plus connector programs recompiled against them.
//
// Layered on the compiled representation (core/compiled.hpp): ExprProgram
// and flat-slot frames are position-independent, so once a Partition
// (shard/partition.hpp) assigns every instance to a shard, each shard can
// own one contiguous Value frame holding all its members' variables
// back-to-back. Connectors then split into two classes:
//
//   * shard-local connectors (all ends in one shard) compile to programs
//     that address the shard frame *directly* — guard evaluation is a
//     single bytecode run with zero gather, and down transfers write the
//     live slots in place. Their connector-local variables are allocated
//     as extra slots at the tail of the shard frame, re-zeroed at the
//     start of every transfer to preserve the interpreter's fresh-zero
//     semantics (validation bars guards and ups from reading them, so
//     stale values left after a transfer are unobservable);
//
//   * cross-shard connectors keep the classic gather -> run -> write-back
//     shape, but their (scope, index) -> slot maps span several shard
//     frames (typically two: home + foreign) via the sharded build mode
//     of CompiledConnector.
//
// Component transition programs (AtomicType::compiledTransition) are
// reused as-is through frame-base-relative addressing
// (ExprProgram::run(frame, base)): a transition compiled against
// "slot = variable index" runs against the shard frame with the
// instance's base offset added to every load.
//
// All of this is the execution form only. The symbolic System stays
// authoritative, and every operation here has an interpreted twin used
// when the CBIP_NO_COMPILE escape hatch is active, with semantics
// mirroring core/semantics.cpp expression for expression.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/compiled.hpp"
#include "core/semantics.hpp"
#include "core/system.hpp"
#include "shard/partition.hpp"

namespace cbip::shard {

/// Runtime state of a sharded system: one contiguous variable frame per
/// shard (member variables back-to-back, then local-connector variable
/// slots) plus per-instance control locations.
struct ShardedState {
  std::vector<std::vector<Value>> frames;
  std::vector<int> locations;
};

class ShardedSystem {
 public:
  /// The system must outlive the ShardedSystem. Priorities and maximal
  /// progress are global filters incompatible with shard-local
  /// scheduling and are rejected (ModelError).
  ShardedSystem(const System& system, Partition partition);

  struct Shard {
    std::vector<int> members;          // instance ids, ascending
    std::vector<int> localConnectors;  // connector ids, ascending
    std::vector<int> ownedCross;       // indices into crossConnectors(), ascending
    std::size_t frameSize = 0;         // variable slots + local connector var slots
  };

  /// Shard-local compiled connector: programs address the owning shard's
  /// frame directly (see file comment). Built by ensureCompiled().
  struct LocalProgram {
    int connector = -1;
    expr::ExprProgram guard;  // empty when trivially true
    struct UpOp {
      int slot = 0;
      expr::ExprProgram value;
    };
    struct DownOp {
      int end = 0;  // participation bit
      int slot = 0;
      expr::ExprProgram value;
    };
    std::vector<UpOp> ups;
    expr::ExprProgram upBlock;  // all ups fused into one program (empty when no ups)
    std::vector<DownOp> downs;
    int homeShard = 0;
    int varBase = 0;  // first connector-variable slot in the shard frame
    int varCount = 0;
  };

  struct CrossConnector {
    int connector = -1;
    std::vector<int> shards;  // involved shards, ascending (typically two)
    int owner = -1;           // shards.front(): the shard that schedules it
    std::optional<CompiledConnector> compiled;  // sharded build; see ensureCompiled()
  };

  // ---- structure queries ----
  const System& system() const { return *system_; }
  const Partition& partition() const { return partition_; }
  std::size_t shardCount() const { return shards_.size(); }
  const Shard& shard(std::size_t s) const { return shards_[s]; }
  int shardOf(int instance) const { return partition_.shardOf(static_cast<std::size_t>(instance)); }
  /// Offset of the instance's variable block in its shard's frame.
  int frameBase(int instance) const { return frameBase_[static_cast<std::size_t>(instance)]; }
  /// Index into crossConnectors() for connector `ci`, or -1 when local.
  int crossIndexOf(int ci) const { return crossIndex_[static_cast<std::size_t>(ci)]; }
  const std::vector<CrossConnector>& crossConnectors() const { return cross_; }

  /// Builds the compiled connector programs when compilation is enabled
  /// and they are missing (idempotent). Must run while single-threaded;
  /// the engines call it at the start of every run, mirroring the forced
  /// builds in the other engines.
  void ensureCompiled();

  /// One online-rebalancing move: instance -> destination shard.
  struct Move {
    int instance = -1;
    int toShard = -1;
  };

  /// Migrates instances between shards in place, patching `state` to
  /// match. Frames are position-independent, so each move is a frame-slice
  /// copy to the tail of the destination frame plus a frameBase/partition
  /// patch; the vacated slice stays behind as an unobservable hole (frames
  /// grow monotonically across migrations — the rebalancer's hysteresis
  /// bounds move counts, so holes never dominate). Only the connectors
  /// touching a moved instance are reclassified (local <-> cross) and — if
  /// the compiled programs were built — recompiled against the new
  /// layout; everything else (footprints, masks, other programs, other
  /// instances' bases) is untouched. Must run while single-threaded with
  /// all frames quiescent (the engine calls it between epochs);
  /// enabled-interaction sets and toGlobal() are preserved exactly.
  void migrate(ShardedState& state, std::span<const Move> moves);

  // ---- state conversion ----
  ShardedState initialState() const;
  GlobalState toGlobal(const ShardedState& state) const;
  ShardedState fromGlobal(const GlobalState& state) const;

  // ---- frame-level component semantics (mirror core/atomic.cpp) ----
  bool guardHoldsAt(const ShardedState& state, int instance, int ti) const;
  void enabledTransitionsAt(const ShardedState& state, int instance, int port,
                            std::vector<int>& out) const;
  void fireAt(ShardedState& state, int instance, int ti) const;
  /// Guard-then-fire as one operation on the shard frame (the twin of the
  /// global tryFire): with fusion enabled, a single frame-base-relative
  /// dispatch of the transition's fused guard+action program.
  bool tryFireAt(ShardedState& state, int instance, int ti) const;
  void runInternalAt(ShardedState& state, int instance, int maxSteps = 10'000) const;

  // ---- connector semantics (mirror core/semantics.cpp) ----
  /// Appends the enabled interactions of connector `ci`, element-wise
  /// identical to the reference appendConnectorInteractions on the
  /// equivalent GlobalState.
  void appendConnectorInteractions(const ShardedState& state, int ci,
                                   std::vector<EnabledInteraction>& out) const;

  /// Executes `interaction` (transfer, fire one transition per
  /// participant, run taus) exactly like semantics execute(). The caller
  /// guarantees exclusive access to every involved shard's frame.
  void executeInteraction(ShardedState& state, const EnabledInteraction& interaction,
                          std::span<const int> transitionChoice) const;

  /// Instances attached to connector `ci` (its conflict footprint).
  const std::vector<int>& connectorInstances(int ci) const {
    return footprint_[static_cast<std::size_t>(ci)];
  }

 private:
  void connectorTransfer(ShardedState& state, const EnabledInteraction& interaction) const;
  /// (Re)compiles the programs of local connector `ci` against the current
  /// layout (frame bases + its LocalProgram var slots).
  void compileLocal(int ci);
  /// (Re)builds the sharded CompiledConnector of `x` against the current
  /// layout.
  void compileCross(CrossConnector& x);

  const System* system_;
  Partition partition_;
  std::vector<Shard> shards_;
  std::vector<int> frameBase_;                // per instance
  std::vector<int> crossIndex_;               // per connector; -1 = local
  std::vector<std::vector<int>> footprint_;   // per connector: distinct instances
  std::vector<LocalProgram> localPrograms_;   // per connector (empty entry when cross)
  std::vector<CrossConnector> cross_;
  std::vector<std::vector<InteractionMask>> masks_;  // per connector: feasible masks
  bool compiledBuilt_ = false;
};

}  // namespace cbip::shard
