#include "shard/partition.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "util/require.hpp"

namespace cbip::shard {

namespace {

/// Weighted adjacency of the component affinity graph, as a sorted
/// (neighbour, weight) list per instance.
std::vector<std::vector<std::pair<int, int>>> affinityGraph(const System& system) {
  const std::size_t n = system.instanceCount();
  std::vector<std::vector<std::pair<int, int>>> adj(n);
  for (const Connector& c : system.connectors()) {
    // Distinct instances on the connector (validation forbids duplicate
    // instances among the ends, but stay defensive).
    std::vector<int> members;
    members.reserve(c.endCount());
    for (const ConnectorEnd& e : c.ends()) members.push_back(e.port.instance);
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        adj[static_cast<std::size_t>(members[a])].push_back({members[b], 1});
        adj[static_cast<std::size_t>(members[b])].push_back({members[a], 1});
      }
    }
  }
  // Merge parallel edges into one weighted edge.
  for (std::vector<std::pair<int, int>>& edges : adj) {
    std::sort(edges.begin(), edges.end());
    std::vector<std::pair<int, int>> merged;
    for (const auto& [to, w] : edges) {
      if (!merged.empty() && merged.back().first == to) {
        merged.back().second += w;
      } else {
        merged.push_back({to, w});
      }
    }
    edges = std::move(merged);
  }
  return adj;
}

}  // namespace

Partition partitionSystem(const System& system, const PartitionOptions& options) {
  const std::size_t n = system.instanceCount();
  require(options.shards >= 1, "partitionSystem: need at least one shard");
  require(options.tolerance >= 1.0, "partitionSystem: tolerance must be >= 1.0");
  const std::size_t k = std::min(options.shards, std::max<std::size_t>(n, 1));
  std::vector<int> shardOf(n, -1);
  if (k == 1) {
    std::fill(shardOf.begin(), shardOf.end(), 0);
    return Partition(std::move(shardOf), 1);
  }

  const auto adj = affinityGraph(system);
  std::vector<std::size_t> load(k, 0);
  std::size_t assigned = 0;
  for (const auto& [inst, s] : options.pins) {
    require(inst >= 0 && static_cast<std::size_t>(inst) < n,
            "partitionSystem: pinned instance out of range");
    require(s >= 0 && static_cast<std::size_t>(s) < k,
            "partitionSystem: pinned shard out of range");
    require(shardOf[static_cast<std::size_t>(inst)] == -1 ||
                shardOf[static_cast<std::size_t>(inst)] == s,
            "partitionSystem: instance pinned to two shards");
    if (shardOf[static_cast<std::size_t>(inst)] == -1) {
      shardOf[static_cast<std::size_t>(inst)] = s;
      ++load[static_cast<std::size_t>(s)];
      ++assigned;
    }
  }

  const std::size_t cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(options.tolerance * static_cast<double>(n) / static_cast<double>(k))));

  // Total incident weight per instance; high-degree instances make the
  // best growth seeds (their edges are the most expensive to cut).
  std::vector<long long> degree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [to, w] : adj[i]) {
      (void)to;
      degree[i] += w;
    }
  }

  // Seed order for the empty-frontier case: highest degree first, lowest
  // index on ties — the same order the former full candidate scan
  // produced when every unassigned affinity was zero. The cursor only
  // ever moves forward because assignment is monotone.
  std::vector<std::size_t> byDegree(n);
  for (std::size_t i = 0; i < n; ++i) byDegree[i] = i;
  std::sort(byDegree.begin(), byDegree.end(), [&](std::size_t a, std::size_t b) {
    return degree[a] != degree[b] ? degree[a] > degree[b] : a < b;
  });
  std::size_t seedCursor = 0;

  // Affinity of each unassigned instance to the shard currently growing.
  std::vector<long long> affinity(n, 0);
  for (std::size_t s = 0; s < k; ++s) {
    // Even share of what is left over the shards still to fill; the last
    // shard absorbs every remainder.
    const std::size_t remainingShards = k - s;
    const std::size_t target =
        load[s] + (n - assigned + remainingShards - 1) / remainingShards;
    std::fill(affinity.begin(), affinity.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (shardOf[i] != static_cast<int>(s)) continue;
      for (const auto& [to, w] : adj[i]) {
        if (shardOf[static_cast<std::size_t>(to)] == -1) {
          affinity[static_cast<std::size_t>(to)] += w;
        }
      }
    }
    // Growth frontier: lazy max-heap over (affinity, degree, -index), so
    // each pick costs O(log n) instead of a full O(n) scan (quadratic in
    // total — prohibitive at the 10^5..10^6-component benchmark sizes).
    // Entries go stale when the instance is assigned or its affinity has
    // since grown; stale tops are dropped on inspection. Zero-affinity
    // instances never enter the heap, so an empty frontier means every
    // unassigned affinity is zero and the byDegree seed order takes over
    // — exactly the former scan's tie-break in both regimes.
    using HeapEntry = std::tuple<long long, long long, long long>;
    std::priority_queue<HeapEntry> frontier;
    for (std::size_t i = 0; i < n; ++i) {
      if (shardOf[i] == -1 && affinity[i] > 0) {
        frontier.push({affinity[i], degree[i], -static_cast<long long>(i)});
      }
    }
    while (assigned < n && load[s] < cap) {
      // Leave at least one instance for every shard after this one.
      if (n - assigned <= remainingShards - 1) break;
      int best = -1;
      long long bestAffinity = 0;
      while (!frontier.empty()) {
        const auto [a, d, ni] = frontier.top();
        (void)d;
        const auto i = static_cast<std::size_t>(-ni);
        if (shardOf[i] != -1 || affinity[i] != a) {
          frontier.pop();
          continue;
        }
        best = static_cast<int>(i);
        bestAffinity = a;
        break;
      }
      if (best == -1) {
        while (seedCursor < n && shardOf[byDegree[seedCursor]] != -1) ++seedCursor;
        best = static_cast<int>(byDegree[seedCursor]);
      }
      const std::size_t pick = static_cast<std::size_t>(best);
      // Past the even share, keep growing only while the candidate
      // actually touches the shard (tolerance buys smaller cuts, not
      // arbitrary imbalance).
      if (load[s] >= target && bestAffinity == 0) break;
      shardOf[pick] = static_cast<int>(s);
      ++load[s];
      ++assigned;
      for (const auto& [to, w] : adj[pick]) {
        const auto t = static_cast<std::size_t>(to);
        if (shardOf[t] == -1) {
          affinity[t] += w;
          frontier.push({affinity[t], degree[t], -static_cast<long long>(t)});
        }
      }
    }
  }
  // Anything left (cap exhausted everywhere) goes to the lightest shard.
  for (std::size_t i = 0; i < n; ++i) {
    if (shardOf[i] != -1) continue;
    const std::size_t s = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    shardOf[i] = static_cast<int>(s);
    ++load[s];
  }
  return Partition(std::move(shardOf), k);
}

PartitionQuality partitionQuality(const System& system, const Partition& partition) {
  require(partition.instanceCount() == system.instanceCount(),
          "partitionQuality: partition does not match the system");
  PartitionQuality q;
  const auto adj = affinityGraph(system);
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (const auto& [to, w] : adj[i]) {
      if (static_cast<std::size_t>(to) > i &&
          partition.shardOf(i) != partition.shardOf(static_cast<std::size_t>(to))) {
        q.edgeCut += static_cast<std::size_t>(w);
      }
    }
  }
  for (const Connector& c : system.connectors()) {
    bool cross = false;
    for (const ConnectorEnd& e : c.ends()) {
      if (partition.shardOf(static_cast<std::size_t>(e.port.instance)) !=
          partition.shardOf(static_cast<std::size_t>(c.end(0).port.instance))) {
        cross = true;
        break;
      }
    }
    if (cross) ++q.crossConnectors;
  }
  std::vector<std::size_t> load(partition.shardCount(), 0);
  for (std::size_t i = 0; i < partition.instanceCount(); ++i) {
    ++load[static_cast<std::size_t>(partition.shardOf(i))];
  }
  q.maxLoad = load.empty() ? 0 : *std::max_element(load.begin(), load.end());
  q.minLoad = load.empty() ? 0 : *std::min_element(load.begin(), load.end());
  return q;
}

}  // namespace cbip::shard
