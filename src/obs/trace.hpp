// Chrome trace-event span log: a timeline export loadable by
// chrome://tracing and Perfetto (ui.perfetto.dev).
//
// The sharded engine emits one complete-span per epoch phase per shard
// (plan / cross / local) plus the barrier-wait gaps between them, giving
// the exact sharded-epoch timeline the rebalancing work needs to see:
// which shard idles, which phase dominates, where the cross-phase
// serialization bites. Emission is epoch-grained (a handful of events per
// barrier crossing), so a mutex-guarded event vector is plenty — the
// per-interaction hot path never touches this module.
//
// Engines find the log through a process-global sink pointer
// (setTraceSink); a null sink — the default — means no event is recorded
// and the engines skip even the clock reads. The runtime/buildtime
// CBIP_NO_OBS switches gate emission exactly like the counters.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace cbip::obs {

class TraceLog {
 public:
  /// The log's epoch: timestamps are exported relative to the first
  /// event's nanosecond clock reading, in microseconds.
  TraceLog() = default;

  /// A completed span [startNs, endNs) (nowNanos() readings) on track
  /// `tid` (the engines use the shard index).
  void complete(std::string name, const char* category, int tid, std::uint64_t startNs,
                std::uint64_t endNs);

  /// A zero-duration marker.
  void instant(std::string name, const char* category, int tid, std::uint64_t atNs);

  /// Names a track in the viewer (thread_name metadata event).
  void setThreadName(int tid, std::string name);

  std::size_t eventCount() const;

  /// Writes the whole log as one Chrome trace JSON object
  /// ({"traceEvents":[...],"displayTimeUnit":"ns"}): load the file via
  /// chrome://tracing "Load" or drop it into ui.perfetto.dev.
  void write(std::ostream& os) const;

 private:
  struct Event {
    char phase = 'X';  // 'X' complete, 'i' instant
    std::string name;
    const char* category = "";
    int tid = 0;
    std::uint64_t ts = 0;   // nanoseconds (clock domain of nowNanos)
    std::uint64_t dur = 0;  // nanoseconds, complete events only
  };

  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::vector<std::pair<int, std::string>> threadNames_;
};

/// The process-global span sink consulted by the engines; null by default.
TraceLog* traceSink();

/// Installs (or clears, with nullptr) the span sink. The log must outlive
/// every engine run that can observe it. Not synchronized against runs in
/// flight — install before starting the run, clear after it returns.
void setTraceSink(TraceLog* log);

}  // namespace cbip::obs
