// Engine-wide telemetry: a lock-free counters/gauges registry with
// thread-local sharded accumulation.
//
// Rigorous system design demands that claims about a system be backed by
// evidence from the artifact itself; this module is the instrumentation
// substrate every "measure then optimize" PR consumes. The hot layers
// (engines, VM, enabled-set scan, D-Finder/SAT, simulated network) record
// into named metrics through the handles below; `snapshot()` folds the
// per-thread cells into one consistent view and `toJson()` exports it.
//
// Recording discipline (the part that must not slow the engines down):
//   * every metric handle resolves its name to a small integer id once,
//     at construction (registration is mutex-protected and cold);
//   * add()/observe()/record() touch only a thread-local cell block —
//     one relaxed atomic load (the runtime toggle), one bounds check,
//     one relaxed atomic add. No locks, no sharing, no false sharing
//     between recording threads;
//   * snapshot() is RCU-flavored: writers never block or wait for it. It
//     takes the registry mutex (against registration and thread
//     retirement only) and sums the live blocks with relaxed loads plus
//     the retired totals of exited threads. A snapshot is therefore a
//     consistent-enough view: monotone, and exact whenever the recording
//     threads are quiescent (joined), which is when the engines read it.
//
// Escape hatches, mirroring the execution-layer ones:
//   * runtime: the CBIP_NO_OBS environment variable (or setEnabled(false))
//     turns every recording call into a single load-and-branch;
//   * build: the CBIP_NO_OBS *compile definition* (CMake option
//     -DCBIP_NO_OBS=ON) compiles the whole recording layer to true no-ops
//     — empty inline bodies, no registry, no thread-locals — for the
//     zero-overhead baseline builds. The snapshot/export API survives
//     (returning empty data) so tools and tests build either way.
//
// Traces and results must be bit-identical with observability on, off,
// or compiled out: telemetry only ever counts, it never steers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cbip::obs {

/// One folded view of every registered metric. Counter values are exact
/// sums over all threads that ever recorded (live threads via their cell
/// blocks, exited threads via the retired totals).
struct Snapshot {
  struct Histogram {
    std::string name;
    /// Power-of-two buckets: buckets[0] counts values <= 0, buckets[b]
    /// (b >= 1) counts values with bit_width == b, the last bucket
    /// everything wider. count() = sum of buckets.
    std::vector<std::uint64_t> buckets;
    std::uint64_t sum = 0;  // sum of observed values (negatives clamp to 0)
    std::uint64_t count() const {
      std::uint64_t n = 0;
      for (std::uint64_t b : buckets) n += b;
      return n;
    }
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, std::int64_t>> gauges;     // name-sorted
  std::vector<Histogram> histograms;                            // name-sorted

  /// Value of a counter by exact name; 0 when absent (a metric nobody
  /// recorded into may legitimately be missing).
  std::uint64_t counter(std::string_view name) const;
  /// Histogram by exact name; nullptr when absent.
  const Histogram* histogram(std::string_view name) const;
};

/// Serializes a snapshot as one JSON object:
///   {"counters":{...},"gauges":{...},"histograms":{name:{"buckets":[...],
///    "sum":N,"count":N}}}
/// Keys are sorted, output is deterministic.
std::string toJson(const Snapshot& snapshot);

#if defined(CBIP_NO_OBS)

// ---- compiled-out build: every recording call is a true no-op ----------

inline bool enabled() { return false; }
inline void setEnabled(bool) {}

class Counter {
 public:
  explicit Counter(const char*) {}
  explicit Counter(const std::string&) {}
  void add(std::uint64_t = 1) const {}
};

class Gauge {
 public:
  explicit Gauge(const char*) {}
  explicit Gauge(const std::string&) {}
  void set(std::int64_t) const {}
};

class Histogram {
 public:
  explicit Histogram(const char*) {}
  explicit Histogram(const std::string&) {}
  void observe(std::int64_t) const {}
};

class Timer {
 public:
  explicit Timer(const char*) {}
  explicit Timer(const std::string&) {}
  void record(std::uint64_t) const {}

  class Scope {
   public:
    explicit Scope(const Timer&) {}
  };
};

inline std::uint64_t nowNanos() { return 0; }
inline Snapshot snapshot() { return {}; }
inline void resetAll() {}

#else  // !CBIP_NO_OBS

namespace detail {
/// Backing store for enabled(). Constant-initialized to true so hot-path
/// readers inline to one relaxed load with no init guard; the CBIP_NO_OBS
/// environment override is applied once during obs.cpp's static init.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when recording is active; defaults to true unless the CBIP_NO_OBS
/// environment variable is set to a non-empty value other than "0". Every
/// recording call checks this first (one inlined relaxed atomic load —
/// keeping the disabled path call-free is what the <2% overhead budget of
/// the engine benches rests on).
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Overrides the recording switch (tests and tools toggle it to prove
/// traces stay bit-identical either way).
inline void setEnabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

/// Monotonic nanosecond clock shared by timers and the trace log
/// (steady_clock; origin unspecified but common process-wide).
std::uint64_t nowNanos();

namespace detail {
/// Registers `cells` consecutive accumulation cells under `name` with the
/// given kind tag; returns the first cell id. Re-registering a name
/// returns the existing id (metric handles are freely re-constructible).
enum class Kind : std::uint8_t { kCounter, kHistogram, kTimerNs, kTimerCalls };
int registerMetric(const std::string& name, int cells, Kind kind);
int registerGauge(const std::string& name);
/// Adds into this thread's cell for `id`. Lock-free: grows the block on
/// first touch of a new id, then it is one relaxed atomic add.
void add(int id, std::uint64_t delta);
void gaugeSet(int id, std::int64_t value);
}  // namespace detail

/// A named monotonic counter. Cheap to construct (name lookup under the
/// registry mutex); add() is the lock-free hot path.
class Counter {
 public:
  explicit Counter(const char* name)
      : id_(detail::registerMetric(name, 1, detail::Kind::kCounter)) {}
  explicit Counter(const std::string& name)
      : id_(detail::registerMetric(name, 1, detail::Kind::kCounter)) {}

  void add(std::uint64_t delta = 1) const {
    if (enabled()) detail::add(id_, delta);
  }

 private:
  int id_;
};

/// A named last-write-wins value (not sharded: sets are rare and a sum
/// across threads would be meaningless).
class Gauge {
 public:
  explicit Gauge(const char* name) : id_(detail::registerGauge(name)) {}
  explicit Gauge(const std::string& name) : id_(detail::registerGauge(name)) {}

  void set(std::int64_t value) const {
    if (enabled()) detail::gaugeSet(id_, value);
  }

 private:
  int id_;
};

/// A power-of-two-bucket histogram (see Snapshot::Histogram for the
/// bucket layout). observe() is two cell adds.
class Histogram {
 public:
  /// Bucket count: <=0, bit_width 1..15, >= 2^15. Small on purpose — the
  /// recorded quantities (latencies in virtual time units, dirty-set
  /// sizes, batch widths) live comfortably in 16 log2 buckets.
  static constexpr int kBuckets = 17;

  explicit Histogram(const char* name) : Histogram(std::string(name)) {}
  explicit Histogram(const std::string& name)
      : id_(detail::registerMetric(name, kBuckets + 1, detail::Kind::kHistogram)) {}

  void observe(std::int64_t value) const;

 private:
  int id_;
};

/// Accumulated wall time: exports as two counters, `name.ns` (total
/// nanoseconds) and `name.calls`. The Scope RAII helper reads the clock
/// only while recording is enabled.
class Timer {
 public:
  explicit Timer(const char* name) : Timer(std::string(name)) {}
  explicit Timer(const std::string& name)
      : ns_(detail::registerMetric(name + ".ns", 1, detail::Kind::kTimerNs)),
        calls_(detail::registerMetric(name + ".calls", 1, detail::Kind::kTimerCalls)) {}

  void record(std::uint64_t nanos) const {
    if (enabled()) {
      detail::add(ns_, nanos);
      detail::add(calls_, 1);
    }
  }

  class Scope {
   public:
    explicit Scope(const Timer& timer)
        : timer_(&timer), start_(enabled() ? nowNanos() : 0) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (start_ != 0) timer_->record(nowNanos() - start_);
    }

   private:
    const Timer* timer_;
    std::uint64_t start_;
  };

 private:
  int ns_;
  int calls_;
};

/// Folds every registered metric into one Snapshot (see the file comment
/// for the consistency contract).
Snapshot snapshot();

/// Zeroes every cell, retired total and gauge. For tests and per-run
/// exports; call it while the instrumented threads are quiescent if the
/// subsequent snapshot must be exact.
void resetAll();

#endif  // CBIP_NO_OBS

}  // namespace cbip::obs
