#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <ostream>

namespace cbip::obs {

void TraceLog::complete(std::string name, const char* category, int tid,
                        std::uint64_t startNs, std::uint64_t endNs) {
  const std::scoped_lock lock(mutex_);
  events_.push_back(Event{'X', std::move(name), category, tid, startNs,
                          endNs >= startNs ? endNs - startNs : 0});
}

void TraceLog::instant(std::string name, const char* category, int tid, std::uint64_t atNs) {
  const std::scoped_lock lock(mutex_);
  events_.push_back(Event{'i', std::move(name), category, tid, atNs, 0});
}

void TraceLog::setThreadName(int tid, std::string name) {
  const std::scoped_lock lock(mutex_);
  threadNames_.emplace_back(tid, std::move(name));
}

std::size_t TraceLog::eventCount() const {
  const std::scoped_lock lock(mutex_);
  return events_.size();
}

void TraceLog::write(std::ostream& os) const {
  const std::scoped_lock lock(mutex_);
  // Rebase on the earliest event so timestamps start near zero; Chrome's
  // ts/dur unit is microseconds (fractional values are accepted).
  std::uint64_t t0 = 0;
  bool haveT0 = false;
  for (const Event& e : events_) {
    if (!haveT0 || e.ts < t0) {
      t0 = e.ts;
      haveT0 = true;
    }
  }
  const auto formatMicros = [](std::uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return std::string(buf);
  };
  const auto micros = [&](std::uint64_t ns) { return formatMicros(ns - t0); };
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
    return out;
  };
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : threadNames_) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << escape(name) << "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid << ",\"name\":\""
       << escape(e.name) << "\",\"cat\":\"" << e.category << "\",\"ts\":" << micros(e.ts);
    if (e.phase == 'X') os << ",\"dur\":" << formatMicros(e.dur);
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ns\"}\n";
}

namespace {
std::atomic<TraceLog*> g_sink{nullptr};
}  // namespace

TraceLog* traceSink() { return g_sink.load(std::memory_order_acquire); }

void setTraceSink(TraceLog* log) { g_sink.store(log, std::memory_order_release); }

}  // namespace cbip::obs
