#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace cbip::obs {

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const Snapshot::Histogram* Snapshot::histogram(std::string_view name) const {
  for (const Histogram& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string toJson(const Snapshot& snapshot) {
  // Metric names are identifier-ish ([a-z0-9._]) by convention, but a
  // JSON export must not rely on convention.
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << escape(snapshot.counters[i].first) << "\":" << snapshot.counters[i].second;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << escape(snapshot.gauges[i].first) << "\":" << snapshot.gauges[i].second;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const Snapshot::Histogram& h = snapshot.histograms[i];
    if (i != 0) os << ',';
    os << '"' << escape(h.name) << "\":{\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) os << ',';
      os << h.buckets[b];
    }
    os << "],\"sum\":" << h.sum << ",\"count\":" << h.count() << '}';
  }
  os << "}}";
  return os.str();
}

#if !defined(CBIP_NO_OBS)

namespace {

/// Applies the CBIP_NO_OBS environment override to detail::g_enabled.
/// Runs during this TU's static init; until then the constant-initialized
/// default (enabled) holds, which only ever affects counts recorded by
/// other static initializers — never correctness.
const struct EnabledEnvInit {
  EnabledEnvInit() {
    const char* env = std::getenv("CBIP_NO_OBS");
    detail::g_enabled.store(
        env == nullptr || env[0] == '\0' || std::string_view(env) == "0",
        std::memory_order_relaxed);
  }
} g_enabledEnvInit;

/// One thread's accumulation cells, indexed by metric cell id. Only the
/// owning thread writes (relaxed read-modify-write of its own cells);
/// snapshot() reads concurrently with relaxed loads under the registry
/// mutex, which also guards the block list itself.
struct Block {
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
  std::size_t size = 0;
};

class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  int registerMetric(const std::string& name, int cells, detail::Kind kind) {
    const std::scoped_lock lock(mutex_);
    if (const auto it = byName_.find(name); it != byName_.end()) return it->second;
    const int id = static_cast<int>(cellCount_);
    byName_.emplace(name, id);
    metrics_.push_back(Metric{name, id, cells, kind});
    cellCount_ += static_cast<std::size_t>(cells);
    retired_.resize(cellCount_, 0);
    return id;
  }

  int registerGauge(const std::string& name) {
    const std::scoped_lock lock(mutex_);
    if (const auto it = gaugeByName_.find(name); it != gaugeByName_.end()) return it->second;
    const int id = static_cast<int>(gauges_.size());
    gaugeByName_.emplace(name, id);
    gauges_.push_back(std::make_unique<NamedGauge>(name));
    return id;
  }

  void gaugeSet(int id, std::int64_t value) {
    // The gauge vector only grows, and handles hold ids of completed
    // registrations; the pointer chase keeps set() lock-free.
    NamedGauge* g = nullptr;
    {
      const std::scoped_lock lock(mutex_);
      g = gauges_[static_cast<std::size_t>(id)].get();
    }
    g->value.store(value, std::memory_order_relaxed);
  }

  void attach(Block* block) {
    const std::scoped_lock lock(mutex_);
    live_.push_back(block);
  }

  /// Thread retirement: fold the exiting thread's cells into the retired
  /// totals so no recorded value is ever lost.
  void retire(Block* block) {
    const std::scoped_lock lock(mutex_);
    for (std::size_t i = 0; i < block->size && i < retired_.size(); ++i) {
      retired_[i] += block->cells[i].load(std::memory_order_relaxed);
    }
    std::erase(live_, block);
  }

  /// Grows `block` to cover cell `id`; called by the owning thread only.
  /// The swap happens under the mutex so a concurrent snapshot never sees
  /// a half-copied block; the owner's unlocked reads of its own pointer
  /// are safe because only the owner ever replaces it.
  void grow(Block* block, int id) {
    const std::scoped_lock lock(mutex_);
    std::size_t want = std::max<std::size_t>(cellCount_, static_cast<std::size_t>(id) + 1);
    want = std::max<std::size_t>(want, block->size * 2);
    want = std::max<std::size_t>(want, 64);
    auto cells = std::make_unique<std::atomic<std::uint64_t>[]>(want);
    for (std::size_t i = 0; i < want; ++i) cells[i].store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < block->size; ++i) {
      cells[i].store(block->cells[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
    block->cells = std::move(cells);
    block->size = want;
  }

  Snapshot snapshot() {
    const std::scoped_lock lock(mutex_);
    std::vector<std::uint64_t> totals(retired_);
    totals.resize(cellCount_, 0);
    for (const Block* b : live_) {
      for (std::size_t i = 0; i < b->size && i < totals.size(); ++i) {
        totals[i] += b->cells[i].load(std::memory_order_relaxed);
      }
    }
    Snapshot out;
    for (const Metric& m : metrics_) {
      const auto at = [&](int cell) {
        return totals[static_cast<std::size_t>(m.firstCell + cell)];
      };
      switch (m.kind) {
        case detail::Kind::kCounter:
        case detail::Kind::kTimerNs:
        case detail::Kind::kTimerCalls:
          out.counters.emplace_back(m.name, at(0));
          break;
        case detail::Kind::kHistogram: {
          Snapshot::Histogram h;
          h.name = m.name;
          h.buckets.resize(Histogram::kBuckets);
          for (int b = 0; b < Histogram::kBuckets; ++b) {
            h.buckets[static_cast<std::size_t>(b)] = at(b);
          }
          h.sum = at(Histogram::kBuckets);
          out.histograms.push_back(std::move(h));
          break;
        }
      }
    }
    for (const auto& g : gauges_) {
      out.gauges.emplace_back(g->name, g->value.load(std::memory_order_relaxed));
    }
    const auto byFirst = [](const auto& a, const auto& b) { return a.first < b.first; };
    std::sort(out.counters.begin(), out.counters.end(), byFirst);
    std::sort(out.gauges.begin(), out.gauges.end(), byFirst);
    std::sort(out.histograms.begin(), out.histograms.end(),
              [](const auto& a, const auto& b) { return a.name < b.name; });
    return out;
  }

  void resetAll() {
    const std::scoped_lock lock(mutex_);
    std::fill(retired_.begin(), retired_.end(), 0);
    for (Block* b : live_) {
      for (std::size_t i = 0; i < b->size; ++i) b->cells[i].store(0, std::memory_order_relaxed);
    }
    for (const auto& g : gauges_) g->value.store(0, std::memory_order_relaxed);
  }

 private:
  struct Metric {
    std::string name;
    int firstCell = 0;
    int cells = 1;
    detail::Kind kind = detail::Kind::kCounter;
  };
  struct NamedGauge {
    explicit NamedGauge(std::string n) : name(std::move(n)) {}
    std::string name;
    std::atomic<std::int64_t> value{0};
  };

  std::mutex mutex_;
  std::map<std::string, int> byName_;
  std::vector<Metric> metrics_;
  std::size_t cellCount_ = 0;
  std::vector<std::uint64_t> retired_;
  std::vector<Block*> live_;
  std::map<std::string, int> gaugeByName_;
  std::vector<std::unique_ptr<NamedGauge>> gauges_;
};

/// Per-thread cell block, attached on construction and folded into the
/// retired totals on thread exit. Constructing it touches the registry
/// singleton first, so the registry outlives every block (reverse
/// destruction order of completed constructions).
struct ThreadCells {
  ThreadCells() { Registry::instance().attach(&block); }
  ~ThreadCells() { Registry::instance().retire(&block); }
  Block block;
};

ThreadCells& threadCells() {
  thread_local ThreadCells cells;
  return cells;
}

/// Writes the final snapshot to $CBIP_OBS_EXPORT at process exit, so any
/// binary linking the library (the google-benchmark suites in
/// particular) can hand its counters to bench/run_benches.sh without
/// per-binary plumbing. Constructing the registry here first guarantees
/// it is still alive when this destructor runs.
struct AtExitExporter {
  AtExitExporter() { Registry::instance(); }
  ~AtExitExporter() {
    const char* path = std::getenv("CBIP_OBS_EXPORT");
    if (path == nullptr || path[0] == '\0') return;
    std::ofstream out(path);
    if (out) out << toJson(Registry::instance().snapshot()) << '\n';
  }
};
const AtExitExporter g_exporter;

}  // namespace

std::uint64_t nowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace detail {

constinit std::atomic<bool> g_enabled{true};

int registerMetric(const std::string& name, int cells, Kind kind) {
  return Registry::instance().registerMetric(name, cells, kind);
}

int registerGauge(const std::string& name) { return Registry::instance().registerGauge(name); }

void add(int id, std::uint64_t delta) {
  ThreadCells& tc = threadCells();
  if (static_cast<std::size_t>(id) >= tc.block.size) {
    Registry::instance().grow(&tc.block, id);
  }
  std::atomic<std::uint64_t>& cell = tc.block.cells[static_cast<std::size_t>(id)];
  // Owner-only writer: a relaxed load+store is a data-race-free increment
  // (snapshot readers see either value; monotonicity is preserved).
  cell.store(cell.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

void gaugeSet(int id, std::int64_t value) { Registry::instance().gaugeSet(id, value); }

}  // namespace detail

void Histogram::observe(std::int64_t value) const {
  if (!enabled()) return;
  const std::uint64_t v = value <= 0 ? 0 : static_cast<std::uint64_t>(value);
  const int width = v == 0 ? 0 : std::bit_width(v);
  const int bucket = width >= kBuckets ? kBuckets - 1 : width;
  detail::add(id_ + bucket, 1);
  detail::add(id_ + kBuckets, v);
}

Snapshot snapshot() { return Registry::instance().snapshot(); }

void resetAll() { Registry::instance().resetAll(); }

#endif  // !CBIP_NO_OBS

}  // namespace cbip::obs
