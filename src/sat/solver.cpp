#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cbip::sat {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kActivityLimit = 1e100;

// Telemetry (src/obs): per-solve deltas, flushed on every exit path.
const obs::Counter g_solves("sat.solves");
const obs::Counter g_conflicts("sat.conflicts");
const obs::Counter g_decisions("sat.decisions");
const obs::Counter g_propagations("sat.propagations");
const obs::Counter g_restarts("sat.restarts");

/// RAII flush of the counter deltas one solve() call accumulates; covers
/// every exit path, including throws.
class SolveScope {
 public:
  explicit SolveScope(const Solver& s)
      : s_(&s), c_(s.conflicts()), d_(s.decisions()), p_(s.propagations()),
        r_(s.restarts()) {}
  SolveScope(const SolveScope&) = delete;
  SolveScope& operator=(const SolveScope&) = delete;
  ~SolveScope() {
    g_solves.add();
    g_conflicts.add(s_->conflicts() - c_);
    g_decisions.add(s_->decisions() - d_);
    g_propagations.add(s_->propagations() - p_);
    g_restarts.add(s_->restarts() - r_);
  }

 private:
  const Solver* s_;
  std::uint64_t c_, d_, p_, r_;
};
}  // namespace

Solver::Solver() {
  assign_.push_back(-1);  // index 0 unused
  level_.push_back(0);
  reason_.push_back(kUndef);
  activity_.push_back(0.0);
  heapPos_.push_back(-1);
  seen_.push_back(0);
  watches_.resize(2);
}

int Solver::newVar() {
  assign_.push_back(-1);
  level_.push_back(0);
  reason_.push_back(kUndef);
  activity_.push_back(0.0);
  heapPos_.push_back(-1);
  seen_.push_back(0);
  watches_.resize(watches_.size() + 2);
  heapInsert(variableCount());
  return variableCount();
}

int Solver::litValue(Lit l) const {
  const int v = l > 0 ? l : -l;
  const int8_t a = assign_[static_cast<std::size_t>(v)];
  if (a == -1) return -1;
  return (l > 0) == (a == 1) ? 1 : 0;
}

bool Solver::addClause(std::vector<Lit> lits) {
  require(decisionLevel() == 0, "Solver::addClause: only at root level");
  if (rootUnsat_) return false;
  // Normalize: remove duplicates and false literals, detect tautologies.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return std::abs(a) != std::abs(b) ? std::abs(a) < std::abs(b) : a < b; });
  std::vector<Lit> out;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit l = lits[i];
    const int v = std::abs(l);
    require(v >= 1 && v <= variableCount(), "Solver::addClause: unknown variable");
    if (i + 1 < lits.size() && lits[i + 1] == -l) return true;  // tautology
    if (!out.empty() && out.back() == l) continue;              // duplicate
    if (litValue(l) == 1) return true;                          // already satisfied
    if (litValue(l) == 0) continue;                             // already false
    out.push_back(l);
  }
  if (out.empty()) {
    rootUnsat_ = true;
    return false;
  }
  if (out.size() == 1) {
    // Root-level propagation triggered by an incremental unit clause runs
    // *between* solve() calls, outside any SolveScope — flush its delta
    // here or the work (including the one discovering root-level UNSAT,
    // the early-UNSAT return below) never reaches the telemetry registry.
    const std::uint64_t before = propagations_;
    enqueue(out[0], kUndef);
    const bool conflict = propagate() != kUndef;
    g_propagations.add(propagations_ - before);
    if (conflict) {
      rootUnsat_ = true;
      return false;
    }
    return true;
  }
  clauses_.push_back(Clause{std::move(out), false});
  attachClause(static_cast<int>(clauses_.size()) - 1);
  return true;
}

bool Solver::attachClause(int ci) {
  Clause& c = clauses_[static_cast<std::size_t>(ci)];
  watches_[watchIndex(c.lits[0])].push_back(ci);
  watches_[watchIndex(c.lits[1])].push_back(ci);
  return true;
}

void Solver::enqueue(Lit l, int reasonClause) {
  const int v = std::abs(l);
  assign_[static_cast<std::size_t>(v)] = l > 0 ? 1 : 0;
  level_[static_cast<std::size_t>(v)] = decisionLevel();
  reason_[static_cast<std::size_t>(v)] = reasonClause;
  trail_.push_back(l);
}

int Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++propagations_;
    // Clauses watching ~p must be inspected.
    std::vector<int>& watchers = watches_[watchIndex(-p)];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < watchers.size(); ++wi) {
      const int ci = watchers[wi];
      Clause& c = clauses_[static_cast<std::size_t>(ci)];
      // Ensure the false literal is at position 1.
      if (c.lits[0] == -p) std::swap(c.lits[0], c.lits[1]);
      if (litValue(c.lits[0]) == 1) {
        watchers[keep++] = ci;  // clause satisfied, keep watch
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (litValue(c.lits[k]) != 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[watchIndex(c.lits[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch moved; drop from this list
      // Clause is unit or conflicting.
      watchers[keep++] = ci;
      if (litValue(c.lits[0]) == 0) {
        // Conflict: restore remaining watchers and report.
        for (std::size_t k = wi + 1; k < watchers.size(); ++k) watchers[keep++] = watchers[k];
        watchers.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
      enqueue(c.lits[0], ci);
    }
    watchers.resize(keep);
  }
  return kUndef;
}

void Solver::bumpVar(int var) {
  activity_[static_cast<std::size_t>(var)] += varInc_;
  if (activity_[static_cast<std::size_t>(var)] > kActivityLimit) {
    // Uniform rescale: strict order and ties are preserved, so the heap
    // stays valid.
    for (double& a : activity_) a *= 1e-100;
    varInc_ *= 1e-100;
  }
  if (heapPos_[static_cast<std::size_t>(var)] >= 0) {
    heapPercolateUp(static_cast<std::size_t>(heapPos_[static_cast<std::size_t>(var)]));
  }
}

bool Solver::heapLess(int a, int b) const {
  // "Higher priority than": greater activity, ties to the lower index
  // (the choice the linear scan this heap replaced used to make).
  const double aa = activity_[static_cast<std::size_t>(a)];
  const double ab = activity_[static_cast<std::size_t>(b)];
  return aa != ab ? aa > ab : a < b;
}

void Solver::heapInsert(int var) {
  if (heapPos_[static_cast<std::size_t>(var)] >= 0) return;
  heapPos_[static_cast<std::size_t>(var)] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  heapPercolateUp(heap_.size() - 1);
}

void Solver::heapPercolateUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heapLess(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    heapPos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
    heapPos_[static_cast<std::size_t>(heap_[parent])] = static_cast<int>(parent);
    i = parent;
  }
}

void Solver::heapPercolateDown(std::size_t i) {
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= heap_.size()) break;
    const std::size_t right = left + 1;
    std::size_t best = left;
    if (right < heap_.size() && heapLess(heap_[right], heap_[left])) best = right;
    if (!heapLess(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    heapPos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
    heapPos_[static_cast<std::size_t>(heap_[best])] = static_cast<int>(best);
    i = best;
  }
}

void Solver::decayActivities() { varInc_ /= kVarDecay; }

void Solver::analyze(int conflictClause, std::vector<Lit>& learnt, int& backtrackLevel) {
  learnt.clear();
  learnt.push_back(0);  // placeholder for the asserting literal
  int counter = 0;
  Lit p = 0;
  int ci = conflictClause;
  std::size_t trailIndex = trail_.size();

  while (true) {
    const Clause& c = clauses_[static_cast<std::size_t>(ci)];
    const std::size_t start = (p == 0) ? 0 : 1;
    for (std::size_t k = start; k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const int v = std::abs(q);
      if (seen_[static_cast<std::size_t>(v)] != 0 || level_[static_cast<std::size_t>(v)] == 0) {
        continue;
      }
      seen_[static_cast<std::size_t>(v)] = 1;
      bumpVar(v);
      if (level_[static_cast<std::size_t>(v)] == decisionLevel()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    while (true) {
      --trailIndex;
      p = trail_[trailIndex];
      if (seen_[static_cast<std::size_t>(std::abs(p))] != 0) break;
    }
    seen_[static_cast<std::size_t>(std::abs(p))] = 0;
    --counter;
    if (counter == 0) break;
    ci = reason_[static_cast<std::size_t>(std::abs(p))];
  }
  learnt[0] = -p;

  backtrackLevel = 0;
  if (learnt.size() > 1) {
    // Put a literal of the highest remaining level at position 1.
    std::size_t maxIdx = 1;
    for (std::size_t k = 2; k < learnt.size(); ++k) {
      if (level_[static_cast<std::size_t>(std::abs(learnt[k]))] >
          level_[static_cast<std::size_t>(std::abs(learnt[maxIdx]))]) {
        maxIdx = k;
      }
    }
    std::swap(learnt[1], learnt[maxIdx]);
    backtrackLevel = level_[static_cast<std::size_t>(std::abs(learnt[1]))];
  }
  for (const Lit l : learnt) seen_[static_cast<std::size_t>(std::abs(l))] = 0;
}

void Solver::backtrack(int targetLevel) {
  if (decisionLevel() <= targetLevel) return;
  const std::size_t bound = trailLim_[static_cast<std::size_t>(targetLevel)];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const int v = std::abs(trail_[i - 1]);
    assign_[static_cast<std::size_t>(v)] = -1;
    reason_[static_cast<std::size_t>(v)] = kUndef;
    heapInsert(v);
  }
  trail_.resize(bound);
  trailLim_.resize(static_cast<std::size_t>(targetLevel));
  qhead_ = trail_.size();
}

Lit Solver::pickBranchLit() {
  while (!heap_.empty()) {
    const int v = heap_[0];
    heapPos_[static_cast<std::size_t>(v)] = -1;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heapPos_[static_cast<std::size_t>(heap_[0])] = 0;
      heapPercolateDown(0);
    }
    if (assign_[static_cast<std::size_t>(v)] == -1) {
      return -v;  // negative polarity first (works well on our encodings)
    }
    // Assigned since insertion: discard lazily and keep popping.
  }
  return 0;
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  const SolveScope scope(*this);
  if (rootUnsat_) return Result::kUnsat;
  backtrack(0);
  if (propagate() != kUndef) {
    rootUnsat_ = true;
    return Result::kUnsat;
  }

  std::uint64_t conflictBudget = 256;
  std::uint64_t conflictsThisRestart = 0;

  while (true) {
    const int confl = propagate();
    if (confl != kUndef) {
      ++conflicts_;
      ++conflictsThisRestart;
      if (decisionLevel() <= static_cast<int>(assumptions.size())) {
        // Conflict under (or below) assumptions: check whether it is
        // independent of them by backtracking to root and re-testing.
        backtrack(0);
        if (propagate() != kUndef) rootUnsat_ = true;
        return Result::kUnsat;
      }
      std::vector<Lit> learnt;
      int backLevel = 0;
      analyze(confl, learnt, backLevel);
      backtrack(std::max(backLevel, static_cast<int>(assumptions.size())));
      if (learnt.size() == 1) {
        if (litValue(learnt[0]) == 0) {
          // Asserting literal contradicts the assumption prefix.
          backtrack(0);
          return Result::kUnsat;
        }
        if (litValue(learnt[0]) == -1) enqueue(learnt[0], kUndef);
      } else {
        clauses_.push_back(Clause{learnt, true});
        const int ci = static_cast<int>(clauses_.size()) - 1;
        attachClause(ci);
        if (litValue(learnt[0]) == -1) enqueue(learnt[0], ci);
      }
      decayActivities();
      continue;
    }

    if (conflictsThisRestart >= conflictBudget &&
        decisionLevel() > static_cast<int>(assumptions.size())) {
      conflictsThisRestart = 0;
      conflictBudget += conflictBudget / 2;
      ++restarts_;
      backtrack(static_cast<int>(assumptions.size()));
      continue;
    }

    // Apply pending assumptions as decisions.
    if (decisionLevel() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[static_cast<std::size_t>(decisionLevel())];
      require(std::abs(a) <= variableCount(), "solve: assumption on unknown variable");
      if (litValue(a) == 0) {
        // Conflicts with forced values. Backtrack like every other exit:
        // callers may addClause() right after an assumption-UNSAT.
        backtrack(0);
        return Result::kUnsat;
      }
      trailLim_.push_back(trail_.size());
      if (litValue(a) == -1) enqueue(a, kUndef);
      continue;
    }

    const Lit next = pickBranchLit();
    if (next == 0) {
      // Full assignment: record the model.
      model_ = assign_;
      backtrack(0);
      return Result::kSat;
    }
    ++decisions_;
    trailLim_.push_back(trail_.size());
    enqueue(next, kUndef);
  }
}

bool Solver::modelValue(int var) const {
  require(var >= 1 && static_cast<std::size_t>(var) < model_.size(),
          "modelValue: no model or unknown variable");
  return model_[static_cast<std::size_t>(var)] == 1;
}

}  // namespace cbip::sat
