// A small CDCL SAT solver.
//
// D-Finder's deadlock check reduces to the unsatisfiability of
// CI ∧ II ∧ DIS (component invariants, interaction invariants, deadlock
// states — monograph Section 5.6). The original tool delegates to
// Yices/BDD packages; this repository builds the substrate from scratch:
// a conflict-driven clause-learning solver with watched literals,
// first-UIP conflict analysis, VSIDS-style activity, geometric restarts
// and assumption-based incremental solving (used by the incremental
// verification of [4] and by trap enumeration).
//
// Literals use the DIMACS convention: nonzero ints, -v is the negation of
// variable v; variables are allocated with newVar() starting at 1.
#pragma once

#include <cstdint>
#include <vector>

namespace cbip::sat {

using Lit = int;

enum class Result { kSat, kUnsat };

class Solver {
 public:
  Solver();

  /// Allocates a fresh variable; returns its index (>= 1).
  int newVar();
  int variableCount() const { return static_cast<int>(assign_.size()) - 1; }
  /// Clauses currently attached (post-normalization; unit clauses are
  /// enqueued on the trail instead of stored). Per-worker telemetry for
  /// the parallel verification portfolio.
  std::size_t numClauses() const { return clauses_.size(); }
  /// Alias of variableCount() under the conventional SAT-API name.
  int numVars() const { return variableCount(); }

  /// Adds a clause (disjunction of literals). An empty clause makes the
  /// instance trivially unsatisfiable. Returns false if the solver is
  /// already in an unsatisfiable root state.
  bool addClause(std::vector<Lit> lits);

  /// Solves under the given assumptions (literals forced true for this
  /// call only). Clauses persist across calls (incremental use).
  Result solve(const std::vector<Lit>& assumptions = {});

  /// Model access after kSat: value of a variable in the found model.
  bool modelValue(int var) const;

  /// Statistics.
  std::uint64_t conflicts() const { return conflicts_; }
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t propagations() const { return propagations_; }
  std::uint64_t restarts() const { return restarts_; }

 private:
  static constexpr int kUndef = -1;

  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
  };

  static std::size_t watchIndex(Lit l) {
    const int v = l > 0 ? l : -l;
    return static_cast<std::size_t>(2 * v + (l < 0 ? 1 : 0));
  }

  // Current assignment of a literal: 1 true, 0 false, -1 unassigned.
  int litValue(Lit l) const;
  void enqueue(Lit l, int reasonClause);
  /// Unit propagation; returns conflicting clause index or kUndef.
  int propagate();
  void analyze(int conflictClause, std::vector<Lit>& learnt, int& backtrackLevel);
  void backtrack(int level);
  Lit pickBranchLit();
  void bumpVar(int var);
  void decayActivities();
  bool attachClause(int ci);

  // VSIDS order heap: candidate decision variables by activity, max
  // first, ties to the lower index — the same choice the historical
  // O(vars) linear scan made, at O(log vars) per operation. Assigned
  // variables are discarded lazily when popped; backtracking re-inserts
  // whatever it unassigns, so every unassigned variable is always in the
  // heap.
  bool heapLess(int a, int b) const;
  void heapInsert(int var);
  void heapPercolateUp(std::size_t i);
  void heapPercolateDown(std::size_t i);

  int decisionLevel() const { return static_cast<int>(trailLim_.size()); }

  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  // literal index -> clause indices
  std::vector<int8_t> assign_;             // var -> -1/0/1 (index 0 unused)
  std::vector<int> level_;                 // var -> decision level
  std::vector<int> reason_;                // var -> clause index or kUndef
  std::vector<double> activity_;           // var -> VSIDS activity
  std::vector<int> heap_;                  // order heap of candidate vars
  std::vector<int> heapPos_;               // var -> slot in heap_, or -1
  std::vector<int8_t> seen_;               // scratch for analyze()
  std::vector<Lit> trail_;
  std::vector<std::size_t> trailLim_;
  std::size_t qhead_ = 0;
  double varInc_ = 1.0;
  bool rootUnsat_ = false;
  std::vector<int8_t> model_;

  std::uint64_t conflicts_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t propagations_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace cbip::sat
