// Model zoo: the systems used across tests, examples and benchmarks.
//
// These are the monograph's own running examples and the standard
// D-Finder benchmark family ([4], Section 5.6):
//   * dining philosophers — atomic-grab variant (deadlock-free) and
//     two-step variant (the classic circular-wait deadlock);
//   * gas station (operator / pumps / customers);
//   * producer–consumer through a bounded-buffer component with real
//     data transfer on connectors;
//   * token ring mutual exclusion;
//   * the GCD "program as dynamic system" of Fig 6.1.
//
// Each factory takes a `counters` flag: when true the components carry
// unbounded bookkeeping counters (meals eaten, packets consumed, ...),
// which is the natural executable model; when false those counters are
// omitted so the global state space is finite and exhaustive exploration
// terminates. D-Finder itself handles the counter variants through its
// cone-of-influence abstraction — only the monolithic checker needs the
// finite builds.
#pragma once

#include "core/system.hpp"

namespace cbip::models {

/// Philosophers where eat/release grab and drop *both* forks atomically
/// (3-party rendezvous). Deadlock-free for every n >= 2.
System philosophersAtomic(int n, bool counters = true);

/// Philosophers taking the left fork then the right fork in separate
/// interactions. Has the classic all-hold-left deadlock.
System philosophersTwoStep(int n, bool counters = true);

/// Gas station: `pumps` pumps, `customers` customers, one operator.
/// Customers prepay with the operator, grab a free pump, pump, finish.
System gasStation(int pumps, int customers, bool counters = true);

/// Producer -> bounded buffer (capacity `capacity`) -> consumer; items
/// carry increasing sequence numbers through connector data transfer.
System producerConsumer(int capacity);

/// Finite-state producer/consumer: sequence numbers wrap modulo `modulo`
/// and the consumer keeps only the last received value.
System producerConsumerBounded(int capacity, int modulo);

/// Token-ring mutual exclusion over n stations: exactly one token;
/// station i can `enter` its critical section only while holding it.
System tokenRing(int n, bool counters = true);

/// The GCD program of Fig 6.1 as a single atomic component stepping with
/// internal transitions; exposes `done` when x == y.
/// Component variables: x, y.
System gcdSystem(Value x0, Value y0);

/// Skewed-load scaling family for the sharded engine: `pairs` disconnected
/// (worker, mate) pairs, each joined by a single binary rendezvous. The
/// mate guards the rendezvous with `budget != 0` and decrements the budget
/// on every step, so a pair stays runnable exactly as long as its budget
/// is nonzero. The first `hotPairs` pairs start with budget -1 (decrements
/// forever, never hits zero) and the rest with `coldBudget` (>= 0; 0 means
/// dead on arrival), so after coldBudget steps per cold pair all remaining
/// load concentrates on the hot pairs — which sit at the low instance ids
/// and therefore cluster in the low shards under the greedy partitioner.
/// This is the workload the online rebalancer and work stealing exist for;
/// bench_sharded scales it to 10^5..10^6 components.
/// Instance layout: worker_i = 2i, mate_i = 2i+1.
System skewedPairs(int pairs, int hotPairs, Value coldBudget = 0);

// --- helpers used by property tests ---

/// Number of philosophers holding (at least) their left fork.
int philosophersEating(const System& system, const GlobalState& state);

/// True iff at most one station of a tokenRing system is in its critical
/// section (the characteristic mutual-exclusion property).
bool tokenRingMutex(const System& system, const GlobalState& state);

}  // namespace cbip::models
