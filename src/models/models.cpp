#include "models/models.hpp"

#include "util/require.hpp"

namespace cbip::models {

namespace {

using expr::Assign;
using expr::VarRef;

AtomicTypePtr makeFork() {
  auto t = std::make_shared<AtomicType>("Fork");
  const int free = t->addLocation("free");
  const int taken = t->addLocation("taken");
  const int use = t->addPort("use");
  const int release = t->addPort("release");
  t->addTransition(free, use, taken);
  t->addTransition(taken, release, free);
  t->setInitialLocation(free);
  return t;
}

AtomicTypePtr makePhilosopherAtomic(bool counters) {
  auto t = std::make_shared<AtomicType>("Philosopher");
  const int thinking = t->addLocation("thinking");
  const int eating = t->addLocation("eating");
  const int eat = t->addPort("eat");
  const int done = t->addPort("done");
  std::vector<Assign> eatActions;
  if (counters) {
    const int meals = t->addVariable("meals", 0);
    eatActions.push_back(Assign{VarRef{0, meals}, Expr::local(meals) + Expr::lit(1)});
  }
  t->addTransition(thinking, eat, Expr::top(), std::move(eatActions), eating);
  t->addTransition(eating, done, thinking);
  t->setInitialLocation(thinking);
  return t;
}

AtomicTypePtr makePhilosopherTwoStep(bool counters) {
  auto t = std::make_shared<AtomicType>("Philosopher2");
  const int thinking = t->addLocation("thinking");
  const int hasLeft = t->addLocation("hasLeft");
  const int eating = t->addLocation("eating");
  const int takeL = t->addPort("takeL");
  const int takeR = t->addPort("takeR");
  const int done = t->addPort("done");
  std::vector<Assign> eatActions;
  if (counters) {
    const int meals = t->addVariable("meals", 0);
    eatActions.push_back(Assign{VarRef{0, meals}, Expr::local(meals) + Expr::lit(1)});
  }
  t->addTransition(thinking, takeL, hasLeft);
  t->addTransition(hasLeft, takeR, Expr::top(), std::move(eatActions), eating);
  t->addTransition(eating, done, thinking);
  t->setInitialLocation(thinking);
  return t;
}

}  // namespace

System philosophersAtomic(int n, bool counters) {
  require(n >= 2, "philosophersAtomic: need n >= 2");
  System sys;
  auto phil = makePhilosopherAtomic(counters);
  auto fork = makeFork();
  for (int i = 0; i < n; ++i) sys.addInstance("p" + std::to_string(i), phil);
  for (int i = 0; i < n; ++i) sys.addInstance("f" + std::to_string(i), fork);
  const int eat = phil->portIndex("eat");
  const int done = phil->portIndex("done");
  const int use = fork->portIndex("use");
  const int release = fork->portIndex("release");
  for (int i = 0; i < n; ++i) {
    const int left = n + i;
    const int right = n + (i + 1) % n;
    sys.addConnector(rendezvous("eat" + std::to_string(i),
                                {PortRef{i, eat}, PortRef{left, use}, PortRef{right, use}}));
    sys.addConnector(
        rendezvous("rel" + std::to_string(i),
                   {PortRef{i, done}, PortRef{left, release}, PortRef{right, release}}));
  }
  sys.validate();
  return sys;
}

System philosophersTwoStep(int n, bool counters) {
  require(n >= 2, "philosophersTwoStep: need n >= 2");
  System sys;
  auto phil = makePhilosopherTwoStep(counters);
  auto fork = makeFork();
  for (int i = 0; i < n; ++i) sys.addInstance("p" + std::to_string(i), phil);
  for (int i = 0; i < n; ++i) sys.addInstance("f" + std::to_string(i), fork);
  const int takeL = phil->portIndex("takeL");
  const int takeR = phil->portIndex("takeR");
  const int done = phil->portIndex("done");
  const int use = fork->portIndex("use");
  const int release = fork->portIndex("release");
  for (int i = 0; i < n; ++i) {
    const int left = n + i;
    const int right = n + (i + 1) % n;
    sys.addConnector(
        rendezvous("takeL" + std::to_string(i), {PortRef{i, takeL}, PortRef{left, use}}));
    sys.addConnector(
        rendezvous("takeR" + std::to_string(i), {PortRef{i, takeR}, PortRef{right, use}}));
    sys.addConnector(
        rendezvous("rel" + std::to_string(i),
                   {PortRef{i, done}, PortRef{left, release}, PortRef{right, release}}));
  }
  sys.validate();
  return sys;
}

System gasStation(int pumps, int customers, bool counters) {
  require(pumps >= 1 && customers >= 1, "gasStation: need pumps >= 1 and customers >= 1");
  System sys;

  auto op = std::make_shared<AtomicType>("Operator");
  {
    const int idle = op->addLocation("idle");
    const int prepay = op->addPort("prepay");
    op->addTransition(idle, prepay, idle);
    op->setInitialLocation(idle);
  }
  auto cust = std::make_shared<AtomicType>("Customer");
  {
    const int idle = cust->addLocation("idle");
    const int paid = cust->addLocation("paid");
    const int pumping = cust->addLocation("pumping");
    const int myPump = cust->addVariable("pump", -1);
    const int pay = cust->addPort("pay");
    const int start = cust->addPort("start", {myPump});
    const int finish = cust->addPort("finish", {myPump});
    std::vector<Assign> finishActions;
    if (counters) {
      const int served = cust->addVariable("served", 0);
      finishActions.push_back(
          Assign{VarRef{0, served}, Expr::local(served) + Expr::lit(1)});
    }
    cust->addTransition(idle, pay, paid);
    cust->addTransition(paid, start, pumping);
    cust->addTransition(pumping, finish, Expr::top(), std::move(finishActions), idle);
    cust->setInitialLocation(idle);
  }

  const int opIdx = sys.addInstance("op", op);
  std::vector<int> pumpIdx;
  for (int p = 0; p < pumps; ++p) {
    // Each pump instance carries its identity in `id`, so each gets its
    // own type with a distinct initial value.
    auto t = std::make_shared<AtomicType>("Pump" + std::to_string(p));
    const int free = t->addLocation("free");
    const int inuse = t->addLocation("inuse");
    const int id = t->addVariable("id", p);
    const int start = t->addPort("start", {id});
    const int finish = t->addPort("finish", {id});
    t->addTransition(free, start, inuse);
    t->addTransition(inuse, finish, free);
    t->setInitialLocation(free);
    pumpIdx.push_back(sys.addInstance("pump" + std::to_string(p), t));
  }
  std::vector<int> custIdx;
  for (int c = 0; c < customers; ++c) {
    custIdx.push_back(sys.addInstance("c" + std::to_string(c), cust));
  }

  const int cPay = cust->portIndex("pay");
  const int cStart = cust->portIndex("start");
  const int cFinish = cust->portIndex("finish");
  for (int c = 0; c < customers; ++c) {
    sys.addConnector(rendezvous("pay" + std::to_string(c),
                                {PortRef{opIdx, 0}, PortRef{custIdx[c], cPay}}));
    for (int p = 0; p < pumps; ++p) {
      // start: the customer records which pump it grabbed.
      Connector startC("start_c" + std::to_string(c) + "_p" + std::to_string(p));
      const int eCust = startC.addSynchron(PortRef{custIdx[c], cStart});
      const int ePump = startC.addSynchron(
          PortRef{pumpIdx[p], sys.instance(static_cast<std::size_t>(pumpIdx[p]))
                                   .type->portIndex("start")});
      startC.addDown(eCust, 0, Expr::var(ePump, 0));  // c.pump := p.id
      sys.addConnector(std::move(startC));
      // finish: only at the recorded pump.
      Connector finC("finish_c" + std::to_string(c) + "_p" + std::to_string(p));
      const int eCust2 = finC.addSynchron(PortRef{custIdx[c], cFinish});
      const int ePump2 = finC.addSynchron(
          PortRef{pumpIdx[p], sys.instance(static_cast<std::size_t>(pumpIdx[p]))
                                   .type->portIndex("finish")});
      finC.setGuard(Expr::var(eCust2, 0) == Expr::var(ePump2, 0));
      sys.addConnector(std::move(finC));
    }
  }
  sys.validate();
  return sys;
}

System producerConsumer(int capacity) {
  require(capacity >= 1, "producerConsumer: capacity must be >= 1");
  System sys;

  auto producer = std::make_shared<AtomicType>("Producer");
  {
    const int run = producer->addLocation("run");
    const int next = producer->addVariable("next", 0);
    const int put = producer->addPort("put", {next});
    producer->addTransition(run, put, Expr::top(),
                            {Assign{VarRef{0, next}, Expr::local(next) + Expr::lit(1)}}, run);
    producer->setInitialLocation(run);
  }

  auto buffer = std::make_shared<AtomicType>("Buffer");
  {
    const int b = buffer->addLocation("b");
    const int in = buffer->addVariable("in", 0);
    const int out = buffer->addVariable("out", 0);
    const int count = buffer->addVariable("count", 0);
    std::vector<int> slots;
    for (int i = 0; i < capacity; ++i) {
      slots.push_back(buffer->addVariable("slot" + std::to_string(i), 0));
    }
    const int put = buffer->addPort("put", {in});
    const int get = buffer->addPort("get", {out});
    // put: store `in` at position `count`; keep `out` = head.
    std::vector<Assign> putActions;
    for (int i = 0; i < capacity; ++i) {
      putActions.push_back(Assign{
          VarRef{0, slots[static_cast<std::size_t>(i)]},
          Expr::ite(Expr::local(count) == Expr::lit(i), Expr::local(in),
                    Expr::local(slots[static_cast<std::size_t>(i)]))});
    }
    putActions.push_back(Assign{
        VarRef{0, out},
        Expr::ite(Expr::local(count) == Expr::lit(0), Expr::local(in), Expr::local(out))});
    putActions.push_back(Assign{VarRef{0, count}, Expr::local(count) + Expr::lit(1)});
    buffer->addTransition(b, put, Expr::local(count) < Expr::lit(capacity),
                          std::move(putActions), b);
    // get: shift left; maintain out = new head.
    std::vector<Assign> getActions;
    for (int i = 0; i + 1 < capacity; ++i) {
      getActions.push_back(Assign{VarRef{0, slots[static_cast<std::size_t>(i)]},
                                  Expr::local(slots[static_cast<std::size_t>(i + 1)])});
    }
    getActions.push_back(Assign{VarRef{0, count}, Expr::local(count) - Expr::lit(1)});
    getActions.push_back(Assign{VarRef{0, out}, Expr::local(slots[0])});
    buffer->addTransition(b, get, Expr::local(count) > Expr::lit(0), std::move(getActions), b);
    buffer->setInitialLocation(b);
  }

  auto consumer = std::make_shared<AtomicType>("Consumer");
  {
    const int run = consumer->addLocation("run");
    const int got = consumer->addVariable("got", 0);
    const int sum = consumer->addVariable("sum", 0);
    const int items = consumer->addVariable("items", 0);
    const int take = consumer->addPort("take", {got});
    consumer->addTransition(
        run, take, Expr::top(),
        {Assign{VarRef{0, sum}, Expr::local(sum) + Expr::local(got)},
         Assign{VarRef{0, items}, Expr::local(items) + Expr::lit(1)}},
        run);
    consumer->setInitialLocation(run);
  }

  const int prod = sys.addInstance("producer", producer);
  const int buf = sys.addInstance("buffer", buffer);
  const int cons = sys.addInstance("consumer", consumer);

  Connector putC("put");
  const int eProd = putC.addSynchron(PortRef{prod, producer->portIndex("put")});
  const int eBufIn = putC.addSynchron(PortRef{buf, buffer->portIndex("put")});
  putC.addDown(eBufIn, 0, Expr::var(eProd, 0));  // buffer.in := producer.next
  sys.addConnector(std::move(putC));

  Connector getC("get");
  const int eBufOut = getC.addSynchron(PortRef{buf, buffer->portIndex("get")});
  const int eCons = getC.addSynchron(PortRef{cons, consumer->portIndex("take")});
  getC.addDown(eCons, 0, Expr::var(eBufOut, 0));  // consumer.got := buffer.out
  sys.addConnector(std::move(getC));

  sys.validate();
  return sys;
}

System producerConsumerBounded(int capacity, int modulo) {
  require(capacity >= 1, "producerConsumerBounded: capacity must be >= 1");
  require(modulo >= 1, "producerConsumerBounded: modulo must be >= 1");
  System sys;

  auto producer = std::make_shared<AtomicType>("Producer");
  {
    const int run = producer->addLocation("run");
    const int next = producer->addVariable("next", 0);
    const int put = producer->addPort("put", {next});
    producer->addTransition(
        run, put, Expr::top(),
        {Assign{VarRef{0, next}, (Expr::local(next) + Expr::lit(1)) % Expr::lit(modulo)}},
        run);
    producer->setInitialLocation(run);
  }

  auto buffer = std::make_shared<AtomicType>("Buffer");
  {
    const int b = buffer->addLocation("b");
    const int in = buffer->addVariable("in", 0);
    const int out = buffer->addVariable("out", 0);
    const int count = buffer->addVariable("count", 0);
    std::vector<int> slots;
    for (int i = 0; i < capacity; ++i) {
      slots.push_back(buffer->addVariable("slot" + std::to_string(i), 0));
    }
    const int put = buffer->addPort("put", {in});
    const int get = buffer->addPort("get", {out});
    std::vector<Assign> putActions;
    for (int i = 0; i < capacity; ++i) {
      putActions.push_back(Assign{
          VarRef{0, slots[static_cast<std::size_t>(i)]},
          Expr::ite(Expr::local(count) == Expr::lit(i), Expr::local(in),
                    Expr::local(slots[static_cast<std::size_t>(i)]))});
    }
    putActions.push_back(Assign{
        VarRef{0, out},
        Expr::ite(Expr::local(count) == Expr::lit(0), Expr::local(in), Expr::local(out))});
    putActions.push_back(Assign{VarRef{0, count}, Expr::local(count) + Expr::lit(1)});
    buffer->addTransition(b, put, Expr::local(count) < Expr::lit(capacity),
                          std::move(putActions), b);
    std::vector<Assign> getActions;
    for (int i = 0; i + 1 < capacity; ++i) {
      getActions.push_back(Assign{VarRef{0, slots[static_cast<std::size_t>(i)]},
                                  Expr::local(slots[static_cast<std::size_t>(i + 1)])});
    }
    if (capacity > 1) {
      getActions.push_back(
          Assign{VarRef{0, slots[static_cast<std::size_t>(capacity - 1)]}, Expr::lit(0)});
    }
    getActions.push_back(Assign{VarRef{0, count}, Expr::local(count) - Expr::lit(1)});
    getActions.push_back(Assign{VarRef{0, out}, Expr::local(slots[0])});
    buffer->addTransition(b, get, Expr::local(count) > Expr::lit(0), std::move(getActions), b);
    buffer->setInitialLocation(b);
  }

  auto consumer = std::make_shared<AtomicType>("Consumer");
  {
    const int run = consumer->addLocation("run");
    const int got = consumer->addVariable("got", 0);
    const int take = consumer->addPort("take", {got});
    consumer->addTransition(run, take, run);
    consumer->setInitialLocation(run);
  }

  const int prod = sys.addInstance("producer", producer);
  const int buf = sys.addInstance("buffer", buffer);
  const int cons = sys.addInstance("consumer", consumer);

  Connector putC("put");
  const int eProd = putC.addSynchron(PortRef{prod, producer->portIndex("put")});
  const int eBufIn = putC.addSynchron(PortRef{buf, buffer->portIndex("put")});
  putC.addDown(eBufIn, 0, Expr::var(eProd, 0));
  sys.addConnector(std::move(putC));

  Connector getC("get");
  const int eBufOut = getC.addSynchron(PortRef{buf, buffer->portIndex("get")});
  const int eCons = getC.addSynchron(PortRef{cons, consumer->portIndex("take")});
  getC.addDown(eCons, 0, Expr::var(eBufOut, 0));
  sys.addConnector(std::move(getC));

  sys.validate();
  return sys;
}

namespace {

AtomicTypePtr makeStation(bool withToken, bool counters) {
  auto t = std::make_shared<AtomicType>(withToken ? "StationT" : "Station");
  const int noTok = t->addLocation("idleNoToken");
  const int tok = t->addLocation("idleToken");
  const int crit = t->addLocation("crit");
  const int enter = t->addPort("enter");
  const int exit = t->addPort("exit");
  const int recv = t->addPort("recv");
  const int send = t->addPort("send");
  std::vector<Assign> enterActions;
  if (counters) {
    const int entries = t->addVariable("entries", 0);
    enterActions.push_back(
        Assign{VarRef{0, entries}, Expr::local(entries) + Expr::lit(1)});
  }
  t->addTransition(tok, enter, Expr::top(), std::move(enterActions), crit);
  t->addTransition(crit, exit, tok);
  t->addTransition(tok, send, noTok);
  t->addTransition(noTok, recv, tok);
  t->setInitialLocation(withToken ? tok : noTok);
  return t;
}

}  // namespace

System tokenRing(int n, bool counters) {
  require(n >= 2, "tokenRing: need n >= 2");
  System sys;
  auto first = makeStation(true, counters);
  auto rest = makeStation(false, counters);
  for (int i = 0; i < n; ++i) {
    sys.addInstance("s" + std::to_string(i), i == 0 ? first : rest);
  }
  const int enter = rest->portIndex("enter");
  const int exit = rest->portIndex("exit");
  const int recv = rest->portIndex("recv");
  const int send = rest->portIndex("send");
  for (int i = 0; i < n; ++i) {
    sys.addConnector(rendezvous("pass" + std::to_string(i),
                                {PortRef{i, send}, PortRef{(i + 1) % n, recv}}));
    sys.addConnector(rendezvous("enter" + std::to_string(i), {PortRef{i, enter}}));
    sys.addConnector(rendezvous("exit" + std::to_string(i), {PortRef{i, exit}}));
  }
  sys.validate();
  return sys;
}

System gcdSystem(Value x0, Value y0) {
  require(x0 > 0 && y0 > 0, "gcdSystem: inputs must be positive");
  System sys;
  auto t = std::make_shared<AtomicType>("Gcd");
  const int run = t->addLocation("run");
  const int x = t->addVariable("x", x0);
  const int y = t->addVariable("y", y0);
  const int done = t->addPort("done", {x});
  // Internal steps: the Euclid iteration.
  t->addTransition(run, kInternalPort, Expr::local(x) > Expr::local(y),
                   {Assign{VarRef{0, x}, Expr::local(x) - Expr::local(y)}}, run);
  t->addTransition(run, kInternalPort, Expr::local(y) > Expr::local(x),
                   {Assign{VarRef{0, y}, Expr::local(y) - Expr::local(x)}}, run);
  // Observable completion once x == y.
  t->addTransition(run, done, Expr::local(x) == Expr::local(y), {}, run);
  t->setInitialLocation(run);
  const int inst = sys.addInstance("gcd", t);
  sys.addConnector(rendezvous("done", {PortRef{inst, t->portIndex("done")}}));
  sys.validate();
  return sys;
}

System skewedPairs(int pairs, int hotPairs, Value coldBudget) {
  require(pairs >= 1, "skewedPairs: need pairs >= 1");
  require(hotPairs >= 0 && hotPairs <= pairs, "skewedPairs: need 0 <= hotPairs <= pairs");
  require(coldBudget >= 0, "skewedPairs: coldBudget must be >= 0");
  System sys;

  auto worker = std::make_shared<AtomicType>("PairWorker");
  {
    const int idle = worker->addLocation("idle");
    const int tick = worker->addPort("tick");
    worker->addTransition(idle, tick, idle);
    worker->setInitialLocation(idle);
  }

  // One mate type per budget class so every instance shares the two
  // compiled transition programs: the budget is a per-instance variable,
  // the guard/action programs are per-type.
  const auto makeMate = [](const char* name, Value budget0) {
    auto t = std::make_shared<AtomicType>(name);
    const int idle = t->addLocation("idle");
    const int budget = t->addVariable("budget", budget0);
    const int tick = t->addPort("tick");
    t->addTransition(idle, tick, Expr::local(budget) != Expr::lit(0),
                     {Assign{VarRef{0, budget}, Expr::local(budget) - Expr::lit(1)}}, idle);
    t->setInitialLocation(idle);
    return t;
  };
  auto hotMate = makeMate("HotMate", -1);  // never reaches zero
  auto coldMate = makeMate("ColdMate", coldBudget);

  for (int i = 0; i < pairs; ++i) {
    const AtomicTypePtr& mate = i < hotPairs ? hotMate : coldMate;
    const int w = sys.addInstance("w" + std::to_string(i), worker);
    const int m = sys.addInstance("m" + std::to_string(i), mate);
    sys.addConnector(rendezvous("sync" + std::to_string(i),
                                {PortRef{w, worker->portIndex("tick")},
                                 PortRef{m, mate->portIndex("tick")}}));
  }
  sys.validate();
  return sys;
}

int philosophersEating(const System& system, const GlobalState& state) {
  int count = 0;
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const System::Instance& inst = system.instance(i);
    if (!inst.name.empty() && inst.name[0] == 'p' &&
        state.components[i].location != 0) {
      ++count;
    }
  }
  return count;
}

bool tokenRingMutex(const System& system, const GlobalState& state) {
  int inCrit = 0;
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const System::Instance& inst = system.instance(i);
    const auto crit = inst.type->findLocation("crit");
    if (crit.has_value() && state.components[i].location == *crit) ++inCrit;
  }
  return inCrit <= 1;
}

}  // namespace cbip::models
