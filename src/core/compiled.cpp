#include "core/compiled.hpp"

#include "core/system.hpp"
#include "util/require.hpp"

namespace cbip {

CompiledConnector::CompiledConnector(const System& system, const Connector& connector) {
  build(system, connector, nullptr);
}

CompiledConnector::CompiledConnector(const System& system, const Connector& connector,
                                     const std::function<FramePlacement(int instance)>& place) {
  build(system, connector, &place);
}

void CompiledConnector::build(const System& system, const Connector& connector,
                              const std::function<FramePlacement(int instance)>* place) {
  // Scratch-frame layout: each end's exports contiguously, then connector
  // vars. Identical in both build modes; only the load/write-back targets
  // differ (GlobalState (instance, var) vs shard-frame (frame, offset)).
  std::vector<int> endBase(connector.endCount(), 0);
  int next = 0;
  for (std::size_t e = 0; e < connector.endCount(); ++e) {
    endBase[e] = next;
    const ConnectorEnd& end = connector.end(e);
    const AtomicType& type = *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    const PortDecl& port = type.port(end.port.port);
    for (std::size_t k = 0; k < port.exports.size(); ++k) {
      Load l{next, end.port.instance, port.exports[k], -1, 0};
      if (place != nullptr) {
        const FramePlacement p = (*place)(end.port.instance);
        l.frame = p.frame;
        l.offset = p.base + port.exports[k];
      }
      loads_.push_back(l);
      ++next;
    }
  }
  const int connectorVarBase = next;
  frameSize_ = next + static_cast<std::int32_t>(connector.variableCount());

  const expr::SlotMap slots = [&](expr::VarRef r) {
    if (r.scope == expr::kConnectorScope) {
      require(r.index >= 0 && static_cast<std::size_t>(r.index) < connector.variableCount(),
              "connector '" + connector.name() + "': connector variable out of range");
      return connectorVarBase + r.index;
    }
    require(r.scope >= 0 && static_cast<std::size_t>(r.scope) < connector.endCount(),
            "connector '" + connector.name() + "': end scope out of range");
    const ConnectorEnd& end = connector.end(static_cast<std::size_t>(r.scope));
    const AtomicType& type = *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    const PortDecl& port = type.port(end.port.port);
    require(r.index >= 0 && static_cast<std::size_t>(r.index) < port.exports.size(),
            "connector '" + connector.name() + "': export index out of range");
    return endBase[static_cast<std::size_t>(r.scope)] + r.index;
  };

  if (!connector.guard().isTrue()) guard_ = expr::compile(connector.guard(), slots);
  ups_.reserve(connector.ups().size());
  for (const expr::Assign& up : connector.ups()) {
    require(up.target.scope == expr::kConnectorScope,
            "connector '" + connector.name() + "': up target is not a connector variable");
    ups_.push_back(Up{slots(up.target), expr::compile(up.value, slots)});
  }
  downs_.reserve(connector.downs().size());
  for (const DownAssign& d : connector.downs()) {
    const int slot = slots(expr::VarRef{d.end, d.exportIndex});
    const ConnectorEnd& end = connector.end(static_cast<std::size_t>(d.end));
    const AtomicType& type = *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    const int var = type.port(end.port.port).exports[static_cast<std::size_t>(d.exportIndex)];
    Down down{d.end, slot, end.port.instance, var, -1, 0, expr::compile(d.value, slots)};
    if (place != nullptr) {
      const FramePlacement p = (*place)(end.port.instance);
      down.frame = p.frame;
      down.offset = p.base + var;
    }
    downs_.push_back(std::move(down));
  }
}

void CompiledConnector::gather(const GlobalState& state, std::span<Value> frame) const {
  for (const Load& l : loads_) {
    frame[static_cast<std::size_t>(l.slot)] =
        state.components[static_cast<std::size_t>(l.instance)]
            .vars[static_cast<std::size_t>(l.var)];
  }
  for (std::size_t s = loads_.size(); s < frame.size(); ++s) frame[s] = 0;
}

void CompiledConnector::transfer(GlobalState& state, std::span<Value> frame,
                                 InteractionMask mask) const {
  for (const Up& u : ups_) {
    frame[static_cast<std::size_t>(u.targetSlot)] = u.value.run(frame);
  }
  for (const Down& d : downs_) {
    if ((mask & (InteractionMask{1} << static_cast<unsigned>(d.end))) == 0) continue;
    const Value v = d.value.run(frame);
    frame[static_cast<std::size_t>(d.targetSlot)] = v;
    state.components[static_cast<std::size_t>(d.instance)].vars[static_cast<std::size_t>(d.var)] =
        v;
  }
}

void CompiledConnector::gather(std::span<const std::span<const Value>> frames,
                               std::span<Value> scratch) const {
  for (const Load& l : loads_) {
    scratch[static_cast<std::size_t>(l.slot)] =
        frames[static_cast<std::size_t>(l.frame)][static_cast<std::size_t>(l.offset)];
  }
  for (std::size_t s = loads_.size(); s < scratch.size(); ++s) scratch[s] = 0;
}

void CompiledConnector::transfer(std::span<const std::span<Value>> frames,
                                 std::span<Value> scratch, InteractionMask mask) const {
  for (const Up& u : ups_) {
    scratch[static_cast<std::size_t>(u.targetSlot)] = u.value.run(scratch);
  }
  for (const Down& d : downs_) {
    if ((mask & (InteractionMask{1} << static_cast<unsigned>(d.end))) == 0) continue;
    const Value v = d.value.run(scratch);
    scratch[static_cast<std::size_t>(d.targetSlot)] = v;
    frames[static_cast<std::size_t>(d.frame)][static_cast<std::size_t>(d.offset)] = v;
  }
}

CompiledSystem::CompiledSystem(const System& system) {
  connectors_.reserve(system.connectorCount());
  for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
    connectors_.emplace_back(system, system.connector(ci));
  }
}

}  // namespace cbip
