#include "core/compiled.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "analyze/analyze.hpp"
#include "core/system.hpp"
#include "util/require.hpp"

namespace cbip {

namespace {

std::atomic<bool>& batchScanFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("CBIP_NO_BATCH_SCAN");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

}  // namespace

bool batchScanEnabled() { return batchScanFlag().load(std::memory_order_relaxed); }

void setBatchScanEnabled(bool on) { batchScanFlag().store(on, std::memory_order_relaxed); }

CompiledConnector::CompiledConnector(const System& system, const Connector& connector) {
  build(system, connector, nullptr);
}

CompiledConnector::CompiledConnector(const System& system, const Connector& connector,
                                     const std::function<FramePlacement(int instance)>& place) {
  build(system, connector, &place);
}

void CompiledConnector::build(const System& system, const Connector& connector,
                              const std::function<FramePlacement(int instance)>* place) {
  // Scratch-frame layout: each end's exports contiguously, then connector
  // vars. Identical in both build modes; only the load/write-back targets
  // differ (GlobalState (instance, var) vs shard-frame (frame, offset)).
  std::vector<int> endBase(connector.endCount(), 0);
  int next = 0;
  for (std::size_t e = 0; e < connector.endCount(); ++e) {
    endBase[e] = next;
    const ConnectorEnd& end = connector.end(e);
    const AtomicType& type = *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    const PortDecl& port = type.port(end.port.port);
    for (std::size_t k = 0; k < port.exports.size(); ++k) {
      Load l{next, end.port.instance, port.exports[k], -1, 0};
      if (place != nullptr) {
        const FramePlacement p = (*place)(end.port.instance);
        l.frame = p.frame;
        l.offset = p.base + port.exports[k];
      }
      loads_.push_back(l);
      ++next;
    }
  }
  const int connectorVarBase = next;
  frameSize_ = next + static_cast<std::int32_t>(connector.variableCount());

  const expr::SlotMap slots = [&](expr::VarRef r) {
    if (r.scope == expr::kConnectorScope) {
      require(r.index >= 0 && static_cast<std::size_t>(r.index) < connector.variableCount(),
              "connector '" + connector.name() + "': connector variable out of range");
      return connectorVarBase + r.index;
    }
    require(r.scope >= 0 && static_cast<std::size_t>(r.scope) < connector.endCount(),
            "connector '" + connector.name() + "': end scope out of range");
    const ConnectorEnd& end = connector.end(static_cast<std::size_t>(r.scope));
    const AtomicType& type = *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    const PortDecl& port = type.port(end.port.port);
    require(r.index >= 0 && static_cast<std::size_t>(r.index) < port.exports.size(),
            "connector '" + connector.name() + "': export index out of range");
    return endBase[static_cast<std::size_t>(r.scope)] + r.index;
  };

  if (!connector.guard().isTrue()) guard_ = expr::compile(connector.guard(), slots);
  ups_.reserve(connector.ups().size());
  for (const expr::Assign& up : connector.ups()) {
    require(up.target.scope == expr::kConnectorScope,
            "connector '" + connector.name() + "': up target is not a connector variable");
    ups_.push_back(Up{slots(up.target), expr::compile(up.value, slots)});
  }
  // The up block always executes as a whole, so it fuses into one program
  // (downs do not: their execution set depends on the interaction mask).
  if (!connector.ups().empty()) {
    upBlock_ = expr::compileFused(Expr::top(), connector.ups(), slots);
  }
  downs_.reserve(connector.downs().size());
  for (const DownAssign& d : connector.downs()) {
    const int slot = slots(expr::VarRef{d.end, d.exportIndex});
    const ConnectorEnd& end = connector.end(static_cast<std::size_t>(d.end));
    const AtomicType& type = *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    const int var = type.port(end.port.port).exports[static_cast<std::size_t>(d.exportIndex)];
    Down down{d.end, slot, end.port.instance, var, -1, 0, expr::compile(d.value, slots)};
    if (place != nullptr) {
      const FramePlacement p = (*place)(end.port.instance);
      down.frame = p.frame;
      down.offset = p.base + var;
    }
    downs_.push_back(std::move(down));
  }

  // Analysis-guided pruning (src/analyze), the connector-side mirror of
  // the transition pass in AtomicType::compileIfNeeded. The entry frame
  // at guard time: end-export slots hold component variables, which host
  // code and the distributed runtime may have set to anything — top;
  // connector-variable slots were just zeroed by gather — exactly [0, 0].
  if (expr::analysisEnabled()) {
    std::vector<analyze::Interval> env(static_cast<std::size_t>(frameSize_),
                                       analyze::Interval::top());
    for (std::size_t s = loads_.size(); s < env.size(); ++s) {
      env[s] = analyze::Interval::singleton(0);
    }
    if (!guard_.empty()) {
      const analyze::ProgramFacts g = analyze::analyzeProgram(guard_, env);
      if (!g.mayRaise && g.value == analyze::Interval::singleton(0)) {
        // Dead connector: the guard collapses to the constant-0 program
        // (never empty — empty means trivially true to guardTrue()).
        guard_ = expr::ExprProgram::constant(0);
      } else if (!g.mayRaise && !g.value.isBottom() && !g.value.contains(0)) {
        guard_ = expr::ExprProgram();
      } else {
        analyze::relaxSafeDivChecks(guard_, env);
      }
    }
    analyze::relaxSafeDivChecks(upBlock_, env);
    // The unfused up programs run sequentially over the live frame, so
    // each sees the abstract results of the earlier ones; the resulting
    // environment is what the down transfers evaluate under.
    for (Up& u : ups_) {
      analyze::relaxSafeDivChecks(u.value, env);
      const analyze::ProgramFacts f = analyze::analyzeProgram(u.value, env);
      env[static_cast<std::size_t>(u.targetSlot)] =
          f.value.isBottom() ? analyze::Interval::top() : f.value;
    }
    for (Down& d : downs_) analyze::relaxSafeDivChecks(d.value, env);
  }

  // Scan form (classic build only — the sharded build serves cross-shard
  // connectors, whose scans go through ShardedSystem's cached masks and
  // the classic gather/evalGuard instead): cached feasible masks, one
  // full variable block per end in the scan frame (read-only, so ends
  // sharing an instance simply repeat the block), connector-variable
  // slots at the tail, and the guard recompiled against that layout.
  if (place != nullptr) return;
  masks_ = connector.feasibleMasks();
  scanEnds_.reserve(connector.endCount());
  std::int32_t scanNext = 0;
  for (std::size_t e = 0; e < connector.endCount(); ++e) {
    const ConnectorEnd& end = connector.end(e);
    const AtomicType& type = *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    scanEnds_.push_back(ScanEnd{end.port.instance, end.port.port, scanNext,
                                static_cast<int>(type.variableCount())});
    scanNext += static_cast<std::int32_t>(type.variableCount());
  }
  scanVarBase_ = scanNext;
  scanFrameSize_ = scanNext + static_cast<std::int32_t>(connector.variableCount());
  const expr::SlotMap scanSlots = [&](expr::VarRef r) {
    if (r.scope == expr::kConnectorScope) {
      require(r.index >= 0 && static_cast<std::size_t>(r.index) < connector.variableCount(),
              "connector '" + connector.name() + "': connector variable out of range");
      return scanVarBase_ + r.index;
    }
    require(r.scope >= 0 && static_cast<std::size_t>(r.scope) < connector.endCount(),
            "connector '" + connector.name() + "': end scope out of range");
    const ConnectorEnd& end = connector.end(static_cast<std::size_t>(r.scope));
    const AtomicType& type = *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    const PortDecl& port = type.port(end.port.port);
    require(r.index >= 0 && static_cast<std::size_t>(r.index) < port.exports.size(),
            "connector '" + connector.name() + "': export index out of range");
    return scanEnds_[static_cast<std::size_t>(r.scope)].base +
           port.exports[static_cast<std::size_t>(r.index)];
  };
  if (!connector.guard().isTrue()) scanGuard_ = expr::compile(connector.guard(), scanSlots);
  // Same pruning for the scan-layout guard: full variable blocks are
  // top, connector-variable slots (zeroed by gatherScan) are [0, 0].
  if (expr::analysisEnabled() && !scanGuard_.empty()) {
    std::vector<analyze::Interval> senv(static_cast<std::size_t>(scanFrameSize_),
                                        analyze::Interval::top());
    for (std::int32_t s = scanVarBase_; s < scanFrameSize_; ++s) {
      senv[static_cast<std::size_t>(s)] = analyze::Interval::singleton(0);
    }
    const analyze::ProgramFacts g = analyze::analyzeProgram(scanGuard_, senv);
    if (!g.mayRaise && g.value == analyze::Interval::singleton(0)) {
      scanGuard_ = expr::ExprProgram::constant(0);
    } else if (!g.mayRaise && !g.value.isBottom() && !g.value.contains(0)) {
      scanGuard_ = expr::ExprProgram();
    } else {
      analyze::relaxSafeDivChecks(scanGuard_, senv);
    }
  }
}

void CompiledConnector::gather(const GlobalState& state, std::span<Value> frame) const {
  for (const Load& l : loads_) {
    frame[static_cast<std::size_t>(l.slot)] =
        state.components[static_cast<std::size_t>(l.instance)]
            .vars[static_cast<std::size_t>(l.var)];
  }
  for (std::size_t s = loads_.size(); s < frame.size(); ++s) frame[s] = 0;
}

void CompiledConnector::transfer(GlobalState& state, std::span<Value> frame,
                                 InteractionMask mask) const {
  if (expr::fusionEnabled()) {
    if (!upBlock_.empty()) upBlock_.run(frame, 0);
  } else {
    for (const Up& u : ups_) {
      frame[static_cast<std::size_t>(u.targetSlot)] = u.value.run(frame);
    }
  }
  for (const Down& d : downs_) {
    if ((mask & (InteractionMask{1} << static_cast<unsigned>(d.end))) == 0) continue;
    const Value v = d.value.run(frame);
    frame[static_cast<std::size_t>(d.targetSlot)] = v;
    state.components[static_cast<std::size_t>(d.instance)].vars[static_cast<std::size_t>(d.var)] =
        v;
  }
}

void CompiledConnector::gather(std::span<const std::span<const Value>> frames,
                               std::span<Value> scratch) const {
  for (const Load& l : loads_) {
    scratch[static_cast<std::size_t>(l.slot)] =
        frames[static_cast<std::size_t>(l.frame)][static_cast<std::size_t>(l.offset)];
  }
  for (std::size_t s = loads_.size(); s < scratch.size(); ++s) scratch[s] = 0;
}

void CompiledConnector::transfer(std::span<const std::span<Value>> frames,
                                 std::span<Value> scratch, InteractionMask mask) const {
  if (expr::fusionEnabled()) {
    if (!upBlock_.empty()) upBlock_.run(scratch, 0);
  } else {
    for (const Up& u : ups_) {
      scratch[static_cast<std::size_t>(u.targetSlot)] = u.value.run(scratch);
    }
  }
  for (const Down& d : downs_) {
    if ((mask & (InteractionMask{1} << static_cast<unsigned>(d.end))) == 0) continue;
    const Value v = d.value.run(scratch);
    scratch[static_cast<std::size_t>(d.targetSlot)] = v;
    frames[static_cast<std::size_t>(d.frame)][static_cast<std::size_t>(d.offset)] = v;
  }
}

void CompiledConnector::gatherScan(const GlobalState& state, std::vector<Value>& frame) const {
  frame.resize(static_cast<std::size_t>(scanFrameSize_));
  for (const ScanEnd& se : scanEnds_) {
    const AtomicState& comp = state.components[static_cast<std::size_t>(se.instance)];
    requireEval(comp.vars.size() >= static_cast<std::size_t>(se.varCount),
                "scanEnabled: state has fewer variables than the type");
    std::copy_n(comp.vars.begin(), se.varCount,
                frame.begin() + static_cast<std::ptrdiff_t>(se.base));
  }
  std::fill(frame.begin() + static_cast<std::ptrdiff_t>(scanVarBase_), frame.end(), 0);
}

bool CompiledConnector::scanEnabled(const System& system, const GlobalState& state,
                                    ScanScratch& s) const {
  const std::size_t nEnds = scanEnds_.size();
  if (s.endEnabled.size() < nEnds) s.endEnabled.resize(nEnds);
  if (s.endTis.size() < nEnds) s.endTis.resize(nEnds);
  s.ops.clear();
  s.trivial.clear();
  // Pass 1: walk the transition index once, collecting every non-trivial
  // transition guard of every end into one batch — end-ascending,
  // transition order, i.e. exactly the scalar evaluation order — and run
  // it in a single bytecode pass against the gathered frame. The ops
  // dispatch through the threaded VM core inside runBatch, and a run of
  // >= kMinBlockRun consecutive ops sharing one guard program (ends of
  // one type in one location) upgrades to the block-parallel executor;
  // both preserve this op order and the first-EvalError contract, so
  // nothing here depends on which core actually ran.
  for (std::size_t e = 0; e < nEnds; ++e) {
    const ScanEnd& se = scanEnds_[e];
    const AtomicType& type = *system.instance(static_cast<std::size_t>(se.instance)).type;
    const AtomicState& comp = state.components[static_cast<std::size_t>(se.instance)];
    const std::vector<int>& tis = type.transitionsFrom(comp.location, se.port);
    s.endTis[e] = &tis;
    for (int ti : tis) {
      const expr::ExprProgram& g = type.compiledTransition(ti).guard;
      s.trivial.push_back(g.empty() ? 1 : 0);
      if (!g.empty()) s.ops.push_back(expr::BatchOp{&g, se.base});
    }
  }
  bool gathered = false;
  if (!s.ops.empty()) {
    gatherScan(state, s.frame);
    gathered = true;
    s.results.resize(s.ops.size());
    expr::ExprProgram::runBatch(s.ops, s.frame, s.results);
  }
  // Pass 2: fold the batch results back into per-end enabled-transition
  // lists (the identical walk order consumes trivial flags and results
  // sequentially — no second index walk).
  std::size_t k = 0;
  std::size_t r = 0;
  InteractionMask enabledEnds = 0;
  for (std::size_t e = 0; e < nEnds; ++e) {
    std::vector<int>& list = s.endEnabled[e];
    list.clear();
    for (int ti : *s.endTis[e]) {
      if (s.trivial[k++] != 0 || s.results[r++] != 0) list.push_back(ti);
    }
    if (!list.empty()) enabledEnds |= InteractionMask{1} << e;
  }
  // Pass 3: the mask set, by bit operations over the cached masks. The
  // connector guard is pure over the current state, so its value is shared
  // by every mask; evaluate it lazily — at the first port-feasible mask,
  // where the scalar path evaluates it — and at most once per scan.
  const std::size_t nMasks = masks_.size();
  s.maskBits.assign((nMasks + 63) / 64, 0);
  bool any = false;
  bool guardKnown = scanGuard_.empty();
  for (std::size_t i = 0; i < nMasks; ++i) {
    if ((masks_[i] & ~enabledEnds) != 0) continue;
    if (!guardKnown) {
      if (!gathered) gatherScan(state, s.frame);
      gathered = true;
      if (scanGuard_.run(s.frame) == 0) return false;  // shared: rejects every mask
      guardKnown = true;
    }
    s.maskBits[i >> 6] |= std::uint64_t{1} << (i & 63);
    any = true;
  }
  return any;
}

CompiledSystem::CompiledSystem(const System& system) {
  connectors_.reserve(system.connectorCount());
  for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
    connectors_.emplace_back(system, system.connector(ci));
  }
}

}  // namespace cbip
