#include "core/system.hpp"

#include <mutex>
#include <sstream>
#include <string_view>
#include <unordered_set>

#include "util/require.hpp"

namespace cbip {

int System::addInstance(const std::string& name, AtomicTypePtr type) {
  require(type != nullptr, "System::addInstance: null type");
  instances_.push_back(Instance{name, std::move(type)});
  connectorsByInstance_.clear();
  compiledPub_.store(nullptr, std::memory_order_relaxed);
  compiled_.reset();
  return static_cast<int>(instances_.size()) - 1;
}

int System::addConnector(Connector connector) {
  connectors_.push_back(std::move(connector));
  connectorsByInstance_.clear();
  compiledPub_.store(nullptr, std::memory_order_relaxed);
  compiled_.reset();
  return static_cast<int>(connectors_.size()) - 1;
}

void System::removeConnector(std::size_t i) {
  require(i < connectors_.size(), "System::removeConnector: index out of range");
  connectors_.erase(connectors_.begin() + static_cast<std::ptrdiff_t>(i));
  connectorsByInstance_.clear();
  compiledPub_.store(nullptr, std::memory_order_relaxed);
  compiled_.reset();
}

const CompiledSystem& System::compiled() const {
  // Hot path: already built and published.
  if (const CompiledSystem* p = compiledPub_.load(std::memory_order_acquire)) return *p;
  static std::mutex buildMutex;
  const std::scoped_lock lock(buildMutex);
  if (!compiled_) compiled_ = std::make_unique<CompiledSystem>(*this);
  compiledPub_.store(compiled_.get(), std::memory_order_release);
  return *compiled_;
}

void System::rebuildReverseIndexIfNeeded() const {
  if (!connectorsByInstance_.empty() || instances_.empty()) return;
  connectorsByInstance_.resize(instances_.size());
  for (std::size_t ci = 0; ci < connectors_.size(); ++ci) {
    for (const ConnectorEnd& e : connectors_[ci].ends()) {
      const auto inst = static_cast<std::size_t>(e.port.instance);
      require(inst < instances_.size(), "connector '" + connectors_[ci].name() +
                                            "': instance index out of range");
      std::vector<int>& list = connectorsByInstance_[inst];
      // Ends of one connector are on distinct instances (validated), so a
      // duplicate can only come from the previous connector index.
      if (list.empty() || list.back() != static_cast<int>(ci)) {
        list.push_back(static_cast<int>(ci));
      }
    }
  }
}

const std::vector<int>& System::connectorsOf(std::size_t i) const {
  require(i < instances_.size(), "System::connectorsOf: instance index out of range");
  rebuildReverseIndexIfNeeded();
  return connectorsByInstance_[i];
}

void System::warmIndices() const {
  rebuildReverseIndexIfNeeded();
  for (const Instance& inst : instances_) {
    const AtomicType& type = *inst.type;
    // Any transitionsFrom call rebuilds the whole location/port index.
    (void)type.transitionsFrom(type.initialLocation(), kInternalPort);
    if (expr::compilationEnabled() && type.transitionCount() > 0) {
      (void)type.compiledTransition(0);
    }
  }
  if (expr::compilationEnabled()) (void)compiled();
}

bool System::indicesWarm() const {
  if (!instances_.empty() && connectorsByInstance_.empty()) return false;
  for (const Instance& inst : instances_) {
    if (!inst.type->indicesWarm()) return false;
  }
  return !expr::compilationEnabled() ||
         compiledPub_.load(std::memory_order_acquire) != nullptr;
}

void System::addPriority(PriorityRule rule) { priorities_.push_back(std::move(rule)); }

void System::validate() const {
  // Set-based duplicate detection and one validate() per distinct type:
  // the naive pairwise scan is O(n^2) in the instance count, which the
  // 10^5..10^6-component benchmark models cannot afford.
  {
    std::unordered_set<std::string_view> names;
    names.reserve(instances_.size());
    std::unordered_set<const AtomicType*> types;
    for (const Instance& inst : instances_) {
      require(names.insert(inst.name).second,
              "System: duplicate instance name '" + inst.name + "'");
      if (types.insert(inst.type.get()).second) inst.type->validate();
    }
  }
  for (const Connector& c : connectors_) {
    require(c.endCount() > 0, "connector '" + c.name() + "' has no ends");
    for (std::size_t e = 0; e < c.endCount(); ++e) {
      const PortRef& p = c.end(e).port;
      require(p.instance >= 0 && static_cast<std::size_t>(p.instance) < instances_.size(),
              "connector '" + c.name() + "': instance index out of range");
      const AtomicType& type = *instances_[static_cast<std::size_t>(p.instance)].type;
      require(p.port >= 0 && static_cast<std::size_t>(p.port) < type.portCount(),
              "connector '" + c.name() + "': port index out of range for " + type.name());
      // One component may not participate twice in the same interaction.
      for (std::size_t e2 = e + 1; e2 < c.endCount(); ++e2) {
        require(c.end(e2).port.instance != p.instance,
                "connector '" + c.name() + "': two ends on the same instance");
      }
    }
    auto checkRefs = [&](const Expr& expr, bool allowConnectorVars, const std::string& where) {
      std::vector<expr::VarRef> refs;
      expr.collectVars(refs);
      for (const expr::VarRef& r : refs) {
        if (r.scope == expr::kConnectorScope) {
          require(allowConnectorVars,
                  "connector '" + c.name() + "' " + where + ": connector variable not allowed");
          require(r.index >= 0 && static_cast<std::size_t>(r.index) < c.variableCount(),
                  "connector '" + c.name() + "' " + where + ": connector variable out of range");
          continue;
        }
        require(r.scope >= 0 && static_cast<std::size_t>(r.scope) < c.endCount(),
                "connector '" + c.name() + "' " + where + ": end scope out of range");
        const ConnectorEnd& end = c.end(static_cast<std::size_t>(r.scope));
        const AtomicType& type = *instances_[static_cast<std::size_t>(end.port.instance)].type;
        const PortDecl& port = type.port(end.port.port);
        require(r.index >= 0 && static_cast<std::size_t>(r.index) < port.exports.size(),
                "connector '" + c.name() + "' " + where + ": export index out of range");
      }
    };
    checkRefs(c.guard(), false, "guard");
    for (const expr::Assign& up : c.ups()) checkRefs(up.value, false, "up");
    for (const DownAssign& d : c.downs()) {
      require(d.end >= 0 && static_cast<std::size_t>(d.end) < c.endCount(),
              "connector '" + c.name() + "': down end out of range");
      const ConnectorEnd& end = c.end(static_cast<std::size_t>(d.end));
      const AtomicType& type = *instances_[static_cast<std::size_t>(end.port.instance)].type;
      const PortDecl& port = type.port(end.port.port);
      require(d.exportIndex >= 0 &&
                  static_cast<std::size_t>(d.exportIndex) < port.exports.size(),
              "connector '" + c.name() + "': down export index out of range");
      checkRefs(d.value, true, "down");
    }
  }
  for (const PriorityRule& rule : priorities_) {
    auto known = [this](const std::string& name) {
      for (const Connector& c : connectors_) {
        if (c.name() == name) return true;
      }
      return false;
    };
    require(known(rule.low), "priority rule: unknown connector '" + rule.low + "'");
    require(known(rule.high), "priority rule: unknown connector '" + rule.high + "'");
    if (rule.when.has_value()) {
      std::vector<expr::VarRef> refs;
      rule.when->collectVars(refs);
      for (const expr::VarRef& r : refs) {
        require(r.scope >= 0 && static_cast<std::size_t>(r.scope) < instances_.size(),
                "priority rule: instance scope out of range");
        const AtomicType& type = *instances_[static_cast<std::size_t>(r.scope)].type;
        require(r.index >= 0 && static_cast<std::size_t>(r.index) < type.variableCount(),
                "priority rule: variable index out of range");
      }
    }
  }
}

int System::instanceIndex(const std::string& name) const {
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].name == name) return static_cast<int>(i);
  }
  throw ModelError("System: unknown instance '" + name + "'");
}

PortRef System::portRef(const std::string& instance, const std::string& port) const {
  const int i = instanceIndex(instance);
  const int p = instances_[static_cast<std::size_t>(i)].type->portIndex(port);
  return PortRef{i, p};
}

std::string System::endLabel(const ConnectorEnd& end) const {
  const Instance& inst = instances_[static_cast<std::size_t>(end.port.instance)];
  return inst.name + "." + inst.type->port(end.port.port).name;
}

std::vector<std::string> System::endLabels(const Connector& c) const {
  std::vector<std::string> out;
  out.reserve(c.endCount());
  for (const ConnectorEnd& e : c.ends()) out.push_back(endLabel(e));
  return out;
}

GlobalState initialState(const System& system) {
  GlobalState g;
  g.components.reserve(system.instanceCount());
  for (const System::Instance& inst : system.instances()) {
    g.components.push_back(initialState(*inst.type));
  }
  return g;
}

std::uint64_t hashState(const GlobalState& state) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const AtomicState& c : state.components) {
    mix(static_cast<std::uint64_t>(c.location));
    for (Value v : c.vars) mix(static_cast<std::uint64_t>(v));
  }
  return h;
}

std::string formatState(const System& system, const GlobalState& state) {
  std::ostringstream os;
  for (std::size_t i = 0; i < state.components.size(); ++i) {
    if (i > 0) os << ", ";
    const System::Instance& inst = system.instance(i);
    const AtomicState& c = state.components[i];
    os << inst.name << "@" << inst.type->locationName(c.location);
    if (!c.vars.empty()) {
      os << "(";
      for (std::size_t v = 0; v < c.vars.size(); ++v) {
        if (v > 0) os << ",";
        os << inst.type->variable(static_cast<int>(v)).name << "=" << c.vars[v];
      }
      os << ")";
    }
  }
  return os.str();
}

Value GlobalContext::read(expr::VarRef ref) const {
  requireEval(ref.scope >= 0 &&
                  static_cast<std::size_t>(ref.scope) < state_->components.size(),
              "GlobalContext: instance scope out of range");
  const AtomicState& c = state_->components[static_cast<std::size_t>(ref.scope)];
  requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < c.vars.size(),
              "GlobalContext: variable index out of range");
  return c.vars[static_cast<std::size_t>(ref.index)];
}

void GlobalContext::write(expr::VarRef ref, Value value) {
  requireEval(ref.scope >= 0 &&
                  static_cast<std::size_t>(ref.scope) < state_->components.size(),
              "GlobalContext: instance scope out of range");
  AtomicState& c = state_->components[static_cast<std::size_t>(ref.scope)];
  requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < c.vars.size(),
              "GlobalContext: variable index out of range");
  c.vars[static_cast<std::size_t>(ref.index)] = value;
}

}  // namespace cbip
