#include "core/composite.hpp"

#include "util/require.hpp"

namespace cbip {

std::string CompositeBuilder::nestedConnectorName(const std::string& prefix,
                                                  const std::string& name) {
  return prefix + "." + name;
}

std::vector<int> CompositeBuilder::addSubsystem(const std::string& prefix, const System& sub) {
  sub.validate();
  require(!prefix.empty(), "CompositeBuilder: empty subsystem prefix");
  std::vector<int> indexMap;
  indexMap.reserve(sub.instanceCount());
  for (const System::Instance& inst : sub.instances()) {
    indexMap.push_back(system_.addInstance(prefix + "." + inst.name, inst.type));
  }
  for (const Connector& c : sub.connectors()) {
    Connector copy = c;
    copy.setName(nestedConnectorName(prefix, c.name()));
    // Remap end instance indices into the flat space. End *positions* are
    // unchanged, so guards/up/down expressions carry over verbatim.
    Connector remapped(copy.name());
    for (std::size_t e = 0; e < c.endCount(); ++e) {
      const ConnectorEnd& end = c.end(e);
      remapped.addEnd(PortRef{indexMap[static_cast<std::size_t>(end.port.instance)],
                              end.port.port},
                      end.trigger);
    }
    for (std::size_t v = 0; v < c.variableCount(); ++v) remapped.addVariable(c.variableName(v));
    remapped.setGuard(c.guard());
    for (const expr::Assign& up : c.ups()) remapped.addUp(up.target.index, up.value);
    for (const DownAssign& d : c.downs()) remapped.addDown(d.end, d.exportIndex, d.value);
    system_.addConnector(std::move(remapped));
  }
  for (const PriorityRule& rule : sub.priorities()) {
    PriorityRule remapped;
    remapped.low = nestedConnectorName(prefix, rule.low);
    remapped.high = nestedConnectorName(prefix, rule.high);
    if (rule.when.has_value()) {
      remapped.when = rule.when->mapVars([&indexMap](expr::VarRef r) {
        return expr::VarRef{indexMap[static_cast<std::size_t>(r.scope)], r.index};
      });
    }
    system_.addPriority(std::move(remapped));
  }
  if (sub.maximalProgress()) system_.setMaximalProgress(true);
  return indexMap;
}

int CompositeBuilder::addInstance(const std::string& name, AtomicTypePtr type) {
  return system_.addInstance(name, std::move(type));
}

void CompositeBuilder::addConnector(Connector connector) {
  system_.addConnector(std::move(connector));
}

void CompositeBuilder::addPriority(PriorityRule rule) { system_.addPriority(std::move(rule)); }

void CompositeBuilder::setMaximalProgress(bool on) { system_.setMaximalProgress(on); }

System CompositeBuilder::build() const {
  System out = system_;
  out.validate();
  return out;
}

}  // namespace cbip
