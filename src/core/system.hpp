// A System is a flat composite BIP component: instances + connectors +
// priorities. (Hierarchy is handled by construction functions that flatten
// into this representation — the monograph's "flattening" requirement for
// glue, Section 5.3.2.)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/atomic.hpp"
#include "core/compiled.hpp"
#include "core/connector.hpp"
#include "core/priority.hpp"

namespace cbip {

class System {
 public:
  struct Instance {
    std::string name;
    AtomicTypePtr type;
  };

  System() = default;
  // Copies carry the model, not the derived caches (reverse index,
  // compiled programs); both rebuild lazily. Moves carry everything (the
  // atomic publication pointer forces the member-wise spelling).
  System(const System& other)
      : instances_(other.instances_),
        connectors_(other.connectors_),
        priorities_(other.priorities_),
        maximalProgress_(other.maximalProgress_) {}
  System& operator=(const System& other) {
    if (this != &other) *this = System(other);
    return *this;
  }
  System(System&& other) noexcept
      : instances_(std::move(other.instances_)),
        connectors_(std::move(other.connectors_)),
        priorities_(std::move(other.priorities_)),
        maximalProgress_(other.maximalProgress_),
        connectorsByInstance_(std::move(other.connectorsByInstance_)),
        compiled_(std::move(other.compiled_)) {
    compiledPub_.store(compiled_.get(), std::memory_order_relaxed);
    other.compiledPub_.store(nullptr, std::memory_order_relaxed);
  }
  System& operator=(System&& other) noexcept {
    if (this != &other) {
      instances_ = std::move(other.instances_);
      connectors_ = std::move(other.connectors_);
      priorities_ = std::move(other.priorities_);
      maximalProgress_ = other.maximalProgress_;
      connectorsByInstance_ = std::move(other.connectorsByInstance_);
      compiled_ = std::move(other.compiled_);
      compiledPub_.store(compiled_.get(), std::memory_order_relaxed);
      other.compiledPub_.store(nullptr, std::memory_order_relaxed);
    }
    return *this;
  }

  // ---- construction ----
  /// Adds an instance; returns its index.
  int addInstance(const std::string& name, AtomicTypePtr type);
  /// Adds a connector; returns its index.
  int addConnector(Connector connector);
  /// Removes the connector at index `i`; later connectors shift down one
  /// index. Invalidates the same derived caches as addConnector. Model
  /// edits under incremental verification use this (removing glue never
  /// touches instances, so component invariants survive the edit).
  void removeConnector(std::size_t i);
  void addPriority(PriorityRule rule);
  /// Enables maximal-progress filtering among interactions of the same
  /// connector (prefer strictly larger port sets).
  void setMaximalProgress(bool on) { maximalProgress_ = on; }

  /// Validates the whole system (types, connector ends, expressions);
  /// throws ModelError on any inconsistency.
  void validate() const;

  // ---- queries ----
  std::size_t instanceCount() const { return instances_.size(); }
  const Instance& instance(std::size_t i) const { return instances_[i]; }
  const std::vector<Instance>& instances() const { return instances_; }
  std::size_t connectorCount() const { return connectors_.size(); }
  const Connector& connector(std::size_t i) const { return connectors_[i]; }
  const std::vector<Connector>& connectors() const { return connectors_; }
  const std::vector<PriorityRule>& priorities() const { return priorities_; }
  bool maximalProgress() const { return maximalProgress_; }

  /// Connector indices with at least one end on instance `i` (ascending).
  /// Reverse index over the connector ends; rebuilt lazily after
  /// construction calls, so it is cheap to query every engine step.
  const std::vector<int>& connectorsOf(std::size_t i) const;

  /// Forces every lazily-built structure the engines read concurrently:
  /// the component->connector reverse index, each type's transitionsFrom
  /// index and — when compilation is enabled — the compiled transition and
  /// connector programs. Idempotent; the engines call it before going
  /// multi-threaded (the lazy builds have no internal synchronization
  /// beyond the compiled-program publication), so workers only ever read.
  void warmIndices() const;

  /// True when the structures warmIndices() forces are built; the
  /// concurrent engines assert this before starting workers (under TSan a
  /// violated assumption would otherwise surface only as a data race).
  bool indicesWarm() const;

  /// Bytecode form of every connector, built lazily once per System
  /// revision (invalidated by addInstance/addConnector). The engines force
  /// the build at construction time; afterwards this is a pure read.
  const CompiledSystem& compiled() const;

  /// Index of the instance with the given name; throws if unknown.
  int instanceIndex(const std::string& name) const;
  /// PortRef for "instance.port" names; throws if unknown.
  PortRef portRef(const std::string& instance, const std::string& port) const;

  /// Label "instanceName.portName" for a connector end.
  std::string endLabel(const ConnectorEnd& end) const;
  /// Display labels for all ends of connector `c`.
  std::vector<std::string> endLabels(const Connector& c) const;

 private:
  void rebuildReverseIndexIfNeeded() const;

  std::vector<Instance> instances_;
  std::vector<Connector> connectors_;
  std::vector<PriorityRule> priorities_;
  bool maximalProgress_ = false;

  // instance -> connector indices; cleared by addInstance/addConnector.
  mutable std::vector<std::vector<int>> connectorsByInstance_;

  // Compiled connector programs; cleared by addInstance/addConnector.
  // Built under a mutex and published through the atomic pointer, so
  // concurrent first-use (e.g. sibling engines constructed over one
  // shared System from two threads) is safe.
  mutable std::unique_ptr<CompiledSystem> compiled_;
  mutable std::atomic<const CompiledSystem*> compiledPub_{nullptr};
};

/// Global state: one AtomicState per instance, by index.
struct GlobalState {
  std::vector<AtomicState> components;
  friend bool operator==(const GlobalState&, const GlobalState&) = default;
};

GlobalState initialState(const System& system);

/// Stable 64-bit hash (FNV-1a over the encoded state).
std::uint64_t hashState(const GlobalState& state);

/// Compact printable form "loc0(v=..),loc1(..)" for debugging/traces.
std::string formatState(const System& system, const GlobalState& state);

/// Evaluation context over a global state: scope = instance index.
class GlobalContext final : public expr::EvalContext {
 public:
  explicit GlobalContext(GlobalState& state) : state_(&state) {}
  Value read(expr::VarRef ref) const override;
  void write(expr::VarRef ref, Value value) override;

 private:
  GlobalState* state_;
};

}  // namespace cbip
