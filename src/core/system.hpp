// A System is a flat composite BIP component: instances + connectors +
// priorities. (Hierarchy is handled by construction functions that flatten
// into this representation — the monograph's "flattening" requirement for
// glue, Section 5.3.2.)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/atomic.hpp"
#include "core/connector.hpp"
#include "core/priority.hpp"

namespace cbip {

class System {
 public:
  struct Instance {
    std::string name;
    AtomicTypePtr type;
  };

  // ---- construction ----
  /// Adds an instance; returns its index.
  int addInstance(const std::string& name, AtomicTypePtr type);
  /// Adds a connector; returns its index.
  int addConnector(Connector connector);
  void addPriority(PriorityRule rule);
  /// Enables maximal-progress filtering among interactions of the same
  /// connector (prefer strictly larger port sets).
  void setMaximalProgress(bool on) { maximalProgress_ = on; }

  /// Validates the whole system (types, connector ends, expressions);
  /// throws ModelError on any inconsistency.
  void validate() const;

  // ---- queries ----
  std::size_t instanceCount() const { return instances_.size(); }
  const Instance& instance(std::size_t i) const { return instances_[i]; }
  const std::vector<Instance>& instances() const { return instances_; }
  std::size_t connectorCount() const { return connectors_.size(); }
  const Connector& connector(std::size_t i) const { return connectors_[i]; }
  const std::vector<Connector>& connectors() const { return connectors_; }
  const std::vector<PriorityRule>& priorities() const { return priorities_; }
  bool maximalProgress() const { return maximalProgress_; }

  /// Connector indices with at least one end on instance `i` (ascending).
  /// Reverse index over the connector ends; rebuilt lazily after
  /// construction calls, so it is cheap to query every engine step.
  const std::vector<int>& connectorsOf(std::size_t i) const;

  /// Index of the instance with the given name; throws if unknown.
  int instanceIndex(const std::string& name) const;
  /// PortRef for "instance.port" names; throws if unknown.
  PortRef portRef(const std::string& instance, const std::string& port) const;

  /// Label "instanceName.portName" for a connector end.
  std::string endLabel(const ConnectorEnd& end) const;
  /// Display labels for all ends of connector `c`.
  std::vector<std::string> endLabels(const Connector& c) const;

 private:
  void rebuildReverseIndexIfNeeded() const;

  std::vector<Instance> instances_;
  std::vector<Connector> connectors_;
  std::vector<PriorityRule> priorities_;
  bool maximalProgress_ = false;

  // instance -> connector indices; cleared by addInstance/addConnector.
  mutable std::vector<std::vector<int>> connectorsByInstance_;
};

/// Global state: one AtomicState per instance, by index.
struct GlobalState {
  std::vector<AtomicState> components;
  friend bool operator==(const GlobalState&, const GlobalState&) = default;
};

GlobalState initialState(const System& system);

/// Stable 64-bit hash (FNV-1a over the encoded state).
std::uint64_t hashState(const GlobalState& state);

/// Compact printable form "loc0(v=..),loc1(..)" for debugging/traces.
std::string formatState(const System& system, const GlobalState& state);

/// Evaluation context over a global state: scope = instance index.
class GlobalContext final : public expr::EvalContext {
 public:
  explicit GlobalContext(GlobalState& state) : state_(&state) {}
  Value read(expr::VarRef ref) const override;
  void write(expr::VarRef ref, Value value) override;

 private:
  GlobalState* state_;
};

}  // namespace cbip
