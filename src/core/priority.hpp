// Priorities: the third layer of BIP glue.
//
// A priority rule `low ≺ high [when G]` disables every enabled interaction
// of connector `low` whenever some interaction of connector `high` is also
// enabled and the (optional) state predicate G holds. Rules only *filter*
// the enabled set — they can never introduce new behaviour, which is why
// priority application preserves component invariants (Section 5.5).
//
// Maximal progress — prefer larger interactions of the same connector —
// is the built-in rule that turns trigger connectors into true broadcasts;
// it can be switched on per system.
#pragma once

#include <optional>
#include <string>

#include "expr/expr.hpp"

namespace cbip {

struct PriorityRule {
  /// Connector whose interactions lose.
  std::string low;
  /// Connector whose interactions win.
  std::string high;
  /// Optional condition on the global state (scope = instance index,
  /// index = variable index within the instance). Absent means "always".
  std::optional<expr::Expr> when;
};

}  // namespace cbip
