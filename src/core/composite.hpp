// Hierarchical composition with flattening.
//
// The monograph requires glue operators to satisfy two laws (§5.3.2):
//
//   * Incrementality: coordination of n components can be expressed by
//     first coordinating n−1 of them and then coordinating the result
//     with the remaining one — gl(C1..Cn) ≈ gl1(C1, gl2(C2..Cn));
//   * Flattening: conversely, nested glue can always be rewritten as one
//     flat glue over the atomic components — this "is essential for
//     separating behavior from glue".
//
// CompositeBuilder realizes both operationally: subsystems (already
// composed Systems, with their own connectors and priorities) are nested
// under a namespace prefix, new cross-subsystem connectors and priorities
// are layered on top, and `build()` flattens everything into one plain
// System — the representation every engine, verifier and transformation
// in this library consumes. The law tests in test_composite.cpp check
// bisimilarity of nested and flat constructions.
#pragma once

#include <string>
#include <vector>

#include "core/system.hpp"

namespace cbip {

class CompositeBuilder {
 public:
  /// Nests `sub` under `prefix`: instance "x" becomes "prefix.x",
  /// connector "c" becomes "prefix.c" (priorities and maximal progress of
  /// the subsystem are imported too). Returns, for each instance index of
  /// `sub`, its index in the flat system being built.
  std::vector<int> addSubsystem(const std::string& prefix, const System& sub);

  /// Adds a direct atomic member; returns its flat index.
  int addInstance(const std::string& name, AtomicTypePtr type);

  /// Adds a top-level connector; its PortRefs use flat instance indices
  /// (as returned by addSubsystem / addInstance).
  void addConnector(Connector connector);

  /// Adds a top-level priority rule. Connector names must be the flat
  /// (prefixed) names; `when` scopes use flat instance indices.
  void addPriority(PriorityRule rule);

  void setMaximalProgress(bool on);

  /// Flat connector name of a nested connector ("prefix.name").
  static std::string nestedConnectorName(const std::string& prefix, const std::string& name);

  /// Flattens into a validated System.
  System build() const;

 private:
  System system_;
};

}  // namespace cbip
