#include "core/connector.hpp"

#include <sstream>

#include "util/require.hpp"

namespace cbip {

int Connector::addEnd(PortRef port, bool trigger) {
  require(ends_.size() < 62, name_ + ": connectors support at most 62 ends");
  ends_.push_back(ConnectorEnd{port, trigger});
  return static_cast<int>(ends_.size()) - 1;
}

int Connector::addVariable(const std::string& name) {
  vars_.push_back(name);
  return static_cast<int>(vars_.size()) - 1;
}

void Connector::addUp(int connectorVar, Expr value) {
  require(connectorVar >= 0 && static_cast<std::size_t>(connectorVar) < vars_.size(),
          name_ + ": up-action target out of range");
  ups_.push_back(expr::Assign{expr::VarRef{expr::kConnectorScope, connectorVar},
                              std::move(value)});
}

void Connector::addDown(int end, int exportIndex, Expr value) {
  require(end >= 0 && static_cast<std::size_t>(end) < ends_.size(),
          name_ + ": down-action end out of range");
  downs_.push_back(DownAssign{end, exportIndex, std::move(value)});
}

bool Connector::hasTrigger() const {
  for (const ConnectorEnd& e : ends_) {
    if (e.trigger) return true;
  }
  return false;
}

std::vector<InteractionMask> Connector::feasibleMasks() const {
  std::vector<InteractionMask> out;
  if (ends_.empty()) return out;
  if (!hasTrigger()) {
    out.push_back(fullMask());
    return out;
  }
  require(ends_.size() <= 20,
          name_ + ": trigger connectors support at most 20 ends (mask enumeration)");
  InteractionMask triggers = 0;
  for (std::size_t i = 0; i < ends_.size(); ++i) {
    if (ends_[i].trigger) triggers |= (InteractionMask{1} << i);
  }
  const InteractionMask full = fullMask();
  for (InteractionMask m = 1; m <= full; ++m) {
    if ((m & triggers) != 0) out.push_back(m);
  }
  return out;
}

std::string Connector::maskLabel(InteractionMask mask,
                                 const std::vector<std::string>& endLabels) const {
  std::ostringstream os;
  os << name_ << "{";
  bool first = true;
  for (std::size_t i = 0; i < ends_.size(); ++i) {
    if ((mask & (InteractionMask{1} << i)) == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << (i < endLabels.size() ? endLabels[i] : "?");
  }
  os << "}";
  return os.str();
}

Connector rendezvous(std::string name, std::vector<PortRef> ports) {
  Connector c(std::move(name));
  for (const PortRef& p : ports) c.addSynchron(p);
  return c;
}

Connector broadcast(std::string name, PortRef sender, std::vector<PortRef> receivers) {
  Connector c(std::move(name));
  c.addTrigger(sender);
  for (const PortRef& p : receivers) c.addSynchron(p);
  return c;
}

}  // namespace cbip
