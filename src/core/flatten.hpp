// Static fusion of a composite into a single atomic component.
//
// The BIP backend statically composes the atomic components mapped to the
// same processor into one observationally equivalent component "to reduce
// coordination overhead at runtime" (monograph Section 5.6). This module
// implements that source-to-source transformation:
//
//   * every instance's control location becomes an integer variable of the
//     fused component (one control location remains);
//   * every instance variable becomes a renamed fused variable;
//   * every (connector, feasible mask, per-end transition tuple) becomes a
//     fused transition labelled by a port named after the interaction,
//     whose guard conjoins location tests, transition guards and the
//     connector guard, and whose action performs up/down data transfer
//     followed by the participants' actions and location updates;
//   * priorities (rules + maximal progress) are *statically encoded* by
//     strengthening low-priority guards with the negation of the
//     high-priority interactions' enabling conditions — legal because BIP
//     guards cannot be changed by the data transfer of the same step.
//
// The result is executable on its own (see `FusedComponent::step`) and
// label-bisimilar to the engine-coordinated composite; tests check this on
// explored state graphs.
#pragma once

#include <string>
#include <vector>

#include "core/semantics.hpp"
#include "core/system.hpp"
#include "util/rng.hpp"

namespace cbip {

struct FusedComponent {
  AtomicTypePtr type;
  /// Port index in `type` -> human-readable interaction label
  /// (same labels as `interactionLabel` on the source system).
  std::vector<std::string> portLabels;
};

/// Fuses all instances of `system` into one atomic component.
/// Internal (tau) transitions of the sources stay internal.
/// Throws ModelError if the system uses features fusion cannot encode.
FusedComponent fuse(const System& system);

/// One execution step of a fused component: collects enabled port-labelled
/// transitions, picks one with `rng`, fires it (then runs tau steps).
/// Returns the label of the fired interaction, or an empty string when the
/// component is deadlocked.
std::string step(const FusedComponent& fused, AtomicState& state, Rng& rng);

/// Labels of all enabled interactions of the fused component (sorted).
std::vector<std::string> enabledLabels(const FusedComponent& fused, const AtomicState& state);

}  // namespace cbip
