#include "core/atomic.hpp"

#include <algorithm>
#include <mutex>

#include "analyze/analyze.hpp"
#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cbip {

namespace {
// Telemetry (src/obs): guard-then-fire collapse rate of the fused
// dispatch path (engine/engine.hpp runInternal tau settling is the main
// caller). Counts only, never steers.
const obs::Counter g_tryFireCalls("vm.tryfire.calls");
const obs::Counter g_tryFireHits("vm.tryfire.hits");
}  // namespace

int AtomicType::addLocation(const std::string& name) {
  locations_.push_back(name);
  bySource_.clear();
  return static_cast<int>(locations_.size()) - 1;
}

int AtomicType::addVariable(const std::string& name, Value init) {
  variables_.push_back(VarDecl{name, init});
  return static_cast<int>(variables_.size()) - 1;
}

int AtomicType::addPort(const std::string& name, std::vector<int> exports) {
  ports_.push_back(PortDecl{name, std::move(exports)});
  return static_cast<int>(ports_.size()) - 1;
}

void AtomicType::addTransition(int from, int port, Expr guard,
                               std::vector<expr::Assign> actions, int to) {
  transitions_.push_back(Transition{from, port, std::move(guard), std::move(actions), to});
  bySource_.clear();
  compiled_.clear();
  compiledBuilt_.store(false, std::memory_order_relaxed);
}

void AtomicType::setInitialLocation(int loc) {
  require(loc >= 0 && static_cast<std::size_t>(loc) < locations_.size(),
          name_ + ": initial location out of range");
  initial_ = loc;
}

void AtomicType::validate() const {
  require(!locations_.empty(), name_ + ": component has no locations");
  require(initial_ >= 0 && static_cast<std::size_t>(initial_) < locations_.size(),
          name_ + ": initial location out of range");
  for (const PortDecl& p : ports_) {
    for (std::size_t a = 0; a < p.exports.size(); ++a) {
      require(p.exports[a] >= 0 && static_cast<std::size_t>(p.exports[a]) < variables_.size(),
              name_ + "." + p.name + ": exported variable index out of range");
      // Distinct exports keep connector frame slots alias-free: a down
      // write to one slot must never be observable through another.
      for (std::size_t b = a + 1; b < p.exports.size(); ++b) {
        require(p.exports[a] != p.exports[b],
                name_ + "." + p.name + ": variable exported twice through one port");
      }
    }
  }
  auto checkLocal = [this](const Expr& e, const std::string& where) {
    std::vector<expr::VarRef> refs;
    e.collectVars(refs);
    for (const expr::VarRef& r : refs) {
      require(r.scope == 0, name_ + " " + where + ": non-local variable scope");
      require(r.index >= 0 && static_cast<std::size_t>(r.index) < variables_.size(),
              name_ + " " + where + ": variable index out of range");
    }
  };
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    const Transition& t = transitions_[i];
    const std::string where = "transition #" + std::to_string(i);
    require(t.from >= 0 && static_cast<std::size_t>(t.from) < locations_.size(),
            name_ + " " + where + ": source location out of range");
    require(t.to >= 0 && static_cast<std::size_t>(t.to) < locations_.size(),
            name_ + " " + where + ": target location out of range");
    require(t.port >= kInternalPort && t.port < static_cast<int>(ports_.size()),
            name_ + " " + where + ": port index out of range");
    checkLocal(t.guard, where + " guard");
    for (const expr::Assign& a : t.actions) {
      require(a.target.scope == 0, name_ + " " + where + ": action writes non-local scope");
      require(a.target.index >= 0 &&
                  static_cast<std::size_t>(a.target.index) < variables_.size(),
              name_ + " " + where + ": action target out of range");
      checkLocal(a.value, where + " action");
    }
  }
  // Unique names within each namespace.
  auto checkUnique = [this](auto getName, std::size_t n, const char* what) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        require(getName(i) != getName(j),
                name_ + ": duplicate " + what + " name '" + getName(i) + "'");
      }
    }
  };
  checkUnique([this](std::size_t i) { return locations_[i]; }, locations_.size(), "location");
  checkUnique([this](std::size_t i) { return variables_[i].name; }, variables_.size(),
              "variable");
  checkUnique([this](std::size_t i) { return ports_[i].name; }, ports_.size(), "port");
  // Lower all transitions now: validation runs before any concurrent
  // execution, so the lazily-built cache is ready before worker threads
  // start reading it. With compilation disabled nothing is lowered at all
  // — the escape hatch must survive even a throwing compiler bug.
  if (expr::compilationEnabled()) compileIfNeeded();
}

void AtomicType::compileIfNeeded() const {
  if (compiledBuilt_.load(std::memory_order_acquire)) return;
  // Shared types may hit first-use from several threads (e.g. sibling
  // engines validating concurrently); only one performs the build.
  static std::mutex buildMutex;
  const std::scoped_lock lock(buildMutex);
  if (compiledBuilt_.load(std::memory_order_relaxed)) return;
  // Range-check every reference while lowering: the compiled evaluators
  // index the variable vector without per-access checks, so out-of-range
  // references must die here (the interpreter raises EvalError at
  // evaluation time instead).
  const expr::SlotMap slots = [this](expr::VarRef r) {
    require(r.scope == 0, name_ + ": non-local variable scope in compiled expression");
    require(r.index >= 0 && static_cast<std::size_t>(r.index) < variables_.size(),
            name_ + ": variable index out of range in compiled expression");
    return r.index;
  };
  compiled_.clear();
  compiled_.reserve(transitions_.size());
  const bool doAnalyze = expr::analysisEnabled();
  for (const Transition& t : transitions_) {
    CompiledTransition ct;
    ct.from = t.from;
    ct.to = t.to;
    if (!t.guard.isTrue()) ct.guard = expr::compile(t.guard, slots);
    ct.actions.reserve(t.actions.size());
    for (const expr::Assign& a : t.actions) {
      require(a.target.scope == 0 && a.target.index >= 0 &&
                  static_cast<std::size_t>(a.target.index) < variables_.size(),
              name_ + ": action target out of range in compiled expression");
      ct.actions.push_back(
          CompiledTransition::Action{a.target.index, expr::compile(a.value, slots)});
    }
    // Fused forms are built unconditionally (the fusion switch is a
    // dispatch-time decision, so toggling it never needs a rebuild). A
    // transition with a trivial guard and no actions keeps both empty:
    // its dispatch is a bare location move.
    if (!t.guard.isTrue() || !t.actions.empty()) {
      ct.fused = expr::compileFused(t.guard, t.actions, slots);
    }
    if (!t.actions.empty()) {
      ct.actionBlock = expr::compileFused(Expr::top(), t.actions, slots);
    }
    // Analysis-guided pruning (src/analyze): provably constant guards
    // fold to constant programs, provably safe division checks relax.
    // Build-time and under the same mutex, so the escape hatch
    // (CBIP_NO_ANALYZE / setAnalysisEnabled) only affects types compiled
    // after the toggle — exactly like the compilation switch.
    if (doAnalyze) analyze::optimizeTransition(ct, variables_.size());
    compiled_.push_back(std::move(ct));
  }
  compiledBuilt_.store(true, std::memory_order_release);
}

const CompiledTransition& AtomicType::compiledTransition(int i) const {
  compileIfNeeded();
  // Engine-hot accessor (see transition()): no eager message string.
  if (i < 0 || static_cast<std::size_t>(i) >= compiled_.size()) {
    throw ModelError(name_ + ": transition index out of range");
  }
  return compiled_[static_cast<std::size_t>(i)];
}

bool AtomicType::indicesWarm() const {
  // bySource_ is non-empty once built (validated types have >= 1
  // location); it is cleared, like compiledBuilt_, whenever a transition
  // is added.
  if (bySource_.empty() && !locations_.empty()) return false;
  return !expr::compilationEnabled() || transitions_.empty() ||
         compiledBuilt_.load(std::memory_order_acquire);
}

const std::string& AtomicType::locationName(int i) const {
  require(i >= 0 && static_cast<std::size_t>(i) < locations_.size(),
          name_ + ": location index out of range");
  return locations_[static_cast<std::size_t>(i)];
}

const VarDecl& AtomicType::variable(int i) const {
  require(i >= 0 && static_cast<std::size_t>(i) < variables_.size(),
          name_ + ": variable index out of range");
  return variables_[static_cast<std::size_t>(i)];
}

const PortDecl& AtomicType::port(int i) const {
  require(i >= 0 && static_cast<std::size_t>(i) < ports_.size(),
          name_ + ": port index out of range");
  return ports_[static_cast<std::size_t>(i)];
}

const Transition& AtomicType::transition(int i) const {
  // Engine-hot accessor: the error string is built only on failure (a
  // require() call would concatenate it on every lookup).
  if (i < 0 || static_cast<std::size_t>(i) >= transitions_.size()) {
    throw ModelError(name_ + ": transition index out of range");
  }
  return transitions_[static_cast<std::size_t>(i)];
}

namespace {

template <typename F>
int indexOf(F getName, std::size_t n, const std::string& name) {
  for (std::size_t i = 0; i < n; ++i) {
    if (getName(i) == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

int AtomicType::locationIndex(const std::string& name) const {
  const auto i = findLocation(name);
  require(i.has_value(), name_ + ": unknown location '" + name + "'");
  return *i;
}

int AtomicType::variableIndex(const std::string& name) const {
  const auto i = findVariable(name);
  require(i.has_value(), name_ + ": unknown variable '" + name + "'");
  return *i;
}

int AtomicType::portIndex(const std::string& name) const {
  const auto i = findPort(name);
  require(i.has_value(), name_ + ": unknown port '" + name + "'");
  return *i;
}

std::optional<int> AtomicType::findLocation(const std::string& name) const {
  const int i = indexOf([this](std::size_t k) { return locations_[k]; }, locations_.size(), name);
  if (i < 0) return std::nullopt;
  return i;
}

std::optional<int> AtomicType::findVariable(const std::string& name) const {
  const int i =
      indexOf([this](std::size_t k) { return variables_[k].name; }, variables_.size(), name);
  if (i < 0) return std::nullopt;
  return i;
}

std::optional<int> AtomicType::findPort(const std::string& name) const {
  const int i = indexOf([this](std::size_t k) { return ports_[k].name; }, ports_.size(), name);
  if (i < 0) return std::nullopt;
  return i;
}

void AtomicType::rebuildIndexIfNeeded() const {
  if (!bySource_.empty()) return;
  bySource_.assign(locations_.size(),
                   std::vector<std::vector<int>>(ports_.size() + 1));
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    const Transition& t = transitions_[i];
    bySource_[static_cast<std::size_t>(t.from)][static_cast<std::size_t>(t.port + 1)].push_back(
        static_cast<int>(i));
  }
}

const std::vector<int>& AtomicType::transitionsFrom(int location, int port) const {
  rebuildIndexIfNeeded();
  // Engine-hot accessor (see transition()): no eager message strings.
  if (location < 0 || static_cast<std::size_t>(location) >= locations_.size()) {
    throw ModelError(name_ + ": location index out of range");
  }
  if (port < kInternalPort || port >= static_cast<int>(ports_.size())) {
    throw ModelError(name_ + ": port index out of range");
  }
  return bySource_[static_cast<std::size_t>(location)][static_cast<std::size_t>(port + 1)];
}

AtomicState initialState(const AtomicType& type) {
  AtomicState s;
  s.location = type.initialLocation();
  s.vars.reserve(type.variableCount());
  for (std::size_t i = 0; i < type.variableCount(); ++i) {
    s.vars.push_back(type.variable(static_cast<int>(i)).init);
  }
  return s;
}

bool guardHolds(const AtomicType& type, const AtomicState& state, int ti) {
  if (!expr::compilationEnabled()) return guardHolds(type, state, type.transition(ti));
  // The compiled form carries everything this dispatch needs (trivially
  // true <=> empty program), so the symbolic transition table is never
  // touched on the hot path.
  const CompiledTransition& ct = type.compiledTransition(ti);
  if (ct.guard.empty()) return true;
  // Programs are range-checked against the type's variable table at
  // lowering time; the frame only needs to cover that table. (The error
  // string is built only on failure — this check runs per guard.)
  if (state.vars.size() < type.variableCount()) {
    throw EvalError(type.name() + ": state has fewer variables than the type");
  }
  return ct.guard.run(state.vars) != 0;
}

bool guardHolds(const AtomicType&, const AtomicState& state, const Transition& t) {
  if (t.guard.isTrue()) return true;
  auto& vars = const_cast<std::vector<Value>&>(state.vars);
  expr::VecContext ctx(vars);
  return t.guard.eval(ctx) != 0;
}

std::vector<int> enabledTransitions(const AtomicType& type, const AtomicState& state, int port) {
  std::vector<int> out;
  enabledTransitions(type, state, port, out);
  return out;
}

void enabledTransitions(const AtomicType& type, const AtomicState& state, int port,
                        std::vector<int>& out) {
  out.clear();
  for (int ti : type.transitionsFrom(state.location, port)) {
    if (guardHolds(type, state, ti)) out.push_back(ti);
  }
}

bool portEnabled(const AtomicType& type, const AtomicState& state, int port) {
  for (int ti : type.transitionsFrom(state.location, port)) {
    if (guardHolds(type, state, ti)) return true;
  }
  return false;
}

void fire(const AtomicType& type, AtomicState& state, int ti) {
  if (!expr::compilationEnabled()) {
    fire(type, state, type.transition(ti));
    return;
  }
  const CompiledTransition& ct = type.compiledTransition(ti);
  // Per-fire checks: error strings built only on failure.
  if (ct.from != state.location) {
    throw ModelError(type.name() + ": firing transition from wrong location");
  }
  if (state.vars.size() < type.variableCount()) {
    throw EvalError(type.name() + ": state has fewer variables than the type");
  }
  if (expr::fusionEnabled()) {
    // The whole action block is one dispatch; the frame *is* the live
    // variable vector, so every store lands in place (sequential
    // assignment semantics, shared subexpressions computed once).
    if (!ct.actionBlock.empty()) {
      ct.actionBlock.run(std::span<Value>(state.vars), 0);
    }
  } else {
    // Unfused escape hatch: one program dispatch per action.
    for (const CompiledTransition::Action& a : ct.actions) {
      state.vars[static_cast<std::size_t>(a.target)] = a.value.run(state.vars);
    }
  }
  state.location = ct.to;
}

void fire(const AtomicType& type, AtomicState& state, const Transition& t) {
  require(t.from == state.location, type.name() + ": firing transition from wrong location");
  expr::VecContext ctx(state.vars);
  expr::applyAssignments(t.actions, ctx);
  state.location = t.to;
}

bool tryFire(const AtomicType& type, AtomicState& state, int ti) {
  g_tryFireCalls.add();
  if (!expr::compilationEnabled()) {
    const Transition& t = type.transition(ti);
    if (t.from != state.location) {
      throw ModelError(type.name() + ": firing transition from wrong location");
    }
    if (!guardHolds(type, state, t)) return false;
    expr::VecContext ctx(state.vars);
    expr::applyAssignments(t.actions, ctx);
    state.location = t.to;
    g_tryFireHits.add();
    return true;
  }
  const CompiledTransition& ct = type.compiledTransition(ti);
  if (ct.from != state.location) {
    throw ModelError(type.name() + ": firing transition from wrong location");
  }
  if (state.vars.size() < type.variableCount()) {
    throw EvalError(type.name() + ": state has fewer variables than the type");
  }
  if (expr::fusionEnabled()) {
    // Trivial guard, no actions: the dispatch is a bare location move.
    if (!ct.fused.empty() && ct.fused.run(std::span<Value>(state.vars), 0) == 0) return false;
    state.location = ct.to;
    g_tryFireHits.add();
    return true;
  }
  // Unfused escape hatch: guard dispatch, then one dispatch per action.
  if (!ct.guard.empty() && ct.guard.run(state.vars) == 0) return false;
  for (const CompiledTransition::Action& a : ct.actions) {
    state.vars[static_cast<std::size_t>(a.target)] = a.value.run(state.vars);
  }
  state.location = ct.to;
  g_tryFireHits.add();
  return true;
}

void runInternal(const AtomicType& type, AtomicState& state, int maxSteps) {
  for (int step = 0; step < maxSteps; ++step) {
    // One tryFire dispatch per candidate, in transition order; the first
    // enabled one fires. No allocation, no enabled-list materialization.
    bool fired = false;
    for (int ti : type.transitionsFrom(state.location, kInternalPort)) {
      if (tryFire(type, state, ti)) {
        fired = true;
        break;
      }
    }
    if (!fired) return;
  }
  throw EvalError(type.name() + ": internal transitions diverge (> " +
                  std::to_string(maxSteps) + " tau steps)");
}

}  // namespace cbip
