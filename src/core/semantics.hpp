// Operational semantics of composite components (the engine kernel and the
// verifier both call these functions — single semantic host, Section 5.4).
//
// An *enabled interaction* is a connector, a feasible mask of its ends such
// that every selected end's port is enabled in the current state, no
// non-selected end of an all-synchron connector is required (masks are
// feasible by construction), and the connector guard holds. For each
// participating end the component may have several enabled transitions;
// `choices` records all of them so that schedulers / the verifier can
// resolve the nondeterminism explicitly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace cbip {

struct EnabledInteraction {
  int connector = 0;
  InteractionMask mask = 0;
  /// Position i holds the enabled transition indices of the component
  /// attached to the i-th *participating* end (ends listed in mask order).
  std::vector<std::vector<int>> choices;
  /// Participating end positions, ascending (parallel to `choices`).
  std::vector<int> ends;

  friend bool operator==(const EnabledInteraction&, const EnabledInteraction&) = default;
};

/// All enabled interactions of `system` in `state` (before priorities).
std::vector<EnabledInteraction> enabledInteractions(const System& system,
                                                    const GlobalState& state);

/// Incrementally maintained enabled-interaction set.
///
/// A connector's enabledness depends only on the components attached to
/// its ends (guards and up/down expressions are validated to reference end
/// scopes exclusively), so after an interaction executes, only connectors
/// sharing an instance with the executed connector can change status. The
/// cache keeps a per-connector interaction list and, via the System's
/// component->connector reverse index (`System::connectorsOf`), re-derives
/// only the connectors touching instances dirtied by the last step. On a
/// system with n connectors of bounded degree this turns the per-step
/// enablement recomputation from O(n) connector scans into O(degree);
/// flattening the result in `enabled()` remains O(currently enabled
/// interactions), which is what bounds the end-to-end speedup.
///
/// `enabled()` is ordering-identical to `enabledInteractions()` — the
/// engines' scheduling decisions (and hence traces) are unchanged.
class EnabledInteractionCache {
 public:
  /// The system must outlive the cache; its connectors must not change
  /// while the cache is live.
  explicit EnabledInteractionCache(const System& system);

  /// Full recompute of every connector from `state`.
  void reset(const GlobalState& state);

  /// Re-derives only the connectors attached to `dirtyInstances`
  /// (duplicates allowed). `state` must be the current global state.
  void update(const GlobalState& state, std::span<const int> dirtyInstances);

  /// Marks every instance on the executed interaction's connector dirty
  /// and updates: `execute` only mutates participating components, which
  /// are a subset of that connector's ends.
  void updateAfterExecute(const GlobalState& state, const EnabledInteraction& executed);

  /// Current enabled set, connector-ascending — element-wise equal to
  /// `enabledInteractions(system, state)` for the last reset/update state.
  ///
  /// Maintained incrementally as one flat vector with per-connector
  /// (offset, count) spans: a dirty connector's recompute splices its new
  /// interactions into place by move, so a step touching d connectors
  /// costs O(d) list constructions plus element moves — the previous
  /// design re-deep-copied the *entire* enabled set into a flat list
  /// every step, which dominated the engine step at 128+ components.
  const std::vector<EnabledInteraction>& enabled() const { return flat_; }

  bool empty() const { return flat_.empty(); }

 private:
  void recomputeConnector(std::size_t ci, const GlobalState& state);

  const System* system_;
  std::vector<int> flatOffset_;        // per connector: start of its span in flat_
  std::vector<int> flatCount_;         // per connector: span length
  std::vector<char> connectorQueued_;  // scratch: dedup within one update
  std::vector<EnabledInteraction> flat_;
  std::vector<EnabledInteraction> scratch_;  // recompute buffer (capacity reused)
  std::vector<int> dirtyScratch_;            // updateAfterExecute buffer
};

/// Applies priority rules and (if enabled) maximal progress; keeps the
/// maximal elements. Never empties a non-empty set.
std::vector<EnabledInteraction> applyPriorities(const System& system, const GlobalState& state,
                                                std::vector<EnabledInteraction> enabled);

/// Executes `interaction` on `state`. `transitionChoice[i]` selects which
/// enabled transition the i-th participating component fires (index into
/// `interaction.choices[i]`). Runs the connector guard+up+down data
/// transfer, fires the transitions (one fused action-block dispatch per
/// participant unless fusion is disabled — the guard was already
/// established at scan time, on the pre-transfer frame), then runs
/// internal (tau) steps of the involved components to quiescence (one
/// fused tryFire dispatch per candidate; see runInternal).
void execute(const System& system, GlobalState& state, const EnabledInteraction& interaction,
             std::span<const int> transitionChoice);

/// Runs only the connector up/down data transfer of `interaction` on
/// `state` (compiled programs unless expr::compilationEnabled() is off).
/// The multithreaded engine performs this step centrally on its snapshot
/// before dispatching transitions to component workers.
void connectorTransfer(const System& system, GlobalState& state,
                       const EnabledInteraction& interaction);

/// Executes with the first enabled transition for every participant.
void executeDefault(const System& system, GlobalState& state,
                    const EnabledInteraction& interaction);

/// Number of distinct transition-choice vectors of an enabled interaction.
std::size_t choiceCount(const EnabledInteraction& interaction);

/// Enumerates all successor states (all interactions x all transition
/// choices), with or without priority filtering.
std::vector<GlobalState> successors(const System& system, const GlobalState& state,
                                    bool withPriorities = true);

/// Display label of an enabled interaction, e.g. "eat{p0.eat, f0.use}".
std::string interactionLabel(const System& system, const EnabledInteraction& interaction);

/// True iff no interaction is enabled (global deadlock; internal steps are
/// run to quiescence by `execute`, so tau-availability does not count).
bool isDeadlocked(const System& system, const GlobalState& state);

}  // namespace cbip
