// Operational semantics of composite components (the engine kernel and the
// verifier both call these functions — single semantic host, Section 5.4).
//
// An *enabled interaction* is a connector, a feasible mask of its ends such
// that every selected end's port is enabled in the current state, no
// non-selected end of an all-synchron connector is required (masks are
// feasible by construction), and the connector guard holds. For each
// participating end the component may have several enabled transitions;
// `choices` records all of them so that schedulers / the verifier can
// resolve the nondeterminism explicitly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace cbip {

struct EnabledInteraction {
  int connector = 0;
  InteractionMask mask = 0;
  /// Position i holds the enabled transition indices of the component
  /// attached to the i-th *participating* end (ends listed in mask order).
  std::vector<std::vector<int>> choices;
  /// Participating end positions, ascending (parallel to `choices`).
  std::vector<int> ends;
};

/// All enabled interactions of `system` in `state` (before priorities).
std::vector<EnabledInteraction> enabledInteractions(const System& system,
                                                    const GlobalState& state);

/// Applies priority rules and (if enabled) maximal progress; keeps the
/// maximal elements. Never empties a non-empty set.
std::vector<EnabledInteraction> applyPriorities(const System& system, const GlobalState& state,
                                                std::vector<EnabledInteraction> enabled);

/// Executes `interaction` on `state`. `transitionChoice[i]` selects which
/// enabled transition the i-th participating component fires (index into
/// `interaction.choices[i]`). Runs the connector guard+up+down data
/// transfer, fires the transitions, then runs internal (tau) steps of the
/// involved components to quiescence.
void execute(const System& system, GlobalState& state, const EnabledInteraction& interaction,
             std::span<const int> transitionChoice);

/// Executes with the first enabled transition for every participant.
void executeDefault(const System& system, GlobalState& state,
                    const EnabledInteraction& interaction);

/// Number of distinct transition-choice vectors of an enabled interaction.
std::size_t choiceCount(const EnabledInteraction& interaction);

/// Enumerates all successor states (all interactions x all transition
/// choices), with or without priority filtering.
std::vector<GlobalState> successors(const System& system, const GlobalState& state,
                                    bool withPriorities = true);

/// Display label of an enabled interaction, e.g. "eat{p0.eat, f0.use}".
std::string interactionLabel(const System& system, const EnabledInteraction& interaction);

/// True iff no interaction is enabled (global deadlock; internal steps are
/// run to quiescence by `execute`, so tau-availability does not count).
bool isDeadlocked(const System& system, const GlobalState& state);

}  // namespace cbip
