// Compiled execution form of a System's connectors.
//
// Connector guards, up transfers and down transfers are Expr trees over
// (scope, index) references that the interpreter resolves through a
// virtual EvalContext on every evaluation: scope >= 0 walks to the
// scope-th end's component, its port declaration, its export table and
// finally the component's variable vector. CompiledConnector does that
// resolution once, at build time, producing
//   * a flat frame layout  [end0 exports..., end1 exports..., connector
//     vars...] with a precomputed (instance, variable) load target per
//     end-export slot, and
//   * bytecode (expr::ExprProgram) for the guard and every up/down
//     expression, addressing the frame directly.
// Executing a connector is then gather -> run programs -> write back, with
// no virtual calls and no per-reference table walks.
//
// The symbolic Connector stays authoritative for the verifier; this layer
// is rebuilt from it on demand (System::compiled()) and never feeds back.
//
// A second build mode serves the sharded execution subsystem (src/shard/):
// there component variables live in per-shard contiguous frames, so the
// per-slot load/write targets are (frame, offset) pairs — where `frame`
// is an ordinal into the connector's list of involved shard frames —
// instead of (instance, variable) pairs resolved through GlobalState. A
// cross-shard connector typically spans two frames (its home shard plus
// one foreign shard); the representation supports any number.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/connector.hpp"
#include "expr/compile.hpp"

namespace cbip {

class System;
struct GlobalState;

class CompiledConnector {
 public:
  CompiledConnector(const System& system, const Connector& connector);

  /// Placement of one instance's variable block for the sharded build:
  /// which of the connector's frames holds it, and at which base offset.
  struct FramePlacement {
    int frame = 0;
    int base = 0;
  };

  /// Sharded build: every end-export load and down write targets
  /// `frames[place(instance).frame][place(instance).base + var]`. The
  /// GlobalState gather/transfer overloads must not be called on a
  /// connector built this way (and vice versa).
  CompiledConnector(const System& system, const Connector& connector,
                    const std::function<FramePlacement(int instance)>& place);

  /// End-export slots plus connector-local variable slots.
  std::size_t frameSize() const { return static_cast<std::size_t>(frameSize_); }

  /// True when the guard is the literal 1 and never needs evaluation.
  bool guardTrue() const { return guard_.empty(); }

  /// True when the connector moves data (has up or down transfers).
  bool hasTransfer() const { return !ups_.empty() || !downs_.empty(); }

  /// Copies every end-export value from `state` into `frame` and zeroes
  /// the connector-variable slots. `frame.size()` must be `frameSize()`.
  void gather(const GlobalState& state, std::span<Value> frame) const;

  /// Evaluates the guard against a gathered frame (requires !guardTrue()).
  Value evalGuard(std::span<const Value> frame) const { return guard_.run(frame); }

  /// Runs the up transfers, then the down transfers of participating ends,
  /// on `frame`; down results are written back into `state` immediately so
  /// the component sees them (and later downs read them from the frame,
  /// mirroring the interpreter's sequential context exactly).
  void transfer(GlobalState& state, std::span<Value> frame, InteractionMask mask) const;

  /// Sharded-build counterpart of `gather`: copies every end-export value
  /// out of the shard frames into `scratch` and zeroes the
  /// connector-variable slots. `frames[i]` is the frame of the i-th
  /// involved shard (the ordinal the build-time `place` callback
  /// assigned); `scratch.size()` must be `frameSize()`.
  void gather(std::span<const std::span<const Value>> frames, std::span<Value> scratch) const;

  /// Sharded-build counterpart of `transfer`: down results are written
  /// back into the owning shard frames (possibly a foreign shard's)
  /// instead of a GlobalState.
  void transfer(std::span<const std::span<Value>> frames, std::span<Value> scratch,
                InteractionMask mask) const;

 private:
  struct Load {
    int slot = 0;      // scratch-frame offset
    int instance = 0;  // classic build: component instance index
    int var = 0;       // classic build: index into the instance's variables
    int frame = -1;    // sharded build: involved-shard frame ordinal
    int offset = 0;    // sharded build: offset into that frame
  };
  struct Up {
    int targetSlot = 0;
    expr::ExprProgram value;
  };
  struct Down {
    int end = 0;  // participation bit
    int targetSlot = 0;
    int instance = 0;  // classic build (see Load)
    int var = 0;
    int frame = -1;  // sharded build (see Load)
    int offset = 0;
    expr::ExprProgram value;
  };

  void build(const System& system, const Connector& connector,
             const std::function<FramePlacement(int instance)>* place);

  std::int32_t frameSize_ = 0;
  std::vector<Load> loads_;
  expr::ExprProgram guard_;  // empty when trivially true
  std::vector<Up> ups_;
  std::vector<Down> downs_;
};

/// Compiled forms of every connector of a System, built once per System
/// revision (see System::compiled()).
class CompiledSystem {
 public:
  explicit CompiledSystem(const System& system);

  const CompiledConnector& connector(std::size_t ci) const { return connectors_[ci]; }

 private:
  std::vector<CompiledConnector> connectors_;
};

}  // namespace cbip
