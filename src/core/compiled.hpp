// Compiled execution form of a System's connectors.
//
// Connector guards, up transfers and down transfers are Expr trees over
// (scope, index) references that the interpreter resolves through a
// virtual EvalContext on every evaluation: scope >= 0 walks to the
// scope-th end's component, its port declaration, its export table and
// finally the component's variable vector. CompiledConnector does that
// resolution once, at build time, producing
//   * a flat frame layout  [end0 exports..., end1 exports..., connector
//     vars...] with a precomputed (instance, variable) load target per
//     end-export slot, and
//   * bytecode (expr::ExprProgram) for the guard and every up/down
//     expression, addressing the frame directly.
// Executing a connector is then gather -> run programs -> write back, with
// no virtual calls and no per-reference table walks.
//
// The symbolic Connector stays authoritative for the verifier; this layer
// is rebuilt from it on demand (System::compiled()) and never feeds back.
#pragma once

#include <span>
#include <vector>

#include "core/connector.hpp"
#include "expr/compile.hpp"

namespace cbip {

class System;
struct GlobalState;

class CompiledConnector {
 public:
  CompiledConnector(const System& system, const Connector& connector);

  /// End-export slots plus connector-local variable slots.
  std::size_t frameSize() const { return static_cast<std::size_t>(frameSize_); }

  /// True when the guard is the literal 1 and never needs evaluation.
  bool guardTrue() const { return guard_.empty(); }

  /// True when the connector moves data (has up or down transfers).
  bool hasTransfer() const { return !ups_.empty() || !downs_.empty(); }

  /// Copies every end-export value from `state` into `frame` and zeroes
  /// the connector-variable slots. `frame.size()` must be `frameSize()`.
  void gather(const GlobalState& state, std::span<Value> frame) const;

  /// Evaluates the guard against a gathered frame (requires !guardTrue()).
  Value evalGuard(std::span<const Value> frame) const { return guard_.run(frame); }

  /// Runs the up transfers, then the down transfers of participating ends,
  /// on `frame`; down results are written back into `state` immediately so
  /// the component sees them (and later downs read them from the frame,
  /// mirroring the interpreter's sequential context exactly).
  void transfer(GlobalState& state, std::span<Value> frame, InteractionMask mask) const;

 private:
  struct Load {
    int slot = 0;      // frame offset
    int instance = 0;  // component instance index
    int var = 0;       // index into the component's variable vector
  };
  struct Up {
    int targetSlot = 0;
    expr::ExprProgram value;
  };
  struct Down {
    int end = 0;  // participation bit
    int targetSlot = 0;
    int instance = 0;
    int var = 0;
    expr::ExprProgram value;
  };

  std::int32_t frameSize_ = 0;
  std::vector<Load> loads_;
  expr::ExprProgram guard_;  // empty when trivially true
  std::vector<Up> ups_;
  std::vector<Down> downs_;
};

/// Compiled forms of every connector of a System, built once per System
/// revision (see System::compiled()).
class CompiledSystem {
 public:
  explicit CompiledSystem(const System& system);

  const CompiledConnector& connector(std::size_t ci) const { return connectors_[ci]; }

 private:
  std::vector<CompiledConnector> connectors_;
};

}  // namespace cbip
