// Compiled execution form of a System's connectors.
//
// Connector guards, up transfers and down transfers are Expr trees over
// (scope, index) references that the interpreter resolves through a
// virtual EvalContext on every evaluation: scope >= 0 walks to the
// scope-th end's component, its port declaration, its export table and
// finally the component's variable vector. CompiledConnector does that
// resolution once, at build time, producing
//   * a flat frame layout  [end0 exports..., end1 exports..., connector
//     vars...] with a precomputed (instance, variable) load target per
//     end-export slot, and
//   * bytecode (expr::ExprProgram) for the guard and every up/down
//     expression, addressing the frame directly.
// Executing a connector is then gather -> run programs -> write back, with
// no virtual calls and no per-reference table walks.
//
// The symbolic Connector stays authoritative for the verifier; this layer
// is rebuilt from it on demand (System::compiled()) and never feeds back.
//
// A second build mode serves the sharded execution subsystem (src/shard/):
// there component variables live in per-shard contiguous frames, so the
// per-slot load/write targets are (frame, offset) pairs — where `frame`
// is an ordinal into the connector's list of involved shard frames —
// instead of (instance, variable) pairs resolved through GlobalState. A
// cross-shard connector typically spans two frames (its home shard plus
// one foreign shard); the representation supports any number.
//
// Batched enabled-set scanning: beyond the per-interaction execution form,
// each connector also owns a *scan* form used by the engines' enabled-set
// refresh. scanEnabled() gathers every participant's full variable block
// once into one contiguous scan frame, evaluates all transition guards of
// all ends plus the connector guard over that frame in a single bytecode
// pass (ExprProgram::runBatch, frame-base-relative addressing), and then
// derives the enabled interaction masks with pure bit operations over the
// build-time-cached feasible-mask list — replacing the scalar path's
// per-end vector allocations, per-scan feasibleMasks() rebuild and
// per-mask end loop. The scalar path stays available behind the
// CBIP_NO_BATCH_SCAN escape hatch (setBatchScanEnabled); both paths, and
// the interpreter, produce bit-identical enabled sets.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/connector.hpp"
#include "expr/compile.hpp"

namespace cbip {

class System;
struct GlobalState;

/// True when the engines' enabled-set refresh should use the batched scan
/// (scanEnabled) instead of the scalar per-end/per-mask path; defaults to
/// true unless the CBIP_NO_BATCH_SCAN environment variable is set to a
/// non-empty value other than "0". Only consulted when compilation itself
/// is enabled — the interpreter escape hatch has no batch form.
bool batchScanEnabled();

/// Overrides the batch-scan switch (differential tests and benchmarks
/// toggle this to compare the two scan paths in one process).
void setBatchScanEnabled(bool on);

class CompiledConnector {
 public:
  CompiledConnector(const System& system, const Connector& connector);

  /// Placement of one instance's variable block for the sharded build:
  /// which of the connector's frames holds it, and at which base offset.
  struct FramePlacement {
    int frame = 0;
    int base = 0;
  };

  /// Sharded build: every end-export load and down write targets
  /// `frames[place(instance).frame][place(instance).base + var]`. The
  /// GlobalState gather/transfer overloads must not be called on a
  /// connector built this way (and vice versa).
  CompiledConnector(const System& system, const Connector& connector,
                    const std::function<FramePlacement(int instance)>& place);

  /// End-export slots plus connector-local variable slots.
  std::size_t frameSize() const { return static_cast<std::size_t>(frameSize_); }

  /// True when the guard is the literal 1 and never needs evaluation.
  bool guardTrue() const { return guard_.empty(); }

  /// True when the connector moves data (has up or down transfers).
  bool hasTransfer() const { return !ups_.empty() || !downs_.empty(); }

  /// Copies every end-export value from `state` into `frame` and zeroes
  /// the connector-variable slots. `frame.size()` must be `frameSize()`.
  void gather(const GlobalState& state, std::span<Value> frame) const;

  /// Evaluates the guard against a gathered frame (requires !guardTrue()).
  Value evalGuard(std::span<const Value> frame) const { return guard_.run(frame); }

  /// Runs the up transfers, then the down transfers of participating ends,
  /// on `frame`; down results are written back into `state` immediately so
  /// the component sees them (and later downs read them from the frame,
  /// mirroring the interpreter's sequential context exactly). With fusion
  /// enabled (expr::fusionEnabled) the whole up block is one fused program
  /// dispatch (shared subexpressions computed once); downs stay separate —
  /// their execution set depends on the interaction mask.
  void transfer(GlobalState& state, std::span<Value> frame, InteractionMask mask) const;

  /// Sharded-build counterpart of `gather`: copies every end-export value
  /// out of the shard frames into `scratch` and zeroes the
  /// connector-variable slots. `frames[i]` is the frame of the i-th
  /// involved shard (the ordinal the build-time `place` callback
  /// assigned); `scratch.size()` must be `frameSize()`.
  void gather(std::span<const std::span<const Value>> frames, std::span<Value> scratch) const;

  /// Sharded-build counterpart of `transfer`: down results are written
  /// back into the owning shard frames (possibly a foreign shard's)
  /// instead of a GlobalState.
  void transfer(std::span<const std::span<Value>> frames, std::span<Value> scratch,
                InteractionMask mask) const;

  /// Feasible interaction masks, increasing mask order (cached at build
  /// time; element-wise equal to Connector::feasibleMasks()). Classic
  /// build only — like the whole scan form, this is empty for the sharded
  /// build mode, whose scans run through ShardedSystem's own caches.
  const std::vector<InteractionMask>& masks() const { return masks_; }

  /// Reusable buffers for scanEnabled; allocate one per scanning thread
  /// and pass it to every call so steady-state scans never allocate.
  struct ScanScratch {
    std::vector<Value> frame;                      // gathered scan frame
    std::vector<expr::BatchOp> ops;                // transition-guard batch
    std::vector<Value> results;                    // runBatch outputs
    std::vector<const std::vector<int>*> endTis;   // per end: transitionsFrom list
    std::vector<char> trivial;                     // per (end, transition): guard true
    std::vector<std::vector<int>> endEnabled;      // per end: enabled transitions
    std::vector<std::uint64_t> maskBits;           // bit i <-> masks()[i] enabled
  };

  /// Batched enabled-set scan (classic build only). Gathers every end's
  /// full variable block once into `s.frame`, evaluates all transition
  /// guards of all ends in one ExprProgram::runBatch pass (base-relative,
  /// one base per end) and the connector guard at most once (lazily, at
  /// the first port-feasible mask, exactly where the scalar path evaluates
  /// it), then fills `s.maskBits` (bit i set iff masks()[i] is enabled)
  /// and `s.endEnabled` (per end, the enabled transition indices in
  /// transition order). Returns true iff some mask is enabled. Guard
  /// evaluation order — end-ascending, then transition order, then the
  /// shared connector guard — matches the scalar path, so on well-formed
  /// states (every component's variable vector covering its type) which
  /// EvalError a doomed scan raises first is identical. On malformed
  /// states the paths differ mechanically: the gather validates every
  /// end's block size up front and throws, where the scalar path checks
  /// per guard evaluation (and the classic export gather not at all).
  bool scanEnabled(const System& system, const GlobalState& state, ScanScratch& s) const;

 private:
  struct Load {
    int slot = 0;      // scratch-frame offset
    int instance = 0;  // classic build: component instance index
    int var = 0;       // classic build: index into the instance's variables
    int frame = -1;    // sharded build: involved-shard frame ordinal
    int offset = 0;    // sharded build: offset into that frame
  };
  struct Up {
    int targetSlot = 0;
    expr::ExprProgram value;
  };
  struct Down {
    int end = 0;  // participation bit
    int targetSlot = 0;
    int instance = 0;  // classic build (see Load)
    int var = 0;
    int frame = -1;  // sharded build (see Load)
    int offset = 0;
    expr::ExprProgram value;
  };

  void build(const System& system, const Connector& connector,
             const std::function<FramePlacement(int instance)>* place);
  void gatherScan(const GlobalState& state, std::vector<Value>& frame) const;

  /// Scan-form placement of one end: its component's full variable block
  /// in the scan frame (ends sharing an instance get separate read-only
  /// blocks — the scan never writes back).
  struct ScanEnd {
    int instance = 0;
    int port = 0;
    std::int32_t base = 0;  // offset of the block in the scan frame
    int varCount = 0;
  };

  std::int32_t frameSize_ = 0;
  std::vector<Load> loads_;
  expr::ExprProgram guard_;  // empty when trivially true
  std::vector<Up> ups_;
  expr::ExprProgram upBlock_;  // all ups fused into one program (empty when no ups)
  std::vector<Down> downs_;

  // Scan form (see scanEnabled).
  std::vector<InteractionMask> masks_;
  std::vector<ScanEnd> scanEnds_;
  std::int32_t scanVarBase_ = 0;    // first connector-variable slot
  std::int32_t scanFrameSize_ = 0;  // variable blocks + connector var slots
  expr::ExprProgram scanGuard_;     // guard against the scan layout; empty when true
};

/// Compiled forms of every connector of a System, built once per System
/// revision (see System::compiled()).
class CompiledSystem {
 public:
  explicit CompiledSystem(const System& system);

  const CompiledConnector& connector(std::size_t ci) const { return connectors_[ci]; }

 private:
  std::vector<CompiledConnector> connectors_;
};

}  // namespace cbip
