// Glue expressiveness constructions (monograph Section 5.3.2, results of
// Bliudze & Sifakis [5]).
//
// The theorem: BIP glue (interactions + priorities) is as expressive as
// the universal glue, and *interactions alone* are strictly weaker — to
// realize the same coordination they need additional behaviour (extra
// components), i.e. they are only "weakly" expressive.
//
// This module makes the gap measurable on the canonical example used in
// the monograph (Section 5.3): broadcast. `broadcastWithPriorities`
// realizes an atomic maximal broadcast with one trigger connector plus the
// maximal-progress priority and zero extra components. `broadcastRendezvousOnly`
// realizes the same observable coordination with rendezvous-only glue,
// which forces an auxiliary arbiter component, extra connectors, and a
// multi-step protocol per broadcast. Benchmarks (E8) report component,
// connector, state-space and steps-per-broadcast counts for both.
//
// Common behaviour: one Sender and n Receivers. Each receiver alternates
// between `ready` and `busy` (a `work` tau step returns it to ready).
// A broadcast must atomically deliver to exactly the ready receivers.
// Receivers count deliveries in `got`; the sender counts rounds in `sent`.
#pragma once

#include "core/system.hpp"

namespace cbip {

struct BroadcastModel {
  System system;
  /// Number of auxiliary (non sender/receiver) component instances.
  int auxiliaryComponents = 0;
  /// Engine steps needed per completed broadcast round (1 for the
  /// priority-based version; n+1 for the polling protocol).
  int stepsPerRound = 1;
};

/// Trigger connector + maximal progress: one interaction per round.
/// `counters` adds the sent/got bookkeeping variables (unbounded; disable
/// for exhaustive exploration).
BroadcastModel broadcastWithPriorities(int receivers, bool counters = true);

/// Rendezvous-only emulation: a polling arbiter component queries each
/// receiver's readiness in sequence, then closes the round; delivery
/// happens during polling (exactly the ready receivers receive).
BroadcastModel broadcastRendezvousOnly(int receivers, bool counters = true);

}  // namespace cbip
