#include "core/flatten.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cbip {

namespace {

struct VarMaps {
  std::vector<int> locVar;                 // instance -> fused var index
  std::vector<std::vector<int>> compVar;   // instance -> local var -> fused
  std::vector<std::vector<int>> connVar;   // connector -> conn var -> fused
};

Expr remapComponent(const Expr& e, const VarMaps& maps, int instance) {
  return e.mapVars([&maps, instance](expr::VarRef r) {
    require(r.scope == 0, "fuse: component expression with non-local scope");
    return expr::VarRef{0, maps.compVar[static_cast<std::size_t>(instance)]
                               [static_cast<std::size_t>(r.index)]};
  });
}

Expr remapConnector(const Expr& e, const System& system, const Connector& c, int connectorIdx,
                    const VarMaps& maps) {
  return e.mapVars([&](expr::VarRef r) {
    if (r.scope == expr::kConnectorScope) {
      return expr::VarRef{0, maps.connVar[static_cast<std::size_t>(connectorIdx)]
                                 [static_cast<std::size_t>(r.index)]};
    }
    const ConnectorEnd& end = c.end(static_cast<std::size_t>(r.scope));
    const AtomicType& type =
        *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    const PortDecl& port = type.port(end.port.port);
    const int localVar = port.exports[static_cast<std::size_t>(r.index)];
    return expr::VarRef{0, maps.compVar[static_cast<std::size_t>(end.port.instance)]
                               [static_cast<std::size_t>(localVar)]};
  });
}

/// Enabling condition of one (interaction, transition tuple): location
/// tests + transition guards + connector guard, all over fused variables.
Expr tupleGuard(const System& system, const Connector& c, int connectorIdx,
                const std::vector<int>& ends, const std::vector<const Transition*>& tuple,
                const VarMaps& maps) {
  Expr g = Expr::top();
  bool first = true;
  auto conjoin = [&g, &first](Expr e) {
    if (e.isTrue()) return;
    g = first ? std::move(e) : (std::move(g) && std::move(e));
    first = false;
  };
  for (std::size_t k = 0; k < ends.size(); ++k) {
    const ConnectorEnd& end = c.end(static_cast<std::size_t>(ends[k]));
    const int inst = end.port.instance;
    conjoin(Expr::local(maps.locVar[static_cast<std::size_t>(inst)]) ==
            Expr::lit(tuple[k]->from));
    conjoin(remapComponent(tuple[k]->guard, maps, inst));
  }
  if (!c.guard().isTrue()) conjoin(remapConnector(c.guard(), system, c, connectorIdx, maps));
  return first ? Expr::top() : g;
}

}  // namespace

FusedComponent fuse(const System& system) {
  system.validate();
  auto fusedType = std::make_shared<AtomicType>("fused");
  const int main = fusedType->addLocation("main");
  fusedType->setInitialLocation(main);

  VarMaps maps;
  maps.locVar.resize(system.instanceCount());
  maps.compVar.resize(system.instanceCount());
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const System::Instance& inst = system.instance(i);
    maps.locVar[i] =
        fusedType->addVariable(inst.name + "@loc", inst.type->initialLocation());
    maps.compVar[i].resize(inst.type->variableCount());
    for (std::size_t v = 0; v < inst.type->variableCount(); ++v) {
      const VarDecl& d = inst.type->variable(static_cast<int>(v));
      maps.compVar[i][v] = fusedType->addVariable(inst.name + "." + d.name, d.init);
    }
  }
  maps.connVar.resize(system.connectorCount());
  for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
    const Connector& c = system.connector(ci);
    maps.connVar[ci].resize(c.variableCount());
    for (std::size_t v = 0; v < c.variableCount(); ++v) {
      maps.connVar[ci][v] =
          fusedType->addVariable(c.name() + "#" + c.variableName(v), 0);
    }
  }

  // Enumerate interaction instances: (connector, mask) with all transition
  // tuples, remembering bare guards for the priority encoding.
  struct FusedTransition {
    int connector;
    InteractionMask mask;
    Expr guard;
    std::vector<expr::Assign> actions;
    std::string label;
  };
  std::vector<FusedTransition> work;
  // (connector, mask) -> disjunction of bare tuple guards (for priorities).
  struct InteractionGuard {
    int connector;
    InteractionMask mask;
    Expr enabled;
    bool any = false;
  };
  std::vector<InteractionGuard> interactionGuards;

  for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
    const Connector& c = system.connector(ci);
    const std::vector<std::string> labels = system.endLabels(c);
    for (InteractionMask mask : c.feasibleMasks()) {
      std::vector<int> ends;
      std::vector<std::vector<const Transition*>> options;
      for (std::size_t e = 0; e < c.endCount(); ++e) {
        if ((mask & (InteractionMask{1} << e)) == 0) continue;
        ends.push_back(static_cast<int>(e));
        const PortRef& p = c.end(e).port;
        const AtomicType& type =
            *system.instance(static_cast<std::size_t>(p.instance)).type;
        std::vector<const Transition*> ts;
        for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
          const Transition& t = type.transition(static_cast<int>(ti));
          if (t.port == p.port) ts.push_back(&t);
        }
        options.push_back(std::move(ts));
      }
      const bool feasible =
          std::none_of(options.begin(), options.end(),
                       [](const auto& ts) { return ts.empty(); });
      InteractionGuard ig{static_cast<int>(ci), mask, Expr::lit(0), false};
      if (feasible) {
        // Cartesian product over per-end transition options.
        std::vector<std::size_t> pick(options.size(), 0);
        while (true) {
          std::vector<const Transition*> tuple;
          tuple.reserve(options.size());
          for (std::size_t k = 0; k < options.size(); ++k) tuple.push_back(options[k][pick[k]]);
          Expr guard = tupleGuard(system, c, static_cast<int>(ci), ends, tuple, maps);
          ig.enabled = ig.any ? (ig.enabled || guard) : guard;
          ig.any = true;

          FusedTransition ft;
          ft.connector = static_cast<int>(ci);
          ft.mask = mask;
          ft.guard = guard;
          ft.label = c.maskLabel(mask, labels);
          // Data transfer first (up, then down to participating ends)...
          for (const expr::Assign& up : c.ups()) {
            ft.actions.push_back(expr::Assign{
                expr::VarRef{0, maps.connVar[ci][static_cast<std::size_t>(up.target.index)]},
                remapConnector(up.value, system, c, static_cast<int>(ci), maps)});
          }
          for (const DownAssign& d : c.downs()) {
            if ((mask & (InteractionMask{1} << static_cast<unsigned>(d.end))) == 0) continue;
            const ConnectorEnd& end = c.end(static_cast<std::size_t>(d.end));
            const AtomicType& type =
                *system.instance(static_cast<std::size_t>(end.port.instance)).type;
            const int localVar =
                type.port(end.port.port).exports[static_cast<std::size_t>(d.exportIndex)];
            ft.actions.push_back(expr::Assign{
                expr::VarRef{0, maps.compVar[static_cast<std::size_t>(end.port.instance)]
                                    [static_cast<std::size_t>(localVar)]},
                remapConnector(d.value, system, c, static_cast<int>(ci), maps)});
          }
          // ...then the participants' actions and location moves.
          for (std::size_t k = 0; k < ends.size(); ++k) {
            const ConnectorEnd& end = c.end(static_cast<std::size_t>(ends[k]));
            const int inst = end.port.instance;
            for (const expr::Assign& a : tuple[k]->actions) {
              ft.actions.push_back(expr::Assign{
                  expr::VarRef{0, maps.compVar[static_cast<std::size_t>(inst)]
                                      [static_cast<std::size_t>(a.target.index)]},
                  remapComponent(a.value, maps, inst)});
            }
            ft.actions.push_back(
                expr::Assign{expr::VarRef{0, maps.locVar[static_cast<std::size_t>(inst)]},
                             Expr::lit(tuple[k]->to)});
          }
          work.push_back(std::move(ft));

          std::size_t k = 0;
          while (k < pick.size()) {
            if (++pick[k] < options[k].size()) break;
            pick[k] = 0;
            ++k;
          }
          if (k == pick.size()) break;
        }
      }
      interactionGuards.push_back(std::move(ig));
    }
  }

  // Statically encode priorities: strengthen dominated guards.
  for (FusedTransition& ft : work) {
    Expr negations = Expr::top();
    bool strengthened = false;
    auto dominateBy = [&](const Expr& high) {
      negations = strengthened ? (std::move(negations) && !high) : !high;
      strengthened = true;
    };
    if (system.maximalProgress()) {
      for (const auto& ig : interactionGuards) {
        if (!ig.any || ig.connector != ft.connector) continue;
        if (ig.mask != ft.mask && (ft.mask & ig.mask) == ft.mask) dominateBy(ig.enabled);
      }
    }
    const std::string& lowName =
        system.connector(static_cast<std::size_t>(ft.connector)).name();
    for (const PriorityRule& rule : system.priorities()) {
      if (rule.low != lowName) continue;
      for (const auto& ig : interactionGuards) {
        if (!ig.any ||
            system.connector(static_cast<std::size_t>(ig.connector)).name() != rule.high) {
          continue;
        }
        Expr high = ig.enabled;
        if (rule.when.has_value()) {
          Expr when = rule.when->mapVars([&maps](expr::VarRef r) {
            return expr::VarRef{0, maps.compVar[static_cast<std::size_t>(r.scope)]
                                       [static_cast<std::size_t>(r.index)]};
          });
          high = std::move(when) && std::move(high);
        }
        dominateBy(high);
      }
    }
    if (strengthened) ft.guard = ft.guard && negations;
  }

  // Emit ports and transitions (guards simplified: the priority encoding
  // introduces many constant subterms).
  FusedComponent out;
  for (FusedTransition& ft : work) {
    const int port = fusedType->addPort(ft.label);
    out.portLabels.push_back(ft.label);
    fusedType->addTransition(main, port, ft.guard.simplified(), std::move(ft.actions), main);
  }
  // Internal transitions of every instance stay internal.
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const AtomicType& type = *system.instance(i).type;
    for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
      const Transition& t = type.transition(static_cast<int>(ti));
      if (t.port != kInternalPort) continue;
      Expr guard = Expr::local(maps.locVar[i]) == Expr::lit(t.from);
      if (!t.guard.isTrue()) {
        guard = std::move(guard) && remapComponent(t.guard, maps, static_cast<int>(i));
      }
      std::vector<expr::Assign> actions;
      for (const expr::Assign& a : t.actions) {
        actions.push_back(
            expr::Assign{expr::VarRef{0, maps.compVar[i][static_cast<std::size_t>(a.target.index)]},
                         remapComponent(a.value, maps, static_cast<int>(i))});
      }
      actions.push_back(expr::Assign{expr::VarRef{0, maps.locVar[i]}, Expr::lit(t.to)});
      fusedType->addTransition(main, kInternalPort, std::move(guard), std::move(actions), main);
    }
  }

  fusedType->validate();
  out.type = std::move(fusedType);
  return out;
}

std::vector<std::string> enabledLabels(const FusedComponent& fused, const AtomicState& state) {
  std::vector<std::string> out;
  const AtomicType& type = *fused.type;
  for (std::size_t p = 0; p < type.portCount(); ++p) {
    if (portEnabled(type, state, static_cast<int>(p))) {
      out.push_back(fused.portLabels[p]);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string step(const FusedComponent& fused, AtomicState& state, Rng& rng) {
  const AtomicType& type = *fused.type;
  std::vector<int> enabled;  // transition indices over all ports
  for (std::size_t p = 0; p < type.portCount(); ++p) {
    for (int ti : enabledTransitions(type, state, static_cast<int>(p))) enabled.push_back(ti);
  }
  if (enabled.empty()) return {};
  const int pick = enabled[rng.index(enabled.size())];
  const Transition& t = type.transition(pick);
  fire(type, state, pick);
  runInternal(type, state);
  return fused.portLabels[static_cast<std::size_t>(t.port)];
}

}  // namespace cbip
