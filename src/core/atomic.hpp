// Atomic BIP components: automata extended with integer data.
//
// An atomic component (monograph Section 5.3, [30]) is a transition system
// with:
//   * named control locations;
//   * a table of integer variables with initial values;
//   * ports, each optionally exporting a subset of the variables (the data
//     visible to connectors during an interaction);
//   * transitions `loc --[port, guard / actions]--> loc'`. A transition
//     labelled by the internal port (kInternalPort) is a tau step executed
//     autonomously by the component, with priority below every interaction.
//
// AtomicType is the immutable "type" (shared between instances and between
// the engines and the verifier); AtomicState is the mutable runtime state.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/compile.hpp"
#include "expr/expr.hpp"

namespace cbip {

using expr::Expr;
using expr::Value;

/// Port index used to label internal (tau) transitions.
inline constexpr int kInternalPort = -1;

struct VarDecl {
  std::string name;
  Value init = 0;
};

struct PortDecl {
  std::string name;
  /// Indices (into the component's variable table) of variables exported
  /// through this port; connectors address them by position in this list.
  std::vector<int> exports;
};

struct Transition {
  int from = 0;
  int port = kInternalPort;
  Expr guard = Expr::top();  // over local variables (scope 0)
  std::vector<expr::Assign> actions;
  int to = 0;
};

/// Bytecode form of one transition, evaluated directly against the
/// component's variable vector (frame slot = variable index). The symbolic
/// Transition stays authoritative for the verifier; this is the execution
/// form (see expr/compile.hpp).
///
/// Three program shapes serve three dispatch sites:
///   * `guard` — read-only guard program for enabled-set scans (and the
///     CBIP_NO_FUSE escape hatch);
///   * `fused` — the whole guarded command in one program (guard prefix,
///     conditional skip, action suffix, CSE across the boundary); tryFire
///     runs it as a single dispatch;
///   * `actionBlock` — the action suffix alone (intra-block CSE), for
///     unconditional fires where the guard was established earlier, on a
///     possibly different frame (post-transfer interaction execution).
/// `from`/`to` mirror the symbolic transition so the hot dispatches never
/// touch the Expr-tree side at all.
struct CompiledTransition {
  expr::ExprProgram guard;  // empty when the guard is trivially true
  struct Action {
    int target = 0;
    expr::ExprProgram value;
  };
  std::vector<Action> actions;    // unfused per-action programs (escape hatch)
  expr::ExprProgram fused;        // empty iff guard trivially true and no actions
  expr::ExprProgram actionBlock;  // empty when the transition has no actions
  int from = 0;
  int to = 0;
};

/// Immutable description of an atomic component type. Build with the
/// add* methods, then call `validate()` (done automatically by System).
class AtomicType {
 public:
  explicit AtomicType(std::string name) : name_(std::move(name)) {}

  // ---- construction ----
  int addLocation(const std::string& name);
  int addVariable(const std::string& name, Value init = 0);
  int addPort(const std::string& name, std::vector<int> exports = {});
  /// Adds a transition; `port` may be kInternalPort for a tau step.
  void addTransition(int from, int port, Expr guard, std::vector<expr::Assign> actions, int to);
  /// Convenience: transition without data.
  void addTransition(int from, int port, int to) {
    addTransition(from, port, Expr::top(), {}, to);
  }
  void setInitialLocation(int loc);

  /// Checks structural consistency (indices in range, names unique);
  /// throws ModelError on violation.
  void validate() const;

  // ---- queries ----
  const std::string& name() const { return name_; }
  std::size_t locationCount() const { return locations_.size(); }
  std::size_t variableCount() const { return variables_.size(); }
  std::size_t portCount() const { return ports_.size(); }
  std::size_t transitionCount() const { return transitions_.size(); }
  const std::string& locationName(int i) const;
  const VarDecl& variable(int i) const;
  const PortDecl& port(int i) const;
  const Transition& transition(int i) const;
  int initialLocation() const { return initial_; }

  /// Index lookups; throw ModelError when the name is unknown.
  int locationIndex(const std::string& name) const;
  int variableIndex(const std::string& name) const;
  int portIndex(const std::string& name) const;
  /// Like the above but returning nullopt instead of throwing.
  std::optional<int> findLocation(const std::string& name) const;
  std::optional<int> findVariable(const std::string& name) const;
  std::optional<int> findPort(const std::string& name) const;

  /// Transitions leaving `location` labelled by `port`.
  const std::vector<int>& transitionsFrom(int location, int port) const;

  /// Bytecode form of transition `i`. All transitions are lowered on first
  /// use; `validate()` forces the build so that construction-time callers
  /// (System::validate, the engine constructors) finish it while still
  /// single-threaded and worker threads only ever read.
  const CompiledTransition& compiledTransition(int i) const;

  /// True when the lazily-built structures the engines read concurrently
  /// — the transitionsFrom index and, when compilation is enabled, the
  /// compiled transition programs — are built (see System::indicesWarm).
  bool indicesWarm() const;

 private:
  void rebuildIndexIfNeeded() const;
  void compileIfNeeded() const;

  std::string name_;
  std::vector<std::string> locations_;
  std::vector<VarDecl> variables_;
  std::vector<PortDecl> ports_;
  std::vector<Transition> transitions_;
  int initial_ = 0;

  // location -> (port+1) -> transition indices; slot 0 holds internal
  // transitions. Rebuilt lazily; cleared whenever a transition is added.
  mutable std::vector<std::vector<std::vector<int>>> bySource_;

  // Bytecode per transition; invalidated whenever a transition is added.
  // Types are shared across Systems (AtomicTypePtr), so the lazy build is
  // mutex-guarded and published through the atomic flag — concurrent
  // first-use from two threads is safe. (The atomic member makes the type
  // non-copyable; types are always held by shared_ptr.)
  mutable std::vector<CompiledTransition> compiled_;
  mutable std::atomic<bool> compiledBuilt_{false};
};

using AtomicTypePtr = std::shared_ptr<const AtomicType>;

/// Runtime state of one atomic component instance.
struct AtomicState {
  int location = 0;
  std::vector<Value> vars;

  friend bool operator==(const AtomicState&, const AtomicState&) = default;
};

/// Initial state of a component type (initial location, initial values).
AtomicState initialState(const AtomicType& type);

/// True iff transition `ti`'s guard holds in `state` (does not check the
/// location). Evaluates the compiled guard program unless compilation is
/// disabled (expr::compilationEnabled()).
bool guardHolds(const AtomicType& type, const AtomicState& state, int ti);

/// Interpreted variant for callers holding a Transition that may not
/// belong to `type`'s transition table (cold paths only).
bool guardHolds(const AtomicType& type, const AtomicState& state, const Transition& t);

/// Indices of enabled transitions from `state` labelled by `port`.
std::vector<int> enabledTransitions(const AtomicType& type, const AtomicState& state, int port);

/// Scratch-reuse overload: clears `out`, then appends the enabled
/// transition indices (engine-hot; a reused buffer keeps the per-scan
/// allocation out of the steady state).
void enabledTransitions(const AtomicType& type, const AtomicState& state, int port,
                        std::vector<int>& out);

/// True iff some transition labelled `port` is enabled in `state`.
bool portEnabled(const AtomicType& type, const AtomicState& state, int port);

/// Fires transition `ti` (assumed enabled): runs actions (compiled unless
/// disabled; one fused action-block dispatch unless fusion is disabled),
/// moves location.
void fire(const AtomicType& type, AtomicState& state, int ti);

/// Interpreted variant (see the guardHolds overloads).
void fire(const AtomicType& type, AtomicState& state, const Transition& t);

/// Guard-then-fire as one operation: evaluates transition `ti`'s guard in
/// `state` and, when it holds, fires the transition; returns whether it
/// fired. On the compiled path with fusion enabled this is a *single*
/// dispatch of the fused guard+action program (shared subexpressions
/// computed once); the unfused and interpreted paths run guard and
/// actions separately, bit-identically. `state.location` must be the
/// transition's source location.
bool tryFire(const AtomicType& type, AtomicState& state, int ti);

/// Runs enabled internal (tau) transitions to quiescence, choosing the
/// lowest-index enabled one each step (guards after the first enabled
/// transition of a step are not evaluated — each candidate is one tryFire
/// dispatch, identical across all evaluation paths). Throws EvalError if
/// more than `maxSteps` internal steps occur (divergence guard).
void runInternal(const AtomicType& type, AtomicState& state, int maxSteps = 10'000);

}  // namespace cbip
