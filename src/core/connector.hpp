// BIP connectors: structured multiparty interactions.
//
// A connector attaches to a set of component ports ("ends"). Each end is
// either a *trigger* (can initiate the interaction) or a *synchron* (may
// only join). The feasible interactions of a connector are the complete
// subsets of its ends (monograph Section 1.2 / the BIP connector algebra):
//   * if the connector has at least one trigger, every non-empty subset
//     containing a trigger is an interaction (broadcast-like semantics);
//   * if all ends are synchrons, the only interaction is the full set
//     (strong rendezvous).
//
// Data transfer happens in two phases, as in the BIP engine:
//   * "up":   connector-local variables are computed from port variables;
//   * "down": participating ports' exported variables are written back
//             from port variables and connector variables.
// The connector guard is evaluated over port variables before transfer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expr.hpp"

namespace cbip {

using expr::Expr;
using expr::Value;

/// Reference to the `port`-th port of the `instance`-th component instance
/// of a System.
struct PortRef {
  int instance = 0;
  int port = 0;
  friend bool operator==(const PortRef&, const PortRef&) = default;
};

struct ConnectorEnd {
  PortRef port;
  bool trigger = false;
};

/// Bit mask over a connector's ends; end i participates iff bit i is set.
using InteractionMask = std::uint64_t;

/// Writes back the value of expression `value` into exported variable
/// `exportIndex` of end `end` (skipped when the end does not participate
/// in the chosen interaction).
struct DownAssign {
  int end = 0;
  int exportIndex = 0;
  Expr value;  // scopes: end positions >= 0, connector vars = kConnectorScope
};

class Connector {
 public:
  Connector() = default;
  explicit Connector(std::string name) : name_(std::move(name)) {}

  // ---- construction ----
  /// Adds an end; returns its position (the scope used in expressions).
  int addEnd(PortRef port, bool trigger = false);
  int addSynchron(PortRef port) { return addEnd(port, false); }
  int addTrigger(PortRef port) { return addEnd(port, true); }
  /// Adds a connector-local variable, returns its index.
  int addVariable(const std::string& name);
  /// Guard over port variables; defaults to true.
  void setGuard(Expr guard) { guard_ = std::move(guard); }
  /// Up action: connectorVar := value(port variables).
  void addUp(int connectorVar, Expr value);
  /// Down action: end.export := value(port vars, connector vars).
  void addDown(int end, int exportIndex, Expr value);

  // ---- queries ----
  const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }
  std::size_t endCount() const { return ends_.size(); }
  const ConnectorEnd& end(std::size_t i) const { return ends_[i]; }
  const std::vector<ConnectorEnd>& ends() const { return ends_; }
  std::size_t variableCount() const { return vars_.size(); }
  const std::string& variableName(std::size_t i) const { return vars_[i]; }
  const Expr& guard() const { return guard_; }
  const std::vector<expr::Assign>& ups() const { return ups_; }
  const std::vector<DownAssign>& downs() const { return downs_; }
  bool hasTrigger() const;

  /// All feasible interaction masks, in increasing mask order.
  std::vector<InteractionMask> feasibleMasks() const;

  /// The full-participation mask.
  InteractionMask fullMask() const {
    return ends_.empty() ? 0 : (InteractionMask{1} << ends_.size()) - 1;
  }

  /// Human-readable name of an interaction, e.g. "sync{a.p, b.q}".
  std::string maskLabel(InteractionMask mask,
                        const std::vector<std::string>& endLabels) const;

 private:
  std::string name_;
  std::vector<ConnectorEnd> ends_;
  std::vector<std::string> vars_;
  Expr guard_ = Expr::top();
  std::vector<expr::Assign> ups_;    // targets have scope kConnectorScope
  std::vector<DownAssign> downs_;
};

/// Convenience constructor: strong rendezvous of the given ports.
Connector rendezvous(std::string name, std::vector<PortRef> ports);

/// Convenience constructor: broadcast with `sender` as trigger and the
/// rest as synchrons.
Connector broadcast(std::string name, PortRef sender, std::vector<PortRef> receivers);

}  // namespace cbip
