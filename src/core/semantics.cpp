#include "core/semantics.hpp"

#include <algorithm>
#include <bit>
#include <optional>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cbip {

namespace {

// Telemetry (src/obs): which scan path served each connector refresh, and
// how large the incremental cache's per-step dirty sets run. Counts only,
// never steers — enabled sets are bit-identical on every path.
const obs::Counter g_scanBatch("scan.batch.calls");
const obs::Counter g_scanScalar("scan.scalar.calls");
const obs::Counter g_scanInterp("scan.interp.calls");
const obs::Counter g_cacheUpdates("cache.updates");
const obs::Counter g_cacheRecomputes("cache.recomputes");
const obs::Histogram g_cacheDirty("cache.dirty_connectors");

/// Resolves connector expressions against a global state: scope >= 0 is
/// the scope-th end's exported variable, kConnectorScope the connector's
/// local variables.
class InteractionContext final : public expr::EvalContext {
 public:
  InteractionContext(const System& system, const Connector& connector, GlobalState& state,
                     std::vector<Value>& connectorVars)
      : system_(&system), connector_(&connector), state_(&state), vars_(&connectorVars) {}

  Value read(expr::VarRef ref) const override {
    if (ref.scope == expr::kConnectorScope) {
      requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < vars_->size(),
                  "connector variable out of range");
      return (*vars_)[static_cast<std::size_t>(ref.index)];
    }
    return componentVar(ref);
  }

  void write(expr::VarRef ref, Value value) override {
    if (ref.scope == expr::kConnectorScope) {
      requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < vars_->size(),
                  "connector variable out of range");
      (*vars_)[static_cast<std::size_t>(ref.index)] = value;
      return;
    }
    componentVar(ref) = value;
  }

 private:
  Value& componentVar(expr::VarRef ref) const {
    requireEval(ref.scope >= 0 && static_cast<std::size_t>(ref.scope) < connector_->endCount(),
                "connector expression: end scope out of range");
    const ConnectorEnd& end = connector_->end(static_cast<std::size_t>(ref.scope));
    const AtomicType& type =
        *system_->instance(static_cast<std::size_t>(end.port.instance)).type;
    const PortDecl& port = type.port(end.port.port);
    requireEval(ref.index >= 0 && static_cast<std::size_t>(ref.index) < port.exports.size(),
                "connector expression: export index out of range");
    AtomicState& comp = state_->components[static_cast<std::size_t>(end.port.instance)];
    return comp.vars[static_cast<std::size_t>(port.exports[static_cast<std::size_t>(ref.index)])];
  }

  const System* system_;
  const Connector* connector_;
  GlobalState* state_;
  std::vector<Value>* vars_;
};

bool maskSubset(InteractionMask a, InteractionMask b) {  // a strictly inside b
  return a != b && (a & b) == a;
}

/// Appends the enabled interactions of connector `ci` to `out` (the shared
/// enumeration behind both the from-scratch scan and the incremental cache).
void appendConnectorInteractions(const System& system, const GlobalState& state,
                                 std::size_t ci, std::vector<EnabledInteraction>& out) {
  const Connector& c = system.connector(ci);
  if (expr::compilationEnabled() && batchScanEnabled()) {
    g_scanBatch.add();
    // Batched scan: one gathered frame, every transition guard in one
    // bytecode pass, mask set by bit operations over the cached feasible
    // masks (see CompiledConnector::scanEnabled). Scratch reused across
    // calls so steady-state scans never allocate.
    const CompiledConnector& cc = system.compiled().connector(ci);
    static thread_local CompiledConnector::ScanScratch scratch;
    if (!cc.scanEnabled(system, state, scratch)) return;
    const std::vector<InteractionMask>& masks = cc.masks();
    for (std::size_t i = 0; i < masks.size(); ++i) {
      if ((scratch.maskBits[i >> 6] & (std::uint64_t{1} << (i & 63))) == 0) continue;
      EnabledInteraction ei;
      ei.connector = static_cast<int>(ci);
      ei.mask = masks[i];
      const int participants = std::popcount(masks[i]);
      ei.ends.reserve(static_cast<std::size_t>(participants));
      ei.choices.reserve(static_cast<std::size_t>(participants));
      for (std::size_t e = 0; e < c.endCount(); ++e) {
        if ((masks[i] & (InteractionMask{1} << e)) == 0) continue;
        ei.ends.push_back(static_cast<int>(e));
        ei.choices.push_back(scratch.endEnabled[e]);
      }
      out.push_back(std::move(ei));
    }
    return;
  }
  (expr::compilationEnabled() ? g_scanScalar : g_scanInterp).add();
  // Per-end enabled transitions, computed once per connector.
  std::vector<std::vector<int>> endEnabled(c.endCount());
  for (std::size_t e = 0; e < c.endCount(); ++e) {
    const PortRef& p = c.end(e).port;
    const AtomicType& type = *system.instance(static_cast<std::size_t>(p.instance)).type;
    endEnabled[e] = enabledTransitions(
        type, state.components[static_cast<std::size_t>(p.instance)], p.port);
  }
  // The guard is pure over the current state, so its value is shared by
  // every mask; evaluate lazily (only when some mask is port-enabled, as
  // the interpreter would) and at most once per scan.
  std::optional<bool> guardOk;
  const auto guardHolds = [&]() {
    if (!guardOk.has_value()) {
      if (expr::compilationEnabled()) {
        const CompiledConnector& cc = system.compiled().connector(ci);
        // Scratch reused across calls: guard checks dominate the connector
        // scan and must not allocate per interaction.
        static thread_local std::vector<Value> frame;
        frame.resize(cc.frameSize());
        cc.gather(state, frame);
        guardOk = cc.evalGuard(frame) != 0;
      } else {
        auto& mutableState = const_cast<GlobalState&>(state);
        std::vector<Value> noVars;
        InteractionContext ctx(system, c, mutableState, noVars);
        guardOk = c.guard().eval(ctx) != 0;
      }
    }
    return *guardOk;
  };
  for (InteractionMask mask : c.feasibleMasks()) {
    bool allEnabled = true;
    for (std::size_t e = 0; e < c.endCount(); ++e) {
      if ((mask & (InteractionMask{1} << e)) != 0 && endEnabled[e].empty()) {
        allEnabled = false;
        break;
      }
    }
    if (!allEnabled) continue;
    if (!c.guard().isTrue() && !guardHolds()) continue;
    EnabledInteraction ei;
    ei.connector = static_cast<int>(ci);
    ei.mask = mask;
    for (std::size_t e = 0; e < c.endCount(); ++e) {
      if ((mask & (InteractionMask{1} << e)) == 0) continue;
      ei.ends.push_back(static_cast<int>(e));
      ei.choices.push_back(endEnabled[e]);
    }
    out.push_back(std::move(ei));
  }
}

}  // namespace

std::vector<EnabledInteraction> enabledInteractions(const System& system,
                                                    const GlobalState& state) {
  std::vector<EnabledInteraction> out;
  for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
    appendConnectorInteractions(system, state, ci, out);
  }
  return out;
}

EnabledInteractionCache::EnabledInteractionCache(const System& system)
    : system_(&system),
      flatOffset_(system.connectorCount(), 0),
      flatCount_(system.connectorCount(), 0),
      connectorQueued_(system.connectorCount(), 0) {
  // Force the lazily-built reverse index now, while construction is still
  // single-threaded; afterwards connectorsOf() is a pure read.
  if (system.instanceCount() > 0) system.connectorsOf(0);
}

void EnabledInteractionCache::recomputeConnector(std::size_t ci, const GlobalState& state) {
  scratch_.clear();
  appendConnectorInteractions(*system_, state, ci, scratch_);
  // Splice the connector's span in place by move; shift only when the
  // span length changed (EnabledInteraction moves are pointer swaps, so a
  // shift never allocates).
  const auto oldCount = static_cast<std::ptrdiff_t>(flatCount_[ci]);
  const auto newCount = static_cast<std::ptrdiff_t>(scratch_.size());
  const auto at = flat_.begin() + flatOffset_[ci];
  if (newCount <= oldCount) {
    std::move(scratch_.begin(), scratch_.end(), at);
    flat_.erase(at + newCount, at + oldCount);
  } else {
    std::move(scratch_.begin(), scratch_.begin() + oldCount, at);
    flat_.insert(at + oldCount, std::make_move_iterator(scratch_.begin() + oldCount),
                 std::make_move_iterator(scratch_.end()));
  }
  if (newCount != oldCount) {
    flatCount_[ci] = static_cast<int>(newCount);
    const int delta = static_cast<int>(newCount - oldCount);
    for (std::size_t j = ci + 1; j < flatOffset_.size(); ++j) flatOffset_[j] += delta;
  }
}

void EnabledInteractionCache::reset(const GlobalState& state) {
  flat_.clear();
  for (std::size_t ci = 0; ci < flatOffset_.size(); ++ci) {
    flatOffset_[ci] = static_cast<int>(flat_.size());
    appendConnectorInteractions(*system_, state, ci, flat_);
    flatCount_[ci] = static_cast<int>(flat_.size()) - flatOffset_[ci];
  }
}

void EnabledInteractionCache::update(const GlobalState& state,
                                     std::span<const int> dirtyInstances) {
  g_cacheUpdates.add();
  for (int inst : dirtyInstances) {
    for (int ci : system_->connectorsOf(static_cast<std::size_t>(inst))) {
      connectorQueued_[static_cast<std::size_t>(ci)] = 1;
    }
  }
  std::uint64_t recomputed = 0;
  for (int inst : dirtyInstances) {
    for (int ci : system_->connectorsOf(static_cast<std::size_t>(inst))) {
      auto& queued = connectorQueued_[static_cast<std::size_t>(ci)];
      if (!queued) continue;  // already recomputed via an earlier instance
      queued = 0;
      recomputeConnector(static_cast<std::size_t>(ci), state);
      ++recomputed;
    }
  }
  g_cacheRecomputes.add(recomputed);
  g_cacheDirty.observe(static_cast<std::int64_t>(recomputed));
}

void EnabledInteractionCache::updateAfterExecute(const GlobalState& state,
                                                 const EnabledInteraction& executed) {
  const Connector& c = system_->connector(static_cast<std::size_t>(executed.connector));
  // Reused member buffer: the per-step dirty set allocates only until its
  // capacity covers the widest executed connector.
  dirtyScratch_.clear();
  for (const ConnectorEnd& e : c.ends()) dirtyScratch_.push_back(e.port.instance);
  update(state, dirtyScratch_);
}

std::vector<EnabledInteraction> applyPriorities(const System& system, const GlobalState& state,
                                                std::vector<EnabledInteraction> enabled) {
  if (enabled.empty()) return enabled;
  const std::size_t n = enabled.size();
  std::vector<bool> dominated(n, false);

  if (system.maximalProgress()) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || enabled[i].connector != enabled[j].connector) continue;
        if (maskSubset(enabled[i].mask, enabled[j].mask)) dominated[i] = true;
      }
    }
  }

  if (!system.priorities().empty()) {
    auto& mutableState = const_cast<GlobalState&>(state);
    GlobalContext ctx(mutableState);
    for (const PriorityRule& rule : system.priorities()) {
      if (rule.when.has_value() && rule.when->eval(ctx) == 0) continue;
      // Does some interaction of `high` remain enabled at all?
      bool highEnabled = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (system.connector(static_cast<std::size_t>(enabled[j].connector)).name() ==
            rule.high) {
          highEnabled = true;
          break;
        }
      }
      if (!highEnabled) continue;
      for (std::size_t i = 0; i < n; ++i) {
        if (system.connector(static_cast<std::size_t>(enabled[i].connector)).name() ==
            rule.low) {
          dominated[i] = true;
        }
      }
    }
  }

  std::vector<EnabledInteraction> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (!dominated[i]) out.push_back(std::move(enabled[i]));
  }
  require(!out.empty(),
          "applyPriorities: all enabled interactions dominated (cyclic priority rules?)");
  return out;
}

std::size_t choiceCount(const EnabledInteraction& interaction) {
  std::size_t n = 1;
  for (const std::vector<int>& c : interaction.choices) n *= c.size();
  return n;
}

void connectorTransfer(const System& system, GlobalState& state,
                       const EnabledInteraction& interaction) {
  const Connector& c = system.connector(static_cast<std::size_t>(interaction.connector));
  if (expr::compilationEnabled()) {
    const CompiledConnector& cc = system.compiled().connector(
        static_cast<std::size_t>(interaction.connector));
    if (!cc.hasTransfer()) return;
    static thread_local std::vector<Value> frame;
    frame.resize(cc.frameSize());
    cc.gather(state, frame);
    cc.transfer(state, frame, interaction.mask);
    return;
  }
  // Interpreted fallback: up then down (down only to participating ends).
  std::vector<Value> connectorVars(c.variableCount(), 0);
  InteractionContext ctx(system, c, state, connectorVars);
  expr::applyAssignments(c.ups(), ctx);
  for (const DownAssign& d : c.downs()) {
    const bool participates =
        (interaction.mask & (InteractionMask{1} << static_cast<unsigned>(d.end))) != 0;
    if (!participates) continue;
    const Value v = d.value.eval(ctx);
    ctx.write(expr::VarRef{d.end, d.exportIndex}, v);
  }
}

void execute(const System& system, GlobalState& state, const EnabledInteraction& interaction,
             std::span<const int> transitionChoice) {
  const Connector& c = system.connector(static_cast<std::size_t>(interaction.connector));
  require(transitionChoice.size() == interaction.ends.size(),
          "execute: transition choice arity mismatch");

  connectorTransfer(system, state, interaction);

  // Fire one enabled transition per participant, then run tau steps.
  for (std::size_t k = 0; k < interaction.ends.size(); ++k) {
    const ConnectorEnd& end = c.end(static_cast<std::size_t>(interaction.ends[k]));
    const AtomicType& type =
        *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    AtomicState& comp = state.components[static_cast<std::size_t>(end.port.instance)];
    const std::vector<int>& options = interaction.choices[k];
    const int pick = transitionChoice[k];
    require(pick >= 0 && static_cast<std::size_t>(pick) < options.size(),
            "execute: transition choice out of range");
    fire(type, comp, options[static_cast<std::size_t>(pick)]);
  }
  for (std::size_t k = 0; k < interaction.ends.size(); ++k) {
    const ConnectorEnd& end = c.end(static_cast<std::size_t>(interaction.ends[k]));
    const AtomicType& type =
        *system.instance(static_cast<std::size_t>(end.port.instance)).type;
    runInternal(type, state.components[static_cast<std::size_t>(end.port.instance)]);
  }
}

void executeDefault(const System& system, GlobalState& state,
                    const EnabledInteraction& interaction) {
  std::vector<int> zeros(interaction.ends.size(), 0);
  execute(system, state, interaction, zeros);
}

std::vector<GlobalState> successors(const System& system, const GlobalState& state,
                                    bool withPriorities) {
  std::vector<EnabledInteraction> enabled = enabledInteractions(system, state);
  if (withPriorities) {
    if (enabled.empty()) return {};
    enabled = applyPriorities(system, state, std::move(enabled));
  }
  std::vector<GlobalState> out;
  for (const EnabledInteraction& ei : enabled) {
    std::vector<int> choice(ei.ends.size(), 0);
    while (true) {
      GlobalState next = state;
      execute(system, next, ei, choice);
      out.push_back(std::move(next));
      // Advance the mixed-radix choice vector.
      std::size_t k = 0;
      while (k < choice.size()) {
        if (static_cast<std::size_t>(++choice[k]) < ei.choices[k].size()) break;
        choice[k] = 0;
        ++k;
      }
      if (k == choice.size()) break;
    }
  }
  return out;
}

std::string interactionLabel(const System& system, const EnabledInteraction& interaction) {
  const Connector& c = system.connector(static_cast<std::size_t>(interaction.connector));
  return c.maskLabel(interaction.mask, system.endLabels(c));
}

bool isDeadlocked(const System& system, const GlobalState& state) {
  return enabledInteractions(system, state).empty();
}

}  // namespace cbip
