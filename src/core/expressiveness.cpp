#include "core/expressiveness.hpp"

#include "util/require.hpp"

namespace cbip {

namespace {

AtomicTypePtr makeSender(bool counters) {
  auto t = std::make_shared<AtomicType>("Sender");
  const int idle = t->addLocation("idle");
  const int snd = t->addPort("snd");
  std::vector<expr::Assign> actions;
  if (counters) {
    const int sent = t->addVariable("sent", 0);
    actions.push_back(
        expr::Assign{expr::VarRef{0, sent}, Expr::local(sent) + Expr::lit(1)});
  }
  t->addTransition(idle, snd, Expr::top(), std::move(actions), idle);
  t->setInitialLocation(idle);
  return t;
}

/// Receiver for the priority-based broadcast: rcv in `ready`, work to
/// return from `busy`.
AtomicTypePtr makeReceiver(bool counters) {
  auto t = std::make_shared<AtomicType>("Receiver");
  const int ready = t->addLocation("ready");
  const int busy = t->addLocation("busy");
  const int rcv = t->addPort("rcv");
  const int work = t->addPort("work");
  std::vector<expr::Assign> actions;
  if (counters) {
    const int got = t->addVariable("got", 0);
    actions.push_back(
        expr::Assign{expr::VarRef{0, got}, Expr::local(got) + Expr::lit(1)});
  }
  t->addTransition(ready, rcv, Expr::top(), std::move(actions), busy);
  t->addTransition(busy, work, ready);
  t->setInitialLocation(ready);
  return t;
}

/// Receiver for the rendezvous-only protocol: answers `yes` (deliver) in
/// `ready`, `no` in `busy`.
AtomicTypePtr makePollableReceiver(bool counters) {
  auto t = std::make_shared<AtomicType>("PollReceiver");
  const int ready = t->addLocation("ready");
  const int busy = t->addLocation("busy");
  const int yes = t->addPort("yes");
  const int no = t->addPort("no");
  const int work = t->addPort("work");
  std::vector<expr::Assign> actions;
  if (counters) {
    const int got = t->addVariable("got", 0);
    actions.push_back(
        expr::Assign{expr::VarRef{0, got}, Expr::local(got) + Expr::lit(1)});
  }
  t->addTransition(ready, yes, Expr::top(), std::move(actions), busy);
  t->addTransition(busy, no, busy);
  t->addTransition(busy, work, ready);
  t->setInitialLocation(ready);
  return t;
}

/// Sequential polling arbiter with one location per stage: at stage i it
/// offers port p_i (joined with receiver i's yes OR no), after the last
/// stage it closes the round with the sender.
AtomicTypePtr makeArbiter(int receivers) {
  auto t = std::make_shared<AtomicType>("Arbiter");
  std::vector<int> stages;
  for (int i = 0; i <= receivers; ++i) {
    stages.push_back(t->addLocation("stage" + std::to_string(i)));
  }
  for (int i = 0; i < receivers; ++i) {
    const int p = t->addPort("p" + std::to_string(i));
    t->addTransition(stages[static_cast<std::size_t>(i)], p,
                     stages[static_cast<std::size_t>(i + 1)]);
  }
  const int done = t->addPort("done");
  t->addTransition(stages[static_cast<std::size_t>(receivers)], done, stages[0]);
  t->setInitialLocation(stages[0]);
  return t;
}

}  // namespace

BroadcastModel broadcastWithPriorities(int receivers, bool counters) {
  require(receivers >= 1, "broadcastWithPriorities: need at least one receiver");
  BroadcastModel m;
  const int sender = m.system.addInstance("sender", makeSender(counters));
  auto receiverType = makeReceiver(counters);
  std::vector<PortRef> rcvPorts;
  for (int i = 0; i < receivers; ++i) {
    const int r = m.system.addInstance("r" + std::to_string(i), receiverType);
    rcvPorts.push_back(PortRef{r, receiverType->portIndex("rcv")});
  }
  m.system.addConnector(
      broadcast("bcast", PortRef{sender, 0 /* snd */}, rcvPorts));
  for (int i = 0; i < receivers; ++i) {
    m.system.addConnector(rendezvous(
        "work" + std::to_string(i),
        {PortRef{i + 1, receiverType->portIndex("work")}}));
  }
  m.system.setMaximalProgress(true);
  m.system.validate();
  m.auxiliaryComponents = 0;
  m.stepsPerRound = 1;
  return m;
}

BroadcastModel broadcastRendezvousOnly(int receivers, bool counters) {
  require(receivers >= 1, "broadcastRendezvousOnly: need at least one receiver");
  BroadcastModel m;
  const int sender = m.system.addInstance("sender", makeSender(counters));
  auto receiverType = makePollableReceiver(counters);
  for (int i = 0; i < receivers; ++i) {
    m.system.addInstance("r" + std::to_string(i), receiverType);
  }
  auto arbiterType = makeArbiter(receivers);
  const int arbiter = m.system.addInstance("arbiter", arbiterType);

  for (int i = 0; i < receivers; ++i) {
    const int recv = i + 1;
    const PortRef poll{arbiter, arbiterType->portIndex("p" + std::to_string(i))};
    m.system.addConnector(rendezvous(
        "yes" + std::to_string(i),
        {poll, PortRef{recv, receiverType->portIndex("yes")}}));
    m.system.addConnector(rendezvous(
        "no" + std::to_string(i),
        {poll, PortRef{recv, receiverType->portIndex("no")}}));
    m.system.addConnector(rendezvous(
        "work" + std::to_string(i),
        {PortRef{recv, receiverType->portIndex("work")}}));
  }
  m.system.addConnector(rendezvous(
      "done", {PortRef{arbiter, arbiterType->portIndex("done")}, PortRef{sender, 0}}));
  m.system.validate();
  m.auxiliaryComponents = 1;
  m.stepsPerRound = receivers + 1;
  return m;
}

}  // namespace cbip
