#include "timed/robustness.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace cbip::timed {

void TaskGraph::validate() const {
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    require(tasks[t].duration >= 1, "TaskGraph: durations must be >= 1");
    for (const int d : tasks[t].dependencies) {
      require(d >= 0 && static_cast<std::size_t>(d) < tasks.size(),
              "TaskGraph: dependency out of range");
      require(static_cast<std::size_t>(d) != t, "TaskGraph: self-dependency");
    }
  }
  // Cycle check via Kahn's algorithm.
  std::vector<int> indegree(tasks.size(), 0);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    indegree[t] = static_cast<int>(tasks[t].dependencies.size());
  }
  std::vector<std::size_t> queue;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (indegree[t] == 0) queue.push_back(t);
  }
  std::size_t seen = 0;
  while (!queue.empty()) {
    const std::size_t u = queue.back();
    queue.pop_back();
    ++seen;
    for (std::size_t v = 0; v < tasks.size(); ++v) {
      for (const int d : tasks[v].dependencies) {
        if (static_cast<std::size_t>(d) == u && --indegree[v] == 0) queue.push_back(v);
      }
    }
  }
  require(seen == tasks.size(), "TaskGraph: dependency cycle");
}

Schedule listSchedule(const TaskGraph& graph, int machines,
                      const std::vector<int>& priorityList,
                      const std::vector<std::int64_t>& durations) {
  graph.validate();
  const std::size_t n = graph.tasks.size();
  require(machines >= 1, "listSchedule: need at least one machine");
  require(priorityList.size() == n && durations.size() == n,
          "listSchedule: priority/duration arity mismatch");

  constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> finish(n, kNever);
  std::vector<bool> started(n, false);
  std::vector<std::int64_t> machineFree(static_cast<std::size_t>(machines), 0);
  Schedule schedule;
  std::int64_t now = 0;
  std::size_t remaining = n;

  while (remaining > 0) {
    // Dispatch: highest-priority ready tasks onto free machines.
    bool dispatched = true;
    while (dispatched) {
      dispatched = false;
      int freeMachine = -1;
      for (int m = 0; m < machines; ++m) {
        if (machineFree[static_cast<std::size_t>(m)] <= now) {
          freeMachine = m;
          break;
        }
      }
      if (freeMachine < 0) break;
      for (const int t : priorityList) {
        if (started[static_cast<std::size_t>(t)]) continue;
        const bool ready = std::all_of(
            graph.tasks[static_cast<std::size_t>(t)].dependencies.begin(),
            graph.tasks[static_cast<std::size_t>(t)].dependencies.end(),
            [&finish, now](int d) {
              return finish[static_cast<std::size_t>(d)] != kNever &&
                     finish[static_cast<std::size_t>(d)] <= now;
            });
        if (!ready) continue;
        started[static_cast<std::size_t>(t)] = true;
        finish[static_cast<std::size_t>(t)] = now + durations[static_cast<std::size_t>(t)];
        machineFree[static_cast<std::size_t>(freeMachine)] =
            finish[static_cast<std::size_t>(t)];
        schedule.entries.push_back(ScheduledTask{t, freeMachine, now,
                                                 finish[static_cast<std::size_t>(t)]});
        --remaining;
        dispatched = true;
        break;
      }
    }
    if (remaining == 0) break;
    // Advance to the next finish event.
    std::int64_t next = kNever;
    for (std::size_t t = 0; t < n; ++t) {
      if (started[t] && finish[t] > now) next = std::min(next, finish[t]);
    }
    require(next != kNever, "listSchedule: stuck (unsatisfiable dependencies)");
    now = next;
  }
  for (const ScheduledTask& e : schedule.entries) {
    schedule.makespan = std::max(schedule.makespan, e.finish);
  }
  return schedule;
}

Schedule staticSchedule(const TaskGraph& graph, int machines,
                        const std::vector<int>& assignment, const std::vector<int>& order,
                        const std::vector<std::int64_t>& durations) {
  graph.validate();
  const std::size_t n = graph.tasks.size();
  require(assignment.size() == n && order.size() == n && durations.size() == n,
          "staticSchedule: arity mismatch");
  constexpr std::int64_t kUnscheduled = -1;
  std::vector<std::int64_t> finish(n, kUnscheduled);
  std::vector<std::int64_t> machineFree(static_cast<std::size_t>(machines), 0);
  Schedule schedule;
  for (const int t : order) {
    const int m = assignment[static_cast<std::size_t>(t)];
    require(m >= 0 && m < machines, "staticSchedule: machine out of range");
    std::int64_t start = machineFree[static_cast<std::size_t>(m)];
    for (const int d : graph.tasks[static_cast<std::size_t>(t)].dependencies) {
      require(finish[static_cast<std::size_t>(d)] != kUnscheduled,
              "staticSchedule: order violates dependencies");
      start = std::max(start, finish[static_cast<std::size_t>(d)]);
    }
    finish[static_cast<std::size_t>(t)] = start + durations[static_cast<std::size_t>(t)];
    machineFree[static_cast<std::size_t>(m)] = finish[static_cast<std::size_t>(t)];
    schedule.entries.push_back(
        ScheduledTask{t, m, start, finish[static_cast<std::size_t>(t)]});
    schedule.makespan = std::max(schedule.makespan, finish[static_cast<std::size_t>(t)]);
  }
  return schedule;
}

void staticFromList(const Schedule& wcetSchedule, std::vector<int>& assignment,
                    std::vector<int>& order) {
  std::vector<ScheduledTask> entries = wcetSchedule.entries;
  std::sort(entries.begin(), entries.end(), [](const ScheduledTask& a, const ScheduledTask& b) {
    return a.start != b.start ? a.start < b.start : a.task < b.task;
  });
  int maxTask = -1;
  for (const ScheduledTask& e : entries) maxTask = std::max(maxTask, e.task);
  assignment.assign(static_cast<std::size_t>(maxTask + 1), 0);
  order.clear();
  for (const ScheduledTask& e : entries) {
    assignment[static_cast<std::size_t>(e.task)] = e.machine;
    order.push_back(e.task);
  }
}

std::optional<Anomaly> findAnomaly(int machines, int taskCount, int attempts,
                                   std::uint64_t seed) {
  Rng rng(seed);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    TaskGraph graph;
    for (int t = 0; t < taskCount; ++t) {
      Task task;
      task.name = "T" + std::to_string(t);
      task.duration = rng.range(1, 9);
      for (int d = 0; d < t; ++d) {
        if (rng.chance(1, 4)) task.dependencies.push_back(d);
      }
      graph.tasks.push_back(std::move(task));
    }
    std::vector<int> priority(static_cast<std::size_t>(taskCount));
    {
      const auto perm = rng.permutation(static_cast<std::size_t>(taskCount));
      for (std::size_t i = 0; i < perm.size(); ++i) priority[i] = static_cast<int>(perm[i]);
    }
    std::vector<std::int64_t> wcet;
    wcet.reserve(graph.tasks.size());
    for (const Task& t : graph.tasks) wcet.push_back(t.duration);
    std::vector<std::int64_t> reduced = wcet;
    bool any = false;
    for (auto& d : reduced) {
      if (d > 1 && rng.chance(1, 2)) {
        d -= rng.range(1, d - 1);
        any = true;
      }
    }
    if (!any) continue;
    const Schedule base = listSchedule(graph, machines, priority, wcet);
    const Schedule fast = listSchedule(graph, machines, priority, reduced);
    if (fast.makespan > base.makespan) {
      Anomaly a;
      a.graph = std::move(graph);
      a.machines = machines;
      a.priorityList = std::move(priority);
      a.wcetDurations = std::move(wcet);
      a.reducedDurations = std::move(reduced);
      a.wcetMakespan = base.makespan;
      a.reducedMakespan = fast.makespan;
      return a;
    }
  }
  return std::nullopt;
}

Anomaly anomalyInstance() {
  const auto found = findAnomaly(/*machines=*/2, /*taskCount=*/8, /*attempts=*/50'000,
                                 /*seed=*/0xC0FFEE);
  require(found.has_value(), "anomalyInstance: search failed (should be deterministic)");
  return *found;
}

}  // namespace cbip::timed
