// Timed model zoo.
//
//   * unitDelay — the timed automaton of monograph Fig 5.3: a unit delay
//     y(t) = x(t - 1) with four locations, one clock τ, and the standing
//     assumption of at most one change of x per time unit. Ports x↑, x↓
//     (input edges) and y↑, y↓ (delayed output edges).
//   * driver — closes the unit delay with an input generator that toggles
//     x with period `period` (>= 1 keeps the one-change-per-unit
//     assumption).
//   * periodicTasks — n periodic tasks sharing one processor, the standard
//     fixed-priority-schedulability shape used in the timed benchmarks.
#pragma once

#include <vector>

#include "timed/timed.hpp"

namespace cbip::timed {

/// Fig 5.3: the unit-delay timed automaton. Locations encode (x, y):
/// "x0y0", "x1y0", "x1y1", "x0y1"; ports: xup, xdown, yup, ydown.
/// After an input edge, the matching output edge fires exactly when τ == 1.
TimedAtomicTypePtr unitDelay();

/// Input generator toggling x every `period` time units (period >= 1).
TimedAtomicTypePtr toggleDriver(int period);

/// Closed system: driver toggling x + unit delay (rendezvous on xup/xdown);
/// yup/ydown fire as unary interactions.
TimedSystem unitDelaySystem(int period);

/// One processor, n periodic tasks: task i releases every `period[i]`,
/// executes for `wcet[i]` (non-preemptive here) before its next release.
TimedSystem periodicTasks(const std::vector<int>& periods, const std::vector<int>& wcets);

}  // namespace cbip::timed
