#include "timed/dbm.hpp"

#include <algorithm>
#include <sstream>

#include "util/require.hpp"

namespace cbip::timed {

Dbm::Dbm(int clocks) : n_(clocks + 1) {
  require(clocks >= 0, "Dbm: negative clock count");
  // Zero point: every difference is exactly 0.
  m_.assign(static_cast<std::size_t>(n_ * n_), boundZero());
}

bool Dbm::empty() const { return empty_; }

void Dbm::up() {
  if (empty_) return;
  for (int i = 1; i < n_; ++i) cell(i, 0) = kInfinity;
  // Canonical form is preserved by `up` (standard result).
}

void Dbm::reset(int x) {
  if (empty_) return;
  require(x >= 1 && x < n_, "Dbm::reset: clock out of range");
  for (int j = 0; j < n_; ++j) {
    cell(x, j) = at(0, j);
    cell(j, x) = at(j, 0);
  }
  cell(x, x) = boundZero();
}

bool Dbm::constrain(int x, int y, Bound bound) {
  if (empty_) return false;
  require(x >= 0 && x < n_ && y >= 0 && y < n_, "Dbm::constrain: clock out of range");
  if (bound >= at(x, y)) return true;  // no tightening
  // Quick emptiness test: bound + D[y][x] < 0.
  if (boundAdd(bound, at(y, x)) < boundZero()) {
    empty_ = true;
    return false;
  }
  cell(x, y) = bound;
  // Incremental closure through the updated edge.
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      const Bound viaXY = boundAdd(boundAdd(at(i, x), bound), at(y, j));
      if (viaXY < at(i, j)) cell(i, j) = viaXY;
    }
  }
  return true;
}

void Dbm::close() {
  for (int k = 0; k < n_; ++k) {
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        const Bound via = boundAdd(at(i, k), at(k, j));
        if (via < at(i, j)) cell(i, j) = via;
      }
    }
  }
  for (int i = 0; i < n_; ++i) {
    if (at(i, i) < boundZero()) {
      empty_ = true;
      return;
    }
  }
}

void Dbm::extrapolate(int m) {
  if (empty_) return;
  bool changed = false;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (i == j) continue;
      const Bound b = at(i, j);
      if (b >= kInfinity) continue;
      if (boundValue(b) > m) {
        cell(i, j) = kInfinity;
        changed = true;
      } else if (boundValue(b) < -m) {
        cell(i, j) = boundLt(-m);
        changed = true;
      }
    }
  }
  if (changed) close();
}

bool Dbm::subsetOf(const Dbm& other) const {
  require(n_ == other.n_, "Dbm::subsetOf: dimension mismatch");
  if (empty_) return true;
  if (other.empty_) return false;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (at(i, j) > other.at(i, j)) return false;
    }
  }
  return true;
}

bool operator==(const Dbm& a, const Dbm& b) {
  if (a.empty_ != b.empty_) return false;
  if (a.empty_) return true;
  return a.n_ == b.n_ && a.m_ == b.m_;
}

std::uint64_t Dbm::hash() const {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Bound b : m_) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Dbm::toString() const {
  if (empty_) return "(empty)";
  std::ostringstream os;
  bool first = true;
  auto clockName = [](int i) { return "x" + std::to_string(i); };
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (i == j || at(i, j) >= kInfinity) continue;
      if (i == 0 && at(i, j) == boundZero()) continue;  // trivial 0 - x <= 0
      if (!first) os << ", ";
      first = false;
      if (j == 0) {
        os << clockName(i);
      } else if (i == 0) {
        os << "-" << clockName(j);
      } else {
        os << clockName(i) << " - " << clockName(j);
      }
      os << (boundStrict(at(i, j)) ? " < " : " <= ") << boundValue(at(i, j));
    }
  }
  return first ? "(true)" : os.str();
}

}  // namespace cbip::timed
