// Time robustness and timing anomalies (monograph Section 5.2.2, [1], [31]).
//
// The monograph's claim reproduced here (experiment E10): a *physical*
// system model that is safe when every action takes its worst-case
// execution time (WCET) is NOT necessarily safe when actions run faster —
// "safety for WCET does not guarantee safety for smaller execution times".
// Preservation of safety under increased performance (smaller φ) is called
// *time robustness*, and it holds for deterministic models.
//
// The concrete embodiment is the classic scheduling anomaly: a greedy
// (list) multiprocessor scheduler is timing-nondeterministic — the dispatch
// order depends on task durations — and admits instances where *reducing*
// durations increases the makespan past the deadline. A *static* schedule
// (machine assignment and per-machine order fixed in advance, so the
// untimed behaviour is duration-independent, i.e. deterministic in the
// sense of [1]) is provably monotone: shrinking durations never increases
// its makespan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace cbip::timed {

struct Task {
  std::string name;
  std::int64_t duration = 1;        // WCET
  std::vector<int> dependencies;    // indices of tasks that must finish first
};

struct TaskGraph {
  std::vector<Task> tasks;
  void validate() const;
};

struct ScheduledTask {
  int task = 0;
  int machine = 0;
  std::int64_t start = 0;
  std::int64_t finish = 0;
};

struct Schedule {
  std::vector<ScheduledTask> entries;
  std::int64_t makespan = 0;
};

/// Greedy list scheduling on `machines` identical machines: whenever a
/// machine is idle, it grabs the highest-priority ready task
/// (priority = position in `priorityList`). Deterministic for fixed
/// durations, but the dispatch *order* depends on the durations — the
/// timing nondeterminism that enables anomalies.
Schedule listSchedule(const TaskGraph& graph, int machines,
                      const std::vector<int>& priorityList,
                      const std::vector<std::int64_t>& durations);

/// Static (deterministic) scheduling: `assignment[t]` gives the machine of
/// task t and `order` the global dispatch sequence; each machine runs its
/// tasks in `order`, waiting for dependencies. The untimed behaviour is
/// duration-independent, so the makespan is monotone in the durations.
Schedule staticSchedule(const TaskGraph& graph, int machines,
                        const std::vector<int>& assignment, const std::vector<int>& order,
                        const std::vector<std::int64_t>& durations);

/// Derives a static schedule from the list schedule at WCET (the standard
/// way to "determinize" a greedy schedule).
void staticFromList(const Schedule& wcetSchedule, std::vector<int>& assignment,
                    std::vector<int>& order);

/// A found timing anomaly: the list schedule meets `deadline` at WCET but
/// misses it for the (pointwise smaller-or-equal) `reducedDurations`.
struct Anomaly {
  TaskGraph graph;
  int machines = 0;
  std::vector<int> priorityList;
  std::vector<std::int64_t> wcetDurations;
  std::vector<std::int64_t> reducedDurations;
  std::int64_t wcetMakespan = 0;
  std::int64_t reducedMakespan = 0;  // > wcetMakespan: the anomaly
};

/// Searches random task graphs for a timing anomaly; returns the first one
/// found within `attempts` tries (deterministic in `seed`).
std::optional<Anomaly> findAnomaly(int machines, int taskCount, int attempts,
                                   std::uint64_t seed);

/// A fixed anomaly instance (Graham-style speed-up anomaly) used by tests
/// and benchmarks; found by deterministic search and frozen here.
Anomaly anomalyInstance();

}  // namespace cbip::timed
