#include "timed/timed.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

#include "util/require.hpp"

namespace cbip::timed {

int TimedAtomicType::addLocation(const std::string& name,
                                 std::vector<ClockConstraint> invariant) {
  locations_.push_back(name);
  invariants_.push_back(std::move(invariant));
  return static_cast<int>(locations_.size()) - 1;
}

int TimedAtomicType::addClock(const std::string& name) {
  clocks_.push_back(name);
  return static_cast<int>(clocks_.size());  // 1-based
}

int TimedAtomicType::addPort(const std::string& name) {
  ports_.push_back(name);
  return static_cast<int>(ports_.size()) - 1;
}

void TimedAtomicType::addTransition(TimedTransition t) { transitions_.push_back(std::move(t)); }

void TimedAtomicType::validate() const {
  require(!locations_.empty(), name_ + ": no locations");
  require(initial_ >= 0 && static_cast<std::size_t>(initial_) < locations_.size(),
          name_ + ": initial location out of range");
  auto checkConstraint = [this](const ClockConstraint& c, const std::string& where) {
    require(c.clock >= 1 && c.clock <= static_cast<int>(clocks_.size()),
            name_ + " " + where + ": clock out of range");
  };
  for (std::size_t l = 0; l < invariants_.size(); ++l) {
    for (const ClockConstraint& c : invariants_[l]) {
      checkConstraint(c, "invariant");
      require(c.kind == ClockConstraint::Kind::kLe || c.kind == ClockConstraint::Kind::kLt,
              name_ + ": invariants must be upper bounds");
    }
  }
  for (const TimedTransition& t : transitions_) {
    require(t.from >= 0 && static_cast<std::size_t>(t.from) < locations_.size(),
            name_ + ": transition source out of range");
    require(t.to >= 0 && static_cast<std::size_t>(t.to) < locations_.size(),
            name_ + ": transition target out of range");
    require(t.port >= 0 && static_cast<std::size_t>(t.port) < ports_.size(),
            name_ + ": transition port out of range");
    for (const ClockConstraint& c : t.guard) checkConstraint(c, "guard");
    for (const int r : t.resets) {
      require(r >= 1 && r <= static_cast<int>(clocks_.size()),
              name_ + ": reset clock out of range");
    }
  }
}

int TimedAtomicType::portIndex(const std::string& name) const {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i] == name) return static_cast<int>(i);
  }
  throw ModelError(name_ + ": unknown port '" + name + "'");
}

int TimedAtomicType::locationIndex(const std::string& name) const {
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    if (locations_[i] == name) return static_cast<int>(i);
  }
  throw ModelError(name_ + ": unknown location '" + name + "'");
}

int TimedAtomicType::maxConstant() const {
  int m = 1;
  for (const auto& inv : invariants_) {
    for (const ClockConstraint& c : inv) m = std::max(m, c.bound);
  }
  for (const TimedTransition& t : transitions_) {
    for (const ClockConstraint& c : t.guard) m = std::max(m, c.bound);
  }
  return m;
}

int TimedSystem::addInstance(const std::string& name, TimedAtomicTypePtr type) {
  require(type != nullptr, "TimedSystem::addInstance: null type");
  instances_.emplace_back(name, std::move(type));
  return static_cast<int>(instances_.size()) - 1;
}

void TimedSystem::addConnector(TimedConnector connector) {
  connectors_.push_back(std::move(connector));
}

void TimedSystem::validate() const {
  for (const auto& [name, type] : instances_) type->validate();
  for (const TimedConnector& c : connectors_) {
    require(!c.ends.empty(), "timed connector '" + c.name + "' has no ends");
    for (const auto& [inst, port] : c.ends) {
      require(inst >= 0 && static_cast<std::size_t>(inst) < instances_.size(),
              "timed connector '" + c.name + "': instance out of range");
      require(port >= 0 &&
                  static_cast<std::size_t>(port) < instances_[static_cast<std::size_t>(inst)]
                                                       .second->portCount(),
              "timed connector '" + c.name + "': port out of range");
    }
  }
}

int TimedSystem::totalClocks() const {
  int total = 0;
  for (const auto& [name, type] : instances_) total += type->clockCount();
  return total;
}

int TimedSystem::clockBase(std::size_t instance) const {
  int base = 0;
  for (std::size_t i = 0; i < instance; ++i) base += instances_[i].second->clockCount();
  return base;
}

int TimedSystem::maxConstant() const {
  int m = 1;
  for (const auto& [name, type] : instances_) m = std::max(m, type->maxConstant());
  return m;
}

// ---- concrete simulation ----

TimedState timedInitialState(const TimedSystem& system) {
  TimedState s;
  s.locations.reserve(system.instanceCount());
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    s.locations.push_back(system.type(i)->initialLocation());
  }
  s.clocks.assign(static_cast<std::size_t>(system.totalClocks()), 0);
  return s;
}

namespace {

constexpr std::int64_t kNoDelay = std::numeric_limits<std::int64_t>::max();

/// Feasible delay window [lo, hi] for one constraint given clock value v.
void tightenWindow(const ClockConstraint& c, std::int64_t v, std::int64_t& lo,
                   std::int64_t& hi) {
  using K = ClockConstraint::Kind;
  switch (c.kind) {
    case K::kLe: hi = std::min(hi, c.bound - v); break;
    case K::kLt: hi = std::min(hi, c.bound - v - 1); break;  // integer time
    case K::kGe: lo = std::max(lo, c.bound - v); break;
    case K::kGt: lo = std::max(lo, c.bound - v + 1); break;
    case K::kEq:
      lo = std::max(lo, c.bound - v);
      hi = std::min(hi, c.bound - v);
      break;
  }
}

struct Combo {
  std::size_t connector;
  std::vector<const TimedTransition*> transitions;  // one per end
  std::int64_t earliest;                            // minimal feasible delay
};

}  // namespace

TimedRunResult runTimed(const TimedSystem& system, std::uint64_t maxSteps, Rng& rng) {
  system.validate();
  TimedRunResult result;
  TimedState s = timedInitialState(system);

  for (std::uint64_t step = 0; step < maxSteps; ++step) {
    // Global delay cap from every instance's current location invariant.
    std::int64_t invCap = kNoDelay;
    for (std::size_t i = 0; i < system.instanceCount(); ++i) {
      const TimedAtomicType& type = *system.type(i);
      const int base = system.clockBase(i);
      for (const ClockConstraint& c : type.invariant(s.locations[i])) {
        std::int64_t lo = 0, hi = kNoDelay;
        tightenWindow(c, s.clocks[static_cast<std::size_t>(base + c.clock - 1)], lo, hi);
        invCap = std::min(invCap, hi);
      }
    }

    std::vector<Combo> combos;
    for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
      const TimedConnector& c = system.connector(ci);
      // Candidate transitions per end from the current locations.
      std::vector<std::vector<const TimedTransition*>> options;
      bool possible = true;
      for (const auto& [inst, port] : c.ends) {
        const TimedAtomicType& type = *system.type(static_cast<std::size_t>(inst));
        std::vector<const TimedTransition*> ts;
        for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
          const TimedTransition& t = type.transition(static_cast<int>(ti));
          if (t.port == port && t.from == s.locations[static_cast<std::size_t>(inst)]) {
            ts.push_back(&t);
          }
        }
        if (ts.empty()) {
          possible = false;
          break;
        }
        options.push_back(std::move(ts));
      }
      if (!possible) continue;
      std::vector<std::size_t> pick(options.size(), 0);
      while (true) {
        std::int64_t lo = 0, hi = invCap;
        for (std::size_t k = 0; k < options.size(); ++k) {
          const auto [inst, port] = c.ends[k];
          const int base = system.clockBase(static_cast<std::size_t>(inst));
          for (const ClockConstraint& g : options[k][pick[k]]->guard) {
            tightenWindow(g, s.clocks[static_cast<std::size_t>(base + g.clock - 1)], lo, hi);
          }
        }
        if (lo <= hi && lo != kNoDelay) {
          Combo combo;
          combo.connector = ci;
          for (std::size_t k = 0; k < options.size(); ++k) {
            combo.transitions.push_back(options[k][pick[k]]);
          }
          combo.earliest = lo;
          combos.push_back(std::move(combo));
        }
        std::size_t k = 0;
        while (k < pick.size()) {
          if (++pick[k] < options[k].size()) break;
          pick[k] = 0;
          ++k;
        }
        if (k == pick.size()) break;
      }
    }

    if (combos.empty()) {
      result.timelocked = true;
      break;
    }
    // Eager policy: earliest feasible instant.
    std::int64_t delay = kNoDelay;
    for (const Combo& c : combos) delay = std::min(delay, c.earliest);
    std::vector<const Combo*> ready;
    for (const Combo& c : combos) {
      if (c.earliest == delay) ready.push_back(&c);
    }
    const Combo& chosen = *ready[rng.index(ready.size())];

    s.now += delay;
    for (auto& v : s.clocks) v += delay;
    const TimedConnector& conn = system.connector(chosen.connector);
    for (std::size_t k = 0; k < conn.ends.size(); ++k) {
      const auto [inst, port] = conn.ends[k];
      const TimedTransition& t = *chosen.transitions[k];
      const int base = system.clockBase(static_cast<std::size_t>(inst));
      for (const int r : t.resets) s.clocks[static_cast<std::size_t>(base + r - 1)] = 0;
      s.locations[static_cast<std::size_t>(inst)] = t.to;
    }
    result.steps.push_back(TimedStep{s.now, conn.name});
  }
  result.finalTime = s.now;
  return result;
}

// ---- zone graph ----

namespace {

void applyConstraint(Dbm& zone, const ClockConstraint& c, int globalClock) {
  using K = ClockConstraint::Kind;
  switch (c.kind) {
    case K::kLe: zone.constrainLe(globalClock, c.bound); break;
    case K::kLt: zone.constrainLt(globalClock, c.bound); break;
    case K::kGe: zone.constrainGe(globalClock, c.bound); break;
    case K::kGt: zone.constrainGt(globalClock, c.bound); break;
    case K::kEq: zone.constrainEq(globalClock, c.bound); break;
  }
}

void applyInvariants(const TimedSystem& system, const std::vector<int>& locations, Dbm& zone) {
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const int base = system.clockBase(i);
    for (const ClockConstraint& c :
         system.type(i)->invariant(locations[i])) {
      applyConstraint(zone, c, base + c.clock);
    }
  }
}

}  // namespace

ZoneReachResult zoneReachability(const TimedSystem& system, std::uint64_t maxStates) {
  system.validate();
  ZoneReachResult result;
  const int clocks = system.totalClocks();
  const int maxConst = system.maxConstant();

  // Per discrete location vector: list of stored zones (subsumption).
  std::map<std::vector<int>, std::vector<Dbm>> store;
  std::deque<ZoneState> waiting;

  ZoneState init{{}, Dbm(clocks)};
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    init.locations.push_back(system.type(i)->initialLocation());
  }
  init.zone.up();
  applyInvariants(system, init.locations, init.zone);
  init.zone.extrapolate(maxConst);
  store[init.locations].push_back(init.zone);
  waiting.push_back(init);

  while (!waiting.empty()) {
    const ZoneState state = std::move(waiting.front());
    waiting.pop_front();
    ++result.zoneStates;
    if (result.zoneStates > maxStates) {
      result.complete = false;
      return result;
    }

    bool anySuccessor = false;
    for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
      const TimedConnector& c = system.connector(ci);
      std::vector<std::vector<const TimedTransition*>> options;
      bool possible = true;
      for (const auto& [inst, port] : c.ends) {
        const TimedAtomicType& type = *system.type(static_cast<std::size_t>(inst));
        std::vector<const TimedTransition*> ts;
        for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
          const TimedTransition& t = type.transition(static_cast<int>(ti));
          if (t.port == port && t.from == state.locations[static_cast<std::size_t>(inst)]) {
            ts.push_back(&t);
          }
        }
        if (ts.empty()) {
          possible = false;
          break;
        }
        options.push_back(std::move(ts));
      }
      if (!possible) continue;
      std::vector<std::size_t> pick(options.size(), 0);
      while (true) {
        Dbm zone = state.zone;
        std::vector<int> nextLoc = state.locations;
        bool ok = true;
        for (std::size_t k = 0; k < options.size() && ok; ++k) {
          const auto [inst, port] = c.ends[k];
          const int base = system.clockBase(static_cast<std::size_t>(inst));
          for (const ClockConstraint& g : options[k][pick[k]]->guard) {
            applyConstraint(zone, g, base + g.clock);
            if (zone.empty()) {
              ok = false;
              break;
            }
          }
        }
        if (ok) {
          for (std::size_t k = 0; k < options.size(); ++k) {
            const auto [inst, port] = c.ends[k];
            const int base = system.clockBase(static_cast<std::size_t>(inst));
            for (const int r : options[k][pick[k]]->resets) zone.reset(base + r);
            nextLoc[static_cast<std::size_t>(inst)] = options[k][pick[k]]->to;
          }
          applyInvariants(system, nextLoc, zone);
          if (!zone.empty()) {
            zone.up();
            applyInvariants(system, nextLoc, zone);
            zone.extrapolate(maxConst);
          }
          if (!zone.empty()) {
            anySuccessor = true;
            auto& zones = store[nextLoc];
            const bool subsumed = std::any_of(
                zones.begin(), zones.end(),
                [&zone](const Dbm& existing) { return zone.subsetOf(existing); });
            if (!subsumed) {
              zones.push_back(zone);
              waiting.push_back(ZoneState{nextLoc, std::move(zone)});
            }
          }
        }
        std::size_t k = 0;
        while (k < pick.size()) {
          if (++pick[k] < options[k].size()) break;
          pick[k] = 0;
          ++k;
        }
        if (k == pick.size()) break;
      }
    }

    if (!anySuccessor) {
      // No discrete successor: a timelock unless time can diverge here
      // (every clock unbounded above in the delay-closed zone).
      bool divergent = true;
      for (int x = 1; x <= clocks; ++x) {
        if (state.zone.at(x, 0) < kInfinity) {
          divergent = false;
          break;
        }
      }
      if (clocks == 0) divergent = true;
      if (!divergent) result.timelock = true;
    }
  }

  result.complete = true;
  for (const auto& [loc, zones] : store) result.discreteStates.push_back(loc);
  return result;
}

}  // namespace cbip::timed
