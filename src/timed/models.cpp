#include "timed/models.hpp"

#include "util/require.hpp"

namespace cbip::timed {

namespace {
using K = ClockConstraint::Kind;
}

TimedAtomicTypePtr unitDelay() {
  auto t = std::make_shared<TimedAtomicType>("UnitDelay");
  const int tau = t->addClock("tau");
  // Locations encode (x, y); after an x edge, τ counts up to the matching
  // y edge one time unit later. The invariants τ <= 1 make the output
  // *urgent*: time cannot pass the emission instant.
  const int x0y0 = t->addLocation("x0y0");
  const int x1y0 = t->addLocation("x1y0", {{tau, K::kLe, 1}});
  const int x1y1 = t->addLocation("x1y1");
  const int x0y1 = t->addLocation("x0y1", {{tau, K::kLe, 1}});
  const int xup = t->addPort("xup");
  const int xdown = t->addPort("xdown");
  const int yup = t->addPort("yup");
  const int ydown = t->addPort("ydown");
  t->addTransition(TimedTransition{x0y0, xup, {}, {tau}, x1y0});
  t->addTransition(TimedTransition{x1y0, yup, {{tau, K::kEq, 1}}, {}, x1y1});
  t->addTransition(TimedTransition{x1y1, xdown, {}, {tau}, x0y1});
  t->addTransition(TimedTransition{x0y1, ydown, {{tau, K::kEq, 1}}, {}, x0y0});
  t->setInitialLocation(x0y0);
  t->validate();
  return t;
}

TimedAtomicTypePtr toggleDriver(int period) {
  require(period >= 1, "toggleDriver: period must be >= 1 (one change per time unit)");
  auto t = std::make_shared<TimedAtomicType>("Toggle" + std::to_string(period));
  const int c = t->addClock("c");
  const int lo = t->addLocation("lo", {{c, K::kLe, period}});
  const int hi = t->addLocation("hi", {{c, K::kLe, period}});
  const int xup = t->addPort("xup");
  const int xdown = t->addPort("xdown");
  t->addTransition(TimedTransition{lo, xup, {{c, K::kEq, period}}, {c}, hi});
  t->addTransition(TimedTransition{hi, xdown, {{c, K::kEq, period}}, {c}, lo});
  t->setInitialLocation(lo);
  t->validate();
  return t;
}

TimedSystem unitDelaySystem(int period) {
  TimedSystem sys;
  const int d = sys.addInstance("driver", toggleDriver(period));
  const int u = sys.addInstance("delay", unitDelay());
  auto port = [&sys](int inst, const char* name) {
    return std::make_pair(inst, sys.type(static_cast<std::size_t>(inst))->portIndex(name));
  };
  sys.addConnector(TimedConnector{"xup", {port(d, "xup"), port(u, "xup")}});
  sys.addConnector(TimedConnector{"xdown", {port(d, "xdown"), port(u, "xdown")}});
  sys.addConnector(TimedConnector{"yup", {port(u, "yup")}});
  sys.addConnector(TimedConnector{"ydown", {port(u, "ydown")}});
  sys.validate();
  return sys;
}

TimedSystem periodicTasks(const std::vector<int>& periods, const std::vector<int>& wcets) {
  require(periods.size() == wcets.size() && !periods.empty(),
          "periodicTasks: periods/wcets arity mismatch");
  TimedSystem sys;
  const int n = static_cast<int>(periods.size());

  // Deadline misses surface as timelocks: the invariant c <= period in
  // `ready`/`running` forbids time from passing the next release instant
  // while the previous job is still in flight (monograph Section 5.2.2:
  // "deadline misses ... correspond to deadlocks or time-locks in the
  // relevant system model").
  std::vector<int> taskIdx;
  for (int i = 0; i < n; ++i) {
    require(periods[static_cast<std::size_t>(i)] >= 1 && wcets[static_cast<std::size_t>(i)] >= 1,
            "periodicTasks: periods and wcets must be >= 1");
    auto t = std::make_shared<TimedAtomicType>("Task" + std::to_string(i));
    const int c = t->addClock("c");
    const int e = t->addClock("e");
    const int period = periods[static_cast<std::size_t>(i)];
    const int wcet = wcets[static_cast<std::size_t>(i)];
    const int idle = t->addLocation("idle", {{c, K::kLe, period}});
    const int ready = t->addLocation("ready", {{c, K::kLe, period}});
    const int running = t->addLocation("running",
                                       {{c, K::kLe, period}, {e, K::kLe, wcet}});
    const int release = t->addPort("release");
    const int start = t->addPort("start");
    const int finish = t->addPort("finish");
    t->addTransition(TimedTransition{idle, release, {{c, K::kEq, period}}, {c}, ready});
    t->addTransition(TimedTransition{ready, start, {}, {e}, running});
    t->addTransition(TimedTransition{running, finish, {{e, K::kEq, wcet}}, {}, idle});
    t->setInitialLocation(idle);
    t->validate();
    taskIdx.push_back(sys.addInstance("task" + std::to_string(i), std::move(t)));
  }

  auto proc = std::make_shared<TimedAtomicType>("Processor");
  const int free = proc->addLocation("free");
  std::vector<int> startPorts, finishPorts, busyLocs;
  for (int i = 0; i < n; ++i) {
    busyLocs.push_back(proc->addLocation("busy" + std::to_string(i)));
    startPorts.push_back(proc->addPort("start" + std::to_string(i)));
    finishPorts.push_back(proc->addPort("finish" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    proc->addTransition(TimedTransition{free, startPorts[static_cast<std::size_t>(i)], {}, {},
                                        busyLocs[static_cast<std::size_t>(i)]});
    proc->addTransition(TimedTransition{busyLocs[static_cast<std::size_t>(i)],
                                        finishPorts[static_cast<std::size_t>(i)], {}, {},
                                        free});
  }
  proc->setInitialLocation(free);
  proc->validate();
  const int procIdx = sys.addInstance("cpu", std::move(proc));

  for (int i = 0; i < n; ++i) {
    const auto& taskType = sys.type(static_cast<std::size_t>(taskIdx[static_cast<std::size_t>(i)]));
    sys.addConnector(TimedConnector{
        "release" + std::to_string(i),
        {{taskIdx[static_cast<std::size_t>(i)], taskType->portIndex("release")}}});
    sys.addConnector(TimedConnector{
        "start" + std::to_string(i),
        {{taskIdx[static_cast<std::size_t>(i)], taskType->portIndex("start")},
         {procIdx, startPorts[static_cast<std::size_t>(i)]}}});
    sys.addConnector(TimedConnector{
        "finish" + std::to_string(i),
        {{taskIdx[static_cast<std::size_t>(i)], taskType->portIndex("finish")},
         {procIdx, finishPorts[static_cast<std::size_t>(i)]}}});
  }
  sys.validate();
  return sys;
}

}  // namespace cbip::timed
