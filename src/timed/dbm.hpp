// Difference Bound Matrices: the canonical symbolic representation for
// clock zones in timed-automata analysis (monograph Section 5.2.2; the
// real-time BIP engine and the model-based implementation method of [1]
// rest on this machinery).
//
// A DBM over clocks x_1..x_n (x_0 is the constant-zero reference clock)
// stores, for every ordered pair, a bound x_i - x_j ≺ c with ≺ in {<, ≤}.
// Bounds are encoded in a single int: 2*c+1 for ≤c, 2*c for <c, and a
// large sentinel for ∞ — the standard UPPAAL encoding, which makes bound
// comparison plain integer comparison and bound addition cheap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cbip::timed {

/// Encoded bound: strictness in the low bit.
using Bound = int;

inline constexpr Bound kInfinity = 1 << 28;

constexpr Bound boundLe(int c) { return 2 * c + 1; }   // x - y <= c
constexpr Bound boundLt(int c) { return 2 * c; }       // x - y <  c
constexpr Bound boundZero() { return boundLe(0); }

constexpr int boundValue(Bound b) { return b >> 1; }
constexpr bool boundStrict(Bound b) { return (b & 1) == 0; }

/// Sum of two bounds (tightness composition along a path).
constexpr Bound boundAdd(Bound a, Bound b) {
  if (a >= kInfinity || b >= kInfinity) return kInfinity;
  // (c1, s1) + (c2, s2) = (c1+c2, strict if either strict): with the
  // encoding v = 2c + (1-strict), this is a + b - ((a&1) & (b&1)).
  return ((a >> 1) + (b >> 1)) * 2 + ((a & 1) & (b & 1));
}

/// Canonical-form DBM; all mutating operations re-canonicalize as needed.
class Dbm {
 public:
  /// Zone over `clocks` real clocks (plus the reference), initialized to
  /// the zero point (all clocks = 0).
  explicit Dbm(int clocks);

  int clockCount() const { return n_ - 1; }

  /// The zone is empty (inconsistent constraints).
  bool empty() const;

  /// Delay closure: lets time elapse (removes upper bounds on clocks).
  void up();

  /// Resets clock x (1-based) to zero.
  void reset(int x);

  /// Intersects with x - y ≺ c; x or y may be 0 for absolute bounds.
  /// Returns false if the zone became empty.
  bool constrain(int x, int y, Bound bound);
  /// Convenience: x <= c / x < c / x >= c / x > c / x == c.
  bool constrainLe(int x, int c) { return constrain(x, 0, boundLe(c)); }
  bool constrainLt(int x, int c) { return constrain(x, 0, boundLt(c)); }
  bool constrainGe(int x, int c) { return constrain(0, x, boundLe(-c)); }
  bool constrainGt(int x, int c) { return constrain(0, x, boundLt(-c)); }
  bool constrainEq(int x, int c) { return constrainLe(x, c) && constrainGe(x, c); }

  /// k-extrapolation with maximal constant `m` (ensures a finite zone
  /// graph); standard max-bound abstraction.
  void extrapolate(int m);

  /// Zone inclusion: *this ⊆ other.
  bool subsetOf(const Dbm& other) const;

  friend bool operator==(const Dbm&, const Dbm&);

  /// Raw bound on x - y (canonical form).
  Bound at(int x, int y) const { return m_[static_cast<std::size_t>(x * n_ + y)]; }

  /// Stable hash (canonical form makes it a semantic hash).
  std::uint64_t hash() const;

  /// Human-readable constraint list, e.g. "x1 <= 3, x2 - x1 < 1".
  std::string toString() const;

 private:
  void close();
  Bound& cell(int x, int y) { return m_[static_cast<std::size_t>(x * n_ + y)]; }

  int n_;                 // matrix dimension = clocks + 1
  std::vector<Bound> m_;  // row-major (n_ x n_)
  bool empty_ = false;
};

}  // namespace cbip::timed
