// Timed BIP components: automata with clocks, multiparty interactions and
// zone-based reachability (monograph Section 5.2.2 and Fig 5.3).
//
// A timed atomic component has locations with clock invariants and
// port-labelled transitions with clock guards and resets. Composition is
// by multiparty rendezvous connectors (the timed engines of the BIP
// toolset use exactly this model). Two analyses are provided:
//
//   * Concrete simulation (TimedEngine): integer-valued clocks with an
//     eager/lazy time policy — used by the model-based implementation
//     experiments (E10).
//   * Symbolic zone-graph reachability with DBMs and max-bound
//     extrapolation — used to verify Fig 5.3's unit-delay automaton and
//     the timed examples.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "timed/dbm.hpp"
#include "util/rng.hpp"

namespace cbip::timed {

/// One conjunct of a clock constraint: `clock ⋈ bound` (clock is 1-based,
/// matching the DBM convention).
struct ClockConstraint {
  enum class Kind { kLe, kLt, kGe, kGt, kEq };
  int clock = 1;
  Kind kind = Kind::kLe;
  int bound = 0;
};

struct TimedTransition {
  int from = 0;
  int port = 0;
  std::vector<ClockConstraint> guard;
  std::vector<int> resets;  // clocks reset to 0
  int to = 0;
};

class TimedAtomicType {
 public:
  explicit TimedAtomicType(std::string name) : name_(std::move(name)) {}

  int addLocation(const std::string& name, std::vector<ClockConstraint> invariant = {});
  int addClock(const std::string& name);  // returns 1-based clock id
  int addPort(const std::string& name);
  void addTransition(TimedTransition t);
  void setInitialLocation(int loc) { initial_ = loc; }
  void validate() const;

  const std::string& name() const { return name_; }
  std::size_t locationCount() const { return locations_.size(); }
  int clockCount() const { return static_cast<int>(clocks_.size()); }
  std::size_t portCount() const { return ports_.size(); }
  std::size_t transitionCount() const { return transitions_.size(); }
  const std::string& locationName(int i) const { return locations_[static_cast<std::size_t>(i)]; }
  const std::vector<ClockConstraint>& invariant(int loc) const {
    return invariants_[static_cast<std::size_t>(loc)];
  }
  const std::string& portName(int i) const { return ports_[static_cast<std::size_t>(i)]; }
  const TimedTransition& transition(int i) const {
    return transitions_[static_cast<std::size_t>(i)];
  }
  int initialLocation() const { return initial_; }
  int portIndex(const std::string& name) const;
  int locationIndex(const std::string& name) const;
  /// Largest constant appearing in guards/invariants (for extrapolation).
  int maxConstant() const;

 private:
  std::string name_;
  std::vector<std::string> locations_;
  std::vector<std::vector<ClockConstraint>> invariants_;
  std::vector<std::string> clocks_;
  std::vector<std::string> ports_;
  std::vector<TimedTransition> transitions_;
  int initial_ = 0;
};

using TimedAtomicTypePtr = std::shared_ptr<const TimedAtomicType>;

/// A multiparty rendezvous over (instance, port) pairs.
struct TimedConnector {
  std::string name;
  std::vector<std::pair<int, int>> ends;  // (instance, port)
};

class TimedSystem {
 public:
  int addInstance(const std::string& name, TimedAtomicTypePtr type);
  void addConnector(TimedConnector connector);
  void validate() const;

  std::size_t instanceCount() const { return instances_.size(); }
  const TimedAtomicTypePtr& type(std::size_t i) const { return instances_[i].second; }
  const std::string& instanceName(std::size_t i) const { return instances_[i].first; }
  std::size_t connectorCount() const { return connectors_.size(); }
  const TimedConnector& connector(std::size_t i) const { return connectors_[i]; }
  /// Total clock count across instances; instance i's clock c maps to the
  /// global DBM clock `clockBase(i) + c`.
  int totalClocks() const;
  int clockBase(std::size_t instance) const;
  int maxConstant() const;

 private:
  std::vector<std::pair<std::string, TimedAtomicTypePtr>> instances_;
  std::vector<TimedConnector> connectors_;
};

// ---- concrete-time simulation ----

struct TimedState {
  std::vector<int> locations;
  std::vector<std::int64_t> clocks;  // global clock values (integer time)
  std::int64_t now = 0;
};

TimedState timedInitialState(const TimedSystem& system);

struct TimedStep {
  std::int64_t time = 0;
  std::string label;
};

struct TimedRunResult {
  std::vector<TimedStep> steps;
  bool timelocked = false;  // no interaction ever becomes enabled again
  std::int64_t finalTime = 0;
};

/// Runs the system with the *eager* (as-soon-as-possible) time policy:
/// advance time to the earliest instant where some interaction is enabled,
/// then fire a uniformly random one.
TimedRunResult runTimed(const TimedSystem& system, std::uint64_t maxSteps, Rng& rng);

// ---- symbolic zone-graph reachability ----

struct ZoneState {
  std::vector<int> locations;
  Dbm zone;
};

struct ZoneReachResult {
  std::uint64_t zoneStates = 0;
  bool complete = false;
  /// Location vectors seen (discrete projections).
  std::vector<std::vector<int>> discreteStates;
  /// True iff some reachable zone state has no delay-or-action successor
  /// and cannot let time diverge (a timelock).
  bool timelock = false;
};

ZoneReachResult zoneReachability(const TimedSystem& system, std::uint64_t maxStates = 100'000);

}  // namespace cbip::timed
