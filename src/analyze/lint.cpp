#include "analyze/lint.hpp"

#include <string>
#include <vector>

#include "util/require.hpp"

namespace cbip::analyze {

namespace {

using expr::Expr;
using expr::VarRef;

/// Display names for component-local expressions.
std::string localName(const AtomicType& type, VarRef r) {
  if (r.scope == 0 && r.index >= 0 &&
      static_cast<std::size_t>(r.index) < type.variableCount()) {
    return type.variable(r.index).name;
  }
  return "?";
}

std::string transitionWhere(const AtomicType& type, int ti) {
  const Transition& t = type.transition(ti);
  const std::string port =
      t.port == kInternalPort ? std::string("tau") : type.port(t.port).name;
  return "atom " + type.name() + ", transition #" + std::to_string(ti) + " (" +
         type.locationName(t.from) + " --" + port + "--> " + type.locationName(t.to) + ")";
}

/// Classifies one guard under `env` into at most one diagnostic.
void lintGuard(const Expr& guard, const IntervalEnv& env, const std::string& where,
               const std::string& guardText, bool connectorSide,
               std::vector<Diagnostic>& out) {
  if (guard.isTrue()) return;  // the default guard is not worth a finding
  const ExprFacts g = analyzeExpr(guard, env);
  if (g.mustRaise) {
    out.push_back(Diagnostic{LintKind::kGuaranteedRaise, where,
                             "guard " + guardText + " raises EvalError on every evaluation"});
    return;
  }
  if (g.mayRaise) return;  // runtime-dependent; not statically decidable
  if (g.value == Interval::singleton(0)) {
    out.push_back(Diagnostic{
        connectorSide ? LintKind::kDeadConnector : LintKind::kDeadTransition, where,
        "guard " + guardText + " is always false (provable value interval [0, 0])"});
  } else if (!g.value.isBottom() && !g.value.contains(0)) {
    out.push_back(Diagnostic{
        connectorSide ? LintKind::kAlwaysTrueConnectorGuard : LintKind::kAlwaysTrueGuard, where,
        "guard " + guardText + " is always true (provable value interval " +
            g.value.toString() + "); drop it or fix the condition"});
  }
}

}  // namespace

const char* lintKindName(LintKind kind) {
  switch (kind) {
    case LintKind::kDeadTransition: return "dead-transition";
    case LintKind::kAlwaysTrueGuard: return "always-true-guard";
    case LintKind::kGuaranteedRaise: return "guaranteed-evalerror";
    case LintKind::kDeadConnector: return "dead-connector";
    case LintKind::kAlwaysTrueConnectorGuard: return "always-true-connector-guard";
    case LintKind::kConnectorVarReadBeforeWrite: return "connector-var-read-before-write";
    case LintKind::kConnectorVarNeverRead: return "connector-var-never-read";
    case LintKind::kUnreachableLocation: return "unreachable-location";
    case LintKind::kInteractionNeverEnabled: return "interaction-never-enabled";
  }
  return "unknown";
}

std::string toString(const Diagnostic& d) {
  return d.where + ": [" + lintKindName(d.kind) + "] " + d.message;
}

std::vector<Diagnostic> lintType(const AtomicType& type) {
  std::vector<Diagnostic> out;
  const std::vector<Interval> intervals = typeIntervals(type);
  const IntervalEnv env = [&type, &intervals](VarRef r) {
    if (r.scope != 0 || r.index < 0 ||
        static_cast<std::size_t>(r.index) >= intervals.size()) {
      return Interval::top();
    }
    return intervals[static_cast<std::size_t>(r.index)];
  };
  const auto name = [&type](VarRef r) { return localName(type, r); };
  for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
    const Transition& t = type.transition(static_cast<int>(ti));
    const std::string where = transitionWhere(type, static_cast<int>(ti));
    lintGuard(t.guard, env, where, "`" + t.guard.toString(name) + "`",
              /*connectorSide=*/false, out);
    for (std::size_t ai = 0; ai < t.actions.size(); ++ai) {
      const expr::Assign& a = t.actions[ai];
      const ExprFacts f = analyzeExpr(a.value, env);
      if (f.mustRaise) {
        out.push_back(Diagnostic{
            LintKind::kGuaranteedRaise, where,
            "action #" + std::to_string(ai) + " (" + localName(type, a.target) +
                " := " + a.value.toString(name) + ") raises EvalError on every evaluation"});
        break;  // later actions of the block never run
      }
    }
  }
  return out;
}

std::vector<Diagnostic> lintSystem(const System& system) {
  std::vector<Diagnostic> out;
  // Each distinct type once, however many instances share it.
  std::vector<const AtomicType*> seen;
  for (const System::Instance& inst : system.instances()) {
    const AtomicType* t = inst.type.get();
    bool dup = false;
    for (const AtomicType* s : seen) dup = dup || s == t;
    if (dup) continue;
    seen.push_back(t);
    std::vector<Diagnostic> typeDiags = lintType(*t);
    out.insert(out.end(), typeDiags.begin(), typeDiags.end());
  }
  for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
    const Connector& c = system.connector(ci);
    const std::string where =
        "connector " + (c.name().empty() ? "#" + std::to_string(ci) : c.name());
    const std::size_t nVars = c.variableCount();
    // Connector-local variables are zeroed by the engine before every
    // evaluation, then written by up transfers in order. Track the data
    // flow: intervals for precision, written/read flags for the two
    // flow diagnostics.
    std::vector<Interval> connVars(nVars, Interval::singleton(0));
    std::vector<char> written(nVars, 0);
    std::vector<char> readEver(nVars, 0);
    std::vector<char> rbwReported(nVars, 0);
    const IntervalEnv env = [&connVars](VarRef r) {
      if (r.scope == expr::kConnectorScope) {
        if (r.index >= 0 && static_cast<std::size_t>(r.index) < connVars.size()) {
          return connVars[static_cast<std::size_t>(r.index)];
        }
      }
      // End-scope reads are exported variables, which typeIntervals()
      // deliberately seeds at top (connector-writable): no extra
      // precision is available there.
      return Interval::top();
    };
    const auto exprName = [&system, &c](VarRef r) -> std::string {
      if (r.scope == expr::kConnectorScope) {
        return r.index >= 0 && static_cast<std::size_t>(r.index) < c.variableCount()
                   ? c.variableName(static_cast<std::size_t>(r.index))
                   : "?";
      }
      if (r.scope >= 0 && static_cast<std::size_t>(r.scope) < c.endCount()) {
        const ConnectorEnd& end = c.end(static_cast<std::size_t>(r.scope));
        const AtomicType& t = *system.instance(static_cast<std::size_t>(end.port.instance)).type;
        const PortDecl& p = t.port(end.port.port);
        if (r.index >= 0 && static_cast<std::size_t>(r.index) < p.exports.size()) {
          return system.endLabel(end) + "." +
                 t.variable(p.exports[static_cast<std::size_t>(r.index)]).name;
        }
      }
      return "?";
    };
    // Flags connector-variable reads in `e`, reporting each variable read
    // before any up transfer defined it (it reads the per-evaluation
    // zero) at most once per connector.
    const auto noteReads = [&](const Expr& e, const std::string& site) {
      std::vector<VarRef> refs;
      e.collectVars(refs);
      for (const VarRef& r : refs) {
        if (r.scope != expr::kConnectorScope) continue;
        if (r.index < 0 || static_cast<std::size_t>(r.index) >= nVars) continue;
        const std::size_t i = static_cast<std::size_t>(r.index);
        readEver[i] = 1;
        if (written[i] == 0 && rbwReported[i] == 0) {
          rbwReported[i] = 1;
          out.push_back(Diagnostic{
              LintKind::kConnectorVarReadBeforeWrite, where,
              site + " reads connector variable '" + c.variableName(i) +
                  "' before any up transfer wrote it (it reads the per-interaction zero)"});
        }
      }
    };
    noteReads(c.guard(), "the guard");
    lintGuard(c.guard(), env, where, "`" + c.guard().toString(exprName) + "`",
              /*connectorSide=*/true, out);
    for (std::size_t ui = 0; ui < c.ups().size(); ++ui) {
      const expr::Assign& up = c.ups()[ui];
      noteReads(up.value, "up #" + std::to_string(ui));
      const ExprFacts f = analyzeExpr(up.value, env);
      if (f.mustRaise) {
        out.push_back(Diagnostic{
            LintKind::kGuaranteedRaise, where,
            "up #" + std::to_string(ui) + " (" + exprName(up.target) +
                " := " + up.value.toString(exprName) +
                ") raises EvalError on every evaluation"});
      }
      if (up.target.scope == expr::kConnectorScope && up.target.index >= 0 &&
          static_cast<std::size_t>(up.target.index) < nVars) {
        const std::size_t i = static_cast<std::size_t>(up.target.index);
        connVars[i] = f.mustRaise ? Interval::top() : f.value;
        written[i] = 1;
      }
    }
    for (std::size_t di = 0; di < c.downs().size(); ++di) {
      const DownAssign& down = c.downs()[di];
      noteReads(down.value, "down #" + std::to_string(di));
      const ExprFacts f = analyzeExpr(down.value, env);
      if (f.mustRaise) {
        out.push_back(Diagnostic{
            LintKind::kGuaranteedRaise, where,
            "down #" + std::to_string(di) + " (value " + down.value.toString(exprName) +
                ") raises EvalError on every evaluation"});
      }
    }
    for (std::size_t i = 0; i < nVars; ++i) {
      if (readEver[i] != 0) continue;
      out.push_back(Diagnostic{
          LintKind::kConnectorVarNeverRead, where,
          written[i] != 0
              ? "connector variable '" + c.variableName(i) +
                    "' is written by an up transfer but never read (dead up-chain)"
              : "connector variable '" + c.variableName(i) + "' is declared but never used"});
    }
  }
  return out;
}

}  // namespace cbip::analyze
