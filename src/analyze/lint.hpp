// Model linter: static diagnostics over components and connectors.
//
// Drives the abstract interpreter (analyze.hpp) across a whole model the
// way the verifier walks it — at the Expr level, under the
// reachable-in-isolation environment of typeIntervals() — and reports
// defects the paper's design flow wants caught before any engine runs:
//
//   component side (lintType):
//     * kDeadTransition      — guard provably false in every reachable
//                              state: the transition can never fire;
//     * kAlwaysTrueGuard     — a syntactically non-trivial guard that is
//                              provably true (dead code in the guard);
//     * kGuaranteedRaise     — a guard or action that raises EvalError on
//                              every evaluation (div/mod by a provably
//                              zero divisor, or INT64_MIN / -1);
//
//   connector side (lintSystem, additionally):
//     * kDeadConnector             — connector guard provably false;
//     * kAlwaysTrueConnectorGuard  — non-trivial connector guard provably
//                                    true;
//     * kConnectorVarReadBeforeWrite — a connector-local variable read
//                              (guard, earlier-than-defining up, or down)
//                              before any up wrote it: it reads the zero
//                              the engine re-initializes per evaluation;
//     * kConnectorVarNeverRead — a connector-local variable no guard, up
//                              or down ever reads (dead declaration or
//                              dead up-chain).
//
// Diagnostics carry provenance ("atom Fork, transition #2
// (free --take--> taken)") so the cbip-lint CLI can print actionable
// locations. The linter never mutates the model and is independent of
// the build-time pruning path — it compiles nothing and runs entirely on
// the symbolic side.
#pragma once

#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "core/atomic.hpp"
#include "core/system.hpp"

namespace cbip::analyze {

enum class LintKind {
  kDeadTransition,
  kAlwaysTrueGuard,
  kGuaranteedRaise,
  kDeadConnector,
  kAlwaysTrueConnectorGuard,
  kConnectorVarReadBeforeWrite,
  kConnectorVarNeverRead,
  // Verification-fed diagnostics (src/verify/lint.hpp — produced from
  // D-Finder component invariants, not from the abstract interpreter):
  kUnreachableLocation,       // location unreachable under the invariants
  kInteractionNeverEnabled,   // interaction provably never enabled (DIS)
};

/// Stable lowercase-kebab label, e.g. "dead-transition".
const char* lintKindName(LintKind kind);

struct Diagnostic {
  LintKind kind = LintKind::kDeadTransition;
  /// Provenance: which atom/transition/connector the finding is about.
  std::string where;
  /// Human-readable explanation, including the proving intervals.
  std::string message;
};

/// Renders "where: [kind] message".
std::string toString(const Diagnostic& d);

/// Lints one component type in isolation under typeIntervals(type).
std::vector<Diagnostic> lintType(const AtomicType& type);

/// Lints every distinct component type of `system` plus every connector
/// (guard, up and down programs, connector-variable data flow). The
/// system should be validated; unvalidated models may throw ModelError.
std::vector<Diagnostic> lintSystem(const System& system);

}  // namespace cbip::analyze
