#include "analyze/analyze.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/require.hpp"

namespace cbip::analyze {

namespace {

// Transfer functions compute in 128 bits so every int64 corner case
// (INT64_MIN / -1 = 2^63, |INT64_MIN| = 2^63) stays representable.
using Wide = __int128;

constexpr Value kMinV = std::numeric_limits<Value>::min();
constexpr Value kMaxV = std::numeric_limits<Value>::max();

/// Hull of a 128-bit corner range; anything escaping int64 means the
/// concrete (wrapping) operator's image is not an interval, so: top.
Interval fromWide(Wide lo, Wide hi) {
  if (lo < static_cast<Wide>(kMinV) || hi > static_cast<Wide>(kMaxV)) return Interval::top();
  return Interval{static_cast<Value>(lo), static_cast<Value>(hi)};
}

Wide wideAbs(Value v) {
  const Wide w = v;
  return w < 0 ? -w : w;
}

/// Largest |divisor| admitted by `b` (up to 2^63 for INT64_MIN).
Wide maxAbs(Interval b) { return std::max(wideAbs(b.lo), wideAbs(b.hi)); }

bool mayNonzero(Interval v) { return !v.isBottom() && !(v.lo == 0 && v.hi == 0); }

/// Abstract 0/1 normalization (the kAnd/kOr/kNot result space).
Interval boolOf(Interval v) {
  if (v.isBottom()) return Interval::bottom();
  if (!v.contains(0)) return Interval::singleton(1);
  if (v.isSingleton()) return Interval::singleton(0);
  return Interval::range(0, 1);
}

}  // namespace

std::string Interval::toString() const {
  if (isBottom()) return "[empty]";
  if (isTop()) return "[int64]";
  return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

Interval join(Interval a, Interval b) {
  if (a.isBottom()) return b;
  if (b.isBottom()) return a;
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval absAdd(Interval a, Interval b) {
  if (a.isBottom() || b.isBottom()) return Interval::bottom();
  return fromWide(static_cast<Wide>(a.lo) + b.lo, static_cast<Wide>(a.hi) + b.hi);
}

Interval absSub(Interval a, Interval b) {
  if (a.isBottom() || b.isBottom()) return Interval::bottom();
  return fromWide(static_cast<Wide>(a.lo) - b.hi, static_cast<Wide>(a.hi) - b.lo);
}

Interval absMul(Interval a, Interval b) {
  if (a.isBottom() || b.isBottom()) return Interval::bottom();
  const Wide corners[4] = {static_cast<Wide>(a.lo) * b.lo, static_cast<Wide>(a.lo) * b.hi,
                           static_cast<Wide>(a.hi) * b.lo, static_cast<Wide>(a.hi) * b.hi};
  Wide lo = corners[0];
  Wide hi = corners[0];
  for (const Wide c : corners) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return fromWide(lo, hi);
}

Interval absNeg(Interval a) {
  if (a.isBottom()) return Interval::bottom();
  // wrapNeg(INT64_MIN) == INT64_MIN: an interval straddling that fixpoint
  // negates to a non-convex set whose hull is top.
  if (a.contains(kMinV)) {
    return a.isSingleton() ? Interval::singleton(kMinV) : Interval::top();
  }
  return Interval{-a.hi, -a.lo};
}

Interval absAbs(Interval a) {
  if (a.isBottom()) return Interval::bottom();
  // wrapAbs(INT64_MIN) == INT64_MIN, same non-convexity as absNeg.
  if (a.contains(kMinV)) {
    return a.isSingleton() ? Interval::singleton(kMinV) : Interval::top();
  }
  const Value lo = a.lo >= 0 ? a.lo : (a.hi < 0 ? -a.hi : 0);
  const Value hi = std::max(a.lo < 0 ? -a.lo : a.lo, a.hi < 0 ? -a.hi : a.hi);
  return Interval{lo, hi};
}

Interval absNot(Interval a) {
  if (a.isBottom()) return Interval::bottom();
  if (!a.contains(0)) return Interval::singleton(0);
  if (a.isSingleton()) return Interval::singleton(1);
  return Interval::range(0, 1);
}

Interval absMin(Interval a, Interval b) {
  if (a.isBottom() || b.isBottom()) return Interval::bottom();
  return Interval{std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval absMax(Interval a, Interval b) {
  if (a.isBottom() || b.isBottom()) return Interval::bottom();
  return Interval{std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval absCmp(expr::Op op, Interval a, Interval b) {
  using expr::Op;
  if (a.isBottom() || b.isBottom()) return Interval::bottom();
  int truth = -1;  // -1 unknown, 0 definitely false, 1 definitely true
  switch (op) {
    case Op::kEq:
      if (a.isSingleton() && b.isSingleton() && a.lo == b.lo) truth = 1;
      else if (a.hi < b.lo || b.hi < a.lo) truth = 0;
      break;
    case Op::kNe:
      if (a.hi < b.lo || b.hi < a.lo) truth = 1;
      else if (a.isSingleton() && b.isSingleton() && a.lo == b.lo) truth = 0;
      break;
    case Op::kLt:
      if (a.hi < b.lo) truth = 1;
      else if (a.lo >= b.hi) truth = 0;
      break;
    case Op::kLe:
      if (a.hi <= b.lo) truth = 1;
      else if (a.lo > b.hi) truth = 0;
      break;
    case Op::kGt:
      if (a.lo > b.hi) truth = 1;
      else if (a.hi <= b.lo) truth = 0;
      break;
    case Op::kGe:
      if (a.lo >= b.hi) truth = 1;
      else if (a.hi < b.lo) truth = 0;
      break;
    default:
      throw ModelError("absCmp: not a comparison operator");
  }
  if (truth == 1) return Interval::singleton(1);
  if (truth == 0) return Interval::singleton(0);
  return Interval::range(0, 1);
}

namespace {

/// Shared raise logic of `/` and `%` (both raise on the same operand
/// pairs; only the result interval differs).
void divRaises(Interval a, Interval b, DivFacts& f) {
  f.mayRaise = b.contains(0) || (b.contains(-1) && a.contains(kMinV));
  f.mustRaise = (b == Interval::singleton(0)) ||
                (b == Interval::singleton(-1) && a == Interval::singleton(kMinV));
}

}  // namespace

DivFacts absDiv(Interval a, Interval b) {
  DivFacts f;
  if (a.isBottom() || b.isBottom()) return f;  // bottom result, no raise
  divRaises(a, b, f);
  if (f.mustRaise) return f;
  // Truncating division is monotone in each operand once the divisor has
  // constant sign, so the hull over the corners of the negative and
  // positive divisor sub-ranges is exact up to convexity. The one corner
  // outside int64 (INT64_MIN / -1 = 2^63) raises instead of occurring,
  // which makes the int64 clamp sound.
  bool any = false;
  Wide lo = 0;
  Wide hi = 0;
  const auto corner = [&](Wide c) {
    if (!any) {
      lo = hi = c;
      any = true;
    } else {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  };
  if (b.lo <= -1) {
    const Value d0 = b.lo;
    const Value d1 = std::min<Value>(b.hi, -1);
    for (const Value d : {d0, d1}) {
      for (const Value nu : {a.lo, a.hi}) corner(static_cast<Wide>(nu) / d);
    }
  }
  if (b.hi >= 1) {
    const Value d0 = std::max<Value>(b.lo, 1);
    const Value d1 = b.hi;
    for (const Value d : {d0, d1}) {
      for (const Value nu : {a.lo, a.hi}) corner(static_cast<Wide>(nu) / d);
    }
  }
  if (!any) return f;  // b == [0, 0] is mustRaise above; unreachable guard
  f.result = Interval{static_cast<Value>(std::max<Wide>(lo, kMinV)),
                      static_cast<Value>(std::min<Wide>(hi, kMaxV))};
  return f;
}

DivFacts absMod(Interval a, Interval b) {
  DivFacts f;
  if (a.isBottom() || b.isBottom()) return f;
  divRaises(a, b, f);
  if (f.mustRaise) return f;
  // Singleton pair: compute the remainder exactly (the raising pairs are
  // mustRaise above, so the concrete operator is defined here).
  if (a.isSingleton() && b.isSingleton() && !f.mayRaise) {
    f.result = Interval::singleton(a.lo % b.lo);
    return f;
  }
  // C++ remainder: sign follows the dividend, |a % b| <= min(|a|, |b|-1).
  const Wide bound = std::min(maxAbs(b) - 1, maxAbs(a));
  const Value lo =
      a.lo < 0 ? static_cast<Value>(std::max<Wide>(-bound, static_cast<Wide>(kMinV))) : 0;
  const Value hi =
      a.hi > 0 ? static_cast<Value>(std::min<Wide>(bound, static_cast<Wide>(kMaxV))) : 0;
  f.result = Interval{lo, hi};
  return f;
}

ExprFacts analyzeExpr(const expr::Expr& e, const IntervalEnv& env) {
  using expr::Op;
  switch (e.op()) {
    case Op::kLit:
      return ExprFacts{Interval::singleton(e.literal()), false, false};
    case Op::kVar:
      return ExprFacts{env(e.ref()), false, false};
    case Op::kNeg:
    case Op::kAbs:
    case Op::kNot: {
      ExprFacts c = analyzeExpr(e.child(0), env);
      if (c.mustRaise) return c;
      c.value = e.op() == Op::kNeg   ? absNeg(c.value)
                : e.op() == Op::kAbs ? absAbs(c.value)
                                     : absNot(c.value);
      return c;
    }
    case Op::kAnd:
    case Op::kOr: {
      const bool isAnd = e.op() == Op::kAnd;
      const ExprFacts a = analyzeExpr(e.child(0), env);
      if (a.mustRaise) return a;
      // Short-circuit decided abstractly: the skipped right operand
      // contributes neither value nor raise facts, mirroring the
      // concrete skip.
      const bool rhsMayRun = isAnd ? mayNonzero(a.value) : a.value.contains(0);
      if (!rhsMayRun) return ExprFacts{boolOf(a.value), a.mayRaise, false};
      const bool rhsAlwaysRuns = isAnd ? !a.value.contains(0) : !mayNonzero(a.value);
      const ExprFacts b = analyzeExpr(e.child(1), env);
      ExprFacts out;
      out.mayRaise = a.mayRaise || b.mayRaise;
      if (rhsAlwaysRuns && b.mustRaise) {
        out.mustRaise = true;
        out.value = Interval::bottom();
        return out;
      }
      Interval res = Interval::bottom();
      if (isAnd) {
        if (a.value.contains(0)) res = join(res, Interval::singleton(0));
        if (!b.mustRaise) res = join(res, boolOf(b.value));
      } else {
        if (mayNonzero(a.value)) res = join(res, Interval::singleton(1));
        if (!b.mustRaise) res = join(res, boolOf(b.value));
      }
      out.value = res;
      return out;
    }
    case Op::kIte: {
      const ExprFacts c = analyzeExpr(e.child(0), env);
      if (c.mustRaise) return c;
      ExprFacts out;
      out.mayRaise = c.mayRaise;
      Interval res = Interval::bottom();
      bool allRaise = true;
      if (mayNonzero(c.value)) {
        const ExprFacts t = analyzeExpr(e.child(1), env);
        out.mayRaise = out.mayRaise || t.mayRaise;
        if (!t.mustRaise) {
          allRaise = false;
          res = join(res, t.value);
        }
      }
      if (c.value.contains(0)) {
        const ExprFacts f = analyzeExpr(e.child(2), env);
        out.mayRaise = out.mayRaise || f.mayRaise;
        if (!f.mustRaise) {
          allRaise = false;
          res = join(res, f.value);
        }
      }
      out.mustRaise = allRaise;
      if (out.mustRaise) out.mayRaise = true;
      out.value = out.mustRaise ? Interval::bottom() : res;
      return out;
    }
    default: {  // binary arithmetic / comparison — both operands evaluate
      const ExprFacts a = analyzeExpr(e.child(0), env);
      const ExprFacts b = analyzeExpr(e.child(1), env);
      ExprFacts out;
      out.mayRaise = a.mayRaise || b.mayRaise;
      if (a.mustRaise || b.mustRaise) {
        out.mustRaise = true;
        out.mayRaise = true;
        out.value = Interval::bottom();
        return out;
      }
      switch (e.op()) {
        case Op::kAdd: out.value = absAdd(a.value, b.value); break;
        case Op::kSub: out.value = absSub(a.value, b.value); break;
        case Op::kMul: out.value = absMul(a.value, b.value); break;
        case Op::kMin: out.value = absMin(a.value, b.value); break;
        case Op::kMax: out.value = absMax(a.value, b.value); break;
        case Op::kDiv:
        case Op::kMod: {
          const DivFacts d =
              e.op() == Op::kDiv ? absDiv(a.value, b.value) : absMod(a.value, b.value);
          out.mayRaise = out.mayRaise || d.mayRaise;
          out.mustRaise = d.mustRaise;
          out.value = d.result;
          break;
        }
        default:
          out.value = absCmp(e.op(), a.value, b.value);
          break;
      }
      return out;
    }
  }
}

ExprFacts analyzeLocal(const expr::Expr& e, std::span<const Interval> slots) {
  return analyzeExpr(e, [slots](expr::VarRef r) {
    if (r.scope != 0 || r.index < 0 || static_cast<std::size_t>(r.index) >= slots.size()) {
      return Interval::top();
    }
    return slots[static_cast<std::size_t>(r.index)];
  });
}

namespace {

using expr::Instr;
using expr::OpCode;

/// Abstract machine state at one program point: the evaluation stack,
/// the CSE temp registers and the (strongly-updated) frame slots.
struct AbsState {
  std::vector<Interval> stack;
  std::vector<Interval> temps;
  std::vector<Interval> slots;
};

}  // namespace

ProgramFacts analyzeProgram(const expr::ExprProgram& p, std::span<const Interval> slots) {
  ProgramFacts out;
  out.slotsRead.assign(slots.size(), 0);
  out.slotsWritten.assign(slots.size(), 0);
  if (p.empty()) {
    // The empty program is the trivially-true guard.
    out.value = Interval::singleton(1);
    out.exitSlots.assign(slots.begin(), slots.end());
    return out;
  }
  const std::vector<Instr>& code = p.code();
  const std::size_t n = code.size();
  // Conservative degradation for bytecode this pass does not understand
  // (foreign opcodes, out-of-range slots, malformed stack discipline):
  // no facts beyond "a checked division might raise".
  const auto fallback = [&] {
    ProgramFacts f;
    f.value = Interval::top();
    f.slotsRead.assign(slots.size(), 1);
    f.slotsWritten.assign(slots.size(), 1);
    f.exitSlots.assign(slots.size(), Interval::top());
    for (const Instr& in : code) {
      if (in.op == OpCode::kDiv || in.op == OpCode::kMod) f.mayRaise = true;
    }
    return f;
  };
  // Every jump the compiler emits is forward, so pc order is a
  // topological order of the control-flow graph: one in-order pass with
  // joins at jump targets is the exact fixpoint.
  std::vector<std::optional<AbsState>> in(n + 1);
  in[0] = AbsState{{},
                   std::vector<Interval>(static_cast<std::size_t>(p.tempCount()), Interval::top()),
                   std::vector<Interval>(slots.begin(), slots.end())};
  bool broken = false;
  const auto propagate = [&](std::size_t target, AbsState s) {
    if (target > n) {
      broken = true;
      return;
    }
    if (!in[target]) {
      in[target] = std::move(s);
      return;
    }
    AbsState& d = *in[target];
    if (d.stack.size() != s.stack.size()) {
      broken = true;
      return;
    }
    for (std::size_t i = 0; i < d.stack.size(); ++i) d.stack[i] = join(d.stack[i], s.stack[i]);
    for (std::size_t i = 0; i < d.temps.size(); ++i) d.temps[i] = join(d.temps[i], s.temps[i]);
    for (std::size_t i = 0; i < d.slots.size(); ++i) d.slots[i] = join(d.slots[i], s.slots[i]);
  };
  for (std::size_t pc = 0; pc < n && !broken; ++pc) {
    if (!in[pc]) continue;  // unreachable program point
    AbsState s = *in[pc];
    const Instr& ins = code[pc];
    const auto stackHas = [&](std::size_t k) {
      if (s.stack.size() < k) broken = true;
      return !broken;
    };
    const auto forwardTarget = [&] {
      if (ins.arg < 0 || static_cast<std::size_t>(ins.arg) <= pc) broken = true;
      return !broken;
    };
    const auto slotIndex = [&](int arg) {
      if (arg < 0 || static_cast<std::size_t>(arg) >= slots.size()) broken = true;
      return static_cast<std::size_t>(arg);
    };
    const auto tempIndex = [&](int arg) {
      if (arg < 0 || static_cast<std::size_t>(arg) >= s.temps.size()) broken = true;
      return static_cast<std::size_t>(arg);
    };
    switch (ins.op) {
      case OpCode::kPush:
        s.stack.push_back(Interval::singleton(ins.imm));
        propagate(pc + 1, std::move(s));
        break;
      case OpCode::kLoad: {
        const std::size_t idx = slotIndex(ins.arg);
        if (broken) break;
        out.slotsRead[idx] = 1;
        s.stack.push_back(s.slots[idx]);
        propagate(pc + 1, std::move(s));
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kMin:
      case OpCode::kMax:
      case OpCode::kEq:
      case OpCode::kNe:
      case OpCode::kLt:
      case OpCode::kLe:
      case OpCode::kGt:
      case OpCode::kGe: {
        if (!stackHas(2)) break;
        const Interval b = s.stack.back();
        s.stack.pop_back();
        const Interval a = s.stack.back();
        Interval r;
        switch (ins.op) {
          case OpCode::kAdd: r = absAdd(a, b); break;
          case OpCode::kSub: r = absSub(a, b); break;
          case OpCode::kMul: r = absMul(a, b); break;
          case OpCode::kMin: r = absMin(a, b); break;
          case OpCode::kMax: r = absMax(a, b); break;
          case OpCode::kEq: r = absCmp(expr::Op::kEq, a, b); break;
          case OpCode::kNe: r = absCmp(expr::Op::kNe, a, b); break;
          case OpCode::kLt: r = absCmp(expr::Op::kLt, a, b); break;
          case OpCode::kLe: r = absCmp(expr::Op::kLe, a, b); break;
          case OpCode::kGt: r = absCmp(expr::Op::kGt, a, b); break;
          default: r = absCmp(expr::Op::kGe, a, b); break;
        }
        s.stack.back() = r;
        propagate(pc + 1, std::move(s));
        break;
      }
      case OpCode::kDiv:
      case OpCode::kMod: {
        if (!stackHas(2)) break;
        const Interval b = s.stack.back();
        s.stack.pop_back();
        const Interval a = s.stack.back();
        const DivFacts d = ins.op == OpCode::kDiv ? absDiv(a, b) : absMod(a, b);
        out.divSites.push_back(DivSite{pc, d.mayRaise, d.mustRaise});
        if (d.mayRaise) out.mayRaise = true;
        // No abstract state flows past a guaranteed raise.
        if (d.mustRaise) break;
        s.stack.back() = d.result;
        propagate(pc + 1, std::move(s));
        break;
      }
      case OpCode::kDivUnchecked:
      case OpCode::kModUnchecked: {
        // Already relaxed by an earlier analysis pass: the proof that the
        // site never raises was done then, so it is neither a raise
        // source nor a site to report again (idempotence).
        if (!stackHas(2)) break;
        const Interval b = s.stack.back();
        s.stack.pop_back();
        const Interval a = s.stack.back();
        const DivFacts d = ins.op == OpCode::kDivUnchecked ? absDiv(a, b) : absMod(a, b);
        s.stack.back() = d.result.isBottom() ? Interval::top() : d.result;
        propagate(pc + 1, std::move(s));
        break;
      }
      case OpCode::kNeg:
      case OpCode::kAbs:
      case OpCode::kNot:
        if (!stackHas(1)) break;
        s.stack.back() = ins.op == OpCode::kNeg   ? absNeg(s.stack.back())
                         : ins.op == OpCode::kAbs ? absAbs(s.stack.back())
                                                  : absNot(s.stack.back());
        propagate(pc + 1, std::move(s));
        break;
      case OpCode::kJump:
        if (!forwardTarget()) break;
        propagate(static_cast<std::size_t>(ins.arg), std::move(s));
        break;
      case OpCode::kJumpIfZero:
      case OpCode::kJumpIfNonZero: {
        if (!stackHas(1) || !forwardTarget()) break;
        const Interval v = s.stack.back();
        s.stack.pop_back();
        const bool zeroFeasible = v.contains(0);
        const bool nonzeroFeasible = mayNonzero(v);
        const bool jumpOnZero = ins.op == OpCode::kJumpIfZero;
        if (jumpOnZero ? zeroFeasible : nonzeroFeasible) {
          propagate(static_cast<std::size_t>(ins.arg), s);
        }
        if (jumpOnZero ? nonzeroFeasible : zeroFeasible) {
          propagate(pc + 1, std::move(s));
        }
        break;
      }
      case OpCode::kStore: {
        if (!stackHas(1)) break;
        const std::size_t idx = slotIndex(ins.arg);
        if (broken) break;
        out.slotsWritten[idx] = 1;
        s.slots[idx] = s.stack.back();
        s.stack.pop_back();
        propagate(pc + 1, std::move(s));
        break;
      }
      case OpCode::kTee: {
        if (!stackHas(1)) break;
        const std::size_t idx = tempIndex(ins.arg);
        if (broken) break;
        s.temps[idx] = s.stack.back();
        propagate(pc + 1, std::move(s));
        break;
      }
      case OpCode::kLoadTmp: {
        const std::size_t idx = tempIndex(ins.arg);
        if (broken) break;
        s.stack.push_back(s.temps[idx]);
        propagate(pc + 1, std::move(s));
        break;
      }
      default:
        broken = true;
        break;
    }
  }
  if (broken) return fallback();
  if (!in[n]) {
    // Every path died in a guaranteed-raising division.
    out.value = Interval::bottom();
    out.mayRaise = true;
    out.mustRaise = true;
    return out;
  }
  AbsState& exit = *in[n];
  if (exit.stack.size() != 1) return fallback();
  out.value = exit.stack[0];
  out.exitSlots = std::move(exit.slots);
  return out;
}

std::size_t relaxSafeDivChecks(expr::ExprProgram& p, std::span<const Interval> slots) {
  if (p.empty()) return 0;
  const ProgramFacts facts = analyzeProgram(p, slots);
  std::size_t relaxed = 0;
  for (const DivSite& site : facts.divSites) {
    if (!site.mayRaise) {
      // The only sanctioned mutation of a finalized program: besides
      // swapping the opcode it rebuilds the cached direct-threaded form,
      // so a program that already executed (warm engine caches, lazy
      // connector builds) can never dispatch through a stale checked
      // handler. The eager batch form deliberately keeps its checked
      // division — the proof says the check never fires, so relaxing it
      // there buys nothing and the block executor stays UB-free even
      // against stores the analysis never saw.
      p.relaxDivCheck(site.pc);
      ++relaxed;
    }
  }
  return relaxed;
}

std::vector<Interval> typeIntervals(const AtomicType& type) {
  const std::size_t n = type.variableCount();
  std::vector<Interval> env(n);
  std::vector<char> exported(n, 0);
  for (std::size_t pi = 0; pi < type.portCount(); ++pi) {
    for (const int v : type.port(static_cast<int>(pi)).exports) {
      if (v >= 0 && static_cast<std::size_t>(v) < n) exported[static_cast<std::size_t>(v)] = 1;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Exported variables are connector-writable during interactions;
    // nothing local bounds them.
    env[i] = exported[i] != 0 ? Interval::top()
                              : Interval::singleton(type.variable(static_cast<int>(i)).init);
  }
  const IntervalEnv read = [&env, n](expr::VarRef r) {
    if (r.scope != 0 || r.index < 0 || static_cast<std::size_t>(r.index) >= n) {
      return Interval::top();
    }
    return env[static_cast<std::size_t>(r.index)];
  };
  // Widening fixpoint: the first round joins precise action images, every
  // later change widens straight to top, so each variable moves at most
  // twice and the loop terminates in O(variables) rounds.
  for (int round = 0;; ++round) {
    bool changed = false;
    for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
      const Transition& t = type.transition(static_cast<int>(ti));
      const ExprFacts g = analyzeExpr(t.guard, read);
      if (g.mustRaise || g.value.isBottom()) continue;
      if (!g.mayRaise && g.value == Interval::singleton(0)) continue;  // dead transition
      for (const expr::Assign& a : t.actions) {
        const ExprFacts f = analyzeExpr(a.value, read);
        if (f.mustRaise) break;  // later actions of the block never run
        const std::size_t target = static_cast<std::size_t>(a.target.index);
        if (a.target.scope != 0 || target >= n) continue;
        const Interval joined = join(env[target], f.value);
        if (joined != env[target]) {
          env[target] = round == 0 ? joined : Interval::top();
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return env;
}

void optimizeTransition(CompiledTransition& ct, std::size_t variableCount) {
  // Execution-side environment: all-top component variables. Hosts and
  // the distributed runtime mutate GlobalState directly, so reachability
  // facts (typeIntervals) must NOT feed execution pruning — only
  // literal/operator arithmetic may.
  const std::vector<Interval> top(variableCount, Interval::top());
  if (!ct.guard.empty()) {
    const ProgramFacts g = analyzeProgram(ct.guard, top);
    if (!g.mayRaise && g.value == Interval::singleton(0)) {
      // Dead transition: both guard forms collapse to the constant-0
      // program (never the empty program — empty means trivially true).
      ct.guard = expr::ExprProgram::constant(0);
      ct.fused = expr::ExprProgram::constant(0);
      return;
    }
    if (!g.mayRaise && !g.value.isBottom() && !g.value.contains(0)) {
      // Always-true guard: the empty program is the trivially-true
      // convention, and the fused form drops its guard prefix — which is
      // exactly the action block (or nothing: a bare location move).
      ct.guard = expr::ExprProgram();
      ct.fused = ct.actionBlock;
    }
  }
  const std::span<const Interval> env(top);
  relaxSafeDivChecks(ct.guard, env);
  for (CompiledTransition::Action& a : ct.actions) relaxSafeDivChecks(a.value, env);
  relaxSafeDivChecks(ct.fused, env);
  relaxSafeDivChecks(ct.actionBlock, env);
}

}  // namespace cbip::analyze
