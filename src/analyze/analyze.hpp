// Abstract interpretation over the data sub-language.
//
// The paper's thesis is that rigorous design catches defects *before*
// execution; until now every correctness instrument in this repo was
// dynamic (differential traces, sanitizers, D-Finder state exploration).
// This module adds the static side: a forward abstract interpreter over
// both representations of the data sub-language — Expr trees and
// ExprProgram bytecode — in the domain
//
//     interval x may-raise-EvalError
//
// ExprProgram is an unusually friendly analysis target: it is loop-free
// (every jump is forward), its arithmetic is fully defined
// (two's-complement wrapping for + - * neg abs, EvalError on zero
// divisors and on INT64_MIN / -1), and it has exactly one kind of
// runtime failure. A single in-order pass with joins at jump targets is
// therefore a *complete* fixpoint, not an approximation of one.
//
// Three consumers:
//   * lint (src/analyze/lint.hpp) — always-false / always-true guards,
//     guaranteed-EvalError sites, connector data-flow diagnostics;
//   * build-time pruning (AtomicType::compileIfNeeded,
//     CompiledConnector::build) — a guard proven constant folds to a
//     constant program, a kDiv/kMod proven non-raising relaxes to its
//     unchecked opcode (relaxSafeDivChecks). Gated by
//     expr::analysisEnabled() / CBIP_NO_ANALYZE;
//   * the D-Finder feed (src/verify/dfinder.cpp) — transitions whose
//     guard is provably false under typeIntervals() are removed from the
//     deadlock-condition sources.
//
// Soundness contract — two environments, deliberately different:
//   * Execution-side pruning uses an all-top environment for component
//     variables: tests, srbip message application and host code mutate
//     GlobalState directly, so *no* assumption about reachable variable
//     values is safe there. Facts then derive only from literals and
//     range-clamping operators (%, min, max, abs, comparisons), which is
//     still enough to relax literal-divisor checks and kill
//     arithmetically impossible guards.
//   * typeIntervals() seeds from declared initial values and closes over
//     the type's own transitions — the same "reachable when the
//     component runs in isolation under the engine" contract as the
//     verifier's componentInvariant. Only lint and the D-Finder feed
//     consume it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/atomic.hpp"
#include "expr/compile.hpp"
#include "expr/expr.hpp"

namespace cbip::analyze {

using expr::Value;

/// A closed interval of int64 values; `lo > hi` encodes bottom (no
/// value — unreachable or guaranteed-raise). Top is the full int64
/// range. The domain has no infinities: wrapping arithmetic goes to top
/// instead of widening past the representable range.
struct Interval {
  Value lo = 0;
  Value hi = 0;

  static Interval top() {
    return Interval{std::numeric_limits<Value>::min(), std::numeric_limits<Value>::max()};
  }
  static Interval bottom() { return Interval{1, 0}; }
  static Interval singleton(Value v) { return Interval{v, v}; }
  static Interval range(Value lo, Value hi) { return Interval{lo, hi}; }

  bool isBottom() const { return lo > hi; }
  bool isTop() const {
    return lo == std::numeric_limits<Value>::min() && hi == std::numeric_limits<Value>::max();
  }
  bool isSingleton() const { return lo == hi; }
  bool contains(Value v) const { return lo <= v && v <= hi; }

  friend bool operator==(const Interval&, const Interval&) = default;

  std::string toString() const;
};

/// Least upper bound (interval hull).
Interval join(Interval a, Interval b);

// ---- transfer functions -------------------------------------------------
//
// Each mirrors the concrete operator in expr.hpp exactly: wrapping ops
// return top as soon as a corner leaves the int64 range (the wrapped
// image of an interval is not an interval), the INT64_MIN edge cases of
// neg/abs go to top unless the operand is that singleton, and
// comparisons return a sub-interval of [0, 1]. All propagate bottom.

Interval absAdd(Interval a, Interval b);
Interval absSub(Interval a, Interval b);
Interval absMul(Interval a, Interval b);
Interval absNeg(Interval a);
Interval absAbs(Interval a);
Interval absNot(Interval a);
Interval absMin(Interval a, Interval b);
Interval absMax(Interval a, Interval b);
/// `op` must be one of kEq..kGe.
Interval absCmp(expr::Op op, Interval a, Interval b);

/// Division / modulo carry the EvalError dimension alongside the value:
/// mayRaise when the divisor interval admits 0 (or the INT64_MIN / -1
/// pair is admitted), mustRaise when *every* admitted operand pair
/// raises — then `result` is bottom.
struct DivFacts {
  Interval result = Interval::bottom();
  bool mayRaise = false;
  bool mustRaise = false;
};

DivFacts absDiv(Interval a, Interval b);
DivFacts absMod(Interval a, Interval b);

/// Result of abstractly evaluating one expression: its value interval
/// plus the EvalError dimension. mustRaise implies mayRaise and a bottom
/// value (evaluation never completes).
struct ExprFacts {
  Interval value = Interval::top();
  bool mayRaise = false;
  bool mustRaise = false;
};

/// Maps a variable reference to its interval; the analysis equivalent of
/// expr::EvalContext. Returning top() is always sound.
using IntervalEnv = std::function<Interval(expr::VarRef)>;

/// Abstractly evaluates an Expr tree under `env`. Mirrors Expr::eval's
/// semantics including short-circuit && / || and ite branch pruning: a
/// branch the condition interval excludes contributes neither value nor
/// raise facts, exactly as its concrete evaluation would be skipped.
ExprFacts analyzeExpr(const expr::Expr& e, const IntervalEnv& env);

/// Convenience for component-local expressions (scope 0, slot = index);
/// references outside `slots` read top.
ExprFacts analyzeLocal(const expr::Expr& e, std::span<const Interval> slots);

/// One reachable kDiv/kMod instruction in a program, with the EvalError
/// facts that held at its operands. A site with !mayRaise is provably
/// safe to relax; a site with mustRaise raises on every evaluation that
/// reaches it.
struct DivSite {
  std::size_t pc = 0;
  bool mayRaise = false;
  bool mustRaise = false;
};

/// Facts about one full ExprProgram evaluation over an entry frame
/// described by `slots` (see analyzeProgram).
struct ProgramFacts {
  /// Interval of the program result; bottom when the program cannot
  /// complete (mustRaise). The empty program is trivially true: [1, 1].
  Interval value = Interval::top();
  bool mayRaise = false;
  /// True when no execution reaches the exit — every path hits a
  /// guaranteed-raising division.
  bool mustRaise = false;
  /// Reachable checked-division sites in program order (relaxed
  /// kDivUnchecked/kModUnchecked sites are not re-reported).
  std::vector<DivSite> divSites;
  /// Per-slot intervals at program exit (kStore applied); empty when the
  /// exit is unreachable. Size matches the input span.
  std::vector<Interval> exitSlots;
  /// Per-slot flags: slot read (kLoad) / written (kStore) on some
  /// reachable path. Size matches the input span.
  std::vector<char> slotsRead;
  std::vector<char> slotsWritten;
};

/// Forward abstract interpretation of `p` with entry frame `slots`
/// (frame-base-relative slot i has interval slots[i]). Every jump in
/// compiled programs is forward, so one in-order pass joining abstract
/// states at jump targets reaches the fixpoint exactly; conditional
/// jumps refine (a [0,0] operand only takes its zero edge). On any
/// structural inconsistency (foreign bytecode, out-of-range slot) the
/// result degrades soundly: top value, mayRaise iff the program holds a
/// checked division, no sites.
ProgramFacts analyzeProgram(const expr::ExprProgram& p, std::span<const Interval> slots);

/// Rewrites every checked division site of `p` that analyzeProgram
/// proves non-raising under `slots` into its unchecked twin; returns how
/// many sites were relaxed. Idempotent — already-relaxed sites are not
/// sites any more.
std::size_t relaxSafeDivChecks(expr::ExprProgram& p, std::span<const Interval> slots);

/// Per-variable intervals covering every value the variable can hold
/// when instances of `type` run in isolation under the engine: exported
/// variables start at top (connectors write them during interactions),
/// unexported ones at their declared initial value, then a widening
/// fixpoint over the type's own transition writes (transitions whose
/// guard is provably false or provably raising under the current facts
/// contribute nothing). Same contract as the verifier's
/// componentInvariant — NOT sound against host code mutating GlobalState
/// directly, which is why execution-side pruning never consumes this.
std::vector<Interval> typeIntervals(const AtomicType& type);

/// Build-time pruning of one compiled transition under the all-top
/// (mutation-proof) environment:
///   * guard provably false and non-raising  -> guard and fused both
///     become the constant-0 program (the transition is dead);
///   * guard provably true and non-raising   -> guard empties (the
///     trivially-true convention) and fused drops its guard prefix;
///   * every surviving program has its provably-safe division checks
///     relaxed.
/// Caller (AtomicType::compileIfNeeded) gates this behind
/// expr::analysisEnabled().
void optimizeTransition(CompiledTransition& ct, std::size_t variableCount);

}  // namespace cbip::analyze
