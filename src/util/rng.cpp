#include "util/rng.hpp"

#include "util/require.hpp"

namespace cbip {

std::uint64_t Rng::next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::below(std::uint64_t bound) {
  requireEval(bound > 0, "Rng::below: bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  requireEval(lo <= hi, "Rng::range: lo must be <= hi");
  const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(width == 0 ? next() : below(width));
}

bool Rng::chance(std::uint64_t numerator, std::uint64_t denominator) {
  requireEval(denominator > 0, "Rng::chance: denominator must be positive");
  if (numerator >= denominator) return true;
  return below(denominator) < numerator;
}

Rng Rng::split() { return Rng(next() ^ 0x6a09e667f3bcc909ULL); }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = index(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace cbip
