// Deterministic, seedable random number generation.
//
// Every stochastic choice in the library (engine scheduling policies, the
// discrete-event network, workload generators) draws from SplitMix64 so
// that all runs, tests and benchmarks are exactly reproducible from a
// 64-bit seed.
#pragma once

#include <cstdint>
#include <vector>

namespace cbip {

/// SplitMix64: tiny, high-quality, splittable PRNG (public-domain
/// algorithm by Sebastiano Vigna). Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability `numerator / denominator`.
  bool chance(std::uint64_t numerator, std::uint64_t denominator);

  /// Picks an index into a non-empty container of size `n`.
  std::size_t index(std::size_t n) { return static_cast<std::size_t>(below(n)); }

  /// Derives an independent child generator (splitting).
  Rng split();

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t state_;
};

}  // namespace cbip
