// Lightweight precondition / invariant checking used across the library.
//
// The library reports user errors (malformed models, bad indices, parse
// errors) as exceptions so callers can recover; internal invariant
// violations use the same mechanism to keep failure behaviour uniform and
// testable.
#pragma once

#include <stdexcept>
#include <string>

namespace cbip {

/// Error thrown when a model is structurally invalid (bad index, unknown
/// name, inconsistent declaration).
class ModelError : public std::logic_error {
 public:
  explicit ModelError(const std::string& what) : std::logic_error(what) {}
  explicit ModelError(const char* what) : std::logic_error(what) {}
};

/// Error thrown when evaluation fails at runtime (division by zero,
/// unbound variable scope).
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& what) : std::runtime_error(what) {}
  explicit EvalError(const char* what) : std::runtime_error(what) {}
};

/// Throws ModelError with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw ModelError(message);
}

/// Literal-message overload: engine-hot checks pass string literals, and
/// converting one to std::string on every call is a hidden allocation —
/// this overload defers any copy to the throw.
inline void require(bool condition, const char* message) {
  if (!condition) throw ModelError(message);
}

/// Throws EvalError with `message` when `condition` is false.
inline void requireEval(bool condition, const std::string& message) {
  if (!condition) throw EvalError(message);
}

/// Literal-message overload (see require).
inline void requireEval(bool condition, const char* message) {
  if (!condition) throw EvalError(message);
}

}  // namespace cbip
