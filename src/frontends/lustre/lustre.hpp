// A Lustre-like synchronous dataflow language: lexer, parser, reference
// stream interpreter, and the structure-preserving embedding into BIP
// (monograph Section 5.4, Figures 5.1 and 5.2).
//
// Supported subset (enough for the monograph's integrator and realistic
// control programs):
//
//   node integrator(x: int) returns (y: int);
//   let
//     y = x + pre(y);
//   tel
//
//   * integer and boolean streams; locals via `var`;
//   * operators: + - * div mod, comparisons (= <> < <= > >=), and/or/not,
//     if/then/else, the initialization arrow `a -> b`, unit delay `pre(e)`.
//
// Semantics are the standard synchronous ones: all equations step once per
// cycle; `pre(e)` yields the previous cycle's value of e (0/false on the
// first cycle unless guarded by `->`). Instantaneous dependency cycles are
// rejected.
//
// The embedding (Fig 5.2) maps each *operator instance* to one atomic BIP
// component (like B+ and Bpre in the figure): global `str` and `cmp`
// rendezvous synchronize cycle start/completion, and every dataflow wire
// becomes a binary connector with a down-action transferring the value.
// The translation is structure-preserving (χ) and linear in the program
// size — experiment E2 measures exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/system.hpp"

namespace cbip::lustre {

// ---------- AST ----------

enum class Op {
  kConst, kVar,
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot,
  kIte,    // if/then/else
  kArrow,  // a -> b (a on the first cycle, b afterwards)
  kPre,    // unit delay
};

struct LExpr {
  Op op = Op::kConst;
  std::int64_t konst = 0;
  std::string var;
  std::vector<std::unique_ptr<LExpr>> kids;
};

struct NodeDecl {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<std::string> locals;
  /// lhs -> rhs, in source order.
  std::vector<std::pair<std::string, std::unique_ptr<LExpr>>> equations;
};

struct Program {
  std::vector<NodeDecl> nodes;
  const NodeDecl& node(const std::string& name) const;
};

/// Parses a program; throws cbip::ModelError with a line/column message on
/// syntax errors.
Program parse(std::string_view source);

// ---------- reference interpreter ----------

/// Executes one node cycle-by-cycle (the language reference semantics the
/// embedding is validated against).
class Interpreter {
 public:
  explicit Interpreter(const NodeDecl& node);

  /// Runs one cycle; `inputs` maps input names to values. Returns the
  /// outputs (and locals) computed this cycle.
  std::map<std::string, std::int64_t> step(const std::map<std::string, std::int64_t>& inputs);

 private:
  std::int64_t eval(const LExpr& e);

  const NodeDecl* node_;
  std::map<std::string, std::int64_t> current_;
  std::map<const LExpr*, std::int64_t> preState_;   // pre -> previous value
  std::map<const LExpr*, std::int64_t> preNext_;
  std::vector<std::string> evaluating_;             // instantaneous-cycle check
  bool firstCycle_ = true;
};

// ---------- embedding into BIP ----------

/// A synthetic input stream: value(t) = base + slope * t, wrapped modulo
/// `modulo` when modulo > 0 (keeps verification-facing systems finite).
struct InputStream {
  std::int64_t base = 0;
  std::int64_t slope = 0;
  std::int64_t modulo = 0;
};

struct Embedding {
  System system;
  /// Instance index of the sink component of each output variable; its
  /// variable "last" holds the output of the most recent completed cycle.
  std::map<std::string, int> outputSink;
  /// Component count excluding sources and sinks (one per operator — the
  /// structure-preservation measure of E2).
  int operatorComponents = 0;
  /// Total wires (dataflow connectors).
  int wires = 0;
};

/// Embeds `node` into BIP with the given input streams (every input needs
/// one). Throws on instantaneous dependency cycles.
Embedding embed(const NodeDecl& node, const std::map<std::string, InputStream>& inputs);

/// Runs the embedded system for `cycles` synchronous cycles and returns
/// the per-cycle value of each output (by sink inspection after each cmp).
std::map<std::string, std::vector<std::int64_t>> runEmbedded(const Embedding& embedding,
                                                             int cycles);

}  // namespace cbip::lustre
