#include "frontends/lustre/lustre.hpp"

#include <algorithm>
#include <cctype>
#include <set>

#include "core/semantics.hpp"
#include "util/require.hpp"

namespace cbip::lustre {

// ======================= lexer / parser =======================

namespace {

struct Token {
  enum Kind { kIdent, kInt, kSym, kEnd } kind = kEnd;
  std::string text;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  const Token& peek() const { return tok_; }

  Token take() {
    Token t = tok_;
    advance();
    return t;
  }

  bool eat(const std::string& text) {
    if (tok_.text == text && tok_.kind != Token::kEnd) {
      advance();
      return true;
    }
    return false;
  }

  void expect(const std::string& text) {
    require(eat(text), "lustre: expected '" + text + "' at line " + std::to_string(tok_.line) +
                           " (got '" + tok_.text + "')");
  }

 private:
  void advance() {
    // Skip whitespace and `--` comments.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '-' &&
                 (pos_ + 2 >= src_.size() || src_[pos_ + 2] != '>')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
    tok_.line = line_;
    if (pos_ >= src_.size()) {
      tok_ = Token{Token::kEnd, "", line_};
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                                    src_[pos_] == '_')) {
        ++pos_;
      }
      tok_ = Token{Token::kIdent, std::string(src_.substr(start, pos_ - start)), line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) ++pos_;
      tok_ = Token{Token::kInt, std::string(src_.substr(start, pos_ - start)), line_};
      return;
    }
    // Multi-char symbols first.
    for (const char* sym : {"->", "<=", ">=", "<>"}) {
      if (src_.substr(pos_, 2) == sym) {
        tok_ = Token{Token::kSym, sym, line_};
        pos_ += 2;
        return;
      }
    }
    tok_ = Token{Token::kSym, std::string(1, c), line_};
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token tok_;
};

std::unique_ptr<LExpr> makeNode(Op op, std::vector<std::unique_ptr<LExpr>> kids) {
  auto e = std::make_unique<LExpr>();
  e->op = op;
  e->kids = std::move(kids);
  return e;
}

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  Program parse() {
    Program p;
    while (lex_.peek().kind != Token::kEnd) p.nodes.push_back(parseNode());
    require(!p.nodes.empty(), "lustre: empty program");
    return p;
  }

 private:
  NodeDecl parseNode() {
    lex_.expect("node");
    NodeDecl n;
    n.name = ident("node name");
    lex_.expect("(");
    parseParams(n.inputs);
    lex_.expect(")");
    lex_.expect("returns");
    lex_.expect("(");
    parseParams(n.outputs);
    lex_.expect(")");
    lex_.eat(";");
    if (lex_.eat("var")) parseVarSection(n.locals);
    lex_.expect("let");
    while (!lex_.eat("tel")) {
      const std::string lhs = ident("equation target");
      lex_.expect("=");
      auto rhs = parseExpr();
      lex_.expect(";");
      n.equations.emplace_back(lhs, std::move(rhs));
    }
    lex_.eat(";");
    return n;
  }

  // One group: name (, name)* : type
  void parseParamGroup(std::vector<std::string>& out) {
    out.push_back(ident("parameter name"));
    while (lex_.eat(",")) out.push_back(ident("parameter name"));
    lex_.expect(":");
    const std::string type = ident("type");
    require(type == "int" || type == "bool", "lustre: unsupported type '" + type + "'");
  }

  // Inside parentheses: group (';' group)*
  void parseParams(std::vector<std::string>& out) {
    parseParamGroup(out);
    while (lex_.eat(";")) parseParamGroup(out);
  }

  // After `var`: (group ';')+ — each group is ';'-terminated, and the
  // section ends before `let`.
  void parseVarSection(std::vector<std::string>& out) {
    while (true) {
      parseParamGroup(out);
      lex_.expect(";");
      if (lex_.peek().kind != Token::kIdent || lex_.peek().text == "let") break;
    }
  }

  std::string ident(const std::string& what) {
    require(lex_.peek().kind == Token::kIdent,
            "lustre: expected " + what + " at line " + std::to_string(lex_.peek().line));
    return lex_.take().text;
  }

  // expr := arrow (lowest precedence, right associative)
  std::unique_ptr<LExpr> parseExpr() { return parseArrow(); }

  std::unique_ptr<LExpr> parseArrow() {
    auto lhs = parseOr();
    if (lex_.eat("->")) {
      auto rhs = parseArrow();
      std::vector<std::unique_ptr<LExpr>> kids;
      kids.push_back(std::move(lhs));
      kids.push_back(std::move(rhs));
      return makeNode(Op::kArrow, std::move(kids));
    }
    return lhs;
  }

  std::unique_ptr<LExpr> parseOr() {
    auto e = parseAnd();
    while (lex_.eat("or")) {
      std::vector<std::unique_ptr<LExpr>> kids;
      kids.push_back(std::move(e));
      kids.push_back(parseAnd());
      e = makeNode(Op::kOr, std::move(kids));
    }
    return e;
  }

  std::unique_ptr<LExpr> parseAnd() {
    auto e = parseCmp();
    while (lex_.eat("and")) {
      std::vector<std::unique_ptr<LExpr>> kids;
      kids.push_back(std::move(e));
      kids.push_back(parseCmp());
      e = makeNode(Op::kAnd, std::move(kids));
    }
    return e;
  }

  std::unique_ptr<LExpr> parseCmp() {
    auto e = parseAdd();
    Op op;
    if (lex_.eat("=")) {
      op = Op::kEq;
    } else if (lex_.eat("<>")) {
      op = Op::kNe;
    } else if (lex_.eat("<=")) {
      op = Op::kLe;
    } else if (lex_.eat(">=")) {
      op = Op::kGe;
    } else if (lex_.eat("<")) {
      op = Op::kLt;
    } else if (lex_.eat(">")) {
      op = Op::kGt;
    } else {
      return e;
    }
    std::vector<std::unique_ptr<LExpr>> kids;
    kids.push_back(std::move(e));
    kids.push_back(parseAdd());
    return makeNode(op, std::move(kids));
  }

  std::unique_ptr<LExpr> parseAdd() {
    auto e = parseMul();
    while (true) {
      Op op;
      if (lex_.eat("+")) {
        op = Op::kAdd;
      } else if (lex_.peek().text == "-" && lex_.eat("-")) {
        op = Op::kSub;
      } else {
        return e;
      }
      std::vector<std::unique_ptr<LExpr>> kids;
      kids.push_back(std::move(e));
      kids.push_back(parseMul());
      e = makeNode(op, std::move(kids));
    }
  }

  std::unique_ptr<LExpr> parseMul() {
    auto e = parseUnary();
    while (true) {
      Op op;
      if (lex_.eat("*")) {
        op = Op::kMul;
      } else if (lex_.eat("div")) {
        op = Op::kDiv;
      } else if (lex_.eat("mod")) {
        op = Op::kMod;
      } else {
        return e;
      }
      std::vector<std::unique_ptr<LExpr>> kids;
      kids.push_back(std::move(e));
      kids.push_back(parseUnary());
      e = makeNode(op, std::move(kids));
    }
  }

  std::unique_ptr<LExpr> parseUnary() {
    if (lex_.eat("-")) {
      std::vector<std::unique_ptr<LExpr>> kids;
      kids.push_back(parseUnary());
      return makeNode(Op::kNeg, std::move(kids));
    }
    if (lex_.eat("not")) {
      std::vector<std::unique_ptr<LExpr>> kids;
      kids.push_back(parseUnary());
      return makeNode(Op::kNot, std::move(kids));
    }
    return parsePrimary();
  }

  std::unique_ptr<LExpr> parsePrimary() {
    const Token& t = lex_.peek();
    if (t.kind == Token::kInt) {
      auto e = std::make_unique<LExpr>();
      e->op = Op::kConst;
      e->konst = std::stoll(lex_.take().text);
      return e;
    }
    if (t.text == "(") {
      lex_.take();
      auto e = parseExpr();
      lex_.expect(")");
      return e;
    }
    if (t.text == "if") {
      lex_.take();
      std::vector<std::unique_ptr<LExpr>> kids;
      kids.push_back(parseExpr());
      lex_.expect("then");
      kids.push_back(parseExpr());
      lex_.expect("else");
      kids.push_back(parseExpr());
      return makeNode(Op::kIte, std::move(kids));
    }
    if (t.text == "pre") {
      lex_.take();
      lex_.expect("(");
      std::vector<std::unique_ptr<LExpr>> kids;
      kids.push_back(parseExpr());
      lex_.expect(")");
      return makeNode(Op::kPre, std::move(kids));
    }
    if (t.text == "true" || t.text == "false") {
      auto e = std::make_unique<LExpr>();
      e->op = Op::kConst;
      e->konst = t.text == "true" ? 1 : 0;
      lex_.take();
      return e;
    }
    if (t.kind == Token::kIdent) {
      auto e = std::make_unique<LExpr>();
      e->op = Op::kVar;
      e->var = lex_.take().text;
      return e;
    }
    throw ModelError("lustre: unexpected token '" + t.text + "' at line " +
                     std::to_string(t.line));
  }

  Lexer lex_;
};

void collectPres(const LExpr& e, std::vector<const LExpr*>& out) {
  if (e.op == Op::kPre) out.push_back(&e);
  for (const auto& k : e.kids) collectPres(*k, out);
}

}  // namespace

const NodeDecl& Program::node(const std::string& name) const {
  for (const NodeDecl& n : nodes) {
    if (n.name == name) return n;
  }
  throw ModelError("lustre: unknown node '" + name + "'");
}

Program parse(std::string_view source) { return Parser(source).parse(); }

// ======================= interpreter =======================

Interpreter::Interpreter(const NodeDecl& node) : node_(&node) {}

std::int64_t Interpreter::eval(const LExpr& e) {
  switch (e.op) {
    case Op::kConst: return e.konst;
    case Op::kVar: {
      const auto it = current_.find(e.var);
      if (it != current_.end()) return it->second;
      // Find the defining equation; detect instantaneous cycles.
      require(std::find(evaluating_.begin(), evaluating_.end(), e.var) == evaluating_.end(),
              "lustre: instantaneous dependency cycle through '" + e.var + "'");
      for (const auto& [lhs, rhs] : node_->equations) {
        if (lhs == e.var) {
          evaluating_.push_back(e.var);
          const std::int64_t v = eval(*rhs);
          evaluating_.pop_back();
          current_[e.var] = v;
          return v;
        }
      }
      throw ModelError("lustre: undefined stream '" + e.var + "'");
    }
    case Op::kAdd: return eval(*e.kids[0]) + eval(*e.kids[1]);
    case Op::kSub: return eval(*e.kids[0]) - eval(*e.kids[1]);
    case Op::kMul: return eval(*e.kids[0]) * eval(*e.kids[1]);
    case Op::kDiv: {
      const std::int64_t d = eval(*e.kids[1]);
      requireEval(d != 0, "lustre: division by zero");
      return eval(*e.kids[0]) / d;
    }
    case Op::kMod: {
      const std::int64_t d = eval(*e.kids[1]);
      requireEval(d != 0, "lustre: modulo by zero");
      return eval(*e.kids[0]) % d;
    }
    case Op::kNeg: return -eval(*e.kids[0]);
    case Op::kEq: return eval(*e.kids[0]) == eval(*e.kids[1]) ? 1 : 0;
    case Op::kNe: return eval(*e.kids[0]) != eval(*e.kids[1]) ? 1 : 0;
    case Op::kLt: return eval(*e.kids[0]) < eval(*e.kids[1]) ? 1 : 0;
    case Op::kLe: return eval(*e.kids[0]) <= eval(*e.kids[1]) ? 1 : 0;
    case Op::kGt: return eval(*e.kids[0]) > eval(*e.kids[1]) ? 1 : 0;
    case Op::kGe: return eval(*e.kids[0]) >= eval(*e.kids[1]) ? 1 : 0;
    case Op::kAnd: return eval(*e.kids[0]) != 0 && eval(*e.kids[1]) != 0 ? 1 : 0;
    case Op::kOr: return eval(*e.kids[0]) != 0 || eval(*e.kids[1]) != 0 ? 1 : 0;
    case Op::kNot: return eval(*e.kids[0]) == 0 ? 1 : 0;
    case Op::kIte: return eval(*e.kids[0]) != 0 ? eval(*e.kids[1]) : eval(*e.kids[2]);
    case Op::kArrow: return firstCycle_ ? eval(*e.kids[0]) : eval(*e.kids[1]);
    case Op::kPre: {
      const auto it = preState_.find(&e);
      return it == preState_.end() ? 0 : it->second;
    }
  }
  throw ModelError("lustre: bad expression");
}

std::map<std::string, std::int64_t> Interpreter::step(
    const std::map<std::string, std::int64_t>& inputs) {
  current_.clear();
  for (const std::string& in : node_->inputs) {
    const auto it = inputs.find(in);
    require(it != inputs.end(), "lustre: missing input '" + in + "'");
    current_[in] = it->second;
  }
  std::map<std::string, std::int64_t> result;
  for (const auto& [lhs, rhs] : node_->equations) {
    if (current_.find(lhs) == current_.end()) {
      evaluating_.push_back(lhs);
      current_[lhs] = eval(*rhs);
      evaluating_.pop_back();
    }
    result[lhs] = current_[lhs];
  }
  // Advance the pre state with this cycle's operand values.
  std::vector<const LExpr*> pres;
  for (const auto& [lhs, rhs] : node_->equations) collectPres(*rhs, pres);
  preNext_.clear();
  for (const LExpr* p : pres) preNext_[p] = eval(*p->kids[0]);
  preState_ = preNext_;
  firstCycle_ = false;
  return result;
}

// ======================= BIP embedding =======================

namespace {

using expr::Assign;
using expr::VarRef;

/// One vertex of the dataflow graph.
struct GraphNode {
  enum class Kind { kOperator, kPre, kArrow, kSource, kSink } kind = Kind::kOperator;
  Op op = Op::kConst;              // for kOperator
  std::int64_t konst = 0;          // for kConst operators
  InputStream stream;              // for kSource
  std::string name;                // display / sink variable name
  std::vector<int> inputs;         // producing node ids
  int consumers = 0;
};

struct GraphBuilder {
  const NodeDecl* node;
  const std::map<std::string, InputStream>* streams;
  std::vector<GraphNode> nodes;
  std::map<std::string, int> varProducer;  // stream name -> node id
  std::set<std::string> building;
  std::vector<std::pair<int, const LExpr*>> deferredPre;  // (pre node id, operand)

  int producerOfVar(const std::string& name) {
    const auto memo = varProducer.find(name);
    if (memo != varProducer.end()) return memo->second;
    // Input?
    if (std::find(node->inputs.begin(), node->inputs.end(), name) != node->inputs.end()) {
      const auto s = streams->find(name);
      require(s != streams->end(), "embed: no input stream for '" + name + "'");
      GraphNode g;
      g.kind = GraphNode::Kind::kSource;
      g.stream = s->second;
      g.name = name;
      nodes.push_back(g);
      const int id = static_cast<int>(nodes.size()) - 1;
      varProducer[name] = id;
      return id;
    }
    require(building.insert(name).second,
            "embed: instantaneous dependency cycle through '" + name + "'");
    const LExpr* rhs = nullptr;
    for (const auto& [lhs, e] : node->equations) {
      if (lhs == name) rhs = e.get();
    }
    require(rhs != nullptr, "embed: undefined stream '" + name + "'");
    const int id = build(*rhs);
    building.erase(name);
    varProducer[name] = id;
    return id;
  }

  int build(const LExpr& e) {
    switch (e.op) {
      case Op::kVar: return producerOfVar(e.var);
      case Op::kPre: {
        GraphNode g;
        g.kind = GraphNode::Kind::kPre;
        g.name = "pre";
        nodes.push_back(g);
        const int id = static_cast<int>(nodes.size()) - 1;
        deferredPre.emplace_back(id, e.kids[0].get());
        return id;
      }
      case Op::kArrow: {
        GraphNode g;
        g.kind = GraphNode::Kind::kArrow;
        g.name = "arrow";
        nodes.push_back(g);
        const int id = static_cast<int>(nodes.size()) - 1;
        nodes[static_cast<std::size_t>(id)].inputs.push_back(build(*e.kids[0]));
        nodes[static_cast<std::size_t>(id)].inputs.push_back(build(*e.kids[1]));
        return id;
      }
      default: {
        GraphNode g;
        g.kind = GraphNode::Kind::kOperator;
        g.op = e.op;
        g.konst = e.konst;
        g.name = "op";
        nodes.push_back(g);
        const int id = static_cast<int>(nodes.size()) - 1;
        std::vector<int> ins;
        for (const auto& k : e.kids) ins.push_back(build(*k));
        nodes[static_cast<std::size_t>(id)].inputs = std::move(ins);
        return id;
      }
    }
  }
};

/// f(in_0..in_{m-1}) as an Expr over the component's inval variables
/// (inval_j is local variable index j by construction).
Expr operatorFunction(const GraphNode& g) {
  auto in = [](int j) { return Expr::local(j); };
  switch (g.op) {
    case Op::kConst: return Expr::lit(g.konst);
    case Op::kAdd: return in(0) + in(1);
    case Op::kSub: return in(0) - in(1);
    case Op::kMul: return in(0) * in(1);
    case Op::kDiv: return in(0) / in(1);
    case Op::kMod: return in(0) % in(1);
    case Op::kNeg: return -in(0);
    case Op::kEq: return in(0) == in(1);
    case Op::kNe: return in(0) != in(1);
    case Op::kLt: return in(0) < in(1);
    case Op::kLe: return in(0) <= in(1);
    case Op::kGt: return in(0) > in(1);
    case Op::kGe: return in(0) >= in(1);
    case Op::kAnd: return in(0) && in(1);
    case Op::kOr: return in(0) || in(1);
    case Op::kNot: return !in(0);
    case Op::kIte: return Expr::ite(in(0), in(1), in(2));
    default: break;
  }
  throw ModelError("embed: unexpected operator");
}

/// Builds the atomic component for graph node `g` (see header: str / in_j
/// / out / cmp protocol). Variable layout: inval_0..m-1 first, then the
/// bookkeeping variables.
AtomicTypePtr makeComponent(const GraphNode& g, int id) {
  const int m = static_cast<int>(g.inputs.size());
  auto t = std::make_shared<AtomicType>(g.name + std::to_string(id));
  const int idle = t->addLocation("idle");
  const int work = t->addLocation("work");
  std::vector<int> inval, got;
  for (int j = 0; j < m; ++j) inval.push_back(t->addVariable("in" + std::to_string(j), 0));
  for (int j = 0; j < m; ++j) got.push_back(t->addVariable("got" + std::to_string(j), 0));
  const int outval = t->addVariable("out", 0);
  const int computed = t->addVariable("computed", 0);
  const int sent = t->addVariable("sent", 0);
  // Extra state per kind.
  int extra = -1;  // prev (pre), first (arrow), t (source), last (sink)
  switch (g.kind) {
    case GraphNode::Kind::kPre: extra = t->addVariable("prev", 0); break;
    case GraphNode::Kind::kArrow: extra = t->addVariable("first", 1); break;
    case GraphNode::Kind::kSource: extra = t->addVariable("t", 0); break;
    case GraphNode::Kind::kSink:
      extra = t->addVariable("last", 0);
      t->addVariable("cycles", 0);
      break;
    case GraphNode::Kind::kOperator: break;
  }

  const int strPort = t->addPort("str");
  const int cmpPort = t->addPort("cmp");
  std::vector<int> inPorts;
  for (int j = 0; j < m; ++j) {
    inPorts.push_back(t->addPort("in" + std::to_string(j), {inval[static_cast<std::size_t>(j)]}));
  }
  const int out = t->addPort("out", {outval});

  // str: cycle start.
  {
    std::vector<Assign> actions;
    if (g.kind == GraphNode::Kind::kPre) {
      actions.push_back(Assign{VarRef{0, outval}, Expr::local(extra)});
      actions.push_back(Assign{VarRef{0, computed}, Expr::lit(1)});
    } else if (g.kind == GraphNode::Kind::kSource) {
      Expr v = Expr::lit(g.stream.base) + Expr::lit(g.stream.slope) * Expr::local(extra);
      if (g.stream.modulo > 0) v = std::move(v) % Expr::lit(g.stream.modulo);
      actions.push_back(Assign{VarRef{0, outval}, std::move(v)});
      actions.push_back(Assign{VarRef{0, computed}, Expr::lit(1)});
    }
    t->addTransition(idle, strPort, Expr::top(), std::move(actions), work);
  }
  // in_j: one delivery per cycle.
  for (int j = 0; j < m; ++j) {
    t->addTransition(work, inPorts[static_cast<std::size_t>(j)],
                     Expr::local(got[static_cast<std::size_t>(j)]) == Expr::lit(0),
                     {Assign{VarRef{0, got[static_cast<std::size_t>(j)]}, Expr::lit(1)}}, work);
  }
  // compute tau (operators and arrow; pre/source computed at str).
  if (g.kind == GraphNode::Kind::kOperator || g.kind == GraphNode::Kind::kArrow) {
    Expr allGot = Expr::local(computed) == Expr::lit(0);
    for (int j = 0; j < m; ++j) {
      allGot = std::move(allGot) && Expr::local(got[static_cast<std::size_t>(j)]) == Expr::lit(1);
    }
    Expr f = g.kind == GraphNode::Kind::kArrow
                 ? Expr::ite(Expr::local(extra) == Expr::lit(1), Expr::local(inval[0]),
                             Expr::local(inval[1]))
                 : operatorFunction(g);
    t->addTransition(work, kInternalPort, std::move(allGot),
                     {Assign{VarRef{0, outval}, std::move(f)},
                      Assign{VarRef{0, computed}, Expr::lit(1)}},
                     work);
  }
  // out: deliver to each consumer once.
  if (g.consumers > 0) {
    t->addTransition(work, out,
                     Expr::local(computed) == Expr::lit(1) &&
                         Expr::local(sent) < Expr::lit(g.consumers),
                     {Assign{VarRef{0, sent}, Expr::local(sent) + Expr::lit(1)}}, work);
  }
  // cmp: cycle end; per-kind epilogue + reset.
  {
    Expr guard = Expr::local(sent) == Expr::lit(g.consumers);
    if (g.kind == GraphNode::Kind::kSink) {
      guard = Expr::local(got[0]) == Expr::lit(1);
    } else {
      guard = Expr::local(computed) == Expr::lit(1) && std::move(guard);
      for (int j = 0; j < m; ++j) {
        guard = std::move(guard) && Expr::local(got[static_cast<std::size_t>(j)]) == Expr::lit(1);
      }
    }
    std::vector<Assign> actions;
    switch (g.kind) {
      case GraphNode::Kind::kPre:
        actions.push_back(Assign{VarRef{0, extra}, Expr::local(inval[0])});
        break;
      case GraphNode::Kind::kArrow:
        actions.push_back(Assign{VarRef{0, extra}, Expr::lit(0)});
        break;
      case GraphNode::Kind::kSource:
        actions.push_back(Assign{VarRef{0, extra}, Expr::local(extra) + Expr::lit(1)});
        break;
      case GraphNode::Kind::kSink:
        actions.push_back(Assign{VarRef{0, extra}, Expr::local(inval[0])});
        actions.push_back(Assign{VarRef{0, t->variableIndex("cycles")},
                                 Expr::local(t->variableIndex("cycles")) + Expr::lit(1)});
        break;
      case GraphNode::Kind::kOperator: break;
    }
    for (int j = 0; j < m; ++j) {
      actions.push_back(Assign{VarRef{0, got[static_cast<std::size_t>(j)]}, Expr::lit(0)});
    }
    actions.push_back(Assign{VarRef{0, computed}, Expr::lit(0)});
    actions.push_back(Assign{VarRef{0, sent}, Expr::lit(0)});
    t->addTransition(work, cmpPort, std::move(guard), std::move(actions), idle);
  }
  t->validate();
  return t;
}

}  // namespace

Embedding embed(const NodeDecl& node, const std::map<std::string, InputStream>& inputs) {
  GraphBuilder builder{&node, &inputs, {}, {}, {}, {}};
  // Build every output (and, transitively, everything it needs).
  std::vector<std::pair<std::string, int>> sinks;
  for (const std::string& out : node.outputs) {
    sinks.emplace_back(out, builder.producerOfVar(out));
  }
  // Resolve deferred pre inputs (breaking instantaneous cycles); building
  // an operand may register further pre nodes, so iterate by index.
  for (std::size_t k = 0; k < builder.deferredPre.size(); ++k) {
    const auto [preId, operand] = builder.deferredPre[k];
    builder.nodes[static_cast<std::size_t>(preId)].inputs.push_back(builder.build(*operand));
  }
  // Sink nodes.
  std::vector<int> sinkIds;
  for (const auto& [name, producer] : sinks) {
    GraphNode g;
    g.kind = GraphNode::Kind::kSink;
    g.name = "sink_" + name;
    g.inputs.push_back(producer);
    builder.nodes.push_back(g);
    sinkIds.push_back(static_cast<int>(builder.nodes.size()) - 1);
  }
  // Consumer counts.
  for (const GraphNode& g : builder.nodes) {
    for (const int in : g.inputs) ++builder.nodes[static_cast<std::size_t>(in)].consumers;
  }

  Embedding result;
  std::vector<int> instanceOf(builder.nodes.size());
  for (std::size_t i = 0; i < builder.nodes.size(); ++i) {
    const GraphNode& g = builder.nodes[i];
    instanceOf[i] = result.system.addInstance(
        g.name + "_" + std::to_string(i), makeComponent(g, static_cast<int>(i)));
    if (g.kind == GraphNode::Kind::kOperator || g.kind == GraphNode::Kind::kPre ||
        g.kind == GraphNode::Kind::kArrow) {
      ++result.operatorComponents;
    }
  }
  for (std::size_t i = 0; i < sinkIds.size(); ++i) {
    result.outputSink[sinks[i].first] = instanceOf[static_cast<std::size_t>(sinkIds[i])];
  }

  // Global str / cmp rendezvous (Fig 5.2's `str` and `cmp`).
  Connector strC("str");
  Connector cmpC("cmp");
  for (std::size_t i = 0; i < builder.nodes.size(); ++i) {
    const AtomicTypePtr& type = result.system.instance(static_cast<std::size_t>(instanceOf[i])).type;
    strC.addSynchron(PortRef{instanceOf[i], type->portIndex("str")});
    cmpC.addSynchron(PortRef{instanceOf[i], type->portIndex("cmp")});
  }
  result.system.addConnector(std::move(strC));
  result.system.addConnector(std::move(cmpC));

  // Wires: producer.out --> consumer.in_j with a down copying the value.
  for (std::size_t i = 0; i < builder.nodes.size(); ++i) {
    const GraphNode& g = builder.nodes[i];
    for (std::size_t j = 0; j < g.inputs.size(); ++j) {
      const int producer = g.inputs[j];
      const AtomicTypePtr& prodType =
          result.system.instance(static_cast<std::size_t>(instanceOf[static_cast<std::size_t>(producer)])).type;
      const AtomicTypePtr& consType =
          result.system.instance(static_cast<std::size_t>(instanceOf[i])).type;
      Connector wire("w" + std::to_string(producer) + "_" + std::to_string(i) + "_" +
                     std::to_string(j));
      const int eProd = wire.addSynchron(
          PortRef{instanceOf[static_cast<std::size_t>(producer)], prodType->portIndex("out")});
      const int eCons = wire.addSynchron(
          PortRef{instanceOf[i], consType->portIndex("in" + std::to_string(j))});
      wire.addDown(eCons, 0, Expr::var(eProd, 0));
      result.system.addConnector(std::move(wire));
      ++result.wires;
    }
  }
  result.system.validate();
  return result;
}

std::map<std::string, std::vector<std::int64_t>> runEmbedded(const Embedding& embedding,
                                                             int cycles) {
  const System& sys = embedding.system;
  std::map<std::string, std::vector<std::int64_t>> out;
  GlobalState state = initialState(sys);
  int done = 0;
  // Any scheduling order within a cycle is confluent; fire first-enabled.
  std::uint64_t guardSteps = 0;
  const std::uint64_t maxSteps = static_cast<std::uint64_t>(cycles) * 10'000 + 10'000;
  while (done < cycles) {
    const auto enabled = enabledInteractions(sys, state);
    require(!enabled.empty(), "runEmbedded: embedded program deadlocked");
    const EnabledInteraction& ei = enabled.front();
    const bool isCmp =
        sys.connector(static_cast<std::size_t>(ei.connector)).name() == "cmp";
    executeDefault(sys, state, ei);
    if (isCmp) {
      ++done;
      for (const auto& [name, sinkInstance] : embedding.outputSink) {
        const AtomicTypePtr& type =
            sys.instance(static_cast<std::size_t>(sinkInstance)).type;
        out[name].push_back(
            state.components[static_cast<std::size_t>(sinkInstance)]
                .vars[static_cast<std::size_t>(type->variableIndex("last"))]);
      }
    }
    require(++guardSteps < maxSteps, "runEmbedded: cycle did not converge");
  }
  return out;
}

}  // namespace cbip::lustre
