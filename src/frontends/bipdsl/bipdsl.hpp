// Textual syntax for BIP models — the "single host component language" of
// the rigorous design flow (monograph Section 5.4). Systems written as
// text are parsed into exactly the same core objects the engines,
// verifier, fusion and distributed backend consume.
//
// Syntax (line comments start with '#'):
//
//   atom Philosopher
//     var meals = 0
//     port eat
//     port done
//     location thinking init
//     location eating
//     from thinking on eat do meals := meals + 1 goto eating
//     from eating on done goto thinking
//   end
//
//   atom Buffer
//     var head = 0
//     port put exports head
//     location b init
//     from b on put when head < 4 do head := head + 1 goto b
//     from b on tau when head > 9 do head := 0 goto b      # internal step
//   end
//
//   system
//     instance p0 : Philosopher
//     instance buf : Buffer
//     connector c0 = sync(p0.eat, buf.put)
//     connector bc = broadcast(p0.done, buf.put)           # first end triggers
//     connector tr = sync(p0.eat, buf.put) when buf.head < 3
//                    down buf.head := buf.head + p0.meals  # data transfer
//     priority c0 < bc when p0.meals > 2
//     maximal progress
//   end
//
// Guard/action expressions use the library expression grammar
// (src/expr/parser.hpp). In atoms, identifiers are local variables; in
// connectors, `instance.variable` resolves to an *exported* variable of
// that instance's end; in priorities, `instance.variable` is any variable
// of the instance.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "core/system.hpp"

namespace cbip::dsl {

struct ParseResult {
  System system;
  std::map<std::string, AtomicTypePtr> atoms;
};

/// Parses a full model (atoms + one optional system section).
/// Throws cbip::ModelError with a line-tagged message on errors.
ParseResult parseModel(std::string_view source);

/// Convenience: parse and return the system (must contain a `system`
/// section).
System parseSystem(std::string_view source);

}  // namespace cbip::dsl
