// Pretty-printer: System -> BIP DSL text.
//
// Together with the parser this gives the flow a round-trippable concrete
// syntax: models built programmatically (or produced by transformations)
// can be serialized, inspected, diffed and re-loaded. `parse(print(s))`
// yields a system with identical structure and bisimilar behaviour
// (tested in test_bipdsl.cpp).
//
// Limitations (of the DSL, not the core): connectors must be plain
// rendezvous or single-trigger broadcasts, and connector-local variables
// (up-actions) are not expressible — printing such systems throws.
#pragma once

#include <string>

#include "core/system.hpp"

namespace cbip::dsl {

/// Serializes one atomic component type.
std::string printAtom(const AtomicType& type);

/// Serializes a whole system (atom declarations + system section).
std::string printModel(const System& system);

}  // namespace cbip::dsl
