#include "frontends/bipdsl/printer.hpp"

#include <map>
#include <set>
#include <sstream>

#include "util/require.hpp"

namespace cbip::dsl {

namespace {

std::string localName(const AtomicType& type, expr::VarRef r) {
  require(r.scope == 0, "printAtom: non-local variable in component expression");
  return type.variable(r.index).name;
}

/// Connector expressions: end scope -> "instance.exportedVariable".
std::string endName(const System& system, const Connector& c, expr::VarRef r) {
  require(r.scope != expr::kConnectorScope,
          "printModel: connector-local variables are not expressible in the DSL");
  const ConnectorEnd& end = c.end(static_cast<std::size_t>(r.scope));
  const System::Instance& inst = system.instance(static_cast<std::size_t>(end.port.instance));
  const PortDecl& port = inst.type->port(end.port.port);
  return inst.name + "." +
         inst.type->variable(port.exports[static_cast<std::size_t>(r.index)]).name;
}

}  // namespace

std::string printAtom(const AtomicType& type) {
  std::ostringstream os;
  os << "atom " << type.name() << "\n";
  for (std::size_t v = 0; v < type.variableCount(); ++v) {
    const VarDecl& d = type.variable(static_cast<int>(v));
    os << "  var " << d.name;
    if (d.init != 0) os << " = " << d.init;
    os << "\n";
  }
  for (std::size_t p = 0; p < type.portCount(); ++p) {
    const PortDecl& d = type.port(static_cast<int>(p));
    os << "  port " << d.name;
    if (!d.exports.empty()) {
      os << " exports ";
      for (std::size_t k = 0; k < d.exports.size(); ++k) {
        if (k > 0) os << ", ";
        os << type.variable(d.exports[k]).name;
      }
    }
    os << "\n";
  }
  for (std::size_t l = 0; l < type.locationCount(); ++l) {
    os << "  location " << type.locationName(static_cast<int>(l));
    if (static_cast<int>(l) == type.initialLocation()) os << " init";
    os << "\n";
  }
  const auto name = [&type](expr::VarRef r) { return localName(type, r); };
  for (std::size_t t = 0; t < type.transitionCount(); ++t) {
    const Transition& tr = type.transition(static_cast<int>(t));
    os << "  from " << type.locationName(tr.from) << " on "
       << (tr.port == kInternalPort ? "tau" : type.port(tr.port).name);
    if (!tr.guard.isTrue()) os << " when " << tr.guard.toString(name);
    if (!tr.actions.empty()) {
      os << " do ";
      for (std::size_t a = 0; a < tr.actions.size(); ++a) {
        if (a > 0) os << "; ";
        os << localName(type, tr.actions[a].target) << " := "
           << tr.actions[a].value.toString(name);
      }
    }
    os << " goto " << type.locationName(tr.to) << "\n";
  }
  os << "end\n";
  return os.str();
}

std::string printModel(const System& system) {
  system.validate();
  std::ostringstream os;

  // Atom declarations: one per distinct type object; name collisions
  // between distinct objects are disambiguated by suffixing.
  std::map<const AtomicType*, std::string> atomName;
  std::set<std::string> usedNames;
  for (const System::Instance& inst : system.instances()) {
    const AtomicType* type = inst.type.get();
    if (atomName.count(type) > 0) continue;
    std::string name = type->name();
    int suffix = 2;
    while (!usedNames.insert(name).second) name = type->name() + std::to_string(suffix++);
    atomName[type] = name;
    std::string text = printAtom(*type);
    if (name != type->name()) {
      // Patch the declared name (first line).
      text = "atom " + name + text.substr(text.find('\n'));
    }
    os << text << "\n";
  }

  os << "system\n";
  for (const System::Instance& inst : system.instances()) {
    os << "  instance " << inst.name << " : " << atomName.at(inst.type.get()) << "\n";
  }
  for (const Connector& c : system.connectors()) {
    require(c.ups().empty() && c.variableCount() == 0,
            "printModel: connector-local variables are not expressible in the DSL");
    bool isBroadcast = false;
    for (std::size_t e = 0; e < c.endCount(); ++e) {
      if (c.end(e).trigger) {
        require(e == 0, "printModel: only first-end triggers are expressible");
        isBroadcast = true;
      }
    }
    os << "  connector " << c.name() << " = " << (isBroadcast ? "broadcast" : "sync") << "(";
    for (std::size_t e = 0; e < c.endCount(); ++e) {
      if (e > 0) os << ", ";
      const System::Instance& inst =
          system.instance(static_cast<std::size_t>(c.end(e).port.instance));
      os << inst.name << "." << inst.type->port(c.end(e).port.port).name;
    }
    os << ")";
    const auto name = [&system, &c](expr::VarRef r) { return endName(system, c, r); };
    if (!c.guard().isTrue()) os << " when " << c.guard().toString(name);
    for (const DownAssign& d : c.downs()) {
      os << " down " << endName(system, c, expr::VarRef{d.end, d.exportIndex}) << " := "
         << d.value.toString(name) << ";";
    }
    os << "\n";
  }
  for (const PriorityRule& rule : system.priorities()) {
    os << "  priority " << rule.low << " < " << rule.high;
    if (rule.when.has_value()) {
      os << " when "
         << rule.when->toString([&system](expr::VarRef r) {
              const System::Instance& inst = system.instance(static_cast<std::size_t>(r.scope));
              return inst.name + "." + inst.type->variable(r.index).name;
            });
    }
    os << "\n";
  }
  if (system.maximalProgress()) os << "  maximal progress\n";
  os << "end\n";
  return os.str();
}

}  // namespace cbip::dsl
