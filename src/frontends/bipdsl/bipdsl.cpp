#include "frontends/bipdsl/bipdsl.hpp"

#include <cctype>
#include <set>
#include <vector>

#include "expr/parser.hpp"
#include "util/require.hpp"

namespace cbip::dsl {

namespace {

struct Token {
  enum Kind { kWord, kInt, kSym, kEnd } kind = kEnd;
  std::string text;
  int line = 1;
};

/// Lexer: words may contain dots (`p0.meals`); '#' starts a line comment;
/// ':=' is one symbol.
class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  const Token& peek() const { return tok_; }
  Token take() {
    Token t = tok_;
    advance();
    return t;
  }
  bool eat(const std::string& text) {
    if (tok_.kind != Token::kEnd && tok_.text == text) {
      advance();
      return true;
    }
    return false;
  }
  void expect(const std::string& text) {
    require(eat(text), "bip: expected '" + text + "' at line " + std::to_string(tok_.line) +
                           " (got '" + tok_.text + "')");
  }
  int line() const { return tok_.line; }

 private:
  void advance() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
    if (pos_ >= src_.size()) {
      tok_ = Token{Token::kEnd, "", line_};
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_' ||
              src_[pos_] == '.')) {
        ++pos_;
      }
      tok_ = Token{Token::kWord, std::string(src_.substr(start, pos_ - start)), line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) ++pos_;
      tok_ = Token{Token::kInt, std::string(src_.substr(start, pos_ - start)), line_};
      return;
    }
    for (const char* sym : {":=", "==", "!=", "<=", ">=", "&&", "||"}) {
      if (src_.substr(pos_, 2) == sym) {
        tok_ = Token{Token::kSym, sym, line_};
        pos_ += 2;
        return;
      }
    }
    tok_ = Token{Token::kSym, std::string(1, c), line_};
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token tok_;
};

const std::set<std::string> kStopWords = {"do",   "goto",  "when",     "down", "end",
                                          "from", "port",  "location", "var",  "connector",
                                          "instance", "priority", "maximal", "system",
                                          "atom", "exports"};

class ModelParser {
 public:
  explicit ModelParser(std::string_view src) : lex_(src) {}

  ParseResult parse() {
    ParseResult result;
    bool sawSystem = false;
    while (lex_.peek().kind != Token::kEnd) {
      if (lex_.eat("atom")) {
        auto type = parseAtom();
        require(result.atoms.emplace(type->name(), type).second,
                "bip: duplicate atom '" + type->name() + "'");
      } else if (lex_.eat("system")) {
        require(!sawSystem, "bip: multiple system sections");
        sawSystem = true;
        parseSystemSection(result);
      } else {
        throw ModelError("bip: expected 'atom' or 'system' at line " +
                         std::to_string(lex_.line()) + " (got '" + lex_.peek().text + "')");
      }
    }
    if (sawSystem) result.system.validate();
    return result;
  }

 private:
  std::string word(const std::string& what) {
    require(lex_.peek().kind == Token::kWord,
            "bip: expected " + what + " at line " + std::to_string(lex_.line()));
    return lex_.take().text;
  }

  /// Collects token text until one of the stop words / symbols appears at
  /// paren depth zero, then parses it with the expression grammar.
  Expr expression(const expr::NameResolver& resolve,
                  const std::set<std::string>& extraStops = {}) {
    std::string text;
    int depth = 0;
    while (lex_.peek().kind != Token::kEnd) {
      const Token& t = lex_.peek();
      if (depth == 0 && (kStopWords.count(t.text) > 0 || extraStops.count(t.text) > 0)) break;
      if (t.text == "(") ++depth;
      if (t.text == ")") {
        if (depth == 0) break;
        --depth;
      }
      if (!text.empty()) text += ' ';
      text += lex_.take().text;
    }
    require(!text.empty(), "bip: expected expression at line " + std::to_string(lex_.line()));
    try {
      return expr::parseExpr(text, resolve);
    } catch (const expr::ParseError& e) {
      throw ModelError("bip: bad expression '" + text + "' near line " +
                       std::to_string(lex_.line()) + ": " + e.what());
    }
  }

  AtomicTypePtr parseAtom() {
    auto type = std::make_shared<AtomicType>(word("atom name"));
    bool haveInit = false;
    const expr::NameResolver localResolver = [&type](const std::string& name) {
      const auto v = type->findVariable(name);
      require(v.has_value(), "bip: unknown variable '" + name + "'");
      return expr::VarRef{0, *v};
    };
    while (!lex_.eat("end")) {
      if (lex_.eat("var")) {
        const std::string name = word("variable name");
        Value init = 0;
        if (lex_.eat("=")) {
          const bool negative = lex_.eat("-");
          require(lex_.peek().kind == Token::kInt,
                  "bip: expected integer initializer at line " + std::to_string(lex_.line()));
          init = std::stoll(lex_.take().text);
          if (negative) init = -init;
        }
        type->addVariable(name, init);
      } else if (lex_.eat("port")) {
        const std::string name = word("port name");
        std::vector<int> exports;
        if (lex_.eat("exports")) {
          exports.push_back(type->variableIndex(word("exported variable")));
          while (lex_.eat(",")) exports.push_back(type->variableIndex(word("exported variable")));
        }
        type->addPort(name, std::move(exports));
      } else if (lex_.eat("location")) {
        const int loc = type->addLocation(word("location name"));
        if (lex_.eat("init")) {
          require(!haveInit, "bip: multiple init locations in " + type->name());
          haveInit = true;
          type->setInitialLocation(loc);
        }
      } else if (lex_.eat("from")) {
        const int from = type->locationIndex(word("source location"));
        lex_.expect("on");
        const std::string portName = word("port name");
        const int port = portName == "tau" ? kInternalPort : type->portIndex(portName);
        Expr guard = Expr::top();
        if (lex_.eat("when")) guard = expression(localResolver);
        std::vector<expr::Assign> actions;
        if (lex_.eat("do")) {
          while (true) {
            const int target = type->variableIndex(word("assignment target"));
            lex_.expect(":=");
            actions.push_back(
                expr::Assign{expr::VarRef{0, target}, expression(localResolver, {";"})});
            if (!lex_.eat(";")) break;
          }
        }
        lex_.expect("goto");
        const int to = type->locationIndex(word("target location"));
        type->addTransition(from, port, std::move(guard), std::move(actions), to);
      } else {
        throw ModelError("bip: unexpected '" + lex_.peek().text + "' in atom at line " +
                         std::to_string(lex_.line()));
      }
    }
    type->validate();
    return type;
  }

  void parseSystemSection(ParseResult& result) {
    System& sys = result.system;
    while (!lex_.eat("end")) {
      if (lex_.eat("instance")) {
        const std::string name = word("instance name");
        lex_.expect(":");
        const std::string typeName = word("atom name");
        const auto it = result.atoms.find(typeName);
        require(it != result.atoms.end(), "bip: unknown atom '" + typeName + "'");
        sys.addInstance(name, it->second);
      } else if (lex_.eat("connector")) {
        sys.addConnector(parseConnector(sys));
      } else if (lex_.eat("priority")) {
        const std::string low = word("connector name");
        lex_.expect("<");
        const std::string high = word("connector name");
        std::optional<Expr> when;
        if (lex_.eat("when")) {
          when = expression([&sys](const std::string& name) {
            return globalRef(sys, name);
          });
        }
        sys.addPriority(PriorityRule{low, high, std::move(when)});
      } else if (lex_.eat("maximal")) {
        lex_.expect("progress");
        sys.setMaximalProgress(true);
      } else {
        throw ModelError("bip: unexpected '" + lex_.peek().text + "' in system at line " +
                         std::to_string(lex_.line()));
      }
    }
  }

  /// `instance.variable` -> global VarRef (scope = instance index).
  static expr::VarRef globalRef(const System& sys, const std::string& dotted) {
    const auto dot = dotted.find('.');
    require(dot != std::string::npos, "bip: expected 'instance.variable', got '" + dotted + "'");
    const int inst = sys.instanceIndex(dotted.substr(0, dot));
    const int var = sys.instance(static_cast<std::size_t>(inst))
                        .type->variableIndex(dotted.substr(dot + 1));
    return expr::VarRef{inst, var};
  }

  Connector parseConnector(System& sys) {
    Connector c(word("connector name"));
    lex_.expect("=");
    bool isBroadcast = false;
    if (lex_.eat("broadcast")) {
      isBroadcast = true;
    } else {
      lex_.expect("sync");
    }
    lex_.expect("(");
    std::vector<std::string> endInstances;
    bool first = true;
    while (!lex_.eat(")")) {
      if (!first) lex_.expect(",");
      first = false;
      const std::string dotted = word("instance.port");
      const auto dot = dotted.find('.');
      require(dot != std::string::npos, "bip: expected 'instance.port', got '" + dotted + "'");
      const PortRef ref = sys.portRef(dotted.substr(0, dot), dotted.substr(dot + 1));
      c.addEnd(ref, /*trigger=*/isBroadcast && endInstances.empty());
      endInstances.push_back(dotted.substr(0, dot));
    }
    // Connector expressions: `instance.variable` over *exported* variables.
    const expr::NameResolver endResolver = [&sys, &c, &endInstances](const std::string& dotted) {
      const auto dot = dotted.find('.');
      require(dot != std::string::npos,
              "bip: expected 'instance.variable', got '" + dotted + "'");
      const std::string inst = dotted.substr(0, dot);
      const std::string varName = dotted.substr(dot + 1);
      for (std::size_t e = 0; e < endInstances.size(); ++e) {
        if (endInstances[e] != inst) continue;
        const ConnectorEnd& end = c.end(e);
        const AtomicType& type =
            *sys.instance(static_cast<std::size_t>(end.port.instance)).type;
        const PortDecl& port = type.port(end.port.port);
        for (std::size_t k = 0; k < port.exports.size(); ++k) {
          if (type.variable(port.exports[k]).name == varName) {
            return expr::VarRef{static_cast<int>(e), static_cast<int>(k)};
          }
        }
        throw ModelError("bip: '" + varName + "' is not exported by " + inst + "." + port.name);
      }
      throw ModelError("bip: instance '" + inst + "' is not an end of this connector");
    };
    if (lex_.eat("when")) c.setGuard(expression(endResolver));
    while (lex_.eat("down")) {
      const std::string dotted = word("instance.variable");
      lex_.expect(":=");
      const expr::VarRef target = endResolver(dotted);
      c.addDown(target.scope, target.index, expression(endResolver, {";"}));
      lex_.eat(";");
    }
    return c;
  }

  Lexer lex_;
};

}  // namespace

ParseResult parseModel(std::string_view source) { return ModelParser(source).parse(); }

System parseSystem(std::string_view source) {
  ParseResult r = parseModel(source);
  require(r.system.instanceCount() > 0, "bip: program has no system section");
  return std::move(r.system);
}

}  // namespace cbip::dsl
