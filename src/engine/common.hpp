// Plumbing shared by every execution engine (sequential, multi-threaded,
// sharded): scheduling policies, stop reasons, the run-result record, the
// common run-option core, the common run-statistics record, and the
// abstract Engine interface every engine implements.
//
// Extracted from engine.hpp so that new engines (engine_mt.hpp,
// shard/engine_sharded.hpp) reuse one definition of the policy interface
// and result types instead of growing per-engine copies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "core/semantics.hpp"
#include "core/system.hpp"
#include "engine/trace.hpp"
#include "util/rng.hpp"

namespace cbip {

/// Resolves scheduler nondeterminism: picks one enabled interaction and
/// one transition per participant.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  /// `enabled` is non-empty. Returns (interaction index, per-participant
  /// transition-choice vector).
  virtual std::pair<std::size_t, std::vector<int>> pick(
      const System& system, const GlobalState& state,
      const std::vector<EnabledInteraction>& enabled) = 0;
};

/// Uniformly random choice among interactions and transition options.
class RandomPolicy final : public SchedulingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  std::pair<std::size_t, std::vector<int>> pick(
      const System& system, const GlobalState& state,
      const std::vector<EnabledInteraction>& enabled) override;

 private:
  Rng rng_;
};

/// Deterministic: first interaction, first transitions.
class FirstPolicy final : public SchedulingPolicy {
 public:
  std::pair<std::size_t, std::vector<int>> pick(
      const System& system, const GlobalState& state,
      const std::vector<EnabledInteraction>& enabled) override;
};

/// Why a run stopped.
enum class StopReason { kStepLimit, kDeadlock, kPredicate };

/// Enumerator name ("kStepLimit", ...) for diagnostics and test output.
const char* to_string(StopReason reason);
std::ostream& operator<<(std::ostream& os, StopReason reason);

struct RunResult {
  StopReason reason = StopReason::kStepLimit;
  std::uint64_t steps = 0;
  Trace trace;
  GlobalState finalState;
};

/// Run-option core shared by every engine. The per-engine option structs
/// (RunOptions, MtOptions, ShardedOptions) derive from this, so a caller
/// holding only an `Engine&` can configure the portable knobs and run any
/// engine through the uniform interface; engine-specific knobs keep the
/// derived structs.
struct EngineOptions {
  /// Step budget. Counts *interactions* on every engine (the MT and
  /// sharded engines may execute several per scheduling round).
  std::uint64_t maxSteps = 1000;
  bool recordTrace = true;
};

/// Minimal run statistics every engine reports through
/// Engine::lastRunStats(). ShardedStats extends this with epoch/migration
/// detail. Like ShardedStats these are part of the functional result —
/// always collected, cheap enough to never need a toggle (two clock reads
/// per run) — and never steer execution.
struct RunStats {
  std::uint64_t steps = 0;  ///< interactions executed
  /// Scheduling rounds: steps for SequentialEngine, cycles (batches) for
  /// MultiThreadEngine, epochs for ShardedEngine.
  std::uint64_t scanRounds = 0;
  std::uint64_t wallNs = 0;  ///< wall-clock duration of run()
};

/// Abstract engine interface: drive any of the three engines (sequential,
/// multi-threaded, sharded) without knowing which one it is. The concrete
/// engines keep their richer run(DerivedOptions) overloads; this
/// type-erased run() merges the portable core into the engine's default
/// options (see defaultOptions() on each engine for presetting the
/// engine-specific knobs, e.g. the sharded seed, before a uniform run).
class Engine {
 public:
  virtual ~Engine() = default;
  /// Runs from the engine's initial state with the given portable options.
  virtual RunResult run(const EngineOptions& options) = 0;
  /// Stable short name: "seq", "mt", "sharded".
  virtual const char* name() const = 0;
  /// Statistics of the most recent run(); zeroed before the first run.
  /// ShardedEngine covariantly returns its ShardedStats extension.
  virtual const RunStats& lastRunStats() const = 0;
};

}  // namespace cbip
