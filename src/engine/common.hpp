// Plumbing shared by every execution engine (sequential, multi-threaded,
// sharded): scheduling policies, stop reasons, and the run-result record.
//
// Extracted from engine.hpp so that new engines (engine_mt.hpp,
// shard/engine_sharded.hpp) reuse one definition of the policy interface
// and result types instead of growing per-engine copies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "core/semantics.hpp"
#include "core/system.hpp"
#include "engine/trace.hpp"
#include "util/rng.hpp"

namespace cbip {

/// Resolves scheduler nondeterminism: picks one enabled interaction and
/// one transition per participant.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  /// `enabled` is non-empty. Returns (interaction index, per-participant
  /// transition-choice vector).
  virtual std::pair<std::size_t, std::vector<int>> pick(
      const System& system, const GlobalState& state,
      const std::vector<EnabledInteraction>& enabled) = 0;
};

/// Uniformly random choice among interactions and transition options.
class RandomPolicy final : public SchedulingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  std::pair<std::size_t, std::vector<int>> pick(
      const System& system, const GlobalState& state,
      const std::vector<EnabledInteraction>& enabled) override;

 private:
  Rng rng_;
};

/// Deterministic: first interaction, first transitions.
class FirstPolicy final : public SchedulingPolicy {
 public:
  std::pair<std::size_t, std::vector<int>> pick(
      const System& system, const GlobalState& state,
      const std::vector<EnabledInteraction>& enabled) override;
};

/// Why a run stopped.
enum class StopReason { kStepLimit, kDeadlock, kPredicate };

/// Enumerator name ("kStepLimit", ...) for diagnostics and test output.
const char* to_string(StopReason reason);
std::ostream& operator<<(std::ostream& os, StopReason reason);

struct RunResult {
  StopReason reason = StopReason::kStepLimit;
  std::uint64_t steps = 0;
  Trace trace;
  GlobalState finalState;
};

}  // namespace cbip
