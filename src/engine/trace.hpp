// Execution traces recorded by the engines.
//
// A trace is the sequence of executed interactions with enough structure
// for the equivalence checks used throughout the flow (observational
// equivalence of refinements, Fig 5.4; fusion bisimulation, E12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cbip {

struct TraceEvent {
  std::uint64_t step = 0;
  int connector = 0;
  std::uint64_t mask = 0;
  std::string label;
};

struct Trace {
  std::vector<TraceEvent> events;

  std::vector<std::string> labels() const {
    std::vector<std::string> out;
    out.reserve(events.size());
    for (const TraceEvent& e : events) out.push_back(e.label);
    return out;
  }
};

}  // namespace cbip
