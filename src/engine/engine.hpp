// Execution engines for composite BIP systems.
//
// The engine implements the monograph's run-time (Section 5.6): it
// repeatedly computes the enabled interactions from component offers,
// applies priorities, resolves the remaining nondeterminism with a
// scheduling policy, and executes the chosen interaction.
//
// Three engines are provided, mirroring and extending the BIP toolset:
//   * SequentialEngine — single-threaded reference implementation;
//   * MultiThreadEngine (engine_mt.hpp) — one worker thread per component,
//     communicating exclusively with the engine thread (components never
//     talk to each other directly);
//   * ShardedEngine (shard/engine_sharded.hpp) — one worker per shard of a
//     partitioned component graph, coordinating only on cross-shard
//     interactions.
// Scheduling policies, StopReason and RunResult are shared by all three
// and live in engine/common.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/semantics.hpp"
#include "core/system.hpp"
#include "engine/common.hpp"

namespace cbip {

/// SequentialEngine options: the portable EngineOptions core (maxSteps,
/// recordTrace) plus the engine-specific knobs below.
struct RunOptions : EngineOptions {
  /// Maintain the enabled set incrementally (dirty-set cache over the
  /// component->connector reverse index) instead of rescanning every
  /// connector each step. Identical traces either way; off is only useful
  /// as the baseline in benchmarks.
  bool incrementalCache = true;
  /// Optional stop predicate checked after every step.
  std::function<bool(const GlobalState&)> stopWhen;
};

/// Single-threaded reference engine.
class SequentialEngine final : public Engine {
 public:
  /// The system must outlive the engine.
  SequentialEngine(const System& system, SchedulingPolicy& policy);

  /// Runs from the system's initial state.
  RunResult run(const RunOptions& options);
  /// Runs from a caller-provided state (consumed).
  RunResult run(GlobalState start, const RunOptions& options);

  /// Engine interface: merges the portable core into defaultOptions().
  RunResult run(const EngineOptions& options) override;
  const char* name() const override { return "seq"; }
  const RunStats& lastRunStats() const override { return stats_; }

  /// Template for type-erased runs: preset engine-specific knobs here
  /// before driving the engine through the Engine interface.
  RunOptions& defaultOptions() { return defaults_; }

 private:
  const System* system_;
  SchedulingPolicy* policy_;
  RunOptions defaults_;
  RunStats stats_;
};

}  // namespace cbip
