// Execution engines for composite BIP systems.
//
// The engine implements the monograph's run-time (Section 5.6): it
// repeatedly computes the enabled interactions from component offers,
// applies priorities, resolves the remaining nondeterminism with a
// scheduling policy, and executes the chosen interaction.
//
// Two engines are provided, mirroring the BIP toolset:
//   * SequentialEngine — single-threaded reference implementation;
//   * MultiThreadEngine (engine_mt.hpp) — one worker thread per component,
//     communicating exclusively with the engine thread (components never
//     talk to each other directly).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/semantics.hpp"
#include "core/system.hpp"
#include "engine/trace.hpp"
#include "util/rng.hpp"

namespace cbip {

/// Resolves scheduler nondeterminism: picks one enabled interaction and
/// one transition per participant.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  /// `enabled` is non-empty. Returns (interaction index, per-participant
  /// transition-choice vector).
  virtual std::pair<std::size_t, std::vector<int>> pick(
      const System& system, const GlobalState& state,
      const std::vector<EnabledInteraction>& enabled) = 0;
};

/// Uniformly random choice among interactions and transition options.
class RandomPolicy final : public SchedulingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  std::pair<std::size_t, std::vector<int>> pick(
      const System& system, const GlobalState& state,
      const std::vector<EnabledInteraction>& enabled) override;

 private:
  Rng rng_;
};

/// Deterministic: first interaction, first transitions.
class FirstPolicy final : public SchedulingPolicy {
 public:
  std::pair<std::size_t, std::vector<int>> pick(
      const System& system, const GlobalState& state,
      const std::vector<EnabledInteraction>& enabled) override;
};

/// Why a run stopped.
enum class StopReason { kStepLimit, kDeadlock, kPredicate };

struct RunResult {
  StopReason reason = StopReason::kStepLimit;
  std::uint64_t steps = 0;
  Trace trace;
  GlobalState finalState;
};

struct RunOptions {
  std::uint64_t maxSteps = 1000;
  bool recordTrace = true;
  /// Maintain the enabled set incrementally (dirty-set cache over the
  /// component->connector reverse index) instead of rescanning every
  /// connector each step. Identical traces either way; off is only useful
  /// as the baseline in benchmarks.
  bool incrementalCache = true;
  /// Optional stop predicate checked after every step.
  std::function<bool(const GlobalState&)> stopWhen;
};

/// Single-threaded reference engine.
class SequentialEngine {
 public:
  /// The system must outlive the engine.
  SequentialEngine(const System& system, SchedulingPolicy& policy);

  /// Runs from the system's initial state.
  RunResult run(const RunOptions& options);
  /// Runs from a caller-provided state (consumed).
  RunResult run(GlobalState start, const RunOptions& options);

 private:
  const System* system_;
  SchedulingPolicy* policy_;
};

}  // namespace cbip
