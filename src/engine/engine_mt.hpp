// Multi-threaded BIP engine.
//
// Mirrors the BIP toolset's multithread backend (monograph Section 5.6):
// "each atomic component is assigned to a thread, with the engine itself
// being a thread. Communication occurs only between atomic components and
// the engine — never directly between different atomic components."
//
// Protocol per cycle:
//   1. the engine assembles the last reported component states (offers),
//      computes the enabled interactions and applies priorities;
//   2. it selects a batch of pairwise-independent interactions
//      (non-overlapping connector footprints). When the system declares
//      priority rules or maximal progress the batch size is capped at 1,
//      because executing one interaction may change which others are
//      maximal — the sequential semantics is then preserved exactly;
//   3. for each selected interaction it performs the connector data
//      transfer (up/down) centrally, then dispatches Execute commands to
//      the participating component threads, which fire their transitions
//      (actions + tau steps + configurable computation grain) in parallel
//      and report their new states.
//
// Independent interactions commute, so every multithreaded run is
// label-equivalent to a sequential run (tested in test_engine.cpp).
#pragma once

#include <cstdint>

#include "engine/engine.hpp"

namespace cbip {

/// MultiThreadEngine options: the portable EngineOptions core (maxSteps
/// counts interactions, not cycles) plus the engine-specific knobs below.
struct MtOptions : EngineOptions {
  /// Artificial computation per fired transition (spin iterations) —
  /// models the work a real component would do in its action code.
  std::uint64_t workGrain = 0;
  /// Upper bound on interactions dispatched concurrently per cycle
  /// (0 = unlimited; forced to 1 when priorities are present).
  std::size_t maxBatch = 0;
  /// Maintain the enabled set incrementally across cycles (the dirty set
  /// is exactly the instances dispatched last cycle). Identical traces
  /// either way; off is only useful as the baseline in benchmarks.
  bool incrementalCache = true;
};

class MultiThreadEngine final : public Engine {
 public:
  /// The system must outlive the engine.
  MultiThreadEngine(const System& system, SchedulingPolicy& policy);

  RunResult run(const MtOptions& options);

  /// Engine interface: merges the portable core into defaultOptions().
  RunResult run(const EngineOptions& options) override;
  const char* name() const override { return "mt"; }
  const RunStats& lastRunStats() const override { return stats_; }

  /// Template for type-erased runs: preset engine-specific knobs here
  /// before driving the engine through the Engine interface.
  MtOptions& defaultOptions() { return defaults_; }

 private:
  const System* system_;
  SchedulingPolicy* policy_;
  MtOptions defaults_;
  RunStats stats_;
};

}  // namespace cbip
